// Package main_bench holds the benchmark harness: one testing.B
// bench per reproduction experiment (E1–E13, see the experiment index
// in README.md and the per-experiment doc comments in internal/exper),
// each asserting its paper-claim checks on the first iteration, plus
// micro-benchmarks of the mapping primitives.
//
// Run with: go test -bench=. -benchmem
package main_bench

import (
	"testing"

	"hpfnt/internal/align"
	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/exper"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
	"hpfnt/internal/proc"
	"hpfnt/internal/runtime"
	"hpfnt/internal/transport"
	"hpfnt/internal/workload"
)

// benchExperiment runs one experiment per iteration and fails the
// bench if any paper-claim check fails.
func benchExperiment(b *testing.B, f func() (exper.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f()
		if err != nil {
			b.Fatalf("%v", err)
		}
		if i == 0 && !r.Passed() {
			b.Fatalf("experiment checks failed:\n%s", r.Render())
		}
	}
}

func BenchmarkE1DistributionFormats(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E1DistributionFormats(16, 4) })
}

func BenchmarkE2StaggeredGrid(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E2StaggeredGrid(64, 4, 4) })
}

func BenchmarkE2StaggeredGridLarge(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E2StaggeredGrid(128, 4, 4) })
}

func BenchmarkE2bBlockVariantAblation(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E2bBlockVariantAblation(64, 8) })
}

func BenchmarkE3ProcedureBoundary(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E3ProcedureBoundary() })
}

func BenchmarkE4GeneralBlockBalance(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E4GeneralBlockBalance(4096, 16) })
}

func BenchmarkE5ProcessorSections(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E5ProcessorSections(64, 8) })
}

func BenchmarkE6RedistributeBundling(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E6RedistributeBundling(256, 8, 4) })
}

func BenchmarkE7RealignSurgery(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E7RealignSurgery(128, 8) })
}

func BenchmarkE8Allocatables(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E8Allocatables() })
}

func BenchmarkE9CyclicLU(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E9CyclicLU(1024, 16) })
}

func BenchmarkE10Replication(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E10Replication(64, 8) })
}

func BenchmarkE11Collapse(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E11Collapse(64, 8) })
}

func BenchmarkE12TemplateLimitations(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E12TemplateLimitations() })
}

func BenchmarkE13GeneralDistributions(b *testing.B) {
	benchExperiment(b, func() (exper.Result, error) { return exper.E13GeneralDistributions(1024, 8) })
}

// --- Ablation: per-statement communication analysis vs reusing a
// precomputed overlap (ghost region) schedule across iterations ---

func jacobiSetup(b *testing.B) (*runtime.Array, *runtime.Array, index.Domain, []runtime.Term) {
	b.Helper()
	sys, err := proc.NewSystem(8)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, 8))
	if err != nil {
		b.Fatal(err)
	}
	n := 128
	dom := index.Standard(1, n, 1, n)
	d, err := dist.New(dom, []dist.Format{dist.Block{}, dist.Collapsed{}}, proc.Whole(arr))
	if err != nil {
		b.Fatal(err)
	}
	a, err := runtime.NewArray("A", core.DistMapping{D: d})
	if err != nil {
		b.Fatal(err)
	}
	a.Fill(func(t index.Tuple) float64 { return float64(t[0] + t[1]) })
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []runtime.Term{
		runtime.Ref(a, 0.25, -1, 0), runtime.Ref(a, 0.25, 1, 0),
		runtime.Ref(a, 0.25, 0, -1), runtime.Ref(a, 0.25, 0, 1),
	}
	return a, a, interior, terms
}

func BenchmarkAblationPerStatementAnalysis(b *testing.B) {
	lhs, _, interior, terms := jacobiSetup(b)
	m, err := machine.New(8, machine.DefaultCost())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runtime.ShiftAssign(m, lhs, interior, terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScheduleReuse(b *testing.B) {
	lhs, _, interior, terms := jacobiSetup(b)
	sched, err := runtime.BuildSchedule(lhs, interior, terms)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(8, machine.DefaultCost())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sched.Execute(m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Schedule-build micro-benchmarks: the run-based ownership
// analysis against region size and format family. allocs/op is the
// headline number — the analysis is O(runs + ghost boundary), not
// O(region volume). ---

func scheduleBuildSetup(b *testing.B, n int, f dist.Format) (*runtime.Array, index.Domain, []runtime.Term) {
	b.Helper()
	sys, err := proc.NewSystem(8)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, 8))
	if err != nil {
		b.Fatal(err)
	}
	dom := index.Standard(1, n, 1, n)
	d, err := dist.New(dom, []dist.Format{f, dist.Collapsed{}}, proc.Whole(arr))
	if err != nil {
		b.Fatal(err)
	}
	a, err := runtime.NewArray("A", core.DistMapping{D: d})
	if err != nil {
		b.Fatal(err)
	}
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []runtime.Term{
		runtime.Ref(a, 0.25, -1, 0), runtime.Ref(a, 0.25, 1, 0),
		runtime.Ref(a, 0.25, 0, -1), runtime.Ref(a, 0.25, 0, 1),
	}
	return a, interior, terms
}

func benchScheduleBuild(b *testing.B, n int, f dist.Format) {
	lhs, interior, terms := scheduleBuildSetup(b, n, f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.BuildSchedule(lhs, interior, terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleBuildBlockSmall(b *testing.B) { benchScheduleBuild(b, 32, dist.Block{}) }

func BenchmarkScheduleBuildBlockLarge(b *testing.B) { benchScheduleBuild(b, 128, dist.Block{}) }

func BenchmarkScheduleBuildCyclicSmall(b *testing.B) { benchScheduleBuild(b, 32, dist.Cyclic{K: 4}) }

func BenchmarkScheduleBuildCyclicLarge(b *testing.B) { benchScheduleBuild(b, 128, dist.Cyclic{K: 4}) }

func BenchmarkScheduleBuildGeneralBlockLarge(b *testing.B) {
	benchScheduleBuild(b, 128, dist.GeneralBlock{Bounds: []int{10, 26, 42, 64, 90, 102, 116}})
}

// --- Micro-benchmarks of the mapping primitives ---

func BenchmarkBlockMap(b *testing.B) {
	f := dist.Block{}
	for i := 0; i < b.N; i++ {
		_ = f.Map(i%4096+1, 4096, 16)
	}
}

func BenchmarkViennaBlockMap(b *testing.B) {
	f := dist.BlockVienna{}
	for i := 0; i < b.N; i++ {
		_ = f.Map(i%4096+1, 4096, 16)
	}
}

func BenchmarkCyclicMap(b *testing.B) {
	f := dist.Cyclic{K: 8}
	for i := 0; i < b.N; i++ {
		_ = f.Map(i%4096+1, 4096, 16)
	}
}

func BenchmarkGeneralBlockMap(b *testing.B) {
	bounds := make([]int, 15)
	for i := range bounds {
		bounds[i] = (i + 1) * 256
	}
	f := dist.GeneralBlock{Bounds: bounds}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Map(i%4096+1, 4096, 16)
	}
}

func BenchmarkDistributionOwners(b *testing.B) {
	sys, err := proc.NewSystem(16)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, 4, 1, 4))
	if err != nil {
		b.Fatal(err)
	}
	d, err := dist.New(index.Standard(1, 256, 1, 256),
		[]dist.Format{dist.Block{}, dist.Cyclic{K: 4}}, proc.Whole(arr))
	if err != nil {
		b.Fatal(err)
	}
	t := index.Tuple{1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t[0] = i%256 + 1
		t[1] = (i/256)%256 + 1
		if _, err := d.Owners(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlignmentImage(b *testing.B) {
	alignee := index.Standard(1, 1024)
	base := index.Standard(1, 2048)
	fn, err := align.Normalize(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "B", Subs: []align.Subscript{align.ExprSub(expr.Affine(2, "I", -1))},
	}, alignee, base, expr.Env{})
	if err != nil {
		b.Fatal(err)
	}
	t := index.Tuple{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t[0] = i%1024 + 1
		if _, err := fn.Image(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiSweep(b *testing.B) {
	sys, err := proc.NewSystem(8)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, 8))
	if err != nil {
		b.Fatal(err)
	}
	dom := index.Standard(1, 128, 1, 128)
	mk := func() interface {
		Domain() index.Domain
		Owners(index.Tuple) ([]int, error)
		Describe() string
	} {
		d, err := dist.New(dom, []dist.Format{dist.Block{}, dist.Collapsed{}}, proc.Whole(arr))
		if err != nil {
			b.Fatal(err)
		}
		return core.DistMapping{D: d}
	}
	am, bm := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.JacobiSweep(128, 8, am, bm, machine.DefaultCost()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSweepCyclic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.LUSweep(1024, 16, dist.Cyclic{K: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel engine: 512² Jacobi schedule replay, sequential
// simulator vs the spmd engine (the speedup benchmark behind the
// -speedup flag of cmd/hpfbench). ---

func benchJacobiReplay(b *testing.B, kind string) {
	b.Helper()
	eng, err := engine.New(kind, 8, machine.DefaultCost())
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	n := 512
	am, err := workload.BlockRowMapping(n, 8)
	if err != nil {
		b.Fatal(err)
	}
	bm, err := workload.BlockRowMapping(n, 8)
	if err != nil {
		b.Fatal(err)
	}
	aa, err := eng.NewArray("A", am)
	if err != nil {
		b.Fatal(err)
	}
	ba, err := eng.NewArray("B", bm)
	if err != nil {
		b.Fatal(err)
	}
	aa.Fill(func(t index.Tuple) float64 { return float64((t[0]*7 + t[1]) % 101) })
	sched, err := ba.NewSchedule(index.Standard(2, n-1, 2, n-1), []engine.Term{
		engine.Read(aa, 0.25, -1, 0), engine.Read(aa, 0.25, 1, 0),
		engine.Read(aa, 0.25, 0, -1), engine.Read(aa, 0.25, 0, 1),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sched.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiReplaySim(b *testing.B) { benchJacobiReplay(b, engine.Sim) }

func BenchmarkJacobiReplaySPMD(b *testing.B) { benchJacobiReplay(b, engine.SPMD) }

// BenchmarkJacobiReplaySPMDTraced is the same replay with the full
// observability stack live — phase timers on and the trace recorder
// installed — so `-bench 'JacobiReplaySPMD'` shows the
// instrumentation overhead side by side (the acceptance budget is
// <5%; TestObservabilityOverhead in internal/workload gates it).
func BenchmarkJacobiReplaySPMDTraced(b *testing.B) {
	obs.EnableTiming(true)
	obs.StartTrace(0, 1<<14)
	defer func() {
		obs.StopTrace()
		obs.EnableTiming(false)
	}()
	benchJacobiReplay(b, engine.SPMD)
}

// BenchmarkSpmdScheduleBuild measures the spmd schedule compiler
// (per-worker plans plus ghost-exchange lists) on the 128² stencil.
func BenchmarkSpmdScheduleBuild(b *testing.B) {
	eng, err := engine.New(engine.SPMD, 8, machine.DefaultCost())
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	n := 128
	am, err := workload.BlockRowMapping(n, 8)
	if err != nil {
		b.Fatal(err)
	}
	bm, err := workload.BlockRowMapping(n, 8)
	if err != nil {
		b.Fatal(err)
	}
	aa, _ := eng.NewArray("A", am)
	ba, _ := eng.NewArray("B", bm)
	terms := []engine.Term{
		engine.Read(aa, 0.25, -1, 0), engine.Read(aa, 0.25, 1, 0),
		engine.Read(aa, 0.25, 0, -1), engine.Read(aa, 0.25, 0, 1),
	}
	interior := index.Standard(2, n-1, 2, n-1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ba.NewSchedule(interior, terms); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIrregularCG prepares the 64k-nonzero sparse CG workload
// (q = A·x through the inspector–executor subsystem) on the spmd
// engine and returns the compiled state.
func benchIrregularCG(b *testing.B) *workload.SparseCG {
	b.Helper()
	const n, nnz, np = 8192, 65536, 8
	eng, err := engine.New(engine.SPMD, np, machine.DefaultCost())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	sys := workload.SparseMatrix(n, nnz, 23)
	xm, err := workload.Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		b.Fatal(err)
	}
	qm, err := workload.Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		b.Fatal(err)
	}
	c, err := workload.NewSparseCG(eng, sys, xm, qm)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkIrregularReplayFirst measures the first iteration of the
// irregular gather: the inspector (ownership partition, remote
// deduplication, schedule compilation) plus one execution. Compare
// against BenchmarkIrregularReplaySteady for the schedule-reuse
// amortization (acceptance gate: steady ≥ 5× faster; see
// TestIrregularAmortization).
func BenchmarkIrregularReplayFirst(b *testing.B) {
	c := benchIrregularCG(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := c.NewSchedule()
		if err != nil {
			b.Fatal(err)
		}
		if err := sched.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIrregularReplaySteady measures the steady-state iteration:
// the compiled schedule replayed with no per-iteration analysis.
func BenchmarkIrregularReplaySteady(b *testing.B) {
	c := benchIrregularCG(b)
	sched, err := c.NewSchedule()
	if err != nil {
		b.Fatal(err)
	}
	if err := sched.Execute(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sched.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGhostExchange builds the 256² row-blocked 5-point Jacobi
// schedule on a spmd engine over the given transport and replays it
// as one epoch. The statement (B <- A) does not overwrite its input,
// so schedule-level coalescing ships each pair's frame once for the
// whole epoch: the reported frames/op vs msgs/op metrics show the
// coalescing win per wire (frames/op tends to zero as N grows while
// the cost model still charges 14 logical messages per iteration).
func benchGhostExchange(b *testing.B, transportKind string) {
	const n, np = 256, 8
	eng, err := engine.NewOn(engine.SPMD, transportKind, np, machine.DefaultCost())
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	am, err := workload.BlockRowMapping(n, np)
	if err != nil {
		b.Fatal(err)
	}
	bm, err := workload.BlockRowMapping(n, np)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := workload.JacobiReplay(eng, n, 1, am, bm); err != nil {
		b.Fatal(err)
	}
	eng.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := workload.JacobiReplay(eng, n, b.N, am, bm)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Machine().WireFrames())/float64(b.N), "frames/op")
	b.ReportMetric(float64(rep.Messages)/float64(b.N), "msgs/op")
}

// BenchmarkGhostExchangeTransport runs the coalesced ghost exchange
// over every registered wire.
func BenchmarkGhostExchangeTransport(b *testing.B) {
	for _, kind := range transport.Kinds() {
		b.Run(kind, func(b *testing.B) { benchGhostExchange(b, kind) })
	}
}

// benchGhostExchangeInPlace is the non-coalescible counterpart: an
// in-place sweep (A <- A) whose every iteration depends on the
// previous stores, so each of the 14 boundary frames must cross the
// wire per iteration — the per-iteration delta between wires
// quantifies the raw per-message overhead inside a compiled schedule.
func benchGhostExchangeInPlace(b *testing.B, transportKind string) {
	const n, np = 256, 8
	eng, err := engine.NewOn(engine.SPMD, transportKind, np, machine.DefaultCost())
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	am, err := workload.BlockRowMapping(n, np)
	if err != nil {
		b.Fatal(err)
	}
	a, err := eng.NewArray("A", am)
	if err != nil {
		b.Fatal(err)
	}
	a.Fill(func(t index.Tuple) float64 { return float64((t[0]*t[1])%97) * 1e-4 })
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []engine.Term{
		engine.Read(a, 0.25, -1, 0),
		engine.Read(a, 0.25, 1, 0),
		engine.Read(a, 0.25, 0, -1),
		engine.Read(a, 0.25, 0, 1),
	}
	sched, err := a.NewSchedule(interior, terms)
	if err != nil {
		b.Fatal(err)
	}
	if err := sched.Execute(); err != nil {
		b.Fatal(err)
	}
	eng.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	if err := sched.ExecuteN(b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Machine().WireFrames())/float64(b.N), "frames/op")
	b.ReportMetric(float64(eng.Stats().Messages)/float64(b.N), "msgs/op")
}

// BenchmarkGhostExchangeInPlaceTransport runs the per-iteration ghost
// exchange over every registered wire.
func BenchmarkGhostExchangeInPlaceTransport(b *testing.B) {
	for _, kind := range transport.Kinds() {
		b.Run(kind, func(b *testing.B) { benchGhostExchangeInPlace(b, kind) })
	}
}

// benchTransportMessage measures the raw per-message cost of one
// rank-pair stream: a 16-element message bounced between two ranks.
func benchTransportMessage(b *testing.B, kind string) {
	tr, err := transport.New(kind, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	msg := make([]float64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(1, 2, msg)
		if got := tr.Recv(1, 2); len(got) != len(msg) {
			b.Fatalf("message truncated: %d elements", len(got))
		}
	}
}

// BenchmarkTransportMessage measures every registered wire (the
// shm-vs-tcp ratio here is the tentpole's ≥5× acceptance gate; see
// cmd/benchgate).
func BenchmarkTransportMessage(b *testing.B) {
	for _, kind := range transport.Kinds() {
		b.Run(kind, func(b *testing.B) { benchTransportMessage(b, kind) })
	}
}
