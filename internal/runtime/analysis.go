package runtime

import (
	"fmt"

	"hpfnt/internal/core"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
)

// analysis is the communication/load summary of one shift-assignment
// statement under the owner-computes rule: the aggregated ghost
// traffic per processor pair, the per-processor compute load, and the
// local/remote reference counts. BuildSchedule stores it for replay;
// ShiftAssign derives and charges it per statement.
type analysis struct {
	pairElems  map[[2]int]int
	loads      map[int]int
	localRefs  int
	remoteRefs int
}

func newAnalysis() *analysis {
	return &analysis{pairElems: map[[2]int]int{}, loads: map[int]int{}}
}

// minTileElems is the average tile volume below which the run-based
// analysis loses to the grid-backed element-wise path (measured on
// the Jacobi/staggered benches: per-tile bulk computation costs on
// the order of a few hundred nanoseconds, a grid lookup a few tens).
const minTileElems = 16

// charge applies the analysis to the machine's counters.
func (an *analysis) charge(m *machine.Machine) {
	for pr, n := range an.pairElems {
		m.Send(pr[0], pr[1], n)
	}
	m.RecordLocal(an.localRefs)
	m.RecordRemote(an.remoteRefs)
	for p, l := range an.loads {
		m.AddLoad(p, l)
	}
}

// checkStatement validates the statement's ranks.
func checkStatement(lhs *Array, region index.Domain, terms []Term) error {
	if region.Rank() != lhs.Dom.Rank() {
		return fmt.Errorf("runtime: region rank %d does not match %s rank %d", region.Rank(), lhs.Name, lhs.Dom.Rank())
	}
	for _, tm := range terms {
		if len(tm.Shift) != lhs.Dom.Rank() {
			return fmt.Errorf("runtime: term over %s has shift rank %d, want %d", tm.Src.Name, len(tm.Shift), lhs.Dom.Rank())
		}
	}
	return nil
}

// analyzeStatement derives the ownership analysis of
// lhs(region) = Σ terms. When every array is single-owner over
// standard domains and all shifted references stay in bounds, the
// analysis runs over owner tiles: O(tiles) interval arithmetic for
// the local interior plus a per-element walk of only the remote
// boundary (for exact cross-term deduplication of repeated ghost
// elements). Everything else — replicated arrays, strided regions,
// out-of-bounds references — takes the per-element path, which is
// also the differential-testing oracle.
func analyzeStatement(lhs *Array, region index.Domain, terms []Term) (*analysis, error) {
	if err := checkStatement(lhs, region, terms); err != nil {
		return nil, err
	}
	if runAnalyzable(lhs, region, terms) {
		if an, ok := analyzeRuns(lhs, region, terms, minTileElems); ok {
			return an, nil
		}
	}
	return analyzeElementwise(lhs, region, terms)
}

// runAnalyzable reports whether the tile-based analysis applies and
// is guaranteed to agree with the element-wise oracle.
func runAnalyzable(lhs *Array, region index.Domain, terms []Term) bool {
	if lhs.owners == nil || !region.IsStandard() || !lhs.Dom.IsStandard() {
		return false
	}
	if region.Empty() && region.Rank() > 0 {
		return false
	}
	for d, tr := range region.Dims {
		if tr.Low < lhs.Dom.Dims[d].Low || tr.High > lhs.Dom.Dims[d].High {
			return false // let the oracle report the error
		}
	}
	for _, tm := range terms {
		if tm.Src.owners == nil || !tm.Src.Dom.IsStandard() {
			return false
		}
		for d, tr := range region.Dims {
			if tr.Low+tm.Shift[d] < tm.Src.Dom.Dims[d].Low || tr.High+tm.Shift[d] > tm.Src.Dom.Dims[d].High {
				return false // out of bounds: oracle reports the offending element
			}
		}
	}
	return true
}

// analyzeRuns is the tile-based fast path. ok = false when a mapping
// declines bulk decomposition or the decomposition is finer-grained
// than minElems elements per tile on average, in which case the
// caller falls back to the grid-backed element-wise path.
func analyzeRuns(lhs *Array, region index.Domain, terms []Term, minElems int) (*analysis, bool) {
	// Granularity cutoff, decided from O(1) run-count estimates
	// before anything is materialized: each tile costs a bulk
	// src-tile computation per term (interval arithmetic plus a
	// handful of allocations), while the element-wise path pays one
	// O(1) grid lookup per element. Interval analysis only wins when
	// tiles amortize that constant — fine-grain interleavings
	// (CYCLIC(1) in several dimensions) are cheaper on the grids.
	if minElems > 0 && !worthRunAnalysis(lhs, region, terms, minElems) {
		return nil, false
	}
	an := newAnalysis()
	lhsTiles, err := core.AppendBulkOwnerTiles(nil, lhs.mapping, region)
	if err != nil {
		return nil, false
	}
	rank := region.Rank()
	seen := map[commKey]bool{}
	shifted := make([]index.Triplet, rank)
	var srcTiles []core.Tile
	for _, lt := range lhsTiles {
		w := lt.Proc
		an.loads[w] += lt.Region.Size() * len(terms)
		for _, tm := range terms {
			for d := 0; d < rank; d++ {
				shifted[d] = index.Unit(lt.Region.Dims[d].Low+tm.Shift[d], lt.Region.Dims[d].High+tm.Shift[d])
			}
			srcTiles, err = core.AppendBulkOwnerTiles(srcTiles[:0], tm.Src.mapping, index.Domain{Dims: shifted})
			if err != nil {
				return nil, false
			}
			for _, st := range srcTiles {
				if st.Proc == w {
					an.localRefs += st.Region.Size()
					continue
				}
				an.remoteRefs += st.Region.Size()
				src, sender := tm.Src, st.Proc
				st.Region.ForEach(func(t index.Tuple) bool {
					roff, _ := src.Dom.Offset(t)
					key := commKey{src: src, off: roff, dst: w}
					if !seen[key] {
						seen[key] = true
						an.pairElems[[2]int{sender, w}]++
					}
					return true
				})
			}
		}
	}
	return an, true
}

// worthRunAnalysis estimates, in O(rank) per array, whether every
// mapping in the statement decomposes into tiles of at least minElems
// elements on average over the region.
func worthRunAnalysis(lhs *Array, region index.Domain, terms []Term, minElems int) bool {
	size := region.Size()
	est, ok := core.EstimateBulkTiles(lhs.mapping, region)
	if !ok || est*minElems > size {
		return false
	}
	shifted := make([]index.Triplet, region.Rank())
	for _, tm := range terms {
		for d, tr := range region.Dims {
			shifted[d] = index.Unit(tr.Low+tm.Shift[d], tr.High+tm.Shift[d])
		}
		est, ok := core.EstimateBulkTiles(tm.Src.mapping, index.Domain{Dims: shifted})
		if !ok || est*minElems > size {
			return false
		}
	}
	return true
}

// analyzeElementwise is the original per-element analysis, retained
// as the oracle for differential testing and as the fallback for
// replicated arrays, strided regions and error reporting.
func analyzeElementwise(lhs *Array, region index.Domain, terms []Term) (*analysis, error) {
	an := newAnalysis()
	ref := make(index.Tuple, lhs.Dom.Rank())
	seen := map[commKey]bool{}
	var ferr error
	region.ForEach(func(t index.Tuple) bool {
		loff, ok := lhs.Dom.Offset(t)
		if !ok {
			ferr = fmt.Errorf("runtime: region index %s outside %s domain %s", t, lhs.Name, lhs.Dom)
			return false
		}
		writers := lhs.ownerSet(loff)
		for _, tm := range terms {
			for d := range t {
				ref[d] = t[d] + tm.Shift[d]
			}
			roff, ok := tm.Src.Dom.Offset(ref)
			if !ok {
				ferr = fmt.Errorf("runtime: reference %s(%s) out of bounds in statement over %s(%s)", tm.Src.Name, ref, lhs.Name, t)
				return false
			}
			for _, w := range writers {
				if tm.Src.ownedBy(roff, w) {
					an.localRefs++
					continue
				}
				an.remoteRefs++
				key := commKey{src: tm.Src, off: roff, dst: w}
				if seen[key] {
					continue
				}
				seen[key] = true
				sender := tm.Src.ownerSet(roff)[0]
				an.pairElems[[2]int{sender, w}]++
			}
		}
		for _, w := range writers {
			an.loads[w] += len(terms)
		}
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	return an, nil
}
