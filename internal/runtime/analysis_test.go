package runtime

import (
	"fmt"
	"reflect"
	"testing"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// TestAnalyzeRunsMatchesElementwise differentially tests the
// run-based statement analysis against the per-element oracle across
// format families, mixed lhs/rhs distributions and stencil shapes:
// identical message aggregation, loads and reference counts.
func TestAnalyzeRunsMatchesElementwise(t *testing.T) {
	sys, err := proc.NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := sys.DeclareArray("P1", index.Standard(1, 4))
	p2, _ := sys.DeclareArray("P2", index.Standard(1, 2, 1, 2))

	n := 17
	dom := index.Standard(0, n, 0, n)
	owner := make([]int, n+1)
	for i := range owner {
		owner[i] = (i*3)%4 + 1
	}
	ind, err := dist.NewIndirect(owner)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(f0, f1 dist.Format, tg proc.Target) core.ElementMapping {
		d, err := dist.New(dom, []dist.Format{f0, f1}, tg)
		if err != nil {
			t.Fatal(err)
		}
		return core.DistMapping{D: d}
	}
	maps := map[string]core.ElementMapping{
		"block-collapsed":  mk(dist.Block{}, dist.Collapsed{}, proc.Whole(p1)),
		"vienna-collapsed": mk(dist.BlockVienna{}, dist.Collapsed{}, proc.Whole(p1)),
		"cyclic1-coll":     mk(dist.Cyclic{K: 1}, dist.Collapsed{}, proc.Whole(p1)),
		"cyclic3-coll":     mk(dist.Cyclic{K: 3}, dist.Collapsed{}, proc.Whole(p1)),
		"gblock-coll":      mk(dist.GeneralBlock{Bounds: []int{4, 4, 12}}, dist.Collapsed{}, proc.Whole(p1)),
		"indirect-coll":    mk(ind, dist.Collapsed{}, proc.Whole(p1)),
		"block-block":      mk(dist.Block{}, dist.Block{}, proc.Whole(p2)),
		"cyclic-cyclic":    mk(dist.Cyclic{K: 2}, dist.Cyclic{K: 3}, proc.Whole(p2)),
	}

	interior := index.Standard(1, n-1, 1, n-1)
	stencils := map[string][][]int{
		"jacobi":   {{-1, 0}, {1, 0}, {0, -1}, {0, 1}},
		"center":   {{0, 0}},
		"diagonal": {{-1, -1}, {1, 1}},
	}

	for ln, lm := range maps {
		for rn, rm := range maps {
			for sn, shifts := range stencils {
				label := fmt.Sprintf("%s=%s/%s", ln, rn, sn)
				t.Run(label, func(t *testing.T) {
					lhs, err := NewArray("L", lm)
					if err != nil {
						t.Fatal(err)
					}
					src, err := NewArray("R", rm)
					if err != nil {
						t.Fatal(err)
					}
					terms := make([]Term, len(shifts))
					for i, s := range shifts {
						terms[i] = Term{Src: src, Shift: s, Coeff: 1}
					}
					if !runAnalyzable(lhs, interior, terms) {
						t.Fatalf("statement unexpectedly not run-analyzable")
					}
					// minElems 0: exercise the mechanism even where the
					// production heuristic would prefer the grids.
					fast, ok := analyzeRuns(lhs, interior, terms, 0)
					if !ok {
						t.Fatalf("analyzeRuns declined")
					}
					slow, err := analyzeElementwise(lhs, interior, terms)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(fast.pairElems, slow.pairElems) {
						t.Errorf("pairElems: runs %v, oracle %v", fast.pairElems, slow.pairElems)
					}
					if !reflect.DeepEqual(fast.loads, slow.loads) {
						t.Errorf("loads: runs %v, oracle %v", fast.loads, slow.loads)
					}
					if fast.localRefs != slow.localRefs || fast.remoteRefs != slow.remoteRefs {
						t.Errorf("refs: runs (%d,%d), oracle (%d,%d)",
							fast.localRefs, fast.remoteRefs, slow.localRefs, slow.remoteRefs)
					}
				})
			}
		}
	}
}

// TestAnalyzeFallbacks pins the conditions under which the analysis
// must take the per-element path.
func TestAnalyzeFallbacks(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	p1, _ := sys.DeclareArray("P1", index.Standard(1, 4))
	dom := index.Standard(1, 12)
	d, err := dist.New(dom, []dist.Format{dist.Block{}}, proc.Whole(p1))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray("A", core.DistMapping{D: d})
	if err != nil {
		t.Fatal(err)
	}
	terms := []Term{{Src: a, Shift: []int{-1}, Coeff: 1}}
	// Out-of-bounds shift: not run-analyzable, and the oracle reports
	// the error.
	if runAnalyzable(a, dom, terms) {
		t.Fatal("out-of-bounds statement must not be run-analyzable")
	}
	if _, err := analyzeStatement(a, dom, terms); err == nil {
		t.Fatal("out-of-bounds statement must fail analysis")
	}
	// Strided region: falls back, still analyzed correctly.
	strided := index.New(index.Triplet{Low: 3, High: 11, Stride: 2})
	if runAnalyzable(a, strided, []Term{{Src: a, Shift: []int{0}, Coeff: 1}}) {
		t.Fatal("strided region must not be run-analyzable")
	}
	if _, err := analyzeStatement(a, strided, []Term{{Src: a, Shift: []int{0}, Coeff: 1}}); err != nil {
		t.Fatalf("strided-region analysis: %v", err)
	}
}
