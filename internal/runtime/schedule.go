package runtime

import (
	"fmt"

	"hpfnt/internal/index"
	"hpfnt/internal/machine"
)

// Schedule is a precomputed communication schedule for a repeated
// stencil statement: the overlap ("ghost region") exchange of
// compilers for distributed-memory systems (the SUPERB / Vienna
// Fortran Compilation System technique the paper's reference [13]
// surveys). Building the schedule performs the per-element ownership
// analysis once; each subsequent Execute replays the aggregated
// messages and computes values without re-deriving communication
// sets. For mappings that do not change between iterations this is
// semantically identical to calling ShiftAssign each time — verified
// by tests — but performs no per-iteration analysis.
type Schedule struct {
	lhs    *Array
	region index.Domain
	terms  []Term

	// pairElems[(src,dst)] is the aggregated ghost traffic.
	pairElems map[[2]int]int
	// loads[p] is the per-iteration compute load of processor p.
	loads map[int]int
	// localRefs/remoteRefs replay the reference counters.
	localRefs  int
	remoteRefs int
	// arrays/gens capture the involved arrays' remap generations at
	// build time; Execute refuses a stale schedule.
	arrays []*Array
	gens   []int
}

// BuildSchedule analyzes the statement lhs(region) = Σ terms once and
// returns its reusable communication schedule. The analysis runs over
// ownership runs (closed-form interval intersection of the lhs and
// rhs owner tiles, see analyzeStatement) rather than element
// enumeration, so its cost scales with the number of ownership runs
// and the ghost-boundary size, not the region volume. The arrays'
// mappings must not be remapped between executions (remapping
// invalidates the schedule; rebuild after REDISTRIBUTE/REALIGN).
func BuildSchedule(lhs *Array, region index.Domain, terms []Term) (*Schedule, error) {
	an, err := analyzeStatement(lhs, region, terms)
	if err != nil {
		return nil, err
	}
	s := &Schedule{
		lhs:        lhs,
		region:     region,
		terms:      terms,
		pairElems:  an.pairElems,
		loads:      an.loads,
		localRefs:  an.localRefs,
		remoteRefs: an.remoteRefs,
	}
	s.arrays = append(s.arrays, lhs)
	for _, tm := range terms {
		s.arrays = append(s.arrays, tm.Src)
	}
	for _, a := range s.arrays {
		s.gens = append(s.gens, a.gen)
	}
	return s, nil
}

// checkFresh refuses replay after any involved array was remapped.
func (s *Schedule) checkFresh() error {
	for i, a := range s.arrays {
		if a.gen != s.gens[i] {
			return fmt.Errorf("runtime: schedule over %s invalidated by remap; rebuild it", a.Name)
		}
	}
	return nil
}

// GhostElements reports the total number of elements exchanged per
// execution (the overlap-area size).
func (s *Schedule) GhostElements() int {
	total := 0
	for _, n := range s.pairElems {
		total += n
	}
	return total
}

// Messages reports the number of aggregated messages per execution.
func (s *Schedule) Messages() int { return len(s.pairElems) }

// Execute replays the exchange on the machine and computes the
// statement's values (simultaneous-assignment semantics). A nil
// machine computes values only.
func (s *Schedule) Execute(m *machine.Machine) error {
	if err := s.checkFresh(); err != nil {
		return err
	}
	if m != nil {
		for pr, n := range s.pairElems {
			m.Send(pr[0], pr[1], n)
		}
		m.RecordLocal(s.localRefs)
		m.RecordRemote(s.remoteRefs)
		for p, l := range s.loads {
			m.AddLoad(p, l)
		}
	}
	// Value computation, identical to ShiftAssign's.
	vals := make([]float64, s.region.Size())
	offs := make([]int, s.region.Size())
	ref := make(index.Tuple, s.lhs.Dom.Rank())
	k := 0
	s.region.ForEach(func(t index.Tuple) bool {
		loff, _ := s.lhs.Dom.Offset(t)
		offs[k] = loff
		sum := 0.0
		for _, tm := range s.terms {
			for d := range t {
				ref[d] = t[d] + tm.Shift[d]
			}
			roff, _ := tm.Src.Dom.Offset(ref)
			sum += tm.Coeff * tm.Src.data[roff]
		}
		vals[k] = sum
		k++
		return true
	})
	for i := 0; i < k; i++ {
		s.lhs.data[offs[i]] = vals[i]
	}
	return nil
}

// ReduceOp selects a reduction operator.
type ReduceOp int

// The supported reduction operators.
const (
	ReduceSum ReduceOp = iota
	ReduceMax
	ReduceMin
)

// Reduce computes a global reduction of the array under the
// owner-computes rule: each owning processor reduces its local
// elements (replicated elements are reduced by their first owner
// only, so the result counts each element once), then the partial
// results are combined along a binary tree — ⌈log2 NP⌉ rounds of one
// single-element message per participating processor, the standard
// distributed-memory reduction cost the machine records.
func Reduce(m *machine.Machine, a *Array, op ReduceOp) (float64, error) {
	np := 1
	if m != nil {
		np = m.NP
	}
	partial := make([]float64, np+1)
	has := make([]bool, np+1)
	size := a.Dom.Size()
	acc := func(cur float64, ok bool, v float64) float64 {
		if !ok {
			return v
		}
		switch op {
		case ReduceSum:
			return cur + v
		case ReduceMax:
			if v > cur {
				return v
			}
			return cur
		case ReduceMin:
			if v < cur {
				return v
			}
			return cur
		}
		return cur
	}
	for off := 0; off < size; off++ {
		p := a.ownerSet(off)[0]
		if m == nil {
			p = 1
		}
		partial[p] = acc(partial[p], has[p], a.data[off])
		has[p] = true
		if m != nil {
			m.AddLoad(p, 1)
		}
	}
	// Tree combine over processors holding partials.
	var procs []int
	for p := 1; p <= np; p++ {
		if has[p] {
			procs = append(procs, p)
		}
	}
	if len(procs) == 0 {
		return 0, fmt.Errorf("runtime: reduction over empty array %s", a.Name)
	}
	for len(procs) > 1 {
		var next []int
		for i := 0; i+1 < len(procs); i += 2 {
			src, dst := procs[i+1], procs[i]
			if m != nil {
				m.Send(src, dst, 1)
			}
			partial[dst] = acc(partial[dst], true, partial[src])
			next = append(next, dst)
		}
		if len(procs)%2 == 1 {
			next = append(next, procs[len(procs)-1])
		}
		procs = next
	}
	return partial[procs[0]], nil
}
