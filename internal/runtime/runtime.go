// Package runtime executes array statements over distributed arrays
// under the owner-computes rule, charging communication to a
// simulated machine (package machine). It is the execution substrate
// for the paper's experiments: a statement like the staggered-grid
// update of §8.1.1,
//
//	P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)
//
// is expressed as a shift-assignment whose right-hand-side references
// are shifted reads of distributed arrays; every reference whose
// owner differs from the left-hand-side owner becomes remote traffic,
// aggregated into one message per processor pair per statement
// (message vectorization), with per-statement deduplication of
// repeated remote elements.
//
// This sequential executor is also the differential-testing oracle
// for the parallel SPMD engine (package spmd): for any statement,
// schedule replay, remap or reduction, the spmd engine must produce
// identical array values and identical machine statistics to this
// package. Tests and fuzz targets in internal/engine assert that
// equivalence.
package runtime

import (
	"fmt"

	"hpfnt/internal/core"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
)

// Array is a distributed array: a dense global value backing plus the
// materialized ownership map of its element mapping. (Semantically
// each processor stores only its owned elements; the dense backing
// keeps verification simple while the ownership map drives all
// communication accounting.)
type Array struct {
	Name string
	Dom  index.Domain

	data    []float64
	owners  []int32 // single-owner fast path; nil when replicated
	repOwns [][]int // full owner sets when replicated
	mapping core.ElementMapping
	// gen counts remaps; schedules capture it at build time and refuse
	// to replay against a remapped array.
	gen int
}

// NewArray materializes a distributed array from an element mapping,
// zero-initialized.
func NewArray(name string, m core.ElementMapping) (*Array, error) {
	a := &Array{Name: name, Dom: m.Domain(), mapping: m}
	a.data = make([]float64, a.Dom.Size())
	g, err := core.OwnerGrid(m)
	if err == nil {
		a.owners = g
		return a, nil
	}
	rg, rerr := core.ReplicatedGrid(m)
	if rerr != nil {
		return nil, fmt.Errorf("runtime: materializing %s: %w", name, rerr)
	}
	a.repOwns = rg
	return a, nil
}

// Mapping returns the array's element mapping.
func (a *Array) Mapping() core.ElementMapping { return a.mapping }

// Replicated reports whether any element has more than one owner.
func (a *Array) Replicated() bool { return a.owners == nil }

// At reads the element at tuple t.
func (a *Array) At(t index.Tuple) float64 {
	off, ok := a.Dom.Offset(t)
	if !ok {
		panic(fmt.Sprintf("runtime: %s: index %s out of domain %s", a.Name, t, a.Dom))
	}
	return a.data[off]
}

// Set writes the element at tuple t.
func (a *Array) Set(t index.Tuple, v float64) {
	off, ok := a.Dom.Offset(t)
	if !ok {
		panic(fmt.Sprintf("runtime: %s: index %s out of domain %s", a.Name, t, a.Dom))
	}
	a.data[off] = v
}

// Fill initializes every element from fn.
func (a *Array) Fill(fn func(t index.Tuple) float64) {
	k := 0
	a.Dom.ForEach(func(t index.Tuple) bool {
		a.data[k] = fn(t)
		k++
		return true
	})
}

// Data exposes the dense backing (column-major) for verification.
func (a *Array) Data() []float64 { return a.data }

// ownerSet returns the owners of the element at offset off.
func (a *Array) ownerSet(off int) []int {
	if a.owners != nil {
		return []int{int(a.owners[off])}
	}
	return a.repOwns[off]
}

// ownedBy reports whether processor p owns the element at offset off.
func (a *Array) ownedBy(off int, p int) bool {
	if a.owners != nil {
		return int(a.owners[off]) == p
	}
	for _, o := range a.repOwns[off] {
		if o == p {
			return true
		}
	}
	return false
}

// Term is one right-hand-side reference Coeff * Src(t + Shift).
type Term struct {
	Src   *Array
	Shift []int
	Coeff float64
}

// Ref returns a shifted reference term.
func Ref(src *Array, coeff float64, shift ...int) Term {
	return Term{Src: src, Shift: shift, Coeff: coeff}
}

type commKey struct {
	src *Array
	off int
	dst int
}

// ShiftAssign executes lhs(t) = Σ_k coeff_k · src_k(t + shift_k) for
// every t in region (a sub-domain of lhs), under the owner-computes
// rule: each owner of lhs(t) performs the computation, fetching
// non-local operands. Fortran array-assignment semantics hold: the
// whole right-hand side is evaluated before any store. Remote fetches
// are deduplicated per statement and aggregated into one message per
// (sender, receiver) pair; the machine's load, reference and traffic
// counters are updated. A nil machine executes values only.
func ShiftAssign(m *machine.Machine, lhs *Array, region index.Domain, terms []Term) error {
	if err := checkStatement(lhs, region, terms); err != nil {
		return err
	}
	// Ownership analysis over runs (falling back to the per-element
	// oracle when run analysis does not apply); value evaluation stays
	// a plain data sweep with no ownership work per element.
	var an *analysis
	if m != nil {
		var err error
		an, err = analyzeStatement(lhs, region, terms)
		if err != nil {
			return err
		}
	}
	// Evaluate into a temporary (simultaneous assignment semantics).
	vals := make([]float64, region.Size())
	offs := make([]int, region.Size())
	ref := make(index.Tuple, lhs.Dom.Rank())
	k := 0
	var ferr error
	region.ForEach(func(t index.Tuple) bool {
		loff, ok := lhs.Dom.Offset(t)
		if !ok {
			ferr = fmt.Errorf("runtime: region index %s outside %s domain %s", t, lhs.Name, lhs.Dom)
			return false
		}
		offs[k] = loff
		sum := 0.0
		for _, tm := range terms {
			for d := range t {
				ref[d] = t[d] + tm.Shift[d]
			}
			roff, ok := tm.Src.Dom.Offset(ref)
			if !ok {
				ferr = fmt.Errorf("runtime: reference %s(%s) out of bounds in assignment to %s(%s)", tm.Src.Name, ref, lhs.Name, t)
				return false
			}
			sum += tm.Coeff * tm.Src.data[roff]
		}
		vals[k] = sum
		k++
		return true
	})
	if ferr != nil {
		return ferr
	}
	if an != nil {
		an.charge(m)
	}
	for i := 0; i < k; i++ {
		lhs.data[offs[i]] = vals[i]
	}
	return nil
}

// GeneralTerm is a right-hand-side reference Coeff · Src(Map(t)) with
// an arbitrary (possibly rank-changing) index mapping, covering
// references like the A(i) in E(i,j) = D(i,j) + A(i).
type GeneralTerm struct {
	Src   *Array
	Coeff float64
	// Map translates a left-hand-side index tuple to the source's
	// index tuple. It must return tuples within Src's domain.
	Map func(index.Tuple) index.Tuple
}

// GeneralAssign is ShiftAssign with arbitrary per-term index
// mappings; semantics, owner-computes accounting, per-statement
// deduplication and message vectorization are identical.
func GeneralAssign(m *machine.Machine, lhs *Array, region index.Domain, terms []GeneralTerm) error {
	if region.Rank() != lhs.Dom.Rank() {
		return fmt.Errorf("runtime: region rank %d does not match %s rank %d", region.Rank(), lhs.Name, lhs.Dom.Rank())
	}
	vals := make([]float64, region.Size())
	offs := make([]int, region.Size())
	pairElems := map[[2]int]int{}
	seen := map[commKey]bool{}
	k := 0
	var ferr error
	region.ForEach(func(t index.Tuple) bool {
		loff, ok := lhs.Dom.Offset(t)
		if !ok {
			ferr = fmt.Errorf("runtime: region index %s outside %s domain %s", t, lhs.Name, lhs.Dom)
			return false
		}
		offs[k] = loff
		sum := 0.0
		writers := lhs.ownerSet(loff)
		for _, tm := range terms {
			ref := tm.Map(t.Clone())
			roff, ok := tm.Src.Dom.Offset(ref)
			if !ok {
				ferr = fmt.Errorf("runtime: reference %s(%s) out of bounds in assignment to %s(%s)", tm.Src.Name, ref, lhs.Name, t)
				return false
			}
			sum += tm.Coeff * tm.Src.data[roff]
			if m == nil {
				continue
			}
			for _, w := range writers {
				if tm.Src.ownedBy(roff, w) {
					m.RecordLocal(1)
					continue
				}
				m.RecordRemote(1)
				key := commKey{src: tm.Src, off: roff, dst: w}
				if seen[key] {
					continue
				}
				seen[key] = true
				sender := tm.Src.ownerSet(roff)[0]
				pairElems[[2]int{sender, w}]++
			}
		}
		if m != nil {
			for _, w := range writers {
				m.AddLoad(w, len(terms))
			}
		}
		vals[k] = sum
		k++
		return true
	})
	if ferr != nil {
		return ferr
	}
	if m != nil {
		for pr, n := range pairElems {
			m.Send(pr[0], pr[1], n)
		}
	}
	for i := 0; i < k; i++ {
		lhs.data[offs[i]] = vals[i]
	}
	return nil
}

// RemapSender picks which holder of a (possibly replicated) element
// ships it to new owner dst during a remap: destinations are spread
// round-robin over the replica set, so a replicated source does not
// funnel all outgoing remap traffic through its first owner. Both the
// sequential executor and the spmd engine use this rule, keeping
// their traffic statistics identical.
func RemapSender(old []int, dst int) int {
	if len(old) == 1 {
		return old[0]
	}
	return old[(dst-1)%len(old)]
}

// Remap moves an array to a new element mapping, charging one
// aggregated message per processor pair for all elements whose owner
// set changes, and returns the number of elements moved. The values
// are unchanged; only ownership (and therefore placement) moves. This
// is the data movement behind REDISTRIBUTE, REALIGN and explicit
// dummy-argument remapping (§4.2, §5.2, §7).
//
// When both the old and the new mapping admit a bulk owner-tile
// decomposition, the ownership comparison runs over tile
// intersections — O(tiles) interval arithmetic instead of a
// per-element owner-set walk; replicated or non-bulk mappings take
// the element path, which doubles as the oracle.
func Remap(m *machine.Machine, a *Array, newMap core.ElementMapping) (int, error) {
	if !newMap.Domain().Equal(a.Dom) {
		return 0, fmt.Errorf("runtime: remap of %s to mapping over %s (have %s)", a.Name, newMap.Domain(), a.Dom)
	}
	var newOwners []int32
	var newRep [][]int
	g, err := core.OwnerGrid(newMap)
	if err == nil {
		newOwners = g
	} else {
		newRep, err = core.ReplicatedGrid(newMap)
		if err != nil {
			return 0, fmt.Errorf("runtime: remap of %s: %w", a.Name, err)
		}
	}
	moved, pairElems, ok := 0, map[[2]int]int{}, false
	if a.owners != nil && newOwners != nil {
		moved, pairElems, ok = remapTilewise(a, newMap)
	}
	if !ok {
		moved, pairElems = remapElementwise(a, newOwners, newRep)
	}
	if m != nil {
		for pr, n := range pairElems {
			m.Send(pr[0], pr[1], n)
		}
	}
	a.owners = newOwners
	a.repOwns = newRep
	a.mapping = newMap
	a.gen++
	return moved, nil
}

// remapTilewise compares ownership over the bulk tile decompositions:
// each new-owner tile is re-tiled by the old mapping, and every
// sub-tile whose owners differ contributes its whole volume to the
// corresponding processor pair. ok = false when either mapping
// declines bulk decomposition; the caller falls back to the element
// walk.
func remapTilewise(a *Array, newMap core.ElementMapping) (int, map[[2]int]int, bool) {
	newTiles, err := core.AppendBulkOwnerTiles(nil, newMap, a.Dom)
	if err != nil {
		return 0, nil, false
	}
	moved := 0
	pairElems := map[[2]int]int{}
	var old []core.Tile
	for _, nt := range newTiles {
		old, err = core.AppendBulkOwnerTiles(old[:0], a.mapping, nt.Region)
		if err != nil {
			return 0, nil, false
		}
		for _, ot := range old {
			if ot.Proc == nt.Proc {
				continue
			}
			n := ot.Region.Size()
			moved += n
			pairElems[[2]int{ot.Proc, nt.Proc}] += n
		}
	}
	return moved, pairElems, true
}

// remapElementwise is the per-element ownership comparison, the
// fallback (and oracle) for replicated or non-bulk mappings.
func remapElementwise(a *Array, newOwners []int32, newRep [][]int) (int, map[[2]int]int) {
	moved := 0
	pairElems := map[[2]int]int{}
	size := a.Dom.Size()
	var oldSingle, newSingle [1]int
	for off := 0; off < size; off++ {
		var old []int
		if a.owners != nil {
			oldSingle[0] = int(a.owners[off])
			old = oldSingle[:]
		} else {
			old = a.repOwns[off]
		}
		var cur []int
		if newOwners != nil {
			newSingle[0] = int(newOwners[off])
			cur = newSingle[:]
		} else {
			cur = newRep[off]
		}
		anyNew := false
		for _, p := range cur {
			if !containsInt(old, p) {
				anyNew = true
				pairElems[[2]int{RemapSender(old, p), p}]++
			}
		}
		if anyNew {
			moved++
		}
	}
	return moved, pairElems
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// SeqArray is the sequential reference executor's array: values only,
// no distribution.
type SeqArray struct {
	Dom  index.Domain
	data []float64
}

// NewSeqArray allocates a zeroed sequential array.
func NewSeqArray(dom index.Domain) *SeqArray {
	return &SeqArray{Dom: dom, data: make([]float64, dom.Size())}
}

// Fill initializes every element from fn.
func (a *SeqArray) Fill(fn func(t index.Tuple) float64) {
	k := 0
	a.Dom.ForEach(func(t index.Tuple) bool {
		a.data[k] = fn(t)
		k++
		return true
	})
}

// At reads the element at t.
func (a *SeqArray) At(t index.Tuple) float64 {
	off, ok := a.Dom.Offset(t)
	if !ok {
		panic(fmt.Sprintf("runtime: seq index %s out of domain %s", t, a.Dom))
	}
	return a.data[off]
}

// Data exposes the dense backing.
func (a *SeqArray) Data() []float64 { return a.data }

// SeqTerm is a shifted reference for the sequential executor.
type SeqTerm struct {
	Src   *SeqArray
	Shift []int
	Coeff float64
}

// SeqShiftAssign is the sequential reference semantics of
// ShiftAssign, used to verify the distributed executor.
func SeqShiftAssign(lhs *SeqArray, region index.Domain, terms []SeqTerm) error {
	vals := make([]float64, region.Size())
	offs := make([]int, region.Size())
	ref := make(index.Tuple, lhs.Dom.Rank())
	k := 0
	var ferr error
	region.ForEach(func(t index.Tuple) bool {
		loff, ok := lhs.Dom.Offset(t)
		if !ok {
			ferr = fmt.Errorf("runtime: region index %s outside domain %s", t, lhs.Dom)
			return false
		}
		offs[k] = loff
		sum := 0.0
		for _, tm := range terms {
			for d := range t {
				ref[d] = t[d] + tm.Shift[d]
			}
			roff, ok := tm.Src.Dom.Offset(ref)
			if !ok {
				ferr = fmt.Errorf("runtime: seq reference %s out of bounds", ref)
				return false
			}
			sum += tm.Coeff * tm.Src.data[roff]
		}
		vals[k] = sum
		k++
		return true
	})
	if ferr != nil {
		return ferr
	}
	for i := 0; i < k; i++ {
		lhs.data[offs[i]] = vals[i]
	}
	return nil
}
