package runtime

import (
	"fmt"

	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
)

// IrregularSchedule is the sequential executor's side of the
// inspector–executor technique (package inspector): the reusable
// schedule of one irregular gather/scatter statement
//
//	lhs(Writes[k]) = Σ_k Coeffs[k]·src(Reads[k])
//
// whose subscripts come from indirection arrays and therefore admit
// no closed-form communication analysis. BuildIrregular runs the
// inspector once; each Execute replays the aggregated halo exchange
// on the machine and computes the values — structurally the same
// ghost-fill / accumulate / store sequence the spmd engine performs
// over its distributed stores, executed here over the dense backing.
// This executor is the differential oracle for the spmd one: both
// charge the counters recorded in the shared inspector schedule, so
// their statistics agree by construction and their values are
// asserted equal by FuzzIrregularEquivalence (package engine).
type IrregularSchedule struct {
	lhs, src *Array
	s        *inspector.Schedule
	// ghost[p]/acc[p] are worker p's ghost buffer and accumulator,
	// reused across executions.
	ghost [][]float64
	acc   [][]float64
	// gens capture the arrays' remap generations at build time;
	// Execute refuses a stale schedule.
	arrays []*Array
	gens   []int
}

// BuildIrregular runs the inspector over the pattern's accesses and
// returns the reusable schedule. np is the abstract processor count
// of the machine the schedule will charge. Replicated arrays have no
// single-owner partition and are refused; remapping either array
// invalidates the schedule (rebuild after REDISTRIBUTE/REALIGN).
func BuildIrregular(np int, lhs, src *Array, pat inspector.Pattern) (*IrregularSchedule, error) {
	if lhs.owners == nil || src.owners == nil {
		return nil, fmt.Errorf("runtime: %s", inspector.ErrReplicated)
	}
	sched, err := inspector.Build(np, lhs.owners, src.owners, pat)
	if err != nil {
		return nil, err
	}
	s := &IrregularSchedule{
		lhs:    lhs,
		src:    src,
		s:      sched,
		ghost:  make([][]float64, np+1),
		acc:    make([][]float64, np+1),
		arrays: []*Array{lhs, src},
	}
	for p := 1; p <= np; p++ {
		if pl := sched.Plans[p]; pl != nil {
			s.ghost[p] = make([]float64, pl.NGhost)
			s.acc[p] = make([]float64, len(pl.Outs))
		}
	}
	for _, a := range s.arrays {
		s.gens = append(s.gens, a.gen)
	}
	return s, nil
}

// GhostElements reports the deduplicated halo traffic per execution.
func (s *IrregularSchedule) GhostElements() int { return s.s.GhostElements() }

// Messages reports the aggregated messages per execution.
func (s *IrregularSchedule) Messages() int { return s.s.Messages() }

// Execute replays the halo exchange on the machine and computes the
// statement's values (simultaneous-assignment semantics: all reads —
// local and ghost — happen before any store). A nil machine computes
// values only.
func (s *IrregularSchedule) Execute(m *machine.Machine) error {
	for i, a := range s.arrays {
		if a.gen != s.gens[i] {
			return fmt.Errorf("runtime: irregular schedule over %s invalidated by remap; rebuild it", a.Name)
		}
	}
	// Halo exchange: fill each reader's ghost buffer from the dense
	// source, charging one aggregated message per pair.
	for _, pr := range s.s.Pairs {
		if m != nil {
			m.Send(pr.Src, pr.Dst, len(pr.Offsets))
		}
		g := s.ghost[pr.Dst]
		for i, off := range pr.Offsets {
			g[pr.Targets[i]] = s.src.data[off]
		}
	}
	// Compute every worker's accumulators before any store: with
	// lhs == src (e.g. an in-place permutation) a store interleaved
	// with another worker's reads would break simultaneous-assignment
	// semantics and diverge from the spmd engine, whose workers all
	// read pre-iteration state.
	for p := 1; p <= s.s.NP; p++ {
		pl := s.s.Plans[p]
		if pl == nil {
			continue
		}
		if m != nil {
			m.AddLoad(p, pl.Load)
			m.RecordLocal(pl.LocalRefs)
			m.RecordRemote(pl.RemoteRefs)
		}
		acc, ghost := s.acc[p], s.ghost[p]
		for i := range acc {
			acc[i] = 0
		}
		for j, r := range pl.Reads {
			var v float64
			if r >= 0 {
				v = s.src.data[r]
			} else {
				v = ghost[-r-1]
			}
			acc[pl.WriteIx[j]] += pl.Coeffs[j] * v
		}
	}
	for p := 1; p <= s.s.NP; p++ {
		pl := s.s.Plans[p]
		if pl == nil {
			continue
		}
		acc := s.acc[p]
		for i, off := range pl.Outs {
			s.lhs.data[off] = acc[i]
		}
	}
	return nil
}
