package runtime

import (
	"testing"
	"testing/quick"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
)

func blockMapping(t *testing.T, sys *proc.System, name string, dom index.Domain, f dist.Format) core.ElementMapping {
	t.Helper()
	arr, ok := sys.Lookup("P")
	if !ok {
		var err error
		arr, err = sys.DeclareArray("P", index.Standard(1, sys.AP.N()))
		if err != nil {
			t.Fatal(err)
		}
	}
	formats := make([]dist.Format, dom.Rank())
	formats[0] = f
	for i := 1; i < dom.Rank(); i++ {
		formats[i] = dist.Collapsed{}
	}
	d, err := dist.New(dom, formats, proc.Whole(arr))
	if err != nil {
		t.Fatal(err)
	}
	return core.DistMapping{D: d}
}

func mkMachine(t *testing.T, np int) *machine.Machine {
	t.Helper()
	m, err := machine.New(np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArrayBasics(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	dom := index.Standard(1, 8)
	a, err := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	if a.Replicated() {
		t.Fatal("block array must not be replicated")
	}
	a.Set(index.Tuple{3}, 42)
	if a.At(index.Tuple{3}) != 42 {
		t.Fatal("Set/At roundtrip failed")
	}
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0] * 2) })
	if a.At(index.Tuple{5}) != 10 {
		t.Fatal("Fill failed")
	}
}

func TestShiftAssignValuesMatchSequential(t *testing.T) {
	// The distributed executor must compute exactly what the
	// sequential reference computes, for any mapping.
	sys, _ := proc.NewSystem(4)
	n := 16
	adom := index.Standard(1, n, 1, n)
	for _, f := range []dist.Format{dist.Block{}, dist.Cyclic{K: 3}} {
		am := blockMapping(t, sys, "A", adom, f)
		bm := blockMapping(t, sys, "B", adom, f)
		a, _ := NewArray("A", am)
		b, _ := NewArray("B", bm)
		fill := func(tu index.Tuple) float64 { return float64(tu[0]*31 + tu[1]*7) }
		a.Fill(fill)
		m := mkMachine(t, 4)
		interior := index.Standard(2, n-1, 2, n-1)
		terms := []Term{
			Ref(a, 0.25, -1, 0), Ref(a, 0.25, 1, 0), Ref(a, 0.25, 0, -1), Ref(a, 0.25, 0, 1),
		}
		if err := ShiftAssign(m, b, interior, terms); err != nil {
			t.Fatal(err)
		}
		as := NewSeqArray(adom)
		bs := NewSeqArray(adom)
		as.Fill(fill)
		if err := SeqShiftAssign(bs, interior, []SeqTerm{
			{Src: as, Shift: []int{-1, 0}, Coeff: 0.25},
			{Src: as, Shift: []int{1, 0}, Coeff: 0.25},
			{Src: as, Shift: []int{0, -1}, Coeff: 0.25},
			{Src: as, Shift: []int{0, 1}, Coeff: 0.25},
		}); err != nil {
			t.Fatal(err)
		}
		bd, sd := b.Data(), bs.Data()
		for i := range bd {
			if bd[i] != sd[i] {
				t.Fatalf("format %s: value mismatch at %d: %f vs %f", f, i, bd[i], sd[i])
			}
		}
	}
}

func TestSimultaneousSemantics(t *testing.T) {
	// A = A(shifted) must read pre-assignment values (Fortran array
	// assignment semantics).
	sys, _ := proc.NewSystem(2)
	dom := index.Standard(1, 6)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	region := index.Standard(2, 6)
	// A(i) = A(i-1) for i in 2..6: result must be 1,1,2,3,4,5.
	if err := ShiftAssign(nil, a, region, []Term{Ref(a, 1, -1)}); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2, 3, 4, 5}
	for i, w := range want {
		if got := a.At(index.Tuple{i + 1}); got != w {
			t.Fatalf("A(%d) = %f, want %f (simultaneous semantics)", i+1, got, w)
		}
	}
}

func TestCommunicationCounting(t *testing.T) {
	// 1-D shift across a block boundary: exactly one element crosses
	// each boundary, in one message.
	sys, _ := proc.NewSystem(4)
	dom := index.Standard(1, 16)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	b, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	m := mkMachine(t, 4)
	region := index.Standard(2, 16)
	if err := ShiftAssign(m, b, region, []Term{Ref(a, 1, -1)}); err != nil {
		t.Fatal(err)
	}
	r := m.Stats()
	// Owners of B(i) and A(i-1) differ only at block starts i = 5, 9,
	// 13: 3 remote refs, 3 messages (one per neighboring pair).
	if r.RemoteRefs != 3 {
		t.Fatalf("RemoteRefs = %d, want 3", r.RemoteRefs)
	}
	if r.Messages != 3 {
		t.Fatalf("Messages = %d, want 3", r.Messages)
	}
	if r.ElementsMoved != 3 {
		t.Fatalf("Elements = %d, want 3", r.ElementsMoved)
	}
	if r.LocalRefs != 12 {
		t.Fatalf("LocalRefs = %d, want 12", r.LocalRefs)
	}
}

func TestStatementDeduplication(t *testing.T) {
	// Two terms reading the same remote element in one statement must
	// fetch it once.
	sys, _ := proc.NewSystem(4)
	dom := index.Standard(1, 16)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	b, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	m := mkMachine(t, 4)
	region := index.Standard(5, 5) // single element B(5) on proc 2
	// Both terms read A(4), owned by proc 1.
	if err := ShiftAssign(m, b, region, []Term{Ref(a, 1, -1), Ref(a, 2, -1)}); err != nil {
		t.Fatal(err)
	}
	r := m.Stats()
	if r.ElementsMoved != 1 {
		t.Fatalf("deduplication failed: %d elements moved", r.ElementsMoved)
	}
	if r.RemoteRefs != 2 {
		t.Fatalf("RemoteRefs = %d (both references are remote)", r.RemoteRefs)
	}
}

func TestMessageVectorization(t *testing.T) {
	// A whole-boundary exchange must be one message per processor
	// pair, not one per element.
	sys, _ := proc.NewSystem(2)
	n := 32
	dom := index.Standard(1, n, 1, n)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	b, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	m := mkMachine(t, 2)
	region := index.Standard(2, n, 1, n)
	if err := ShiftAssign(m, b, region, []Term{Ref(a, 1, -1, 0)}); err != nil {
		t.Fatal(err)
	}
	r := m.Stats()
	if r.Messages != 1 {
		t.Fatalf("Messages = %d, want 1 (vectorized)", r.Messages)
	}
	if r.ElementsMoved != int64(n) {
		t.Fatalf("Elements = %d, want %d (one boundary row)", r.ElementsMoved, n)
	}
}

func TestReplicatedReadIsLocal(t *testing.T) {
	// A replicated source makes every read local (E10's effect).
	sys, _ := proc.NewSystem(4)
	rep, err := sys.DeclareScalar("REP", proc.ScalarReplicated)
	if err != nil {
		t.Fatal(err)
	}
	dom := index.Standard(1, 16)
	dr, err := dist.New(dom, []dist.Format{dist.Collapsed{}}, proc.Whole(rep))
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewArray("R", core.DistMapping{D: dr})
	if err != nil {
		t.Fatal(err)
	}
	if !src.Replicated() {
		t.Fatal("expected replicated array")
	}
	dst, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	m := mkMachine(t, 4)
	if err := ShiftAssign(m, dst, dom, []Term{Ref(src, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	r := m.Stats()
	if r.RemoteRefs != 0 {
		t.Fatalf("reads of replicated array must be local, got %d remote", r.RemoteRefs)
	}
}

func TestReplicatedWriteLoadsAllOwners(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	rep, _ := sys.DeclareScalar("REP2", proc.ScalarReplicated)
	dom := index.Standard(1, 8)
	dr, _ := dist.New(dom, []dist.Format{dist.Collapsed{}}, proc.Whole(rep))
	dst, _ := NewArray("R", core.DistMapping{D: dr})
	src, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	m := mkMachine(t, 4)
	if err := ShiftAssign(m, dst, dom, []Term{Ref(src, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	r := m.Stats()
	// Every processor computes all 8 elements: total load 32.
	if r.TotalLoad != 32 {
		t.Fatalf("TotalLoad = %d, want 32", r.TotalLoad)
	}
}

func TestRemapCountsAndMoves(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	dom := index.Standard(1, 16)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	m := mkMachine(t, 4)
	newMap := blockMapping(t, sys, "A", dom, dist.Cyclic{K: 1})
	moved, err := Remap(m, a, newMap)
	if err != nil {
		t.Fatal(err)
	}
	stay := 0
	for i := 1; i <= 16; i++ {
		if (i-1)/4 == (i-1)%4 {
			stay++
		}
	}
	if moved != 16-stay {
		t.Fatalf("moved = %d, want %d", moved, 16-stay)
	}
	// Values unchanged.
	for i := 1; i <= 16; i++ {
		if a.At(index.Tuple{i}) != float64(i) {
			t.Fatal("remap must not change values")
		}
	}
	// Second remap to the same mapping is free.
	moved, _ = Remap(m, a, newMap)
	if moved != 0 {
		t.Fatalf("idempotent remap moved %d", moved)
	}
}

func TestRemapShapeMismatch(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	a, _ := NewArray("A", blockMapping(t, sys, "A", index.Standard(1, 16), dist.Block{}))
	bad := blockMapping(t, sys, "A", index.Standard(1, 8), dist.Block{})
	if _, err := Remap(nil, a, bad); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestOutOfBoundsReference(t *testing.T) {
	sys, _ := proc.NewSystem(2)
	dom := index.Standard(1, 8)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	b, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	// Shift -1 over the full domain reads A(0): out of bounds.
	if err := ShiftAssign(nil, b, dom, []Term{Ref(a, 1, -1)}); err == nil {
		t.Fatal("out-of-bounds reference must fail")
	}
}

func TestShiftRankMismatch(t *testing.T) {
	sys, _ := proc.NewSystem(2)
	dom := index.Standard(1, 8)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	b, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	if err := ShiftAssign(nil, b, dom, []Term{Ref(a, 1, 0, 0)}); err == nil {
		t.Fatal("shift rank mismatch must fail")
	}
	if err := ShiftAssign(nil, b, index.Standard(1, 8, 1, 8), []Term{Ref(a, 1, 0)}); err == nil {
		t.Fatal("region rank mismatch must fail")
	}
}

// Property: for random block/cyclic mappings and shifts, distributed
// and sequential executors agree exactly.
func TestExecutorEquivalenceProperty(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	f := func(useCyclic bool, kk uint8, sh int8) bool {
		n := 12
		shift := int(sh % 3)
		dom := index.Standard(1, n)
		var fm dist.Format = dist.Block{}
		if useCyclic {
			fm = dist.Cyclic{K: int(kk%3) + 1}
		}
		a, err := NewArray("A", blockMapping(t, sys, "A", dom, fm))
		if err != nil {
			return false
		}
		b, _ := NewArray("B", blockMapping(t, sys, "B", dom, fm))
		fill := func(tu index.Tuple) float64 { return float64(tu[0]*tu[0] - 3) }
		a.Fill(fill)
		lo, hi := 1, n
		if shift < 0 {
			lo = 1 - shift
		} else {
			hi = n - shift
		}
		if lo > hi {
			return true
		}
		region := index.Standard(lo, hi)
		m := mkMachine(t, 4)
		if err := ShiftAssign(m, b, region, []Term{Ref(a, 2, shift)}); err != nil {
			return false
		}
		as := NewSeqArray(dom)
		bs := NewSeqArray(dom)
		as.Fill(fill)
		if err := SeqShiftAssign(bs, region, []SeqTerm{{Src: as, Shift: []int{shift}, Coeff: 2}}); err != nil {
			return false
		}
		bd, sd := b.Data(), bs.Data()
		for i := range bd {
			if bd[i] != sd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralAssignMatchesSequential(t *testing.T) {
	// A rank-reducing read: E(i,j) = D(i,j) + 2*A(i).
	sys, _ := proc.NewSystem(4)
	ddom := index.Standard(1, 12, 1, 6)
	adom := index.Standard(1, 12)
	d, _ := NewArray("D", blockMapping(t, sys, "D", ddom, dist.Block{}))
	e, _ := NewArray("E", blockMapping(t, sys, "E", ddom, dist.Block{}))
	a, _ := NewArray("A", blockMapping(t, sys, "A", adom, dist.Cyclic{K: 2}))
	d.Fill(func(tu index.Tuple) float64 { return float64(tu[0]*10 + tu[1]) })
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0] * tu[0]) })
	m := mkMachine(t, 4)
	err := GeneralAssign(m, e, ddom, []GeneralTerm{
		{Src: d, Coeff: 1, Map: func(tu index.Tuple) index.Tuple { return tu }},
		{Src: a, Coeff: 2, Map: func(tu index.Tuple) index.Tuple { return index.Tuple{tu[0]} }},
	})
	if err != nil {
		t.Fatal(err)
	}
	var bad int
	ddom.ForEach(func(tu index.Tuple) bool {
		want := float64(tu[0]*10+tu[1]) + 2*float64(tu[0]*tu[0])
		if e.At(tu) != want {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d wrong values", bad)
	}
	// Cross-mapping reads must generate traffic (block rows vs cyclic A).
	if m.Stats().RemoteRefs == 0 {
		t.Fatal("expected remote reads of the cyclic array")
	}
}

func TestGeneralAssignErrors(t *testing.T) {
	sys, _ := proc.NewSystem(2)
	dom := index.Standard(1, 8)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	b, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	err := GeneralAssign(nil, b, dom, []GeneralTerm{
		{Src: a, Coeff: 1, Map: func(tu index.Tuple) index.Tuple { return index.Tuple{tu[0] + 100} }},
	})
	if err == nil {
		t.Fatal("out-of-domain mapped reference must fail")
	}
	if err := GeneralAssign(nil, b, index.Standard(1, 8, 1, 8), nil); err == nil {
		t.Fatal("region rank mismatch must fail")
	}
}

func TestArrayMappingAccessorAndSeqAt(t *testing.T) {
	sys, _ := proc.NewSystem(2)
	dom := index.Standard(1, 4)
	mp := blockMapping(t, sys, "A", dom, dist.Block{})
	a, _ := NewArray("A", mp)
	if a.Mapping() != mp {
		t.Fatal("Mapping accessor wrong")
	}
	s := NewSeqArray(dom)
	s.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	if s.At(index.Tuple{3}) != 3 {
		t.Fatal("SeqArray.At wrong")
	}
}

func TestRemapSenderSpread(t *testing.T) {
	old := []int{3, 7}
	if RemapSender(old, 1) != 3 || RemapSender(old, 2) != 7 || RemapSender(old, 4) != 7 {
		t.Fatalf("round-robin sender wrong: %d %d %d",
			RemapSender(old, 1), RemapSender(old, 2), RemapSender(old, 4))
	}
	if RemapSender([]int{5}, 9) != 5 {
		t.Fatal("single owner must always send")
	}
}

// TestRemapTilewiseMatchesElementwise differentially tests the
// O(tiles) remap analysis against the per-element oracle across
// format pairs, including the irregular ones.
func TestRemapTilewiseMatchesElementwise(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	n := 29
	dom := index.Standard(1, n)
	owner := make([]int, n)
	for i := range owner {
		owner[i] = (i*i)%4 + 1
	}
	ind, err := dist.NewIndirect(owner)
	if err != nil {
		t.Fatal(err)
	}
	formats := []dist.Format{
		dist.Block{}, dist.BlockVienna{}, dist.Cyclic{K: 1}, dist.Cyclic{K: 4},
		dist.GeneralBlock{Bounds: []int{3, 11, 20}}, ind,
	}
	for _, f1 := range formats {
		for _, f2 := range formats {
			a, err := NewArray("A", blockMapping(t, sys, "A", dom, f1))
			if err != nil {
				t.Fatal(err)
			}
			newMap := blockMapping(t, sys, "A", dom, f2)
			moved, pairs, ok := remapTilewise(a, newMap)
			if !ok {
				t.Fatalf("%s -> %s: tile path declined", f1, f2)
			}
			g, err := core.OwnerGrid(newMap)
			if err != nil {
				t.Fatal(err)
			}
			wantMoved, wantPairs := remapElementwise(a, g, nil)
			if moved != wantMoved {
				t.Fatalf("%s -> %s: moved %d, oracle %d", f1, f2, moved, wantMoved)
			}
			if len(pairs) != len(wantPairs) {
				t.Fatalf("%s -> %s: %d pairs, oracle %d", f1, f2, len(pairs), len(wantPairs))
			}
			for pr, c := range wantPairs {
				if pairs[pr] != c {
					t.Fatalf("%s -> %s: pair %v = %d, oracle %d", f1, f2, pr, pairs[pr], c)
				}
			}
		}
	}
}
