package runtime

import (
	"math"
	"testing"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

func mapOf(d *dist.Distribution) core.ElementMapping { return core.DistMapping{D: d} }

func TestScheduleMatchesShiftAssign(t *testing.T) {
	// Executing via a prebuilt schedule must produce the same values
	// and the same machine counters as ShiftAssign.
	sys, _ := proc.NewSystem(4)
	n := 24
	dom := index.Standard(1, n, 1, n)
	a1, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	b1, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	a2, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	b2, _ := NewArray("B", blockMapping(t, sys, "B", dom, dist.Block{}))
	fill := func(tu index.Tuple) float64 { return float64(tu[0]*5 - tu[1]) }
	a1.Fill(fill)
	a2.Fill(fill)

	interior := index.Standard(2, n-1, 2, n-1)
	mkTerms := func(a *Array) []Term {
		return []Term{
			Ref(a, 0.25, -1, 0), Ref(a, 0.25, 1, 0), Ref(a, 0.25, 0, -1), Ref(a, 0.25, 0, 1),
		}
	}
	m1 := mkMachine(t, 4)
	if err := ShiftAssign(m1, b1, interior, mkTerms(a1)); err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(b2, interior, mkTerms(a2))
	if err != nil {
		t.Fatal(err)
	}
	m2 := mkMachine(t, 4)
	if err := sched.Execute(m2); err != nil {
		t.Fatal(err)
	}
	r1, r2 := m1.Stats(), m2.Stats()
	if r1.Messages != r2.Messages || r1.ElementsMoved != r2.ElementsMoved ||
		r1.RemoteRefs != r2.RemoteRefs || r1.LocalRefs != r2.LocalRefs ||
		r1.TotalLoad != r2.TotalLoad {
		t.Fatalf("counters differ:\nShiftAssign: %s\nSchedule:    %s", r1, r2)
	}
	d1, d2 := b1.Data(), b2.Data()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("values differ at %d: %f vs %f", i, d1[i], d2[i])
		}
	}
}

func TestScheduleReuseAcrossIterations(t *testing.T) {
	// Iterated Jacobi through one schedule: counters accumulate
	// linearly, values evolve as in the reference executor.
	sys, _ := proc.NewSystem(4)
	n := 16
	dom := index.Standard(1, n)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	region := index.Standard(2, n-1)
	sched, err := BuildSchedule(a, region, []Term{Ref(a, 0.5, -1), Ref(a, 0.5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	m := mkMachine(t, 4)
	const iters = 10
	for it := 0; it < iters; it++ {
		if err := sched.Execute(m); err != nil {
			t.Fatal(err)
		}
	}
	r := m.Stats()
	if r.ElementsMoved != int64(iters*sched.GhostElements()) {
		t.Fatalf("elements = %d, want %d per iter x %d", r.ElementsMoved, sched.GhostElements(), iters)
	}
	if r.Messages != int64(iters*sched.Messages()) {
		t.Fatalf("messages = %d", r.Messages)
	}
	// Reference: sequential iteration.
	s := NewSeqArray(dom)
	s.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	for it := 0; it < iters; it++ {
		if err := SeqShiftAssign(s, region, []SeqTerm{
			{Src: s, Shift: []int{-1}, Coeff: 0.5}, {Src: s, Shift: []int{1}, Coeff: 0.5},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ad, sd := a.Data(), s.Data()
	for i := range ad {
		if math.Abs(ad[i]-sd[i]) > 1e-12 {
			t.Fatalf("iterated values differ at %d: %f vs %f", i, ad[i], sd[i])
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	sys, _ := proc.NewSystem(2)
	dom := index.Standard(1, 8)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	if _, err := BuildSchedule(a, dom, []Term{Ref(a, 1, -1)}); err == nil {
		t.Fatal("out-of-bounds shift must fail at build time")
	}
	if _, err := BuildSchedule(a, index.Standard(1, 8, 1, 8), nil); err == nil {
		t.Fatal("region rank mismatch must fail")
	}
	if _, err := BuildSchedule(a, dom, []Term{Ref(a, 1, 0, 0)}); err == nil {
		t.Fatal("shift rank mismatch must fail")
	}
}

func TestReduceSum(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	dom := index.Standard(1, 100)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	m := mkMachine(t, 4)
	got, err := Reduce(m, a, ReduceSum)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5050 {
		t.Fatalf("sum = %f", got)
	}
	r := m.Stats()
	// Local reductions: one load unit per element.
	if r.TotalLoad != 100 {
		t.Fatalf("load = %d", r.TotalLoad)
	}
	// Tree combine of 4 partials: 3 single-element messages.
	if r.Messages != 3 || r.ElementsMoved != 3 {
		t.Fatalf("combine: %d msgs, %d elems", r.Messages, r.ElementsMoved)
	}
}

func TestReduceMaxMin(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	dom := index.Standard(1, 10)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Cyclic{K: 1}))
	a.Fill(func(tu index.Tuple) float64 { return float64((tu[0]*7)%10) - 3 })
	m := mkMachine(t, 4)
	max, err := Reduce(m, a, ReduceMax)
	if err != nil {
		t.Fatal(err)
	}
	min, err := Reduce(m, a, ReduceMin)
	if err != nil {
		t.Fatal(err)
	}
	if max != 6 || min != -3 {
		t.Fatalf("max=%f min=%f", max, min)
	}
}

func TestReduceReplicatedCountsOnce(t *testing.T) {
	// A replicated array's elements must each contribute once.
	sys, _ := proc.NewSystem(4)
	rep, _ := sys.DeclareScalar("REPR", proc.ScalarReplicated)
	dom := index.Standard(1, 8)
	dr, err := dist.New(dom, []dist.Format{dist.Collapsed{}}, proc.Whole(rep))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray("R", mapOf(dr))
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(tu index.Tuple) float64 { return 1 })
	got, err := Reduce(mkMachine(t, 4), a, ReduceSum)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("sum = %f, want 8 (each element once)", got)
	}
}

func TestReduceNilMachine(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	dom := index.Standard(1, 5)
	a, _ := NewArray("A", blockMapping(t, sys, "A", dom, dist.Block{}))
	a.Fill(func(tu index.Tuple) float64 { return 2 })
	got, err := Reduce(nil, a, ReduceSum)
	if err != nil || got != 10 {
		t.Fatalf("Reduce(nil) = %f, %v", got, err)
	}
}
