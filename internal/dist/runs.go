package dist

import (
	"errors"
	"fmt"

	"hpfnt/internal/index"
)

// This file is the run-length ownership kernel. Ownership of any
// interval of global indices under the §4.1 formats is
// piecewise-constant with few pieces — at most np runs for BLOCK, one
// run per CYCLIC(k) segment, at most b runs for GENERAL_BLOCK — so
// local index sets and communication sets can be computed over O(runs)
// closed-form intervals instead of O(n) per-element owner lookups.
// This is the compile-time analyzability the paper claims for its
// distribution formats, made executable: every consumer that used to
// enumerate Owners element-by-element (OwnerGrid, BuildSchedule, the
// workload sweeps) composes these runs instead, and the per-element
// API remains as the differential-testing oracle.

// Run is a maximal interval [Lo, Hi] of 1-based normalized global
// indices owned by a single target-dimension position Proc.
type Run struct {
	Lo, Hi int
	Proc   int
}

// Count reports the number of indices in the run.
func (r Run) Count() int { return r.Hi - r.Lo + 1 }

// Runs lists the ownership runs of f over the interval [lo, hi] of
// 1..n. It is AppendRuns into a fresh slice.
func Runs(f Format, lo, hi, n, np int) []Run {
	return f.AppendRuns(nil, lo, hi, n, np)
}

// blockRuns is the shared closed form for the two BLOCK variants:
// owner positions are nondecreasing over the interval, and each
// position's block is a single interval delimited by start(p); p0 is
// the owner of lo.
func blockRuns(dst []Run, lo, hi, np, p0 int, start func(int) int) []Run {
	if lo > hi {
		return dst
	}
	for p := p0; ; p++ {
		rhi := hi
		if p < np {
			if next := start(p+1) - 1; next < rhi {
				rhi = next
			}
		}
		dst = append(dst, Run{Lo: lo, Hi: rhi, Proc: p})
		if rhi >= hi {
			return dst
		}
		lo = rhi + 1
	}
}

// AppendRuns appends the ≤np runs of [lo, hi]: position p owns the
// single interval [(p-1)q+1, pq] with q = ⌈n/np⌉.
func (b Block) AppendRuns(dst []Run, lo, hi, n, np int) []Run {
	if lo > hi {
		return dst
	}
	q := (n + np - 1) / np
	return blockRuns(dst, lo, hi, np, b.Map(lo, n, np),
		func(p int) int { return (p-1)*q + 1 })
}

// AppendRuns appends the ≤np balanced-block runs of [lo, hi].
func (v BlockVienna) AppendRuns(dst []Run, lo, hi, n, np int) []Run {
	if lo > hi {
		return dst
	}
	return blockRuns(dst, lo, hi, np, v.Map(lo, n, np),
		func(p int) int { return v.start(p, n, np) })
}

// AppendRuns appends the single run of the undistributed dimension.
func (Collapsed) AppendRuns(dst []Run, lo, hi, n, np int) []Run {
	if lo > hi {
		return dst
	}
	return append(dst, Run{Lo: lo, Hi: hi, Proc: 1})
}

// AppendRuns appends one run per CYCLIC(k) segment overlapping
// [lo, hi]: segment s covers [sk+1, sk+k] and belongs to position
// (s mod np)+1, so the interval holds ⌈(hi-lo+1)/k⌉+1 runs at most.
func (c Cyclic) AppendRuns(dst []Run, lo, hi, n, np int) []Run {
	if np == 1 && lo <= hi {
		// All segments land on the one position: a single maximal run.
		return append(dst, Run{Lo: lo, Hi: hi, Proc: 1})
	}
	for s := (lo - 1) / c.K; lo <= hi; s++ {
		rhi := s*c.K + c.K
		if rhi > hi {
			rhi = hi
		}
		dst = append(dst, Run{Lo: lo, Hi: rhi, Proc: s%np + 1})
		lo = rhi + 1
	}
	return dst
}

// AppendRuns appends the ≤b runs of [lo, hi]: block p owns the single
// interval (G(p-1), G(p)], empty blocks (repeated bounds) skipped.
func (g GeneralBlock) AppendRuns(dst []Run, lo, hi, n, np int) []Run {
	if lo > hi {
		return dst
	}
	for p := g.Map(lo, n, np); ; p++ {
		rhi := n
		if p-1 < len(g.Bounds) && p < np {
			rhi = g.Bounds[p-1]
		}
		if rhi < lo {
			continue // empty block
		}
		if rhi > hi {
			rhi = hi
		}
		dst = append(dst, Run{Lo: lo, Hi: rhi, Proc: p})
		if rhi >= hi {
			return dst
		}
		lo = rhi + 1
	}
}

// AppendRuns copies the precomputed maximal runs overlapping [lo, hi],
// clipping the first and last to the interval: O(runs emitted), not a
// per-element walk — a user-defined owner vector has no closed form,
// but its run decomposition is fixed at construction.
func (f *indirect) AppendRuns(dst []Run, lo, hi, n, np int) []Run {
	if lo > hi {
		return dst
	}
	first, last := f.runOf[lo-1], f.runOf[hi-1]
	k := len(dst)
	dst = append(dst, f.allRuns[first:last+1]...)
	dst[k].Lo = lo
	dst[len(dst)-1].Hi = hi
	return dst
}

// RunCountEstimate counts the blocks intersecting the interval.
func (b Block) RunCountEstimate(lo, hi, n, np int) int {
	if lo > hi {
		return 0
	}
	return b.Map(hi, n, np) - b.Map(lo, n, np) + 1
}

// RunCountEstimate counts the balanced blocks intersecting the
// interval.
func (v BlockVienna) RunCountEstimate(lo, hi, n, np int) int {
	if lo > hi {
		return 0
	}
	return v.Map(hi, n, np) - v.Map(lo, n, np) + 1
}

// RunCountEstimate reports the undistributed dimension's single run.
func (Collapsed) RunCountEstimate(lo, hi, n, np int) int {
	if lo > hi {
		return 0
	}
	return 1
}

// RunCountEstimate counts the CYCLIC(k) segments intersecting the
// interval (one on a single-position target).
func (c Cyclic) RunCountEstimate(lo, hi, n, np int) int {
	if lo > hi {
		return 0
	}
	if np == 1 {
		return 1
	}
	return (hi-1)/c.K - (lo-1)/c.K + 1
}

// RunCountEstimate counts the blocks intersecting the interval
// (empty blocks over-count; this is a bound, not an exact count).
func (g GeneralBlock) RunCountEstimate(lo, hi, n, np int) int {
	if lo > hi {
		return 0
	}
	return g.Map(hi, n, np) - g.Map(lo, n, np) + 1
}

// RunCountEstimate is exact for INDIRECT: the per-index run table
// gives the number of maximal runs overlapping [lo, hi] in O(1). (It
// used to bound by the whole vector's run count, which made the
// estimate-based oracle-vs-tiles selection in schedule analysis
// pessimistic for partitioner-style vectors with long runs.)
func (f *indirect) RunCountEstimate(lo, hi, n, np int) int {
	if lo > hi {
		return 0
	}
	return int(f.runOf[hi-1]-f.runOf[lo-1]) + 1
}

// Tile is a rectangular sub-domain all of whose elements are owned by
// the single abstract processor Proc: the rank-N composition of one
// ownership run per dimension.
type Tile struct {
	Region index.Domain
	Proc   int
}

// ErrMultiOwner reports that a mapping assigns several owners to some
// element, so a single-owner tile decomposition does not exist
// (replicated scalar-target distributions, replicating alignments).
var ErrMultiOwner = errors.New("dist: element has multiple owners")

// OwnerRuns returns the rectangular owner tiles partitioning region:
// the cross product of the per-dimension ownership runs, each tile
// owned by one abstract processor. It is AppendOwnerTiles into a
// fresh slice.
func (d *Distribution) OwnerRuns(region index.Domain) ([]Tile, error) {
	return d.AppendOwnerTiles(nil, region)
}

// OwnerTileEstimate bounds the tile count of AppendOwnerTiles over
// region in O(rank) without materializing anything. ok = false when
// the region is outside the decomposable shape (non-standard, out of
// bounds, wrong rank) or the distribution replicates.
func (d *Distribution) OwnerTileEstimate(region index.Domain) (int, bool) {
	if region.Rank() != len(d.dims) || !region.IsStandard() {
		return 0, false
	}
	empty := false
	for i, tr := range region.Dims {
		if tr.Empty() {
			empty = true
			continue
		}
		if tr.Low < d.dims[i].low || tr.High > d.dims[i].high {
			return 0, false
		}
	}
	if empty {
		return 0, true
	}
	if d.repl != nil {
		if len(d.repl) != 1 {
			return 0, false
		}
		return 1, true
	}
	total := 1
	for i := range d.dims {
		dt := &d.dims[i]
		lo := region.Dims[i].Low - dt.low + 1
		hi := region.Dims[i].High - dt.low + 1
		total *= dt.f.RunCountEstimate(lo, hi, dt.n, dt.np)
	}
	return total, true
}

// AppendOwnerTiles appends the owner tiles partitioning region, a
// standard (stride-1) sub-rectangle of the distributee's domain. The
// tile count is the product of the per-dimension run counts —
// independent of the region's size for the closed-form formats. It
// returns ErrMultiOwner for replicated scalar-target distributions.
func (d *Distribution) AppendOwnerTiles(dst []Tile, region index.Domain) ([]Tile, error) {
	if region.Rank() != len(d.dims) {
		return nil, fmt.Errorf("dist: rank-%d region %s for rank-%d distribution", region.Rank(), region, len(d.dims))
	}
	empty := false
	for i, tr := range region.Dims {
		if tr.Empty() {
			empty = true
			continue
		}
		if !tr.IsUnit() {
			return nil, fmt.Errorf("dist: region %s must be standard (stride 1)", region)
		}
		if tr.Low < d.dims[i].low || tr.High > d.dims[i].high {
			return nil, fmt.Errorf("dist: region %s outside domain %s", region, d.Array)
		}
	}
	if empty {
		return dst, nil
	}
	if d.repl != nil {
		if len(d.repl) != 1 {
			return nil, ErrMultiOwner
		}
		return append(dst, Tile{Region: region, Proc: d.repl[0]}), nil
	}
	rank := len(d.dims)
	perDim := make([][]Run, rank)
	for i := range d.dims {
		dt := &d.dims[i]
		lo := region.Dims[i].Low - dt.low + 1
		hi := region.Dims[i].High - dt.low + 1
		perDim[i] = dt.f.AppendRuns(nil, lo, hi, dt.n, dt.np)
	}
	idx := make([]int, rank)
	for {
		k := 0
		dims := make([]index.Triplet, rank)
		for i, dt := range d.dims {
			r := perDim[i][idx[i]]
			dims[i] = index.Unit(r.Lo+dt.low-1, r.Hi+dt.low-1)
			k += (r.Proc - 1) * dt.mult
		}
		dst = append(dst, Tile{Region: index.Domain{Dims: dims}, Proc: d.aps[k]})
		i := 0
		for ; i < rank; i++ {
			idx[i]++
			if idx[i] < len(perDim[i]) {
				break
			}
			idx[i] = 0
		}
		if i == rank {
			return dst, nil
		}
	}
}

// AppendOwners appends the owner set of element i to dst without
// allocating: the run-free analogue of Owners for per-element callers
// (inquiry functions, replicated-write paths) that would otherwise
// discard a fresh slice per call.
func (d *Distribution) AppendOwners(dst []int, i index.Tuple) ([]int, error) {
	if len(i) != len(d.dims) {
		return nil, fmt.Errorf("dist: rank-%d index %s for rank-%d distribution", len(i), i, len(d.dims))
	}
	k := 0
	for dim := range d.dims {
		dt := &d.dims[dim]
		v := i[dim]
		if v < dt.low || v > dt.high {
			return nil, fmt.Errorf("dist: index %s outside domain %s", i, d.Array)
		}
		if !dt.collapsed {
			p := dt.f.Map(v-dt.low+1, dt.n, dt.np)
			k += (p - 1) * dt.mult
		}
	}
	if d.repl != nil {
		return append(dst, d.repl...), nil
	}
	if k < 0 || k >= len(d.aps) {
		return nil, fmt.Errorf("dist: index %s mapped outside target %s", i, d.Target)
	}
	return append(dst, d.aps[k]), nil
}
