// Package dist implements the distribution formats and direct
// (template-free) distributions of §4.1 of Chapman, Mehrotra and
// Zima, "High Performance Fortran Without Templates" (PPoPP 1993).
//
// A distribution format is a per-dimension distribution function
// mapping the (1-based, normalized) indices 1..N of one array
// dimension onto the positions 1..NP of one dimension of a processor
// target. The formats of §4.1 are provided — BLOCK (§4.1.1, both the
// HPF definition and the Vienna Fortran balanced variant assumed in
// the footnote of §8.1.1), GENERAL_BLOCK (§4.1.2), CYCLIC and
// CYCLIC(k) (§4.1.3), the collapsed format ":" — plus the
// user-defined INDIRECT format the paper's generalized
// distribution-function concept provides for (introduction point 3,
// §9).
//
// A Distribution composes one format per array dimension with a
// processor target (a whole arrangement or a section of one, §4) into
// the element-based mapping of Definition 1: a total function from
// the array's index domain to non-empty sets of abstract processors.
// Owner lookup and local↔global index translation are O(1) for
// block/cyclic formats and O(log b) (binary search over the block
// bounds) for GENERAL_BLOCK; per-dimension tables are precomputed at
// construction so the hot paths allocate nothing.
package dist

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Kind identifies a distribution format family.
type Kind int

// The format kinds of §4.1 (plus INDIRECT, the user-defined
// generalization of §9). Both BLOCK definitions share KindBlock: they
// are spelled identically in the directive language.
const (
	// KindBlock is the contiguous block format (HPF or Vienna).
	KindBlock Kind = iota
	// KindCyclic is CYCLIC(k), k >= 1.
	KindCyclic
	// KindGeneralBlock is the irregular block format GENERAL_BLOCK.
	KindGeneralBlock
	// KindCollapsed is ":": the dimension is not distributed.
	KindCollapsed
	// KindIndirect is the user-defined owner-vector format.
	KindIndirect
)

// String renders the kind in directive syntax.
func (k Kind) String() string {
	switch k {
	case KindBlock:
		return "BLOCK"
	case KindCyclic:
		return "CYCLIC"
	case KindGeneralBlock:
		return "GENERAL_BLOCK"
	case KindCollapsed:
		return ":"
	case KindIndirect:
		return "INDIRECT"
	default:
		return "?"
	}
}

// Range is an inclusive run [Low, High] of 1-based global indices.
type Range struct {
	Low  int
	High int
}

// Count reports the number of indices in the range.
func (r Range) Count() int {
	if r.High < r.Low {
		return 0
	}
	return r.High - r.Low + 1
}

// Format is a per-dimension distribution function (§4.1): a total
// mapping from the normalized indices 1..n of an array dimension onto
// the positions 1..np of a target dimension. All methods take n and
// np explicitly so a format value is reusable across dimensions (the
// same CYCLIC(2) literal may distribute several arrays).
type Format interface {
	// Kind identifies the format family.
	Kind() Kind
	// Validate checks that the format can distribute n indices over
	// np processors (e.g. CYCLIC's k >= 1, GENERAL_BLOCK's bound
	// count and monotonicity, INDIRECT's owner-vector length).
	Validate(n, np int) error
	// Map returns the 1-based target position owning global index i
	// (the distribution function δ of §4.1). It is total on 1..n.
	Map(i, n, np int) int
	// Local returns the 1-based local index of global index i on its
	// owner (the paper's local index functions, e.g. i-(j-1)q for
	// BLOCK).
	Local(i, n, np int) int
	// Global is the inverse of (Map, Local): the global index of the
	// l-th local element of position p, or 0 if p holds fewer than l
	// elements.
	Global(p, l, n, np int) int
	// OwnedRanges lists the maximal runs of global indices owned by
	// position p, in increasing order.
	OwnedRanges(p, n, np int) []Range
	// AppendRuns appends the ownership runs covering the interval
	// [lo, hi] of 1..n to dst, in increasing index order: consecutive
	// maximal sub-intervals each owned by a single position. The runs
	// partition [lo, hi] exactly; an empty interval (lo > hi) appends
	// nothing. Closed-form formats produce O(runs) work independent of
	// hi-lo; INDIRECT degrades to a per-element walk of the interval.
	AppendRuns(dst []Run, lo, hi, n, np int) []Run
	// RunCountEstimate bounds (from above) the number of runs
	// AppendRuns would produce over [lo, hi], in O(1) — without
	// materializing them — so callers can decide whether interval
	// analysis will pay off before spending the allocations.
	RunCountEstimate(lo, hi, n, np int) int
	// String renders the format in directive syntax.
	String() string
}

func checkDims(n, np int) error {
	if n < 1 {
		return fmt.Errorf("dist: dimension extent must be positive, got %d", n)
	}
	if np < 1 {
		return fmt.Errorf("dist: processor count must be positive, got %d", np)
	}
	return nil
}

// Block is the HPF BLOCK format (§4.1.1): q = ⌈N/NP⌉ and
// δ(i) = ⌈i/q⌉, so every block except possibly the last has exactly q
// elements and trailing processors may be empty.
type Block struct{}

// Kind reports KindBlock.
func (Block) Kind() Kind { return KindBlock }

// Validate checks the dimension parameters.
func (Block) Validate(n, np int) error { return checkDims(n, np) }

// Map implements δ(i) = ⌈i/q⌉ with q = ⌈n/np⌉.
func (Block) Map(i, n, np int) int {
	q := (n + np - 1) / np
	return (i-1)/q + 1
}

// Local implements the §4.1.1 local index i - (j-1)q.
func (Block) Local(i, n, np int) int {
	q := (n + np - 1) / np
	return i - ((i-1)/q)*q
}

// Global returns (p-1)q + l, or 0 beyond the owned run.
func (Block) Global(p, l, n, np int) int {
	q := (n + np - 1) / np
	g := (p-1)*q + l
	if l < 1 || l > q || g > n {
		return 0
	}
	return g
}

// OwnedRanges returns the single block of position p (empty for
// trailing processors when q·(p-1) ≥ n).
func (Block) OwnedRanges(p, n, np int) []Range {
	q := (n + np - 1) / np
	lo := (p-1)*q + 1
	hi := p * q
	if hi > n {
		hi = n
	}
	if p < 1 || p > np || lo > hi {
		return nil
	}
	return []Range{{Low: lo, High: hi}}
}

// String renders the directive keyword.
func (Block) String() string { return "BLOCK" }

// BlockVienna is the Vienna Fortran balanced block format assumed in
// the footnote of §8.1.1: block sizes differ by at most one
// (⌈N/NP⌉ for the first N mod NP blocks, ⌊N/NP⌋ for the rest), so no
// processor is left empty and equal-rank arrays of extents N and N+1
// stay aligned block-by-block.
type BlockVienna struct{}

// Kind reports KindBlock: the directive keyword is the same BLOCK.
func (BlockVienna) Kind() Kind { return KindBlock }

// Validate checks the dimension parameters.
func (BlockVienna) Validate(n, np int) error { return checkDims(n, np) }

// start returns the 1-based first global index of block p.
func (BlockVienna) start(p, n, np int) int {
	q, r := n/np, n%np
	s := (p-1)*q + 1
	if p-1 < r {
		s += p - 1
	} else {
		s += r
	}
	return s
}

// Map returns the balanced-block owner of i. When q = 0 (n < np),
// cut = n and every valid index takes the first branch.
func (BlockVienna) Map(i, n, np int) int {
	q, r := n/np, n%np
	cut := r * (q + 1)
	if i <= cut {
		return (i-1)/(q+1) + 1
	}
	return r + (i-cut-1)/q + 1
}

// Local returns i's offset within its block.
func (v BlockVienna) Local(i, n, np int) int {
	return i - v.start(v.Map(i, n, np), n, np) + 1
}

// Global returns the l-th element of block p, or 0 past its extent.
func (v BlockVienna) Global(p, l, n, np int) int {
	rs := v.OwnedRanges(p, n, np)
	if len(rs) == 0 || l < 1 || l > rs[0].Count() {
		return 0
	}
	return rs[0].Low + l - 1
}

// OwnedRanges returns the single balanced block of position p.
func (v BlockVienna) OwnedRanges(p, n, np int) []Range {
	if p < 1 || p > np {
		return nil
	}
	lo := v.start(p, n, np)
	hi := v.start(p+1, n, np) - 1
	if hi > n {
		hi = n
	}
	if lo > hi {
		return nil
	}
	return []Range{{Low: lo, High: hi}}
}

// String renders the directive keyword (the Vienna variant is spelled
// BLOCK as well; programs select it via the interpreter's ViennaBlock
// switch).
func (BlockVienna) String() string { return "BLOCK" }

// Collapsed is the ":" format: the dimension is not distributed, so
// every index maps to the single (implicit) position 1 and the
// dimension does not consume a target dimension.
type Collapsed struct{}

// Kind reports KindCollapsed.
func (Collapsed) Kind() Kind { return KindCollapsed }

// Validate checks the dimension extent.
func (Collapsed) Validate(n, np int) error {
	if n < 1 {
		return fmt.Errorf("dist: dimension extent must be positive, got %d", n)
	}
	return nil
}

// Map always returns position 1.
func (Collapsed) Map(i, n, np int) int { return 1 }

// Local is the identity: the whole dimension is local.
func (Collapsed) Local(i, n, np int) int { return i }

// Global is the identity on position 1.
func (Collapsed) Global(p, l, n, np int) int {
	if p != 1 || l < 1 || l > n {
		return 0
	}
	return l
}

// OwnedRanges reports the full dimension for position 1.
func (Collapsed) OwnedRanges(p, n, np int) []Range {
	if p != 1 || n < 1 {
		return nil
	}
	return []Range{{Low: 1, High: n}}
}

// String renders the ":" of the directive syntax.
func (Collapsed) String() string { return ":" }

// Cyclic is the CYCLIC(k) format (§4.1.3): indices are dealt to
// positions round-robin in contiguous segments of length K. CYCLIC is
// CYCLIC(1).
type Cyclic struct {
	// K is the segment length; must be >= 1.
	K int
}

// NewCyclic returns the CYCLIC(k) format. Invalid k is reported by
// Validate, so the constructor composes directly in format lists.
func NewCyclic(k int) Format { return Cyclic{K: k} }

// Kind reports KindCyclic.
func (Cyclic) Kind() Kind { return KindCyclic }

// Validate checks k >= 1 and the dimension parameters.
func (c Cyclic) Validate(n, np int) error {
	if c.K < 1 {
		return fmt.Errorf("dist: CYCLIC segment length must be positive, got %d", c.K)
	}
	return checkDims(n, np)
}

// Map deals segment ⌊(i-1)/k⌋ to position (⌊(i-1)/k⌋ mod np) + 1.
func (c Cyclic) Map(i, n, np int) int {
	return ((i-1)/c.K)%np + 1
}

// Local counts full owned cycles before i plus its offset within the
// current segment.
func (c Cyclic) Local(i, n, np int) int {
	cycle := (i - 1) / (c.K * np)
	return cycle*c.K + (i-1)%c.K + 1
}

// Global inverts Local for position p, or returns 0 past n.
func (c Cyclic) Global(p, l, n, np int) int {
	if l < 1 {
		return 0
	}
	cycle := (l - 1) / c.K
	off := (l - 1) % c.K
	g := (cycle*np+p-1)*c.K + off + 1
	if p < 1 || p > np || g > n {
		return 0
	}
	return g
}

// OwnedRanges lists position p's segments in increasing order.
func (c Cyclic) OwnedRanges(p, n, np int) []Range {
	if p < 1 || p > np {
		return nil
	}
	var out []Range
	for lo := (p-1)*c.K + 1; lo <= n; lo += c.K * np {
		hi := lo + c.K - 1
		if hi > n {
			hi = n
		}
		out = append(out, Range{Low: lo, High: hi})
	}
	return out
}

// String renders CYCLIC or CYCLIC(k).
func (c Cyclic) String() string {
	if c.K == 1 {
		return "CYCLIC"
	}
	return fmt.Sprintf("CYCLIC(%d)", c.K)
}

// GeneralBlock is the GENERAL_BLOCK format (§4.1.2): an irregular
// contiguous block distribution given by the nondecreasing upper
// bounds G(1..NP-1) of the first NP-1 blocks; block p owns
// (G(p-1), G(p)] with G(0) = 0, and block NP extends to N. A bound
// vector of length NP (with G(NP) = N) is also accepted.
type GeneralBlock struct {
	// Bounds are the inclusive per-block upper bounds.
	Bounds []int
}

// Kind reports KindGeneralBlock.
func (GeneralBlock) Kind() Kind { return KindGeneralBlock }

// Validate checks the bound count, monotonicity and range.
func (g GeneralBlock) Validate(n, np int) error {
	if err := checkDims(n, np); err != nil {
		return err
	}
	if len(g.Bounds) != np-1 && len(g.Bounds) != np {
		return fmt.Errorf("dist: GENERAL_BLOCK needs %d (or %d) bounds for %d processors, got %d", np-1, np, np, len(g.Bounds))
	}
	prev := 0
	for k, b := range g.Bounds {
		if b < prev {
			return fmt.Errorf("dist: GENERAL_BLOCK bounds must be nondecreasing, got G(%d)=%d after %d", k+1, b, prev)
		}
		if b > n {
			return fmt.Errorf("dist: GENERAL_BLOCK bound G(%d)=%d exceeds extent %d", k+1, b, n)
		}
		prev = b
	}
	if len(g.Bounds) == np && g.Bounds[np-1] != n {
		return fmt.Errorf("dist: GENERAL_BLOCK final bound %d must equal extent %d", g.Bounds[np-1], n)
	}
	return nil
}

// Map finds i's block by binary search over the bounds: O(log NP).
func (g GeneralBlock) Map(i, n, np int) int {
	bs := g.Bounds
	if len(bs) >= np {
		bs = bs[:np-1]
	}
	p := sort.SearchInts(bs, i) + 1
	if p > np {
		p = np
	}
	return p
}

// lowBound returns G(p-1), the exclusive lower bound of block p.
func (g GeneralBlock) lowBound(p int) int {
	if p <= 1 {
		return 0
	}
	if p-2 < len(g.Bounds) {
		return g.Bounds[p-2]
	}
	return 0
}

// Local returns i - G(p-1) for i's block p.
func (g GeneralBlock) Local(i, n, np int) int {
	return i - g.lowBound(g.Map(i, n, np))
}

// Global returns G(p-1) + l, or 0 past block p's extent.
func (g GeneralBlock) Global(p, l, n, np int) int {
	rs := g.OwnedRanges(p, n, np)
	if len(rs) == 0 || l < 1 || l > rs[0].Count() {
		return 0
	}
	return rs[0].Low + l - 1
}

// OwnedRanges returns block p's single run (G(p-1), G(p)], which may
// be empty for repeated bounds.
func (g GeneralBlock) OwnedRanges(p, n, np int) []Range {
	if p < 1 || p > np {
		return nil
	}
	lo := g.lowBound(p) + 1
	hi := n
	if p-1 < len(g.Bounds) && p < np {
		hi = g.Bounds[p-1]
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		return nil
	}
	return []Range{{Low: lo, High: hi}}
}

// String renders GENERAL_BLOCK(/b1,b2,.../) in array-constructor
// syntax.
func (g GeneralBlock) String() string {
	parts := make([]string, len(g.Bounds))
	for i, b := range g.Bounds {
		parts[i] = fmt.Sprint(b)
	}
	return "GENERAL_BLOCK(/" + strings.Join(parts, ",") + "/)"
}

// indirect is the user-defined INDIRECT format: an explicit 1-based
// owner vector, one entry per global index — the generality the
// paper's distribution-function concept provides for (intro point 3,
// §9; cf. Kali and Vienna Fortran user-defined distributions). Local
// index tables and per-owner runs are precomputed at construction so
// Map and Local are O(1).
type indirect struct {
	owner []int
	// local[i] is the 1-based local index of global index i+1.
	local []int
	// perOwner[p] lists global indices owned by p+1, increasing.
	perOwner map[int][]int
	// runs[p] are the maximal contiguous runs owned by p+1.
	runs map[int][]Range
	max  int
	// allRuns are the maximal same-owner runs of the whole vector in
	// index order, and runOf[i] is the index into allRuns of the run
	// holding global index i+1 — so any subinterval's runs are a
	// clipped sub-slice of allRuns and its run count is an O(1) exact
	// difference (not the pessimistic whole-vector bound).
	allRuns []Run
	runOf   []int32
}

// NewIndirect builds an INDIRECT format from a 1-based owner vector
// (owner[i-1] is the owner of global index i). Entries must be
// positive; the upper bound against the actual processor count is
// checked by Validate.
func NewIndirect(owner []int) (Format, error) {
	if len(owner) == 0 {
		return nil, fmt.Errorf("dist: INDIRECT owner vector must be non-empty")
	}
	f := &indirect{
		owner:    append([]int(nil), owner...),
		local:    make([]int, len(owner)),
		perOwner: map[int][]int{},
		runs:     map[int][]Range{},
		runOf:    make([]int32, len(owner)),
	}
	for i, p := range f.owner {
		if p < 1 {
			return nil, fmt.Errorf("dist: INDIRECT owner of index %d must be positive, got %d", i+1, p)
		}
		if p > f.max {
			f.max = p
		}
		if i == 0 || p != f.owner[i-1] {
			f.allRuns = append(f.allRuns, Run{Lo: i + 1, Hi: i + 1, Proc: p})
		} else {
			f.allRuns[len(f.allRuns)-1].Hi = i + 1
		}
		f.runOf[i] = int32(len(f.allRuns) - 1)
		f.perOwner[p] = append(f.perOwner[p], i+1)
		f.local[i] = len(f.perOwner[p])
		rs := f.runs[p]
		if k := len(rs) - 1; k >= 0 && rs[k].High == i {
			rs[k].High = i + 1
		} else {
			rs = append(rs, Range{Low: i + 1, High: i + 1})
		}
		f.runs[p] = rs
	}
	return f, nil
}

// Kind reports KindIndirect.
func (*indirect) Kind() Kind { return KindIndirect }

// Validate checks the vector length against the extent and the owner
// entries against the processor count.
func (f *indirect) Validate(n, np int) error {
	if err := checkDims(n, np); err != nil {
		return err
	}
	if len(f.owner) != n {
		return fmt.Errorf("dist: INDIRECT owner vector has %d entries for extent %d", len(f.owner), n)
	}
	if f.max > np {
		return fmt.Errorf("dist: INDIRECT owner %d exceeds processor count %d", f.max, np)
	}
	return nil
}

// Map returns the owner-vector entry of i.
func (f *indirect) Map(i, n, np int) int { return f.owner[i-1] }

// Local returns i's precomputed rank among its owner's indices.
func (f *indirect) Local(i, n, np int) int { return f.local[i-1] }

// Global returns the l-th global index owned by p, or 0 when p holds
// fewer than l elements.
func (f *indirect) Global(p, l, n, np int) int {
	idx := f.perOwner[p]
	if l < 1 || l > len(idx) {
		return 0
	}
	return idx[l-1]
}

// OwnedRanges returns p's precomputed maximal runs.
func (f *indirect) OwnedRanges(p, n, np int) []Range { return f.runs[p] }

// String renders the owner vector, eliding long vectors.
func (f *indirect) String() string {
	if len(f.owner) > 16 {
		return fmt.Sprintf("INDIRECT(/...%d entries.../)", len(f.owner))
	}
	parts := make([]string, len(f.owner))
	for i, p := range f.owner {
		parts[i] = fmt.Sprint(p)
	}
	return "INDIRECT(/" + strings.Join(parts, ",") + "/)"
}

// Equal reports whether two formats denote the same distribution
// function: the same family with the same parameters. The two BLOCK
// variants are distinct (they map differently whenever NP does not
// divide N).
func Equal(a, b Format) bool {
	switch x := a.(type) {
	case Block:
		_, ok := b.(Block)
		return ok
	case BlockVienna:
		_, ok := b.(BlockVienna)
		return ok
	case Collapsed:
		_, ok := b.(Collapsed)
		return ok
	case Cyclic:
		y, ok := b.(Cyclic)
		return ok && x.K == y.K
	case GeneralBlock:
		y, ok := b.(GeneralBlock)
		return ok && slices.Equal(x.Bounds, y.Bounds)
	case *indirect:
		y, ok := b.(*indirect)
		return ok && slices.Equal(x.owner, y.owner)
	default:
		return false
	}
}
