package dist

import (
	"fmt"
	"strings"

	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// dimTable is the precomputed per-dimension state of a distribution:
// the dimension's bounds, its format, and — for distributed
// dimensions — the extent of the matched target dimension and its
// column-major multiplier into the target's effective index domain.
type dimTable struct {
	low, high int // inclusive global bounds of the array dimension
	n         int // extent
	f         Format
	collapsed bool
	np        int // matched target-dimension extent (1 if collapsed)
	mult      int // column-major multiplier of the matched target dim
}

// Distribution is a direct (template-free) distribution of one array
// (§4): one format per dimension applied to a processor target. The
// k-th non-collapsed format is matched to the k-th dimension of the
// target's effective index domain, whose rank must equal the number
// of non-collapsed formats.
//
// All per-dimension tables and the target's abstract-processor
// numbering are precomputed at New, so Owners is allocation-free on
// the hot path: it returns an owner-set slice interned per processor.
// Callers must treat the returned slices as immutable.
type Distribution struct {
	// Array is the distributee's index domain.
	Array index.Domain
	// Formats holds the per-dimension distribution formats.
	Formats []Format
	// Target is the processor arrangement or section distributed to.
	Target proc.Target

	dims []dimTable
	// aps[k] is the abstract processor at column-major position k of
	// the target's effective domain.
	aps []int
	// singles[k] is the interned one-element owner set {aps[k]}.
	singles [][]int
	// repl is the owner set of every element when the target is a
	// conceptually scalar arrangement (§3: one processor, or all of
	// them under the replicated policy); nil for array targets.
	repl []int
}

// New builds the distribution of an array with index domain dom by
// the given per-dimension formats onto target. It validates rank
// agreement (len(formats) == dom.Rank(), non-collapsed formats ==
// target rank) and each format against its dimension, and precomputes
// the owner-lookup tables.
func New(dom index.Domain, formats []Format, target proc.Target) (*Distribution, error) {
	if target.Arr == nil {
		return nil, fmt.Errorf("dist: distribution requires a processor target")
	}
	if len(formats) != dom.Rank() {
		return nil, fmt.Errorf("dist: %d formats for a rank-%d array", len(formats), dom.Rank())
	}
	if !dom.IsStandard() {
		return nil, fmt.Errorf("dist: distributee domain %s must be standard (stride 1)", dom)
	}
	if dom.Empty() && dom.Rank() > 0 {
		return nil, fmt.Errorf("dist: distributee domain %s is empty", dom)
	}
	for i, f := range formats {
		if f == nil {
			return nil, fmt.Errorf("dist: nil format in dimension %d", i+1)
		}
	}

	d := &Distribution{
		Array:   dom,
		Formats: append([]Format(nil), formats...),
		Target:  target,
	}

	eff := target.Domain()
	nonColon := 0
	for _, f := range formats {
		if f.Kind() != KindCollapsed {
			nonColon++
		}
	}
	if nonColon != eff.Rank() {
		return nil, fmt.Errorf("dist: %d distributed dimensions but target %s has rank %d", nonColon, target, eff.Rank())
	}

	d.dims = make([]dimTable, dom.Rank())
	k, mult := 0, 1
	for i, f := range formats {
		tr := dom.Dims[i]
		dt := dimTable{low: tr.Low, high: tr.High, n: tr.Count(), f: f, np: 1, mult: 0}
		dt.collapsed = f.Kind() == KindCollapsed
		if !dt.collapsed {
			dt.np = eff.Extent(k)
			dt.mult = mult
			mult *= dt.np
			k++
		}
		if err := f.Validate(dt.n, dt.np); err != nil {
			return nil, fmt.Errorf("dist: dimension %d: %w", i+1, err)
		}
		d.dims[i] = dt
	}

	if target.Arr.Scalar {
		d.repl = target.Arr.ScalarAPNumbers()
		return d, nil
	}
	aps, err := target.APNumbers()
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	d.aps = aps
	d.singles = make([][]int, len(aps))
	for i, p := range aps {
		d.singles[i] = []int{p}
	}
	return d, nil
}

// Owners returns the non-empty owner set of element i (Definition 1).
// For array targets the set is a single abstract processor; for
// scalar targets it follows the arrangement's placement policy
// (possibly all processors, under replication). The returned slice is
// shared and must not be modified.
func (d *Distribution) Owners(i index.Tuple) ([]int, error) {
	if len(i) != len(d.dims) {
		return nil, fmt.Errorf("dist: rank-%d index %s for rank-%d distribution", len(i), i, len(d.dims))
	}
	k := 0
	for dim := range d.dims {
		dt := &d.dims[dim]
		v := i[dim]
		if v < dt.low || v > dt.high {
			return nil, fmt.Errorf("dist: index %s outside domain %s", i, d.Array)
		}
		if !dt.collapsed {
			p := dt.f.Map(v-dt.low+1, dt.n, dt.np)
			k += (p - 1) * dt.mult
		}
	}
	if d.repl != nil {
		return d.repl, nil
	}
	if k < 0 || k >= len(d.singles) {
		return nil, fmt.Errorf("dist: index %s mapped outside target %s", i, d.Target)
	}
	return d.singles[k], nil
}

// NP reports the number of processors in the target.
func (d *Distribution) NP() int { return d.Target.NP() }

// Rank reports the distributee's rank.
func (d *Distribution) Rank() int { return len(d.dims) }

// Extent reports the distributee's extent along dimension dim
// (0-based).
func (d *Distribution) Extent(dim int) int { return d.dims[dim].n }

// Kind reports the format kind of dimension dim (0-based).
func (d *Distribution) Kind(dim int) Kind { return d.Formats[dim].Kind() }

// Size reports the number of array elements owned by abstract
// processor p: the product over dimensions of the per-dimension owned
// counts at p's target coordinates (0 if p is not in the target).
// Replicated (scalar-target) distributions count the full array for
// each owning processor.
func (d *Distribution) Size(p int) int {
	if d.repl != nil {
		for _, o := range d.repl {
			if o == p {
				return d.Array.Size()
			}
		}
		return 0
	}
	pos := -1
	for k, ap := range d.aps {
		if ap == p {
			pos = k
			break
		}
	}
	if pos < 0 {
		return 0
	}
	size := 1
	for dim := range d.dims {
		dt := &d.dims[dim]
		if dt.collapsed {
			size *= dt.n
			continue
		}
		c := pos/dt.mult%dt.np + 1
		owned := 0
		for _, r := range dt.f.OwnedRanges(c, dt.n, dt.np) {
			owned += r.Count()
		}
		size *= owned
	}
	return size
}

// LocalOf returns the per-dimension local indices of global element i
// on its owner (the local address under the paper's local index
// functions), for single-owner distributions.
func (d *Distribution) LocalOf(i index.Tuple) (index.Tuple, error) {
	if _, err := d.Owners(i); err != nil {
		return nil, err
	}
	out := make(index.Tuple, len(i))
	for dim := range d.dims {
		dt := &d.dims[dim]
		out[dim] = dt.f.Local(i[dim]-dt.low+1, dt.n, dt.np)
	}
	return out, nil
}

// Equal reports structural equality: same distributee domain, same
// per-dimension formats, same target.
func (d *Distribution) Equal(o *Distribution) bool {
	if d == nil || o == nil {
		return d == o
	}
	if !d.Array.Equal(o.Array) || !d.Target.Equal(o.Target) || len(d.Formats) != len(o.Formats) {
		return false
	}
	for i := range d.Formats {
		if !Equal(d.Formats[i], o.Formats[i]) {
			return false
		}
	}
	return true
}

// String renders the distribution in directive syntax:
// "(BLOCK,:) TO P".
func (d *Distribution) String() string {
	parts := make([]string, len(d.Formats))
	for i, f := range d.Formats {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, ",") + ") TO " + d.Target.String()
}
