package dist

import (
	"testing"
)

// FuzzFormatRoundTrip fuzzes the §4.1 distribution-function contract
// over every format family: owner(global) is total into 1..np, and
// (Map, Local) ↔ Global is a bijection between global indices and
// per-position local index spaces. The raw bytes seed the format
// family, the dimension parameters and (for GENERAL_BLOCK / INDIRECT)
// the bound or owner vectors.
func FuzzFormatRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(16), uint8(4), uint8(3), []byte{})
	f.Add(uint8(1), uint8(65), uint8(4), uint8(1), []byte{})
	f.Add(uint8(2), uint8(17), uint8(3), uint8(2), []byte{})
	f.Add(uint8(3), uint8(16), uint8(4), uint8(1), []byte{4, 6, 14})
	f.Add(uint8(4), uint8(12), uint8(3), uint8(1), []byte{2, 1, 3, 1, 2, 3, 3, 1, 2, 2, 1, 3})
	f.Add(uint8(2), uint8(100), uint8(5), uint8(64), []byte{})
	f.Add(uint8(3), uint8(12), uint8(4), uint8(1), []byte{0, 5, 5})

	f.Fuzz(func(t *testing.T, family, nn, pp, kk uint8, raw []byte) {
		n := int(nn)%128 + 1
		np := int(pp)%16 + 1
		var fm Format
		switch family % 5 {
		case 0:
			fm = Block{}
		case 1:
			fm = BlockVienna{}
		case 2:
			fm = Cyclic{K: int(kk)%8 + 1}
		case 3:
			// Build nondecreasing bounds within [0, n] from the raw
			// bytes by accumulating capped increments.
			bounds := make([]int, np-1)
			cur := 0
			for i := range bounds {
				inc := 0
				if i < len(raw) {
					inc = int(raw[i]) % (n/np + 2)
				}
				cur += inc
				if cur > n {
					cur = n
				}
				bounds[i] = cur
			}
			fm = GeneralBlock{Bounds: bounds}
		case 4:
			owner := make([]int, n)
			for i := range owner {
				b := byte(i)
				if i < len(raw) {
					b = raw[i]
				}
				owner[i] = int(b)%np + 1
			}
			var err error
			fm, err = NewIndirect(owner)
			if err != nil {
				t.Fatalf("NewIndirect over valid entries: %v", err)
			}
		}
		if err := fm.Validate(n, np); err != nil {
			t.Fatalf("%s: Validate(%d,%d): %v", fm, n, np, err)
		}

		// Totality: every global index has exactly one owner in range,
		// and (owner, local) → global inverts.
		counts := make([]int, np+1)
		for i := 1; i <= n; i++ {
			p := fm.Map(i, n, np)
			if p < 1 || p > np {
				t.Fatalf("%s: Map(%d,%d,%d) = %d out of range", fm, i, n, np, p)
			}
			counts[p]++
			l := fm.Local(i, n, np)
			if l < 1 || l > n {
				t.Fatalf("%s: Local(%d) = %d out of range", fm, i, l)
			}
			if g := fm.Global(p, l, n, np); g != i {
				t.Fatalf("%s: Global(Map(%d),Local(%d)) = %d", fm, i, i, g)
			}
		}
		// Bijection: each position's locals 1..count map to distinct
		// owned globals; past-the-end locals return 0.
		seen := make([]bool, n+1)
		for p := 1; p <= np; p++ {
			for l := 1; l <= counts[p]; l++ {
				g := fm.Global(p, l, n, np)
				if g < 1 || g > n || seen[g] {
					t.Fatalf("%s: Global(%d,%d) = %d duplicates or escapes", fm, p, l, g)
				}
				seen[g] = true
				if fm.Map(g, n, np) != p || fm.Local(g, n, np) != l {
					t.Fatalf("%s: Global(%d,%d) = %d does not invert", fm, p, l, g)
				}
			}
			if g := fm.Global(p, counts[p]+1, n, np); g != 0 {
				t.Fatalf("%s: Global past count = %d, want 0", fm, g)
			}
			// OwnedRanges agrees with Map.
			covered := 0
			for _, r := range fm.OwnedRanges(p, n, np) {
				for i := r.Low; i <= r.High; i++ {
					if fm.Map(i, n, np) != p {
						t.Fatalf("%s: range of %d contains foreign index %d", fm, p, i)
					}
					covered++
				}
			}
			if covered != counts[p] {
				t.Fatalf("%s: ranges of %d cover %d, Map assigns %d", fm, p, covered, counts[p])
			}
		}
		for i := 1; i <= n; i++ {
			if !seen[i] {
				t.Fatalf("%s: global %d unreachable from (owner, local)", fm, i)
			}
		}

		// Run-based enumeration is element-for-element identical to
		// Map over arbitrary subintervals: the runs partition [lo, hi]
		// contiguously in order and carry the per-element owner.
		lo := int(kk)%n + 1
		hi := lo + int(nn)%(n-lo+1)
		for _, iv := range [][2]int{{1, n}, {lo, hi}, {lo, lo}, {n, n}, {hi, lo - 1}} {
			runs := fm.AppendRuns(nil, iv[0], iv[1], n, np)
			next := iv[0]
			for _, r := range runs {
				if r.Lo != next || r.Hi < r.Lo || r.Hi > iv[1] {
					t.Fatalf("%s: runs of [%d,%d] not a partition: %+v", fm, iv[0], iv[1], runs)
				}
				for i := r.Lo; i <= r.Hi; i++ {
					if p := fm.Map(i, n, np); p != r.Proc {
						t.Fatalf("%s: run %+v claims %d, Map(%d) = %d", fm, r, r.Proc, i, p)
					}
				}
				next = r.Hi + 1
			}
			if want := iv[1] + 1; iv[0] <= iv[1] && next != want {
				t.Fatalf("%s: runs of [%d,%d] stop at %d", fm, iv[0], iv[1], next-1)
			}
			if iv[0] > iv[1] && len(runs) != 0 {
				t.Fatalf("%s: empty interval produced runs %+v", fm, runs)
			}
			// Runs must be maximal: adjacent runs differ in owner.
			for k := 1; k < len(runs); k++ {
				if runs[k].Proc == runs[k-1].Proc {
					t.Fatalf("%s: runs %+v and %+v not maximal", fm, runs[k-1], runs[k])
				}
			}
		}
	})
}
