package dist

import (
	"strings"
	"testing"

	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// checkRoundTrip asserts, for one format over n indices and np
// positions, the §4.1 contract: Map is total into 1..np, (Map, Local)
// ↔ Global is a bijection, and OwnedRanges partitions 1..n.
func checkRoundTrip(t *testing.T, f Format, n, np int) {
	t.Helper()
	if err := f.Validate(n, np); err != nil {
		t.Fatalf("%s: Validate(%d,%d): %v", f, n, np, err)
	}
	effNP := np
	if f.Kind() == KindCollapsed {
		effNP = 1
	}
	counts := make([]int, effNP+1)
	for i := 1; i <= n; i++ {
		p := f.Map(i, n, effNP)
		if p < 1 || p > effNP {
			t.Fatalf("%s: Map(%d) = %d outside 1..%d", f, i, p, effNP)
		}
		counts[p]++
		l := f.Local(i, n, effNP)
		if l < 1 {
			t.Fatalf("%s: Local(%d) = %d", f, i, l)
		}
		if g := f.Global(p, l, n, effNP); g != i {
			t.Fatalf("%s: Global(%d,%d) = %d, want %d", f, p, l, g, i)
		}
	}
	// OwnedRanges must partition 1..n with counts matching Map, and
	// Global must enumerate exactly the owned indices in local order.
	seen := make([]bool, n+1)
	for p := 1; p <= effNP; p++ {
		owned := 0
		prevHi := 0
		for _, r := range f.OwnedRanges(p, n, effNP) {
			if r.Low < 1 || r.High > n || r.Low <= prevHi {
				t.Fatalf("%s: position %d has bad range %+v", f, p, r)
			}
			prevHi = r.High
			for i := r.Low; i <= r.High; i++ {
				if seen[i] {
					t.Fatalf("%s: index %d owned twice", f, i)
				}
				seen[i] = true
				if got := f.Map(i, n, effNP); got != p {
					t.Fatalf("%s: range of %d contains %d owned by %d", f, p, i, got)
				}
				owned++
			}
		}
		if owned != counts[p] {
			t.Fatalf("%s: position %d ranges cover %d indices, Map assigns %d", f, p, owned, counts[p])
		}
		for l := 1; l <= owned; l++ {
			g := f.Global(p, l, n, effNP)
			if g < 1 || g > n || f.Map(g, n, effNP) != p || f.Local(g, n, effNP) != l {
				t.Fatalf("%s: Global(%d,%d) = %d does not invert (Map,Local)", f, p, l, g)
			}
		}
		if g := f.Global(p, owned+1, n, effNP); g != 0 {
			t.Fatalf("%s: Global past extent = %d, want 0", f, g)
		}
	}
	for i := 1; i <= n; i++ {
		if !seen[i] {
			t.Fatalf("%s: index %d owned by nobody", f, i)
		}
	}
}

func TestFormatRoundTrips(t *testing.T) {
	ind, err := NewIndirect([]int{3, 1, 1, 4, 2, 4, 1, 3, 3, 2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    Format
		n    int
		np   int
	}{
		{"block-even", Block{}, 16, 4},
		{"block-ragged", Block{}, 17, 4},
		{"block-sparse", Block{}, 3, 8},
		{"vienna-even", BlockVienna{}, 16, 4},
		{"vienna-ragged", BlockVienna{}, 65, 4},
		{"vienna-sparse", BlockVienna{}, 3, 8},
		{"collapsed", Collapsed{}, 9, 5},
		{"cyclic-1", Cyclic{K: 1}, 17, 4},
		{"cyclic-3", Cyclic{K: 3}, 16, 4},
		{"cyclic-large-k", Cyclic{K: 64}, 100, 4},
		{"general-uneven", GeneralBlock{Bounds: []int{4, 6, 14}}, 16, 4},
		{"general-empty-block", GeneralBlock{Bounds: []int{0, 5, 5}}, 12, 4},
		{"general-explicit-last", GeneralBlock{Bounds: []int{2, 7, 9, 12}}, 12, 4},
		{"indirect", ind, 13, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkRoundTrip(t, c.f, c.n, c.np) })
	}
}

func TestBlockClosedForms(t *testing.T) {
	// §4.1.1: q = ⌈N/NP⌉, δ(i) = ⌈i/q⌉, local = i-(j-1)q.
	n, np := 16, 4
	for i := 1; i <= n; i++ {
		q := (n + np - 1) / np
		j := (i + q - 1) / q
		if (Block{}).Map(i, n, np) != j {
			t.Fatalf("Map(%d) != ⌈i/q⌉", i)
		}
		if (Block{}).Local(i, n, np) != i-(j-1)*q {
			t.Fatalf("Local(%d) != i-(j-1)q", i)
		}
	}
}

func TestViennaBlockBalanced(t *testing.T) {
	// The Vienna variant keeps block sizes within one of each other
	// and leaves no processor empty when n >= np.
	for _, c := range []struct{ n, np int }{{64, 8}, {65, 4}, {66, 4}, {7, 3}, {8, 8}} {
		lo, hi := c.n, 0
		for p := 1; p <= c.np; p++ {
			size := 0
			for _, r := range (BlockVienna{}).OwnedRanges(p, c.n, c.np) {
				size += r.Count()
			}
			if size < lo {
				lo = size
			}
			if size > hi {
				hi = size
			}
		}
		if hi-lo > 1 {
			t.Fatalf("n=%d np=%d: block sizes range %d..%d", c.n, c.np, lo, hi)
		}
		if c.n >= c.np && lo == 0 {
			t.Fatalf("n=%d np=%d: empty block despite n >= np", c.n, c.np)
		}
	}
}

func TestCyclicSegments(t *testing.T) {
	// CYCLIC(3) over 16/4: segments of 3 dealt round-robin.
	c := Cyclic{K: 3}
	wantOwner := []int{1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 1, 1, 1, 2}
	for i := 1; i <= 16; i++ {
		if got := c.Map(i, 16, 4); got != wantOwner[i-1] {
			t.Fatalf("CYCLIC(3).Map(%d) = %d, want %d", i, got, wantOwner[i-1])
		}
	}
	// Position 1's second cycle starts at local index 4.
	if l := c.Local(13, 16, 4); l != 4 {
		t.Fatalf("Local(13) = %d, want 4", l)
	}
	rs := c.OwnedRanges(1, 16, 4)
	if len(rs) != 2 || rs[0] != (Range{1, 3}) || rs[1] != (Range{13, 15}) {
		t.Fatalf("OwnedRanges(1) = %v", rs)
	}
}

func TestGeneralBlockBoundSemantics(t *testing.T) {
	// §4.1.2: G(p) is the inclusive upper bound of block p; the last
	// block extends to N.
	g := GeneralBlock{Bounds: []int{4, 6, 14}}
	n, np := 16, 4
	if g.Map(4, n, np) != 1 || g.Map(5, n, np) != 2 || g.Map(7, n, np) != 3 || g.Map(15, n, np) != 4 || g.Map(n, n, np) != np {
		t.Fatal("bound semantics wrong")
	}
	if g.Local(7, n, np) != 1 || g.Local(14, n, np) != 8 {
		t.Fatal("general-block local index wrong")
	}
}

func TestFormatValidateErrors(t *testing.T) {
	ind, _ := NewIndirect([]int{1, 2, 9})
	cases := []struct {
		name string
		f    Format
		n    int
		np   int
	}{
		{"cyclic-zero-k", Cyclic{K: 0}, 8, 4},
		{"cyclic-negative-k", Cyclic{K: -2}, 8, 4},
		{"block-zero-np", Block{}, 8, 0},
		{"block-zero-n", Block{}, 0, 4},
		{"general-too-few", GeneralBlock{Bounds: []int{4}}, 16, 4},
		{"general-decreasing", GeneralBlock{Bounds: []int{8, 4, 12}}, 16, 4},
		{"general-exceeds", GeneralBlock{Bounds: []int{4, 8, 30}}, 16, 4},
		{"general-bad-last", GeneralBlock{Bounds: []int{4, 8, 12, 15}}, 16, 4},
		{"indirect-length", ind, 4, 9},
		{"indirect-owner-high", ind, 3, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.f.Validate(c.n, c.np); err == nil {
				t.Fatalf("%s: Validate(%d,%d) must fail", c.f, c.n, c.np)
			}
		})
	}
}

func TestNewIndirectErrors(t *testing.T) {
	if _, err := NewIndirect(nil); err == nil {
		t.Fatal("empty owner vector must fail")
	}
	if _, err := NewIndirect([]int{1, 0, 2}); err == nil {
		t.Fatal("non-positive owner must fail")
	}
}

func TestIndirectPrecomputedTables(t *testing.T) {
	f, err := NewIndirect([]int{2, 1, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Map(1, 5, 2) != 2 || f.Map(2, 5, 2) != 1 {
		t.Fatal("Map must follow the owner vector")
	}
	// Owner 2 holds global 1, 3, 4 as locals 1, 2, 3.
	if f.Local(3, 5, 2) != 2 || f.Global(2, 3, 5, 2) != 4 {
		t.Fatal("indirect local/global tables wrong")
	}
	rs := f.OwnedRanges(2, 5, 2)
	if len(rs) != 2 || rs[0] != (Range{1, 1}) || rs[1] != (Range{3, 4}) {
		t.Fatalf("OwnedRanges(2) = %v", rs)
	}
}

// TestIndirectRunEstimateExact pins the INDIRECT fast paths: the
// run-count estimate over any subinterval must equal the number of
// runs AppendRuns emits (not the whole-vector bound), and the emitted
// runs must match a per-element walk of the owner vector.
func TestIndirectRunEstimateExact(t *testing.T) {
	owner := []int{1, 1, 1, 2, 2, 3, 3, 3, 3, 1, 2, 2, 1, 1, 3}
	n, np := len(owner), 3
	f, err := NewIndirect(owner)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 1; lo <= n; lo++ {
		for hi := lo; hi <= n; hi++ {
			runs := Runs(f, lo, hi, n, np)
			if est := f.RunCountEstimate(lo, hi, n, np); est != len(runs) {
				t.Fatalf("estimate over [%d,%d] = %d, want exactly %d", lo, hi, est, len(runs))
			}
			// The runs must partition [lo, hi] with the vector's owners.
			i := lo
			for _, r := range runs {
				if r.Lo != i || r.Hi < r.Lo || r.Hi > hi {
					t.Fatalf("runs over [%d,%d] do not partition: %v", lo, hi, runs)
				}
				for j := r.Lo; j <= r.Hi; j++ {
					if owner[j-1] != r.Proc {
						t.Fatalf("run %v disagrees with owner[%d]=%d", r, j, owner[j-1])
					}
				}
				i = r.Hi + 1
			}
			if i != hi+1 {
				t.Fatalf("runs over [%d,%d] stop at %d: %v", lo, hi, i-1, runs)
			}
		}
	}
}

func TestKindAndStringRendering(t *testing.T) {
	short, _ := NewIndirect([]int{1, 2})
	long, _ := NewIndirect(make4096ones())
	cases := []struct {
		f    Format
		kind Kind
		str  string
	}{
		{Block{}, KindBlock, "BLOCK"},
		{BlockVienna{}, KindBlock, "BLOCK"},
		{Collapsed{}, KindCollapsed, ":"},
		{Cyclic{K: 1}, KindCyclic, "CYCLIC"},
		{Cyclic{K: 7}, KindCyclic, "CYCLIC(7)"},
		{GeneralBlock{Bounds: []int{4, 8}}, KindGeneralBlock, "GENERAL_BLOCK(/4,8/)"},
		{short, KindIndirect, "INDIRECT(/1,2/)"},
	}
	for _, c := range cases {
		if c.f.Kind() != c.kind || c.f.String() != c.str {
			t.Fatalf("%T: Kind=%v String=%q", c.f, c.f.Kind(), c.f.String())
		}
	}
	if s := long.String(); !strings.Contains(s, "4096 entries") {
		t.Fatalf("long INDIRECT rendering = %q", s)
	}
	for _, k := range []Kind{KindBlock, KindCyclic, KindGeneralBlock, KindCollapsed, KindIndirect} {
		if k.String() == "?" {
			t.Fatalf("kind %d has no string", int(k))
		}
	}
	if Kind(99).String() != "?" {
		t.Fatal("unknown kind must render ?")
	}
}

func make4096ones() []int {
	v := make([]int, 4096)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestFormatEqual(t *testing.T) {
	i1, _ := NewIndirect([]int{1, 2})
	i2, _ := NewIndirect([]int{1, 2})
	i3, _ := NewIndirect([]int{2, 1})
	cases := []struct {
		a, b Format
		want bool
	}{
		{Block{}, Block{}, true},
		{Block{}, BlockVienna{}, false},
		{Cyclic{K: 2}, Cyclic{K: 2}, true},
		{Cyclic{K: 2}, Cyclic{K: 3}, false},
		{GeneralBlock{Bounds: []int{1, 2}}, GeneralBlock{Bounds: []int{1, 2}}, true},
		{GeneralBlock{Bounds: []int{1, 2}}, GeneralBlock{Bounds: []int{1, 3}}, false},
		{i1, i2, true},
		{i1, i3, false},
		{Collapsed{}, Collapsed{}, true},
		{Collapsed{}, Block{}, false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Fatalf("Equal(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// --- Distribution ---

func target1D(t *testing.T, np int) proc.Target {
	t.Helper()
	sys, err := proc.NewSystem(np)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, np))
	if err != nil {
		t.Fatal(err)
	}
	return proc.Whole(arr)
}

func TestDistributionOwners2D(t *testing.T) {
	// (BLOCK, CYCLIC(2)) over a 4x2 grid: owners compose per
	// dimension, column-major over the grid.
	sys, _ := proc.NewSystem(8)
	arr, err := sys.DeclareArray("G", index.Standard(1, 4, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	dom := index.Standard(1, 16, 1, 8)
	d, err := New(dom, []Format{Block{}, Cyclic{K: 2}}, proc.Whole(arr))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 16; i++ {
		for j := 1; j <= 8; j++ {
			os, err := d.Owners(index.Tuple{i, j})
			if err != nil {
				t.Fatal(err)
			}
			r := (Block{}).Map(i, 16, 4)
			c := (Cyclic{K: 2}).Map(j, 8, 2)
			want := (c-1)*4 + r
			if len(os) != 1 || os[0] != want {
				t.Fatalf("Owners(%d,%d) = %v, want [%d]", i, j, os, want)
			}
		}
	}
	if d.NP() != 8 || d.Rank() != 2 || d.Extent(0) != 16 || d.Kind(1) != KindCyclic {
		t.Fatalf("accessors wrong: NP=%d rank=%d", d.NP(), d.Rank())
	}
}

func TestDistributionNonUnitLowerBounds(t *testing.T) {
	// U(0:16, 1:8): formats see normalized indices 1..n.
	tg := target1D(t, 4)
	dom := index.Standard(0, 16, 1, 8)
	d, err := New(dom, []Format{Block{}, Collapsed{}}, tg)
	if err != nil {
		t.Fatal(err)
	}
	os, err := d.Owners(index.Tuple{0, 1})
	if err != nil || os[0] != 1 {
		t.Fatalf("Owners(0,1) = %v, %v", os, err)
	}
	os, _ = d.Owners(index.Tuple{16, 8})
	// 17 indices, q = ⌈17/4⌉ = 5: index 16 normalizes to 17 → block 4.
	if os[0] != 4 {
		t.Fatalf("Owners(16,8) = %v", os)
	}
	if _, err := d.Owners(index.Tuple{17, 1}); err == nil {
		t.Fatal("out-of-domain index must fail")
	}
	if _, err := d.Owners(index.Tuple{1}); err == nil {
		t.Fatal("rank mismatch must fail")
	}
}

func TestDistributionSectionTargetConfinement(t *testing.T) {
	// §4's generalization: DISTRIBUTE ... TO Q(1:8:2) confines
	// ownership to the odd processors.
	sys, _ := proc.NewSystem(8)
	arr, _ := sys.DeclareArray("Q", index.Standard(1, 8))
	sel, err := index.NewTriplet(1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := proc.SectionOf(arr, sel)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(index.Standard(1, 64), []Format{Cyclic{K: 1}}, tg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 1; i <= 64; i++ {
		os, err := d.Owners(index.Tuple{i})
		if err != nil {
			t.Fatal(err)
		}
		if os[0]%2 == 0 {
			t.Fatalf("element %d on even processor %d outside section", i, os[0])
		}
		counts[os[0]]++
	}
	for _, p := range []int{1, 3, 5, 7} {
		if counts[p] != 16 {
			t.Fatalf("processor %d owns %d, want 16", p, counts[p])
		}
	}
}

func TestDistributionScalarReplicatedTarget(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	rep, err := sys.DeclareScalar("REP", proc.ScalarReplicated)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(index.Standard(1, 8), []Format{Collapsed{}}, proc.Whole(rep))
	if err != nil {
		t.Fatal(err)
	}
	os, err := d.Owners(index.Tuple{5})
	if err != nil || len(os) != 4 {
		t.Fatalf("replicated owners = %v, %v", os, err)
	}
	if d.Size(3) != 8 || d.Size(9) != 0 {
		t.Fatalf("replicated Size = %d / %d", d.Size(3), d.Size(9))
	}
}

func TestDistributionNewErrors(t *testing.T) {
	tg := target1D(t, 4)
	dom := index.Standard(1, 16)
	if _, err := New(dom, []Format{Block{}}, proc.Target{}); err == nil {
		t.Fatal("missing target must fail")
	}
	if _, err := New(dom, []Format{Block{}, Block{}}, tg); err == nil {
		t.Fatal("format-count/rank mismatch must fail")
	}
	if _, err := New(dom, []Format{Collapsed{}}, tg); err == nil {
		t.Fatal("0 distributed dims against rank-1 target must fail")
	}
	if _, err := New(index.Standard(1, 16, 1, 16), []Format{Block{}, Block{}}, tg); err == nil {
		t.Fatal("2 distributed dims against rank-1 target must fail")
	}
	if _, err := New(dom, []Format{Cyclic{K: 0}}, tg); err == nil {
		t.Fatal("invalid format must fail at New")
	}
	if _, err := New(dom, []Format{nil}, tg); err == nil {
		t.Fatal("nil format must fail")
	}
	strided := index.New(index.Triplet{Low: 1, High: 16, Stride: 2})
	if _, err := New(strided, []Format{Block{}}, tg); err == nil {
		t.Fatal("non-standard domain must fail")
	}
}

func TestDistributionSizePartition(t *testing.T) {
	// Sizes over all processors must sum to the domain size, for
	// every format family.
	sys, _ := proc.NewSystem(8)
	arr, _ := sys.DeclareArray("G", index.Standard(1, 4, 1, 2))
	dom := index.Standard(1, 20, 1, 6)
	ind, _ := NewIndirect([]int{1, 4, 2, 3, 2, 1, 1, 3, 4, 2, 1, 2, 3, 4, 4, 1, 2, 3, 1, 2})
	for _, fs := range [][]Format{
		{Block{}, Cyclic{K: 1}},
		{BlockVienna{}, Block{}},
		{GeneralBlock{Bounds: []int{3, 9, 15}}, BlockVienna{}},
		{ind, Cyclic{K: 2}},
	} {
		d, err := New(dom, fs, proc.Whole(arr))
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for p := 1; p <= 8; p++ {
			total += d.Size(p)
		}
		if total != dom.Size() {
			t.Fatalf("%s: sizes sum to %d, want %d", d, total, dom.Size())
		}
		// Spot check Size against brute-force Owners.
		want := map[int]int{}
		dom.ForEach(func(tu index.Tuple) bool {
			os, err := d.Owners(tu)
			if err != nil {
				t.Fatal(err)
			}
			want[os[0]]++
			return true
		})
		for p := 1; p <= 8; p++ {
			if d.Size(p) != want[p] {
				t.Fatalf("%s: Size(%d) = %d, brute force %d", d, p, d.Size(p), want[p])
			}
		}
	}
}

func TestDistributionLocalOf(t *testing.T) {
	tg := target1D(t, 4)
	d, err := New(index.Standard(0, 15), []Format{Cyclic{K: 2}}, tg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := d.LocalOf(index.Tuple{9})
	if err != nil {
		t.Fatal(err)
	}
	// Index 9 normalizes to 10: segment 4 → owner 1, local 2+2 = 4.
	if len(l) != 1 || l[0] != 4 {
		t.Fatalf("LocalOf(9) = %v", l)
	}
	if _, err := d.LocalOf(index.Tuple{99}); err == nil {
		t.Fatal("out-of-domain LocalOf must fail")
	}
}

func TestDistributionEqualAndString(t *testing.T) {
	tg := target1D(t, 4)
	dom := index.Standard(1, 16, 1, 4)
	d1, err := New(dom, []Format{Block{}, Collapsed{}}, tg)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := New(dom, []Format{Block{}, Collapsed{}}, tg)
	d3, _ := New(dom, []Format{Cyclic{K: 1}, Collapsed{}}, tg)
	if !d1.Equal(d2) || d1.Equal(d3) || d1.Equal(nil) {
		t.Fatal("Equal wrong")
	}
	if got := d1.String(); got != "(BLOCK,:) TO P" {
		t.Fatalf("String = %q", got)
	}
}

func TestOwnersZeroAlloc(t *testing.T) {
	tg := target1D(t, 8)
	d, err := New(index.Standard(1, 256), []Format{Cyclic{K: 4}}, tg)
	if err != nil {
		t.Fatal(err)
	}
	tu := index.Tuple{1}
	allocs := testing.AllocsPerRun(200, func() {
		tu[0] = tu[0]%256 + 1
		if _, err := d.Owners(tu); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Owners allocates %.1f per op, want 0", allocs)
	}
}
