package template

import (
	"strings"
	"testing"

	"hpfnt/internal/align"
	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

func newModel(t *testing.T, np int) (*Model, proc.Target) {
	t.Helper()
	sys, err := proc.NewSystem(np)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, np))
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(sys), proc.Whole(arr)
}

func grid(t *testing.T, m *Model, np, r, c int) proc.Target {
	t.Helper()
	arr, err := m.Sys.DeclareArray("G", index.Standard(1, r, 1, c))
	if err != nil {
		t.Fatal(err)
	}
	return proc.Whole(arr)
}

func TestTemplateDeclaration(t *testing.T) {
	m, _ := newModel(t, 4)
	tp, err := m.DeclareTemplate("T", index.Standard(0, 16, 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if tp.Tag == 0 {
		t.Fatal("templates must be tagged index domains (§8)")
	}
	if _, err := m.DeclareTemplate("T", index.Standard(1, 4)); err == nil {
		t.Fatal("duplicate template must fail")
	}
	// Distinct definitions get distinct tags even with equal domains.
	t2, _ := m.DeclareTemplate("T2", index.Standard(0, 16, 0, 16))
	if t2.Tag == tp.Tag {
		t.Fatal("distinct templates must have distinct tags")
	}
	if !m.HasTemplate("T") || m.HasTemplate("NOPE") {
		t.Fatal("HasTemplate wrong")
	}
	dom, err := m.TemplateDomain("T")
	if err != nil || dom.Size() != 17*17 {
		t.Fatalf("TemplateDomain: %v %v", dom, err)
	}
}

func TestTemplateRestrictions(t *testing.T) {
	// §8.2's two problems, executable.
	m, _ := newModel(t, 4)
	if err := m.AllocatableTemplate("T", 2); err == nil || !strings.Contains(err.Error(), "ALLOCATABLE") {
		t.Fatalf("allocatable template must fail with explanation, got %v", err)
	}
	m.DeclareTemplate("T", index.Standard(1, 8))
	if err := m.PassTemplate("T", "SUB"); err == nil || !strings.Contains(err.Error(), "first-class") {
		t.Fatalf("passing template must fail with explanation, got %v", err)
	}
}

func TestAlignWithTemplateAndResolve(t *testing.T) {
	m, tg := newModel(t, 4)
	m.DeclareTemplate("T", index.Standard(1, 16))
	m.DeclareArray("A", index.Standard(1, 8))
	err := m.AlignWithTemplate(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "T", Subs: []align.Subscript{align.ExprSub(expr.Affine(2, "I", 0))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeTemplate("T", []dist.Format{dist.Block{}}, tg); err != nil {
		t.Fatal(err)
	}
	// A(i) lives where T(2i) lives: BLOCK q=4.
	for i := 1; i <= 8; i++ {
		os, err := m.Owners("A", index.Tuple{i})
		if err != nil {
			t.Fatal(err)
		}
		want := (2*i-1)/4 + 1
		if os[0] != want {
			t.Fatalf("A(%d) on %v, want %d", i, os, want)
		}
	}
}

func TestAlignmentChainsPermitted(t *testing.T) {
	// The HPF model allows trees of height > 1; the paper's model
	// does not. Verify the baseline supports chains and reports their
	// depth.
	m, tg := newModel(t, 4)
	m.DeclareTemplate("T", index.Standard(1, 16))
	m.DeclareArray("A", index.Standard(1, 16))
	m.DeclareArray("B", index.Standard(1, 16))
	m.DeclareArray("C", index.Standard(1, 16))
	id := func(alignee, base string) align.Spec {
		return align.Spec{
			Alignee: alignee, Axes: []align.Axis{align.DummyAxis("I")},
			Base: base, Subs: []align.Subscript{align.ExprSub(expr.Dummy("I"))},
		}
	}
	if err := m.AlignWithTemplate(id("A", "T")); err != nil {
		t.Fatal(err)
	}
	if err := m.AlignWithArray(id("B", "A")); err != nil {
		t.Fatal(err)
	}
	if err := m.AlignWithArray(id("C", "B")); err != nil {
		t.Fatal(err)
	}
	depth, err := m.ChainDepth("C")
	if err != nil || depth != 3 {
		t.Fatalf("ChainDepth = %d, %v", depth, err)
	}
	m.DistributeTemplate("T", []dist.Format{dist.Cyclic{K: 1}}, tg)
	for i := 1; i <= 16; i++ {
		co, err := m.Owners("C", index.Tuple{i})
		if err != nil {
			t.Fatal(err)
		}
		ao, _ := m.Owners("A", index.Tuple{i})
		if co[0] != ao[0] {
			t.Fatalf("chain resolution broken at %d", i)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	m, _ := newModel(t, 4)
	m.DeclareArray("A", index.Standard(1, 8))
	m.DeclareArray("B", index.Standard(1, 8))
	id := func(alignee, base string) align.Spec {
		return align.Spec{
			Alignee: alignee, Axes: []align.Axis{align.DummyAxis("I")},
			Base: base, Subs: []align.Subscript{align.ExprSub(expr.Dummy("I"))},
		}
	}
	m.AlignWithArray(id("A", "B"))
	m.AlignWithArray(id("B", "A"))
	if _, err := m.Owners("A", index.Tuple{1}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle must be detected, got %v", err)
	}
	if _, err := m.ChainDepth("A"); err == nil {
		t.Fatal("ChainDepth must detect cycles")
	}
}

func TestUndistributedTemplateFails(t *testing.T) {
	m, _ := newModel(t, 4)
	m.DeclareTemplate("T", index.Standard(1, 8))
	m.DeclareArray("A", index.Standard(1, 8))
	m.AlignWithTemplate(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "T", Subs: []align.Subscript{align.ExprSub(expr.Dummy("I"))},
	})
	if _, err := m.Owners("A", index.Tuple{1}); err == nil {
		t.Fatal("owners without template distribution must fail")
	}
}

// TestStaggeredCyclicDisaster reproduces §8.1.1's observation: with
// T(0:2N,0:2N) distributed (CYCLIC,CYCLIC), all arrays land on
// different processors from their neighbors — "the worst possible
// effect, viz. different processor allocations for any two
// neighbors."
func TestStaggeredCyclicDisaster(t *testing.T) {
	n := 4
	sys, _ := proc.NewSystem(4)
	m := NewModel(sys)
	g := grid(t, m, 4, 2, 2)
	m.DeclareTemplate("T", index.Standard(0, 2*n, 0, 2*n))
	m.DeclareArray("P", index.Standard(1, n, 1, n))
	m.DeclareArray("U", index.Standard(0, n, 1, n))
	m.AlignWithTemplate(align.Spec{
		Alignee: "P", Axes: []align.Axis{align.DummyAxis("I"), align.DummyAxis("J")},
		Base: "T", Subs: []align.Subscript{
			align.ExprSub(expr.Affine(2, "I", -1)), align.ExprSub(expr.Affine(2, "J", -1))},
	})
	m.AlignWithTemplate(align.Spec{
		Alignee: "U", Axes: []align.Axis{align.DummyAxis("I"), align.DummyAxis("J")},
		Base: "T", Subs: []align.Subscript{
			align.ExprSub(expr.Affine(2, "I", 0)), align.ExprSub(expr.Affine(2, "J", -1))},
	})
	m.DistributeTemplate("T", []dist.Format{dist.Cyclic{K: 1}, dist.Cyclic{K: 1}}, g)
	// P(i,j) reads U(i-1,j) and U(i,j): under (CYCLIC,CYCLIC) on the
	// doubled template, both are always remote.
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			po, _ := m.Owners("P", index.Tuple{i, j})
			uo1, _ := m.Owners("U", index.Tuple{i - 1, j})
			uo2, _ := m.Owners("U", index.Tuple{i, j})
			if po[0] == uo1[0] || po[0] == uo2[0] {
				t.Fatalf("expected all U neighbors of P(%d,%d) remote; got P:%v U:%v,%v", i, j, po, uo1, uo2)
			}
		}
	}
}

func TestDistributeArrayDirectly(t *testing.T) {
	// HPF also permits direct array distribution in the template model.
	m, tg := newModel(t, 4)
	m.DeclareArray("A", index.Standard(1, 16))
	if err := m.DistributeArray("A", []dist.Format{dist.Cyclic{K: 1}}, tg); err != nil {
		t.Fatal(err)
	}
	os, err := m.Owners("A", index.Tuple{6})
	if err != nil || os[0] != 2 {
		t.Fatalf("A(6) on %v, %v", os, err)
	}
	// Aligned arrays cannot also be distributed directly.
	m.DeclareArray("B", index.Standard(1, 16))
	m.AlignWithArray(align.Spec{
		Alignee: "B", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "A", Subs: []align.Subscript{align.ExprSub(expr.Dummy("I"))},
	})
	if err := m.DistributeArray("B", []dist.Format{dist.Block{}}, tg); err == nil {
		t.Fatal("distributing an aligned array must fail")
	}
	if err := m.DistributeArray("NOPE", []dist.Format{dist.Block{}}, tg); err == nil {
		t.Fatal("unknown array must fail")
	}
}

func TestTemplateMappingAdapter(t *testing.T) {
	m, tg := newModel(t, 4)
	m.DeclareTemplate("T", index.Standard(1, 16))
	m.DeclareArray("A", index.Standard(1, 16))
	m.AlignWithTemplate(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "T", Subs: []align.Subscript{align.ExprSub(expr.Dummy("I"))},
	})
	m.DistributeTemplate("T", []dist.Format{dist.Block{}}, tg)
	tm := Mapping{M: m, Name: "A"}
	if tm.Domain().Size() != 16 {
		t.Fatalf("Domain = %v", tm.Domain())
	}
	os, err := tm.Owners(index.Tuple{16})
	if err != nil || os[0] != 4 {
		t.Fatalf("Owners = %v, %v", os, err)
	}
	if !strings.Contains(tm.Describe(), "template") {
		t.Fatalf("Describe = %q", tm.Describe())
	}
}

func TestTemplateBoundsEnvIntrinsics(t *testing.T) {
	// UBOUND over a template base resolves through the model's
	// bounds environment.
	m, tg := newModel(t, 4)
	m.DeclareTemplate("T", index.Standard(1, 12))
	m.DeclareArray("A", index.Standard(1, 12))
	err := m.AlignWithTemplate(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "T", Subs: []align.Subscript{align.ExprSub(
			expr.Min(expr.Add(expr.Dummy("I"), expr.Const(3)), expr.UBound("T", 1)))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeTemplate("T", []dist.Format{dist.Block{}}, tg); err != nil {
		t.Fatal(err)
	}
	o12, err := m.Owners("A", index.Tuple{12})
	if err != nil {
		t.Fatal(err)
	}
	o9, _ := m.Owners("A", index.Tuple{9})
	if o12[0] != o9[0] {
		t.Fatalf("clamped alignments must coincide: %v vs %v", o12, o9)
	}
}

func TestTemplateMappingOwnerTiles(t *testing.T) {
	// The bulk tile path through a height-3 alignment chain (with a
	// stride-2 alignment in the middle) must agree element-for-element
	// with chain resolution via Owners.
	m, tg := newModel(t, 4)
	m.DeclareTemplate("T", index.Standard(1, 40))
	m.DeclareArray("A", index.Standard(1, 40))
	m.DeclareArray("B", index.Standard(1, 16))
	if err := m.AlignWithTemplate(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "T", Subs: []align.Subscript{align.ExprSub(expr.Dummy("I"))},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AlignWithArray(align.Spec{
		Alignee: "B", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "A", Subs: []align.Subscript{align.ExprSub(expr.Affine(2, "I", 3))},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeTemplate("T", []dist.Format{dist.Cyclic{K: 3}}, tg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B"} {
		tm := Mapping{M: m, Name: name}
		tiles, err := core.OwnerTiles(tm, tm.Domain())
		if err != nil {
			t.Fatalf("%s: OwnerTiles: %v", name, err)
		}
		total := 0
		for _, tl := range tiles {
			total += tl.Region.Size()
			tl.Region.ForEach(func(tu index.Tuple) bool {
				os, err := tm.Owners(tu)
				if err != nil {
					t.Fatalf("%s: Owners(%s): %v", name, tu, err)
				}
				if len(os) != 1 || os[0] != tl.Proc {
					t.Fatalf("%s: tile owner %d at %s, oracle %v", name, tl.Proc, tu, os)
				}
				return true
			})
		}
		if total != tm.Domain().Size() {
			t.Fatalf("%s: tiles cover %d of %d elements", name, total, tm.Domain().Size())
		}
	}
}
