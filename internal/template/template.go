// Package template implements the HPF draft-0.2 TEMPLATE model that
// the paper argues against (§8), as the executable comparison
// baseline. A template is "like an array whose elements have no
// content ... merely an abstract index space that can be distributed
// and with which arrays may be aligned"; the draft semantics force
// each template to be a *tagged* index domain (distinct definitions
// are distinct even with equal domains). Templates are not first
// class: they cannot be ALLOCATABLE and cannot be passed across
// procedure boundaries — both restrictions are enforced here so the
// paper's §8.2 criticisms are demonstrable (experiment E12). In the
// pipeline it is an optional side entrance: TEMPLATE-aligned arrays
// resolve to the same ElementMapping interface (package core) the
// template-free path produces, so everything downstream — owner
// tiles, schedules, both engines — runs unchanged over either model.
//
// Unlike the paper's model (package core), the template model allows
// alignment chains: an array may be aligned to another array that is
// itself aligned to a template, so alignment trees can have height
// greater than one. Mapping resolution composes the chain.
package template

import (
	"errors"
	"fmt"

	"hpfnt/internal/align"
	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// Template is a tagged abstract index space.
type Template struct {
	Name string
	Dom  index.Domain
	// Tag distinguishes distinct template definitions with equal
	// domains (§8: "each template created in a program execution must
	// be interpreted as a tagged index domain").
	Tag int

	d *dist.Distribution
}

// Model is a program unit's data space under the HPF template model.
type Model struct {
	Sys *proc.System

	templates map[string]*Template
	arrays    map[string]*tnode
	nextTag   int
	// composed memoizes composedMapping per array; any mutation of
	// the alignment/distribution state drops the whole cache (chains
	// may share suffixes, so per-array invalidation is not worth it).
	composed map[string]core.ElementMapping
}

type tnode struct {
	name string
	dom  index.Domain
	// Exactly one of toTemplate/toArray is set for aligned arrays;
	// both empty for directly distributed arrays.
	toTemplate string
	toArray    string
	alpha      *align.Function
	d          *dist.Distribution
}

// NewModel creates an empty template-model data space.
func NewModel(sys *proc.System) *Model {
	return &Model{Sys: sys, templates: map[string]*Template{}, arrays: map[string]*tnode{}}
}

// DeclareTemplate creates a template. The HPF draft requires the
// shape to be a specification expression; deferred (allocatable)
// shapes are rejected — see AllocatableTemplate.
func (m *Model) DeclareTemplate(name string, dom index.Domain) (*Template, error) {
	if _, dup := m.templates[name]; dup {
		return nil, fmt.Errorf("template: template %s already declared", name)
	}
	if dom.Rank() == 0 || dom.Empty() {
		return nil, fmt.Errorf("template: template %s requires a non-empty index domain", name)
	}
	m.nextTag++
	t := &Template{Name: name, Dom: dom, Tag: m.nextTag}
	m.templates[name] = t
	return t, nil
}

// AllocatableTemplate always fails: "templates cannot be defined as
// being ALLOCATABLE" (§8.2 problem 1). It exists so the limitation is
// executable and testable.
func (m *Model) AllocatableTemplate(name string, rank int) error {
	return fmt.Errorf("template: template %s cannot be ALLOCATABLE: the shape of a template is fixed at entry to the program unit (HPF draft restriction, paper §8.2)", name)
}

// PassTemplate always fails: templates cannot be passed across
// procedure boundaries (§8.2 problem 2).
func (m *Model) PassTemplate(name, procedure string) error {
	return fmt.Errorf("template: template %s cannot be passed to procedure %s: templates are not first-class objects (HPF draft restriction, paper §8.2)", name, procedure)
}

// HasTemplate reports whether a template of the given name exists.
func (m *Model) HasTemplate(name string) bool {
	_, ok := m.templates[name]
	return ok
}

// TemplateDomain returns the index domain of a declared template.
func (m *Model) TemplateDomain(name string) (index.Domain, error) {
	t, ok := m.templates[name]
	if !ok {
		return index.Domain{}, fmt.Errorf("template: unknown template %s", name)
	}
	return t.Dom, nil
}

// DeclareArray declares a data array in the template model.
func (m *Model) DeclareArray(name string, dom index.Domain) error {
	if _, dup := m.arrays[name]; dup {
		return fmt.Errorf("template: array %s already declared", name)
	}
	m.arrays[name] = &tnode{name: name, dom: dom}
	return nil
}

// DistributeTemplate distributes a template onto a processor target.
func (m *Model) DistributeTemplate(name string, formats []dist.Format, target proc.Target) error {
	t, ok := m.templates[name]
	if !ok {
		return fmt.Errorf("template: unknown template %s", name)
	}
	d, err := dist.New(t.Dom, formats, target)
	if err != nil {
		return err
	}
	t.d = d
	m.composed = nil
	return nil
}

// DistributeArray distributes an array directly (permitted in HPF as
// well).
func (m *Model) DistributeArray(name string, formats []dist.Format, target proc.Target) error {
	n, ok := m.arrays[name]
	if !ok {
		return fmt.Errorf("template: unknown array %s", name)
	}
	if n.toTemplate != "" || n.toArray != "" {
		return fmt.Errorf("template: array %s is aligned and cannot be distributed directly", name)
	}
	d, err := dist.New(n.dom, formats, target)
	if err != nil {
		return err
	}
	n.d = d
	m.composed = nil
	return nil
}

func (m *Model) boundsEnv() expr.Env {
	return expr.Env{Bounds: func(array string, dim int) (index.Triplet, error) {
		if n, ok := m.arrays[array]; ok {
			if dim < 1 || dim > n.dom.Rank() {
				return index.Triplet{}, fmt.Errorf("template: dimension %d out of range for %s", dim, array)
			}
			return n.dom.Dims[dim-1], nil
		}
		if t, ok := m.templates[array]; ok {
			if dim < 1 || dim > t.Dom.Rank() {
				return index.Triplet{}, fmt.Errorf("template: dimension %d out of range for %s", dim, array)
			}
			return t.Dom.Dims[dim-1], nil
		}
		return index.Triplet{}, fmt.Errorf("template: unknown object %s", array)
	}}
}

// AlignWithTemplate aligns an array with a template.
func (m *Model) AlignWithTemplate(s align.Spec) error {
	n, ok := m.arrays[s.Alignee]
	if !ok {
		return fmt.Errorf("template: unknown alignee %s", s.Alignee)
	}
	t, ok := m.templates[s.Base]
	if !ok {
		return fmt.Errorf("template: unknown template %s", s.Base)
	}
	if n.d != nil {
		return fmt.Errorf("template: array %s already has a direct distribution", s.Alignee)
	}
	alpha, err := align.Normalize(s, n.dom, t.Dom, m.boundsEnv())
	if err != nil {
		return err
	}
	n.toTemplate = s.Base
	n.toArray = ""
	n.alpha = alpha
	m.composed = nil
	return nil
}

// AlignWithArray aligns an array with another array (chains are
// permitted in the HPF model; cycles are rejected at resolution
// time).
func (m *Model) AlignWithArray(s align.Spec) error {
	n, ok := m.arrays[s.Alignee]
	if !ok {
		return fmt.Errorf("template: unknown alignee %s", s.Alignee)
	}
	b, ok := m.arrays[s.Base]
	if !ok {
		return fmt.Errorf("template: unknown base array %s", s.Base)
	}
	if n.d != nil {
		return fmt.Errorf("template: array %s already has a direct distribution", s.Alignee)
	}
	alpha, err := align.Normalize(s, n.dom, b.dom, m.boundsEnv())
	if err != nil {
		return err
	}
	n.toArray = s.Base
	n.toTemplate = ""
	n.alpha = alpha
	m.composed = nil
	return nil
}

// ChainDepth reports the alignment chain length from an array to its
// ultimate distribution (template or direct), demonstrating that the
// HPF model permits trees of height > 1.
func (m *Model) ChainDepth(name string) (int, error) {
	depth := 0
	seen := map[string]bool{}
	cur := name
	for {
		n, ok := m.arrays[cur]
		if !ok {
			return 0, fmt.Errorf("template: unknown array %s", cur)
		}
		if seen[cur] {
			return 0, fmt.Errorf("template: alignment cycle through %s", cur)
		}
		seen[cur] = true
		switch {
		case n.toTemplate != "":
			return depth + 1, nil
		case n.toArray != "":
			depth++
			cur = n.toArray
		default:
			return depth, nil
		}
	}
}

// Owners resolves the owner set of an array element by composing the
// alignment chain down to the distributed template (or direct
// distribution).
func (m *Model) Owners(name string, i index.Tuple) ([]int, error) {
	n, ok := m.arrays[name]
	if !ok {
		return nil, fmt.Errorf("template: unknown array %s", name)
	}
	return m.owners(n, i, map[string]bool{})
}

func (m *Model) owners(n *tnode, i index.Tuple, seen map[string]bool) ([]int, error) {
	if seen[n.name] {
		return nil, fmt.Errorf("template: alignment cycle through %s", n.name)
	}
	seen[n.name] = true
	switch {
	case n.d != nil:
		return n.d.Owners(i)
	case n.toTemplate != "":
		t := m.templates[n.toTemplate]
		if t.d == nil {
			return nil, fmt.Errorf("template: template %s has no distribution", t.Name)
		}
		return unionThroughAlpha(n.alpha, i, t.d.Owners)
	case n.toArray != "":
		next := m.arrays[n.toArray]
		return unionThroughAlpha(n.alpha, i, func(j index.Tuple) ([]int, error) {
			return m.owners(next, j, seen)
		})
	default:
		return nil, fmt.Errorf("template: array %s has neither distribution nor alignment", n.name)
	}
}

func unionThroughAlpha(alpha *align.Function, i index.Tuple, down func(index.Tuple) ([]int, error)) ([]int, error) {
	img, err := alpha.Image(i)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	var out []int
	for _, j := range img {
		os, err := down(j)
		if err != nil {
			return nil, err
		}
		for _, p := range os {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	if len(out) == 0 {
		return nil, errors.New("template: empty owner set")
	}
	return out, nil
}

// Mapping adapts an array of the model to core's ElementMapping
// shape: a Domain plus Owners function.
type Mapping struct {
	M    *Model
	Name string
}

// Domain returns the array's index domain.
func (tm Mapping) Domain() index.Domain { return tm.M.arrays[tm.Name].dom }

// Owners resolves ownership through the model.
func (tm Mapping) Owners(i index.Tuple) ([]int, error) { return tm.M.Owners(tm.Name, i) }

// Describe names the mapping.
func (tm Mapping) Describe() string { return "HPF-template mapping of " + tm.Name }

// AppendOwnerTiles resolves the alignment chain into the equivalent
// composed core mapping (nested CONSTRUCTs over the distributed root)
// and delegates to the run-based tile decomposition, so template-model
// arrays ride the same bulk ownership path as the paper's model.
// Chains outside the affine subset decline with core.ErrNoBulk.
func (tm Mapping) AppendOwnerTiles(dst []core.Tile, region index.Domain) ([]core.Tile, error) {
	cm, err := tm.M.composedMapping(tm.Name, nil)
	if err != nil {
		return nil, err
	}
	return core.AppendBulkOwnerTiles(dst, cm, region)
}

// EstimateOwnerTiles bounds the bulk tile count through the composed
// chain without materializing tiles.
func (tm Mapping) EstimateOwnerTiles(region index.Domain) (int, bool) {
	cm, err := tm.M.composedMapping(tm.Name, nil)
	if err != nil {
		return 0, false
	}
	return core.EstimateBulkTiles(cm, region)
}

// composedMapping builds the core mapping equivalent of an array's
// alignment chain: its own distribution, or CONSTRUCT(α, ...) down to
// the distributed template or array at the chain's root. Results are
// memoized until the next model mutation, so repeated bulk-tile
// queries (one per tile per term in the runtime's analysis) do not
// re-walk the chain.
func (m *Model) composedMapping(name string, seen map[string]bool) (core.ElementMapping, error) {
	if cm, ok := m.composed[name]; ok {
		return cm, nil
	}
	cm, err := m.composeMapping(name, seen)
	if err != nil {
		return nil, err
	}
	if m.composed == nil {
		m.composed = map[string]core.ElementMapping{}
	}
	m.composed[name] = cm
	return cm, nil
}

func (m *Model) composeMapping(name string, seen map[string]bool) (core.ElementMapping, error) {
	if seen == nil {
		// Allocated only on memo misses; cached lookups never pay for
		// the cycle-detection set.
		seen = map[string]bool{}
	}
	n, ok := m.arrays[name]
	if !ok {
		return nil, fmt.Errorf("template: unknown array %s", name)
	}
	if seen[name] {
		return nil, fmt.Errorf("template: alignment cycle through %s", name)
	}
	seen[name] = true
	switch {
	case n.d != nil:
		return core.DistMapping{D: n.d}, nil
	case n.toTemplate != "":
		t := m.templates[n.toTemplate]
		if t.d == nil {
			return nil, fmt.Errorf("template: template %s has no distribution", t.Name)
		}
		return core.Construct(n.alpha, core.DistMapping{D: t.d}), nil
	case n.toArray != "":
		inner, err := m.composedMapping(n.toArray, seen)
		if err != nil {
			return nil, err
		}
		return core.Construct(n.alpha, inner), nil
	default:
		return nil, fmt.Errorf("template: array %s has neither distribution nor alignment", name)
	}
}
