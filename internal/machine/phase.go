package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Phase identifies one slice of a worker's wall time. The spmd engine
// splits each worker's execution into these phases (package obs gates
// the timers); the sequential simulator never charges them, so with
// timing disabled every Report.Phase is zero and reports stay
// comparable across engines.
type Phase int

// The worker phases, in encoding order.
const (
	// PhaseCompute is time spent in the arithmetic of compiled
	// schedules (stencil sweeps, irregular accumulate/store).
	PhaseCompute Phase = iota
	// PhaseGhostWait is time in the ghost exchange: gathering,
	// sending, and above all blocking on Recv for a neighbour's halo.
	PhaseGhostWait
	// PhaseBarrierWait is time parked on the epoch barrier waiting for
	// slower peers — the load-imbalance signal in wall-clock form.
	PhaseBarrierWait
	// PhaseReduce is time in global reductions (fold + combine tree).
	PhaseReduce
	// PhaseCheckpoint is time in checkpoint/restore collectives (shard
	// I/O, counter aggregation, the publish barrier).
	PhaseCheckpoint

	// NumPhases is the number of phases (and the per-processor width
	// the phase block adds to EncodeCounters).
	NumPhases int = iota
)

// phaseNames indexes Phase for display and metric labels.
var phaseNames = [NumPhases]string{"compute", "ghost_wait", "barrier_wait", "reduce", "checkpoint"}

// String returns the phase's snake_case name.
func (ph Phase) String() string {
	if ph < 0 || int(ph) >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(ph))
	}
	return phaseNames[ph]
}

// PhaseNames lists the phase names in encoding order.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	copy(out, phaseNames[:])
	return out
}

// AddPhaseNS charges ns nanoseconds of wall time in phase ph to
// processor p.
func (m *Machine) AddPhaseNS(p int, ph Phase, ns int64) {
	m.checkProc(p)
	if ns <= 0 {
		return
	}
	m.phaseNS[int(ph)*(m.NP+1)+p] += ns
}

// PhaseNS returns processor p's accumulated wall time in phase ph,
// in nanoseconds.
func (m *Machine) PhaseNS(p int, ph Phase) int64 {
	m.checkProc(p)
	return m.phaseNS[int(ph)*(m.NP+1)+p]
}

// PhaseSeconds is the job-wide wall time per phase, in seconds,
// summed over all workers. All-zero (the default) when phase timing
// is disabled, which keeps Report equality across engines and wires
// meaningful; Report.Logical strips it for comparisons that must
// ignore wall time.
type PhaseSeconds struct {
	Compute     float64
	GhostWait   float64
	BarrierWait float64
	Reduce      float64
	Checkpoint  float64
}

// phaseTotals sums the per-processor phase block into PhaseSeconds.
func (m *Machine) phaseTotals() PhaseSeconds {
	var t [NumPhases]float64
	for ph := 0; ph < NumPhases; ph++ {
		var sum int64
		for p := 1; p <= m.NP; p++ {
			sum += m.phaseNS[ph*(m.NP+1)+p]
		}
		t[ph] = float64(sum) / 1e9
	}
	return PhaseSeconds{
		Compute:     t[PhaseCompute],
		GhostWait:   t[PhaseGhostWait],
		BarrierWait: t[PhaseBarrierWait],
		Reduce:      t[PhaseReduce],
		Checkpoint:  t[PhaseCheckpoint],
	}
}

// Logical returns the report with its wall-clock phase block zeroed:
// the paper's deterministic counters only. Verifications that demand
// identical reports across runs, engines and wires compare Logical
// reports — wall time is real but never reproducible.
func (r Report) Logical() Report {
	r.Phase = PhaseSeconds{}
	return r
}

// Detail is the full per-worker view of a machine's counters: the
// load vector, the traffic matrix and the per-worker phase times
// behind the Report aggregates. It is not comparable (slices) and is
// meant for humans and metric scrapes, not equivalence checks.
type Detail struct {
	Report Report
	// Load is the per-processor compute load, index 1..NP.
	Load []int64
	// SendElems/RecvElems are the per-processor traffic vectors,
	// index 1..NP.
	SendElems []int64
	RecvElems []int64
	// Traffic is the nonzero (src,dst) aggregate matrix, sorted.
	Traffic []TrafficEntry
	// WireFrames is the physical frame count after schedule-level
	// coalescing (this machine's share; see Machine.WireFrames).
	WireFrames int64
	// PhaseNS[ph] is the per-processor wall time of phase ph in
	// nanoseconds, index 1..NP (nil entries never charged).
	PhaseNS [NumPhases][]int64
}

// Detail snapshots the machine's full per-worker state.
func (m *Machine) Detail() Detail {
	d := Detail{
		Report:     m.Stats(),
		Load:       m.PerProcessorLoad(),
		SendElems:  append([]int64(nil), m.sendElems...),
		RecvElems:  append([]int64(nil), m.recvElems...),
		Traffic:    m.TrafficMatrix(),
		WireFrames: m.wireFrames,
	}
	for ph := 0; ph < NumPhases; ph++ {
		vec := make([]int64, m.NP+1)
		copy(vec, m.phaseNS[ph*(m.NP+1):(ph+1)*(m.NP+1)])
		d.PhaseNS[ph] = vec
	}
	return d
}

// ComputeWeights returns the per-worker compute weight vector indexed
// by rank-1: the compute-phase wall time when the phase timers were
// on (the truest imbalance signal), the logical element load
// otherwise. source names the vector chosen ("compute_ns" or "load").
// This is the weight vector the skew/straggler analysis and the
// counter-driven load balancer consume.
func (d Detail) ComputeWeights() (weights []int64, source string) {
	weights = make([]int64, d.Report.NP)
	source = "compute_ns"
	any := false
	if vec := d.PhaseNS[PhaseCompute]; vec != nil {
		for p := 1; p <= d.Report.NP && p < len(vec); p++ {
			weights[p-1] = vec[p]
			any = any || vec[p] > 0
		}
	}
	if !any {
		source = "load"
		for p := 1; p <= d.Report.NP && p < len(d.Load); p++ {
			weights[p-1] = d.Load[p]
		}
	}
	return weights, source
}

// String renders the detail as a human-readable table: one row per
// worker (load, traffic, phase seconds) followed by the traffic
// matrix — what `hpfnode -verbose` prints in place of the terse
// verification line.
func (d Detail) String() string {
	var b strings.Builder
	r := d.Report
	fmt.Fprintf(&b, "%s\n", r.String())
	timed := false
	for ph := 0; ph < NumPhases; ph++ {
		for _, ns := range d.PhaseNS[ph] {
			if ns > 0 {
				timed = true
			}
		}
	}
	fmt.Fprintf(&b, "%-6s %12s %12s %12s", "worker", "load", "send-elems", "recv-elems")
	if timed {
		for ph := 0; ph < NumPhases; ph++ {
			fmt.Fprintf(&b, " %12s", Phase(ph).String())
		}
	}
	b.WriteByte('\n')
	for p := 1; p <= r.NP; p++ {
		fmt.Fprintf(&b, "%-6d %12d %12d %12d", p, at(d.Load, p), at(d.SendElems, p), at(d.RecvElems, p))
		if timed {
			for ph := 0; ph < NumPhases; ph++ {
				fmt.Fprintf(&b, " %11.3fms", float64(at(d.PhaseNS[ph], p))/1e6)
			}
		}
		b.WriteByte('\n')
	}
	if timed {
		ps := r.Phase
		fmt.Fprintf(&b, "phases: compute %.3fs ghost-wait %.3fs barrier-wait %.3fs reduce %.3fs checkpoint %.3fs\n",
			ps.Compute, ps.GhostWait, ps.BarrierWait, ps.Reduce, ps.Checkpoint)
	}
	if len(d.Traffic) > 0 {
		fmt.Fprintf(&b, "traffic (src->dst): ")
		tm := append([]TrafficEntry(nil), d.Traffic...)
		sort.Slice(tm, func(i, j int) bool {
			if tm[i].Src != tm[j].Src {
				return tm[i].Src < tm[j].Src
			}
			return tm[i].Dst < tm[j].Dst
		})
		for i, e := range tm {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%d->%d:%dm/%de", e.Src, e.Dst, e.Messages, e.Elements)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// at indexes a 1-based per-processor vector defensively.
func at(vec []int64, p int) int64 {
	if p < 0 || p >= len(vec) {
		return 0
	}
	return vec[p]
}
