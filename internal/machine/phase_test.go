package machine

import (
	"reflect"
	"strings"
	"testing"
)

func TestPhaseAccessors(t *testing.T) {
	m, _ := New(4, DefaultCost())
	m.AddPhaseNS(2, PhaseGhostWait, 1500)
	m.AddPhaseNS(2, PhaseGhostWait, 500)
	m.AddPhaseNS(3, PhaseCompute, 1000)
	m.AddPhaseNS(3, PhaseCompute, -50) // non-positive charges are dropped
	if got := m.PhaseNS(2, PhaseGhostWait); got != 2000 {
		t.Errorf("PhaseNS(2, ghost_wait) = %d, want 2000", got)
	}
	if got := m.PhaseNS(3, PhaseCompute); got != 1000 {
		t.Errorf("PhaseNS(3, compute) = %d, want 1000", got)
	}
	if got := m.PhaseNS(1, PhaseReduce); got != 0 {
		t.Errorf("uncharged phase reads %d, want 0", got)
	}
	ps := m.Stats().Phase
	if ps.GhostWait != 2e-6 || ps.Compute != 1e-6 {
		t.Errorf("phase totals %+v, want ghost 2µs compute 1µs", ps)
	}
}

func TestPhaseNames(t *testing.T) {
	names := PhaseNames()
	if len(names) != NumPhases {
		t.Fatalf("PhaseNames has %d entries, want %d", len(names), NumPhases)
	}
	seen := map[string]bool{}
	for ph := 0; ph < NumPhases; ph++ {
		s := Phase(ph).String()
		if s != names[ph] || s == "" || seen[s] {
			t.Errorf("phase %d name %q invalid or duplicated", ph, s)
		}
		seen[s] = true
	}
	if s := Phase(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range phase renders %q", s)
	}
}

func TestLogicalStripsPhase(t *testing.T) {
	m, _ := New(2, DefaultCost())
	m.Send(1, 2, 10)
	m.AddLoad(1, 5)
	logical := m.Stats()
	m.AddPhaseNS(1, PhaseCompute, 12345)
	timed := m.Stats()
	if timed == logical {
		t.Fatal("phase charge did not reach the report")
	}
	if timed.Logical() != logical.Logical() {
		t.Fatalf("Logical() did not strip wall time:\n timed   %+v\n logical %+v", timed.Logical(), logical.Logical())
	}
}

// TestPhaseEncodeMergeRoundtrip checks that phase nanoseconds and
// wire frames ride the counter vector: two processes' shares merge to
// job-wide per-worker phase times.
func TestPhaseEncodeMergeRoundtrip(t *testing.T) {
	const np = 3
	a, _ := New(np, DefaultCost())
	b, _ := New(np, DefaultCost())
	a.AddPhaseNS(1, PhaseCompute, 100)
	a.AddPhaseNS(2, PhaseBarrierWait, 200)
	a.AddWireFrames(7)
	b.AddPhaseNS(1, PhaseCompute, 50)
	b.AddPhaseNS(3, PhaseCheckpoint, 900)
	b.AddWireFrames(2)
	merged, _ := New(np, DefaultCost())
	for _, part := range [][]float64{a.EncodeCounters(), b.EncodeCounters()} {
		if err := merged.MergeCounters(part); err != nil {
			t.Fatal(err)
		}
	}
	if got := merged.PhaseNS(1, PhaseCompute); got != 150 {
		t.Errorf("merged compute on worker 1 = %d, want 150", got)
	}
	if got := merged.PhaseNS(2, PhaseBarrierWait); got != 200 {
		t.Errorf("merged barrier-wait on worker 2 = %d, want 200", got)
	}
	if got := merged.PhaseNS(3, PhaseCheckpoint); got != 900 {
		t.Errorf("merged checkpoint on worker 3 = %d, want 900", got)
	}
	if got := merged.WireFrames(); got != 9 {
		t.Errorf("merged wire frames = %d, want 9", got)
	}
}

// TestCounterEncodeDrift is the drift gate for EncodeCounters and
// MergeCounters: it populates every counter field of Machine with
// distinct nonzero values, roundtrips the whole state through
// encode+merge, and demands deep equality. A counter field added to
// Machine without an encoding makes this test fail — first in the
// exhaustive field switch, then in the DeepEqual.
func TestCounterEncodeDrift(t *testing.T) {
	const np = 3
	src, _ := New(np, DefaultCost())
	seed := int64(3)
	next := func() int64 { seed += 7; return seed }
	typ := reflect.TypeOf(Machine{})
	for i := 0; i < typ.NumField(); i++ {
		switch name := typ.Field(i).Name; name {
		case "NP", "Cost":
			// Shape and model, not counters.
		case "msgs":
			src.msgs[pair{1, 2}] = int(next())
			src.msgs[pair{3, 1}] = int(next())
		case "elems":
			src.elems[pair{1, 2}] = int(next())
			src.elems[pair{3, 1}] = int(next())
		case "localRefs":
			src.localRefs = next()
		case "remoteRefs":
			src.remoteRefs = next()
		case "wireFrames":
			src.wireFrames = next()
		case "load":
			for p := 1; p <= np; p++ {
				src.load[p] = next()
			}
		case "sendElems":
			for p := 1; p <= np; p++ {
				src.sendElems[p] = next()
			}
		case "recvElems":
			for p := 1; p <= np; p++ {
				src.recvElems[p] = next()
			}
		case "sendMsgs":
			for p := 1; p <= np; p++ {
				src.sendMsgs[p] = next()
			}
		case "recvMsgs":
			for p := 1; p <= np; p++ {
				src.recvMsgs[p] = next()
			}
		case "phaseNS":
			for ph := 0; ph < NumPhases; ph++ {
				for p := 1; p <= np; p++ {
					src.phaseNS[ph*(np+1)+p] = next()
				}
			}
		default:
			t.Fatalf("machine.Machine gained counter field %q: teach EncodeCounters, MergeCounters and this test about it", name)
		}
	}
	dst, _ := New(np, DefaultCost())
	if err := dst.MergeCounters(src.EncodeCounters()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src, dst) {
		t.Fatalf("counter state does not survive encode+merge:\n src %+v\n dst %+v", src, dst)
	}
}

func TestDetailString(t *testing.T) {
	m, _ := New(2, DefaultCost())
	m.Send(1, 2, 10)
	m.AddLoad(1, 5)
	m.AddLoad(2, 6)
	m.AddWireFrames(1)

	// Untimed: no phase columns.
	plain := m.Detail().String()
	if strings.Contains(plain, "ghost_wait") {
		t.Errorf("untimed detail shows phase columns:\n%s", plain)
	}
	if !strings.Contains(plain, "1->2:1m/10e") {
		t.Errorf("detail misses the traffic matrix:\n%s", plain)
	}

	m.AddPhaseNS(1, PhaseGhostWait, 2_000_000)
	d := m.Detail()
	if d.WireFrames != 1 {
		t.Errorf("Detail.WireFrames = %d, want 1", d.WireFrames)
	}
	timed := d.String()
	for _, want := range []string{"worker", "ghost_wait", "phases:", "1->2:1m/10e"} {
		if !strings.Contains(timed, want) {
			t.Errorf("timed detail missing %q:\n%s", want, timed)
		}
	}
}
