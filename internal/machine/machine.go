// Package machine simulates a distributed-memory multiprocessor at
// the level the paper's claims live at: which processor owns which
// element, how much data crosses processor boundaries, and how evenly
// computational load is spread. Messages follow the classic α–β cost
// model (per-message latency plus per-element bandwidth cost); the
// paper's motivating observation — "an operation on two or more data
// objects is likely to be carried out much faster if they all reside
// in the same processor" — is what the counters quantify.
//
// The simulator substitutes for the iPSC/Delta-class hardware of the
// paper's era: absolute times are synthetic, but winners, factors and
// crossovers depend only on the ownership maps and the cost model's
// relative weights, which is exactly what the experiments compare.
package machine

import (
	"fmt"
	"sort"
	"strings"
)

// CostModel weights the synthetic execution-time estimate.
type CostModel struct {
	// Latency is the per-message startup cost (the α of the α–β
	// model), in arbitrary time units.
	Latency float64
	// PerElement is the per-element transfer cost (β).
	PerElement float64
	// PerFlop is the per-unit compute cost.
	PerFlop float64
}

// DefaultCost mirrors early-90s message-passing machines, where a
// message startup cost on the order of a thousand flops made
// locality dominant (latency/flop ≈ 1000, bandwidth cost ≈ 10 flops
// per element).
func DefaultCost() CostModel {
	return CostModel{Latency: 1000, PerElement: 10, PerFlop: 1}
}

type pair struct{ src, dst int }

// Machine is a simulated distributed-memory machine with NP
// processors, numbered 1..NP (abstract processor numbers).
type Machine struct {
	NP   int
	Cost CostModel

	msgs  map[pair]int
	elems map[pair]int

	localRefs  int64
	remoteRefs int64
	wireFrames int64
	load       []int64
	sendElems  []int64
	recvElems  []int64
	sendMsgs   []int64
	recvMsgs   []int64
	// phaseNS is the per-processor wall time per worker phase in
	// nanoseconds, indexed phase*(NP+1)+p (see phase.go). All zero
	// unless phase timing is enabled (package obs), so the logical
	// counters stay deterministic by default.
	phaseNS []int64
}

// New creates a machine with np processors and the given cost model.
func New(np int, cost CostModel) (*Machine, error) {
	if np < 1 {
		return nil, fmt.Errorf("machine: processor count must be positive, got %d", np)
	}
	m := &Machine{NP: np, Cost: cost}
	m.Reset()
	return m, nil
}

// Reset clears all counters.
func (m *Machine) Reset() {
	m.msgs = map[pair]int{}
	m.elems = map[pair]int{}
	m.localRefs = 0
	m.remoteRefs = 0
	m.wireFrames = 0
	m.load = make([]int64, m.NP+1)
	m.sendElems = make([]int64, m.NP+1)
	m.recvElems = make([]int64, m.NP+1)
	m.sendMsgs = make([]int64, m.NP+1)
	m.recvMsgs = make([]int64, m.NP+1)
	m.phaseNS = make([]int64, NumPhases*(m.NP+1))
}

func (m *Machine) checkProc(p int) {
	if p < 1 || p > m.NP {
		panic(fmt.Sprintf("machine: processor %d out of range 1..%d", p, m.NP))
	}
}

// Send records one aggregated message of n elements from src to dst.
// Self-sends are ignored (local copies are free in this model).
func (m *Machine) Send(src, dst, n int) {
	m.checkProc(src)
	m.checkProc(dst)
	if src == dst || n <= 0 {
		return
	}
	k := pair{src, dst}
	m.msgs[k]++
	m.elems[k] += n
	m.sendMsgs[src]++
	m.recvMsgs[dst]++
	m.sendElems[src] += int64(n)
	m.recvElems[dst] += int64(n)
}

// AddWireFrames counts n physical frames actually handed to the
// transport. This is bookkeeping beside the cost model, not part of
// it: Report.Messages stays the paper's logical per-statement message
// count (identical across engines and wires), while WireFrames shows
// what schedule-level coalescing saved — an epoch that replays a
// schedule k times still ships each (sender,receiver) pair's ghost
// region once when the statement does not overwrite its own inputs.
func (m *Machine) AddWireFrames(n int) { m.wireFrames += int64(n) }

// WireFrames returns the physical frame count (this process's share
// on a multi-process job; job-wide totals travel with EncodeCounters).
func (m *Machine) WireFrames() int64 { return m.wireFrames }

// RecordLocal counts n element references satisfied locally.
func (m *Machine) RecordLocal(n int) { m.localRefs += int64(n) }

// RecordRemote counts n element references requiring remote data
// (message accounting is done separately via Send, typically
// aggregated per statement).
func (m *Machine) RecordRemote(n int) { m.remoteRefs += int64(n) }

// AddLoad adds n compute units to processor p.
func (m *Machine) AddLoad(p int, n int) {
	m.checkProc(p)
	m.load[p] += int64(n)
}

// Report is a snapshot of the machine's counters and derived metrics.
type Report struct {
	NP             int
	Messages       int64
	ElementsMoved  int64
	LocalRefs      int64
	RemoteRefs     int64
	TotalLoad      int64
	MaxLoad        int64
	LoadImbalance  float64 // MaxLoad / (TotalLoad/NP); 1.0 is perfect
	CommTime       float64 // max over processors of α·msgs + β·elems (send+recv)
	ComputeTime    float64 // MaxLoad · PerFlop
	EstimatedTime  float64 // ComputeTime + CommTime
	RemoteFraction float64 // RemoteRefs / (LocalRefs+RemoteRefs)
	// Phase is the measured job-wide wall time per worker phase
	// (all-zero unless phase timing is enabled; see Logical).
	Phase PhaseSeconds
}

// Stats derives the current report.
func (m *Machine) Stats() Report {
	r := Report{NP: m.NP, LocalRefs: m.localRefs, RemoteRefs: m.remoteRefs}
	for _, c := range m.msgs {
		r.Messages += int64(c)
	}
	for _, c := range m.elems {
		r.ElementsMoved += int64(c)
	}
	for p := 1; p <= m.NP; p++ {
		r.TotalLoad += m.load[p]
		if m.load[p] > r.MaxLoad {
			r.MaxLoad = m.load[p]
		}
		ct := m.Cost.Latency*float64(m.sendMsgs[p]+m.recvMsgs[p]) +
			m.Cost.PerElement*float64(m.sendElems[p]+m.recvElems[p])
		if ct > r.CommTime {
			r.CommTime = ct
		}
	}
	if r.TotalLoad > 0 {
		avg := float64(r.TotalLoad) / float64(m.NP)
		r.LoadImbalance = float64(r.MaxLoad) / avg
	}
	r.ComputeTime = float64(r.MaxLoad) * m.Cost.PerFlop
	r.EstimatedTime = r.ComputeTime + r.CommTime
	if tot := r.LocalRefs + r.RemoteRefs; tot > 0 {
		r.RemoteFraction = float64(r.RemoteRefs) / float64(tot)
	}
	r.Phase = m.phaseTotals()
	return r
}

// EncodeCounters flattens the machine's raw counters into a float64
// vector (counts stay far below 2^53, so the encoding is exact) for
// shipment between the processes of a multi-process spmd job:
// [localRefs, remoteRefs, wireFrames, load(1..NP), sendElems(1..NP),
// recvElems(1..NP), sendMsgs(1..NP), recvMsgs(1..NP),
// phaseNS(phase-major, NumPhases×NP), pairCount,
// (src, dst, msgs, elems)...]. MergeCounters is its inverse-and-add.
// Phase nanoseconds ride the same vector so a multi-process job's
// phase breakdown is job-wide, survives checkpoint/restore, and a
// counter added here without a MergeCounters counterpart is caught by
// the roundtrip drift test.
func (m *Machine) EncodeCounters() []float64 {
	out := make([]float64, 0, 3+(5+NumPhases)*m.NP+1+4*len(m.msgs))
	out = append(out, float64(m.localRefs), float64(m.remoteRefs), float64(m.wireFrames))
	for _, vec := range [][]int64{m.load, m.sendElems, m.recvElems, m.sendMsgs, m.recvMsgs} {
		for p := 1; p <= m.NP; p++ {
			out = append(out, float64(vec[p]))
		}
	}
	for ph := 0; ph < NumPhases; ph++ {
		for p := 1; p <= m.NP; p++ {
			out = append(out, float64(m.phaseNS[ph*(m.NP+1)+p]))
		}
	}
	tm := m.TrafficMatrix()
	out = append(out, float64(len(tm)))
	for _, e := range tm {
		out = append(out, float64(e.Src), float64(e.Dst), float64(e.Messages), float64(e.Elements))
	}
	return out
}

// MergeCounters adds a counter vector produced by EncodeCounters on a
// machine of the same shape — the per-process shares of one job sum
// to the job-wide counters, because every event (send, load, local or
// remote reference) is charged by exactly one process.
func (m *Machine) MergeCounters(enc []float64) error {
	head := 3 + (5+NumPhases)*m.NP + 1
	if len(enc) < head {
		return fmt.Errorf("machine: counter vector has %d entries, want at least %d", len(enc), head)
	}
	npairs := int(enc[head-1])
	if len(enc) != head+4*npairs {
		return fmt.Errorf("machine: counter vector has %d entries, want %d for %d pairs", len(enc), head+4*npairs, npairs)
	}
	m.localRefs += int64(enc[0])
	m.remoteRefs += int64(enc[1])
	m.wireFrames += int64(enc[2])
	i := 3
	for _, vec := range [][]int64{m.load, m.sendElems, m.recvElems, m.sendMsgs, m.recvMsgs} {
		for p := 1; p <= m.NP; p++ {
			vec[p] += int64(enc[i])
			i++
		}
	}
	for ph := 0; ph < NumPhases; ph++ {
		for p := 1; p <= m.NP; p++ {
			m.phaseNS[ph*(m.NP+1)+p] += int64(enc[i])
			i++
		}
	}
	i++ // pair count
	for k := 0; k < npairs; k++ {
		src, dst := int(enc[i]), int(enc[i+1])
		if src < 1 || src > m.NP || dst < 1 || dst > m.NP {
			return fmt.Errorf("machine: counter pair (%d,%d) out of range 1..%d", src, dst, m.NP)
		}
		key := pair{src, dst}
		m.msgs[key] += int(enc[i+2])
		m.elems[key] += int(enc[i+3])
		i += 4
	}
	return nil
}

// PerProcessorLoad returns a copy of the per-processor load vector
// (index 1..NP).
func (m *Machine) PerProcessorLoad() []int64 {
	out := make([]int64, m.NP+1)
	copy(out, m.load)
	return out
}

// TrafficMatrix lists nonzero (src,dst) traffic entries, sorted.
func (m *Machine) TrafficMatrix() []TrafficEntry {
	out := make([]TrafficEntry, 0, len(m.elems))
	for k, e := range m.elems {
		out = append(out, TrafficEntry{Src: k.src, Dst: k.dst, Messages: m.msgs[k], Elements: e})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// TrafficEntry is one src→dst aggregate.
type TrafficEntry struct {
	Src, Dst           int
	Messages, Elements int
}

// String summarizes the report on one line.
func (r Report) String() string {
	return fmt.Sprintf("np=%d msgs=%d elems=%d local=%d remote=%d (%.1f%%) maxload=%d imb=%.3f T=%.0f",
		r.NP, r.Messages, r.ElementsMoved, r.LocalRefs, r.RemoteRefs, 100*r.RemoteFraction, r.MaxLoad, r.LoadImbalance, r.EstimatedTime)
}

// Table renders several labelled reports as an aligned text table,
// used by the experiment harness.
func Table(rows []LabelledReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %10s %12s %12s %10s %8s %12s\n", "mapping", "messages", "elems-moved", "remote-refs", "remote%", "imbal", "est-time")
	for _, row := range rows {
		r := row.Report
		fmt.Fprintf(&b, "%-34s %10d %12d %12d %9.1f%% %8.3f %12.0f\n",
			row.Label, r.Messages, r.ElementsMoved, r.RemoteRefs, 100*r.RemoteFraction, r.LoadImbalance, r.EstimatedTime)
	}
	return b.String()
}

// LabelledReport pairs a mapping label with its report.
type LabelledReport struct {
	Label  string
	Report Report
}
