package machine

import (
	"strings"
	"testing"
)

func newMachine(t *testing.T, np int) *Machine {
	t.Helper()
	m, err := New(np, DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, DefaultCost()); err == nil {
		t.Fatal("zero processors must fail")
	}
}

func TestSendAggregation(t *testing.T) {
	m := newMachine(t, 4)
	m.Send(1, 2, 10)
	m.Send(1, 2, 5)
	m.Send(3, 4, 7)
	r := m.Stats()
	if r.Messages != 3 {
		t.Fatalf("Messages = %d", r.Messages)
	}
	if r.ElementsMoved != 22 {
		t.Fatalf("Elements = %d", r.ElementsMoved)
	}
	tm := m.TrafficMatrix()
	if len(tm) != 2 {
		t.Fatalf("traffic entries = %v", tm)
	}
	if tm[0].Src != 1 || tm[0].Dst != 2 || tm[0].Elements != 15 || tm[0].Messages != 2 {
		t.Fatalf("entry = %+v", tm[0])
	}
}

func TestSelfSendIgnored(t *testing.T) {
	m := newMachine(t, 4)
	m.Send(2, 2, 100)
	m.Send(1, 2, 0)
	m.Send(1, 2, -5)
	r := m.Stats()
	if r.Messages != 0 || r.ElementsMoved != 0 {
		t.Fatalf("self/empty sends must be free: %+v", r)
	}
}

func TestSendRangeChecks(t *testing.T) {
	m := newMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range processor must panic")
		}
	}()
	m.Send(1, 3, 1)
}

func TestLoadAndImbalance(t *testing.T) {
	m := newMachine(t, 4)
	m.AddLoad(1, 100)
	m.AddLoad(2, 100)
	m.AddLoad(3, 100)
	m.AddLoad(4, 100)
	r := m.Stats()
	if r.LoadImbalance != 1.0 {
		t.Fatalf("perfect balance: imbalance = %f", r.LoadImbalance)
	}
	m.AddLoad(1, 400)
	r = m.Stats()
	if r.MaxLoad != 500 || r.TotalLoad != 800 {
		t.Fatalf("loads: %+v", r)
	}
	if r.LoadImbalance != 2.5 {
		t.Fatalf("imbalance = %f, want 2.5", r.LoadImbalance)
	}
	loads := m.PerProcessorLoad()
	if loads[1] != 500 || loads[4] != 100 {
		t.Fatalf("per-proc loads = %v", loads)
	}
}

func TestRefCounters(t *testing.T) {
	m := newMachine(t, 2)
	m.RecordLocal(30)
	m.RecordRemote(10)
	r := m.Stats()
	if r.LocalRefs != 30 || r.RemoteRefs != 10 {
		t.Fatalf("refs: %+v", r)
	}
	if r.RemoteFraction != 0.25 {
		t.Fatalf("remote fraction = %f", r.RemoteFraction)
	}
}

func TestCostModelTime(t *testing.T) {
	cost := CostModel{Latency: 100, PerElement: 2, PerFlop: 1}
	m, _ := New(2, cost)
	m.AddLoad(1, 50)
	m.Send(1, 2, 10)
	r := m.Stats()
	// Comm time is per-processor α·msgs + β·elems: proc 1 sends one
	// message of 10 elems: 100 + 20 = 120; proc 2 receives the same.
	if r.CommTime != 120 {
		t.Fatalf("CommTime = %f", r.CommTime)
	}
	if r.ComputeTime != 50 {
		t.Fatalf("ComputeTime = %f", r.ComputeTime)
	}
	if r.EstimatedTime != 170 {
		t.Fatalf("EstimatedTime = %f", r.EstimatedTime)
	}
}

func TestReset(t *testing.T) {
	m := newMachine(t, 2)
	m.Send(1, 2, 5)
	m.AddLoad(1, 10)
	m.RecordRemote(1)
	m.Reset()
	r := m.Stats()
	if r.Messages != 0 || r.TotalLoad != 0 || r.RemoteRefs != 0 {
		t.Fatalf("reset failed: %+v", r)
	}
}

func TestReportString(t *testing.T) {
	m := newMachine(t, 2)
	m.Send(1, 2, 5)
	s := m.Stats().String()
	if !strings.Contains(s, "np=2") || !strings.Contains(s, "msgs=1") {
		t.Fatalf("String = %q", s)
	}
}

func TestTable(t *testing.T) {
	m := newMachine(t, 2)
	m.Send(1, 2, 5)
	out := Table([]LabelledReport{{Label: "block", Report: m.Stats()}})
	if !strings.Contains(out, "block") || !strings.Contains(out, "mapping") {
		t.Fatalf("Table = %q", out)
	}
}

// TestEncodeMergeCounters checks that per-process counter shares sum
// to the whole: a machine's activity split across two machines and
// merged back must reproduce the original report exactly.
func TestEncodeMergeCounters(t *testing.T) {
	const np = 4
	whole, _ := New(np, DefaultCost())
	a, _ := New(np, DefaultCost())
	b, _ := New(np, DefaultCost())
	charge := func(ms ...*Machine) {
		for _, m := range ms {
			m.Send(1, 3, 7)
			m.Send(1, 3, 7)
			m.Send(2, 4, 11)
			m.AddLoad(1, 5)
			m.RecordLocal(13)
		}
	}
	charge(whole, a)
	for _, m := range []*Machine{whole, b} {
		m.Send(4, 2, 3)
		m.AddLoad(3, 9)
		m.RecordRemote(6)
	}
	merged, _ := New(np, DefaultCost())
	for _, part := range [][]float64{a.EncodeCounters(), b.EncodeCounters()} {
		if err := merged.MergeCounters(part); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := merged.Stats(), whole.Stats(); got != want {
		t.Fatalf("merged report:\n got  %+v\n want %+v", got, want)
	}
	if err := merged.MergeCounters([]float64{1, 2, 3}); err == nil {
		t.Fatal("short counter vector must be rejected")
	}
}
