package inquiry

import (
	"strings"
	"testing"

	"hpfnt/internal/align"
	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

func setup(t *testing.T) (*core.Unit, proc.Target) {
	t.Helper()
	sys, err := proc.NewSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	return core.NewUnit("Q", sys), proc.Whole(arr)
}

func TestDescribeDirect(t *testing.T) {
	u, tg := setup(t)
	u.DeclareArray("A", index.Standard(1, 64, 1, 64))
	u.Distribute("A", []dist.Format{dist.Cyclic{K: 3}, dist.Collapsed{}}, tg)
	m, _ := u.MappingOf("A")
	info := Describe(m)
	if !info.Direct || info.Aligned || info.Inherited {
		t.Fatalf("info = %+v", info)
	}
	if info.Rank != 2 || info.NP != 8 {
		t.Fatalf("info = %+v", info)
	}
	if info.Dims[0].Format != dist.KindCyclic || info.Dims[0].CyclicK != 3 {
		t.Fatalf("dim 0 = %+v", info.Dims[0])
	}
	if info.Dims[1].Format != dist.KindCollapsed || info.Dims[1].Distributed {
		t.Fatalf("dim 1 = %+v", info.Dims[1])
	}
	if !strings.Contains(info.Render(), "CYCLIC(3)") {
		t.Fatalf("Render = %q", info.Render())
	}
}

func TestDescribeGeneralBlock(t *testing.T) {
	u, tg := setup(t)
	u.DeclareArray("C", index.Standard(1, 100))
	u.Distribute("C", []dist.Format{dist.GeneralBlock{Bounds: []int{10, 20, 40, 55, 70, 80, 90}}}, tg)
	m, _ := u.MappingOf("C")
	info := Describe(m)
	if info.Dims[0].Format != dist.KindGeneralBlock {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Dims[0].GeneralBounds) != 7 {
		t.Fatalf("bounds = %v", info.Dims[0].GeneralBounds)
	}
	if !strings.Contains(info.Render(), "GENERAL_BLOCK") {
		t.Fatalf("Render = %q", info.Render())
	}
}

func TestDescribeAligned(t *testing.T) {
	u, tg := setup(t)
	u.DeclareArray("B", index.Standard(1, 32))
	u.DeclareArray("A", index.Standard(1, 16))
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	u.Align(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "B", Subs: []align.Subscript{align.ExprSub(expr.Affine(2, "I", 0))},
	})
	m, _ := u.MappingOf("A")
	info := Describe(m)
	if !info.Aligned || info.Direct {
		t.Fatalf("info = %+v", info)
	}
	if info.NP != 8 {
		t.Fatalf("NP = %d", info.NP)
	}
	if info.Replicated {
		t.Fatal("affine alignment is not replicated")
	}
}

func TestDescribeReplicatedAlignment(t *testing.T) {
	u, tg := setup(t)
	u.DeclareArray("D", index.Standard(1, 16, 1, 4))
	u.DeclareArray("A", index.Standard(1, 16))
	u.Distribute("D", []dist.Format{dist.Block{}, dist.Collapsed{}}, tg)
	// ALIGN A(:) WITH D(:,*): replication (§5.1 example 1).
	u.Align(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.Colon()},
		Base: "D", Subs: []align.Subscript{align.TripletSub(index.Unit(1, 16)), align.StarSub()},
	})
	m, _ := u.MappingOf("A")
	info := Describe(m)
	if !info.Replicated {
		t.Fatal("replication not detected")
	}
}

func TestDescribeInherited(t *testing.T) {
	// §8.2: inquiry functions determine every aspect of a
	// distribution passed into a procedure, even inherited section
	// mappings not expressible as format lists.
	u, tg := setup(t)
	u.DeclareArray("A", index.Standard(1, 1000))
	u.Distribute("A", []dist.Format{dist.Cyclic{K: 3}}, tg)
	tr, _ := index.NewTriplet(2, 996, 2)
	fr, err := u.Call("SUB", []core.DummySpec{{Name: "X", Mode: core.DummyInherit}},
		[]core.Actual{core.SectionArg("A", tr)})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := fr.Callee.MappingOf("X")
	info := Describe(m)
	if !info.Inherited {
		t.Fatalf("info = %+v", info)
	}
	if info.NP != 8 {
		t.Fatalf("NP = %d", info.NP)
	}
	if !strings.Contains(info.Render(), "inherited") {
		t.Fatalf("Render = %q", info.Render())
	}
}

func TestOwnersOfSorted(t *testing.T) {
	u, tg := setup(t)
	u.DeclareArray("A", index.Standard(1, 8))
	u.Distribute("A", []dist.Format{dist.Block{}}, tg)
	m, _ := u.MappingOf("A")
	os, err := OwnersOf(m, index.Tuple{5})
	if err != nil || len(os) != 1 || os[0] != 5 {
		t.Fatalf("OwnersOf = %v, %v", os, err)
	}
}

func TestLocalExtentOf(t *testing.T) {
	u, tg := setup(t)
	u.DeclareArray("A", index.Standard(1, 64))
	u.Distribute("A", []dist.Format{dist.Block{}}, tg)
	m, _ := u.MappingOf("A")
	for p := 1; p <= 8; p++ {
		n, err := LocalExtentOf(m, p)
		if err != nil || n != 8 {
			t.Fatalf("LocalExtentOf(%d) = %d, %v", p, n, err)
		}
	}
	if n, _ := LocalExtentOf(m, 99); n != 0 {
		t.Fatalf("foreign processor extent = %d", n)
	}
}
