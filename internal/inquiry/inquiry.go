// Package inquiry implements distribution and alignment inquiry
// functions. The paper relies on these where HPF would have needed to
// pass templates across procedure boundaries (§8.1.2, §8.2: "Even in
// the case of inherited distributions which cannot be explicitly
// specified, inquiry functions can be used to determine every aspect
// of the distribution passed into the procedure"). In the pipeline it
// is a read-only consumer: it describes the element mappings package
// core produces, without affecting execution.
package inquiry

import (
	"fmt"
	"sort"
	"strings"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
)

// DimInfo summarizes one dimension of a format-based distribution.
type DimInfo struct {
	// Format is the distribution format kind of the dimension.
	Format dist.Kind
	// CyclicK is the segment length for CYCLIC formats.
	CyclicK int
	// GeneralBounds holds GENERAL_BLOCK bounds when applicable.
	GeneralBounds []int
	// Distributed reports whether the dimension is matched to a
	// target dimension.
	Distributed bool
}

// Info is the full inquiry result for an array mapping.
type Info struct {
	// Rank of the array.
	Rank int
	// Domain is the array's index domain.
	Domain index.Domain
	// Direct reports whether the mapping is a format-based
	// distribution of the array itself.
	Direct bool
	// Dims holds per-dimension format information when Direct.
	Dims []DimInfo
	// TargetName names the distribution target when Direct.
	TargetName string
	// NP is the number of processors holding the array.
	NP int
	// Replicated reports whether any element has several owners.
	Replicated bool
	// Aligned reports whether the mapping is a constructed
	// (alignment-derived) distribution.
	Aligned bool
	// Inherited reports whether the mapping was inherited through a
	// procedure boundary (possibly a section, and possibly not
	// expressible as a format list — the §8.1.2 case).
	Inherited bool
	// Description is the mapping's self-description.
	Description string
}

// Describe interrogates an element mapping.
func Describe(m core.ElementMapping) Info {
	info := Info{
		Rank:        m.Domain().Rank(),
		Domain:      m.Domain(),
		Description: m.Describe(),
	}
	switch v := m.(type) {
	case core.DistMapping:
		info.Direct = true
		info.NP = v.D.NP()
		info.TargetName = v.D.Target.String()
		for _, f := range v.D.Formats {
			di := DimInfo{Format: f.Kind(), Distributed: f.Kind() != dist.KindCollapsed}
			switch ff := f.(type) {
			case dist.Cyclic:
				di.CyclicK = ff.K
			case dist.GeneralBlock:
				di.GeneralBounds = append([]int(nil), ff.Bounds...)
			}
			info.Dims = append(info.Dims, di)
		}
	case *core.Constructed:
		info.Aligned = true
		base := Describe(v.BaseMap)
		info.NP = base.NP
		info.Replicated = v.Alpha.Replicates() || base.Replicated
	case *core.SectionMapping:
		info.Inherited = true
		inner := Describe(v.Actual)
		info.NP = inner.NP
		info.Replicated = inner.Replicated
	}
	return info
}

// OwnersOf is the element-level inquiry: the processor set holding
// one element. The mapping's allocation-free append path produces the
// caller's slice directly.
func OwnersOf(m core.ElementMapping, i index.Tuple) ([]int, error) {
	out, err := core.AppendOwners(m, nil, i)
	if err != nil {
		return nil, err
	}
	sort.Ints(out)
	return out, nil
}

// LocalExtentOf counts the elements of the mapping owned by processor
// p (the HPF-style "number of local elements" inquiry): a sum of
// owner-tile volumes for single-owner mappings, a per-element scan
// (allocation-free via AppendOwners) only when elements are
// replicated.
func LocalExtentOf(m core.ElementMapping, p int) (int, error) {
	if tiles, err := core.OwnerTiles(m, m.Domain()); err == nil {
		count := 0
		for _, tl := range tiles {
			if tl.Proc == p {
				count += tl.Region.Size()
			}
		}
		return count, nil
	}
	count := 0
	var buf []int
	var ferr error
	m.Domain().ForEach(func(t index.Tuple) bool {
		os, err := core.AppendOwners(m, buf[:0], t)
		if err != nil {
			ferr = err
			return false
		}
		buf = os
		for _, o := range os {
			if o == p {
				count++
				break
			}
		}
		return true
	})
	if ferr != nil {
		return 0, ferr
	}
	return count, nil
}

// Render formats the inquiry result as a short report.
func (i Info) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rank=%d domain=%s np=%d", i.Rank, i.Domain, i.NP)
	switch {
	case i.Direct:
		fmt.Fprintf(&b, " direct target=%s formats=", i.TargetName)
		for k, d := range i.Dims {
			if k > 0 {
				b.WriteString(",")
			}
			switch {
			case d.Format == dist.KindCyclic && d.CyclicK > 1:
				fmt.Fprintf(&b, "CYCLIC(%d)", d.CyclicK)
			case d.Format == dist.KindGeneralBlock:
				fmt.Fprintf(&b, "GENERAL_BLOCK%v", d.GeneralBounds)
			default:
				b.WriteString(d.Format.String())
			}
		}
	case i.Aligned:
		b.WriteString(" aligned")
	case i.Inherited:
		b.WriteString(" inherited")
	}
	if i.Replicated {
		b.WriteString(" replicated")
	}
	return b.String()
}
