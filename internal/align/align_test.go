package align

import (
	"strings"
	"testing"
	"testing/quick"

	"hpfnt/internal/expr"
	"hpfnt/internal/index"
)

func mustNormalize(t *testing.T, s Spec, alignee, base index.Domain) *Function {
	t.Helper()
	f, err := Normalize(s, alignee, base, expr.Env{})
	if err != nil {
		t.Fatalf("Normalize(%s): %v", s, err)
	}
	return f
}

func one(t *testing.T, f *Function, i ...int) index.Tuple {
	t.Helper()
	img, err := f.Image(index.Tuple(i))
	if err != nil {
		t.Fatalf("Image(%v): %v", i, err)
	}
	if len(img) != 1 {
		t.Fatalf("Image(%v) = %v, want singleton", i, img)
	}
	return img[0]
}

// TestPaperExample1 is §5.1 example 1:
//
//	REAL A(1:N), D(1:N,1:M)
//	!HPF$ ALIGN A(:) WITH D(:,*)
//
// which aligns a copy of A with every column of D:
// α(J) = {(J,k) | 1 <= k <= M}.
func TestPaperExample1(t *testing.T) {
	n, m := 6, 4
	a := index.Standard(1, n)
	d := index.Standard(1, n, 1, m)
	f := mustNormalize(t, Spec{
		Alignee: "A", Axes: []Axis{Colon()},
		Base: "D", Subs: []Subscript{TripletSub(index.Unit(1, n)), StarSub()},
	}, a, d)
	if !f.Replicates() {
		t.Fatal("expected replication")
	}
	if f.ImageSize() != m {
		t.Fatalf("ImageSize = %d, want %d", f.ImageSize(), m)
	}
	for j := 1; j <= n; j++ {
		img, err := f.Image(index.Tuple{j})
		if err != nil {
			t.Fatal(err)
		}
		if len(img) != m {
			t.Fatalf("len(Image(%d)) = %d", j, len(img))
		}
		seen := map[int]bool{}
		for _, tu := range img {
			if tu[0] != j {
				t.Fatalf("Image(%d) contains %v: first coordinate must be %d", j, tu, j)
			}
			seen[tu[1]] = true
		}
		for k := 1; k <= m; k++ {
			if !seen[k] {
				t.Fatalf("Image(%d) missing column %d", j, k)
			}
		}
	}
}

// TestPaperExample2 is §5.1 example 2:
//
//	REAL B(1:N,1:M), E(1:N)
//	!HPF$ ALIGN B(:,*) WITH E(:)
//
// a collapsing alignment: α(J1,J2) = {(J1)}.
func TestPaperExample2(t *testing.T) {
	n, m := 5, 3
	b := index.Standard(1, n, 1, m)
	e := index.Standard(1, n)
	f := mustNormalize(t, Spec{
		Alignee: "B", Axes: []Axis{Colon(), Star()},
		Base: "E", Subs: []Subscript{TripletSub(index.Unit(1, n))},
	}, b, e)
	if f.Replicates() {
		t.Fatal("collapse must not replicate")
	}
	collapsed := f.CollapsedDims()
	if len(collapsed) != 1 || collapsed[0] != 1 {
		t.Fatalf("CollapsedDims = %v", collapsed)
	}
	for j1 := 1; j1 <= n; j1++ {
		for j2 := 1; j2 <= m; j2++ {
			got := one(t, f, j1, j2)
			if got[0] != j1 {
				t.Fatalf("Image(%d,%d) = %v", j1, j2, got)
			}
		}
	}
}

// TestStaggeredGridAlignments checks the Thole example's alignment
// functions (§8.1.1): P(I,J) WITH T(2*I-1,2*J-1), U(I,J) WITH
// T(2*I,2*J-1), V(I,J) WITH T(2*I-1,2*J).
func TestStaggeredGridAlignments(t *testing.T) {
	n := 4
	tdom := index.Standard(0, 2*n, 0, 2*n)
	pdom := index.Standard(1, n, 1, n)
	udom := index.Standard(0, n, 1, n)

	p := mustNormalize(t, Spec{
		Alignee: "P", Axes: []Axis{DummyAxis("I"), DummyAxis("J")},
		Base: "T", Subs: []Subscript{
			ExprSub(expr.Affine(2, "I", -1)),
			ExprSub(expr.Affine(2, "J", -1)),
		},
	}, pdom, tdom)
	got := one(t, p, 2, 3)
	if got[0] != 3 || got[1] != 5 {
		t.Fatalf("P(2,3) -> %v, want (3,5)", got)
	}
	u := mustNormalize(t, Spec{
		Alignee: "U", Axes: []Axis{DummyAxis("I"), DummyAxis("J")},
		Base: "T", Subs: []Subscript{
			ExprSub(expr.Affine(2, "I", 0)),
			ExprSub(expr.Affine(2, "J", -1)),
		},
	}, udom, tdom)
	got = one(t, u, 0, 1)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("U(0,1) -> %v, want (0,1)", got)
	}
	// Disjointness: P and U images never coincide (odd vs even first
	// coordinate) — the paper's §8.1.1 point that all arrays align
	// with disjoint template elements.
	pi, _ := p.Image(index.Tuple{1, 1})
	ui, _ := u.Image(index.Tuple{1, 1})
	if pi[0].Equal(ui[0]) {
		t.Fatal("P and U images must be disjoint in the staggered grid")
	}
}

func TestColonToTripletNormalization(t *testing.T) {
	// ALIGN X(:) WITH A(2:996:2) — the §8.1.2 section alignment.
	x := index.Standard(1, 498)
	a := index.Standard(1, 1000)
	tr, _ := index.NewTriplet(2, 996, 2)
	f := mustNormalize(t, Spec{
		Alignee: "X", Axes: []Axis{Colon()},
		Base: "A", Subs: []Subscript{TripletSub(tr)},
	}, x, a)
	// Position J of X maps to (J-1)*2 + 2.
	for j := 1; j <= 498; j++ {
		got := one(t, f, j)
		if got[0] != (j-1)*2+2 {
			t.Fatalf("X(%d) -> %v", j, got)
		}
	}
}

func TestExtentCondition(t *testing.T) {
	// §5.1: U_i - L_i + 1 <= triplet positions. A 10-element alignee
	// cannot spread over a 5-position triplet.
	x := index.Standard(1, 10)
	a := index.Standard(1, 10)
	tr, _ := index.NewTriplet(1, 9, 2)
	_, err := Normalize(Spec{
		Alignee: "X", Axes: []Axis{Colon()},
		Base: "A", Subs: []Subscript{TripletSub(tr)},
	}, x, a, expr.Env{})
	if err == nil || !strings.Contains(err.Error(), "extent") {
		t.Fatalf("expected extent error, got %v", err)
	}
}

func TestSkewExcluded(t *testing.T) {
	// "Each J_i may occur in at most one y_j (this excludes the
	// possibility to specify skew alignments)."
	d2 := index.Standard(1, 4, 1, 4)
	_, err := Normalize(Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I"), DummyAxis("J")},
		Base: "B", Subs: []Subscript{
			ExprSub(expr.Dummy("I")),
			ExprSub(expr.Add(expr.Dummy("I"), expr.Const(1))),
		},
	}, d2, d2, expr.Env{})
	if err == nil || !strings.Contains(err.Error(), "skew") {
		t.Fatalf("expected skew error, got %v", err)
	}
}

func TestTwoDummiesInOneSubscript(t *testing.T) {
	d2 := index.Standard(1, 4, 1, 4)
	d1 := index.Standard(1, 4)
	_, err := Normalize(Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I"), DummyAxis("J")},
		Base: "B", Subs: []Subscript{ExprSub(expr.Add(expr.Dummy("I"), expr.Dummy("J")))},
	}, d2, d1, expr.Env{})
	if err == nil {
		t.Fatal("two dummies in one subscript must fail")
	}
}

func TestUndeclaredDummy(t *testing.T) {
	d1 := index.Standard(1, 4)
	_, err := Normalize(Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I")},
		Base: "B", Subs: []Subscript{ExprSub(expr.Dummy("K"))},
	}, d1, d1, expr.Env{})
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("expected undeclared dummy error, got %v", err)
	}
}

func TestDuplicateDummy(t *testing.T) {
	d2 := index.Standard(1, 4, 1, 4)
	_, err := Normalize(Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I"), DummyAxis("I")},
		Base: "B", Subs: []Subscript{ExprSub(expr.Dummy("I")), ExprSub(expr.Const(1))},
	}, d2, d2, expr.Env{})
	if err == nil {
		t.Fatal("duplicate dummy must fail")
	}
}

func TestColonTripletCountMismatch(t *testing.T) {
	d1 := index.Standard(1, 4)
	d2 := index.Standard(1, 4, 1, 4)
	// One ':' axis but no triplet subscripts.
	_, err := Normalize(Spec{
		Alignee: "A", Axes: []Axis{Colon()},
		Base: "B", Subs: []Subscript{ExprSub(expr.Const(1)), ExprSub(expr.Const(2))},
	}, d1, d2, expr.Env{})
	if err == nil {
		t.Fatal("colon without matching triplet must fail")
	}
}

func TestRankMismatches(t *testing.T) {
	d1 := index.Standard(1, 4)
	d2 := index.Standard(1, 4, 1, 4)
	if _, err := Normalize(Spec{Alignee: "A", Axes: []Axis{Colon()}, Base: "B",
		Subs: []Subscript{TripletSub(index.Unit(1, 4))}}, d2, d1, expr.Env{}); err == nil {
		t.Fatal("axis count must match alignee rank")
	}
	if _, err := Normalize(Spec{Alignee: "A", Axes: []Axis{Colon(), Star()}, Base: "B",
		Subs: []Subscript{TripletSub(index.Unit(1, 4))}}, d2, d2, expr.Env{}); err == nil {
		t.Fatal("subscript count must match base rank")
	}
}

func TestClampTruncation(t *testing.T) {
	// §5.1's ŷ = MIN(U_j, y) truncation: J+1 at the upper edge clamps.
	d1 := index.Standard(1, 5)
	f := mustNormalize(t, Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I")},
		Base: "B", Subs: []Subscript{ExprSub(expr.Affine(1, "I", 1))},
	}, d1, d1)
	got := one(t, f, 5)
	if got[0] != 5 {
		t.Fatalf("clamped image = %v, want 5", got)
	}
	got = one(t, f, 3)
	if got[0] != 4 {
		t.Fatalf("image = %v, want 4", got)
	}
	// Lower clamp.
	f2 := mustNormalize(t, Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I")},
		Base: "B", Subs: []Subscript{ExprSub(expr.Affine(1, "I", -3))},
	}, d1, d1)
	got = one(t, f2, 1)
	if got[0] != 1 {
		t.Fatalf("lower clamp image = %v, want 1", got)
	}
}

func TestMaxMinIntrinsics(t *testing.T) {
	// MAX(I-1,1): the truncation-at-the-edge alignment the paper
	// admits MAX/MIN for.
	d1 := index.Standard(1, 6)
	f := mustNormalize(t, Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I")},
		Base: "B", Subs: []Subscript{ExprSub(expr.Max(expr.Affine(1, "I", -1), expr.Const(1)))},
	}, d1, d1)
	if got := one(t, f, 1); got[0] != 1 {
		t.Fatalf("MAX(0,1) = %v", got)
	}
	if got := one(t, f, 4); got[0] != 3 {
		t.Fatalf("MAX(3,1) = %v", got)
	}
}

func TestBoundIntrinsicsInAlignment(t *testing.T) {
	d1 := index.Standard(1, 6)
	base := index.Standard(1, 10)
	env := expr.Env{Bounds: func(array string, dim int) (index.Triplet, error) {
		return index.Unit(1, 10), nil
	}}
	f, err := Normalize(Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I")},
		Base: "B", Subs: []Subscript{ExprSub(expr.Min(expr.Dummy("I"), expr.UBound("B", 1)))},
	}, d1, base, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := one(t, f, 3); got[0] != 3 {
		t.Fatalf("MIN(I,UBOUND) = %v", got)
	}
}

func TestIdentity(t *testing.T) {
	d := index.Standard(1, 4, 1, 5)
	f := Identity("A", d)
	d.ForEach(func(tu index.Tuple) bool {
		got := one(t, f, tu...)
		if !got.Equal(tu) {
			t.Fatalf("Identity(%v) = %v", tu, got)
		}
		return true
	})
}

func TestRepresentativeAgreesWithImage(t *testing.T) {
	n, m := 4, 3
	a := index.Standard(1, n)
	d := index.Standard(1, n, 1, m)
	f := mustNormalize(t, Spec{
		Alignee: "A", Axes: []Axis{Colon()},
		Base: "D", Subs: []Subscript{TripletSub(index.Unit(1, n)), StarSub()},
	}, a, d)
	for j := 1; j <= n; j++ {
		rep, err := f.Representative(index.Tuple{j})
		if err != nil {
			t.Fatal(err)
		}
		img, _ := f.Image(index.Tuple{j})
		if !rep.Equal(img[0]) {
			t.Fatalf("Representative(%d) = %v, first image %v", j, rep, img[0])
		}
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{
		Alignee: "A", Axes: []Axis{Colon(), Star(), DummyAxis("I")},
		Base: "B", Subs: []Subscript{TripletSub(index.Unit(1, 4)), StarSub(), ExprSub(expr.Affine(2, "I", -1))},
	}
	want := "A(:,*,I) WITH B(1:4,*,2*I-1)"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: for random affine alignments within bounds, every image
// element lies in the base domain (totality into P(I^B) - {∅}).
func TestImageTotalityProperty(t *testing.T) {
	f := func(aa int8, bb int8, nn uint8) bool {
		n := int(nn%20) + 2
		a := int(aa%3) + 1 // coeff 1..3
		b := int(bb % 5)
		alignee := index.Standard(1, n)
		base := index.Standard(1, 3*n+5)
		fn, err := Normalize(Spec{
			Alignee: "A", Axes: []Axis{DummyAxis("I")},
			Base: "B", Subs: []Subscript{ExprSub(expr.Affine(a, "I", b))},
		}, alignee, base, expr.Env{})
		if err != nil {
			return false
		}
		for i := 1; i <= n; i++ {
			img, err := fn.Image(index.Tuple{i})
			if err != nil || len(img) == 0 {
				return false
			}
			for _, tu := range img {
				if !base.Contains(tu) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestReplicationConstructProperty: under replication (base "*"),
// every image element shares the non-replicated coordinates and
// enumerates the full replicated extent.
func TestReplicationImageProperty(t *testing.T) {
	f := func(nn, mm uint8) bool {
		n := int(nn%12) + 2
		m := int(mm%6) + 2
		a := index.Standard(1, n)
		d := index.Standard(1, n, 1, m)
		fn, err := Normalize(Spec{
			Alignee: "A", Axes: []Axis{Colon()},
			Base: "D", Subs: []Subscript{TripletSub(index.Unit(1, n)), StarSub()},
		}, a, d, expr.Env{})
		if err != nil {
			return false
		}
		for j := 1; j <= n; j++ {
			img, err := fn.Image(index.Tuple{j})
			if err != nil || len(img) != m {
				return false
			}
			cols := map[int]bool{}
			for _, tu := range img {
				if tu[0] != j {
					return false
				}
				cols[tu[1]] = true
			}
			if len(cols) != m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeStrideTriplet(t *testing.T) {
	// ALIGN A(:) WITH B(8:1:-1): reversal alignment.
	a := index.Standard(1, 8)
	b := index.Standard(1, 8)
	tr, err := index.NewTriplet(8, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	f := mustNormalize(t, Spec{
		Alignee: "A", Axes: []Axis{Colon()},
		Base: "B", Subs: []Subscript{TripletSub(tr)},
	}, a, b)
	// Position J maps to (J-1)*(-1) + 8 = 9 - J.
	for j := 1; j <= 8; j++ {
		got := one(t, f, j)
		if got[0] != 9-j {
			t.Fatalf("A(%d) -> %v, want %d", j, got, 9-j)
		}
	}
}

func TestCollapsedDimsWithUnusedDummy(t *testing.T) {
	// A declared dummy that occurs in no base subscript collapses its
	// dimension, "replacing the '*' with an align-dummy not used
	// anywhere else ... would have the same effect".
	d2 := index.Standard(1, 4, 1, 4)
	d1 := index.Standard(1, 4)
	f := mustNormalize(t, Spec{
		Alignee: "A", Axes: []Axis{DummyAxis("I"), DummyAxis("K")},
		Base: "B", Subs: []Subscript{ExprSub(expr.Dummy("I"))},
	}, d2, d1)
	got := f.CollapsedDims()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("CollapsedDims = %v", got)
	}
	// Same image regardless of the collapsed coordinate.
	a := one(t, f, 2, 1)
	b := one(t, f, 2, 4)
	if !a.Equal(b) {
		t.Fatalf("collapse failed: %v vs %v", a, b)
	}
}
