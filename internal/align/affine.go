package align

import (
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
)

// The affine interval form of an alignment function: when every base
// subscript is affine in its align-dummy (a*J + b, the stride/offset
// alignments of §5.1 without MAX/MIN truncation), the image of an
// interval of alignee indices is an interval of base indices and vice
// versa, so ownership runs of the base transport through α in closed
// form instead of element by element.

// affDim is one base dimension of the affine form.
type affDim struct {
	// aligneeDim is the 0-based alignee dimension whose dummy occurs
	// in the subscript, or -1 for a fixed (dummyless) subscript.
	aligneeDim int
	// a, b give the subscript a*J + b; for fixed subscripts the value
	// is b (already clamped into the base dimension).
	a, b int
}

// AffineMap is the interval-transport view of an alignment function.
type AffineMap struct {
	f    *Function
	dims []affDim
}

// Affine returns the affine interval form of α, or ok = false when α
// replicates, uses a non-affine subscript (MAX/MIN), or the alignee or
// base domain is not standard. Callers fall back to per-element
// evaluation in that case. The form is computed once at Normalize
// time; this accessor is a field read, safe on hot paths.
func (f *Function) Affine() (*AffineMap, bool) {
	return f.aff, f.aff != nil
}

// computeAffine derives the affine interval form, or nil when the
// function is outside the affine subset.
func computeAffine(f *Function) *AffineMap {
	if !f.Alignee.IsStandard() || !f.Base.IsStandard() {
		return nil
	}
	am := &AffineMap{f: f, dims: make([]affDim, len(f.maps))}
	for j, m := range f.maps {
		if m.replicated {
			return nil
		}
		lin, err := expr.Linearize(m.e, f.env)
		if err != nil {
			return nil
		}
		d := affDim{aligneeDim: -1, a: lin.Coeff, b: lin.Offset}
		if lin.Coeff != 0 {
			d.aligneeDim = m.dummyDim
		} else {
			// Dummyless (or zero-coefficient) subscripts evaluate to
			// one value; Image clamps it, so clamp here identically.
			d.b = clamp(lin.Offset, f.Base.Dims[j])
		}
		am.dims[j] = d
	}
	return am
}

// ImageRegion maps a standard sub-rectangle of the alignee domain to
// the smallest base rectangle containing its image. ok = false when a
// computed subscript would leave the base dimension's bounds (the
// §5.1 clamp rule would then bend the affine map, so interval
// transport is unsound and the caller must fall back).
func (am *AffineMap) ImageRegion(region index.Domain) (index.Domain, bool) {
	dims := make([]index.Triplet, len(am.dims))
	for j, d := range am.dims {
		if d.aligneeDim < 0 {
			dims[j] = index.Unit(d.b, d.b)
			continue
		}
		tr := region.Dims[d.aligneeDim]
		y1, y2 := d.a*tr.Low+d.b, d.a*tr.High+d.b
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		base := am.f.Base.Dims[j]
		if y1 < base.Low || y2 > base.High {
			return index.Domain{}, false
		}
		dims[j] = index.Unit(y1, y2)
	}
	return index.Domain{Dims: dims}, true
}

// Preimage maps a base rectangle back to the alignee indices of
// region whose image falls inside it: per dimension, the solutions of
// a*J + b ∈ [lo, hi] intersected with the region. Alignee dimensions
// occurring in no base subscript (collapsed axes) are unconstrained
// and keep their full region interval. ok = false when the preimage
// is empty (the rectangle misses a fixed subscript's value, or no
// alignee index lands in it).
func (am *AffineMap) Preimage(baseRect, region index.Domain) (index.Domain, bool) {
	dims := make([]index.Triplet, region.Rank())
	copy(dims, region.Dims)
	for j, d := range am.dims {
		tr := baseRect.Dims[j]
		if d.aligneeDim < 0 {
			if d.b < tr.Low || d.b > tr.High {
				return index.Domain{}, false
			}
			continue
		}
		lo, hi := ceilDiv(tr.Low-d.b, d.a), floorDiv(tr.High-d.b, d.a)
		if d.a < 0 {
			lo, hi = ceilDiv(tr.High-d.b, d.a), floorDiv(tr.Low-d.b, d.a)
		}
		cur := dims[d.aligneeDim]
		if lo < cur.Low {
			lo = cur.Low
		}
		if hi > cur.High {
			hi = cur.High
		}
		if lo > hi {
			return index.Domain{}, false
		}
		dims[d.aligneeDim] = index.Unit(lo, hi)
	}
	return index.Domain{Dims: dims}, true
}

// floorDiv is ⌊a/b⌋ for b ≠ 0 (Go's / truncates toward zero).
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// ceilDiv is ⌈a/b⌉ for b ≠ 0.
func ceilDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
