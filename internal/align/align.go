// Package align implements the paper's alignment directives (§5). In
// the pipeline it sits between the directive front end and the
// mapping kernel: parsed ALIGN specs normalize into alignment
// functions that package core composes (CONSTRUCT) with direct
// distributions from package dist to produce element mappings, and
// the affine interval form computed here is what lets the run-length
// ownership kernel transport owner tiles through alignments.
//
// An ALIGN directive
//
//	ALIGN A(s1,...,sn) WITH B(t1,...,tm)
//
// specifies an alignment function α: I^A → P(I^B) − {∅} (Definition
// 3, §2.3). Every alignee axis s_i is ":" (spread), "*" (collapse) or
// an align-dummy; every base subscript t_j is a dummyless expression,
// a dummy-use expression (linear in exactly one align-dummy, possibly
// using MAX/MIN/LBOUND/UBOUND/SIZE), a subscript triplet, or "*"
// (replication).
//
// Normalization follows §5.1 exactly: ":" axes are matched to
// subscript triplets and replaced by fresh dummies with the affine map
// (J − L_i)*ST + LT; "*" axes become dummies used nowhere (collapse);
// "*" base subscripts expand to the full extent of their dimension
// (replication). Evaluation clamps each computed subscript into its
// dimension's bounds (the paper's ŷ = MIN(U_j, y) truncation rule,
// applied symmetrically at the lower bound as well, which is what the
// MAX/MIN intrinsics are admitted for).
package align

import (
	"fmt"
	"strings"

	"hpfnt/internal/expr"
	"hpfnt/internal/index"
)

// AxisKind discriminates the three alignee axis forms of §5.
type AxisKind int

// The alignee axis forms.
const (
	AxisColon AxisKind = iota // ":" — spread across the matching base triplet
	AxisStar                  // "*" — collapsed: positions make no difference
	AxisDummy                 // a named align-dummy
)

// Axis is one alignee axis.
type Axis struct {
	Kind  AxisKind
	Dummy string // for AxisDummy
}

// Colon returns a ":" axis.
func Colon() Axis { return Axis{Kind: AxisColon} }

// Star returns a "*" axis.
func Star() Axis { return Axis{Kind: AxisStar} }

// DummyAxis returns an align-dummy axis.
func DummyAxis(name string) Axis { return Axis{Kind: AxisDummy, Dummy: name} }

func (a Axis) String() string {
	switch a.Kind {
	case AxisColon:
		return ":"
	case AxisStar:
		return "*"
	default:
		return a.Dummy
	}
}

// SubKind discriminates base subscript forms.
type SubKind int

// The base subscript forms of §5.1.
const (
	SubExpr    SubKind = iota // dummyless-expr or dummy-use-expr
	SubTriplet                // a subscript triplet
	SubStar                   // "*" — replication over the dimension
)

// Subscript is one base subscript.
type Subscript struct {
	Kind    SubKind
	Expr    expr.Expr     // for SubExpr
	Triplet index.Triplet // for SubTriplet
}

// ExprSub wraps an expression subscript.
func ExprSub(e expr.Expr) Subscript { return Subscript{Kind: SubExpr, Expr: e} }

// TripletSub wraps a triplet subscript.
func TripletSub(t index.Triplet) Subscript { return Subscript{Kind: SubTriplet, Triplet: t} }

// StarSub returns the replication subscript.
func StarSub() Subscript { return Subscript{Kind: SubStar} }

func (s Subscript) String() string {
	switch s.Kind {
	case SubExpr:
		return s.Expr.String()
	case SubTriplet:
		return s.Triplet.String()
	default:
		return "*"
	}
}

// Spec is a parsed ALIGN directive before normalization.
type Spec struct {
	Alignee string
	Axes    []Axis
	Base    string
	Subs    []Subscript
}

// String renders the directive body, e.g. "A(:,*) WITH B(2*I-1,*)".
func (s Spec) String() string {
	ax := make([]string, len(s.Axes))
	for i, a := range s.Axes {
		ax[i] = a.String()
	}
	su := make([]string, len(s.Subs))
	for i, t := range s.Subs {
		su[i] = t.String()
	}
	return fmt.Sprintf("%s(%s) WITH %s(%s)", s.Alignee, strings.Join(ax, ","), s.Base, strings.Join(su, ","))
}

// baseMap describes one base dimension of the normalized alignment
// function.
type baseMap struct {
	// replicated marks a base "*" dimension: the alignee element is
	// aligned with every position along this dimension.
	replicated bool
	// e is the subscript expression (nil when replicated). It
	// references at most one align-dummy.
	e expr.Expr
	// dummyDim is the 0-based alignee dimension whose dummy occurs in
	// e, or -1 for dummyless expressions.
	dummyDim int
}

// Function is a normalized alignment function α for an alignee with
// respect to a base (Definition 3). The reduced alignee has the form
// A(J1,...,Jn) with distinct dummies ranging over the alignee's
// dimensions; each base dimension carries either an expression in at
// most one of those dummies, or a replication marker.
type Function struct {
	// Alignee is the alignee's index domain I^A.
	Alignee index.Domain
	// Base is the alignment base's index domain I^B.
	Base index.Domain

	spec  Spec
	maps  []baseMap
	env   expr.Env   // bounds resolver captured at normalization
	names []string   // dummy name per alignee dimension
	aff   *AffineMap // affine interval form, nil outside the subset
}

// Identity returns the trivial alignment of a domain to itself
// (dimension i maps to dimension i), used when an array is aligned to
// another array of identical shape with no directive given.
func Identity(name string, dom index.Domain) *Function {
	axes := make([]Axis, dom.Rank())
	subs := make([]Subscript, dom.Rank())
	for i := range axes {
		d := fmt.Sprintf("I%d", i+1)
		axes[i] = DummyAxis(d)
		subs[i] = ExprSub(expr.Dummy(d))
	}
	f, err := Normalize(Spec{Alignee: name, Axes: axes, Base: name, Subs: subs}, dom, dom, expr.Env{})
	if err != nil {
		panic("align: identity normalization failed: " + err.Error())
	}
	return f
}

// Normalize applies the §5.1 transformations to a Spec, producing the
// alignment function. aligneeDom and baseDom are the index domains of
// the alignee and the alignment base; env supplies array bounds for
// LBOUND/UBOUND/SIZE intrinsics (its dummy bindings are ignored).
func Normalize(s Spec, aligneeDom, baseDom index.Domain, env expr.Env) (*Function, error) {
	if len(s.Axes) != aligneeDom.Rank() {
		return nil, fmt.Errorf("align: %d alignee axes for rank-%d array %s", len(s.Axes), aligneeDom.Rank(), s.Alignee)
	}
	if len(s.Subs) != baseDom.Rank() {
		return nil, fmt.Errorf("align: %d base subscripts for rank-%d base %s", len(s.Subs), baseDom.Rank(), s.Base)
	}

	// Assign a dummy name to every alignee dimension. Declared
	// dummies keep their names; ":" and "*" axes get fresh internal
	// names (the paper's "new align-dummy J").
	names := make([]string, len(s.Axes))
	dimOfDummy := map[string]int{}
	colonDims := []int{} // alignee dims with ":" axes, in order
	for i, a := range s.Axes {
		switch a.Kind {
		case AxisDummy:
			if a.Dummy == "" {
				return nil, fmt.Errorf("align: empty dummy name in axis %d of %s", i+1, s.Alignee)
			}
			if _, dup := dimOfDummy[a.Dummy]; dup {
				return nil, fmt.Errorf("align: align-dummy %s used for two axes of %s", a.Dummy, s.Alignee)
			}
			names[i] = a.Dummy
			dimOfDummy[a.Dummy] = i
		case AxisColon:
			names[i] = fmt.Sprintf("%%c%d", i+1)
			dimOfDummy[names[i]] = i
			colonDims = append(colonDims, i)
		case AxisStar:
			// Collapse: a fresh dummy that occurs nowhere else.
			names[i] = fmt.Sprintf("%%s%d", i+1)
			dimOfDummy[names[i]] = i
		}
	}

	// Collect triplet subscripts in order; they are matched
	// left-to-right with the ":" axes.
	tripletSubs := []int{}
	for j, t := range s.Subs {
		if t.Kind == SubTriplet {
			tripletSubs = append(tripletSubs, j)
		}
	}
	if len(tripletSubs) != len(colonDims) {
		return nil, fmt.Errorf("align: %s has %d ':' axes but base %s has %d subscript triplets", s.Alignee, len(colonDims), s.Base, len(tripletSubs))
	}

	maps := make([]baseMap, len(s.Subs))
	usedDummy := map[string]int{} // dummy -> base dim already using it
	tIdx := 0
	for j, t := range s.Subs {
		switch t.Kind {
		case SubStar:
			maps[j] = baseMap{replicated: true, dummyDim: -1}
		case SubTriplet:
			i := colonDims[tIdx]
			tIdx++
			tr := t.Triplet
			if tr.Stride == 0 {
				return nil, fmt.Errorf("align: zero stride in triplet subscript %d of %s", j+1, s.Base)
			}
			// §5.1 condition: U_i − L_i + 1 <= MAX(INT((UT−LT+ST)/ST), 0).
			if aligneeDom.Extent(i) > tr.Count() {
				return nil, fmt.Errorf("align: axis %d of %s has extent %d exceeding triplet %s (%d positions)", i+1, s.Alignee, aligneeDom.Extent(i), tr, tr.Count())
			}
			// s_i is replaced by new dummy J; t_j by (J − L_i)*ST + LT.
			j0 := expr.Sub(expr.Dummy(names[i]), expr.Const(aligneeDom.Lower(i)))
			e := expr.Add(expr.Mul(j0, expr.Const(tr.Stride)), expr.Const(tr.Low))
			maps[j] = baseMap{e: e, dummyDim: i}
			usedDummy[names[i]] = j
		case SubExpr:
			if t.Expr == nil {
				return nil, fmt.Errorf("align: nil expression subscript %d of %s", j+1, s.Base)
			}
			ds := expr.Dummies(t.Expr)
			switch len(ds) {
			case 0:
				maps[j] = baseMap{e: t.Expr, dummyDim: -1}
			case 1:
				dim, ok := dimOfDummy[ds[0]]
				if !ok {
					return nil, fmt.Errorf("align: subscript %d of %s uses undeclared align-dummy %s", j+1, s.Base, ds[0])
				}
				if s.Axes[dim].Kind != AxisDummy {
					return nil, fmt.Errorf("align: internal dummy %s referenced in subscript", ds[0])
				}
				// "Each J_i may occur in at most one y_j (this
				// excludes the possibility to specify skew
				// alignments)."
				if prev, used := usedDummy[ds[0]]; used {
					return nil, fmt.Errorf("align: align-dummy %s occurs in base subscripts %d and %d (skew alignments are excluded)", ds[0], prev+1, j+1)
				}
				usedDummy[ds[0]] = j
				maps[j] = baseMap{e: t.Expr, dummyDim: dim}
			default:
				return nil, fmt.Errorf("align: subscript %d of %s uses %d align-dummies (%v); at most one is allowed", j+1, s.Base, len(ds), ds)
			}
		}
	}

	f := &Function{
		Alignee: aligneeDom,
		Base:    baseDom,
		spec:    s,
		maps:    maps,
		env:     expr.Env{Bounds: env.Bounds},
		names:   names,
	}
	f.aff = computeAffine(f)
	return f, nil
}

// Spec returns the originating directive spec.
func (f *Function) Spec() Spec { return f.spec }

// CollapsedDims lists the 0-based alignee dimensions whose positions
// make no difference to the base position ("*" axes and dummies that
// occur in no base subscript).
func (f *Function) CollapsedDims() []int {
	used := map[int]bool{}
	for _, m := range f.maps {
		if m.dummyDim >= 0 {
			used[m.dummyDim] = true
		}
	}
	var out []int
	for i := 0; i < f.Alignee.Rank(); i++ {
		if !used[i] {
			out = append(out, i)
		}
	}
	return out
}

// Replicates reports whether any base dimension is replicated.
func (f *Function) Replicates() bool {
	for _, m := range f.maps {
		if m.replicated {
			return true
		}
	}
	return false
}

// ImageSize reports |α(i)|, identical for every i: the product of the
// extents of replicated base dimensions.
func (f *Function) ImageSize() int {
	n := 1
	for j, m := range f.maps {
		if m.replicated {
			n *= f.Base.Extent(j)
		}
	}
	return n
}

// Image computes α(i): the set of base indices the alignee element i
// is aligned with. The result enumerates the cross product over
// replicated dimensions; computed subscripts are clamped into their
// dimension's bounds per §5.1's truncation rule.
func (f *Function) Image(i index.Tuple) ([]index.Tuple, error) {
	if !f.Alignee.Contains(i) {
		return nil, fmt.Errorf("align: %s not in alignee domain %s", i, f.Alignee)
	}
	env := expr.Env{Dummies: make(map[string]int, len(f.names)), Bounds: f.env.Bounds}
	for d, name := range f.names {
		env.Dummies[name] = i[d]
	}
	fixed := make([]int, len(f.maps))
	var repDims []int
	for j, m := range f.maps {
		if m.replicated {
			repDims = append(repDims, j)
			continue
		}
		y, err := m.e.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("align: evaluating subscript %d of %s: %w", j+1, f.spec.Base, err)
		}
		fixed[j] = clamp(y, f.Base.Dims[j])
	}
	if len(repDims) == 0 {
		return []index.Tuple{index.Tuple(fixed).Clone()}, nil
	}
	out := make([]index.Tuple, 0, f.ImageSize())
	var rec func(k int)
	rec = func(k int) {
		if k == len(repDims) {
			out = append(out, index.Tuple(fixed).Clone())
			return
		}
		j := repDims[k]
		tr := f.Base.Dims[j]
		for p := 0; p < tr.Count(); p++ {
			fixed[j] = tr.At(p)
			rec(k + 1)
		}
	}
	rec(0)
	return out, nil
}

// Representative computes a single element of α(i) (the first in
// cross-product order) without materializing the whole image.
func (f *Function) Representative(i index.Tuple) (index.Tuple, error) {
	if !f.Alignee.Contains(i) {
		return nil, fmt.Errorf("align: %s not in alignee domain %s", i, f.Alignee)
	}
	env := expr.Env{Dummies: make(map[string]int, len(f.names)), Bounds: f.env.Bounds}
	for d, name := range f.names {
		env.Dummies[name] = i[d]
	}
	out := make(index.Tuple, len(f.maps))
	for j, m := range f.maps {
		if m.replicated {
			out[j] = f.Base.Dims[j].Low
			continue
		}
		y, err := m.e.Eval(env)
		if err != nil {
			return nil, err
		}
		out[j] = clamp(y, f.Base.Dims[j])
	}
	return out, nil
}

// clamp truncates y into the triplet's value range: the paper's
// ŷ = MIN(U_j, y) rule, applied at both ends.
func clamp(y int, tr index.Triplet) int {
	lo, hi := tr.Low, tr.Last()
	if lo > hi {
		lo, hi = hi, lo
	}
	if y < lo {
		return lo
	}
	if y > hi {
		return hi
	}
	return y
}

// String renders the normalized function's originating directive.
func (f *Function) String() string { return "ALIGN " + f.spec.String() }
