// Package ckpt is the on-disk checkpoint format of fault-tolerant
// jobs: per-rank array shards plus a JSON manifest carrying the
// epoch and the job-wide aggregated machine counters, grouped in one
// directory per checkpointed epoch under a job's spill directory. A
// checkpoint becomes visible only when the manifest is written and
// the CURRENT pointer file is atomically renamed over — a crash mid-
// checkpoint leaves CURRENT on the previous complete epoch, so
// Latest never observes a torn snapshot. Shards are keyed by
// (array index, rank), not by process, which is what lets a restore
// remap the data onto a different membership: each surviving or
// replacement process simply reads the shards of the ranks it now
// hosts (see the engine Checkpoint/Restore implementations and
// package elastic).
package ckpt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// currentFile is the pointer file naming the latest complete
// checkpoint's directory (relative to the spill dir).
const currentFile = "CURRENT"

// ErrNoCheckpoint reports that the spill directory holds no published
// checkpoint.
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint published")

// Manifest describes one complete checkpoint.
type Manifest struct {
	// Epoch is the epoch the snapshot was taken at: every array holds
	// its values after exactly Epoch executed epochs.
	Epoch int `json:"epoch"`
	// NP is the abstract processor (rank) count of the job.
	NP int `json:"np"`
	// Arrays lists the checkpointed arrays in checkpoint order; a
	// restore must present the same arrays in the same order.
	Arrays []ArrayInfo `json:"arrays"`
	// Counters is the job-wide aggregated counter vector
	// (machine.EncodeCounters) at the checkpoint, so a restored job
	// reports the same machine.Report an uninterrupted run would.
	Counters []float64 `json:"counters"`
}

// ArrayInfo identifies one checkpointed array.
type ArrayInfo struct {
	Name string `json:"name"`
	Size int    `json:"size"` // total elements, a shape check on restore
}

// EpochDir returns the directory of the given epoch's checkpoint.
func EpochDir(dir string, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("ck-%d", epoch))
}

// ShardName returns the file name of one array's per-rank shard.
func ShardName(array, rank int) string {
	return fmt.Sprintf("a%d-r%d.f64", array, rank)
}

// WriteShard durably writes one shard (write-to-temp then rename, so
// a concurrently crashing process never leaves a short file under the
// final name).
func WriteShard(epochDir, name string, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	tmp := filepath.Join(epochDir, name+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("ckpt: writing shard %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(epochDir, name)); err != nil {
		return fmt.Errorf("ckpt: publishing shard %s: %w", name, err)
	}
	return nil
}

// ReadShard reads one shard into dst, which must match its length
// exactly (a shape mismatch means the checkpoint belongs to a
// different job configuration).
func ReadShard(epochDir, name string, dst []float64) error {
	b, err := os.ReadFile(filepath.Join(epochDir, name))
	if err != nil {
		return fmt.Errorf("ckpt: reading shard %s: %w", name, err)
	}
	if len(b) != 8*len(dst) {
		return fmt.Errorf("ckpt: shard %s holds %d elements, want %d", name, len(b)/8, len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}

// Publish writes the manifest into its epoch directory and atomically
// repoints CURRENT at it, making the checkpoint the one Latest
// returns. Call it once per checkpoint, after every shard is written
// (the leader does, after a barrier).
func Publish(dir string, m Manifest) error {
	ed := EpochDir(dir, m.Epoch)
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("ckpt: encoding manifest: %w", err)
	}
	tmp := filepath.Join(ed, "manifest.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("ckpt: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(ed, "manifest.json")); err != nil {
		return fmt.Errorf("ckpt: publishing manifest: %w", err)
	}
	cur := filepath.Join(dir, currentFile)
	if err := os.WriteFile(cur+".tmp", []byte(filepath.Base(ed)+"\n"), 0o644); err != nil {
		return fmt.Errorf("ckpt: writing %s: %w", currentFile, err)
	}
	if err := os.Rename(cur+".tmp", cur); err != nil {
		return fmt.Errorf("ckpt: publishing %s: %w", currentFile, err)
	}
	return nil
}

// Latest returns the latest published checkpoint's manifest and its
// epoch directory, or ErrNoCheckpoint when none has been published.
func Latest(dir string) (Manifest, string, error) {
	b, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, "", ErrNoCheckpoint
		}
		return Manifest{}, "", fmt.Errorf("ckpt: reading %s: %w", currentFile, err)
	}
	ed := filepath.Join(dir, strings.TrimSpace(string(b)))
	mb, err := os.ReadFile(filepath.Join(ed, "manifest.json"))
	if err != nil {
		return Manifest{}, "", fmt.Errorf("ckpt: reading manifest of %s: %w", ed, err)
	}
	var m Manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return Manifest{}, "", fmt.Errorf("ckpt: decoding manifest of %s: %w", ed, err)
	}
	return m, ed, nil
}

// Prune removes every checkpoint directory except the given epoch's
// (the leader calls it after publishing, bounding the spill
// directory to one complete checkpoint plus the one being written).
func Prune(dir string, keep int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	keepName := filepath.Base(EpochDir(dir, keep))
	var firstErr error
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "ck-") || e.Name() == keepName {
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
