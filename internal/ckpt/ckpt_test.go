package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestShardRoundtrip(t *testing.T) {
	dir := t.TempDir()
	vals := []float64{0, 1.5, -2.25, 3e100, -0}
	if err := WriteShard(dir, ShardName(0, 3), vals); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(vals))
	if err := ReadShard(dir, ShardName(0, 3), got); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("shard element %d: got %g, want %g", i, got[i], vals[i])
		}
	}
	// Length mismatch is a hard error, not a silent truncation.
	short := make([]float64, len(vals)-1)
	if err := ReadShard(dir, ShardName(0, 3), short); err == nil {
		t.Fatal("short destination accepted")
	}
}

func TestLatestEmptyDir(t *testing.T) {
	if _, _, err := Latest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on empty dir = %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := Latest(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on missing dir = %v, want ErrNoCheckpoint", err)
	}
}

func TestPublishLatestPrune(t *testing.T) {
	dir := t.TempDir()
	for _, epoch := range []int{2, 4} {
		ed := EpochDir(dir, epoch)
		if err := os.MkdirAll(ed, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteShard(ed, ShardName(0, 0), []float64{float64(epoch)}); err != nil {
			t.Fatal(err)
		}
		m := Manifest{Epoch: epoch, NP: 4,
			Arrays:   []ArrayInfo{{Name: "A", Size: 1}},
			Counters: []float64{1, 2, 3}}
		if err := Publish(dir, m); err != nil {
			t.Fatal(err)
		}
	}
	man, ed, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 4 || man.NP != 4 || len(man.Arrays) != 1 || man.Arrays[0].Name != "A" {
		t.Fatalf("Latest manifest = %+v", man)
	}
	buf := make([]float64, 1)
	if err := ReadShard(ed, ShardName(0, 0), buf); err != nil || buf[0] != 4 {
		t.Fatalf("latest shard = %v, %v", buf, err)
	}
	if err := Prune(dir, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(EpochDir(dir, 2)); !os.IsNotExist(err) {
		t.Fatal("Prune left the stale epoch directory")
	}
	if _, _, err := Latest(dir); err != nil {
		t.Fatalf("Latest after Prune: %v", err)
	}
}

// TestTornCheckpointInvisible checks crash atomicity: an epoch
// directory written without a Publish must not become the latest
// checkpoint — the previous complete one stays current.
func TestTornCheckpointInvisible(t *testing.T) {
	dir := t.TempDir()
	ed := EpochDir(dir, 1)
	if err := os.MkdirAll(ed, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteShard(ed, ShardName(0, 0), []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := Publish(dir, Manifest{Epoch: 1, NP: 1, Arrays: []ArrayInfo{{Name: "A", Size: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint at epoch 2: shards on disk, no
	// manifest publish, CURRENT untouched.
	torn := EpochDir(dir, 2)
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteShard(torn, ShardName(0, 0), []float64{2}); err != nil {
		t.Fatal(err)
	}
	man, _, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Epoch != 1 {
		t.Fatalf("torn checkpoint became current: epoch %d", man.Epoch)
	}
}
