package inspector

import (
	"testing"
)

// grid builds an owner grid from a literal.
func grid(owners ...int32) []int32 { return owners }

// TestBuildClassifiesLocalAndRemote pins the core partition: accesses
// execute on the writer's owner, reads split into local element
// offsets and ghost slots, and remote reads deduplicate per (element,
// reader).
func TestBuildClassifiesLocalAndRemote(t *testing.T) {
	// lhs offsets 0,1 on worker 1; 2,3 on worker 2.
	wOwn := grid(1, 1, 2, 2)
	// src offsets 0,1 on worker 1; 2,3 on worker 2.
	rOwn := grid(1, 1, 2, 2)
	pat := Pattern{
		//            local(w1)  remote(w1<-2)  dup remote  local(w2)
		Writes: []int32{0, 1, 1, 2},
		Reads:  []int32{1, 3, 3, 2},
		Coeffs: []float64{2, 3, 5, 7},
	}
	s, err := Build(2, wOwn, rOwn, pat)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := s.Plans[1], s.Plans[2]
	if p1 == nil || p2 == nil {
		t.Fatal("both workers have accesses")
	}
	if p1.Load != 3 || p1.LocalRefs != 1 || p1.RemoteRefs != 2 {
		t.Fatalf("worker 1 counters: %+v", p1)
	}
	if p2.Load != 1 || p2.LocalRefs != 1 || p2.RemoteRefs != 0 {
		t.Fatalf("worker 2 counters: %+v", p2)
	}
	// Worker 1 writes offsets 0 and 1; the two remote reads of src
	// offset 3 share one ghost slot.
	if len(p1.Outs) != 2 || p1.Outs[0] != 0 || p1.Outs[1] != 1 {
		t.Fatalf("worker 1 outs: %v", p1.Outs)
	}
	if p1.NGhost != 1 {
		t.Fatalf("ghost slots not deduplicated: %d", p1.NGhost)
	}
	if p1.Reads[0] != 1 || p1.Reads[1] != -1 || p1.Reads[2] != -1 {
		t.Fatalf("worker 1 reads: %v", p1.Reads)
	}
	// One message: worker 2 ships src offset 3 to worker 1.
	if s.Messages() != 1 || s.GhostElements() != 1 {
		t.Fatalf("messages %d, ghost %d", s.Messages(), s.GhostElements())
	}
	pr := s.Pairs[0]
	if pr.Src != 2 || pr.Dst != 1 || len(pr.Offsets) != 1 || pr.Offsets[0] != 3 || pr.Targets[0] != 0 {
		t.Fatalf("pair: %+v", pr)
	}
}

// TestBuildPairOrderDeterministic asserts the pair list is sorted by
// (Src, Dst) regardless of encounter order.
func TestBuildPairOrderDeterministic(t *testing.T) {
	wOwn := grid(3, 2, 1)
	rOwn := grid(1, 2, 3)
	pat := Pattern{
		Writes: []int32{0, 1, 2, 0},
		Reads:  []int32{1, 0, 1, 0},
	}
	s, err := Build(3, wOwn, rOwn, pat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Pairs); i++ {
		a, b := s.Pairs[i-1], s.Pairs[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst >= b.Dst) {
			t.Fatalf("pairs not sorted: %+v", s.Pairs)
		}
	}
	if s.GhostElements() != 4 {
		t.Fatalf("ghost elements = %d, want 4", s.GhostElements())
	}
}

// TestBuildNilCoeffsDefaultToOne checks the coefficient default.
func TestBuildNilCoeffsDefaultToOne(t *testing.T) {
	s, err := Build(1, grid(1, 1), grid(1, 1), Pattern{Writes: []int32{0}, Reads: []int32{1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Plans[1].Coeffs[0] != 1 {
		t.Fatalf("coeff = %g, want 1", s.Plans[1].Coeffs[0])
	}
}

// TestValidateErrors covers the pattern shape errors.
func TestValidateErrors(t *testing.T) {
	cases := []Pattern{
		{Writes: []int32{0}, Reads: []int32{}},
		{Writes: []int32{0}, Reads: []int32{0}, Coeffs: []float64{1, 2}},
		{Writes: []int32{2}, Reads: []int32{0}},
		{Writes: []int32{0}, Reads: []int32{-1}},
	}
	for i, pat := range cases {
		if _, err := Build(1, grid(1, 1), grid(1, 1), pat); err == nil {
			t.Fatalf("case %d: invalid pattern accepted", i)
		}
	}
}

// TestBuildEmptyPattern: zero accesses yield an executable no-op.
func TestBuildEmptyPattern(t *testing.T) {
	s, err := Build(2, grid(1, 2), grid(1, 2), Pattern{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Messages() != 0 || s.GhostElements() != 0 {
		t.Fatalf("empty pattern has traffic: %+v", s)
	}
}
