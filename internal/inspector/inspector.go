// Package inspector implements the inspector phase of the
// inspector–executor technique for irregular (INDIRECT-style)
// communication — the runtime preprocessing of Kali/PARTI that the
// paper's user-defined distribution functions call for (introduction
// point 3, §9): when subscripts are themselves array elements, the
// communication sets of a statement cannot be derived in closed form
// at compile time, so they are derived *once* at runtime and the
// resulting schedule is reused across iterations.
//
// The input is a flattened gather/scatter access pattern over two
// distributed arrays (Pattern): access k accumulates
// Coeffs[k]·src[Reads[k]] into lhs[Writes[k]], with element positions
// given as column-major offsets into each array's index domain. Build
// partitions the accesses by owning processor (the writer executes,
// per the owner-computes rule), classifies each read as local or
// non-local, deduplicates remote reads per (element, reader) pair,
// and emits a Schedule: one executable plan per worker — distinct
// write list, local reads as element offsets, remote reads as
// ghost-buffer slots — plus one deduplicated gather list per ordered
// processor pair (the halo exchange).
//
// The schedule is engine-neutral: the sequential simulator (package
// runtime) executes it over dense storage as the differential oracle,
// and the parallel engine (package spmd) lowers offsets to local
// store slots and ships the gather lists as real channel messages.
// Both charge the machine counters recorded here, so their statistics
// agree by construction; values are asserted equal by the
// FuzzIrregularEquivalence target in package engine. In the pipeline
// this package sits beside the run-length schedule analysis of
// package runtime: regular (shift) statements compile through owner
// tiles, irregular ones through this inspector.
package inspector

import (
	"fmt"
	"sort"
)

// Pattern is a flattened irregular access pattern: for each access k,
// the statement accumulates Coeffs[k]·src[Reads[k]] into
// lhs[Writes[k]], where Writes and Reads hold 0-based column-major
// element offsets into the lhs and src index domains. Elements of the
// lhs never written keep their values; written elements receive the
// sum of their accesses (simultaneous-assignment semantics). A nil
// Coeffs means all coefficients are 1.
type Pattern struct {
	Writes []int32
	Reads  []int32
	Coeffs []float64
}

// Validate checks the pattern's shape against the two array sizes.
func (pat Pattern) Validate(lhsSize, srcSize int) error {
	if len(pat.Writes) != len(pat.Reads) {
		return fmt.Errorf("inspector: %d writes vs %d reads", len(pat.Writes), len(pat.Reads))
	}
	if pat.Coeffs != nil && len(pat.Coeffs) != len(pat.Writes) {
		return fmt.Errorf("inspector: %d coefficients for %d accesses", len(pat.Coeffs), len(pat.Writes))
	}
	for k, w := range pat.Writes {
		if w < 0 || int(w) >= lhsSize {
			return fmt.Errorf("inspector: access %d writes offset %d outside lhs size %d", k, w, lhsSize)
		}
	}
	for k, r := range pat.Reads {
		if r < 0 || int(r) >= srcSize {
			return fmt.Errorf("inspector: access %d reads offset %d outside src size %d", k, r, srcSize)
		}
	}
	return nil
}

// Plan is one worker's executable share of an irregular statement.
// The access lists are parallel: access j computes
// Coeffs[j]·value(Reads[j]) and accumulates it into accumulator slot
// WriteIx[j]; after all accesses, accumulator slot i stores to lhs
// element Outs[i]. Reads[j] >= 0 is a local read of src element
// offset Reads[j]; Reads[j] < 0 is ghost-buffer slot -(Reads[j]+1),
// filled by the halo exchange.
type Plan struct {
	Outs    []int32
	WriteIx []int32
	Reads   []int32
	Coeffs  []float64
	// NGhost is the worker's ghost-buffer length.
	NGhost int
	// Load is the per-execution compute load (one unit per access),
	// and LocalRefs/RemoteRefs the reference classification, charged
	// to the machine on every execution.
	Load       int
	LocalRefs  int
	RemoteRefs int
}

// GatherList is the deduplicated halo traffic of one ordered
// processor pair: per execution, Src ships src elements Offsets
// (which it owns) to Dst, which scatters value i into ghost slot
// Targets[i]. Offsets and Targets are parallel.
type GatherList struct {
	Src, Dst int
	Offsets  []int32
	Targets  []int32
}

// Schedule is the compiled, reusable form of one irregular statement:
// per-worker plans plus the per-pair halo exchange. Building it costs
// one pass over the accesses with hash-based deduplication (the
// inspector); executing it performs no ownership analysis at all (the
// executor), which is where the reuse across iterations pays.
type Schedule struct {
	NP int
	// Plans[p] is worker p's share (index 1..NP); nil when p has no
	// accesses to execute and no elements to ship.
	Plans []*Plan
	// Pairs lists the halo exchange in deterministic (Src, Dst) order.
	Pairs []GatherList
}

// ghostKey identifies one deduplicated remote read: src element
// offset per reading worker.
type ghostKey struct {
	off int32
	w   int
}

// Build runs the inspector: it partitions the pattern's accesses over
// the owners of the written elements, classifies reads against the
// owners of the read elements, deduplicates remote reads, and
// compiles the per-worker plans and per-pair gather lists.
//
// wOwners and rOwners are the materialized single-owner grids of the
// lhs and src arrays (owner of the element at each column-major
// offset). Replicated arrays have no such grid; callers must refuse
// them before calling Build (ErrReplicated provides the shared error
// text).
func Build(np int, wOwners, rOwners []int32, pat Pattern) (*Schedule, error) {
	if err := pat.Validate(len(wOwners), len(rOwners)); err != nil {
		return nil, err
	}
	s := &Schedule{NP: np, Plans: make([]*Plan, np+1)}
	planOf := func(p int) *Plan {
		if s.Plans[p] == nil {
			s.Plans[p] = &Plan{}
		}
		return s.Plans[p]
	}
	// accIx[w] maps a written lhs offset to its accumulator slot on
	// its owner (offsets are single-owner, so one map serves all
	// workers); ghosts maps deduplicated remote reads to ghost slots.
	accIx := make(map[int32]int32, len(pat.Writes))
	ghosts := map[ghostKey]int32{}
	pairIx := map[[2]int]int{}
	var pairs []*GatherList
	for k, woff := range pat.Writes {
		w := int(wOwners[woff])
		if w < 1 || w > np {
			return nil, fmt.Errorf("inspector: lhs offset %d owned by %d, outside 1..%d", woff, w, np)
		}
		wp := planOf(w)
		oi, ok := accIx[woff]
		if !ok {
			oi = int32(len(wp.Outs))
			wp.Outs = append(wp.Outs, woff)
			accIx[woff] = oi
		}
		wp.WriteIx = append(wp.WriteIx, oi)
		c := 1.0
		if pat.Coeffs != nil {
			c = pat.Coeffs[k]
		}
		wp.Coeffs = append(wp.Coeffs, c)
		wp.Load++
		roff := pat.Reads[k]
		r := int(rOwners[roff])
		if r == w {
			wp.LocalRefs++
			wp.Reads = append(wp.Reads, roff)
			continue
		}
		wp.RemoteRefs++
		key := ghostKey{off: roff, w: w}
		g, dup := ghosts[key]
		if !dup {
			g = int32(wp.NGhost)
			wp.NGhost++
			ghosts[key] = g
			pr := [2]int{r, w}
			pi, ok := pairIx[pr]
			if !ok {
				pi = len(pairs)
				pairIx[pr] = pi
				pairs = append(pairs, &GatherList{Src: r, Dst: w})
			}
			pairs[pi].Offsets = append(pairs[pi].Offsets, roff)
			pairs[pi].Targets = append(pairs[pi].Targets, g)
		}
		wp.Reads = append(wp.Reads, -(g + 1))
	}
	// Deterministic pair order: sort by (Src, Dst). Insertion order
	// already groups each pair's elements in first-need order.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	s.Pairs = make([]GatherList, len(pairs))
	for i, pl := range pairs {
		s.Pairs[i] = *pl
	}
	return s, nil
}

// GhostElements reports the total deduplicated halo traffic per
// execution.
func (s *Schedule) GhostElements() int {
	total := 0
	for _, pr := range s.Pairs {
		total += len(pr.Offsets)
	}
	return total
}

// Messages reports the number of aggregated messages per execution.
func (s *Schedule) Messages() int { return len(s.Pairs) }

// ErrReplicated is the shared error text for irregular statements
// over replicated arrays: they have no single-owner grid, so the
// inspector's ownership partition does not exist. Both engines refuse
// with this same message so differential tests see identical errors.
const ErrReplicated = "irregular schedule requires single-owner mappings"
