// Package elastic is the failure-recovery layer over the spmd engine:
// it runs a deterministic epoch-structured job fault-tolerantly by
// combining the transport's failure detection (*MemberLostError from
// heartbeats, liveness stamps or dead connections), the engine's
// epoch-aligned checkpoints (package ckpt), and generation-bumped
// rejoin. One detected member loss means a rolled-back epoch, not a
// dead job:
//
//	detect — a member dies (SIGKILL, wedged host, scripted chaos
//	  fault); every survivor's transport latches the same sticky
//	  *MemberLostError and the running epoch aborts.
//	rebuild — each process closes its failed engine, bumps the job
//	  generation and redials the rendezvous with jittered backoff.
//	  The leader publishes the new generation in the spill directory
//	  so a freshly respawned replacement (which has no memory of the
//	  job) joins at the right generation instead of being refused as
//	  stale.
//	restore — the job's deterministic prologue is re-run on the
//	  fresh engine (same arrays, same schedules), the last published
//	  checkpoint is read back — shards are rank-keyed, so the data
//	  remaps onto the new membership for free — and the counter
//	  aggregate is folded in, rolling the whole job back to the
//	  checkpointed epoch.
//	replay — execution resumes from that epoch. Final values and
//	  the logical machine.Report are identical to an uninterrupted
//	  run, which is what cmd/hpfnode verifies against the in-process
//	  engine.
//
// The driver also marks epoch boundaries on transports that accept
// them (transport.EpochMarker), which is how the chaos wire injects
// its scripted faults deterministically in ordinary go tests.
package elastic

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
	"hpfnt/internal/transport"
)

// Job is one prepared epoch-structured computation: the arrays in
// checkpoint order, a Step function advancing it by k epochs, and a
// Finish computing the result collectives (whose outputs the caller
// captures by closure). Prepare must be deterministic — re-running it
// on a fresh engine must rebuild identical arrays and schedules — so
// a checkpoint restored into Arrays reproduces the exact mid-job
// state.
type Job struct {
	Arrays []engine.Array
	Step   func(k int) error
	Finish func() error
}

// Config drives one fault-tolerant job.
type Config struct {
	// Dial joins the job's wire at the given generation (e.g. a
	// transport.NewTCP or NewShm closure, or NewInproc for a
	// single-process job). Called once per attempt.
	Dial func(gen int) (transport.Transport, error)
	// Wrap optionally wraps each attempt's transport, e.g. with
	// transport.NewChaos for fault injection. gen is the attempt's
	// generation. Nil means no wrapping.
	Wrap func(tr transport.Transport, gen int) transport.Transport
	// Prepare re-runs the job's deterministic prologue on a fresh
	// engine.
	Prepare func(eng engine.Engine) (Job, error)
	// Cost is the engine's counter cost model.
	Cost machine.CostModel
	// Self is this process's index (0 is the leader, which publishes
	// generation bumps in Dir).
	Self int
	// Iters is the total number of epochs to execute.
	Iters int
	// CheckpointEvery checkpoints after every N epochs (0 disables
	// checkpointing; a member loss then replays from epoch 0).
	CheckpointEvery int
	// Dir is the job's spill directory (checkpoints + the generation
	// file). Required for recovery across processes; empty disables
	// both checkpointing and the generation file.
	Dir string
	// Retries bounds recovery attempts (generation bumps). 0 means
	// fail on the first loss.
	Retries int
	// StartGen is the first generation to dial.
	StartGen int
	// EpochTimeout is the per-chunk watchdog: a chunk of epochs that
	// makes no progress for this long fails the transport (and the
	// attempt) instead of hanging the job. 0 disables.
	EpochTimeout time.Duration
	// Logf receives recovery progress lines (nil discards).
	Logf func(format string, args ...any)
}

// Result summarizes a fault-tolerant run.
type Result struct {
	// Generation is the final (successful) generation.
	Generation int
	// Attempts is the number of attempts made (1 = no failure).
	Attempts int
	// Recovered is the number of member-loss recoveries performed.
	Recovered int
	// RestoredEpoch is the epoch restored from checkpoint on the
	// final attempt (-1 when the final attempt started from scratch).
	RestoredEpoch int
}

func (cfg *Config) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// genFile is the leader-published current-generation file in Dir.
const genFile = "generation"

// WriteGeneration atomically publishes gen as the job's current
// generation in the spill directory (leader only).
func WriteGeneration(dir string, gen int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, genFile+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(gen)+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, genFile))
}

// ReadGeneration returns the published current generation, or ok
// false when none has been published.
func ReadGeneration(dir string) (gen int, ok bool) {
	b, err := os.ReadFile(filepath.Join(dir, genFile))
	if err != nil {
		return 0, false
	}
	g, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0, false
	}
	return g, true
}

// Retryable reports whether err is a failure the elastic layer can
// recover from by rebuilding at a bumped generation: a detected
// member loss, a chaos-scripted abrupt kill of this process (the
// in-test analogue of being SIGKILLed and respawned), or the epoch
// watchdog.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if _, ok := transport.AsMemberLost(err); ok {
		return true
	}
	return errors.Is(err, transport.ErrChaosKilled) || errors.Is(err, errWatchdog)
}

var errWatchdog = errors.New("elastic: epoch watchdog expired")

// retries counts member-loss recoveries performed by this process
// across all elastic runs — the recovery-retry counter the /metrics
// endpoint exposes.
var retries atomic.Int64

// Retries reports the process-wide recovery retry count.
func Retries() int64 { return retries.Load() }

// Run executes the job fault-tolerantly: dial, prepare, restore any
// published checkpoint, then alternate epoch chunks with checkpoints
// until Iters epochs have completed and Finish succeeds. On a
// retryable failure it closes the attempt's engine, bumps the
// generation and tries again, up to Retries times.
func Run(cfg Config) (Result, error) {
	res := Result{RestoredEpoch: -1}
	gen := cfg.StartGen
	for attempt := 0; ; attempt++ {
		if cfg.Dir != "" {
			// A respawned replacement process (or a survivor racing
			// the leader's bump) learns the current generation from
			// the leader's published file.
			if g, ok := ReadGeneration(cfg.Dir); ok && g > gen {
				gen = g
			}
		}
		res.Attempts++
		res.Generation = gen
		err := runAttempt(&cfg, gen, &res)
		if err == nil {
			return res, nil
		}
		if !Retryable(err) || attempt >= cfg.Retries {
			return res, err
		}
		// Structured retry line: every recovery decision on one line —
		// the failed generation, the cause (naming the lost peer when
		// one was detected), where the replay will roll back to, and
		// how long this process backs off before redialing.
		backoff := transport.Backoff(attempt, 20*time.Millisecond, 500*time.Millisecond)
		cause := fmt.Sprintf("cause=%q", err)
		if proc, ok := transport.AsMemberLost(err); ok {
			cause = fmt.Sprintf("lost-peer=%d cause=%q", proc, err)
		}
		rollback := "scratch"
		if cfg.CheckpointEvery > 0 && cfg.Dir != "" {
			rollback = "last-checkpoint"
		}
		cfg.logf("elastic: retry attempt=%d generation=%d %s rollback=%s next-generation=%d backoff=%v",
			attempt+1, gen, cause, rollback, gen+1, backoff)
		obs.Instant("recovery", fmt.Sprintf("generation %d failed: %v", gen, err), 0)
		res.Recovered++
		retries.Add(1)
		gen++
		if cfg.Dir != "" && cfg.Self == 0 {
			if werr := WriteGeneration(cfg.Dir, gen); werr != nil {
				return res, fmt.Errorf("elastic: publishing generation %d: %w", gen, werr)
			}
		}
		// Jittered backoff keeps a fleet of rejoining survivors from
		// hammering the rendezvous in lockstep.
		time.Sleep(backoff)
	}
}

// runAttempt runs one generation of the job to completion or failure.
func runAttempt(cfg *Config, gen int, res *Result) error {
	tr, err := cfg.Dial(gen)
	if err != nil {
		// A failed rendezvous usually means the membership is still
		// settling (a replacement not yet up, the leader not yet
		// rebound); it is worth another attempt.
		return &transport.MemberLostError{Proc: -1, Cause: "rendezvous failed", Err: err}
	}
	if cfg.Wrap != nil {
		tr = cfg.Wrap(tr, gen)
	}
	marker, _ := tr.(transport.EpochMarker)
	// Re-seat the process-wide trace epoch at a generation-derived
	// base: a respawned replacement starts its counter at zero while
	// survivors are far ahead, and the replay's dispatches only stay
	// aligned across processes (one epoch number per collective step,
	// everywhere) if every member re-bases on the agreed generation
	// before the first dispatch of the attempt.
	obs.SetEpoch(int64(gen) << 20)
	eng, err := engine.NewSPMDOn(tr, cfg.Cost)
	if err != nil {
		return err
	}
	if gen > cfg.StartGen {
		obs.Instant("recovery", fmt.Sprintf("rejoined at generation %d", gen), 0)
	}
	defer eng.Close()
	eng.Reset()
	job, err := cfg.Prepare(eng)
	if err != nil {
		return err
	}
	epoch := 0
	res.RestoredEpoch = -1
	if cfg.Dir != "" {
		switch e, rerr := eng.Restore(cfg.Dir, job.Arrays); {
		case rerr == nil:
			epoch = e
			res.RestoredEpoch = e
			cfg.logf("elastic: generation %d restored checkpoint at epoch %d", gen, e)
			obs.Instant("recovery", fmt.Sprintf("generation %d rolled back to epoch %d", gen, e), 0)
		case errors.Is(rerr, engine.ErrNoCheckpoint):
			// First attempt, or loss before the first checkpoint:
			// replay from scratch.
		default:
			return rerr
		}
	}
	for epoch < cfg.Iters {
		k := cfg.Iters - epoch
		if cfg.CheckpointEvery > 0 && k > cfg.CheckpointEvery {
			k = cfg.CheckpointEvery
		}
		if marker != nil {
			marker.MarkEpoch(epoch + 1)
		}
		if err := stepWatched(cfg, tr, job, k); err != nil {
			return err
		}
		epoch += k
		if cfg.CheckpointEvery > 0 && epoch < cfg.Iters {
			if err := eng.Checkpoint(cfg.Dir, epoch, job.Arrays); err != nil {
				return err
			}
		}
	}
	if marker != nil {
		marker.MarkEpoch(cfg.Iters + 1)
	}
	return job.Finish()
}

// stepWatched runs one epoch chunk under the watchdog: a chunk that
// neither completes nor fails within EpochTimeout fails the transport
// (unblocking every worker) and the attempt.
func stepWatched(cfg *Config, tr transport.Transport, job Job, k int) error {
	if cfg.EpochTimeout <= 0 {
		return job.Step(k)
	}
	done := make(chan error, 1)
	go func() { done <- job.Step(k) }()
	timer := time.NewTimer(cfg.EpochTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		tr.Fail(fmt.Errorf("%w: no progress in %v", errWatchdog, cfg.EpochTimeout))
		<-done // Step observes the sticky failure and returns
		return fmt.Errorf("%w: no progress in %v", errWatchdog, cfg.EpochTimeout)
	}
}
