package elastic

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
	"hpfnt/internal/transport"
	"hpfnt/internal/workload"
)

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// reference runs the workload uninterrupted on a fresh in-process
// engine.
func reference(t *testing.T, name string, np, n, iters int) workload.NodeResult {
	t.Helper()
	eng, err := engine.NewOn(engine.SPMD, engine.InprocTransport, np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := workload.RunNode(eng, name, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// nodeConfig adapts a node workload to an elastic Config, capturing
// the result via the Finish closure.
func nodeConfig(name string, n int, out *workload.NodeResult) Config {
	return Config{
		Prepare: func(eng engine.Engine) (Job, error) {
			job, err := workload.PrepareNode(eng, name, n)
			if err != nil {
				return Job{}, err
			}
			return Job{
				Arrays: job.Arrays,
				Step:   job.Step,
				Finish: func() error {
					r, err := job.Finish()
					if err != nil {
						return err
					}
					*out = r
					return nil
				},
			}, nil
		},
		Cost: machine.DefaultCost(),
	}
}

func checkIdentical(t *testing.T, got, want workload.NodeResult) {
	t.Helper()
	if got.Report != want.Report {
		t.Fatalf("report after recovery differs:\n  recovered %+v\n  reference %+v", got.Report, want.Report)
	}
	if got.Sum != want.Sum {
		t.Fatalf("reduction after recovery: got %g, want %g", got.Sum, want.Sum)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("value at offset %d after recovery: got %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestRunCleanInproc is the no-fault baseline: the elastic driver on
// a healthy single-process wire must be invisible — one attempt,
// identical results, with and without checkpointing.
func TestRunCleanInproc(t *testing.T) {
	const np, n, iters = 4, 24, 6
	want := reference(t, "heat", np, n, iters)
	for _, every := range []int{0, 2} {
		t.Run(fmt.Sprintf("checkpointEvery=%d", every), func(t *testing.T) {
			var got workload.NodeResult
			cfg := nodeConfig("heat", n, &got)
			cfg.Dial = func(gen int) (transport.Transport, error) { return transport.New(transport.Inproc, np) }
			cfg.Iters = iters
			cfg.CheckpointEvery = every
			if every > 0 {
				cfg.Dir = t.TempDir()
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Attempts != 1 || res.Recovered != 0 {
				t.Fatalf("clean run took %d attempts, %d recoveries", res.Attempts, res.Recovered)
			}
			checkIdentical(t, got, want)
		})
	}
}

// TestRunChaosRecoveryInproc scripts an abrupt death mid-job on the
// inproc wire. Inproc carries no generation, so the test gates the
// chaos wrapper through the Wrap hook — the documented pattern for
// generation-less wires — and the driver must roll back to the last
// checkpoint, replay, and land on results identical to an
// uninterrupted run.
func TestRunChaosRecoveryInproc(t *testing.T) {
	const np, n, iters = 4, 24, 6
	want := reference(t, "heat", np, n, iters)
	plan := &transport.ChaosPlan{DieAtEpoch: 5, DieProc: 0}
	var got workload.NodeResult
	cfg := nodeConfig("heat", n, &got)
	cfg.Dial = func(gen int) (transport.Transport, error) { return transport.New(transport.Inproc, np) }
	cfg.Wrap = func(tr transport.Transport, gen int) transport.Transport {
		if gen != cfg.StartGen {
			return tr // the fault fires only in the first generation
		}
		return transport.NewChaos(tr, plan)
	}
	cfg.Iters = iters
	cfg.CheckpointEvery = 2
	cfg.Dir = t.TempDir()
	cfg.Retries = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Recovered)
	}
	if res.RestoredEpoch != 4 {
		t.Fatalf("restored epoch = %d, want 4 (death at 5, checkpoints every 2)", res.RestoredEpoch)
	}
	checkIdentical(t, got, want)
}

// TestRunChaosRecoveryMesh is the full recovery scenario on both
// multi-process wires, inside one test binary: three members run the
// heat job under the elastic driver, member 1 dies abruptly at a
// scripted epoch, every member (including the victim) rejoins at the
// bumped generation, restores the checkpoint and replays — and the
// final result is identical to an uninterrupted in-process run.
func TestRunChaosRecoveryMesh(t *testing.T) {
	const np, procs, n, iters = 6, 3, 24, 6
	want := reference(t, "heat", np, n, iters)
	for _, wire := range []string{transport.TCP, transport.Shm} {
		t.Run(wire, func(t *testing.T) {
			dir := t.TempDir()
			spill := t.TempDir()
			var addr string
			if wire == transport.TCP {
				addr = freeAddr(t)
			}
			plan := &transport.ChaosPlan{Generation: 1, DieAtEpoch: 3, DieProc: 1}
			results := make([]workload.NodeResult, procs)
			runs := make([]Result, procs)
			errs := make([]error, procs)
			var wg sync.WaitGroup
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cfg := nodeConfig("heat", n, &results[i])
					cfg.Dial = func(gen int) (transport.Transport, error) {
						switch wire {
						case transport.TCP:
							return transport.NewTCP(transport.TCPConfig{Job: "elastic-test", NP: np, Procs: procs, Self: i,
								Generation: gen, Addr: addr, Timeout: 10 * time.Second, Heartbeat: 20 * time.Millisecond})
						default:
							return transport.NewShm(transport.ShmConfig{Job: "elastic-test", NP: np, Procs: procs, Self: i,
								Generation: gen, Dir: dir, Timeout: 10 * time.Second, Heartbeat: 20 * time.Millisecond})
						}
					}
					cfg.Wrap = func(tr transport.Transport, gen int) transport.Transport {
						return transport.NewChaos(tr, plan)
					}
					cfg.Self = i
					cfg.Iters = iters
					cfg.CheckpointEvery = 2
					cfg.Dir = spill
					cfg.Retries = 3
					cfg.StartGen = 1
					cfg.Logf = t.Logf
					runs[i], errs[i] = Run(cfg)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("member %d: %v", i, err)
				}
			}
			for i := 0; i < procs; i++ {
				if runs[i].Recovered < 1 {
					t.Fatalf("member %d recovered %d times, want >= 1", i, runs[i].Recovered)
				}
				if runs[i].Generation < 2 {
					t.Fatalf("member %d finished at generation %d, want >= 2", i, runs[i].Generation)
				}
				if runs[i].RestoredEpoch != 2 {
					t.Fatalf("member %d restored epoch %d, want 2 (death at 3, checkpoints every 2)", i, runs[i].RestoredEpoch)
				}
				checkIdentical(t, results[i], want)
			}
			// Every member must have settled on the same generation.
			for i := 1; i < procs; i++ {
				if runs[i].Generation != runs[0].Generation {
					t.Fatalf("generations diverged: %d vs %d", runs[i].Generation, runs[0].Generation)
				}
			}
		})
	}
}

// TestRunRecoveryWithoutCheckpoints: a loss with no checkpoint
// published replays from epoch 0 and still lands on identical
// results.
func TestRunRecoveryWithoutCheckpoints(t *testing.T) {
	const np, n, iters = 4, 24, 5
	want := reference(t, "heat", np, n, iters)
	// No checkpointing means the job runs as one chunk, so the only
	// epoch mark inside the loop is 1 — script the death there.
	plan := &transport.ChaosPlan{DieAtEpoch: 1, DieProc: 0}
	var got workload.NodeResult
	cfg := nodeConfig("heat", n, &got)
	cfg.Dial = func(gen int) (transport.Transport, error) { return transport.New(transport.Inproc, np) }
	cfg.Wrap = func(tr transport.Transport, gen int) transport.Transport {
		if gen != cfg.StartGen {
			return tr
		}
		return transport.NewChaos(tr, plan)
	}
	cfg.Iters = iters
	cfg.Retries = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 1 || res.RestoredEpoch != -1 {
		t.Fatalf("recovered=%d restoredEpoch=%d, want 1 and -1 (replay from scratch)", res.Recovered, res.RestoredEpoch)
	}
	checkIdentical(t, got, want)
}

// TestRunRetriesExhausted: a fault that fires in every generation
// must surface the retryable error once Retries is spent.
func TestRunRetriesExhausted(t *testing.T) {
	const np = 2
	var got workload.NodeResult
	cfg := nodeConfig("heat", 16, &got)
	cfg.Dial = func(gen int) (transport.Transport, error) { return transport.New(transport.Inproc, np) }
	cfg.Wrap = func(tr transport.Transport, gen int) transport.Transport {
		// Unconditional: the fault re-fires after every rejoin.
		return transport.NewChaos(tr, &transport.ChaosPlan{DieAtEpoch: 1, DieProc: 0})
	}
	cfg.Iters = 4
	cfg.Retries = 2
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("run succeeded despite a fault firing in every generation")
	}
	if !Retryable(err) {
		t.Fatalf("surfaced error %v is not the retryable failure", err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", res.Attempts)
	}
}

// TestRunWatchdog: a chunk that stops making progress must be failed
// by the epoch watchdog instead of hanging the job.
func TestRunWatchdog(t *testing.T) {
	const np = 2
	var tr transport.Transport
	cfg := Config{
		Dial: func(gen int) (transport.Transport, error) { return transport.New(transport.Inproc, np) },
		Wrap: func(inner transport.Transport, gen int) transport.Transport { tr = inner; return inner },
		Prepare: func(eng engine.Engine) (Job, error) {
			return Job{
				Step: func(k int) error {
					// A wedged chunk: blocks until the transport is
					// failed (as a real engine collective would).
					for tr.Err() == nil {
						time.Sleep(time.Millisecond)
					}
					return tr.Err()
				},
				Finish: func() error { return nil },
			}, nil
		},
		Cost:         machine.DefaultCost(),
		Iters:        1,
		EpochTimeout: 50 * time.Millisecond,
	}
	start := time.Now()
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("wedged job completed")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error %v, want the watchdog", err)
	}
	if !Retryable(err) {
		t.Fatal("watchdog expiry must be retryable")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
}

// TestGenerationFile pins the leader-published generation protocol.
func TestGenerationFile(t *testing.T) {
	dir := t.TempDir()
	if _, ok := ReadGeneration(dir); ok {
		t.Fatal("empty dir reports a generation")
	}
	if err := WriteGeneration(dir, 3); err != nil {
		t.Fatal(err)
	}
	if g, ok := ReadGeneration(dir); !ok || g != 3 {
		t.Fatalf("ReadGeneration = (%d, %v), want (3, true)", g, ok)
	}
	if err := WriteGeneration(dir, 4); err != nil {
		t.Fatal(err)
	}
	if g, _ := ReadGeneration(dir); g != 4 {
		t.Fatalf("generation not overwritten: %d", g)
	}
}

// TestRetryable pins the recovery classification.
func TestRetryable(t *testing.T) {
	if Retryable(nil) {
		t.Fatal("nil is retryable")
	}
	if Retryable(errors.New("plain")) {
		t.Fatal("a plain error is retryable")
	}
	if !Retryable(&transport.MemberLostError{Proc: 1, Cause: "test"}) {
		t.Fatal("member loss is not retryable")
	}
	if !Retryable(fmt.Errorf("wrapped: %w", transport.ErrChaosKilled)) {
		t.Fatal("chaos kill is not retryable")
	}
}
