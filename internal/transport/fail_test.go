package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStickyFailureAllOpsAllKinds pins the sticky-failure contract on
// every wire: after Fail, the first error wins and stays, and every
// Send/Recv/Bcast/Barrier on every rank — issued concurrently from
// many goroutines — returns promptly instead of blocking, with
// Barrier and Err reporting that same first error.
func TestStickyFailureAllOpsAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			const np = 4
			tr, err := New(kind, np)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			boom := errors.New("boom")
			tr.Fail(boom)
			tr.Fail(errors.New("second failure must not overwrite the first"))
			if got := tr.Err(); !errors.Is(got, boom) {
				t.Fatalf("Err() = %v, want the first failure", got)
			}
			done := make(chan struct{})
			var wg sync.WaitGroup
			errc := make(chan error, 4*np*np)
			for s := 1; s <= np; s++ {
				for d := 1; d <= np; d++ {
					wg.Add(4)
					go func(s, d int) {
						defer wg.Done()
						tr.Send(s, d, []float64{float64(s), float64(d)})
					}(s, d)
					go func(s, d int) {
						defer wg.Done()
						if msg := tr.Recv(s, d); msg != nil {
							errc <- fmt.Errorf("Recv(%d,%d) on failed transport returned %v, want nil", s, d, msg)
						}
					}(s, d)
					go func(s, d int) {
						defer wg.Done()
						tr.Bcast(0, []float64{float64(s * d)})
					}(s, d)
					go func(s, d int) {
						defer wg.Done()
						if err := tr.Barrier(); !errors.Is(err, boom) {
							errc <- fmt.Errorf("Barrier on failed transport = %v, want the first failure", err)
						}
					}(s, d)
				}
			}
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("operations still blocked on a failed transport")
			}
			close(errc)
			for err := range errc {
				t.Error(err)
			}
			if got := tr.Err(); !errors.Is(got, boom) {
				t.Fatalf("Err() after concurrent ops = %v, want the first failure", got)
			}
			if h := tr.Status(); h.Err == nil {
				t.Fatal("Status().Err nil on a failed transport")
			}
		})
	}
}

// TestStatusHealthy checks the membership view on a healthy transport
// of every kind.
func TestStatusHealthy(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr, err := New(kind, 3)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			h := tr.Status()
			if h.Procs != 1 || h.Self != 0 {
				t.Fatalf("Status() = %+v, want a single-process view", h)
			}
			if len(h.Alive) != h.Procs || !h.Alive[0] {
				t.Fatalf("Alive = %v, want self alive", h.Alive)
			}
			if h.Err != nil {
				t.Fatalf("healthy transport reports Err %v", h.Err)
			}
			if lost := h.Lost(); len(lost) != 0 {
				t.Fatalf("healthy transport reports lost members %v", lost)
			}
		})
	}
}

// TestMemberLostError checks the loss-signal plumbing: wrapping,
// unwrapping and the AsMemberLost helper.
func TestMemberLostError(t *testing.T) {
	cause := errors.New("read: connection reset")
	err := fmt.Errorf("epoch 7: %w", &MemberLostError{Proc: 2, Cause: "connection lost", Err: cause})
	proc, ok := AsMemberLost(err)
	if !ok || proc != 2 {
		t.Fatalf("AsMemberLost = (%d, %v), want (2, true)", proc, ok)
	}
	if !errors.Is(err, cause) {
		t.Fatal("MemberLostError does not unwrap to its cause")
	}
	if _, ok := AsMemberLost(errors.New("plain")); ok {
		t.Fatal("AsMemberLost matched a plain error")
	}
	if _, ok := AsMemberLost(nil); ok {
		t.Fatal("AsMemberLost matched nil")
	}
}

// TestBackoff checks the jittered-exponential-backoff envelope: each
// attempt's delay stays within ±25% of base·2^attempt, capped at max.
func TestBackoff(t *testing.T) {
	const base, max = 10 * time.Millisecond, 200 * time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		for trial := 0; trial < 50; trial++ {
			d := Backoff(attempt, base, max)
			if d < want-want/4 || d > want+want/4 {
				t.Fatalf("Backoff(%d) = %v, outside [%v, %v]", attempt, d, want-want/4, want+want/4)
			}
		}
	}
}
