package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"hpfnt/internal/obs"
)

// Causal message correlation. Every physical data frame on every wire
// carries a compact 8-byte correlation word so a send and its matched
// recv — possibly in different OS processes — can be stitched back
// together in a merged trace as a Perfetto flow arrow:
//
//	corr = epoch<<32 | seq
//
// where epoch is the sender's execution epoch (obs.CurrentEpoch — the
// replicated control flow keeps it consistent across processes) and
// seq the per-ordered-pair send sequence number. The word rides the
// frame header on the multi-process wires ([4]len [8]corr on shm,
// after src/dst in a tcp data frame) and the message struct on inproc,
// never the payload, so values and logical machine.Reports stay
// byte-identical with correlation on. Stamping costs one atomic add
// per send; trace events are only emitted when a recorder is
// installed.

// pairSeq holds the per-ordered-pair send sequence counters of one
// transport incarnation.
type pairSeq struct {
	np  int
	seq []atomic.Uint64
}

func newPairSeq(np int) *pairSeq {
	return &pairSeq{np: np, seq: make([]atomic.Uint64, np*np)}
}

// next returns the next sequence number of the ordered (src,dst)
// stream (1-based ranks).
func (p *pairSeq) next(src, dst int) uint64 {
	return p.seq[(src-1)*p.np+(dst-1)].Add(1)
}

// packCorr packs an epoch and a pair sequence number into the 8-byte
// correlation word.
func packCorr(epoch int64, seq uint64) uint64 {
	return uint64(epoch)<<32 | (seq & 0xffffffff)
}

// CorrEpoch extracts the sender's execution epoch from a correlation
// word.
func CorrEpoch(corr uint64) int64 { return int64(corr >> 32) }

// CorrSeq extracts the per-pair sequence number from a correlation
// word.
func CorrSeq(corr uint64) uint64 { return corr & 0xffffffff }

// FlowID derives the trace flow identifier binding a send/recv pair:
// an FNV-1a hash over (generation, src, dst, corr). Both ends derive
// the same ID from the frame alone, and including the generation keeps
// flows distinct when a recovery bump resets the sequence counters —
// otherwise a pre-kill send could arrow into a post-rejoin recv.
func FlowID(gen, src, dst int, corr uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(gen))
	mix(uint64(src)<<32 | uint64(dst))
	mix(corr)
	if h == 0 {
		h = 1 // 0 means "no flow" in obs.Event
	}
	return h
}

// nextCorr stamps the correlation word for one send on the ordered
// (src,dst) stream.
func (p *pairSeq) nextCorr(src, dst int) uint64 {
	return packCorr(obs.CurrentEpoch(), p.next(src, dst))
}

// traceMsg emits one side of a message span pair onto the global
// recorder. kind is "send" or "recv"; start is when the operation
// began blocking, so a recv span's duration is the wait the message
// chain imposed — exactly what the critical-path analysis sums. Only
// call when obs.TraceEnabled().
func traceMsg(kind string, gen, src, dst, elems int, corr uint64, start time.Time) {
	rank := src
	if kind == "recv" {
		rank = dst
	}
	dur := int64(time.Since(start))
	if dur <= 0 {
		dur = 1 // keep the event an "X" slice so flow arrows can bind
	}
	obs.Emit(obs.Event{
		Kind:  kind,
		Name:  fmt.Sprintf("msg %d->%d #%d (%d elems)", src, dst, CorrSeq(corr), elems),
		Rank:  rank,
		Start: start.UnixNano(),
		Dur:   dur,
		Epoch: CorrEpoch(corr),
		Flow:  FlowID(gen, src, dst, corr),
	})
}
