package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// chaosOn wraps a fresh single-process transport of the given kind.
func chaosOn(t *testing.T, kind string, np int, plan *ChaosPlan) Transport {
	t.Helper()
	inner, err := New(kind, np)
	if err != nil {
		t.Fatal(err)
	}
	return NewChaos(inner, plan)
}

// TestChaosDelegatesCleanly checks that an unarmed chaos wrapper is a
// faithful transport on every wire: traffic, collectives and health
// pass straight through.
func TestChaosDelegatesCleanly(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr := chaosOn(t, kind, 4, &ChaosPlan{Generation: 99}) // never armed
			defer tr.Close()
			if tr.Kind() != kind || tr.NP() != 4 {
				t.Fatalf("identity: kind=%s np=%d", tr.Kind(), tr.NP())
			}
			exerciseStreams(t, tr)
			tr.(EpochMarker).MarkEpoch(1000) // plan at wrong generation: no-op
			if err := tr.Barrier(); err != nil {
				t.Fatalf("barrier through chaos wrapper: %v", err)
			}
			if h := tr.Status(); h.Err != nil {
				t.Fatalf("unarmed chaos wrapper reports Err %v", h.Err)
			}
		})
	}
}

// TestChaosScriptedKill checks the detected-loss fault on every wire:
// at the scripted epoch the wrapper latches a *MemberLostError for
// the scripted process, exactly once, and only at the plan's
// generation.
func TestChaosScriptedKill(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr := chaosOn(t, kind, 2, &ChaosPlan{KillAtEpoch: 5, KillProc: 0})
			defer tr.Close()
			m := tr.(EpochMarker)
			m.MarkEpoch(4)
			if err := tr.Err(); err != nil {
				t.Fatalf("fault fired before its epoch: %v", err)
			}
			m.MarkEpoch(5)
			proc, ok := AsMemberLost(tr.Err())
			if !ok || proc != 0 {
				t.Fatalf("Err after scripted kill = %v, want member-lost for process 0", tr.Err())
			}
		})
	}
}

// TestChaosDie checks the abrupt-death fault on the single-process
// wires: the transport dies with no goodbye (ErrChaosKilled locally),
// and Send/Recv/Barrier afterwards return instead of blocking.
func TestChaosDie(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr := chaosOn(t, kind, 2, &ChaosPlan{DieAtEpoch: 3, DieProc: 0})
			defer tr.Close()
			tr.(EpochMarker).MarkEpoch(3)
			deadline := time.Now().Add(5 * time.Second)
			for tr.Err() == nil {
				if time.Now().After(deadline) {
					t.Fatal("no failure latched after scripted death")
				}
				time.Sleep(time.Millisecond)
			}
			done := make(chan struct{})
			go func() {
				tr.Send(1, 2, []float64{1})
				tr.Recv(1, 2)
				tr.Barrier()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("operations blocked on a dead transport")
			}
		})
	}
}

// TestChaosDelayPreservesOrder checks that scripted send delays slow
// the wire without reordering or dropping messages.
func TestChaosDelayPreservesOrder(t *testing.T) {
	tr := chaosOn(t, Inproc, 2, &ChaosPlan{DelayEvery: 2, Delay: time.Millisecond})
	defer tr.Close()
	const msgs = 10
	go func() {
		for k := 0; k < msgs; k++ {
			tr.Send(1, 2, []float64{float64(k)})
		}
	}()
	for k := 0; k < msgs; k++ {
		got := tr.Recv(1, 2)
		if len(got) != 1 || got[0] != float64(k) {
			t.Fatalf("message %d: got %v", k, got)
		}
	}
}

// chaosMesh bootstraps a procs-member mesh of the given wire inside
// this test binary, every member wrapped with the same chaos plan.
func chaosMesh(t *testing.T, wire string, np, procs, gen int, dir, addr string, plan *ChaosPlan) []Transport {
	t.Helper()
	trs := make([]Transport, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var tr Transport
			var err error
			switch wire {
			case TCP:
				tr, err = NewTCP(TCPConfig{Job: "chaos-test", NP: np, Procs: procs, Self: i, Generation: gen,
					Addr: addr, Timeout: 10 * time.Second, Heartbeat: 20 * time.Millisecond})
			case Shm:
				tr, err = NewShm(ShmConfig{Job: "chaos-test", NP: np, Procs: procs, Self: i, Generation: gen,
					Dir: dir, Timeout: 10 * time.Second, Heartbeat: 20 * time.Millisecond})
			}
			if err == nil {
				tr = NewChaos(tr, plan)
			}
			trs[i] = tr
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("generation %d process %d bootstrap: %v", gen, i, err)
		}
	}
	return trs
}

// TestChaosDieRejoin is the in-binary die/rejoin scenario on both
// multi-process wires: a 3-member mesh loses member 1 to a scripted
// abrupt death (no goodbye — the survivors' failure detectors must
// discover it), every member observes a failure, and all three
// rebuild a healthy mesh at the bumped generation where the same plan
// no longer fires.
func TestChaosDieRejoin(t *testing.T) {
	for _, wire := range []string{TCP, Shm} {
		t.Run(wire, func(t *testing.T) {
			const np, procs = 6, 3
			dir := t.TempDir()
			var addr string
			if wire == TCP {
				addr = freeAddr(t)
			}
			plan := &ChaosPlan{Generation: 1, DieAtEpoch: 2, DieProc: 1}
			trs := chaosMesh(t, wire, np, procs, 1, dir, addr, plan)
			// Drive epochs: a barrier per epoch, the death scripted at
			// epoch 2. Every member must end with an error rather than
			// hang — ErrChaosKilled on the victim, a detected loss (or
			// the shared failure) on the survivors.
			var wg sync.WaitGroup
			failures := make([]error, procs)
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					tr := trs[i]
					for epoch := 1; epoch <= 50; epoch++ {
						tr.(EpochMarker).MarkEpoch(epoch)
						if err := tr.Barrier(); err != nil {
							failures[i] = err
							return
						}
						time.Sleep(5 * time.Millisecond)
					}
				}(i)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("mesh hung instead of failing after the scripted death")
			}
			if !errors.Is(failures[1], ErrChaosKilled) {
				t.Fatalf("victim failure = %v, want ErrChaosKilled", failures[1])
			}
			for _, i := range []int{0, 2} {
				if failures[i] == nil {
					t.Fatalf("survivor %d observed no failure", i)
				}
			}
			for _, tr := range trs {
				tr.Close()
			}
			// Rejoin at the bumped generation: the same plan is no
			// longer armed, so the rebuilt mesh runs clean.
			trs = chaosMesh(t, wire, np, procs, 2, dir, addr, plan)
			perr := make(chan error, procs)
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					tr := trs[i]
					for epoch := 1; epoch <= 4; epoch++ {
						tr.(EpochMarker).MarkEpoch(epoch)
						if err := tr.Barrier(); err != nil {
							perr <- fmt.Errorf("rejoined process %d epoch %d: %v", i, epoch, err)
							return
						}
					}
					if h := tr.Status(); h.Err != nil || len(h.Lost()) != 0 {
						perr <- fmt.Errorf("rejoined process %d unhealthy: %+v", i, h)
					}
				}(i)
			}
			wg.Wait()
			close(perr)
			for err := range perr {
				t.Error(err)
			}
			for _, tr := range trs {
				tr.Close()
			}
		})
	}
}

// TestChaosDropConnTCP severs one raw mesh connection mid-job: both
// ends of the dead socket must attribute the loss to the right peer.
func TestChaosDropConnTCP(t *testing.T) {
	const np, procs = 4, 2
	addr := freeAddr(t)
	plan := &ChaosPlan{Generation: 1, DropConnAtEpoch: 1, DropPeer: 1}
	trs := chaosMesh(t, TCP, np, procs, 1, t.TempDir(), addr, plan)
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	// Only process 0 executes the drop (its plan names peer 1).
	trs[0].(EpochMarker).MarkEpoch(1)
	deadline := time.Now().Add(10 * time.Second)
	for i, wantPeer := range []int{1, 0} {
		for {
			if proc, ok := AsMemberLost(trs[i].Err()); ok {
				if proc != wantPeer {
					t.Fatalf("process %d attributed loss to %d, want %d", i, proc, wantPeer)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("process %d never detected the severed connection (err=%v)", i, trs[i].Err())
			}
			time.Sleep(time.Millisecond)
		}
	}
}
