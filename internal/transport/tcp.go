package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hpfnt/internal/obs"
)

// The tcp transport's frame kinds. Every frame is length-prefixed:
// a uint32 byte length covering the kind byte and the body, then the
// kind, then the body (all integers little-endian, floats as IEEE-754
// bit patterns).
const (
	frameHello   = byte(1) // handshake: proto, generation, np, procs, sender proc, job, listen addr
	frameRoster  = byte(2) // leader → peers: the peer listener addresses
	frameData    = byte(3) // rank pair stream: src, dst, corr, payload floats
	frameBcast   = byte(4) // process collective: from proc, payload floats
	frameBarrier = byte(5) // peer → leader: barrier arrival
	frameRelease = byte(6) // leader → peers: barrier release
	frameHeart   = byte(7) // keepalive; any frame refreshes the peer's liveness stamp
)

// tcpProto is the handshake protocol version; mismatches are rejected
// at join time. Version 2 added the 8-byte correlation word to data
// frames.
const tcpProto = 2

// hello subkinds: a join (process → leader rendezvous) or a peer data
// connection (mesh fill-in between non-leader processes).
const (
	helloJoin = byte(1)
	helloPeer = byte(2)
)

// TCPConfig describes one process's membership in a named tcp job.
type TCPConfig struct {
	// Job names the job; all members must agree.
	Job string
	// NP is the abstract processor (rank) count.
	NP int
	// Procs is the number of participating OS processes.
	Procs int
	// Self is this process's index in 0..Procs-1. Process 0 is the
	// leader: it binds Addr and runs the rendezvous.
	Self int
	// Generation distinguishes successive runs of the same job name;
	// a worker from a stale generation is refused at the handshake.
	Generation int
	// Addr is the leader's rendezvous address (host:port). The leader
	// binds it; everyone else dials it.
	Addr string
	// Timeout bounds the whole bootstrap (dial retries, accepts,
	// handshakes). Zero means 30s.
	Timeout time.Duration
	// Heartbeat is the keepalive interval on every mesh connection.
	// Zero means 250ms.
	Heartbeat time.Duration
	// FailAfter is how long a peer may stay silent before it is
	// declared lost with a *MemberLostError. Zero means 8×Heartbeat.
	FailAfter time.Duration
}

func (cfg *TCPConfig) heartbeat() time.Duration {
	if cfg.Heartbeat > 0 {
		return cfg.Heartbeat
	}
	return 250 * time.Millisecond
}

func (cfg *TCPConfig) failAfter() time.Duration {
	if cfg.FailAfter > 0 {
		return cfg.FailAfter
	}
	return 8 * cfg.heartbeat()
}

// tconn is one connection with its buffered, mutex-serialized writer.
// All frames from this process to the peer process go through it, so
// per-rank-pair FIFO order is preserved (a pair's sender rank is
// hosted by exactly one process).
type tconn struct {
	c   net.Conn
	bw  *bufio.Writer
	br  *bufio.Reader // single reader, shared by handshake and readLoop
	wmu sync.Mutex
}

// newTconn wraps a connection. The buffered reader is created once
// and reused from handshake through readLoop: a fresh reader after
// the handshake would silently drop any frames the kernel delivered
// in the same segment as the handshake reply.
func newTconn(c net.Conn) *tconn {
	return &tconn{c: c, bw: bufio.NewWriter(c), br: bufio.NewReader(c)}
}

func (c *tconn) writeFrame(kind byte, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = kind
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(body); err != nil {
		return err
	}
	return c.bw.Flush()
}

// readFrame reads one length-prefixed frame.
func readFrame(br *bufio.Reader) (kind byte, body []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > 1<<30 {
		return 0, nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(br, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

func floatsToBytes(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

func bytesToFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// hello is the decoded handshake frame.
type hello struct {
	sub        byte
	generation int
	np, procs  int
	from       int
	job        string
	addr       string
}

func encodeHello(h hello) []byte {
	body := []byte{h.sub}
	var u [4]byte
	put := func(v int) {
		binary.LittleEndian.PutUint32(u[:], uint32(v))
		body = append(body, u[:]...)
	}
	put(tcpProto)
	put(h.generation)
	put(h.np)
	put(h.procs)
	put(h.from)
	putStr := func(s string) {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
		body = append(body, l[:]...)
		body = append(body, s...)
	}
	putStr(h.job)
	putStr(h.addr)
	return body
}

func decodeHello(body []byte) (hello, error) {
	var h hello
	if len(body) < 21 {
		return h, fmt.Errorf("transport: short hello (%d bytes)", len(body))
	}
	h.sub = body[0]
	get := func(off int) int { return int(binary.LittleEndian.Uint32(body[off:])) }
	if proto := get(1); proto != tcpProto {
		return h, fmt.Errorf("transport: protocol version %d, want %d", proto, tcpProto)
	}
	h.generation = get(5)
	h.np = get(9)
	h.procs = get(13)
	h.from = get(17)
	rest := body[21:]
	getStr := func() (string, error) {
		if len(rest) < 2 {
			return "", fmt.Errorf("transport: truncated hello string")
		}
		n := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return "", fmt.Errorf("transport: truncated hello string")
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	var err error
	if h.job, err = getStr(); err != nil {
		return h, err
	}
	if h.addr, err = getStr(); err != nil {
		return h, err
	}
	return h, nil
}

// tcpTransport carries rank streams over localhost sockets. In
// multi-process jobs each process pair shares one connection and
// same-process traffic short-circuits through mailboxes; in loopback
// mode (NewTCPLoop) the single process dials itself so every message
// still crosses a real socket, exercising the framing, encoding and
// demux paths end to end.
type tcpTransport struct {
	cfg TCPConfig
	wireTally
	ln     net.Listener
	conns  []*tconn // by peer process index; conns[Self] is nil
	loop   *tconn   // loopback write side (single-process mode only)
	loopIn *tconn   // loopback read side

	boxes  [][]*mailbox // [src-1][dst-1] for streams received here
	bcastQ []*mailbox   // per source process index
	ps     *pairSeq     // per-pair send sequence for correlation IDs

	arrive  chan int      // leader: barrier arrivals
	release chan struct{} // peers: barrier releases

	// lastHeard[i] is the UnixNano of the last frame (of any kind)
	// read from process i; refreshed by readLoop, watched by the
	// heartbeat monitor.
	lastHeard []atomic.Int64
	hbStop    chan struct{}
	hbOnce    sync.Once

	fb     *failBox
	closed atomic.Bool
	wg     sync.WaitGroup
	once   sync.Once
}

func newTCPState(cfg TCPConfig) *tcpTransport {
	t := &tcpTransport{cfg: cfg, ps: newPairSeq(cfg.NP), fb: newFailBox(), hbStop: make(chan struct{})}
	t.conns = make([]*tconn, cfg.Procs)
	t.lastHeard = make([]atomic.Int64, cfg.Procs)
	t.boxes = make([][]*mailbox, cfg.NP)
	for s := range t.boxes {
		t.boxes[s] = make([]*mailbox, cfg.NP)
		for d := range t.boxes[s] {
			t.boxes[s][d] = newMailbox()
		}
	}
	t.bcastQ = make([]*mailbox, cfg.Procs)
	for i := range t.bcastQ {
		t.bcastQ[i] = newMailbox()
	}
	t.arrive = make(chan int, cfg.Procs)
	t.release = make(chan struct{}, cfg.Procs)
	return t
}

func (cfg *TCPConfig) validate(needAddr bool) error {
	if cfg.NP < 1 {
		return fmt.Errorf("transport: rank count must be positive, got %d", cfg.NP)
	}
	if cfg.Procs < 1 || cfg.Procs > cfg.NP {
		return fmt.Errorf("transport: process count %d out of range 1..%d", cfg.Procs, cfg.NP)
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Procs {
		return fmt.Errorf("transport: process index %d out of range 0..%d", cfg.Self, cfg.Procs-1)
	}
	if needAddr && cfg.Procs > 1 && cfg.Addr == "" {
		return fmt.Errorf("transport: a multi-process job needs a rendezvous address")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	return nil
}

// NewTCPLoop creates the single-process tcp transport over np ranks:
// all rank streams run through one self-dialled localhost connection,
// so the wire format is exercised without a second process.
func NewTCPLoop(np int) (Transport, error) {
	cfg := TCPConfig{Job: "loop", NP: np, Procs: 1, Self: 0}
	if err := cfg.validate(false); err != nil {
		return nil, err
	}
	t := newTCPState(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t.ln = ln
	accepted := make(chan net.Conn, 1)
	acceptErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		accepted <- c
	}()
	out, err := net.DialTimeout("tcp", ln.Addr().String(), cfg.Timeout)
	if err != nil {
		ln.Close()
		return nil, err
	}
	var in net.Conn
	select {
	case in = <-accepted:
	case err := <-acceptErr:
		out.Close()
		ln.Close()
		return nil, err
	}
	t.loop = newTconn(out)
	t.loopIn = newTconn(in)
	// Handshake across the loop, so the hello path is covered too.
	if err := t.loop.writeFrame(frameHello, encodeHello(hello{sub: helloJoin, np: np, procs: 1, job: cfg.Job})); err != nil {
		t.teardown()
		return nil, err
	}
	if err := t.expectHello(t.loopIn.br, helloJoin, 0); err != nil {
		t.teardown()
		return nil, err
	}
	t.wg.Add(1)
	go t.readLoop(-1, t.loopIn, t.loopIn.br)
	return t, nil
}

// NewTCP joins a named multi-process job: process 0 binds the
// rendezvous address and collects one join handshake per peer, sends
// everyone the peer-listener roster, and the peers fill in the
// connection mesh among themselves (higher process index dials
// lower). Returns once this process is fully meshed and the initial
// job barrier has completed.
func NewTCP(cfg TCPConfig) (Transport, error) {
	if err := cfg.validate(true); err != nil {
		return nil, err
	}
	if cfg.Procs == 1 {
		return NewTCPLoop(cfg.NP)
	}
	t := newTCPState(cfg)
	deadline := time.Now().Add(cfg.Timeout)
	var err error
	if cfg.Self == 0 {
		err = t.bootstrapLeader(deadline)
	} else {
		err = t.bootstrapPeer(deadline)
	}
	if err != nil {
		t.teardown()
		return nil, err
	}
	for i, c := range t.conns {
		if i == cfg.Self || c == nil {
			continue
		}
		t.wg.Add(1)
		go t.readLoop(i, c, c.br)
	}
	t.startHeartbeats()
	if err := t.Barrier(); err != nil {
		t.teardown()
		return nil, fmt.Errorf("transport: job %q initial barrier: %w", cfg.Job, err)
	}
	return t, nil
}

// startHeartbeats launches the keepalive sender + staleness monitor:
// every Heartbeat interval a heart frame goes out on each mesh
// connection, and a peer whose liveness stamp is older than FailAfter
// is declared lost via a sticky *MemberLostError. This is what turns
// a SIGKILLed member into a detected failure instead of a hang.
func (t *tcpTransport) startHeartbeats() {
	if t.cfg.Procs == 1 {
		return
	}
	now := time.Now().UnixNano()
	for i := range t.lastHeard {
		t.lastHeard[i].Store(now)
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(t.cfg.heartbeat())
		defer tick.Stop()
		limit := int64(t.cfg.failAfter())
		for {
			select {
			case <-t.hbStop:
				return
			case <-t.fb.stop:
				return
			case <-tick.C:
			}
			for i, c := range t.conns {
				if i == t.cfg.Self || c == nil {
					continue
				}
				// Write errors are ignored here: the connection's
				// readLoop attributes the loss to the right peer.
				c.writeFrame(frameHeart, nil)
			}
			now := time.Now().UnixNano()
			for i := range t.lastHeard {
				if i == t.cfg.Self {
					continue
				}
				if now-t.lastHeard[i].Load() > limit {
					t.Fail(&MemberLostError{Proc: i, Cause: "heartbeats stale"})
					return
				}
			}
		}
	}()
}

func (t *tcpTransport) stopHeartbeats() {
	t.hbOnce.Do(func() { close(t.hbStop) })
}

// expectHello reads and validates one handshake frame.
func (t *tcpTransport) expectHello(br *bufio.Reader, sub byte, wantFrom int) error {
	kind, body, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("transport: reading hello: %w", err)
	}
	if kind != frameHello {
		return fmt.Errorf("transport: expected hello frame, got kind %d", kind)
	}
	h, err := decodeHello(body)
	if err != nil {
		return err
	}
	cfg := &t.cfg
	switch {
	case h.sub != sub:
		return fmt.Errorf("transport: hello subkind %d, want %d", h.sub, sub)
	case h.job != cfg.Job:
		return fmt.Errorf("transport: hello for job %q, want %q", h.job, cfg.Job)
	case h.generation != cfg.Generation:
		return fmt.Errorf("transport: job %q generation %d, want %d (stale worker?)", h.job, h.generation, cfg.Generation)
	case h.np != cfg.NP || h.procs != cfg.Procs:
		return fmt.Errorf("transport: job %q shape %d ranks/%d procs, want %d/%d", h.job, h.np, h.procs, cfg.NP, cfg.Procs)
	case wantFrom >= 0 && h.from != wantFrom:
		return fmt.Errorf("transport: hello from process %d, want %d", h.from, wantFrom)
	}
	return nil
}

// readHelloFrom reads a hello, returning the sender's process index
// and advertised listen address.
func (t *tcpTransport) readHelloFrom(br *bufio.Reader, sub byte) (int, string, error) {
	kind, body, err := readFrame(br)
	if err != nil {
		return 0, "", fmt.Errorf("transport: reading hello: %w", err)
	}
	if kind != frameHello {
		return 0, "", fmt.Errorf("transport: expected hello frame, got kind %d", kind)
	}
	h, err := decodeHello(body)
	if err != nil {
		return 0, "", err
	}
	cfg := &t.cfg
	if h.sub != sub || h.job != cfg.Job || h.generation != cfg.Generation || h.np != cfg.NP || h.procs != cfg.Procs {
		return 0, "", fmt.Errorf("transport: job %q rejected handshake (sub %d job %q gen %d shape %d/%d)", cfg.Job, h.sub, h.job, h.generation, h.np, h.procs)
	}
	if h.from < 1 || h.from >= cfg.Procs {
		return 0, "", fmt.Errorf("transport: hello from out-of-range process %d", h.from)
	}
	return h.from, h.addr, nil
}

func (t *tcpTransport) bootstrapLeader(deadline time.Time) error {
	ln, err := net.Listen("tcp", t.cfg.Addr)
	if err != nil {
		return fmt.Errorf("transport: leader bind %s: %w", t.cfg.Addr, err)
	}
	t.ln = ln
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	addrs := make([]string, t.cfg.Procs)
	for joined := 1; joined < t.cfg.Procs; {
		c, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: job %q waiting for %d more worker(s): %w", t.cfg.Job, t.cfg.Procs-joined, err)
		}
		c.SetDeadline(deadline)
		tc := newTconn(c)
		from, addr, err := t.readHelloFrom(tc.br, helloJoin)
		if err != nil {
			// Refuse just this connection — a stale-generation worker
			// left over from a previous run (or a stray dialer) must
			// not abort the new job's bootstrap.
			c.Close()
			fmt.Fprintf(os.Stderr, "transport: job %q refused a join: %v\n", t.cfg.Job, err)
			continue
		}
		if t.conns[from] != nil {
			c.Close()
			return fmt.Errorf("transport: job %q duplicate join from process %d", t.cfg.Job, from)
		}
		t.conns[from] = tc
		addrs[from] = addr
		joined++
	}
	// Roster: the peer listener addresses, so peers can mesh.
	body := []byte{}
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(t.cfg.Procs))
	body = append(body, u[:]...)
	for _, a := range addrs {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(a)))
		body = append(body, l[:]...)
		body = append(body, a...)
	}
	for i := 1; i < t.cfg.Procs; i++ {
		if err := t.conns[i].writeFrame(frameRoster, body); err != nil {
			return fmt.Errorf("transport: sending roster to process %d: %w", i, err)
		}
		t.conns[i].c.SetDeadline(time.Time{})
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	return nil
}

func (t *tcpTransport) bootstrapPeer(deadline time.Time) error {
	// My own listener, for mesh connections from higher-index peers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	t.ln = ln
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	// Join the leader and fetch the roster, retrying the whole
	// connect+handshake with jittered exponential backoff: while the
	// leader comes up (or, on a rejoin, rebinds at the new
	// generation) the dial fails or the hello connection is reset —
	// both are transient until the deadline says otherwise.
	var addrs []string
	for attempt := 0; ; attempt++ {
		var jerr error
		addrs, jerr = t.joinLeader(deadline)
		if jerr == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: job %q joining leader %s: %w", t.cfg.Job, t.cfg.Addr, jerr)
		}
		time.Sleep(Backoff(attempt, 10*time.Millisecond, 500*time.Millisecond))
	}
	// Mesh: dial every lower-index peer, accept every higher one.
	ph := hello{sub: helloPeer, generation: t.cfg.Generation, np: t.cfg.NP, procs: t.cfg.Procs, from: t.cfg.Self, job: t.cfg.Job}
	for j := 1; j < t.cfg.Self; j++ {
		c, err := net.DialTimeout("tcp", addrs[j], time.Until(deadline))
		if err != nil {
			return fmt.Errorf("transport: dialing peer %d at %s: %w", j, addrs[j], err)
		}
		t.conns[j] = newTconn(c)
		if err := t.conns[j].writeFrame(frameHello, encodeHello(ph)); err != nil {
			return fmt.Errorf("transport: peer hello to %d: %w", j, err)
		}
	}
	for k := t.cfg.Self + 1; k < t.cfg.Procs; k++ {
		c, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: job %q waiting for peer connections: %w", t.cfg.Job, err)
		}
		c.SetDeadline(deadline)
		tc := newTconn(c)
		from, _, err := t.readHelloFrom(tc.br, helloPeer)
		if err != nil {
			c.Close()
			return err
		}
		if from <= t.cfg.Self || t.conns[from] != nil {
			c.Close()
			return fmt.Errorf("transport: unexpected peer connection from process %d", from)
		}
		c.SetDeadline(time.Time{})
		t.conns[from] = tc
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	return nil
}

// joinLeader performs one connect+handshake round with the leader:
// dial, send the join hello, receive the roster of peer listener
// addresses. On success the leader connection is installed as
// t.conns[0]; on any error the connection is closed and the caller
// may retry.
func (t *tcpTransport) joinLeader(deadline time.Time) ([]string, error) {
	c0, err := net.DialTimeout("tcp", t.cfg.Addr, time.Until(deadline))
	if err != nil {
		return nil, err
	}
	c0.SetDeadline(deadline)
	tc := newTconn(c0)
	h := hello{sub: helloJoin, generation: t.cfg.Generation, np: t.cfg.NP, procs: t.cfg.Procs, from: t.cfg.Self, job: t.cfg.Job, addr: t.ln.Addr().String()}
	if err := tc.writeFrame(frameHello, encodeHello(h)); err != nil {
		c0.Close()
		return nil, fmt.Errorf("joining: %w", err)
	}
	kind, body, err := readFrame(tc.br)
	if err != nil {
		// EOF or reset here is also how a refused (e.g. stale-
		// generation) hello looks; the retry loop re-sends the
		// current-generation hello, which converges once the caller
		// has caught up with the job's generation.
		c0.Close()
		return nil, fmt.Errorf("waiting for roster: %w", err)
	}
	fail := func(format string, args ...any) ([]string, error) {
		c0.Close()
		return nil, fmt.Errorf(format, args...)
	}
	if kind != frameRoster {
		return fail("expected roster frame, got kind %d", kind)
	}
	if len(body) < 4 {
		return fail("short roster")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n != t.cfg.Procs {
		return fail("roster for %d processes, want %d", n, t.cfg.Procs)
	}
	rest := body[4:]
	addrs := make([]string, n)
	for i := range addrs {
		if len(rest) < 2 {
			return fail("truncated roster")
		}
		l := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < l {
			return fail("truncated roster")
		}
		addrs[i] = string(rest[:l])
		rest = rest[l:]
	}
	c0.SetDeadline(time.Time{})
	t.conns[0] = tc
	return addrs, nil
}

// readLoop demultiplexes one connection's frames into the per-pair
// mailboxes and the collective queues. peer is the remote process
// index (-1 for the loopback connection); a read error on a peer
// connection is attributed to that peer as a *MemberLostError.
func (t *tcpTransport) readLoop(peer int, c *tconn, br *bufio.Reader) {
	defer t.wg.Done()
	for {
		kind, body, err := readFrame(br)
		if err != nil {
			if !t.closed.Load() {
				if peer >= 0 {
					t.Fail(&MemberLostError{Proc: peer, Cause: "connection lost", Err: err})
				} else {
					t.Fail(fmt.Errorf("transport: job %q connection lost: %w", t.cfg.Job, err))
				}
			}
			return
		}
		if peer >= 0 {
			t.lastHeard[peer].Store(time.Now().UnixNano())
		}
		t.countRecv(int64(5 + len(body)))
		switch kind {
		case frameHeart:
			// Liveness only; the stamp above is the payload.
		case frameData:
			if len(body) < 16 {
				t.Fail(fmt.Errorf("transport: short data frame"))
				return
			}
			src := int(binary.LittleEndian.Uint32(body))
			dst := int(binary.LittleEndian.Uint32(body[4:]))
			if src < 1 || src > t.cfg.NP || dst < 1 || dst > t.cfg.NP {
				t.Fail(fmt.Errorf("transport: data frame for pair (%d,%d) out of range 1..%d", src, dst, t.cfg.NP))
				return
			}
			corr := binary.LittleEndian.Uint64(body[8:])
			t.boxes[src-1][dst-1].push(inMsg{corr: corr, msg: bytesToFloats(body[16:])})
		case frameBcast:
			if len(body) < 4 {
				t.Fail(fmt.Errorf("transport: short bcast frame"))
				return
			}
			from := int(binary.LittleEndian.Uint32(body))
			if from < 0 || from >= t.cfg.Procs {
				t.Fail(fmt.Errorf("transport: bcast from out-of-range process %d", from))
				return
			}
			t.bcastQ[from].push(inMsg{msg: bytesToFloats(body[4:])})
		case frameBarrier:
			if len(body) < 4 {
				t.Fail(fmt.Errorf("transport: short barrier frame"))
				return
			}
			select {
			case t.arrive <- int(binary.LittleEndian.Uint32(body)):
			default:
				t.Fail(fmt.Errorf("transport: barrier arrival overflow"))
				return
			}
		case frameRelease:
			select {
			case t.release <- struct{}{}:
			default:
				t.Fail(fmt.Errorf("transport: barrier release overflow"))
				return
			}
		default:
			t.Fail(fmt.Errorf("transport: unknown frame kind %d", kind))
			return
		}
	}
}

func (t *tcpTransport) Kind() string        { return TCP }
func (t *tcpTransport) NP() int             { return t.cfg.NP }
func (t *tcpTransport) Procs() int          { return t.cfg.Procs }
func (t *tcpTransport) Self() int           { return t.cfg.Self }
func (t *tcpTransport) HostOf(rank int) int { return HostOfRank(t.cfg.NP, t.cfg.Procs, rank) }

// sendFrame writes a data/bcast frame on conn, failing the transport
// on I/O errors (the message is dropped; workers surface the sticky
// error at the end of the epoch). peer is the remote process index,
// or -1 for the loopback connection: a write error on a peer
// connection (broken pipe, reset) means that peer is gone, and must
// be attributed as a *MemberLostError so recovery treats it exactly
// like a read-side EOF — whichever side of the dead socket errors
// first.
func (t *tcpTransport) sendFrame(peer int, c *tconn, kind byte, body []byte) {
	if t.fb.get() != nil {
		return // failed transport: drop, like the other wires
	}
	if err := c.writeFrame(kind, body); err != nil {
		if !t.closed.Load() {
			if peer >= 0 {
				t.Fail(&MemberLostError{Proc: peer, Cause: "connection lost", Err: err})
			} else {
				t.Fail(fmt.Errorf("transport: job %q write: %w", t.cfg.Job, err))
			}
		}
		return
	}
	t.countSend(int64(5 + len(body)))
}

func (t *tcpTransport) Send(src, dst int, msg []float64) {
	corr := t.ps.nextCorr(src, dst)
	tracing := obs.TraceEnabled()
	var start time.Time
	if tracing {
		start = time.Now()
	}
	h := t.HostOf(dst)
	if h == t.cfg.Self && t.loop == nil {
		// Same-process pair: short-circuit through the mailbox.
		t.boxes[src-1][dst-1].push(inMsg{corr: corr, msg: msg})
		if tracing {
			traceMsg("send", t.cfg.Generation, src, dst, len(msg), corr, start)
		}
		return
	}
	body := make([]byte, 16, 16+8*len(msg))
	binary.LittleEndian.PutUint32(body, uint32(src))
	binary.LittleEndian.PutUint32(body[4:], uint32(dst))
	binary.LittleEndian.PutUint64(body[8:], corr)
	body = floatsToBytes(body, msg)
	c, peer := t.loop, -1
	if c == nil {
		c, peer = t.conns[h], h
	}
	t.sendFrame(peer, c, frameData, body)
	if tracing {
		traceMsg("send", t.cfg.Generation, src, dst, len(msg), corr, start)
	}
}

func (t *tcpTransport) Recv(src, dst int) []float64 {
	if !obs.TraceEnabled() {
		return t.boxes[src-1][dst-1].pop().msg
	}
	start := time.Now()
	m := t.boxes[src-1][dst-1].pop()
	if m.msg != nil {
		traceMsg("recv", t.cfg.Generation, src, dst, len(m.msg), m.corr, start)
	}
	return m.msg
}

func (t *tcpTransport) Bcast(from int, vals []float64) []float64 {
	if t.cfg.Procs == 1 {
		return vals
	}
	if from == t.cfg.Self {
		body := make([]byte, 4, 4+8*len(vals))
		binary.LittleEndian.PutUint32(body, uint32(from))
		body = floatsToBytes(body, vals)
		for i, c := range t.conns {
			if i == t.cfg.Self || c == nil {
				continue
			}
			t.sendFrame(i, c, frameBcast, body)
		}
		return vals
	}
	return t.bcastQ[from].pop().msg
}

func (t *tcpTransport) Barrier() error {
	if t.cfg.Procs == 1 {
		return t.fb.get()
	}
	if t.cfg.Self == 0 {
		for need := t.cfg.Procs - 1; need > 0; {
			select {
			case <-t.arrive:
				need--
			case <-t.fb.stop:
				return t.fb.get()
			}
		}
		for i := 1; i < t.cfg.Procs; i++ {
			t.sendFrame(i, t.conns[i], frameRelease, nil)
		}
		return t.fb.get()
	}
	var body [4]byte
	binary.LittleEndian.PutUint32(body[:], uint32(t.cfg.Self))
	t.sendFrame(0, t.conns[0], frameBarrier, body[:])
	select {
	case <-t.release:
	case <-t.fb.stop:
	}
	return t.fb.get()
}

func (t *tcpTransport) Fail(err error) {
	if t.fb.fail(err) {
		t.abortAll()
	}
}

func (t *tcpTransport) Err() error { return t.fb.get() }

func (t *tcpTransport) Status() Health {
	h := Health{
		Procs:      t.cfg.Procs,
		Self:       t.cfg.Self,
		Generation: t.cfg.Generation,
		Alive:      make([]bool, t.cfg.Procs),
		Err:        t.fb.get(),
	}
	now := time.Now().UnixNano()
	limit := int64(t.cfg.failAfter())
	for i := range h.Alive {
		if i == t.cfg.Self || t.cfg.Procs == 1 {
			h.Alive[i] = true
			continue
		}
		h.Alive[i] = now-t.lastHeard[i].Load() <= limit
	}
	if p, ok := AsMemberLost(h.Err); ok && p >= 0 && p < len(h.Alive) {
		h.Alive[p] = false
	}
	return h
}

// Staleness reports time since each peer's last frame (HeartbeatStats).
func (t *tcpTransport) Staleness() []time.Duration {
	out := make([]time.Duration, t.cfg.Procs)
	now := time.Now().UnixNano()
	for i := range out {
		if i == t.cfg.Self || t.cfg.Procs == 1 {
			continue
		}
		if last := t.lastHeard[i].Load(); last > 0 {
			out[i] = time.Duration(now - last)
		}
	}
	return out
}

// killAbrupt emulates a SIGKILL for the chaos wire: every socket is
// torn down with no goodbye and the local transport fails sticky with
// ErrChaosKilled, so peers observe dead connections (and then stale
// heartbeats) exactly as they would for a killed process.
func (t *tcpTransport) killAbrupt() {
	if t.fb.fail(ErrChaosKilled) {
		t.abortAll()
	}
	t.stopHeartbeats()
	if t.ln != nil {
		t.ln.Close()
	}
	if t.loop != nil {
		t.loop.c.Close()
	}
	if t.loopIn != nil {
		t.loopIn.c.Close()
	}
	for _, c := range t.conns {
		if c != nil {
			c.c.Close()
		}
	}
}

func (t *tcpTransport) abortAll() {
	for _, row := range t.boxes {
		for _, b := range row {
			b.abort()
		}
	}
	for _, b := range t.bcastQ {
		b.abort()
	}
}

// dropConn severs the raw connection to peer (chaos wire): both
// ends' read loops observe the dead socket and attribute the loss to
// each other, the same symptom as a network partition of that link.
// In loopback mode the self-dialled connection is severed instead.
func (t *tcpTransport) dropConn(peer int) {
	if t.loop != nil {
		t.loop.c.Close()
		return
	}
	if peer >= 0 && peer < len(t.conns) && t.conns[peer] != nil {
		t.conns[peer].c.Close()
	}
}

// teardown closes sockets and aborts waiters without marking the
// transport failed (deliberate shutdown).
func (t *tcpTransport) teardown() {
	t.closed.Store(true)
	t.stopHeartbeats()
	if t.ln != nil {
		t.ln.Close()
	}
	if t.loop != nil {
		t.loop.c.Close()
	}
	if t.loopIn != nil {
		t.loopIn.c.Close()
	}
	for _, c := range t.conns {
		if c != nil {
			c.c.Close()
		}
	}
	t.abortAll()
	t.wg.Wait()
}

func (t *tcpTransport) Close() error {
	t.once.Do(t.teardown)
	return nil
}
