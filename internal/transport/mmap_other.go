//go:build !unix

package transport

import (
	"fmt"
	"os"
)

// The shm transport needs a shared file mapping; platforms without
// one (windows, wasm) report it unsupported and callers fall back to
// inproc or tcp.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("transport: shm wire not supported on this platform")
}

func munmapFile(b []byte) error { return nil }
