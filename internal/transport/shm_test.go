package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestShmLoopStreams(t *testing.T) {
	tr, err := NewShmLoop(4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	exerciseStreams(t, tr)
}

// TestShmLargeMessage pushes frames far bigger than one ring through
// the wire: they must stream through in chunks, in order, without a
// size limit.
func TestShmLargeMessage(t *testing.T) {
	tr, err := NewShmLoop(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const big = 3*shmDataCap/8 + 17 // ~3 ring capacities of float64s
	msg := make([]float64, big)
	for i := range msg {
		msg[i] = float64(i % 1009)
	}
	go func() {
		tr.Send(1, 2, msg)
		tr.Send(1, 2, []float64{42}) // FIFO after the giant frame
	}()
	got := tr.Recv(1, 2)
	if len(got) != big {
		t.Fatalf("large recv: got %d floats, want %d", len(got), big)
	}
	for i := range got {
		if got[i] != float64(i%1009) {
			t.Fatalf("large recv: corrupt at %d: got %g", i, got[i])
		}
	}
	if tail := tr.Recv(1, 2); len(tail) != 1 || tail[0] != 42 {
		t.Fatalf("trailing message after large frame: got %v", tail)
	}
}

// TestShmBidirectionalFlood has two ranks each send a burst of
// ring-overflowing traffic to the other before either receives: the
// spill queue plus pump must keep both Sends non-blocking, or this
// deadlocks (and times out).
func TestShmBidirectionalFlood(t *testing.T) {
	tr, err := NewShmLoop(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const msgs, sz = 40, shmDataCap / 8 / 2 // each burst is ~20 ring fills
	done := make(chan error, 2)
	for r := 1; r <= 2; r++ {
		go func(self int) {
			peer := 3 - self
			for k := 0; k < msgs; k++ {
				msg := make([]float64, sz)
				msg[0] = float64(self*1000 + k)
				tr.Send(self, peer, msg)
			}
			for k := 0; k < msgs; k++ {
				got := tr.Recv(peer, self)
				if len(got) != sz || got[0] != float64(peer*1000+k) {
					done <- fmt.Errorf("rank %d msg %d: got len %d head %v", self, k, len(got), got[:1])
					return
				}
			}
			done <- nil
		}(r)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("bidirectional flood deadlocked")
		}
	}
}

func TestShmEmptyMessage(t *testing.T) {
	tr, err := NewShmLoop(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	go tr.Send(1, 2, []float64{})
	got := tr.Recv(1, 2)
	if got == nil || len(got) != 0 {
		t.Fatalf("empty message: got %v (nil=%v), want empty non-nil", got, got == nil)
	}
}

// TestShmMesh runs a full 3-process shm job inside one test binary —
// the shm analogue of TestTCPMesh: three transports rendezvous on one
// mapped file, exchange cross- and same-process rank traffic,
// broadcast and barrier.
func TestShmMesh(t *testing.T) {
	const np, procs = 6, 3
	dir := t.TempDir()
	trs := make([]Transport, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := NewShm(ShmConfig{Job: "mesh-test", NP: np, Procs: procs, Self: i, Generation: 7, Dir: dir, Timeout: 10 * time.Second})
			trs[i] = tr
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d bootstrap: %v", i, err)
		}
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	perr := make(chan error, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := trs[i]
			lo, hi := RanksOf(np, procs, i)
			for s := lo; s <= hi; s++ {
				for d := 1; d <= np; d++ {
					tr.Send(s, d, []float64{float64(1000*s + d)})
				}
			}
			for d := lo; d <= hi; d++ {
				for s := 1; s <= np; s++ {
					msg := tr.Recv(s, d)
					if len(msg) != 1 || msg[0] != float64(1000*s+d) {
						perr <- fmt.Errorf("process %d pair (%d,%d): got %v", i, s, d, msg)
						return
					}
				}
			}
			for from := 0; from < procs; from++ {
				var vals []float64
				if from == i {
					vals = []float64{float64(from), 42}
				}
				got := tr.Bcast(from, vals)
				if len(got) != 2 || got[0] != float64(from) || got[1] != 42 {
					perr <- fmt.Errorf("process %d bcast from %d: got %v", i, from, got)
					return
				}
			}
			if err := tr.Barrier(); err != nil {
				perr <- fmt.Errorf("process %d barrier: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(perr)
	for err := range perr {
		t.Error(err)
	}
}

// TestShmCrossProcessFail checks failure propagation through the
// shared header flag: Fail on one member unblocks a Recv waiting on
// another member, and the error is sticky on both.
func TestShmCrossProcessFail(t *testing.T) {
	const np, procs = 2, 2
	dir := t.TempDir()
	trs := make([]Transport, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trs[i], errs[i] = NewShm(ShmConfig{Job: "fail-test", NP: np, Procs: procs, Self: i, Generation: 1, Dir: dir, Timeout: 10 * time.Second})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d bootstrap: %v", i, err)
		}
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	done := make(chan []float64, 1)
	go func() { done <- trs[1].Recv(1, 2) }() // rank 2 lives on process 1; rank 1 never sends
	time.Sleep(20 * time.Millisecond)
	trs[0].Fail(fmt.Errorf("boom"))
	select {
	case msg := <-done:
		if msg != nil {
			t.Fatalf("aborted cross-process Recv returned %v, want nil", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv on process 1 still blocked after Fail on process 0")
	}
	if trs[1].Err() == nil {
		t.Fatal("process 1 Err() nil after peer failure")
	}
}

// TestShmShapeMismatchRejected: a worker whose np disagrees with the
// mapped header must refuse to join.
func TestShmShapeMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	var wg sync.WaitGroup
	var leaderTr, staleTr Transport
	var leaderErr, staleErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		leaderTr, leaderErr = NewShm(ShmConfig{Job: "shape-test", NP: 4, Procs: 2, Self: 0, Generation: 3, Dir: dir, Timeout: 2 * time.Second})
	}()
	go func() {
		defer wg.Done()
		staleTr, staleErr = NewShm(ShmConfig{Job: "shape-test", NP: 6, Procs: 2, Self: 1, Generation: 3, Dir: dir, Timeout: 2 * time.Second})
	}()
	wg.Wait()
	if leaderTr != nil {
		leaderTr.Close()
	}
	if staleTr != nil {
		staleTr.Close()
	}
	if leaderErr == nil {
		t.Error("leader bootstrapped a job whose only member was mis-shaped")
	}
	if staleErr == nil {
		t.Error("mis-shaped worker joined successfully")
	}
}
