package transport

import (
	"sync"
	"testing"

	"hpfnt/internal/obs"
)

func TestPackCorr(t *testing.T) {
	c := packCorr(7, 0x1234)
	if CorrEpoch(c) != 7 || CorrSeq(c) != 0x1234 {
		t.Fatalf("corr roundtrip: epoch %d seq %#x", CorrEpoch(c), CorrSeq(c))
	}
	// The seq wraps into its 32-bit half without bleeding into the
	// epoch half.
	c = packCorr(3, 0x1_0000_0005)
	if CorrEpoch(c) != 3 || CorrSeq(c) != 5 {
		t.Fatalf("seq overflow bled into the epoch: epoch %d seq %#x", CorrEpoch(c), CorrSeq(c))
	}
}

func TestFlowIDDistinct(t *testing.T) {
	base := FlowID(0, 1, 2, packCorr(1, 1))
	if base == 0 {
		t.Fatal("flow ID must never be 0 (0 means untagged)")
	}
	// Changing any coordinate — generation, pair, corr — must change
	// the ID: that is what keeps arrows distinct across recovery bumps
	// and concurrent pairs.
	for name, other := range map[string]uint64{
		"generation": FlowID(1, 1, 2, packCorr(1, 1)),
		"src":        FlowID(0, 3, 2, packCorr(1, 1)),
		"dst":        FlowID(0, 1, 3, packCorr(1, 1)),
		"seq":        FlowID(0, 1, 2, packCorr(1, 2)),
		"epoch":      FlowID(0, 1, 2, packCorr(2, 1)),
	} {
		if other == base {
			t.Errorf("changing %s did not change the flow ID", name)
		}
	}
}

// TestCorrPairing sends a few messages over every wire with tracing on
// and asserts each recv event pairs with exactly one send event on a
// shared nonzero flow ID carrying the sender's epoch.
func TestCorrPairing(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			rec := obs.StartTrace(0, 1<<10)
			defer obs.StopTrace()
			obs.SetEpoch(42)
			defer obs.SetEpoch(0)
			tr, err := New(kind, 3)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			const msgs = 3
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for k := 0; k < msgs; k++ {
					tr.Send(1, 2, []float64{float64(10 + k)})
				}
			}()
			go func() {
				defer wg.Done()
				for k := 0; k < msgs; k++ {
					tr.Send(3, 2, []float64{float64(30 + k)})
				}
			}()
			for k := 0; k < msgs; k++ {
				if got := tr.Recv(1, 2); len(got) != 1 || got[0] != float64(10+k) {
					t.Fatalf("pair (1,2) msg %d: got %v", k, got)
				}
				if got := tr.Recv(3, 2); len(got) != 1 || got[0] != float64(30+k) {
					t.Fatalf("pair (3,2) msg %d: got %v", k, got)
				}
			}
			wg.Wait()
			sends := map[uint64]int{}
			recvs := map[uint64]int{}
			for _, ev := range rec.Snapshot() {
				switch ev.Kind {
				case "send", "recv":
				default:
					continue
				}
				if ev.Flow == 0 {
					t.Fatalf("%s event %q has no flow ID", ev.Kind, ev.Name)
				}
				if ev.Epoch != 42 {
					t.Fatalf("%s event %q has epoch %d, want the sender's 42", ev.Kind, ev.Name, ev.Epoch)
				}
				if ev.Kind == "send" {
					sends[ev.Flow]++
				} else {
					recvs[ev.Flow]++
				}
			}
			if len(sends) != 2*msgs {
				t.Fatalf("%d distinct send flows, want %d", len(sends), 2*msgs)
			}
			for flow, n := range sends {
				if n != 1 || recvs[flow] != 1 {
					t.Fatalf("flow %#x has %d sends / %d recvs, want 1/1", flow, n, recvs[flow])
				}
			}
		})
	}
}
