//go:build unix

package transport

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f shared and read-write. The mapping
// stays valid after f is closed or unlinked, which is what the shm
// transport's rendezvous relies on: the leader can remove the file as
// soon as every process has attached.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
