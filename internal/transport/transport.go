// Package transport is the wire abstraction under the spmd engine:
// per-pair ordered message streams between the abstract processors
// (ranks 1..NP), plus the small set of process-level collectives the
// engine's replicated control flow needs (broadcast, barrier). Three
// implementations exist: inproc (capacity-1 buffered channels, the
// zero-copy default, all ranks in one address space), shm (lock-free
// SPSC ring buffers over one mmap'd file — the fast multi-process
// wire, no syscall on the fast path) and tcp (length-prefixed frames
// over localhost sockets with a handshake carrying worker rank and
// job generation). The latter two let the identical compiled
// schedules, remaps, reductions and inspector plans execute across
// real OS processes (see cmd/hpfnode).
//
// Contract: messages between one ordered rank pair (src,dst) are
// delivered FIFO; streams of distinct pairs are independent. Send
// never blocks indefinitely against a live receiver (the inproc
// transport blocks only on its per-pair capacity-1 backpressure; the
// tcp transport buffers in per-pair mailboxes). Collectives (Bcast,
// Barrier) must be invoked by every participating process in the same
// order — the engine guarantees this by construction, since every
// process executes the same deterministic control flow. A failed
// transport (Fail, or an I/O error on a connection) aborts blocked
// Send/Recv calls instead of deadlocking: Recv returns nil and Send
// drops the message, with the sticky error readable via Err.
//
// Failure detection: the multi-process wires watch their members. The
// tcp transport exchanges heartbeat frames on every connection and
// the shm transport stamps per-process liveness slots in the mapped
// header; a member that stops responding (SIGKILL, a wedged host) is
// reported as a *MemberLostError naming the lost process, which is
// what the recovery layer (package elastic) keys its
// generation-bumped rejoin on. Status returns the current membership
// view. The chaos transport (NewChaos) injects these failures
// deterministically for tests.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hpfnt/internal/obs"
)

// Kinds of transport.
const (
	Inproc = "inproc"
	Shm    = "shm"
	TCP    = "tcp"
)

// Kinds lists the available transport kinds.
func Kinds() []string { return []string{Inproc, Shm, TCP} }

// Transport carries the spmd engine's communication: per-pair ordered
// rank-to-rank message streams plus process-level collectives.
type Transport interface {
	// Kind reports the transport kind ("inproc", "shm" or "tcp").
	Kind() string
	// NP reports the abstract processor (rank) count.
	NP() int
	// Procs reports the number of participating OS processes.
	Procs() int
	// Self reports this process's index in 0..Procs-1.
	Self() int
	// HostOf reports the process index hosting the given rank.
	HostOf(rank int) int
	// Send delivers one message on the ordered (src,dst) rank stream.
	// src must be hosted by this process. On a failed transport the
	// message is dropped.
	Send(src, dst int, msg []float64)
	// Recv returns the next message of the ordered (src,dst) stream.
	// dst must be hosted by this process. Returns nil once the
	// transport has failed.
	Recv(src, dst int) []float64
	// Bcast publishes vals from process `from` to every process and
	// returns them everywhere; callers on other processes pass nil.
	// Returns nil on a failed transport.
	Bcast(from int, vals []float64) []float64
	// Barrier blocks until every process has arrived (an epoch fence
	// for job-level phases; the engine's per-epoch worker barrier is
	// process-local and does not use it).
	Barrier() error
	// Fail puts the transport into the sticky failed state, aborting
	// all blocked Send/Recv calls engine-wide.
	Fail(err error)
	// Err returns the sticky failure, if any.
	Err() error
	// Status returns the current membership view: which processes
	// this transport believes are alive. Cheap and safe to call at
	// any time from any goroutine.
	Status() Health
	// Close releases the transport's resources. Idempotent.
	Close() error
}

// Health is a point-in-time membership view of a job's processes.
type Health struct {
	// Procs and Self mirror the transport's shape.
	Procs, Self int
	// Generation is the job generation this transport joined at
	// (0 for the generation-less inproc wire).
	Generation int
	// Alive[i] reports whether process i is believed alive:
	// heartbeats current (tcp), liveness stamp fresh (shm). A
	// process's own entry is always true.
	Alive []bool
	// Err is the transport's sticky failure, if any.
	Err error
}

// Lost lists the process indexes currently believed dead.
func (h Health) Lost() []int {
	var out []int
	for i, a := range h.Alive {
		if !a {
			out = append(out, i)
		}
	}
	return out
}

// WireStats is a point-in-time snapshot of a transport's physical
// wire activity: frames and payload bytes actually moved (after any
// schedule-level coalescing), plus fast-path stall events — ring-full
// spins on the shm wire, capacity backpressure blocks on inproc.
// These are physical-layer counters, deliberately outside the
// machine's logical cost model: two wires running the same job report
// identical machine.Reports but different WireStats.
type WireStats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	Stalls                 int64
}

// WireCounter is implemented by transports that meter their wire;
// the live /metrics endpoint surfaces the counters when present.
type WireCounter interface {
	Wire() WireStats
}

// HeartbeatStats is implemented by the failure-detecting wires (tcp,
// shm): Staleness reports, per process, the time since that member's
// last sign of life — a heartbeat frame or data on the tcp wire, a
// fresh liveness stamp on shm. Self entries are zero. Staleness
// approaching the wire's failure threshold is the early-warning
// metric the /metrics endpoint exposes.
type HeartbeatStats interface {
	Staleness() []time.Duration
}

// wireTally is the shared lock-free WireStats implementation the
// transports embed.
type wireTally struct {
	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
	stalls                 atomic.Int64
}

func (w *wireTally) countSend(bytes int64) {
	w.framesSent.Add(1)
	w.bytesSent.Add(bytes)
}

func (w *wireTally) countRecv(bytes int64) {
	w.framesRecv.Add(1)
	w.bytesRecv.Add(bytes)
}

func (w *wireTally) countStall() { w.stalls.Add(1) }

// Wire snapshots the counters (WireCounter).
func (w *wireTally) Wire() WireStats {
	return WireStats{
		FramesSent: w.framesSent.Load(),
		FramesRecv: w.framesRecv.Load(),
		BytesSent:  w.bytesSent.Load(),
		BytesRecv:  w.bytesRecv.Load(),
		Stalls:     w.stalls.Load(),
	}
}

// MemberLostError is the sticky failure reported when a member
// process of a multi-process job is detected dead (connection lost,
// heartbeats stale, liveness stamp frozen) or when the chaos wire
// scripts such a loss. The recovery layer treats it as retryable: the
// job can rebuild at a bumped generation, restore the last checkpoint
// and replay.
type MemberLostError struct {
	// Proc is the lost process's index in 0..Procs-1.
	Proc int
	// Cause describes how the loss was detected.
	Cause string
	// Err is the underlying I/O error, if any.
	Err error
}

func (e *MemberLostError) Error() string {
	s := fmt.Sprintf("transport: member process %d lost (%s)", e.Proc, e.Cause)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *MemberLostError) Unwrap() error { return e.Err }

// AsMemberLost extracts the lost process index from an error chain.
func AsMemberLost(err error) (proc int, ok bool) {
	var mle *MemberLostError
	if errors.As(err, &mle) {
		return mle.Proc, true
	}
	return 0, false
}

// ErrChaosKilled is the local sticky error of a member the chaos
// transport abruptly killed: the process's own operations fail with
// it, while its peers observe a *MemberLostError through their
// detectors, exactly as if the process had been SIGKILLed.
var ErrChaosKilled = errors.New("transport: member abruptly killed by chaos plan")

// Backoff returns the jittered exponential backoff delay for the
// given 0-based retry attempt: base·2^attempt capped at max, with a
// uniform ±25% jitter so a fleet of rejoining workers does not hammer
// the rendezvous in lockstep. Shared by the tcp dial-retry loop and
// the recovery layer's rejoin path.
func Backoff(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if max > 0 && d > max {
		d = max
	}
	// ±25% jitter.
	j := time.Duration(rand.Int63n(int64(d)/2 + 1))
	return d - d/4 + j
}

// HostOfRank computes the deterministic block partition of ranks
// 1..np over procs processes: rank r lives on process (r-1)/q with
// q = ceil(np/procs). Every process derives the same partition.
func HostOfRank(np, procs, rank int) int {
	q := (np + procs - 1) / procs
	return (rank - 1) / q
}

// RanksOf returns the inclusive rank interval [lo,hi] hosted by
// process self under the block partition (hi < lo when the process
// hosts no ranks, which valid configurations exclude).
func RanksOf(np, procs, self int) (lo, hi int) {
	q := (np + procs - 1) / procs
	lo = self*q + 1
	hi = (self + 1) * q
	if hi > np {
		hi = np
	}
	return lo, hi
}

// failBox is the sticky failure state shared by the implementations.
type failBox struct {
	mu   sync.Mutex
	err  error
	stop chan struct{}
}

func newFailBox() *failBox { return &failBox{stop: make(chan struct{})} }

// fail records err (first one wins) and closes the stop channel.
// Reports whether this call was the first failure. The first failure
// is also the one observability event worth recording: every wire's
// detection path funnels through here, so a trace shows exactly one
// member-lost (or fail) instant per transport incarnation.
func (f *failBox) fail(err error) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return false
	}
	f.err = err
	close(f.stop)
	if obs.TraceEnabled() {
		if proc, ok := AsMemberLost(err); ok {
			obs.Instant("member-lost", fmt.Sprintf("member %d lost: %v", proc, err), 0)
		} else {
			obs.Instant("fail", fmt.Sprintf("transport failed: %v", err), 0)
		}
	}
	return true
}

func (f *failBox) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// inMsg is one in-flight message with its correlation word — the
// in-memory equivalent of a wire frame's [corr][payload] layout, used
// by the inproc channels and the tcp mailboxes.
type inMsg struct {
	corr uint64
	msg  []float64
}

// inproc is the in-process transport: today's capacity-1 buffered
// channel per ordered rank pair. Within one engine epoch each pair
// has at most one in-flight message per iteration, and every worker
// sends all its outgoing messages before receiving, so sends never
// deadlock; the capacity-1 backpressure also bounds how far a fast
// sender can pipeline ahead of a slow receiver across iterations.
type inproc struct {
	np    int
	chans [][]chan inMsg
	ps    *pairSeq
	fb    *failBox
	wireTally
}

// NewInproc creates the in-process transport over np ranks.
func NewInproc(np int) Transport {
	t := &inproc{np: np, ps: newPairSeq(np), fb: newFailBox()}
	t.chans = make([][]chan inMsg, np)
	for s := range t.chans {
		t.chans[s] = make([]chan inMsg, np)
		for d := range t.chans[s] {
			t.chans[s][d] = make(chan inMsg, 1)
		}
	}
	return t
}

func (t *inproc) Kind() string        { return Inproc }
func (t *inproc) NP() int             { return t.np }
func (t *inproc) Procs() int          { return 1 }
func (t *inproc) Self() int           { return 0 }
func (t *inproc) HostOf(rank int) int { return 0 }

func (t *inproc) Send(src, dst int, msg []float64) {
	select {
	case <-t.fb.stop:
		return // failed transport: drop
	default:
	}
	ch := t.chans[src-1][dst-1]
	m := inMsg{corr: t.ps.nextCorr(src, dst), msg: msg}
	tracing := obs.TraceEnabled()
	var start time.Time
	if tracing {
		start = time.Now()
	}
	// Try the uncontended path first so the backpressure block is
	// visible as a stall in the wire counters.
	select {
	case ch <- m:
		t.countSend(int64(8 * len(msg)))
		if tracing {
			traceMsg("send", 0, src, dst, len(msg), m.corr, start)
		}
		return
	default:
	}
	t.countStall()
	select {
	case ch <- m:
		t.countSend(int64(8 * len(msg)))
		if tracing {
			traceMsg("send", 0, src, dst, len(msg), m.corr, start)
		}
	case <-t.fb.stop:
	}
}

func (t *inproc) Recv(src, dst int) []float64 {
	ch := t.chans[src-1][dst-1]
	tracing := obs.TraceEnabled()
	var start time.Time
	if tracing {
		start = time.Now()
	}
	deliver := func(m inMsg) []float64 {
		t.countRecv(int64(8 * len(m.msg)))
		if tracing {
			traceMsg("recv", 0, src, dst, len(m.msg), m.corr, start)
		}
		return m.msg
	}
	// Drain-then-nil on failure, like the tcp mailboxes: a message
	// already in the stream is delivered even after Fail.
	select {
	case m := <-ch:
		return deliver(m)
	default:
	}
	select {
	case m := <-ch:
		return deliver(m)
	case <-t.fb.stop:
		select {
		case m := <-ch:
			return deliver(m)
		default:
			return nil
		}
	}
}

func (t *inproc) Bcast(from int, vals []float64) []float64 { return vals }
func (t *inproc) Barrier() error                           { return t.fb.get() }
func (t *inproc) Fail(err error)                           { t.fb.fail(err) }
func (t *inproc) Err() error                               { return t.fb.get() }

func (t *inproc) Status() Health {
	return Health{Procs: 1, Self: 0, Alive: []bool{true}, Err: t.fb.get()}
}

func (t *inproc) Close() error { return nil }

// mailbox is an unbounded FIFO queue of messages for one stream, with
// abort support: messages queued before the abort still drain in
// order (a peer's orderly shutdown must not eat data already on the
// wire); pop returns the zero inMsg (nil payload) once the queue is
// empty and aborted.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []inMsg
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(msg inMsg) {
	m.mu.Lock()
	m.q = append(m.q, msg)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) pop() inMsg {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.q) == 0 {
		return inMsg{}
	}
	msg := m.q[0]
	m.q = m.q[1:]
	return msg
}

func (m *mailbox) abort() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// New creates a single-process transport of the given kind over np
// ranks: the inproc channels, the shm rings over a real shared
// mapping, or the tcp loopback (every message through a real
// localhost socket, exercising framing and demux).
func New(kind string, np int) (Transport, error) {
	switch kind {
	case Inproc:
		return NewInproc(np), nil
	case Shm:
		return NewShmLoop(np)
	case TCP:
		return NewTCPLoop(np)
	default:
		return nil, fmt.Errorf("transport: unknown kind %q (have %v)", kind, Kinds())
	}
}
