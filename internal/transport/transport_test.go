package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// freeAddr reserves a localhost port for a rendezvous address.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestHostOfRankPartition(t *testing.T) {
	for _, tc := range []struct{ np, procs int }{{8, 1}, {8, 4}, {7, 3}, {5, 5}, {9, 4}} {
		seen := map[int]int{}
		for r := 1; r <= tc.np; r++ {
			h := HostOfRank(tc.np, tc.procs, r)
			if h < 0 || h >= tc.procs {
				t.Fatalf("np=%d procs=%d rank %d: host %d out of range", tc.np, tc.procs, r, h)
			}
			seen[h]++
		}
		covered := 0
		for p := 0; p < tc.procs; p++ {
			lo, hi := RanksOf(tc.np, tc.procs, p)
			for r := lo; r <= hi; r++ {
				if HostOfRank(tc.np, tc.procs, r) != p {
					t.Fatalf("np=%d procs=%d: RanksOf(%d)=[%d,%d] but rank %d hosted by %d", tc.np, tc.procs, p, lo, hi, r, HostOfRank(tc.np, tc.procs, r))
				}
				covered++
			}
		}
		if covered != tc.np {
			t.Fatalf("np=%d procs=%d: partition covers %d ranks", tc.np, tc.procs, covered)
		}
	}
}

// exerciseStreams checks per-pair FIFO order over every ordered rank
// pair of a single-process transport.
func exerciseStreams(t *testing.T, tr Transport) {
	t.Helper()
	np := tr.NP()
	const msgs = 5
	var wg sync.WaitGroup
	for s := 1; s <= np; s++ {
		for d := 1; d <= np; d++ {
			wg.Add(1)
			go func(s, d int) {
				defer wg.Done()
				for k := 0; k < msgs; k++ {
					tr.Send(s, d, []float64{float64(s*100 + d), float64(k)})
				}
			}(s, d)
		}
	}
	errc := make(chan error, np*np)
	for s := 1; s <= np; s++ {
		for d := 1; d <= np; d++ {
			wg.Add(1)
			go func(s, d int) {
				defer wg.Done()
				for k := 0; k < msgs; k++ {
					msg := tr.Recv(s, d)
					if len(msg) != 2 || msg[0] != float64(s*100+d) || msg[1] != float64(k) {
						errc <- fmt.Errorf("pair (%d,%d) msg %d: got %v", s, d, k, msg)
						return
					}
				}
			}(s, d)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestInprocStreams(t *testing.T) {
	tr := NewInproc(4)
	defer tr.Close()
	exerciseStreams(t, tr)
}

func TestTCPLoopStreams(t *testing.T) {
	tr, err := NewTCPLoop(4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	exerciseStreams(t, tr)
}

func TestFailUnblocksRecvAndSend(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr, err := New(kind, 2)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			done := make(chan []float64, 1)
			go func() { done <- tr.Recv(1, 2) }()
			time.Sleep(20 * time.Millisecond)
			tr.Fail(fmt.Errorf("boom"))
			select {
			case msg := <-done:
				if msg != nil {
					t.Fatalf("aborted Recv returned %v, want nil", msg)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv still blocked after Fail")
			}
			// Sends on a failed transport must not block either.
			sent := make(chan struct{})
			go func() {
				for i := 0; i < 10; i++ {
					tr.Send(1, 2, []float64{1})
				}
				close(sent)
			}()
			select {
			case <-sent:
			case <-time.After(2 * time.Second):
				t.Fatal("Send blocked after Fail")
			}
			if tr.Err() == nil {
				t.Fatal("Err() nil after Fail")
			}
		})
	}
}

// TestTCPMesh runs a full 3-process job inside one test binary: three
// transports bootstrap over real localhost sockets, exchange cross-
// and same-process rank traffic, broadcast, and barrier.
func TestTCPMesh(t *testing.T) {
	const np, procs = 6, 3
	addr := freeAddr(t)
	trs := make([]Transport, procs)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := NewTCP(TCPConfig{Job: "mesh-test", NP: np, Procs: procs, Self: i, Generation: 7, Addr: addr})
			trs[i] = tr
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d bootstrap: %v", i, err)
		}
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	// Every rank sends one tagged message to every rank; each process
	// drives its own hosted ranks.
	perr := make(chan error, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := trs[i]
			lo, hi := RanksOf(np, procs, i)
			for s := lo; s <= hi; s++ {
				for d := 1; d <= np; d++ {
					tr.Send(s, d, []float64{float64(1000*s + d)})
				}
			}
			for d := lo; d <= hi; d++ {
				for s := 1; s <= np; s++ {
					msg := tr.Recv(s, d)
					if len(msg) != 1 || msg[0] != float64(1000*s+d) {
						perr <- fmt.Errorf("process %d pair (%d,%d): got %v", i, s, d, msg)
						return
					}
				}
			}
			// Broadcast from each process in turn.
			for from := 0; from < procs; from++ {
				var vals []float64
				if from == i {
					vals = []float64{float64(from), 42}
				}
				got := tr.Bcast(from, vals)
				if len(got) != 2 || got[0] != float64(from) || got[1] != 42 {
					perr <- fmt.Errorf("process %d bcast from %d: got %v", i, from, got)
					return
				}
			}
			if err := tr.Barrier(); err != nil {
				perr <- fmt.Errorf("process %d barrier: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(perr)
	for err := range perr {
		t.Error(err)
	}
}

// TestTCPStaleGenerationRejected checks the handshake's generation
// gate: a worker from an older generation is refused (its connection
// closed) while the leader keeps waiting for the real members — so
// the stale worker errors immediately and the leader's bootstrap
// fails only when the membership never completes (timeout here).
func TestTCPStaleGenerationRejected(t *testing.T) {
	addr := freeAddr(t)
	var wg sync.WaitGroup
	var leaderErr, staleErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		tr, err := NewTCP(TCPConfig{Job: "gen-test", NP: 2, Procs: 2, Self: 0, Generation: 3, Addr: addr, Timeout: 2 * time.Second})
		if tr != nil {
			tr.Close()
		}
		leaderErr = err
	}()
	go func() {
		defer wg.Done()
		tr, err := NewTCP(TCPConfig{Job: "gen-test", NP: 2, Procs: 2, Self: 1, Generation: 2, Addr: addr, Timeout: 2 * time.Second})
		if tr != nil {
			tr.Close()
		}
		staleErr = err
	}()
	wg.Wait()
	if leaderErr == nil {
		t.Error("leader bootstrapped a job whose only member was stale")
	}
	if staleErr == nil {
		t.Error("stale worker joined successfully")
	}
}
