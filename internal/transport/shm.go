package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"hpfnt/internal/obs"
)

// The shm wire: one mmap'd file shared by every process of the job,
// carved into lock-free single-producer/single-consumer byte-stream
// rings — one data ring per ordered rank pair plus one collective
// ring per ordered process pair. The fast path is two atomic loads,
// two memcpys and one atomic store with no syscall; waiting sides
// spin, yield, then sleep in escalating steps (poor man's futex —
// portable, and the sleep bounds idle burn at ~100µs wakeup latency).
//
// Frames are byte streams, not slots: a frame is a 4-byte little-
// endian payload length followed by the raw float64 bytes (native
// byte order — both ends share one machine by construction). A frame
// larger than the ring streams through it in chunks, so there is no
// message size limit. Send never blocks: if the frame does not fit,
// it spills to an unbounded process-local queue drained by a pump
// goroutine, preserving FIFO order per ring and keeping the engine's
// send-all-then-receive pattern deadlock-free even when two processes
// flood each other.
//
// Failure is sticky and cross-process: Fail sets a shared flag in the
// file header; every blocked wait polls it, aborts, and latches the
// local failBox, so a panic on one process unblocks all of them (the
// shm analogue of tcp's connection teardown). A process killed hard
// (SIGKILL) cannot set the flag itself, so each process additionally
// stamps a per-process liveness slot in the header every Heartbeat
// interval and watches its peers' stamps: a stamp frozen for longer
// than FailAfter publishes the dead process index in the header's
// lost slot and raises the shared flag, so every survivor surfaces
// the same *MemberLostError — a kill means a detected failure the
// recovery layer can act on, not a hang.

// Shm ring geometry. Capacities are powers of two so positions wrap
// with a mask; head/tail live on separate cache lines. One 8-rank
// job maps 64 data rings ≈ 4.2 MB of tmpfs, committed only as pages
// are touched.
const (
	shmMagic    = 0x48504653484d3136 // "HPFSHM16"
	shmVersion  = 3                  // v3: data frames carry an 8-byte correlation word
	shmHdrSize  = 4096
	shmRingCtrl = 128
	shmDataCap  = 1 << 16
	shmCollCap  = 1 << 14
)

// Header field offsets (all 8-byte slots; magic is stored last with
// release semantics, so a peer that observes it sees a fully
// initialised header). The liveness block at shmOffLive holds one
// UnixNano stamp per process, refreshed by that process's monitor
// goroutine; shmOffLost is CAS'd to 1+proc by the first survivor to
// detect a frozen stamp, before it raises the failed flag, so every
// process promotes the shared failure to the same *MemberLostError.
const (
	shmOffMagic    = 0
	shmOffVersion  = 8
	shmOffNP       = 16
	shmOffProcs    = 24
	shmOffGen      = 32
	shmOffJobHash  = 40
	shmOffFailed   = 48
	shmOffAttached = 56
	shmOffLost     = 64
	shmOffLive     = 128 // + 8·proc, bounded by the header page
)

// shmMaxProcs bounds Procs so the liveness block fits in the header.
const shmMaxProcs = (shmHdrSize - shmOffLive) / 8

// Collective frame kinds ([4]len [1]kind [len-1]payload on the
// process-pair rings; the deterministic replicated control flow means
// both ends always agree on the next expected kind).
const (
	shmColBcast byte = iota + 1
	shmColArrive
	shmColRelease
)

// shmRing is one SPSC byte-stream ring in the mapping. head and tail
// are free-running byte counts: the producer owns head, the consumer
// owns tail, and occupancy is head-tail. pending is the producer-side
// spill queue (flat frame bytes awaiting ring space), drained by the
// transport's pump goroutine.
type shmRing struct {
	head *uint64
	tail *uint64
	buf  []byte
	mask uint64

	pmu     sync.Mutex // producer side: fast path vs pump
	pending []byte
	queued  atomic.Bool // ring is on the pump's dirty list

	cmu sync.Mutex // consumer side
}

func (r *shmRing) capacity() uint64 { return r.mask + 1 }

func (r *shmRing) copyIn(pos uint64, src []byte) {
	i := int(pos & r.mask)
	n := copy(r.buf[i:], src)
	if n < len(src) {
		copy(r.buf, src[n:])
	}
}

func (r *shmRing) copyOut(pos uint64, dst []byte) {
	i := int(pos & r.mask)
	n := copy(dst, r.buf[i:])
	if n < len(dst) {
		copy(dst[n:], r.buf)
	}
}

// push appends src to the ring; the caller (holding pmu) has already
// established that it fits.
func (r *shmRing) push(src []byte) {
	head := atomic.LoadUint64(r.head)
	r.copyIn(head, src)
	atomic.StoreUint64(r.head, head+uint64(len(src)))
}

// ShmConfig describes one process's membership in a multi-process
// shm job. The rendezvous is a file whose name is derived from Job,
// Generation and Procs in Dir (default /dev/shm when present, else
// the system temp dir): the leader (Self 0) creates and initialises
// it, workers open it, validate the header and register themselves.
type ShmConfig struct {
	Job        string
	NP         int
	Procs      int
	Self       int
	Generation int
	Dir        string
	Timeout    time.Duration
	// Heartbeat is the liveness-stamp refresh interval. Zero means
	// 250ms.
	Heartbeat time.Duration
	// FailAfter is how long a peer's stamp may stay frozen before the
	// peer is declared lost with a *MemberLostError. Zero means
	// 8×Heartbeat.
	FailAfter time.Duration
}

func (cfg *ShmConfig) heartbeat() time.Duration {
	if cfg.Heartbeat > 0 {
		return cfg.Heartbeat
	}
	return 250 * time.Millisecond
}

func (cfg *ShmConfig) failAfter() time.Duration {
	if cfg.FailAfter > 0 {
		return cfg.FailAfter
	}
	return 8 * cfg.heartbeat()
}

// shm implements Transport over the mapped rings.
type shm struct {
	np, procs, self int
	gen             int
	ps              *pairSeq
	fb              *failBox
	closed          atomic.Bool
	wireTally

	path   string
	unlink bool
	mem    []byte
	failed *uint64   // shared cross-process failure flag in the header
	lost   *uint64   // 1+proc of the first detected-dead member
	live   []*uint64 // per-process liveness stamps (UnixNano)

	heartbeat time.Duration
	failAfter time.Duration
	hbStop    chan struct{}
	hbDone    chan struct{}
	hbOnce    sync.Once

	data []*shmRing // np*np, ordered (src-1)*np+(dst-1)
	coll []*shmRing // procs*procs when procs > 1, else nil

	pumpMu   sync.Mutex
	pumpCond *sync.Cond
	pumpStop bool
	dirty    []*shmRing
	pumpDone chan struct{}
}

func shmDir(override string) string {
	if override != "" {
		return override
	}
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

func shmSize(np, procs int) int {
	size := shmHdrSize + np*np*(shmRingCtrl+shmDataCap)
	if procs > 1 {
		size += procs * procs * (shmRingCtrl + shmCollCap)
	}
	return size
}

func shmJobHash(job string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(job))
	return h.Sum64()
}

func shmSanitize(job string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, job)
}

func shmPath(cfg ShmConfig) string {
	name := fmt.Sprintf("hpfnt-%s-g%d-p%d.shm", shmSanitize(cfg.Job), cfg.Generation, cfg.Procs)
	return filepath.Join(shmDir(cfg.Dir), name)
}

func shmHdrU64(b []byte, off int) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[off]))
}

func (t *shm) u64at(off int) *uint64 { return shmHdrU64(t.mem, off) }

func (t *shm) ringAt(off, cap int) *shmRing {
	return &shmRing{
		head: t.u64at(off),
		tail: t.u64at(off + 64),
		buf:  t.mem[off+shmRingCtrl : off+shmRingCtrl+cap],
		mask: uint64(cap) - 1,
	}
}

// carve builds the process-local ring views over the mapping.
func (t *shm) carve() {
	t.failed = t.u64at(shmOffFailed)
	t.lost = t.u64at(shmOffLost)
	t.live = make([]*uint64, t.procs)
	for p := range t.live {
		t.live[p] = t.u64at(shmOffLive + 8*p)
	}
	t.data = make([]*shmRing, t.np*t.np)
	off := shmHdrSize
	for i := range t.data {
		t.data[i] = t.ringAt(off, shmDataCap)
		off += shmRingCtrl + shmDataCap
	}
	if t.procs > 1 {
		t.coll = make([]*shmRing, t.procs*t.procs)
		for i := range t.coll {
			t.coll[i] = t.ringAt(off, shmCollCap)
			off += shmRingCtrl + shmCollCap
		}
	}
}

func (t *shm) start() {
	t.pumpCond = sync.NewCond(&t.pumpMu)
	t.pumpDone = make(chan struct{})
	go t.pump()
}

// NewShmLoop creates a single-process shm transport over np ranks:
// every message crosses a real shared mapping (an anonymous tmpfs
// file, unlinked immediately), exercising the ring protocol without
// spawning processes.
func NewShmLoop(np int) (Transport, error) {
	if np < 1 {
		return nil, fmt.Errorf("transport: shm needs np >= 1, got %d", np)
	}
	t := &shm{np: np, procs: 1, self: 0, ps: newPairSeq(np), fb: newFailBox()}
	f, err := os.CreateTemp(shmDir(""), "hpfnt-shm-*")
	if err != nil {
		return nil, fmt.Errorf("transport: shm backing file: %w", err)
	}
	path := f.Name()
	size := shmSize(np, 1)
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("transport: shm truncate: %w", err)
	}
	mem, err := mmapFile(f, size)
	f.Close()
	os.Remove(path) // mapping survives the unlink; nothing to clean up on exit
	if err != nil {
		return nil, fmt.Errorf("transport: shm mmap: %w", err)
	}
	t.mem = mem
	t.carve()
	t.start()
	return t, nil
}

// NewShm joins (Self > 0) or creates (Self == 0) the multi-process
// shm job described by cfg, blocking until every process has
// attached. Like the tcp rendezvous, the leader rejects nothing by
// generation — a stale worker simply computes a different file name
// and times out — but header validation catches shape mismatches.
func NewShm(cfg ShmConfig) (Transport, error) {
	if cfg.NP < 1 || cfg.Procs < 1 || cfg.Self < 0 || cfg.Self >= cfg.Procs {
		return nil, fmt.Errorf("transport: bad shm config np=%d procs=%d self=%d", cfg.NP, cfg.Procs, cfg.Self)
	}
	if cfg.Procs > shmMaxProcs {
		return nil, fmt.Errorf("transport: shm supports at most %d processes, got %d", shmMaxProcs, cfg.Procs)
	}
	if lo, hi := RanksOf(cfg.NP, cfg.Procs, cfg.Self); hi < lo {
		return nil, fmt.Errorf("transport: process %d hosts no ranks (np=%d procs=%d)", cfg.Self, cfg.NP, cfg.Procs)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Procs == 1 {
		return NewShmLoop(cfg.NP)
	}
	t := &shm{np: cfg.NP, procs: cfg.Procs, self: cfg.Self, gen: cfg.Generation, ps: newPairSeq(cfg.NP), fb: newFailBox()}
	t.heartbeat = cfg.heartbeat()
	t.failAfter = cfg.failAfter()
	t.path = shmPath(cfg)
	size := shmSize(cfg.NP, cfg.Procs)
	deadline := time.Now().Add(cfg.Timeout)
	if cfg.Self == 0 {
		os.Remove(t.path) // clear a stale mapping from a crashed job
		f, err := os.OpenFile(t.path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0600)
		if err != nil {
			return nil, fmt.Errorf("transport: shm create %s: %w", t.path, err)
		}
		t.unlink = true
		if err := f.Truncate(int64(size)); err != nil {
			f.Close()
			os.Remove(t.path)
			return nil, fmt.Errorf("transport: shm truncate: %w", err)
		}
		t.mem, err = mmapFile(f, size)
		f.Close()
		if err != nil {
			os.Remove(t.path)
			return nil, fmt.Errorf("transport: shm mmap: %w", err)
		}
		t.carve()
		atomic.StoreUint64(t.live[0], uint64(time.Now().UnixNano()))
		atomic.StoreUint64(t.u64at(shmOffVersion), shmVersion)
		atomic.StoreUint64(t.u64at(shmOffNP), uint64(cfg.NP))
		atomic.StoreUint64(t.u64at(shmOffProcs), uint64(cfg.Procs))
		atomic.StoreUint64(t.u64at(shmOffGen), uint64(cfg.Generation))
		atomic.StoreUint64(t.u64at(shmOffJobHash), shmJobHash(cfg.Job))
		atomic.StoreUint64(t.u64at(shmOffMagic), shmMagic) // publish: header complete
		attached := t.u64at(shmOffAttached)
		for atomic.LoadUint64(attached) != uint64(cfg.Procs-1) {
			if time.Now().After(deadline) {
				got := atomic.LoadUint64(attached)
				t.destroy()
				return nil, fmt.Errorf("transport: shm job %q generation %d: %d/%d workers attached before timeout",
					cfg.Job, cfg.Generation, got, cfg.Procs-1)
			}
			time.Sleep(time.Millisecond)
		}
	} else {
		// Open and wait for a sized file, then map ONLY the header page
		// and validate it before trusting the full size: a mis-shaped
		// worker computing a larger mapping than the real file would
		// fault on first touch, so the shape check must come first.
		var f *os.File
		for {
			var err error
			f, err = os.OpenFile(t.path, os.O_RDWR, 0600)
			if err == nil {
				if fi, serr := f.Stat(); serr == nil && fi.Size() >= shmHdrSize {
					break
				}
				f.Close()
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("transport: shm rendezvous %s not available before timeout (job %q generation %d)", t.path, cfg.Job, cfg.Generation)
			}
			time.Sleep(2 * time.Millisecond)
		}
		hdr, err := mmapFile(f, shmHdrSize)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("transport: shm mmap header: %w", err)
		}
		for atomic.LoadUint64(shmHdrU64(hdr, shmOffMagic)) != shmMagic {
			if time.Now().After(deadline) {
				munmapFile(hdr)
				f.Close()
				return nil, fmt.Errorf("transport: shm header never initialised (job %q)", cfg.Job)
			}
			time.Sleep(time.Millisecond)
		}
		verr := validateShmHeader(hdr, cfg)
		munmapFile(hdr)
		if verr != nil {
			f.Close()
			return nil, verr
		}
		t.mem, err = mmapFile(f, size)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("transport: shm mmap: %w", err)
		}
		t.carve()
		// Claim an attach slot before touching any shared state. A
		// nonzero liveness stamp in our own slot or an already-full
		// roster means this generation is already running: we are a
		// late replacement looking at the PREVIOUS generation's file,
		// and blindly attaching would corrupt the survivors' rings.
		// Refuse instead — the caller rejoins at the current
		// generation once the leader publishes it.
		if atomic.LoadUint64(t.live[cfg.Self]) != 0 {
			t.destroy()
			return nil, fmt.Errorf("transport: shm job %q generation %d already has a process %d (stale generation?)",
				cfg.Job, cfg.Generation, cfg.Self)
		}
		attached := t.u64at(shmOffAttached)
		for {
			a := atomic.LoadUint64(attached)
			if a >= uint64(cfg.Procs-1) {
				t.destroy()
				return nil, fmt.Errorf("transport: shm job %q generation %d is already fully attached (stale generation?)",
					cfg.Job, cfg.Generation)
			}
			if atomic.CompareAndSwapUint64(attached, a, a+1) {
				break
			}
		}
		atomic.StoreUint64(t.live[cfg.Self], uint64(time.Now().UnixNano()))
	}
	t.start()
	if err := t.Barrier(); err != nil { // job starts aligned, like tcp's bootstrap barrier
		t.Close()
		return nil, fmt.Errorf("transport: shm bootstrap barrier: %w", err)
	}
	t.startMonitor()
	return t, nil
}

// startMonitor launches the liveness goroutine: every heartbeat
// interval it refreshes this process's stamp and checks its peers'.
// A peer whose stamp stays frozen past failAfter is published in the
// header's lost slot (first detector wins) before the shared failed
// flag is raised, so every survivor's failedNow promotes the failure
// to the same *MemberLostError.
func (t *shm) startMonitor() {
	if t.procs == 1 {
		return
	}
	t.hbStop = make(chan struct{})
	t.hbDone = make(chan struct{})
	go func() {
		defer close(t.hbDone)
		tick := time.NewTicker(t.heartbeat)
		defer tick.Stop()
		limit := int64(t.failAfter)
		for {
			select {
			case <-t.hbStop:
				return
			case <-t.fb.stop:
				return
			case <-tick.C:
			}
			now := time.Now().UnixNano()
			atomic.StoreUint64(t.live[t.self], uint64(now))
			for p := 0; p < t.procs; p++ {
				if p == t.self {
					continue
				}
				st := atomic.LoadUint64(t.live[p])
				if st == 0 || now-int64(st) <= limit {
					continue
				}
				atomic.CompareAndSwapUint64(t.lost, 0, uint64(p+1))
				atomic.StoreUint64(t.failed, 1)
				t.Fail(&MemberLostError{Proc: p, Cause: "liveness stamp stale"})
				return
			}
		}
	}()
}

// stopMonitor stops the liveness goroutine and waits for it, so the
// mapping can be unmapped safely.
func (t *shm) stopMonitor() {
	if t.hbDone == nil {
		return
	}
	t.hbOnce.Do(func() { close(t.hbStop) })
	<-t.hbDone
}

func validateShmHeader(hdr []byte, cfg ShmConfig) error {
	ver := atomic.LoadUint64(shmHdrU64(hdr, shmOffVersion))
	np := atomic.LoadUint64(shmHdrU64(hdr, shmOffNP))
	procs := atomic.LoadUint64(shmHdrU64(hdr, shmOffProcs))
	gen := atomic.LoadUint64(shmHdrU64(hdr, shmOffGen))
	job := atomic.LoadUint64(shmHdrU64(hdr, shmOffJobHash))
	if ver != shmVersion || np != uint64(cfg.NP) || procs != uint64(cfg.Procs) ||
		gen != uint64(cfg.Generation) || job != shmJobHash(cfg.Job) {
		return fmt.Errorf("transport: shm header mismatch (job %q np=%d procs=%d generation=%d vs mapped np=%d procs=%d generation=%d)",
			cfg.Job, cfg.NP, cfg.Procs, cfg.Generation, np, procs, gen)
	}
	return nil
}

// destroy unmaps without the pump handshake (bootstrap-failure path;
// the pump has not started yet).
func (t *shm) destroy() {
	if t.mem != nil {
		munmapFile(t.mem)
		t.mem = nil
	}
	if t.unlink {
		os.Remove(t.path)
	}
}

func (t *shm) Kind() string        { return Shm }
func (t *shm) NP() int             { return t.np }
func (t *shm) Procs() int          { return t.procs }
func (t *shm) Self() int           { return t.self }
func (t *shm) HostOf(rank int) int { return HostOfRank(t.np, t.procs, rank) }

func (t *shm) dataRing(src, dst int) *shmRing { return t.data[(src-1)*t.np+(dst-1)] }
func (t *shm) collRing(from, to int) *shmRing { return t.coll[from*t.procs+to] }

// failedNow reports whether the transport is failed or closed,
// promoting the shared cross-process flag into the local failBox so
// Err observes it.
func (t *shm) failedNow() bool {
	if t.closed.Load() {
		return true
	}
	select {
	case <-t.fb.stop:
		return true
	default:
	}
	if t.failed != nil && atomic.LoadUint64(t.failed) != 0 {
		if t.lost != nil {
			if v := atomic.LoadUint64(t.lost); v != 0 {
				t.fb.fail(&MemberLostError{Proc: int(v - 1), Cause: "liveness stamp stale"})
				return true
			}
		}
		t.fb.fail(errors.New("transport: shm job failed on a peer process"))
		return true
	}
	return false
}

// relax is the waiting side's escalation: spin hot briefly (the
// common case is a peer already mid-copy), yield the P for a while,
// then sleep in steps capped at 100µs so an idle wait costs ~zero CPU
// while wakeup latency stays far below a scheduler quantum.
func relax(spins int) {
	switch {
	case spins < 64:
	case spins < 1024:
		runtime.Gosched()
	default:
		d := time.Duration(spins-1023) * time.Microsecond
		if d > 100*time.Microsecond {
			d = 100 * time.Microsecond
		}
		time.Sleep(d)
	}
}

// readFull drains len(dst) bytes from r, blocking as needed; false
// when the transport fails first. Bytes already in the ring are
// delivered even after a failure (drain-then-nil, like the tcp
// mailboxes).
func (t *shm) readFull(r *shmRing, dst []byte) bool {
	got, spins := 0, 0
	for got < len(dst) {
		head := atomic.LoadUint64(r.head)
		tail := atomic.LoadUint64(r.tail)
		if avail := head - tail; avail > 0 {
			n := uint64(len(dst) - got)
			if n > avail {
				n = avail
			}
			r.copyOut(tail, dst[got:got+int(n)])
			atomic.StoreUint64(r.tail, tail+n)
			got += int(n)
			spins = 0
			continue
		}
		if t.failedNow() {
			return false
		}
		spins++
		relax(spins)
	}
	return true
}

// writeFull streams src into r, blocking on ring space; used by the
// collective rings and the pump, never by Send's caller path.
func (t *shm) writeFull(r *shmRing, src []byte) bool {
	done, spins := 0, 0
	for done < len(src) {
		head := atomic.LoadUint64(r.head)
		tail := atomic.LoadUint64(r.tail)
		if free := r.capacity() - (head - tail); free > 0 {
			n := len(src) - done
			if uint64(n) > free {
				n = int(free)
			}
			r.copyIn(head, src[done:done+n])
			atomic.StoreUint64(r.head, head+uint64(n))
			done += n
			spins = 0
			continue
		}
		if t.failedNow() {
			return false
		}
		spins++
		relax(spins)
	}
	return true
}

func floatBytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func (t *shm) Send(src, dst int, msg []float64) {
	if t.failedNow() {
		return // failed transport: drop
	}
	corr := t.ps.nextCorr(src, dst)
	tracing := obs.TraceEnabled()
	var start time.Time
	if tracing {
		start = time.Now()
	}
	r := t.dataRing(src, dst)
	// Data frame: [4]payload-byte-len [8]corr [payload].
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)*8))
	binary.LittleEndian.PutUint64(hdr[4:], corr)
	payload := floatBytes(msg)
	r.pmu.Lock()
	if len(r.pending) == 0 {
		head := atomic.LoadUint64(r.head)
		tail := atomic.LoadUint64(r.tail)
		if free := r.capacity() - (head - tail); free >= uint64(len(hdr)+len(payload)) {
			r.push(hdr[:])
			r.push(payload)
			r.pmu.Unlock()
			t.countSend(int64(len(hdr) + len(payload)))
			if tracing {
				traceMsg("send", t.gen, src, dst, len(msg), corr, start)
			}
			return
		}
	}
	// Slow path: the receiver is behind (or a huge frame); spill and
	// let the pump stream it in so Send never blocks. A spill is the
	// shm wire's stall signal: the ring was full.
	r.pending = append(r.pending, hdr[:]...)
	r.pending = append(r.pending, payload...)
	r.pmu.Unlock()
	t.countStall()
	t.countSend(int64(len(hdr) + len(payload)))
	t.markDirty(r)
	if tracing {
		traceMsg("send", t.gen, src, dst, len(msg), corr, start)
	}
}

func (t *shm) Recv(src, dst int) []float64 {
	tracing := obs.TraceEnabled()
	var start time.Time
	if tracing {
		start = time.Now()
	}
	r := t.dataRing(src, dst)
	r.cmu.Lock()
	defer r.cmu.Unlock()
	var hdr [12]byte
	if !t.readFull(r, hdr[:]) {
		return nil
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	corr := binary.LittleEndian.Uint64(hdr[4:])
	out := make([]float64, n/8)
	if n > 0 && !t.readFull(r, floatBytes(out)) {
		return nil
	}
	t.countRecv(int64(len(hdr)) + int64(n))
	if tracing {
		traceMsg("recv", t.gen, src, dst, len(out), corr, start)
	}
	return out
}

// collWrite emits one collective frame on a process-pair ring.
func (t *shm) collWrite(r *shmRing, kind byte, payload []byte) bool {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = kind
	return t.writeFull(r, hdr[:]) && t.writeFull(r, payload)
}

// collRead consumes the next collective frame, checking it carries
// the expected kind (the replicated control flow guarantees agreement;
// a mismatch is a protocol bug and fails the job).
func (t *shm) collRead(r *shmRing, want byte) ([]float64, bool) {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	var hdr [5]byte
	if !t.readFull(r, hdr[:]) {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if hdr[4] != want || n < 1 || (n-1)%8 != 0 {
		t.Fail(fmt.Errorf("transport: shm collective protocol error (kind %d, want %d)", hdr[4], want))
		return nil, false
	}
	out := make([]float64, (n-1)/8)
	if len(out) == 0 {
		return out, true
	}
	if !t.readFull(r, floatBytes(out)) {
		return nil, false
	}
	return out, true
}

func (t *shm) Bcast(from int, vals []float64) []float64 {
	if t.procs == 1 {
		return vals
	}
	if from == t.self {
		payload := floatBytes(vals)
		for p := 0; p < t.procs; p++ {
			if p == t.self {
				continue
			}
			if !t.collWrite(t.collRing(t.self, p), shmColBcast, payload) {
				return nil
			}
		}
		return vals
	}
	out, ok := t.collRead(t.collRing(from, t.self), shmColBcast)
	if !ok {
		return nil
	}
	return out
}

// Barrier gathers an arrive frame from every worker on the leader's
// rings, then the leader releases them — two hops on memory.
func (t *shm) Barrier() error {
	if t.procs == 1 {
		return t.fb.get()
	}
	if t.self == 0 {
		for p := 1; p < t.procs; p++ {
			if _, ok := t.collRead(t.collRing(p, 0), shmColArrive); !ok {
				return t.barrierErr()
			}
		}
		for p := 1; p < t.procs; p++ {
			if !t.collWrite(t.collRing(0, p), shmColRelease, nil) {
				return t.barrierErr()
			}
		}
	} else {
		if !t.collWrite(t.collRing(t.self, 0), shmColArrive, nil) {
			return t.barrierErr()
		}
		if _, ok := t.collRead(t.collRing(0, t.self), shmColRelease); !ok {
			return t.barrierErr()
		}
	}
	return t.fb.get()
}

func (t *shm) barrierErr() error {
	if err := t.fb.get(); err != nil {
		return err
	}
	return errors.New("transport: shm barrier aborted")
}

func (t *shm) Fail(err error) {
	if t.fb.fail(err) && t.failed != nil {
		atomic.StoreUint64(t.failed, 1)
	}
	t.pumpMu.Lock()
	t.pumpCond.Broadcast()
	t.pumpMu.Unlock()
}

func (t *shm) Err() error { return t.fb.get() }

func (t *shm) Status() Health {
	h := Health{Procs: t.procs, Self: t.self, Generation: t.gen, Alive: make([]bool, t.procs), Err: t.fb.get()}
	now := time.Now().UnixNano()
	for p := range h.Alive {
		if p == t.self || t.procs == 1 {
			h.Alive[p] = true
			continue
		}
		if t.closed.Load() || t.live == nil {
			continue
		}
		st := atomic.LoadUint64(t.live[p])
		h.Alive[p] = st != 0 && now-int64(st) <= int64(t.failAfter)
	}
	if p, ok := AsMemberLost(h.Err); ok && p >= 0 && p < len(h.Alive) {
		h.Alive[p] = false
	}
	return h
}

// Staleness reports time since each peer's liveness stamp was last
// refreshed (HeartbeatStats).
func (t *shm) Staleness() []time.Duration {
	out := make([]time.Duration, t.procs)
	now := time.Now().UnixNano()
	for p := range out {
		if p == t.self || t.procs == 1 || t.closed.Load() || t.live == nil {
			continue
		}
		if st := atomic.LoadUint64(t.live[p]); st != 0 {
			out[p] = time.Duration(now - int64(st))
		}
	}
	return out
}

// killAbrupt emulates a SIGKILL for the chaos wire: the liveness
// monitor stops (freezing this process's stamp) and the local
// transport fails sticky with ErrChaosKilled — the shared failed flag
// is deliberately NOT raised, so peers only learn of the death the
// way they would for a real kill: by watching the stamp go stale.
func (t *shm) killAbrupt() {
	t.stopMonitor()
	if t.fb.fail(ErrChaosKilled) {
		t.pumpMu.Lock()
		t.pumpCond.Broadcast()
		t.pumpMu.Unlock()
	}
}

func (t *shm) markDirty(r *shmRing) {
	if !r.queued.CompareAndSwap(false, true) {
		return
	}
	t.pumpMu.Lock()
	t.dirty = append(t.dirty, r)
	t.pumpCond.Signal()
	t.pumpMu.Unlock()
}

// drain moves spilled bytes into the ring as space allows. Reports
// whether any progress was made and whether bytes remain.
func (r *shmRing) drain() (progressed, remaining bool) {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	if len(r.pending) == 0 {
		return false, false
	}
	head := atomic.LoadUint64(r.head)
	tail := atomic.LoadUint64(r.tail)
	free := r.capacity() - (head - tail)
	if free == 0 {
		return false, true
	}
	n := uint64(len(r.pending))
	if n > free {
		n = free
	}
	r.push(r.pending[:n])
	if int(n) == len(r.pending) {
		r.pending = nil
		return true, false
	}
	r.pending = r.pending[n:]
	return true, true
}

// pump is the per-process drainer of spilled sends: it retries dirty
// rings until their pending bytes fit, sleeping in escalating steps
// when no ring makes progress (receivers are busy computing).
func (t *shm) pump() {
	defer close(t.pumpDone)
	backoff := 0
	for {
		t.pumpMu.Lock()
		for len(t.dirty) == 0 && !t.pumpStop {
			t.pumpCond.Wait()
		}
		if t.pumpStop {
			t.pumpMu.Unlock()
			return
		}
		work := t.dirty
		t.dirty = nil
		t.pumpMu.Unlock()
		for _, r := range work {
			r.queued.Store(false)
		}
		if t.failedNow() {
			// Failed transport: pending messages are dropped, like Send.
			for _, r := range work {
				r.pmu.Lock()
				r.pending = nil
				r.pmu.Unlock()
			}
			continue
		}
		progressed := false
		for _, r := range work {
			p, rem := r.drain()
			progressed = progressed || p
			if rem {
				t.markDirty(r)
			}
		}
		if !progressed {
			backoff++
			d := time.Duration(backoff) * time.Microsecond
			if d > 100*time.Microsecond {
				d = 100 * time.Microsecond
			}
			time.Sleep(d)
		} else {
			backoff = 0
		}
	}
}

// Close stops the pump, unmaps and (on the leader) unlinks. Callers
// close with the engine idle — same contract as the tcp teardown —
// so no goroutine still touches the mapping when it goes away.
func (t *shm) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	t.stopMonitor()
	t.pumpMu.Lock()
	t.pumpStop = true
	t.pumpCond.Broadcast()
	t.pumpMu.Unlock()
	<-t.pumpDone
	if t.mem != nil {
		munmapFile(t.mem)
		t.mem = nil
	}
	if t.unlink {
		os.Remove(t.path)
	}
	return nil
}
