package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// EpochMarker is implemented by transports that accept epoch
// boundaries from the execution layer. The elastic driver calls
// MarkEpoch at the start of every epoch chunk; the chaos wire keys
// its scripted faults on it, which is what makes fault injection
// deterministic: "kill process 2 at epoch 5" fires at exactly the
// same point of the computation on every run and every wire.
type EpochMarker interface {
	MarkEpoch(epoch int)
}

// ChaosPlan scripts the faults a chaos transport injects. Faults are
// gated on Generation: they fire only while the wrapped transport is
// at that job generation, so after a recovery (generation bump) the
// replayed epochs pass the scripted point without re-firing — no
// shared cross-process state needed for exactly-once injection.
type ChaosPlan struct {
	// Generation gates every scripted fault (zero matches the first
	// generation of a job).
	Generation int

	// DelayEvery > 0 delays every Nth Send by Delay, simulating a
	// slow or congested wire without changing delivery order.
	DelayEvery int
	Delay      time.Duration

	// KillAtEpoch > 0 reports member KillProc as lost (a sticky
	// *MemberLostError) at the start of that epoch — a detected
	// loss, as if the local failure detector had fired.
	KillAtEpoch int
	KillProc    int

	// DieAtEpoch > 0 makes the process whose index is DieProc die
	// abruptly at the start of that epoch: the inner transport is
	// torn down with no goodbye (sockets closed raw, liveness stamp
	// frozen) so every OTHER member discovers the death through its
	// own failure detector, exactly as for a SIGKILL. On a wire with
	// no abrupt-kill hook (inproc) it degrades to a local sticky
	// ErrChaosKilled failure.
	DieAtEpoch int
	DieProc    int

	// DropConnAtEpoch > 0 severs the raw connection to DropPeer at
	// the start of that epoch (tcp only; a no-op on connectionless
	// wires). Both ends of the dead socket attribute the loss.
	DropConnAtEpoch int
	DropPeer        int
}

// abruptKiller is the SIGKILL-emulation hook of the tcp and shm
// transports.
type abruptKiller interface{ killAbrupt() }

// connDropper is the connection-severing hook of the tcp transport.
type connDropper interface{ dropConn(peer int) }

// chaos wraps an inner transport with deterministic fault injection.
type chaos struct {
	inner Transport
	plan  *ChaosPlan

	sends    atomic.Int64
	killOnce sync.Once
	dieOnce  sync.Once
	dropOnce sync.Once
}

// NewChaos wraps inner with the scripted fault plan. The wrapper is a
// full Transport plus an EpochMarker; drive it under the elastic
// layer (which marks epochs) or call MarkEpoch directly from a test
// harness. Wrap each generation's transport with the same *ChaosPlan:
// the plan's Generation gate keeps faults from re-firing on replay.
func NewChaos(inner Transport, plan *ChaosPlan) Transport {
	return &chaos{inner: inner, plan: plan}
}

func (t *chaos) Kind() string        { return t.inner.Kind() }
func (t *chaos) NP() int             { return t.inner.NP() }
func (t *chaos) Procs() int          { return t.inner.Procs() }
func (t *chaos) Self() int           { return t.inner.Self() }
func (t *chaos) HostOf(rank int) int { return t.inner.HostOf(rank) }

func (t *chaos) Send(src, dst int, msg []float64) {
	if n := t.plan.DelayEvery; n > 0 && t.plan.Delay > 0 {
		if t.sends.Add(1)%int64(n) == 0 {
			time.Sleep(t.plan.Delay)
		}
	}
	t.inner.Send(src, dst, msg)
}

func (t *chaos) Recv(src, dst int) []float64              { return t.inner.Recv(src, dst) }
func (t *chaos) Bcast(from int, vals []float64) []float64 { return t.inner.Bcast(from, vals) }
func (t *chaos) Barrier() error                           { return t.inner.Barrier() }
func (t *chaos) Fail(err error)                           { t.inner.Fail(err) }
func (t *chaos) Err() error                               { return t.inner.Err() }
func (t *chaos) Status() Health                           { return t.inner.Status() }
func (t *chaos) Close() error                             { return t.inner.Close() }

// Wire passes through the inner wire's counters (zero when the inner
// transport does not meter itself).
func (t *chaos) Wire() WireStats {
	if wc, ok := t.inner.(WireCounter); ok {
		return wc.Wire()
	}
	return WireStats{}
}

// Staleness passes through the inner wire's heartbeat view.
func (t *chaos) Staleness() []time.Duration {
	if hs, ok := t.inner.(HeartbeatStats); ok {
		return hs.Staleness()
	}
	return make([]time.Duration, t.inner.Procs())
}

// armed reports whether scripted faults apply at the inner
// transport's current generation.
func (t *chaos) armed() bool {
	return t.inner.Status().Generation == t.plan.Generation
}

// MarkEpoch fires any fault scripted at or before the given epoch
// (at most once per wrapper; the generation gate stops replays).
func (t *chaos) MarkEpoch(epoch int) {
	p := t.plan
	if p.DropConnAtEpoch > 0 && epoch >= p.DropConnAtEpoch && t.armed() {
		t.dropOnce.Do(func() {
			if d, ok := t.inner.(connDropper); ok {
				d.dropConn(p.DropPeer)
			}
		})
	}
	if p.DieAtEpoch > 0 && epoch >= p.DieAtEpoch && t.inner.Self() == p.DieProc && t.armed() {
		t.dieOnce.Do(func() {
			if k, ok := t.inner.(abruptKiller); ok {
				k.killAbrupt()
			} else {
				t.inner.Fail(ErrChaosKilled)
			}
		})
	}
	if p.KillAtEpoch > 0 && epoch >= p.KillAtEpoch && t.armed() {
		t.killOnce.Do(func() {
			t.inner.Fail(&MemberLostError{Proc: p.KillProc, Cause: "chaos scripted loss"})
		})
	}
}
