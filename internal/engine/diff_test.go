package engine

import (
	"testing"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
	"hpfnt/internal/runtime"
)

// scenario is one differential-test case: two mappings over the same
// 2-D domain, a shifted statement, a schedule replay, a remap and a
// reduction. run executes it on one backend and returns everything
// observable; the fuzz target asserts both backends observe exactly
// the same.
type scenario struct {
	np       int
	n        int
	f1, f2   dist.Format
	shift    [2]int
	srcRep   bool // use a replicated source term
	replayIt int
	// tkind is the spmd transport the scenario runs on ("inproc",
	// "shm" or
	// "tcp"); the sim backend performs no communication.
	tkind string
}

type outcome struct {
	errs   []string
	data   []float64
	moved  int
	sum    float64
	report machine.Report
}

func buildMapping(t *testing.T, sys *proc.System, dom index.Domain, f dist.Format) core.ElementMapping {
	t.Helper()
	arr, ok := sys.Lookup("P")
	if !ok {
		var err error
		arr, err = sys.DeclareArray("P", index.Standard(1, sys.AP.N()))
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := dist.New(dom, []dist.Format{f, dist.Collapsed{}}, proc.Whole(arr))
	if err != nil {
		t.Skipf("invalid format for domain: %v", err)
	}
	return core.DistMapping{D: d}
}

func replicatedMapping(t *testing.T, sys *proc.System, dom index.Domain) core.ElementMapping {
	t.Helper()
	arr, ok := sys.Lookup("REP")
	if !ok {
		var err error
		arr, err = sys.DeclareScalar("REP", proc.ScalarReplicated)
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := dist.New(dom, []dist.Format{dist.Collapsed{}, dist.Collapsed{}}, proc.Whole(arr))
	if err != nil {
		t.Fatal(err)
	}
	return core.DistMapping{D: d}
}

// run executes the scenario on the given backend kind. Mapping
// construction is shared; only the execution backend differs.
func (sc scenario) run(t *testing.T, kind string) outcome {
	t.Helper()
	var out outcome
	fail := func(err error) {
		out.errs = append(out.errs, err.Error())
	}
	sys, err := proc.NewSystem(sc.np)
	if err != nil {
		t.Fatal(err)
	}
	dom := index.Standard(1, sc.n, 1, sc.n)
	m1 := buildMapping(t, sys, dom, sc.f1)
	m2 := buildMapping(t, sys, dom, sc.f2)
	tkind := sc.tkind
	if tkind == "" {
		tkind = InprocTransport
	}
	eng, err := NewOn(kind, tkind, sc.np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	a, err := eng.NewArray("A", m1)
	if err != nil {
		fail(err)
		return out
	}
	b, err := eng.NewArray("B", m2)
	if err != nil {
		fail(err)
		return out
	}
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0]*13 - tu[1]*5) })
	terms := []Term{Read(a, 0.5, 0, 0), Read(a, 1, sc.shift[0], sc.shift[1])}
	if sc.srcRep {
		r, err := eng.NewArray("R", replicatedMapping(t, sys, dom))
		if err != nil {
			fail(err)
			return out
		}
		r.Fill(func(tu index.Tuple) float64 { return float64(tu[0] + 100*tu[1]) })
		terms = append(terms, Read(r, 2, 0, 0))
	}
	lo0, hi0 := 1, sc.n
	lo1, hi1 := 1, sc.n
	if sc.shift[0] < 0 {
		lo0 = 1 - sc.shift[0]
	} else {
		hi0 = sc.n - sc.shift[0]
	}
	if sc.shift[1] < 0 {
		lo1 = 1 - sc.shift[1]
	} else {
		hi1 = sc.n - sc.shift[1]
	}
	if lo0 > hi0 || lo1 > hi1 {
		return out
	}
	region := index.Standard(lo0, hi0, lo1, hi1)
	if err := b.Assign(region, terms); err != nil {
		fail(err)
	}
	sched, err := b.NewSchedule(region, terms)
	if err != nil {
		fail(err)
	} else if err := sched.ExecuteN(sc.replayIt); err != nil {
		fail(err)
	}
	moved, err := a.Remap(m2)
	if err != nil {
		fail(err)
	}
	out.moved = moved
	sum, err := b.Reduce(runtime.ReduceSum)
	if err != nil {
		fail(err)
	}
	out.sum = sum
	out.data = append(a.Data(), b.Data()...)
	out.report = eng.Stats()
	return out
}

func formatFor(sel, k uint8, n, np int) dist.Format {
	switch sel % 5 {
	case 0:
		return dist.Block{}
	case 1:
		return dist.BlockVienna{}
	case 2:
		return dist.Cyclic{K: int(k%5) + 1}
	case 3:
		bounds := make([]int, np-1)
		for i := range bounds {
			b := (i + 1) * n / np
			b += int(k) % 3
			if b > n {
				b = n
			}
			if i > 0 && b < bounds[i-1] {
				b = bounds[i-1]
			}
			bounds[i] = b
		}
		return dist.GeneralBlock{Bounds: bounds}
	default:
		owner := make([]int, n)
		x := uint32(k)*2654435761 + 1
		for i := range owner {
			x = x*1664525 + 1013904223
			owner[i] = int(x>>16)%np + 1
		}
		f, err := dist.NewIndirect(owner)
		if err != nil {
			return dist.Block{}
		}
		return f
	}
}

// FuzzEngineEquivalence is the differential fuzz target of the spmd
// engine against the sequential oracle: for random formats, shifts,
// replicated sources, remaps and transports (inproc channels, shm
// rings or tcp loopback sockets), both backends must produce
// identical array values, identical remap counts, identical
// reduction results and an identical machine.Report.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(12), uint8(0), uint8(2), uint8(0), uint8(1), uint8(2), false, uint8(0))
	f.Add(uint8(3), uint8(9), uint8(2), uint8(4), uint8(3), uint8(3), uint8(3), false, uint8(2))
	f.Add(uint8(5), uint8(16), uint8(4), uint8(1), uint8(7), uint8(2), uint8(0), true, uint8(1))
	f.Add(uint8(2), uint8(7), uint8(3), uint8(0), uint8(1), uint8(4), uint8(2), false, uint8(2))
	f.Add(uint8(6), uint8(10), uint8(1), uint8(4), uint8(9), uint8(2), uint8(2), true, uint8(1))
	f.Fuzz(func(t *testing.T, npB, nB, sel1, sel2, k, sh0, sh1 uint8, srcRep bool, wireSel uint8) {
		np := int(npB%7) + 2
		n := int(nB%20) + 4
		wires := Transports()
		tkind := wires[int(wireSel)%len(wires)]
		sc := scenario{
			np:       np,
			n:        n,
			f1:       formatFor(sel1, k, n, np),
			f2:       formatFor(sel2, k+1, n, np),
			shift:    [2]int{int(sh0%5) - 2, int(sh1%5) - 2},
			srcRep:   srcRep,
			replayIt: 2,
			tkind:    tkind,
		}
		sim := sc.run(t, Sim)
		spmd := sc.run(t, SPMD)
		if len(sim.errs) != len(spmd.errs) {
			t.Fatalf("error mismatch: sim %v, spmd %v", sim.errs, spmd.errs)
		}
		if len(sim.errs) > 0 {
			return
		}
		if sim.moved != spmd.moved {
			t.Fatalf("moved: sim %d, spmd %d", sim.moved, spmd.moved)
		}
		if sim.sum != spmd.sum {
			t.Fatalf("reduce: sim %g, spmd %g", sim.sum, spmd.sum)
		}
		if len(sim.data) != len(spmd.data) {
			t.Fatalf("data length: sim %d, spmd %d", len(sim.data), len(spmd.data))
		}
		for i := range sim.data {
			if sim.data[i] != spmd.data[i] {
				t.Fatalf("value mismatch at %d: sim %g, spmd %g", i, sim.data[i], spmd.data[i])
			}
		}
		if sim.report != spmd.report {
			t.Fatalf("report mismatch:\n sim  %+v\n spmd %+v", sim.report, spmd.report)
		}
	})
}
