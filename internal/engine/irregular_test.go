package engine

import (
	"strings"
	"testing"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
)

// rank1Mapping distributes 1:n by f over np processors.
func rank1Mapping(t *testing.T, sys *proc.System, n int, f dist.Format) core.ElementMapping {
	t.Helper()
	arr, ok := sys.Lookup("P")
	if !ok {
		var err error
		arr, err = sys.DeclareArray("P", index.Standard(1, sys.AP.N()))
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := dist.New(index.Standard(1, n), []dist.Format{f}, proc.Whole(arr))
	if err != nil {
		t.Fatalf("rank-1 mapping: %v", err)
	}
	return core.DistMapping{D: d}
}

// irregularOutcome runs a small CSR-style gather on one backend.
func irregularOutcome(t *testing.T, kind string, iters int) ([]float64, machine.Report) {
	t.Helper()
	const n, np = 24, 4
	sys, err := proc.NewSystem(np)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, n)
	for i := range owner {
		owner[i] = (i*7)%np + 1
	}
	indir, err := dist.NewIndirect(owner)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(kind, np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	x, err := eng.NewArray("X", rank1Mapping(t, sys, n, indir))
	if err != nil {
		t.Fatal(err)
	}
	y, err := eng.NewArray("Y", rank1Mapping(t, sys, n, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	x.Fill(func(tu index.Tuple) float64 { return float64(tu[0]*tu[0] - 3) })
	// y(i) = 2·x(i*5 mod n + 1) + x(i), flattened per access.
	var pat inspector.Pattern
	for i := 0; i < n; i++ {
		pat.Writes = append(pat.Writes, int32(i), int32(i))
		pat.Reads = append(pat.Reads, int32((i*5)%n), int32(i))
		pat.Coeffs = append(pat.Coeffs, 2, 1)
	}
	sched, err := y.NewIrregular(x, pat)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ExecuteN(iters); err != nil {
		t.Fatal(err)
	}
	return y.Data(), eng.Stats()
}

// TestIrregularSimSpmdAgree asserts the two backends compute the same
// values and charge identical statistics for an irregular gather, and
// that replay (schedule reuse) leaves the values fixed while scaling
// the traffic linearly.
func TestIrregularSimSpmdAgree(t *testing.T) {
	simVals, simRep := irregularOutcome(t, Sim, 1)
	spmdVals, spmdRep := irregularOutcome(t, SPMD, 1)
	for i := range simVals {
		if simVals[i] != spmdVals[i] {
			t.Fatalf("value mismatch at %d: sim %g, spmd %g", i, simVals[i], spmdVals[i])
		}
	}
	if simRep != spmdRep {
		t.Fatalf("report mismatch:\n sim  %+v\n spmd %+v", simRep, spmdRep)
	}
	sim3Vals, sim3Rep := irregularOutcome(t, Sim, 3)
	spmd3Vals, spmd3Rep := irregularOutcome(t, SPMD, 3)
	for i := range sim3Vals {
		if sim3Vals[i] != simVals[i] || spmd3Vals[i] != simVals[i] {
			t.Fatalf("replay changed values at %d", i)
		}
	}
	if sim3Rep != spmd3Rep {
		t.Fatalf("replay report mismatch:\n sim  %+v\n spmd %+v", sim3Rep, spmd3Rep)
	}
	if sim3Rep.ElementsMoved != 3*simRep.ElementsMoved || sim3Rep.Messages != 3*simRep.Messages {
		t.Fatalf("replay traffic not linear: 1 iter %+v, 3 iters %+v", simRep, sim3Rep)
	}
}

// TestIrregularOracleValues checks the gather against a direct
// sequential computation of the same statement.
func TestIrregularOracleValues(t *testing.T) {
	const n, np = 17, 3
	sys, err := proc.NewSystem(np)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Sim, np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	x, err := eng.NewArray("X", rank1Mapping(t, sys, n, dist.Cyclic{K: 2}))
	if err != nil {
		t.Fatal(err)
	}
	y, err := eng.NewArray("Y", rank1Mapping(t, sys, n, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	fill := func(tu index.Tuple) float64 { return float64(3*tu[0] + 1) }
	x.Fill(fill)
	y.Fill(func(tu index.Tuple) float64 { return -1 })
	// y(i) = x(perm(i)) + 0.5·x(i) for even offsets only; odd offsets
	// keep their old value.
	var pat inspector.Pattern
	for i := 0; i < n; i += 2 {
		pat.Writes = append(pat.Writes, int32(i), int32(i))
		pat.Reads = append(pat.Reads, int32((i+5)%n), int32(i))
		pat.Coeffs = append(pat.Coeffs, 1, 0.5)
	}
	sched, err := y.NewIrregular(x, pat)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Execute(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := -1.0
		if i%2 == 0 {
			want = float64(3*((i+5)%n+1)+1) + 0.5*float64(3*(i+1)+1)
		}
		if got := y.Data()[i]; got != want {
			t.Fatalf("y[%d] = %g, want %g", i, got, want)
		}
	}
}

// TestIrregularInvalidation: remapping either array must invalidate
// the schedule on both backends, with matching error behavior.
func TestIrregularInvalidation(t *testing.T) {
	for _, kind := range Kinds() {
		const n, np = 12, 3
		sys, err := proc.NewSystem(np)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(kind, np, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		x, err := eng.NewArray("X", rank1Mapping(t, sys, n, dist.Block{}))
		if err != nil {
			t.Fatal(err)
		}
		y, err := eng.NewArray("Y", rank1Mapping(t, sys, n, dist.Cyclic{K: 1}))
		if err != nil {
			t.Fatal(err)
		}
		pat := inspector.Pattern{Writes: []int32{0, 5}, Reads: []int32{11, 2}}
		sched, err := y.NewIrregular(x, pat)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Execute(); err != nil {
			t.Fatal(err)
		}
		if _, err := x.Remap(rank1Mapping(t, sys, n, dist.Cyclic{K: 2})); err != nil {
			t.Fatal(err)
		}
		err = sched.Execute()
		if err == nil || !strings.Contains(err.Error(), "invalidated by remap") {
			t.Fatalf("%s: stale irregular schedule executed: %v", kind, err)
		}
	}
}

// TestIrregularReplicatedRefused: both backends refuse replicated
// arrays with the shared error text.
func TestIrregularReplicatedRefused(t *testing.T) {
	for _, kind := range Kinds() {
		const n, np = 8, 2
		sys, err := proc.NewSystem(np)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := sys.DeclareScalar("REP", proc.ScalarReplicated)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dist.New(index.Standard(1, n), []dist.Format{dist.Collapsed{}}, proc.Whole(arr))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(kind, np, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		r, err := eng.NewArray("R", core.DistMapping{D: d})
		if err != nil {
			t.Fatal(err)
		}
		y, err := eng.NewArray("Y", rank1Mapping(t, sys, n, dist.Block{}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := y.NewIrregular(r, inspector.Pattern{Writes: []int32{0}, Reads: []int32{0}}); err == nil || !strings.Contains(err.Error(), inspector.ErrReplicated) {
			t.Fatalf("%s: replicated source accepted: %v", kind, err)
		}
		if _, err := r.NewIrregular(y, inspector.Pattern{Writes: []int32{0}, Reads: []int32{0}}); err == nil || !strings.Contains(err.Error(), inspector.ErrReplicated) {
			t.Fatalf("%s: replicated lhs accepted: %v", kind, err)
		}
	}
}
