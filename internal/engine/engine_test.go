package engine

import (
	"testing"

	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("nope", 4, machine.DefaultCost()); err == nil {
		t.Fatal("unknown backend must fail")
	}
	if _, err := New(Sim, 0, machine.DefaultCost()); err == nil {
		t.Fatal("np=0 must fail on sim")
	}
	if _, err := New(SPMD, 0, machine.DefaultCost()); err == nil {
		t.Fatal("np=0 must fail on spmd")
	}
	if len(Kinds()) != 2 {
		t.Fatalf("kinds = %v", Kinds())
	}
}

func TestBackendsAgreeOnBasics(t *testing.T) {
	for _, kind := range Kinds() {
		eng, err := New(kind, 4, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		if eng.Kind() != kind || eng.NP() != 4 || eng.Machine() == nil {
			t.Fatalf("%s: bad identity", kind)
		}
		sys, _ := proc.NewSystem(4)
		m := buildMapping(t, sys, index.Standard(1, 16, 1, 4), dist.Block{})
		a, err := eng.NewArray("A", m)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != "A" || a.Replicated() || a.Mapping() != m {
			t.Fatalf("%s: bad array identity", kind)
		}
		a.Fill(func(tu index.Tuple) float64 { return float64(tu[0] + tu[1]) })
		a.Set(index.Tuple{3, 2}, 99)
		if a.At(index.Tuple{3, 2}) != 99 {
			t.Fatalf("%s: Set/At roundtrip failed", kind)
		}
		if got := len(a.Data()); got != 64 {
			t.Fatalf("%s: Data length %d", kind, got)
		}
		eng.Reset()
		if eng.Stats().Messages != 0 {
			t.Fatalf("%s: Reset failed", kind)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrossBackendTermsRejected(t *testing.T) {
	sim, _ := New(Sim, 2, machine.DefaultCost())
	spmd, _ := New(SPMD, 2, machine.DefaultCost())
	defer spmd.Close()
	sys, _ := proc.NewSystem(2)
	m := buildMapping(t, sys, index.Standard(1, 8, 1, 2), dist.Block{})
	a, _ := sim.NewArray("A", m)
	b, _ := spmd.NewArray("B", m)
	if err := b.Assign(b.Domain(), []Term{Read(a, 1, 0, 0)}); err == nil {
		t.Fatal("sim-array term on spmd lhs must fail")
	}
	if err := a.Assign(a.Domain(), []Term{Read(b, 1, 0, 0)}); err == nil {
		t.Fatal("spmd-array term on sim lhs must fail")
	}
}

// TestStaleScheduleRejectedAfterRemap pins the invalidation contract
// on both backends: replaying a schedule built before a remap of any
// involved array must fail loudly, not silently compute against stale
// layouts.
func TestStaleScheduleRejectedAfterRemap(t *testing.T) {
	for _, kind := range Kinds() {
		eng, err := New(kind, 4, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		sys, _ := proc.NewSystem(4)
		dom := index.Standard(1, 16, 1, 4)
		a, err := eng.NewArray("A", buildMapping(t, sys, dom, dist.Block{}))
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.NewArray("B", buildMapping(t, sys, dom, dist.Block{}))
		if err != nil {
			t.Fatal(err)
		}
		a.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
		region := index.Standard(2, 16, 1, 4)
		sched, err := b.NewSchedule(region, []Term{Read(a, 1, -1, 0)})
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Execute(); err != nil {
			t.Fatalf("%s: fresh schedule must run: %v", kind, err)
		}
		if _, err := a.Remap(buildMapping(t, sys, dom, dist.Cyclic{K: 2})); err != nil {
			t.Fatal(err)
		}
		if err := sched.Execute(); err == nil {
			t.Fatalf("%s: stale schedule after remap of a source must be rejected", kind)
		}
		// Remap of the lhs invalidates too.
		sched2, err := b.NewSchedule(region, []Term{Read(a, 1, -1, 0)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Remap(buildMapping(t, sys, dom, dist.Cyclic{K: 3})); err != nil {
			t.Fatal(err)
		}
		if err := sched2.ExecuteN(2); err == nil {
			t.Fatalf("%s: stale schedule after remap of the lhs must be rejected", kind)
		}
	}
}
