package engine

import (
	"fmt"

	"hpfnt/internal/core"
	"hpfnt/internal/index"
	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/spmd"
	"hpfnt/internal/transport"
)

// spmdEngine adapts the parallel SPMD engine to the backend
// interface.
type spmdEngine struct {
	e *spmd.Engine
}

func newSPMDOn(tr transport.Transport, cost machine.CostModel) (Engine, error) {
	e, err := spmd.NewOn(tr, cost)
	if err != nil {
		tr.Close()
		return nil, err
	}
	return &spmdEngine{e: e}, nil
}

func (e *spmdEngine) Kind() string                { return SPMD }
func (e *spmdEngine) NP() int                     { return e.e.NP() }
func (e *spmdEngine) Machine() *machine.Machine   { return e.e.Machine() }
func (e *spmdEngine) Stats() machine.Report       { return e.e.Stats() }
func (e *spmdEngine) Detail() machine.Detail      { return e.e.DetailStats() }
func (e *spmdEngine) LocalDetail() machine.Detail { return e.e.LocalDetail() }
func (e *spmdEngine) Reset()                      { e.e.Reset() }
func (e *spmdEngine) Close() error                { return e.e.Close() }

// unwrapArrays checks backend membership and unwraps to spmd arrays.
func (e *spmdEngine) unwrapArrays(arrays []Array) ([]*spmd.Array, error) {
	out := make([]*spmd.Array, len(arrays))
	for i, a := range arrays {
		sa, ok := a.(*spmdArray)
		if !ok || sa.eng != e {
			return nil, fmt.Errorf("engine: array %s is not on this spmd engine", a.Name())
		}
		out[i] = sa.a
	}
	return out, nil
}

func (e *spmdEngine) Checkpoint(dir string, epoch int, arrays []Array) error {
	as, err := e.unwrapArrays(arrays)
	if err != nil {
		return err
	}
	return e.e.Checkpoint(dir, epoch, as)
}

func (e *spmdEngine) Restore(dir string, arrays []Array) (int, error) {
	as, err := e.unwrapArrays(arrays)
	if err != nil {
		return 0, err
	}
	return e.e.Restore(dir, as)
}

func (e *spmdEngine) NewArray(name string, m core.ElementMapping) (Array, error) {
	a, err := e.e.NewArray(name, m)
	if err != nil {
		return nil, err
	}
	return &spmdArray{eng: e, a: a}, nil
}

type spmdArray struct {
	eng *spmdEngine
	a   *spmd.Array
}

func (x *spmdArray) Name() string                      { return x.a.Name() }
func (x *spmdArray) Domain() index.Domain              { return x.a.Domain() }
func (x *spmdArray) Mapping() core.ElementMapping      { return x.a.Mapping() }
func (x *spmdArray) Replicated() bool                  { return x.a.Replicated() }
func (x *spmdArray) Fill(fn func(index.Tuple) float64) { x.a.Fill(fn) }
func (x *spmdArray) At(t index.Tuple) float64          { return x.a.At(t) }
func (x *spmdArray) Set(t index.Tuple, v float64)      { x.a.Set(t, v) }
func (x *spmdArray) Data() []float64                   { return x.a.Data() }

func (x *spmdArray) terms(ts []Term) ([]spmd.Term, error) {
	out := make([]spmd.Term, len(ts))
	for i, t := range ts {
		sa, ok := t.Src.(*spmdArray)
		if !ok || sa.eng != x.eng {
			return nil, fmt.Errorf("engine: term source %s is not on this spmd engine", t.Src.Name())
		}
		out[i] = spmd.Term{Src: sa.a, Shift: t.Shift, Coeff: t.Coeff}
	}
	return out, nil
}

func (x *spmdArray) Assign(region index.Domain, ts []Term) error {
	sts, err := x.terms(ts)
	if err != nil {
		return err
	}
	return x.eng.e.ShiftAssign(x.a, region, sts)
}

func (x *spmdArray) AssignGeneral(region index.Domain, ts []GeneralTerm) error {
	out := make([]spmd.GeneralTerm, len(ts))
	for i, t := range ts {
		sa, ok := t.Src.(*spmdArray)
		if !ok || sa.eng != x.eng {
			return fmt.Errorf("engine: term source %s is not on this spmd engine", t.Src.Name())
		}
		out[i] = spmd.GeneralTerm{Src: sa.a, Coeff: t.Coeff, Map: t.Map}
	}
	return x.eng.e.GeneralAssign(x.a, region, out)
}

func (x *spmdArray) NewSchedule(region index.Domain, ts []Term) (Schedule, error) {
	sts, err := x.terms(ts)
	if err != nil {
		return nil, err
	}
	s, err := x.eng.e.BuildSchedule(x.a, region, sts)
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (x *spmdArray) NewIrregular(src Array, pat inspector.Pattern) (Schedule, error) {
	sa, ok := src.(*spmdArray)
	if !ok || sa.eng != x.eng {
		return nil, fmt.Errorf("engine: irregular source %s is not on this spmd engine", src.Name())
	}
	return x.eng.e.BuildIrregular(x.a, sa.a, pat)
}

func (x *spmdArray) Remap(newMap core.ElementMapping) (int, error) {
	return x.eng.e.Remap(x.a, newMap)
}

func (x *spmdArray) Reduce(op ReduceOp) (float64, error) {
	return x.eng.e.Reduce(x.a, op)
}
