// Package engine selects between the execution backends of the
// runtime: the sequential simulator (package runtime driving a
// machine.Machine, kind "sim") and the parallel SPMD engine (package
// spmd, kind "spmd"). Both implement the same Engine/Array/Schedule
// interfaces, compute identical array values and report identical
// machine statistics — the sequential backend is the oracle the
// parallel one is differentially tested against (see the fuzz target
// in this package).
//
// The process-wide default backend is "sim"; it can be switched with
// the HPFNT_ENGINE environment variable or by assigning Default
// before programs are built (cmd/hpfbench does so for its -engine
// flag). The spmd backend's wire is pluggable in the same way
// (package transport): HPFNT_TRANSPORT or SetDefaultTransport selects
// between "inproc" (buffered channels, the default), "shm" (lock-free
// shared-memory rings) and "tcp" (length-prefixed frames over
// localhost sockets); sim performs no
// communication and ignores the transport. Multi-process spmd
// engines are built directly over a joined transport with
// NewSPMDOn (see cmd/hpfnode).
package engine

import (
	"fmt"
	"os"

	"hpfnt/internal/ckpt"
	"hpfnt/internal/core"
	"hpfnt/internal/index"
	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/runtime"
	"hpfnt/internal/transport"
)

// The backend kinds.
const (
	// Sim is the sequential owner-computes simulator (the oracle).
	Sim = "sim"
	// SPMD is the parallel engine: one worker goroutine per abstract
	// processor, local-only storage, channel-based ghost exchange.
	SPMD = "spmd"
)

// The transport kinds of the spmd backend (re-exported from package
// transport).
const (
	// InprocTransport is the in-process channel wire (the default).
	InprocTransport = transport.Inproc
	// ShmTransport carries the streams over lock-free ring buffers in
	// one shared mmap'd file — the fast multi-process wire (single-
	// process loopback here; joined multi-process jobs are built via
	// NewSPMDOn).
	ShmTransport = transport.Shm
	// TCPTransport carries the same streams as length-prefixed frames
	// over localhost sockets (single-process loopback here; joined
	// multi-process jobs are built via NewSPMDOn).
	TCPTransport = transport.TCP
)

// EnvVar names the environment variable consulted for the default
// backend at process start.
const EnvVar = "HPFNT_ENGINE"

// TransportEnvVar names the environment variable consulted for the
// spmd backend's default transport at process start.
const TransportEnvVar = "HPFNT_TRANSPORT"

// Default is the backend kind used by NewDefault (and therefore by
// hpf.NewProgram and the workload sweeps). It initializes from
// HPFNT_ENGINE, falling back to "sim".
var Default = defaultKind()

// DefaultTransport is the transport used by spmd engines created
// through New/NewDefault. It initializes from HPFNT_TRANSPORT,
// falling back to "inproc".
var DefaultTransport = defaultTransport()

func defaultKind() string {
	if v := os.Getenv(EnvVar); v != "" {
		return v
	}
	return Sim
}

func defaultTransport() string {
	if v := os.Getenv(TransportEnvVar); v != "" {
		return v
	}
	return transport.Inproc
}

// Kinds lists the available backend kinds.
func Kinds() []string { return []string{Sim, SPMD} }

// Transports lists the available transport kinds.
func Transports() []string { return transport.Kinds() }

// SetDefault validates kind and installs it as the process-wide
// default backend.
func SetDefault(kind string) error {
	for _, k := range Kinds() {
		if k == kind {
			Default = kind
			return nil
		}
	}
	return fmt.Errorf("engine: unknown backend %q (have %v)", kind, Kinds())
}

// SetDefaultTransport validates kind and installs it as the
// process-wide default transport for spmd engines.
func SetDefaultTransport(kind string) error {
	for _, k := range transport.Kinds() {
		if k == kind {
			DefaultTransport = kind
			return nil
		}
	}
	return fmt.Errorf("engine: unknown transport %q (have %v)", kind, transport.Kinds())
}

// ReduceOp selects a reduction operator (shared with the runtime).
type ReduceOp = runtime.ReduceOp

// Term is one right-hand-side reference Coeff · Src(t + Shift).
type Term struct {
	Src   Array
	Shift []int
	Coeff float64
}

// Read builds a shifted reference term.
func Read(src Array, coeff float64, shift ...int) Term {
	return Term{Src: src, Shift: shift, Coeff: coeff}
}

// GeneralTerm is a reference Coeff · Src(Map(t)) with an arbitrary
// (possibly rank-changing) index mapping.
type GeneralTerm struct {
	Src   Array
	Coeff float64
	Map   func(index.Tuple) index.Tuple
}

// Engine is an execution backend: it materializes distributed arrays
// and owns the machine counters their operations charge.
type Engine interface {
	// Kind reports the backend kind ("sim" or "spmd").
	Kind() string
	// NP reports the abstract processor count.
	NP() int
	// Machine exposes the backend's counter machine.
	Machine() *machine.Machine
	// NewArray materializes a zeroed distributed array.
	NewArray(name string, m core.ElementMapping) (Array, error)
	// Stats snapshots the counters.
	Stats() machine.Report
	// Detail snapshots the full per-worker counter view (load vector,
	// traffic matrix, phase times). Same collective contract as Stats
	// on a multi-process spmd engine.
	Detail() machine.Detail
	// LocalDetail snapshots this process's share of the counters
	// without any collective; unlike every other accessor it is safe
	// from any goroutine at any time (the /metrics scrape path). On
	// sim and single-process spmd it equals Detail.
	LocalDetail() machine.Detail
	// Reset clears the counters.
	Reset()
	// Checkpoint snapshots the arrays' values and the job-wide
	// aggregated counters into the spill directory dir at the given
	// epoch (package ckpt format). On a multi-process spmd engine it
	// is a collective; the checkpoint becomes visible atomically or
	// not at all.
	Checkpoint(dir string, epoch int, arrays []Array) error
	// Restore loads the latest checkpoint in dir back into the
	// arrays, which must match the checkpointed ones in order, name
	// and shape (rebuild them by re-running the job's deterministic
	// prologue). Returns the restored epoch, or ErrNoCheckpoint when
	// dir holds none.
	Restore(dir string, arrays []Array) (int, error)
	// Close releases backend resources (worker goroutines).
	Close() error
}

// ErrNoCheckpoint reports that a spill directory holds no published
// checkpoint (re-exported from package ckpt).
var ErrNoCheckpoint = ckpt.ErrNoCheckpoint

// Array is a distributed array on some backend. All arrays in one
// statement must come from the same engine.
type Array interface {
	Name() string
	Domain() index.Domain
	Mapping() core.ElementMapping
	Replicated() bool
	// Fill initializes every element from fn (which must be pure: the
	// spmd backend evaluates it concurrently, once per replica).
	Fill(fn func(index.Tuple) float64)
	At(t index.Tuple) float64
	Set(t index.Tuple, v float64)
	// Data materializes the dense column-major global values, for
	// verification.
	Data() []float64
	// Assign executes lhs(t) = Σ coeff·src(t+shift) over region under
	// the owner-computes rule.
	Assign(region index.Domain, terms []Term) error
	// AssignGeneral is Assign with arbitrary per-term index mappings.
	AssignGeneral(region index.Domain, terms []GeneralTerm) error
	// NewSchedule precompiles the statement's communication schedule.
	NewSchedule(region index.Domain, terms []Term) (Schedule, error)
	// NewIrregular runs the inspector over an irregular gather/scatter
	// access pattern (subscripts from indirection arrays, no closed
	// form) and precompiles its reusable halo-exchange schedule:
	// lhs(pat.Writes[k]) = Σ_k pat.Coeffs[k]·src(pat.Reads[k]), with
	// element positions as column-major offsets. Replicated arrays are
	// refused; remapping either array invalidates the schedule.
	NewIrregular(src Array, pat inspector.Pattern) (Schedule, error)
	// Remap moves the array to a new element mapping, returning the
	// number of elements moved.
	Remap(newMap core.ElementMapping) (int, error)
	// Reduce computes a global reduction.
	Reduce(op ReduceOp) (float64, error)
}

// Schedule is a precompiled, replayable communication schedule.
type Schedule interface {
	Execute() error
	// ExecuteN replays the schedule iters times (one engine epoch on
	// the spmd backend, a plain loop on sim).
	ExecuteN(iters int) error
	GhostElements() int
	Messages() int
}

// New creates a backend of the given kind with np abstract processors
// and the given cost model, on the DefaultTransport (spmd only; sim
// performs no communication).
func New(kind string, np int, cost machine.CostModel) (Engine, error) {
	return NewOn(kind, DefaultTransport, np, cost)
}

// NewOn creates a backend of the given kind on an explicit transport
// kind. For spmd, "inproc" is the channel wire, "shm" the shared-
// memory ring loopback and "tcp" the single-process socket loopback;
// the sim backend ignores the transport (it still validates the
// name).
func NewOn(kind, transportKind string, np int, cost machine.CostModel) (Engine, error) {
	switch kind {
	case Sim:
		// Sim never constructs a transport, so validate the name here
		// to keep selection errors uniform across backends.
		if err := validTransport(transportKind); err != nil {
			return nil, err
		}
		return newSim(np, cost)
	case SPMD:
		tr, err := transport.New(transportKind, np)
		if err != nil {
			return nil, err
		}
		return newSPMDOn(tr, cost)
	default:
		return nil, fmt.Errorf("engine: unknown backend %q (have %v)", kind, Kinds())
	}
}

func validTransport(kind string) error {
	for _, k := range transport.Kinds() {
		if k == kind {
			return nil
		}
	}
	return fmt.Errorf("engine: unknown transport %q (have %v)", kind, transport.Kinds())
}

// NewSPMDOn creates a spmd backend over an existing (possibly
// multi-process, already joined) transport. The engine owns the
// transport: Close closes it. This is how cmd/hpfnode builds the
// engine of a distributed job.
func NewSPMDOn(tr transport.Transport, cost machine.CostModel) (Engine, error) {
	return newSPMDOn(tr, cost)
}

// NewDefault creates a backend of the Default kind.
func NewDefault(np int, cost machine.CostModel) (Engine, error) {
	return New(Default, np, cost)
}
