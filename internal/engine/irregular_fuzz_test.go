package engine

import (
	"testing"

	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
	"hpfnt/internal/runtime"
)

// irregularScenario is one differential case for the irregular
// (inspector–executor) path: two random rank-1 distributions, a
// random indirection pattern, a schedule replay, and a remap that
// must invalidate the schedule on both backends.
type irregularScenario struct {
	np, n    int
	f1, f2   dist.Format
	f3       dist.Format // remap target for the source
	patSeed  uint64
	accesses int
	replayIt int
}

// pattern derives a deterministic access pattern over offsets 0..n-1
// from the scenario seed: random writes, random reads, small integer
// coefficients (kept exact in float64, so value comparison is exact).
func (sc irregularScenario) pattern() inspector.Pattern {
	var pat inspector.Pattern
	x := sc.patSeed*6364136223846793005 + 1442695040888963407
	for k := 0; k < sc.accesses; k++ {
		x = x*6364136223846793005 + 1442695040888963407
		pat.Writes = append(pat.Writes, int32(int(x>>33)%sc.n))
		pat.Reads = append(pat.Reads, int32(int(x>>13)%sc.n))
		pat.Coeffs = append(pat.Coeffs, float64(int(x>>49)%7)-3)
	}
	return pat
}

// run executes the scenario on one backend and returns everything
// observable.
func (sc irregularScenario) run(t *testing.T, kind string) outcome {
	t.Helper()
	var out outcome
	fail := func(err error) { out.errs = append(out.errs, err.Error()) }
	sys, err := proc.NewSystem(sc.np)
	if err != nil {
		t.Fatal(err)
	}
	m1 := rank1Mapping(t, sys, sc.n, sc.f1)
	m2 := rank1Mapping(t, sys, sc.n, sc.f2)
	m3 := rank1Mapping(t, sys, sc.n, sc.f3)
	eng, err := New(kind, sc.np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	x, err := eng.NewArray("X", m1)
	if err != nil {
		fail(err)
		return out
	}
	y, err := eng.NewArray("Y", m2)
	if err != nil {
		fail(err)
		return out
	}
	x.Fill(func(tu index.Tuple) float64 { return float64(tu[0]*11 - 7) })
	y.Fill(func(tu index.Tuple) float64 { return float64(-tu[0]) })
	sched, err := y.NewIrregular(x, sc.pattern())
	if err != nil {
		fail(err)
		return out
	}
	if err := sched.ExecuteN(sc.replayIt); err != nil {
		fail(err)
	}
	// Remap the source: the schedule must refuse replay identically
	// on both backends, and a rebuilt schedule must execute.
	moved, err := x.Remap(m3)
	if err != nil {
		fail(err)
	}
	out.moved = moved
	if err := sched.Execute(); err != nil {
		fail(err)
	} else {
		// A stale schedule executing is itself a divergence: record a
		// marker distinct from any invalidation error so the value and
		// error comparisons both catch it.
		out.errs = append(out.errs, "stale irregular schedule executed")
	}
	sched2, err := y.NewIrregular(x, sc.pattern())
	if err != nil {
		fail(err)
	} else if err := sched2.Execute(); err != nil {
		fail(err)
	}
	sum, err := y.Reduce(runtime.ReduceSum)
	if err != nil {
		fail(err)
	}
	out.sum = sum
	out.data = append(x.Data(), y.Data()...)
	out.report = eng.Stats()
	return out
}

// FuzzIrregularEquivalence is the differential fuzz target of the
// inspector–executor path: for random rank-1 distributions (including
// INDIRECT owner vectors) and random indirection patterns, the sim
// and spmd backends must produce identical array values, identical
// reductions, identical machine.Report statistics, and identical
// invalidation behavior across a remap.
func FuzzIrregularEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(12), uint8(0), uint8(4), uint8(2), uint8(3), uint64(1), uint8(40), uint8(2))
	f.Add(uint8(3), uint8(9), uint8(4), uint8(1), uint8(0), uint8(5), uint64(99), uint8(17), uint8(1))
	f.Add(uint8(6), uint8(20), uint8(2), uint8(4), uint8(4), uint8(7), uint64(7), uint8(80), uint8(3))
	f.Add(uint8(2), uint8(5), uint8(3), uint8(3), uint8(1), uint8(0), uint64(12345), uint8(0), uint8(1))
	f.Add(uint8(5), uint8(16), uint8(4), uint8(4), uint8(3), uint8(9), uint64(31), uint8(120), uint8(2))
	f.Fuzz(func(t *testing.T, npB, nB, sel1, sel2, sel3, k uint8, patSeed uint64, accB, itB uint8) {
		np := int(npB%7) + 2
		n := int(nB%24) + 4
		sc := irregularScenario{
			np:       np,
			n:        n,
			f1:       formatFor(sel1, k, n, np),
			f2:       formatFor(sel2, k+1, n, np),
			f3:       formatFor(sel3, k+2, n, np),
			patSeed:  patSeed,
			accesses: int(accB),
			replayIt: int(itB%3) + 1,
		}
		sim := sc.run(t, Sim)
		spmd := sc.run(t, SPMD)
		if len(sim.errs) != len(spmd.errs) {
			t.Fatalf("error mismatch: sim %v, spmd %v", sim.errs, spmd.errs)
		}
		if sim.moved != spmd.moved {
			t.Fatalf("moved: sim %d, spmd %d", sim.moved, spmd.moved)
		}
		if sim.sum != spmd.sum {
			t.Fatalf("reduce: sim %g, spmd %g", sim.sum, spmd.sum)
		}
		if len(sim.data) != len(spmd.data) {
			t.Fatalf("data length: sim %d, spmd %d", len(sim.data), len(spmd.data))
		}
		for i := range sim.data {
			if sim.data[i] != spmd.data[i] {
				t.Fatalf("value mismatch at %d: sim %g, spmd %g", i, sim.data[i], spmd.data[i])
			}
		}
		if sim.report != spmd.report {
			t.Fatalf("report mismatch:\n sim  %+v\n spmd %+v", sim.report, spmd.report)
		}
	})
}
