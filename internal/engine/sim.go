package engine

import (
	"fmt"
	"os"

	"hpfnt/internal/ckpt"
	"hpfnt/internal/core"
	"hpfnt/internal/index"
	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/runtime"
)

// simEngine is the sequential backend: runtime executors charging a
// simulated machine. It is the oracle the spmd backend is verified
// against.
type simEngine struct {
	np int
	m  *machine.Machine
}

func newSim(np int, cost machine.CostModel) (Engine, error) {
	m, err := machine.New(np, cost)
	if err != nil {
		return nil, err
	}
	return &simEngine{np: np, m: m}, nil
}

func (e *simEngine) Kind() string                { return Sim }
func (e *simEngine) NP() int                     { return e.np }
func (e *simEngine) Machine() *machine.Machine   { return e.m }
func (e *simEngine) Stats() machine.Report       { return e.m.Stats() }
func (e *simEngine) Detail() machine.Detail      { return e.m.Detail() }
func (e *simEngine) LocalDetail() machine.Detail { return e.m.Detail() }
func (e *simEngine) Reset()                      { e.m.Reset() }
func (e *simEngine) Close() error                { return nil }

// Checkpoint writes each array's dense values as a single rank-0
// shard plus the counter vector — the same ckpt format the spmd
// backend uses, with one process and one logical shard per array.
func (e *simEngine) Checkpoint(dir string, epoch int, arrays []Array) error {
	ed := ckpt.EpochDir(dir, epoch)
	if err := os.MkdirAll(ed, 0o755); err != nil {
		return err
	}
	infos := make([]ckpt.ArrayInfo, len(arrays))
	for i, a := range arrays {
		sa, ok := a.(*simArray)
		if !ok || sa.eng != e {
			return fmt.Errorf("engine: checkpoint array %s is not on this sim engine", a.Name())
		}
		infos[i] = ckpt.ArrayInfo{Name: sa.a.Name, Size: sa.a.Dom.Size()}
		if err := ckpt.WriteShard(ed, ckpt.ShardName(i, 0), sa.a.Data()); err != nil {
			return err
		}
	}
	if err := ckpt.Publish(dir, ckpt.Manifest{Epoch: epoch, NP: e.np, Arrays: infos, Counters: e.m.EncodeCounters()}); err != nil {
		return err
	}
	_ = ckpt.Prune(dir, epoch)
	return nil
}

// Restore loads the latest checkpoint back into the arrays and
// resets the machine to the snapshotted counter aggregate.
func (e *simEngine) Restore(dir string, arrays []Array) (int, error) {
	man, ed, err := ckpt.Latest(dir)
	if err != nil {
		return 0, err
	}
	if man.NP != e.np {
		return 0, fmt.Errorf("engine: checkpoint is for np=%d, engine has np=%d", man.NP, e.np)
	}
	if len(man.Arrays) != len(arrays) {
		return 0, fmt.Errorf("engine: checkpoint holds %d arrays, restore got %d", len(man.Arrays), len(arrays))
	}
	for i, a := range arrays {
		sa, ok := a.(*simArray)
		if !ok || sa.eng != e {
			return 0, fmt.Errorf("engine: restore array %s is not on this sim engine", a.Name())
		}
		dom := sa.a.Dom
		if inf := man.Arrays[i]; inf.Name != sa.a.Name || inf.Size != dom.Size() {
			return 0, fmt.Errorf("engine: checkpoint array %d is %s[%d], restore got %s[%d]",
				i, inf.Name, inf.Size, sa.a.Name, dom.Size())
		}
		buf := make([]float64, dom.Size())
		if err := ckpt.ReadShard(ed, ckpt.ShardName(i, 0), buf); err != nil {
			return 0, err
		}
		for off, v := range buf {
			sa.a.Set(dom.TupleAt(off), v)
		}
	}
	e.m.Reset()
	if err := e.m.MergeCounters(man.Counters); err != nil {
		return 0, fmt.Errorf("engine: restoring checkpoint counters: %w", err)
	}
	return man.Epoch, nil
}

func (e *simEngine) NewArray(name string, m core.ElementMapping) (Array, error) {
	a, err := runtime.NewArray(name, m)
	if err != nil {
		return nil, err
	}
	return &simArray{eng: e, a: a}, nil
}

type simArray struct {
	eng *simEngine
	a   *runtime.Array
}

func (x *simArray) Name() string                      { return x.a.Name }
func (x *simArray) Domain() index.Domain              { return x.a.Dom }
func (x *simArray) Mapping() core.ElementMapping      { return x.a.Mapping() }
func (x *simArray) Replicated() bool                  { return x.a.Replicated() }
func (x *simArray) Fill(fn func(index.Tuple) float64) { x.a.Fill(fn) }
func (x *simArray) At(t index.Tuple) float64          { return x.a.At(t) }
func (x *simArray) Set(t index.Tuple, v float64)      { x.a.Set(t, v) }
func (x *simArray) Data() []float64                   { return x.a.Data() }

// terms converts interface terms, checking backend membership.
func (x *simArray) terms(ts []Term) ([]runtime.Term, error) {
	out := make([]runtime.Term, len(ts))
	for i, t := range ts {
		sa, ok := t.Src.(*simArray)
		if !ok || sa.eng != x.eng {
			return nil, fmt.Errorf("engine: term source %s is not on this sim engine", t.Src.Name())
		}
		out[i] = runtime.Term{Src: sa.a, Shift: t.Shift, Coeff: t.Coeff}
	}
	return out, nil
}

func (x *simArray) Assign(region index.Domain, ts []Term) error {
	rts, err := x.terms(ts)
	if err != nil {
		return err
	}
	return runtime.ShiftAssign(x.eng.m, x.a, region, rts)
}

func (x *simArray) AssignGeneral(region index.Domain, ts []GeneralTerm) error {
	out := make([]runtime.GeneralTerm, len(ts))
	for i, t := range ts {
		sa, ok := t.Src.(*simArray)
		if !ok || sa.eng != x.eng {
			return fmt.Errorf("engine: term source %s is not on this sim engine", t.Src.Name())
		}
		out[i] = runtime.GeneralTerm{Src: sa.a, Coeff: t.Coeff, Map: t.Map}
	}
	return runtime.GeneralAssign(x.eng.m, x.a, region, out)
}

func (x *simArray) NewSchedule(region index.Domain, ts []Term) (Schedule, error) {
	rts, err := x.terms(ts)
	if err != nil {
		return nil, err
	}
	s, err := runtime.BuildSchedule(x.a, region, rts)
	if err != nil {
		return nil, err
	}
	return &simSchedule{eng: x.eng, s: s}, nil
}

func (x *simArray) NewIrregular(src Array, pat inspector.Pattern) (Schedule, error) {
	sa, ok := src.(*simArray)
	if !ok || sa.eng != x.eng {
		return nil, fmt.Errorf("engine: irregular source %s is not on this sim engine", src.Name())
	}
	s, err := runtime.BuildIrregular(x.eng.np, x.a, sa.a, pat)
	if err != nil {
		return nil, err
	}
	return &simIrregular{eng: x.eng, s: s}, nil
}

func (x *simArray) Remap(newMap core.ElementMapping) (int, error) {
	return runtime.Remap(x.eng.m, x.a, newMap)
}

func (x *simArray) Reduce(op ReduceOp) (float64, error) {
	return runtime.Reduce(x.eng.m, x.a, op)
}

type simSchedule struct {
	eng *simEngine
	s   *runtime.Schedule
}

func (s *simSchedule) Execute() error { return s.s.Execute(s.eng.m) }

func (s *simSchedule) ExecuteN(iters int) error {
	if iters < 1 {
		return fmt.Errorf("engine: ExecuteN needs a positive iteration count, got %d", iters)
	}
	for i := 0; i < iters; i++ {
		if err := s.s.Execute(s.eng.m); err != nil {
			return err
		}
	}
	return nil
}

func (s *simSchedule) GhostElements() int { return s.s.GhostElements() }
func (s *simSchedule) Messages() int      { return s.s.Messages() }

// simIrregular adapts the sequential irregular executor.
type simIrregular struct {
	eng *simEngine
	s   *runtime.IrregularSchedule
}

func (s *simIrregular) Execute() error { return s.s.Execute(s.eng.m) }

func (s *simIrregular) ExecuteN(iters int) error {
	if iters < 1 {
		return fmt.Errorf("engine: ExecuteN needs a positive iteration count, got %d", iters)
	}
	for i := 0; i < iters; i++ {
		if err := s.s.Execute(s.eng.m); err != nil {
			return err
		}
	}
	return nil
}

func (s *simIrregular) GhostElements() int { return s.s.GhostElements() }
func (s *simIrregular) Messages() int      { return s.s.Messages() }
