//go:build !race

package engine

// RaceEnabled reports whether the race detector instruments this
// build (used to skip wall-clock assertions under -race).
const RaceEnabled = false
