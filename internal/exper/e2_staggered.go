package exper

import (
	"fmt"

	"hpfnt/hpf"
	"hpfnt/internal/machine"
	"hpfnt/internal/workload"
)

// staggeredTemplateProgram builds the Thole example (§8.1.1) under
// the HPF baseline template model, with the template distributed by
// the given format keyword over an r×c grid. doubled selects the
// doubled template T(0:2N,0:2N) of the original posting; otherwise
// the (N+1)×(N+1) template the paper suggests ("declaring a template
// of size (N+1,N+1)").
func staggeredTemplateProgram(n, r, c int, format string, doubled bool) (workload.StaggeredMappings, error) {
	prog, err := hpf.NewProgram("staggered-template", r*c)
	if err != nil {
		return workload.StaggeredMappings{}, err
	}
	prog.EnableTemplates()
	prog.SetParam("N", n)
	tmpl := "!HPF$ TEMPLATE T(0:2*N,0:2*N)"
	aligns := `
		!HPF$ ALIGN P(I,J) WITH T(2*I-1,2*J-1)
		!HPF$ ALIGN U(I,J) WITH T(2*I,2*J-1)
		!HPF$ ALIGN V(I,J) WITH T(2*I-1,2*J)`
	if !doubled {
		tmpl = "!HPF$ TEMPLATE T(0:N,0:N)"
		aligns = `
		!HPF$ ALIGN P(I,J) WITH T(I,J)
		!HPF$ ALIGN U(I,J) WITH T(I,J)
		!HPF$ ALIGN V(I,J) WITH T(I,J)`
	}
	src := fmt.Sprintf(`
		PROCESSORS G(%d,%d)
		REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
		%s
		%s
		!HPF$ DISTRIBUTE T(%s,%s) TO G
	`, r, c, tmpl, aligns, format, format)
	if err := prog.Exec(src); err != nil {
		return workload.StaggeredMappings{}, err
	}
	return staggeredMaps(prog)
}

// staggeredDirectProgram builds the paper's template-free solution:
// REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N) with
// !HPF$ DISTRIBUTE (BLOCK,BLOCK) :: U,V,P — using the Vienna BLOCK
// definition when vienna is set (the footnote's assumption).
func staggeredDirectProgram(n, r, c int, vienna bool) (workload.StaggeredMappings, error) {
	prog, err := hpf.NewProgram("staggered-direct", r*c)
	if err != nil {
		return workload.StaggeredMappings{}, err
	}
	prog.UseViennaBlock(vienna)
	prog.SetParam("N", n)
	src := fmt.Sprintf(`
		PROCESSORS G(%d,%d)
		REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
		!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO G :: U,V,P
	`, r, c)
	if err := prog.Exec(src); err != nil {
		return workload.StaggeredMappings{}, err
	}
	return staggeredMaps(prog)
}

func staggeredMaps(prog *hpf.Program) (workload.StaggeredMappings, error) {
	u, err := prog.MappingOf("U")
	if err != nil {
		return workload.StaggeredMappings{}, err
	}
	v, err := prog.MappingOf("V")
	if err != nil {
		return workload.StaggeredMappings{}, err
	}
	p, err := prog.MappingOf("P")
	if err != nil {
		return workload.StaggeredMappings{}, err
	}
	return workload.StaggeredMappings{U: u, V: v, P: p}, nil
}

// E2StaggeredGrid reproduces the central §8.1.1 comparison on the
// staggered-grid statement P = U(0:N-1,:)+U(1:N,:)+V(:,0:N-1)+V(:,1:N):
//
//   - doubled template + (CYCLIC,CYCLIC): the paper's "worst possible
//     effect, viz. different processor allocations for any two
//     neighbors" — every rhs reference is remote;
//   - template of size (N+1,N+1) + (BLOCK,BLOCK): collocated, only
//     block-boundary traffic;
//   - the paper's template-free (BLOCK,BLOCK) with Vienna BLOCK:
//     equally collocated, no template needed.
func E2StaggeredGrid(n, r, c int) (Result, error) {
	np := r * c
	cost := machine.DefaultCost()

	cyc, err := staggeredTemplateProgram(n, r, c, "CYCLIC", true)
	if err != nil {
		return Result{}, err
	}
	cycRep, err := workload.StaggeredSweep(n, np, cyc, cost)
	if err != nil {
		return Result{}, err
	}
	blkT, err := staggeredTemplateProgram(n, r, c, "BLOCK", false)
	if err != nil {
		return Result{}, err
	}
	blkTRep, err := workload.StaggeredSweep(n, np, blkT, cost)
	if err != nil {
		return Result{}, err
	}
	direct, err := staggeredDirectProgram(n, r, c, true)
	if err != nil {
		return Result{}, err
	}
	directRep, err := workload.StaggeredSweep(n, np, direct, cost)
	if err != nil {
		return Result{}, err
	}

	rows := []machine.LabelledReport{
		{Label: "template(0:2N,0:2N) (CYCLIC,CYCLIC)", Report: cycRep},
		{Label: "template(N+1,N+1) (BLOCK,BLOCK)", Report: blkTRep},
		{Label: "template-free (BLOCK,BLOCK) Vienna", Report: directRep},
	}
	table := fmt.Sprintf("N=%d, processors %dx%d\n%s", n, r, c, machine.Table(rows))

	totalRefs := cycRep.LocalRefs + cycRep.RemoteRefs
	var checks []Check
	checks = append(checks, Check{
		Name: "(CYCLIC,CYCLIC) template: every neighbor remote (worst possible effect)",
		Pass: cycRep.RemoteRefs == totalRefs,
		Detail: fmt.Sprintf("remote %d of %d references (%.1f%%)",
			cycRep.RemoteRefs, totalRefs, 100*cycRep.RemoteFraction),
	})
	checks = append(checks, Check{
		Name: "block mappings beat the cyclic template by >10x in remote references",
		Pass: cycRep.RemoteRefs > 10*directRep.RemoteRefs && cycRep.RemoteRefs > 10*blkTRep.RemoteRefs,
		Detail: fmt.Sprintf("cyclic %d vs template-block %d vs direct %d",
			cycRep.RemoteRefs, blkTRep.RemoteRefs, directRep.RemoteRefs),
	})
	checks = append(checks, Check{
		Name: "template-free (BLOCK,BLOCK) matches the (N+1,N+1) template's locality (templates add nothing)",
		Pass: directRep.RemoteRefs <= blkTRep.RemoteRefs,
		Detail: fmt.Sprintf("direct %d remote refs vs template %d",
			directRep.RemoteRefs, blkTRep.RemoteRefs),
	})
	// Semantics preserved under every mapping.
	ok, err := workload.StaggeredVerify(n, np, cyc)
	if err != nil {
		return Result{}, err
	}
	ok2, err := workload.StaggeredVerify(n, np, direct)
	if err != nil {
		return Result{}, err
	}
	checks = append(checks, Check{
		Name:   "distributed execution equals sequential reference under all mappings",
		Pass:   ok && ok2,
		Detail: fmt.Sprintf("cyclic-template %v, direct %v", ok, ok2),
	})
	return Result{ID: "E2", Title: "staggered grid (§8.1.1, Thole example)", Table: table, Checks: checks}, nil
}

// E2bBlockVariantAblation reproduces the footnote of §8.1.1: the
// direct (BLOCK,BLOCK) solution assumes the Vienna Fortran BLOCK; the
// HPF BLOCK "will cause a problem if and only if the number of
// processors divides N exactly", because HPF's q = ⌈(N+1)/NP⌉ blocks
// of the (N+1)-extent arrays U and V misalign with P's blocks.
func E2bBlockVariantAblation(n, np int) (Result, error) {
	if np%2 != 0 {
		return Result{}, fmt.Errorf("E2b requires an even processor count, got %d", np)
	}
	r, c := np/2, 2
	cost := machine.DefaultCost()

	runPair := func(n int) (viennaRemote, hpfRemote int64, err error) {
		v, err := staggeredDirectProgram(n, r, c, true)
		if err != nil {
			return 0, 0, err
		}
		vRep, err := workload.StaggeredSweep(n, r*c, v, cost)
		if err != nil {
			return 0, 0, err
		}
		h, err := staggeredDirectProgram(n, r, c, false)
		if err != nil {
			return 0, 0, err
		}
		hRep, err := workload.StaggeredSweep(n, r*c, h, cost)
		if err != nil {
			return 0, 0, err
		}
		return vRep.RemoteRefs, hRep.RemoteRefs, nil
	}

	// Case 1: r divides n exactly (the problematic case).
	vDiv, hDiv, err := runPair(n)
	if err != nil {
		return Result{}, err
	}
	// Case 2: r does not divide n (n+1 chosen so r ∤ (n+1)).
	n2 := n + 1
	for n2%r == 0 {
		n2++
	}
	vNo, hNo, err := runPair(n2)
	if err != nil {
		return Result{}, err
	}

	table := fmt.Sprintf("processors %dx%d\n%-28s %14s %14s\n%-28s %14d %14d\n%-28s %14d %14d\n",
		r, c, "case", "Vienna remote", "HPF remote",
		fmt.Sprintf("N=%d (NP|N: problem case)", n), vDiv, hDiv,
		fmt.Sprintf("N=%d (NP∤N)", n2), vNo, hNo)

	checks := []Check{
		{
			Name:   "footnote: HPF BLOCK pays extra traffic when NP divides N exactly",
			Pass:   hDiv > vDiv,
			Detail: fmt.Sprintf("HPF %d vs Vienna %d remote refs at N=%d", hDiv, vDiv, n),
		},
		{
			Name:   "Vienna BLOCK never loses to HPF BLOCK on this grid",
			Pass:   vDiv <= hDiv && vNo <= hNo,
			Detail: fmt.Sprintf("divisible: %d<=%d; non-divisible: %d<=%d", vDiv, hDiv, vNo, hNo),
		},
	}
	return Result{ID: "E2b", Title: "BLOCK variant ablation (§8.1.1 footnote)", Table: table, Checks: checks}, nil
}
