package exper

import (
	"fmt"
	"strings"

	"hpfnt/hpf"
	"hpfnt/internal/inquiry"
)

// E3ProcedureBoundary reproduces §8.1.2 and §7: REAL A(1000)
// distributed CYCLIC(3), passing the section A(2:996:2) to SUB(X)
// under the four dummy modes. Inheritance transfers the (not
// explicitly specifiable) section mapping at zero cost and inquiry
// functions describe it; explicit remapping moves the section in and
// restores it on exit; inheritance-matching detects the mismatch and
// reports the program non-conforming.
func E3ProcedureBoundary() (Result, error) {
	mk := func() (*hpf.Program, error) {
		prog, err := hpf.NewProgram("main", 8)
		if err != nil {
			return nil, err
		}
		err = prog.Exec(`
			PROCESSORS P(8)
			REAL A(1000)
			!HPF$ DISTRIBUTE A(CYCLIC(3)) TO P
		`)
		return prog, err
	}
	section, err := hpf.Span(2, 996, 2)
	if err != nil {
		return Result{}, err
	}

	type row struct {
		mode       string
		remapIn    int
		remapOut   int
		conforming bool
		note       string
	}
	var rows []row

	// Inherit.
	prog, err := mk()
	if err != nil {
		return Result{}, err
	}
	tg, err := prog.TargetOf("P")
	if err != nil {
		return Result{}, err
	}
	fr, err := prog.Call("SUB",
		[]hpf.DummySpec{{Name: "X", Mode: hpf.Inherit}},
		[]hpf.Actual{{Name: "A", Section: []hpf.Triplet{section}}})
	if err != nil {
		return Result{}, err
	}
	xm, err := fr.Callee.MappingOf("X")
	if err != nil {
		return Result{}, err
	}
	info := inquiry.Describe(xm)
	if err := fr.Return(); err != nil {
		return Result{}, err
	}
	rows = append(rows, row{"inherit (*)", fr.Bindings[0].RemapIn, fr.Bindings[0].RemapOut, true,
		"inquiry: " + info.Render()})
	inheritInfo := info

	// Explicit BLOCK.
	prog2, err := mk()
	if err != nil {
		return Result{}, err
	}
	tg2, _ := prog2.TargetOf("P")
	fr2, err := prog2.Call("SUB",
		[]hpf.DummySpec{{Name: "X", Mode: hpf.Explicit, Formats: []hpf.Format{hpf.BLOCK}, Target: tg2}},
		[]hpf.Actual{{Name: "A", Section: []hpf.Triplet{section}}})
	if err != nil {
		return Result{}, err
	}
	if err := fr2.Return(); err != nil {
		return Result{}, err
	}
	rows = append(rows, row{"explicit (BLOCK)", fr2.Bindings[0].RemapIn, fr2.Bindings[0].RemapOut, true,
		"remapped on entry, restored on exit"})

	// Inherit-matching with a mismatching spec: non-conforming.
	prog3, err := mk()
	if err != nil {
		return Result{}, err
	}
	tg3, _ := prog3.TargetOf("P")
	_, err = prog3.Call("SUB",
		[]hpf.DummySpec{{Name: "X", Mode: hpf.InheritMatch, Formats: []hpf.Format{hpf.CYCLICK(3)}, Target: tg3}},
		[]hpf.Actual{{Name: "A", Section: []hpf.Triplet{section}}})
	mismatchCaught := err != nil && strings.Contains(err.Error(), "not HPF-conforming")
	rows = append(rows, row{"inherit-match (CYCLIC(3))", 0, 0, !mismatchCaught,
		"section mapping ≠ CYCLIC(3) of the section: non-conforming"})

	// Inherit-matching on the whole array: conforming.
	prog4, err := mk()
	if err != nil {
		return Result{}, err
	}
	tg4, _ := prog4.TargetOf("P")
	fr4, err := prog4.Call("SUB",
		[]hpf.DummySpec{{Name: "X", Mode: hpf.InheritMatch, Formats: []hpf.Format{hpf.CYCLICK(3)}, Target: tg4}},
		[]hpf.Actual{{Name: "A"}})
	if err != nil {
		return Result{}, err
	}
	if err := fr4.Return(); err != nil {
		return Result{}, err
	}
	rows = append(rows, row{"inherit-match whole A", fr4.Bindings[0].RemapIn, fr4.Bindings[0].RemapOut, true,
		"matches: zero movement"})
	_ = tg

	var b strings.Builder
	fmt.Fprintf(&b, "A(1000) CYCLIC(3) TO P(8); CALL SUB(A(2:996:2)) — 498 elements\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %12s  %s\n", "dummy mode", "moved-in", "moved-out", "conforming", "note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %10d %10d %12v  %s\n", r.mode, r.remapIn, r.remapOut, r.conforming, r.note)
	}

	checks := []Check{
		{
			Name:   "inherit transfers the section mapping with zero data movement",
			Pass:   rows[0].remapIn == 0 && rows[0].remapOut == 0,
			Detail: fmt.Sprintf("in=%d out=%d", rows[0].remapIn, rows[0].remapOut),
		},
		{
			Name:   "inquiry functions describe the inherited (non-format-expressible) mapping (§8.2)",
			Pass:   inheritInfo.Inherited && inheritInfo.NP == 8,
			Detail: inheritInfo.Render(),
		},
		{
			Name:   "explicit remap moves Θ(section) in and restores the same volume on exit (§7)",
			Pass:   rows[1].remapIn > 300 && rows[1].remapIn == rows[1].remapOut,
			Detail: fmt.Sprintf("in=%d out=%d of 498", rows[1].remapIn, rows[1].remapOut),
		},
		{
			Name:   "inheritance-matching flags a mismatching section distribution as non-conforming",
			Pass:   mismatchCaught,
			Detail: fmt.Sprintf("error observed: %v", mismatchCaught),
		},
		{
			Name:   "inheritance-matching accepts the matching whole-array distribution at zero cost",
			Pass:   rows[3].remapIn == 0 && rows[3].remapOut == 0,
			Detail: fmt.Sprintf("in=%d out=%d", rows[3].remapIn, rows[3].remapOut),
		},
	}
	return Result{ID: "E3", Title: "procedure boundaries (§7, §8.1.2)", Table: b.String(), Checks: checks}, nil
}
