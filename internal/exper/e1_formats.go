package exper

import (
	"fmt"
	"strings"

	"hpfnt/internal/dist"
)

// E1DistributionFormats reproduces the §4.1 distribution function
// definitions as ownership and local-index tables over n indices and
// np processors, checking the paper's closed forms: BLOCK's
// δ(i) = ⌈i/q⌉ with q = ⌈N/NP⌉ and local index i-(j-1)q;
// GENERAL_BLOCK's block bounds; CYCLIC(k)'s cyclic segment mapping.
func E1DistributionFormats(n, np int) (Result, error) {
	gb := dist.GeneralBlock{Bounds: []int{n / 4, n/4 + 2, n/4 + 2 + n/2}}
	formats := []dist.Format{
		dist.Block{},
		dist.BlockVienna{},
		gb,
		dist.Cyclic{K: 1},
		dist.Cyclic{K: 3},
	}
	labels := []string{"BLOCK (HPF)", "BLOCK (Vienna)", gb.String(), "CYCLIC", "CYCLIC(3)"}

	var b strings.Builder
	fmt.Fprintf(&b, "N=%d NP=%d; owner(local) per index\n", n, np)
	fmt.Fprintf(&b, "%-24s", "format")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, " %5d", i)
	}
	b.WriteString("\n")
	for k, f := range formats {
		if err := f.Validate(n, np); err != nil {
			return Result{}, err
		}
		fmt.Fprintf(&b, "%-24s", labels[k])
		for i := 1; i <= n; i++ {
			fmt.Fprintf(&b, " %2d(%d)", f.Map(i, n, np), f.Local(i, n, np))
		}
		b.WriteString("\n")
	}

	var checks []Check
	// BLOCK formula spot checks: q = ceil(16/4) = 4.
	q := (n + np - 1) / np
	blockOK := true
	for i := 1; i <= n; i++ {
		j := (i + q - 1) / q
		if (dist.Block{}).Map(i, n, np) != j || (dist.Block{}).Local(i, n, np) != i-(j-1)*q {
			blockOK = false
		}
	}
	checks = append(checks, Check{
		Name:   "§4.1.1 BLOCK: δ(i)=⌈i/q⌉, local=i-(j-1)q",
		Pass:   blockOK,
		Detail: fmt.Sprintf("q=%d verified for all %d indices", q, n),
	})
	// CYCLIC ≡ CYCLIC(1).
	cycOK := true
	for i := 1; i <= n; i++ {
		if (dist.Cyclic{K: 1}).Map(i, n, np) != (i-1)%np+1 {
			cycOK = false
		}
	}
	checks = append(checks, Check{
		Name:   "§4.1.3 CYCLIC maps round-robin (CYCLIC ≡ CYCLIC(1))",
		Pass:   cycOK,
		Detail: fmt.Sprintf("verified for all %d indices", n),
	})
	// GENERAL_BLOCK: block i's range bounded by G.
	gbOK := (gb.Map(gb.Bounds[0], n, np) == 1) && (gb.Map(gb.Bounds[0]+1, n, np) == 2) &&
		(gb.Map(n, n, np) == np)
	checks = append(checks, Check{
		Name:   "§4.1.2 GENERAL_BLOCK: G(i) is the upper bound of block i; block NP extends to N",
		Pass:   gbOK,
		Detail: fmt.Sprintf("bounds %v over [1:%d]", gb.Bounds, n),
	})
	return Result{ID: "E1", Title: "distribution formats (§4.1)", Table: b.String(), Checks: checks}, nil
}
