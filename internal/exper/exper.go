// Package exper implements the reproduction experiments E1–E13
// catalogued in README.md: one per worked example or quantitative
// claim of the paper (the paper is a language-design paper and has no
// numbered tables; each experiment reproduces a specific §-referenced
// claim). Each experiment returns a Result with a preformatted table
// and a list of pass/fail checks encoding the claim's expected shape;
// cmd/hpfbench prints the tables and bench_test.go asserts the
// checks.
package exper

import (
	"fmt"
	"strings"
)

// Check is one verifiable expectation derived from a paper claim.
type Check struct {
	// Name states the claim fragment being checked.
	Name string
	// Pass reports whether the measurement satisfied it.
	Pass bool
	// Detail carries the measured numbers behind the verdict.
	Detail string
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (E1..E12).
	ID string
	// Title summarizes the experiment and its paper source.
	Title string
	// Table is the preformatted measurement table.
	Table string
	// Checks are the claim assertions.
	Checks []Check
}

// Passed reports whether every check passed.
func (r Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render formats the result for terminal output.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s (%s)\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// All runs every experiment at its default parameters.
func All() ([]Result, error) {
	runs := []func() (Result, error){
		func() (Result, error) { return E1DistributionFormats(16, 4) },
		func() (Result, error) { return E2StaggeredGrid(64, 4, 4) },
		func() (Result, error) { return E2bBlockVariantAblation(64, 8) },
		func() (Result, error) { return E3ProcedureBoundary() },
		func() (Result, error) { return E4GeneralBlockBalance(4096, 16) },
		func() (Result, error) { return E5ProcessorSections(64, 8) },
		func() (Result, error) { return E6RedistributeBundling(256, 8, 4) },
		func() (Result, error) { return E7RealignSurgery(128, 8) },
		func() (Result, error) { return E8Allocatables() },
		func() (Result, error) { return E9CyclicLU(1024, 16) },
		func() (Result, error) { return E10Replication(64, 8) },
		func() (Result, error) { return E11Collapse(64, 8) },
		func() (Result, error) { return E12TemplateLimitations() },
		func() (Result, error) { return E13GeneralDistributions(1024, 8) },
	}
	var out []Result
	for _, run := range runs {
		r, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
