// Package exper implements the reproduction experiments E1–E13
// catalogued in README.md: one per worked example or quantitative
// claim of the paper (the paper is a language-design paper and has no
// numbered tables; each experiment reproduces a specific §-referenced
// claim). Each experiment returns a Result with a preformatted table
// and a list of pass/fail checks encoding the claim's expected shape;
// cmd/hpfbench prints the tables and bench_test.go asserts the
// checks.
package exper

import (
	"fmt"
	"strings"
)

// Check is one verifiable expectation derived from a paper claim.
type Check struct {
	// Name states the claim fragment being checked.
	Name string
	// Pass reports whether the measurement satisfied it.
	Pass bool
	// Detail carries the measured numbers behind the verdict.
	Detail string
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (E1..E12).
	ID string
	// Title summarizes the experiment and its paper source.
	Title string
	// Table is the preformatted measurement table.
	Table string
	// Checks are the claim assertions.
	Checks []Check
}

// Passed reports whether every check passed.
func (r Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render formats the result for terminal output.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n%s", r.ID, r.Title, r.Table)
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s (%s)\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// All runs every experiment at its default parameters.
func All() ([]Result, error) {
	return Run(nil)
}

// Entry names one experiment with its default-parameter runner. The
// Title duplicates the one carried by the produced Result so callers
// can enumerate experiments without running them; a test asserts the
// two stay in sync.
type Entry struct {
	ID    string
	Title string
	Run   func() (Result, error)
}

// Registry lists every experiment in presentation order.
func Registry() []Entry {
	return []Entry{
		{"E1", "distribution formats (§4.1)", func() (Result, error) { return E1DistributionFormats(16, 4) }},
		{"E2", "staggered grid (§8.1.1, Thole example)", func() (Result, error) { return E2StaggeredGrid(64, 4, 4) }},
		{"E2b", "BLOCK variant ablation (§8.1.1 footnote)", func() (Result, error) { return E2bBlockVariantAblation(64, 8) }},
		{"E3", "procedure boundaries (§7, §8.1.2)", func() (Result, error) { return E3ProcedureBoundary() }},
		{"E4", "GENERAL_BLOCK load balancing (§4.1.2)", func() (Result, error) { return E4GeneralBlockBalance(4096, 16) }},
		{"E5", "processor sections (§4 example)", func() (Result, error) { return E5ProcessorSections(64, 8) }},
		{"E6", "REDISTRIBUTE with aligned followers (§4.2)", func() (Result, error) { return E6RedistributeBundling(256, 8, 4) }},
		{"E7", "REALIGN forest surgery (§5.2)", func() (Result, error) { return E7RealignSurgery(128, 8) }},
		{"E8", "allocatable arrays (§6 example, verbatim)", func() (Result, error) { return E8Allocatables() }},
		{"E9", "block-cyclic vs block under shrinking active set (§4.1.3)", func() (Result, error) { return E9CyclicLU(1024, 16) }},
		{"E10", "replication via ALIGN A(:) WITH D(:,*) (§5.1 ex. 1)", func() (Result, error) { return E10Replication(64, 8) }},
		{"E11", "collapse via ALIGN B(:,*) WITH E(:) (§5.1 ex. 2)", func() (Result, error) { return E11Collapse(64, 8) }},
		{"E12", "template limitations made executable (§8.2)", func() (Result, error) { return E12TemplateLimitations() }},
		{"E13", "generalized distribution functions (intro claim 3, §9)", func() (Result, error) { return E13GeneralDistributions(1024, 8) }},
	}
}

// Run executes the experiments whose ids are in want (all of them
// when want is nil or empty), in registry order.
func Run(want map[string]bool) ([]Result, error) {
	var out []Result
	for _, e := range Registry() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		r, err := e.Run()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
