package exper

import (
	"fmt"
	"strings"

	"hpfnt/hpf"
	"hpfnt/internal/inquiry"
)

// E10Replication reproduces §5.1 example 1: ALIGN A(:) WITH D(:,*)
// aligns a copy of A with every column of D. With D distributed by
// columns, a statement E(i,j) = D(i,j) + A(i) reads A locally
// everywhere when A is replicated, but fetches A remotely from the
// single owner column otherwise.
func E10Replication(n, np int) (Result, error) {
	repRep, repFlag, err := runReplication(n, np, true)
	if err != nil {
		return Result{}, err
	}
	oneRep, oneFlag, err := runReplication(n, np, false)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E(i,j) = D(i,j) + A(i); D,E (:,BLOCK) over %d procs; N=%d\n", np, n)
	fmt.Fprintf(&b, "%-34s %12s %12s %10s\n", "alignment of A", "remote-refs", "elems-moved", "replicated")
	fmt.Fprintf(&b, "%-34s %12d %12d %10v\n", "ALIGN A(:) WITH D(:,*)", repRep.RemoteRefs, repRep.ElementsMoved, repFlag)
	fmt.Fprintf(&b, "%-34s %12d %12d %10v\n", "ALIGN A(:) WITH D(:,1)", oneRep.RemoteRefs, oneRep.ElementsMoved, oneFlag)
	checks := []Check{
		{
			Name:   "replicated alignment makes every read of A local (§5.1 example 1)",
			Pass:   repFlag && repRep.RemoteRefs == 0,
			Detail: fmt.Sprintf("remote refs %d", repRep.RemoteRefs),
		},
		{
			Name:   "single-copy alignment forces remote fetches of A from the owner column",
			Pass:   !oneFlag && oneRep.RemoteRefs > 0,
			Detail: fmt.Sprintf("remote refs %d", oneRep.RemoteRefs),
		},
	}
	return Result{ID: "E10", Title: "replication via ALIGN A(:) WITH D(:,*) (§5.1 ex. 1)", Table: b.String(), Checks: checks}, nil
}

// runReplication builds the §5.1-example-1 scenario with A either
// replicated over all columns of D (star) or aligned with column 1,
// then executes a 2-D statement that reads A once per (i,j) through a
// rank-2 proxy array AA(i,j) holding A's mapping per column.
func runReplication(n, np int, star bool) (hpf.Report, bool, error) {
	prog, err := hpf.NewProgram("replication", np)
	if err != nil {
		return hpf.Report{}, false, err
	}
	sub := "(:,*)"
	if !star {
		sub = "(:,1)"
	}
	prog.SetParam("N", n)
	prog.SetParam("M", np)
	err = prog.Exec(fmt.Sprintf(`
		PROCESSORS P(%d)
		REAL A(1:N), D(1:N,1:M), E(1:N,1:M)
		!HPF$ DISTRIBUTE (:,BLOCK) TO P :: D, E
		!HPF$ ALIGN A(:) WITH D%s
	`, np, sub))
	if err != nil {
		return hpf.Report{}, false, err
	}
	info, err := prog.Inquire("A")
	if err != nil {
		return hpf.Report{}, false, err
	}
	a, err := prog.NewArray("A")
	if err != nil {
		return hpf.Report{}, false, err
	}
	d, err := prog.NewArray("D")
	if err != nil {
		return hpf.Report{}, false, err
	}
	e, err := prog.NewArray("E")
	if err != nil {
		return hpf.Report{}, false, err
	}
	a.Fill(func(t hpf.Tuple) float64 { return float64(t[0]) })
	d.Fill(func(t hpf.Tuple) float64 { return float64(t[0] + 2*t[1]) })
	// E(i,j) = D(i,j) + A(i), executed as a 2-D statement over E's
	// domain with a rank-reducing read of A (shift collapses j).
	if err := e.AssignMixed(e.Shape(), []hpf.MixedTerm{
		{Src: d, Coeff: 1, Map: func(t hpf.Tuple) hpf.Tuple { return t }},
		{Src: a, Coeff: 1, Map: func(t hpf.Tuple) hpf.Tuple { return hpf.TupleOf(t[0]) }},
	}); err != nil {
		return hpf.Report{}, false, err
	}
	return prog.Stats(), info.Replicated, nil
}

// E11Collapse reproduces §5.1 example 2: ALIGN B(:,*) WITH E(:)
// collapses B's second dimension so whole rows are co-resident with
// E's elements; a statement C(i,j) = B(i,j) + E(i) then runs with
// zero communication, whereas distributing B (BLOCK,BLOCK) splits
// rows across processors and forces remote reads of E.
func E11Collapse(n, np int) (Result, error) {
	run := func(collapse bool) (hpf.Report, error) {
		prog, err := hpf.NewProgram("collapse", np)
		if err != nil {
			return hpf.Report{}, err
		}
		prog.SetParam("N", n)
		prog.SetParam("M", 8)
		var src string
		if collapse {
			src = fmt.Sprintf(`
				PROCESSORS P(%d)
				REAL B(1:N,1:M), C(1:N,1:M), E(1:N)
				!HPF$ DISTRIBUTE E(BLOCK) TO P
				!HPF$ ALIGN B(:,*) WITH E(:)
				!HPF$ ALIGN C(:,*) WITH E(:)
			`, np)
		} else {
			r, c := grid2(np)
			src = fmt.Sprintf(`
				PROCESSORS P(%d), G(%d,%d)
				REAL B(1:N,1:M), C(1:N,1:M), E(1:N)
				!HPF$ DISTRIBUTE E(BLOCK) TO P
				!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO G :: B, C
			`, np, r, c)
		}
		if err := prog.Exec(src); err != nil {
			return hpf.Report{}, err
		}
		b, err := prog.NewArray("B")
		if err != nil {
			return hpf.Report{}, err
		}
		c, err := prog.NewArray("C")
		if err != nil {
			return hpf.Report{}, err
		}
		e, err := prog.NewArray("E")
		if err != nil {
			return hpf.Report{}, err
		}
		b.Fill(func(t hpf.Tuple) float64 { return float64(t[0]*3 + t[1]) })
		e.Fill(func(t hpf.Tuple) float64 { return float64(t[0]) })
		if err := c.AssignMixed(c.Shape(), []hpf.MixedTerm{
			{Src: b, Coeff: 1, Map: func(t hpf.Tuple) hpf.Tuple { return t }},
			{Src: e, Coeff: 1, Map: func(t hpf.Tuple) hpf.Tuple { return hpf.TupleOf(t[0]) }},
		}); err != nil {
			return hpf.Report{}, err
		}
		return prog.Stats(), nil
	}
	colRep, err := run(true)
	if err != nil {
		return Result{}, err
	}
	blkRep, err := run(false)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "C(i,j) = B(i,j) + E(i); N=%d, M=8, NP=%d\n", n, np)
	fmt.Fprintf(&b, "%-36s %12s %12s\n", "mapping of B,C", "remote-refs", "elems-moved")
	fmt.Fprintf(&b, "%-36s %12d %12d\n", "ALIGN B(:,*) WITH E(:) (collapse)", colRep.RemoteRefs, colRep.ElementsMoved)
	fmt.Fprintf(&b, "%-36s %12d %12d\n", "(BLOCK,BLOCK) direct", blkRep.RemoteRefs, blkRep.ElementsMoved)
	checks := []Check{
		{
			Name:   "collapsed alignment makes the row-wise statement fully local (§5.1 ex. 2)",
			Pass:   colRep.RemoteRefs == 0,
			Detail: fmt.Sprintf("remote refs %d", colRep.RemoteRefs),
		},
		{
			Name:   "splitting the collapsed dimension forces communication for E",
			Pass:   blkRep.RemoteRefs > 0,
			Detail: fmt.Sprintf("remote refs %d", blkRep.RemoteRefs),
		},
	}
	return Result{ID: "E11", Title: "collapse via ALIGN B(:,*) WITH E(:) (§5.1 ex. 2)", Table: b.String(), Checks: checks}, nil
}

func grid2(np int) (int, int) {
	r := 1
	for d := 1; d*d <= np; d++ {
		if np%d == 0 {
			r = d
		}
	}
	return np / r, r
}

// E12TemplateLimitations makes the §8.2 criticisms executable: the
// baseline template model rejects allocatable templates and
// template passing, while the paper's model handles both situations
// (deferred-shape alignment at ALLOCATE; inherited mappings plus
// inquiry at procedure boundaries).
func E12TemplateLimitations() (Result, error) {
	prog, err := hpf.NewProgram("limits", 8)
	if err != nil {
		return Result{}, err
	}
	tm := prog.EnableTemplates()

	allocErr := tm.AllocatableTemplate("T", 2)
	passErr := tm.PassTemplate("T", "SUB")

	// The paper's model: allocatable alignee, deferred alignment,
	// applied at ALLOCATE with run-time extents.
	err = prog.Exec(`
		PROCESSORS P(8)
		REAL, ALLOCATABLE(:) :: BASE, X
		!HPF$ DISTRIBUTE BASE(BLOCK) TO P
		!HPF$ ALIGN X(I) WITH BASE(I)
		ALLOCATE(BASE(512))
		ALLOCATE(X(512))
	`)
	if err != nil {
		return Result{}, err
	}
	xo, err := prog.Unit.Owners("X", hpf.TupleOf(100))
	if err != nil {
		return Result{}, err
	}
	bo, _ := prog.Unit.Owners("BASE", hpf.TupleOf(100))

	// Procedure boundary without templates: inherit + inquiry.
	fr, err := prog.Call("SUB",
		[]hpf.DummySpec{{Name: "Y", Mode: hpf.Inherit}},
		[]hpf.Actual{{Name: "X"}})
	if err != nil {
		return Result{}, err
	}
	ym, err := fr.Callee.MappingOf("Y")
	if err != nil {
		return Result{}, err
	}
	info := inquiry.Describe(ym)

	var b strings.Builder
	fmt.Fprintf(&b, "HPF baseline (template model):\n")
	fmt.Fprintf(&b, "  allocatable template: %v\n", allocErr)
	fmt.Fprintf(&b, "  pass template to SUB: %v\n", passErr)
	fmt.Fprintf(&b, "template-free model:\n")
	fmt.Fprintf(&b, "  allocatable alignment at ALLOCATE: X(100) on %d, BASE(100) on %d\n", xo[0], bo[0])
	fmt.Fprintf(&b, "  inherited dummy inquiry: %s\n", info.Render())

	checks := []Check{
		{
			Name:   "§8.2 problem 1: templates cannot handle allocatable arrays (baseline rejects)",
			Pass:   allocErr != nil,
			Detail: fmt.Sprint(allocErr),
		},
		{
			Name:   "§8.2 problem 2: templates cannot be passed across procedure boundaries (baseline rejects)",
			Pass:   passErr != nil,
			Detail: fmt.Sprint(passErr),
		},
		{
			Name:   "the template-free model aligns allocatables with run-time shapes",
			Pass:   xo[0] == bo[0],
			Detail: fmt.Sprintf("X(100) on %d, BASE(100) on %d", xo[0], bo[0]),
		},
		{
			Name:   "inherited mappings cross procedure boundaries and are fully inquirable",
			Pass:   info.Inherited && info.NP == 8,
			Detail: info.Render(),
		},
	}
	return Result{ID: "E12", Title: "template limitations made executable (§8.2)", Table: b.String(), Checks: checks}, nil
}
