package exper

import (
	"strings"
	"testing"
)

// runAndCheck executes one experiment and fails the test on any
// failed claim check, printing the measurement table for diagnosis.
func runAndCheck(t *testing.T, f func() (Result, error)) {
	t.Helper()
	r, err := f()
	if err != nil {
		t.Fatalf("experiment error: %v", err)
	}
	for _, c := range r.Checks {
		if !c.Pass {
			t.Errorf("%s check failed: %s (%s)\n%s", r.ID, c.Name, c.Detail, r.Table)
		}
	}
}

func TestE1(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E1DistributionFormats(16, 4) })
}

func TestE2SmallGrid(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E2StaggeredGrid(32, 2, 2) })
}

func TestE2DefaultGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runAndCheck(t, func() (Result, error) { return E2StaggeredGrid(64, 4, 4) })
}

func TestE2b(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E2bBlockVariantAblation(64, 8) })
}

func TestE3(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E3ProcedureBoundary() })
}

func TestE4(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E4GeneralBlockBalance(4096, 16) })
}

func TestE4SmallerNP(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E4GeneralBlockBalance(1024, 4) })
}

func TestE5(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E5ProcessorSections(64, 8) })
}

func TestE6(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E6RedistributeBundling(256, 8, 4) })
}

func TestE7(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E7RealignSurgery(128, 8) })
}

func TestE8(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E8Allocatables() })
}

func TestE9(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E9CyclicLU(1024, 16) })
}

func TestE10(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E10Replication(64, 8) })
}

func TestE11(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E11Collapse(64, 8) })
}

func TestE12(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E12TemplateLimitations() })
}

func TestE13(t *testing.T) {
	runAndCheck(t, func() (Result, error) { return E13GeneralDistributions(1024, 8) })
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(results) != 14 {
		t.Fatalf("expected 14 experiments, got %d", len(results))
	}
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("%s failed:\n%s", r.ID, r.Render())
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := Result{
		ID: "EX", Title: "demo", Table: "table\n",
		Checks: []Check{
			{Name: "good", Pass: true, Detail: "d1"},
			{Name: "bad", Pass: false, Detail: "d2"},
		},
	}
	out := r.Render()
	for _, want := range []string{"== EX: demo ==", "[PASS] good", "[FAIL] bad", "table"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	if r.Passed() {
		t.Fatal("result with a failing check must not pass")
	}
}

// TestRegistryMatchesResults pins the registry's static ids/titles to
// the ones each experiment reports, so -list output cannot drift.
func TestRegistryMatchesResults(t *testing.T) {
	for _, e := range Registry() {
		r, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if r.ID != e.ID || r.Title != e.Title {
			t.Errorf("registry (%s, %q) != result (%s, %q)", e.ID, e.Title, r.ID, r.Title)
		}
	}
}
