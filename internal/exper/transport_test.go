package exper

import (
	"testing"

	"hpfnt/internal/engine"
)

// TestExperimentsTransportEquivalence runs every reproduction
// experiment E1–E13 on the parallel engine over both transports: the
// rendered result — measurement tables and claim verdicts, all
// derived from array values and machine counters — must be identical
// on the inproc channels and the tcp sockets, and every claim check
// must pass on both.
func TestExperimentsTransportEquivalence(t *testing.T) {
	oldE, oldT := engine.Default, engine.DefaultTransport
	defer func() { engine.Default, engine.DefaultTransport = oldE, oldT }()
	engine.Default = engine.SPMD
	renders := map[string]map[string]string{}
	for _, tkind := range engine.Transports() {
		engine.DefaultTransport = tkind
		renders[tkind] = map[string]string{}
		for _, e := range Registry() {
			r, err := e.Run()
			if err != nil {
				t.Fatalf("%s on %s: %v", e.ID, tkind, err)
			}
			if !r.Passed() {
				t.Errorf("%s on %s: claim checks failed:\n%s", e.ID, tkind, r.Render())
			}
			renders[tkind][e.ID] = r.Render()
		}
	}
	base := renders[engine.Transports()[0]]
	for _, tkind := range engine.Transports()[1:] {
		for id, want := range base {
			if got := renders[tkind][id]; got != want {
				t.Errorf("%s: results differ between transports:\n-- %s --\n%s\n-- %s --\n%s",
					id, engine.Transports()[0], want, tkind, got)
			}
		}
	}
}
