package exper

import (
	"fmt"
	"strings"

	"hpfnt/hpf"
)

// E6RedistributeBundling reproduces §4.2: alignment as a bundling
// mechanism. A primary array B with k secondaries is REDISTRIBUTEd
// from BLOCK to CYCLIC; every secondary must follow so that the
// alignment relation stays invariant, and the moved data volume
// scales with the number of bundled arrays.
func E6RedistributeBundling(n, np, k int) (Result, error) {
	build := func(secondaries int) (*hpf.Program, []*hpf.DistArray, error) {
		prog, err := hpf.NewProgram("bundle", np)
		if err != nil {
			return nil, nil, err
		}
		var src strings.Builder
		fmt.Fprintf(&src, "PROCESSORS P(%d)\nREAL B(%d)\n", np, n)
		for i := 0; i < secondaries; i++ {
			fmt.Fprintf(&src, "REAL S%d(%d)\n", i, n)
		}
		fmt.Fprintf(&src, "!HPF$ DYNAMIC B\n!HPF$ DISTRIBUTE B(BLOCK) TO P\n")
		for i := 0; i < secondaries; i++ {
			fmt.Fprintf(&src, "!HPF$ ALIGN S%d(I) WITH B(I)\n", i)
		}
		if err := prog.Exec(src.String()); err != nil {
			return nil, nil, err
		}
		arrays := make([]*hpf.DistArray, 0, secondaries+1)
		ba, err := prog.NewArray("B")
		if err != nil {
			return nil, nil, err
		}
		arrays = append(arrays, ba)
		for i := 0; i < secondaries; i++ {
			sa, err := prog.NewArray(fmt.Sprintf("S%d", i))
			if err != nil {
				return nil, nil, err
			}
			arrays = append(arrays, sa)
		}
		return prog, arrays, nil
	}

	type row struct {
		secondaries int
		moved       int
		invariant   bool
	}
	var rows []row
	for _, sc := range []int{0, 1, k} {
		prog, arrays, err := build(sc)
		if err != nil {
			return Result{}, err
		}
		if err := prog.Exec(fmt.Sprintf("!HPF$ REDISTRIBUTE B(CYCLIC) TO P")); err != nil {
			return Result{}, err
		}
		total := 0
		for _, a := range arrays {
			moved, err := a.Remap()
			if err != nil {
				return Result{}, err
			}
			total += moved
		}
		// Verify the invariant: every secondary element collocated
		// with its base element after the move.
		inv := true
		bm, _ := prog.MappingOf("B")
		for i := 0; i < sc; i++ {
			sm, err := prog.MappingOf(fmt.Sprintf("S%d", i))
			if err != nil {
				return Result{}, err
			}
			for j := 1; j <= n; j += 7 {
				so, err1 := sm.Owners(hpf.TupleOf(j))
				bo, err2 := bm.Owners(hpf.TupleOf(j))
				if err1 != nil || err2 != nil || so[0] != bo[0] {
					inv = false
				}
			}
		}
		rows = append(rows, row{sc, total, inv})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "B(%d) BLOCK -> CYCLIC on P(%d), with aligned secondaries following (§4.2)\n", n, np)
	fmt.Fprintf(&b, "%-14s %14s %12s\n", "secondaries", "elems-moved", "invariant")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %14d %12v\n", r.secondaries, r.moved, r.invariant)
	}
	perArray := rows[0].moved
	checks := []Check{
		{
			Name:   "alignment relation kept invariant under REDISTRIBUTE of the primary",
			Pass:   rows[1].invariant && rows[2].invariant,
			Detail: fmt.Sprintf("checked %d and %d secondaries", rows[1].secondaries, rows[2].secondaries),
		},
		{
			Name:   "moved volume scales linearly with the number of bundled arrays",
			Pass:   perArray > 0 && rows[1].moved == 2*perArray && rows[2].moved == (k+1)*perArray,
			Detail: fmt.Sprintf("%d / %d / %d elements for 0/1/%d secondaries", rows[0].moved, rows[1].moved, rows[2].moved, k),
		},
	}
	return Result{ID: "E6", Title: "REDISTRIBUTE with aligned followers (§4.2)", Table: b.String(), Checks: checks}, nil
}

// E7RealignSurgery reproduces the §5.2 forest surgery: realigning a
// primary with secondaries promotes the secondaries to degenerate
// trees frozen at their current distribution; realigning a secondary
// moves it between bases; the height-1 invariant holds throughout.
func E7RealignSurgery(n, np int) (Result, error) {
	prog, err := hpf.NewProgram("surgery", np)
	if err != nil {
		return Result{}, err
	}
	err = prog.Exec(fmt.Sprintf(`
		PROCESSORS P(%d)
		REAL A(%d), B(%d), C(%d), D(%d)
		!HPF$ DYNAMIC A, D
		!HPF$ DISTRIBUTE B(BLOCK) TO P
		!HPF$ DISTRIBUTE C(CYCLIC) TO P
		!HPF$ ALIGN D(I) WITH A(I)
	`, np, n, n, n, n))
	if err != nil {
		return Result{}, err
	}
	u := prog.Unit
	var b strings.Builder
	fmt.Fprintf(&b, "forest before: %v\n", u.Forest())

	// D's owners before the surgery (A implicit BLOCK).
	dBefore := map[int]int{}
	for i := 1; i <= n; i += 5 {
		os, err := u.Owners("D", hpf.TupleOf(i))
		if err != nil {
			return Result{}, err
		}
		dBefore[i] = os[0]
	}
	// Step 1+2+3: REALIGN the primary A (which has child D) to B.
	if err := prog.Exec("!HPF$ REALIGN A(I) WITH B(I)"); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "after REALIGN A WITH B: %v\n", u.Forest())
	promoted := u.IsPrimary("D")
	frozen := true
	for i, want := range dBefore {
		os, err := u.Owners("D", hpf.TupleOf(i))
		if err != nil || os[0] != want {
			frozen = false
		}
	}
	// Realign the (now secondary) A to C.
	if err := prog.Exec("!HPF$ REALIGN A(I) WITH C(I)"); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "after REALIGN A WITH C: %v\n", u.Forest())
	moved := u.BaseOf("A") == "C" && len(u.SecondariesOf("B")) == 0
	invErr := u.CheckInvariants()
	// A follows C.
	ao, _ := u.Owners("A", hpf.TupleOf(3))
	co, _ := u.Owners("C", hpf.TupleOf(3))

	checks := []Check{
		{
			Name:   "step 1: secondaries of a realigned primary become degenerate trees with their current distribution",
			Pass:   promoted && frozen,
			Detail: fmt.Sprintf("promoted=%v frozen=%v", promoted, frozen),
		},
		{
			Name:   "step 1': a realigned secondary is disconnected from its old base",
			Pass:   moved,
			Detail: fmt.Sprintf("A base = %q", u.BaseOf("A")),
		},
		{
			Name:   "steps 2-3: δ_A = CONSTRUCT(α, δ_C) and forest height stays ≤ 1",
			Pass:   invErr == nil && ao[0] == co[0],
			Detail: fmt.Sprintf("invariants: %v; A(3) on %d, C(3) on %d", invErr, ao[0], co[0]),
		},
	}
	return Result{ID: "E7", Title: "REALIGN forest surgery (§5.2)", Table: b.String(), Checks: checks}, nil
}

// E8Allocatables runs the §6 example program verbatim through the
// directive front end and checks the resulting forest and mappings.
func E8Allocatables() (Result, error) {
	prog, err := hpf.NewProgram("alloc", 32)
	if err != nil {
		return Result{}, err
	}
	prog.SetParam("M", 2)
	prog.SetParam("N", 4)
	err = prog.Exec(`
		REAL,ALLOCATABLE(:,:) :: A,B
		REAL,ALLOCATABLE(:) :: C,D
		!HPF$ PROCESSORS PR(32)
		!HPF$ DISTRIBUTE A(CYCLIC,BLOCK)
		!HPF$ DISTRIBUTE(BLOCK) :: C,D
		!HPF$ DYNAMIC B,C

		READ 6,M,N
		ALLOCATE(A(N*M,N*M))
		ALLOCATE(B(N,N))
		!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
		ALLOCATE(C(10000), D(10000))
		!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
	`)
	if err != nil {
		return Result{}, err
	}
	u := prog.Unit
	var b strings.Builder
	b.WriteString(u.Describe())

	infoC, err := prog.Inquire("C")
	if err != nil {
		return Result{}, err
	}
	infoD, err := prog.Inquire("D")
	if err != nil {
		return Result{}, err
	}
	// B(i,j) aligned with A(M*i, 1+(j-1)*M).
	bo, err := u.Owners("B", hpf.TupleOf(2, 3))
	if err != nil {
		return Result{}, err
	}
	ao, err := u.Owners("A", hpf.TupleOf(4, 5))
	if err != nil {
		return Result{}, err
	}
	// DEALLOCATE B and re-enter.
	if err := prog.Exec("DEALLOCATE(B)"); err != nil {
		return Result{}, err
	}
	arrB, _ := u.Array("B")

	checks := []Check{
		{
			Name:   "deferred spec-part attributes applied at ALLOCATE (§6)",
			Pass:   infoD.Direct && infoD.Dims[0].Format.String() == "BLOCK",
			Detail: "D: " + infoD.Render(),
		},
		{
			Name:   "executable REDISTRIBUTE gives C a cyclic distribution (§6 example)",
			Pass:   infoC.Direct && strings.HasPrefix(infoC.Dims[0].Format.String(), "CYCLIC"),
			Detail: "C: " + infoC.Render(),
		},
		{
			Name:   "B enters the forest via executable REALIGN, collocated with A through the strided alignment",
			Pass:   bo[0] == ao[0],
			Detail: fmt.Sprintf("B(2,3) on %d, A(4,5) on %d", bo[0], ao[0]),
		},
		{
			Name:   "DEALLOCATE removes the array from the forest",
			Pass:   arrB != nil && !arrB.Created && u.CheckInvariants() == nil,
			Detail: fmt.Sprintf("B created=%v", arrB.Created),
		},
	}
	return Result{ID: "E8", Title: "allocatable arrays (§6 example, verbatim)", Table: b.String(), Checks: checks}, nil
}
