package exper

import (
	"fmt"
	"strings"

	"hpfnt/internal/align"
	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/partition"
	"hpfnt/internal/proc"
)

// E13GeneralDistributions exercises the paper's generalization 3:
// "The concept of distribution functions has been defined in a
// general way so that future language standards may easily
// incorporate more general mappings" (and §9's pointer to the
// user-defined distribution functions of Kali and Vienna Fortran).
// A partitioner-style INDIRECT owner vector plugs into the same
// Format interface: the whole model — direct distribution, alignment,
// CONSTRUCT collocation — composes with it unchanged. The workload
// has two disjoint hot regions, which no contiguous (GENERAL_BLOCK)
// partition can balance without the imbalance INDIRECT avoids.
func E13GeneralDistributions(n, np int) (Result, error) {
	// Weights: two hot plateaus at the two ends, cold middle.
	w := make([]float64, n)
	for i := range w {
		switch {
		case i < n/8 || i >= n-n/8:
			w[i] = 16
		default:
			w[i] = 1
		}
	}
	// A contiguous balanced partition (the best GENERAL_BLOCK can do).
	gb, err := partition.Balance(w, np)
	if err != nil {
		return Result{}, err
	}
	// An indirect partition pairing hot and cold indices: processor
	// p receives an equal share of each plateau (what a mesh
	// partitioner with a global view produces).
	owner := make([]int, n)
	hotSeen, coldSeen := 0, 0
	hotTotal := 0
	for i := range w {
		if w[i] == 16 {
			hotTotal++
		}
	}
	for i := range w {
		if w[i] == 16 {
			owner[i] = hotSeen*np/hotTotal + 1
			hotSeen++
		} else {
			owner[i] = coldSeen*np/(n-hotTotal) + 1
			coldSeen++
		}
	}
	ind, err := dist.NewIndirect(owner)
	if err != nil {
		return Result{}, err
	}
	if err := ind.Validate(n, np); err != nil {
		return Result{}, err
	}

	imbBlock := partition.FormatImbalance(dist.Block{}, w, np)
	imbGB := partition.FormatImbalance(gb, w, np)
	imbInd := partition.FormatImbalance(ind, w, np)

	// Composition: align a secondary to an INDIRECT-distributed base
	// and verify CONSTRUCT collocation still holds.
	sys, err := proc.NewSystem(np)
	if err != nil {
		return Result{}, err
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, np))
	if err != nil {
		return Result{}, err
	}
	u := core.NewUnit("E13", sys)
	if _, err := u.DeclareArray("BASE", index.Standard(1, n)); err != nil {
		return Result{}, err
	}
	if _, err := u.DeclareArray("SEC", index.Standard(1, n/2)); err != nil {
		return Result{}, err
	}
	if err := u.Distribute("BASE", []dist.Format{ind}, proc.Whole(arr)); err != nil {
		return Result{}, err
	}
	if err := u.Align(align.Spec{
		Alignee: "SEC", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "BASE", Subs: []align.Subscript{align.ExprSub(expr.Affine(2, "I", 0))},
	}); err != nil {
		return Result{}, err
	}
	collocated := true
	for i := 1; i <= n/2; i += 3 {
		so, err := u.Owners("SEC", index.Tuple{i})
		if err != nil {
			return Result{}, err
		}
		bo, _ := u.Owners("BASE", index.Tuple{2 * i})
		if so[0] != bo[0] {
			collocated = false
		}
	}

	// Expressiveness: the partitioner's assignment gives processors
	// non-contiguous pieces (a share of each plateau), which no
	// contiguous-block format — BLOCK or GENERAL_BLOCK — can express.
	nonContiguous := false
	for p := 1; p <= np; p++ {
		if len(ind.OwnedRanges(p, n, np)) > 1 {
			nonContiguous = true
			break
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "two hot plateaus (w=16) at both ends, cold middle (w=1); N=%d, NP=%d\n", n, np)
	fmt.Fprintf(&b, "%-34s %12s\n", "distribution", "imbalance")
	fmt.Fprintf(&b, "%-34s %12.3f\n", "BLOCK", imbBlock)
	fmt.Fprintf(&b, "%-34s %12.3f\n", "GENERAL_BLOCK (best contiguous)", imbGB)
	fmt.Fprintf(&b, "%-34s %12.3f\n", "INDIRECT (partitioner)", imbInd)
	fmt.Fprintf(&b, "INDIRECT ownership non-contiguous (inexpressible as GENERAL_BLOCK): %v\n", nonContiguous)
	fmt.Fprintf(&b, "CONSTRUCT collocation over INDIRECT base: %v\n", collocated)

	checks := []Check{
		{
			Name:   "a user-defined mapping plugs into the same distribution-function interface and balances",
			Pass:   imbInd < 1.1,
			Detail: fmt.Sprintf("INDIRECT imbalance %.3f (BLOCK %.3f, GENERAL_BLOCK %.3f)", imbInd, imbBlock, imbGB),
		},
		{
			Name:   "the partitioner's assignment is non-contiguous — beyond any (GENERAL_)BLOCK format",
			Pass:   nonContiguous,
			Detail: fmt.Sprintf("some processor owns >= 2 disjoint runs: %v", nonContiguous),
		},
		{
			Name:   "alignment and CONSTRUCT compose unchanged with user-defined distributions",
			Pass:   collocated,
			Detail: fmt.Sprintf("collocation over INDIRECT base: %v", collocated),
		},
	}
	return Result{ID: "E13", Title: "generalized distribution functions (intro claim 3, §9)", Table: b.String(), Checks: checks}, nil
}
