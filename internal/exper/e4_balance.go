package exper

import (
	"fmt"
	"strings"

	"hpfnt/hpf"
	"hpfnt/internal/dist"
	"hpfnt/internal/partition"
	"hpfnt/internal/workload"
)

// newSectionProgram declares B(n) distributed CYCLIC onto the
// processor section Q(1:NOP:2), through the directive front end.
func newSectionProgram(n, np int) (*hpf.Program, error) {
	prog, err := hpf.NewProgram("sections", np)
	if err != nil {
		return nil, err
	}
	prog.SetParam("NOP", np)
	err = prog.Exec(fmt.Sprintf(`
		PROCESSORS Q(%d)
		REAL B(%d)
		!HPF$ DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)
	`, np, n))
	return prog, err
}

// E4GeneralBlockBalance reproduces the GENERAL_BLOCK load-balancing
// claim (introduction point 2 and §4.1.2: irregular block
// distributions "are important for the support of load balancing"):
// a triangular workload w(i)=i over n rows and np processors,
// comparing BLOCK, CYCLIC and the partitioner-derived GENERAL_BLOCK
// on load imbalance and on boundary rows (the locality price).
func E4GeneralBlockBalance(n, np int) (Result, error) {
	w := workload.TriangularWeights(n)
	g, err := partition.Balance(w, np)
	if err != nil {
		return Result{}, err
	}
	if err := g.Validate(n, np); err != nil {
		return Result{}, err
	}
	type row struct {
		label string
		f     dist.Format
		imb   float64
		cuts  int
	}
	rows := []row{
		{"BLOCK", dist.Block{}, 0, 0},
		{"CYCLIC", dist.Cyclic{K: 1}, 0, 0},
		{"GENERAL_BLOCK (partitioned)", g, 0, 0},
	}
	for i := range rows {
		rows[i].imb = partition.FormatImbalance(rows[i].f, w, np)
		rows[i].cuts = partition.BoundaryRows(rows[i].f, n, np)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "triangular weights w(i)=i, N=%d, NP=%d\n", n, np)
	fmt.Fprintf(&b, "%-30s %12s %16s\n", "distribution", "imbalance", "boundary-rows")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %12.3f %16d\n", r.label, r.imb, r.cuts)
	}
	checks := []Check{
		{
			Name:   "GENERAL_BLOCK balances the irregular workload (imbalance ≈ 1)",
			Pass:   rows[2].imb < 1.05,
			Detail: fmt.Sprintf("imbalance %.3f", rows[2].imb),
		},
		{
			Name:   "BLOCK is ~2x imbalanced on w(i)=i",
			Pass:   rows[0].imb > 1.7 && rows[0].imb < 2.1,
			Detail: fmt.Sprintf("imbalance %.3f", rows[0].imb),
		},
		{
			Name:   "CYCLIC balances but pays NP-1 << cuts: GENERAL_BLOCK keeps NP-1 boundary rows",
			Pass:   rows[2].cuts == np-1 && rows[1].cuts > 50*(np-1),
			Detail: fmt.Sprintf("GENERAL_BLOCK %d cuts vs CYCLIC %d", rows[2].cuts, rows[1].cuts),
		},
	}
	return Result{ID: "E4", Title: "GENERAL_BLOCK load balancing (§4.1.2)", Table: b.String(), Checks: checks}, nil
}

// E5ProcessorSections reproduces the paper's generalization claim 1:
// "Arrays may be distributed to processor sections" — the §4 example
// DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2). Ownership must be confined to
// the section and balanced over it.
func E5ProcessorSections(n, np int) (Result, error) {
	prog, tgErr := newSectionProgram(n, np)
	if tgErr != nil {
		return Result{}, tgErr
	}
	m, err := prog.MappingOf("B")
	if err != nil {
		return Result{}, err
	}
	counts := map[int]int{}
	for i := 1; i <= n; i++ {
		os, err := m.Owners(hpf.TupleOf(i))
		if err != nil {
			return Result{}, err
		}
		counts[os[0]]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "B(%d) CYCLIC TO Q(1:%d:2) — section {1,3,...}\n", n, np)
	fmt.Fprintf(&b, "%-10s %10s\n", "processor", "elements")
	confined, balancedMin, balancedMax := true, n, 0
	for p := 1; p <= np; p++ {
		c := counts[p]
		fmt.Fprintf(&b, "%-10d %10d\n", p, c)
		if p%2 == 0 && c > 0 {
			confined = false
		}
		if p%2 == 1 {
			if c < balancedMin {
				balancedMin = c
			}
			if c > balancedMax {
				balancedMax = c
			}
		}
	}
	checks := []Check{
		{
			Name:   "ownership confined to the processor section Q(1:NOP:2)",
			Pass:   confined,
			Detail: fmt.Sprintf("even-numbered processors own nothing: %v", confined),
		},
		{
			Name:   "cyclic distribution balanced over the section",
			Pass:   balancedMax-balancedMin <= 1,
			Detail: fmt.Sprintf("per-processor counts in [%d,%d]", balancedMin, balancedMax),
		},
	}
	return Result{ID: "E5", Title: "processor sections (§4 example)", Table: b.String(), Checks: checks}, nil
}

// E9CyclicLU reproduces the §4.1.3 motivation for block-cyclic
// distributions with an LU-style shrinking active set: BLOCK idles
// processors owning early rows (imbalance → 2), CYCLIC(k) keeps the
// load even, with small k best.
func E9CyclicLU(n, np int) (Result, error) {
	formats := []dist.Format{
		dist.Block{},
		dist.Cyclic{K: 1},
		dist.Cyclic{K: 8},
		dist.Cyclic{K: 64},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "LU-style elimination, N=%d, NP=%d (row distribution)\n", n, np)
	fmt.Fprintf(&b, "%-16s %14s %12s\n", "format", "max-load", "imbalance")
	var reps []workload.LUReport
	for _, f := range formats {
		rep, err := workload.LUSweep(n, np, f)
		if err != nil {
			return Result{}, err
		}
		reps = append(reps, rep)
		fmt.Fprintf(&b, "%-16s %14d %12.3f\n", rep.Format, rep.MaxLoad, rep.Imbalance)
	}
	checks := []Check{
		{
			// Integrating the per-row cost Σ_{k<i}(n-k) ≈ ni - i²/2,
			// the owner of the last rows accumulates n²/2 per row
			// against a global average of n²/3: the analytic
			// imbalance limit of BLOCK under this model is 3/2.
			Name:   "BLOCK approaches its analytic 1.5x imbalance limit as the active set shrinks",
			Pass:   reps[0].Imbalance > 1.45,
			Detail: fmt.Sprintf("BLOCK imbalance %.3f (limit 1.5)", reps[0].Imbalance),
		},
		{
			Name:   "CYCLIC stays near-perfectly balanced",
			Pass:   reps[1].Imbalance < 1.02,
			Detail: fmt.Sprintf("CYCLIC imbalance %.3f", reps[1].Imbalance),
		},
		{
			Name:   "imbalance grows monotonically with cyclic segment length k",
			Pass:   reps[1].Imbalance <= reps[2].Imbalance && reps[2].Imbalance <= reps[3].Imbalance && reps[3].Imbalance <= reps[0].Imbalance,
			Detail: fmt.Sprintf("%.4f <= %.4f <= %.4f <= %.4f", reps[1].Imbalance, reps[2].Imbalance, reps[3].Imbalance, reps[0].Imbalance),
		},
	}
	return Result{ID: "E9", Title: "block-cyclic vs block under shrinking active set (§4.1.3)", Table: b.String(), Checks: checks}, nil
}
