// Package directive implements a front end for the paper's directive
// language: a lexer and recursive-descent parser for the !HPF$
// directives (PROCESSORS, DISTRIBUTE, ALIGN, REDISTRIBUTE, REALIGN,
// DYNAMIC, and — for the baseline model — TEMPLATE) together with the
// minimal Fortran-ish statement subset the paper's examples use
// (REAL/INTEGER declarations with the ALLOCATABLE attribute,
// PARAMETER, ALLOCATE, DEALLOCATE and READ). Parsed statements are
// interpreted directly against a core.Unit (and optionally a
// template.Model for TEMPLATE directives).
package directive

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokColon
	tokDoubleColon
	tokStar
	tokPlus
	tokMinus
	tokSlash
	tokAssign
	tokSlashParen // "(/" opening an array constructor
	tokParenSlash // "/)" closing an array constructor
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokDoubleColon:
		return "'::'"
	case tokStar:
		return "'*'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokSlash:
		return "'/'"
	case tokAssign:
		return "'='"
	case tokSlashParen:
		return "'(/'"
	case tokParenSlash:
		return "'/)'"
	}
	return "?"
}

// token is one lexical token.
type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenizes one logical line.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lexLine tokenizes a line, which must already be stripped of the
// !HPF$ prefix and comments.
func lexLine(src string) ([]token, error) {
	lx := &lexer{src: src}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, tok)
		if tok.kind == tokEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) && (lx.src[lx.pos] == ' ' || lx.src[lx.pos] == '\t') {
		lx.pos++
	}
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case c == '(':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '/' {
			lx.pos++
			return token{kind: tokSlashParen, text: "(/", pos: start}, nil
		}
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		lx.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == ':':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == ':' {
			lx.pos++
			return token{kind: tokDoubleColon, text: "::", pos: start}, nil
		}
		return token{kind: tokColon, text: ":", pos: start}, nil
	case c == '*':
		lx.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '+':
		lx.pos++
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case c == '-':
		lx.pos++
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case c == '/':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == ')' {
			lx.pos++
			return token{kind: tokParenSlash, text: "/)", pos: start}, nil
		}
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case c == '=':
		lx.pos++
		return token{kind: tokAssign, text: "=", pos: start}, nil
	case c >= '0' && c <= '9':
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], pos: start}, nil
	case isIdentStart(rune(c)):
		for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
			lx.pos++
		}
		return token{kind: tokIdent, text: strings.ToUpper(lx.src[start:lx.pos]), pos: start}, nil
	default:
		return token{}, fmt.Errorf("directive: unexpected character %q at column %d", string(c), start+1)
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' || r == '%' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// stripLine normalizes one source line: it removes trailing comments
// ("!" that does not begin an !HPF$ prefix), strips the !HPF$ prefix,
// and reports whether anything remains. Lines that are entirely
// comments yield ok == false.
func stripLine(line string) (string, bool) {
	s := strings.TrimSpace(line)
	if s == "" {
		return "", false
	}
	upper := strings.ToUpper(s)
	if strings.HasPrefix(upper, "!HPF$") {
		s = strings.TrimSpace(s[5:])
		upper = strings.ToUpper(s)
	} else if strings.HasPrefix(s, "!") {
		return "", false
	}
	// Trailing comment.
	if i := strings.IndexByte(s, '!'); i >= 0 {
		s = strings.TrimSpace(s[:i])
	}
	if s == "" {
		return "", false
	}
	return s, true
}
