// Package directive implements a front end for the paper's directive
// language: a lexer and recursive-descent parser for the !HPF$
// directives (PROCESSORS, DISTRIBUTE, ALIGN, REDISTRIBUTE, REALIGN,
// DYNAMIC, and — for the baseline model — TEMPLATE) together with the
// minimal Fortran-ish statement subset the paper's examples use
// (REAL/INTEGER declarations with the ALLOCATABLE attribute,
// PARAMETER, ALLOCATE, DEALLOCATE and READ). Parsed statements are
// interpreted directly against a core.Unit (and optionally a
// template.Model for TEMPLATE directives).
package directive

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokLParen
	TokRParen
	TokComma
	TokColon
	TokDoubleColon
	TokStar
	TokPlus
	TokMinus
	TokSlash
	TokAssign
	TokSlashParen // "(/" opening an array constructor
	TokParenSlash // "/)" closing an array constructor
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of line"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokColon:
		return "':'"
	case TokDoubleColon:
		return "'::'"
	case TokStar:
		return "'*'"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokSlash:
		return "'/'"
	case TokAssign:
		return "'='"
	case TokSlashParen:
		return "'(/'"
	case TokParenSlash:
		return "'/)'"
	}
	return "?"
}

// Token is one lexical token. Pos is the 0-based source column of
// the token's first character within its line; parser errors report
// it 1-based.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

// lexer tokenizes one logical line.
type lexer struct {
	src  string
	cur  int
	toks []Token
}

// Lex tokenizes a line that has already been stripped of the !HPF$
// prefix and comments (see StripLine). It is the shared lexical entry
// point of the front end: this package's directive parser and the
// executable-statement parser of package interp both consume its
// token stream.
func Lex(src string) ([]Token, error) { return lexLine(src) }

// lexLine tokenizes a line, which must already be stripped of the
// !HPF$ prefix and comments.
func lexLine(src string) ([]Token, error) {
	lx := &lexer{src: src}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, tok)
		if tok.Kind == TokEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) next() (Token, error) {
	for lx.cur < len(lx.src) && (lx.src[lx.cur] == ' ' || lx.src[lx.cur] == '\t') {
		lx.cur++
	}
	start := lx.cur
	if lx.cur >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.src[lx.cur]
	switch {
	case c == '(':
		lx.cur++
		if lx.cur < len(lx.src) && lx.src[lx.cur] == '/' {
			lx.cur++
			return Token{Kind: TokSlashParen, Text: "(/", Pos: start}, nil
		}
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case c == ')':
		lx.cur++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case c == ',':
		lx.cur++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case c == ':':
		lx.cur++
		if lx.cur < len(lx.src) && lx.src[lx.cur] == ':' {
			lx.cur++
			return Token{Kind: TokDoubleColon, Text: "::", Pos: start}, nil
		}
		return Token{Kind: TokColon, Text: ":", Pos: start}, nil
	case c == '*':
		lx.cur++
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case c == '+':
		lx.cur++
		return Token{Kind: TokPlus, Text: "+", Pos: start}, nil
	case c == '-':
		lx.cur++
		return Token{Kind: TokMinus, Text: "-", Pos: start}, nil
	case c == '/':
		lx.cur++
		if lx.cur < len(lx.src) && lx.src[lx.cur] == ')' {
			lx.cur++
			return Token{Kind: TokParenSlash, Text: "/)", Pos: start}, nil
		}
		return Token{Kind: TokSlash, Text: "/", Pos: start}, nil
	case c == '=':
		lx.cur++
		return Token{Kind: TokAssign, Text: "=", Pos: start}, nil
	case c >= '0' && c <= '9':
		for lx.cur < len(lx.src) && lx.src[lx.cur] >= '0' && lx.src[lx.cur] <= '9' {
			lx.cur++
		}
		// A fractional part makes a real literal (executable-statement
		// coefficients like 0.25); integer contexts reject it when they
		// fail to parse the text as an integer. "1:2" keeps the ':'.
		if lx.cur+1 < len(lx.src) && lx.src[lx.cur] == '.' && lx.src[lx.cur+1] >= '0' && lx.src[lx.cur+1] <= '9' {
			lx.cur++
			for lx.cur < len(lx.src) && lx.src[lx.cur] >= '0' && lx.src[lx.cur] <= '9' {
				lx.cur++
			}
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.cur], Pos: start}, nil
	case isIdentStart(rune(c)):
		// Always consume the start character: isIdentStart accepts '%'
		// which isIdentPart does not, and a zero-width token would
		// loop the lexer forever (found by FuzzDirectiveProgram).
		lx.cur++
		for lx.cur < len(lx.src) && isIdentPart(rune(lx.src[lx.cur])) {
			lx.cur++
		}
		return Token{Kind: TokIdent, Text: strings.ToUpper(lx.src[start:lx.cur]), Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("directive: unexpected character %q at column %d", string(c), start+1)
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' || r == '%' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// StripLine normalizes one source line — removing trailing comments,
// stripping the !HPF$ prefix — and reports whether anything remains
// to parse (comment-only and blank lines yield ok == false). It is
// exported for clients that classify lines before dispatching them
// (package interp).
func StripLine(line string) (string, bool) { return stripLine(line) }

// stripLine normalizes one source line: it removes trailing comments
// ("!" that does not begin an !HPF$ prefix), strips the !HPF$ prefix,
// and reports whether anything remains. Lines that are entirely
// comments yield ok == false.
func stripLine(line string) (string, bool) {
	s := strings.TrimSpace(line)
	if s == "" {
		return "", false
	}
	upper := strings.ToUpper(s)
	if strings.HasPrefix(upper, "!HPF$") {
		s = strings.TrimSpace(s[5:])
		upper = strings.ToUpper(s)
	} else if strings.HasPrefix(s, "!") {
		return "", false
	}
	// Trailing comment.
	if i := strings.IndexByte(s, '!'); i >= 0 {
		s = strings.TrimSpace(s[:i])
	}
	if s == "" {
		return "", false
	}
	return s, true
}
