package directive

import (
	"strings"
	"testing"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/inquiry"
	"hpfnt/internal/proc"
	"hpfnt/internal/template"
)

func newInterp(t *testing.T, np int) *Interp {
	t.Helper()
	sys, err := proc.NewSystem(np)
	if err != nil {
		t.Fatal(err)
	}
	return New(core.NewUnit("MAIN", sys))
}

func exec(t *testing.T, ip *Interp, src string) {
	t.Helper()
	if err := ip.ExecProgram(src); err != nil {
		t.Fatalf("ExecProgram: %v", err)
	}
}

func owners(t *testing.T, ip *Interp, name string, i ...int) []int {
	t.Helper()
	m, err := ip.MappingOf(name)
	if err != nil {
		t.Fatal(err)
	}
	os, err := m.Owners(index.Tuple(i))
	if err != nil {
		t.Fatal(err)
	}
	return os
}

func TestPaperSection4Examples(t *testing.T) {
	// The four DISTRIBUTE examples of §4 verbatim.
	ip := newInterp(t, 32)
	ip.SetParam("NOP", 8)
	ip.SetParamArray("S", []int{10, 30, 60, 100, 150, 250, 500})
	exec(t, ip, `
		PROCESSORS Q(8), R(32)
		REAL A(100), B(64), C(1000), E(32,32), F(32,32)
		!HPF$ DISTRIBUTE A(BLOCK)
		!HPF$ DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)
		!HPF$ DISTRIBUTE C(GENERAL_BLOCK(S)) TO Q
		!HPF$ DISTRIBUTE (BLOCK, :) :: E,F
	`)
	// A: implicit target, BLOCK over 32 procs: q = ceil(100/32) = 4.
	if os := owners(t, ip, "A", 5); os[0] != 2 {
		t.Fatalf("A(5) on %v", os)
	}
	// B: cyclic over Q(1:8:2) = APs {1,3,5,7}.
	for i := 1; i <= 8; i++ {
		os := owners(t, ip, "B", i)
		if os[0]%2 == 0 {
			t.Fatalf("B(%d) on even processor %v (outside section)", i, os)
		}
	}
	// C: general block bounds 10,30,...: C(15) in block 2 -> AP 2.
	if os := owners(t, ip, "C", 15); os[0] != 2 {
		t.Fatalf("C(15) on %v", os)
	}
	if os := owners(t, ip, "C", 900); os[0] != 8 {
		t.Fatalf("C(900) on %v", os)
	}
	// E and F: (BLOCK,:) — rows blocked, columns local, both same.
	oe := owners(t, ip, "E", 17, 3)
	of := owners(t, ip, "F", 17, 3)
	if oe[0] != of[0] {
		t.Fatalf("E and F must be identically distributed: %v vs %v", oe, of)
	}
}

func TestPaperSection51Examples(t *testing.T) {
	// REAL A(1:N), D(1:N,1:M); ALIGN A(:) WITH D(:,*)
	ip := newInterp(t, 4)
	ip.SetParam("N", 8)
	ip.SetParam("M", 4)
	exec(t, ip, `
		PROCESSORS P(4)
		REAL A(1:N), D(1:N,1:M)
		!HPF$ DISTRIBUTE D(BLOCK,:) TO P
		!HPF$ ALIGN A(:) WITH D(:,*)
	`)
	// D is (BLOCK,:) so columns are collapsed; the replication over
	// columns makes A single-owner anyway (all copies co-resident).
	if os := owners(t, ip, "A", 3); len(os) != 1 || os[0] != 2 {
		t.Fatalf("A(3) on %v", os)
	}

	// REAL B(1:N,1:M), E(1:N); ALIGN B(:,*) WITH E(:)
	ip2 := newInterp(t, 4)
	ip2.SetParam("N", 8)
	ip2.SetParam("M", 4)
	exec(t, ip2, `
		PROCESSORS P(4)
		REAL B(1:N,1:M), E(1:N)
		!HPF$ DISTRIBUTE E(BLOCK) TO P
		!HPF$ ALIGN B(:,*) WITH E(:)
	`)
	// B(i,*) collocated with E(i): whole rows on one processor.
	for j := 1; j <= 4; j++ {
		ob := owners(t, ip2, "B", 3, j)
		oe := owners(t, ip2, "E", 3)
		if ob[0] != oe[0] {
			t.Fatalf("B(3,%d) on %v, E(3) on %v", j, ob, oe)
		}
	}
}

// TestPaperSection6Example runs the allocatable example of §6
// verbatim (modulo the REALIGN timing note in the paper's own text).
func TestPaperSection6Example(t *testing.T) {
	ip := newInterp(t, 32)
	ip.SetParam("M", 2)
	ip.SetParam("N", 4)
	exec(t, ip, `
		REAL,ALLOCATABLE(:,:) :: A,B
		REAL,ALLOCATABLE(:) :: C,D
		!HPF$ PROCESSORS PR(32)
		!HPF$ DISTRIBUTE A(CYCLIC,BLOCK)
		!HPF$ DISTRIBUTE(BLOCK) :: C,D
		!HPF$ DYNAMIC B,C

		READ 6,M,N
		ALLOCATE(A(N*M,N*M))
		ALLOCATE(B(N,N))
		!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
		ALLOCATE(C(10000), D(10000))
		!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
	`)
	u := ip.Unit
	// A allocated 8x8 with (CYCLIC,BLOCK).
	a, _ := u.Array("A")
	if !a.Created || a.Dom.Size() != 64 {
		t.Fatalf("A = %+v", a)
	}
	// B is aligned to A: B(i,j) with A(M*i, 1+(j-1)*M) = A(2i, 2j-1).
	if u.BaseOf("B") != "A" {
		t.Fatalf("B base = %q", u.BaseOf("B"))
	}
	ob := owners(t, ip, "B", 2, 3)
	oa := owners(t, ip, "A", 4, 5)
	if ob[0] != oa[0] {
		t.Fatalf("B(2,3) on %v but A(4,5) on %v", ob, oa)
	}
	// C redistributed to CYCLIC over PR.
	info, err := inquiryOf(ip, "C")
	if err != nil {
		t.Fatal(err)
	}
	if info.Dims[0].Format != dist.KindCyclic {
		t.Fatalf("C format = %v", info.Dims[0].Format)
	}
	// D still BLOCK.
	infoD, _ := inquiryOf(ip, "D")
	if infoD.Dims[0].Format != dist.KindBlock {
		t.Fatalf("D format = %v", infoD.Dims[0].Format)
	}
}

func inquiryOf(ip *Interp, name string) (inquiry.Info, error) {
	m, err := ip.MappingOf(name)
	if err != nil {
		return inquiry.Info{}, err
	}
	return inquiry.Describe(m), nil
}

// TestTholeTemplateExample parses the §8.1.1 template code against
// the baseline model.
func TestTholeTemplateExample(t *testing.T) {
	ip := newInterp(t, 16)
	ip.AttachTemplates(template.NewModel(ip.Unit.Sys))
	ip.SetParam("N", 8)
	exec(t, ip, `
		PROCESSORS G(4,4)
		REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
		!HPF$ TEMPLATE T(0:2*N,0:2*N)
		!HPF$ ALIGN P(I,J) WITH T(2*I-1,2*J-1)
		!HPF$ ALIGN U(I,J) WITH T(2*I,2*J-1)
		!HPF$ ALIGN V(I,J) WITH T(2*I-1,2*J)
		!HPF$ DISTRIBUTE T(CYCLIC,CYCLIC) TO G
	`)
	// The worst possible effect: P(i,j) and U(i,j) always on
	// different processors.
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			po := owners(t, ip, "P", i, j)
			uo := owners(t, ip, "U", i, j)
			if po[0] == uo[0] {
				t.Fatalf("P(%d,%d) and U(%d,%d) collocated under (CYCLIC,CYCLIC) template", i, j, i, j)
			}
		}
	}
}

func TestTemplateDirectiveRejectedWithoutBaseline(t *testing.T) {
	ip := newInterp(t, 4)
	err := ip.ExecProgram(`!HPF$ TEMPLATE T(100)`)
	if err == nil || !strings.Contains(err.Error(), "removes template") {
		t.Fatalf("expected template rejection, got %v", err)
	}
}

func TestViennaBlockToggle(t *testing.T) {
	// With N=65 over 8 procs, HPF BLOCK gives q=9 (proc 8 gets 2),
	// Vienna gives 9,8,8,... — element 10 lands differently.
	src := `
		PROCESSORS P(8)
		REAL A(65)
		!HPF$ DISTRIBUTE A(BLOCK) TO P
	`
	hpf := newInterp(t, 8)
	exec(t, hpf, src)
	vienna := newInterp(t, 8)
	vienna.ViennaBlock = true
	exec(t, vienna, src)
	oh := owners(t, hpf, "A", 10)
	ov := owners(t, vienna, "A", 10)
	if oh[0] != 2 {
		t.Fatalf("HPF A(10) on %v, want 2", oh)
	}
	if ov[0] != 2 {
		t.Fatalf("Vienna A(10) on %v, want 2", ov)
	}
	// Element 63: HPF ceil(63/9)=7, Vienna: 9+8*6=57 -> 63 in block 8? 9+8*7=65, block boundaries 9,17,25,33,41,49,57,65 -> 63 in block 8.
	oh = owners(t, hpf, "A", 63)
	ov = owners(t, vienna, "A", 63)
	if oh[0] == ov[0] {
		t.Fatalf("expected variants to differ at element 63: HPF %v Vienna %v", oh, ov)
	}
}

func TestParameterForms(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `
		PARAMETER N = 16
		PARAMETER(M=4, K=2*N+M)
		PARAMETER S = (/1, 2, 3/)
		REAL A(K)
	`)
	a, ok := ip.Unit.Array("A")
	if !ok || a.Dom.Size() != 36 {
		t.Fatalf("A = %+v", a)
	}
	if got := ip.ParamArrays["S"]; len(got) != 3 || got[2] != 3 {
		t.Fatalf("S = %v", got)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `
		! a full-line comment
		REAL A(8)   ! trailing comment

		!HPF$ DISTRIBUTE A(BLOCK)  ! directive with comment
	`)
	if os := owners(t, ip, "A", 1); len(os) != 1 {
		t.Fatalf("owners = %v", os)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `
		processors p(4)
		real a(16)
		!hpf$ distribute a(block) to p
	`)
	if os := owners(t, ip, "A", 16); os[0] != 4 {
		t.Fatalf("owners = %v", os)
	}
}

func TestErrorLineNumbers(t *testing.T) {
	ip := newInterp(t, 4)
	err := ip.ExecProgram("REAL A(8)\nREAL A(8)")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("expected line-2 error, got %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"FROBNICATE A", "unknown statement"},
		{"REAL A", "requires bounds"},
		{"DISTRIBUTE A(BLOCK)", "unknown array"},
		{"REAL A(8)\n!HPF$ DISTRIBUTE A(WEIRD)", "unknown distribution format"},
		{"REAL A(8)\n!HPF$ DISTRIBUTE A(BLOCK) TO NOWHERE", "unknown processor arrangement"},
		{"REAL A(8)\n!HPF$ ALIGN A(I) WITH B(I)", "unknown alignment base"},
		{"REAL A(8)\nREAD X", "no input value"},
		{"PROCESSORS P(2)\nREAL A(8)\n!HPF$ DISTRIBUTE A(CYCLIC(0)) TO P", "CYCLIC argument"},
		{"REAL A(8), B(8)\n!HPF$ ALIGN A(I) WITH B(I/2)", "division"},
		{"REAL A(8)\n!HPF$ DISTRIBUTE A(BLOCK) EXTRA", "trailing"},
		{"REAL A(8 8)", "expected"},
	}
	for _, c := range cases {
		ip := newInterp(t, 4)
		err := ip.ExecProgram(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("src %q: want error containing %q, got %v", c.src, c.wantSub, err)
		}
	}
}

func TestUnknownIdentifierInExpr(t *testing.T) {
	ip := newInterp(t, 4)
	err := ip.ExecProgram("REAL A(NN)")
	if err == nil || !strings.Contains(err.Error(), "unknown identifier") {
		t.Fatalf("got %v", err)
	}
}

func TestLexerErrors(t *testing.T) {
	ip := newInterp(t, 4)
	if err := ip.ExecLine("REAL A(8); B(8)"); err == nil {
		t.Fatal("semicolon must fail to lex")
	}
}

func TestDynamicAndRedistribute(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `
		PROCESSORS P(4)
		REAL A(16)
		!HPF$ DISTRIBUTE A(BLOCK) TO P
		!HPF$ DYNAMIC A
		!HPF$ REDISTRIBUTE A(CYCLIC) TO P
	`)
	if os := owners(t, ip, "A", 2); os[0] != 2 {
		t.Fatalf("A(2) after redistribute on %v", os)
	}
	// Without DYNAMIC it must fail.
	ip2 := newInterp(t, 4)
	err := ip2.ExecProgram(`
		PROCESSORS P(4)
		REAL B(16)
		!HPF$ DISTRIBUTE B(BLOCK) TO P
		!HPF$ REDISTRIBUTE B(CYCLIC) TO P
	`)
	if err == nil || !strings.Contains(err.Error(), "DYNAMIC") {
		t.Fatalf("got %v", err)
	}
}

func TestAlignWithIntrinsics(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `
		PROCESSORS P(4)
		REAL A(8), B(8)
		!HPF$ DISTRIBUTE B(BLOCK) TO P
		!HPF$ ALIGN A(I) WITH B(MAX(I-1,1))
	`)
	oa := owners(t, ip, "A", 1)
	ob := owners(t, ip, "B", 1)
	if oa[0] != ob[0] {
		t.Fatalf("A(1) on %v, B(1) on %v", oa, ob)
	}
}

func TestScalarSubscriptInSection(t *testing.T) {
	ip := newInterp(t, 8)
	exec(t, ip, `
		PROCESSORS G(4,2)
		REAL A(16)
		!HPF$ DISTRIBUTE A(BLOCK) TO G(1:4,2)
	`)
	// Section G(1:4,2) = APs 5..8.
	for i := 1; i <= 16; i++ {
		os := owners(t, ip, "A", i)
		if os[0] < 5 {
			t.Fatalf("A(%d) on %v, expected APs 5..8", i, os)
		}
	}
}

func TestGeneralBlockLiteral(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `
		PROCESSORS P(4)
		REAL C(16)
		!HPF$ DISTRIBUTE C(GENERAL_BLOCK((/4,10,12/))) TO P
	`)
	if os := owners(t, ip, "C", 11); os[0] != 3 {
		t.Fatalf("C(11) on %v", os)
	}
}

func TestDeallocateStatement(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `
		REAL, ALLOCATABLE(:) :: A
		ALLOCATE(A(16))
		DEALLOCATE(A)
	`)
	a, _ := ip.Unit.Array("A")
	if a.Created {
		t.Fatal("A must be deallocated")
	}
}

func TestIndirectFormat(t *testing.T) {
	// Extension: user-defined distributions through the directive
	// language (the paper's generality point 3).
	ip := newInterp(t, 4)
	ip.SetParamArray("MAP", []int{1, 3, 1, 3, 2, 4, 2, 4})
	exec(t, ip, `
		PROCESSORS P(4)
		REAL A(8), B(8)
		!HPF$ DISTRIBUTE A(INDIRECT(MAP)) TO P
		!HPF$ DISTRIBUTE B(INDIRECT((/1,1,2,2,3,3,4,4/))) TO P
	`)
	want := []int{1, 3, 1, 3, 2, 4, 2, 4}
	for i := 1; i <= 8; i++ {
		if os := owners(t, ip, "A", i); os[0] != want[i-1] {
			t.Fatalf("A(%d) on %v, want %d", i, os, want[i-1])
		}
	}
	if os := owners(t, ip, "B", 5); os[0] != 3 {
		t.Fatalf("B(5) on %v", os)
	}
}

func TestIndirectFormatErrors(t *testing.T) {
	ip := newInterp(t, 4)
	err := ip.ExecProgram(`
		PROCESSORS P(4)
		REAL A(8)
		!HPF$ DISTRIBUTE A(INDIRECT(NOPE)) TO P
	`)
	if err == nil || !strings.Contains(err.Error(), "INDIRECT argument") {
		t.Fatalf("got %v", err)
	}
	ip2 := newInterp(t, 4)
	err = ip2.ExecProgram(`
		PROCESSORS P(4)
		REAL A(8)
		!HPF$ DISTRIBUTE A(INDIRECT((/1,2/))) TO P
	`)
	if err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestExpressionGrammar(t *testing.T) {
	// Unary operators, parentheses, MAX/MIN/LBOUND/UBOUND/SIZE and
	// constant folding through the full grammar.
	ip := newInterp(t, 8)
	ip.SetParam("N", 10)
	exec(t, ip, `
		PROCESSORS P(8)
		REAL A(-(-N)), B(+N), C( (2+3)*2 )
		REAL X(N), Y(N)
		!HPF$ DISTRIBUTE Y(BLOCK) TO P
		!HPF$ ALIGN X(I) WITH Y(MIN(MAX(I-1,1),UBOUND(Y,1)))
	`)
	for _, name := range []string{"A", "B", "C"} {
		arr, ok := ip.Unit.Array(name)
		if !ok || arr.Dom.Size() != 10 {
			t.Fatalf("%s = %+v", name, arr)
		}
	}
	// X(1) aligned with Y(MAX(0,1)=1).
	xo := owners(t, ip, "X", 1)
	yo := owners(t, ip, "Y", 1)
	if xo[0] != yo[0] {
		t.Fatalf("X(1) on %v, Y(1) on %v", xo, yo)
	}
}

func TestLBoundSizeIntrinsics(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `
		PROCESSORS P(4)
		REAL Y(0:9), X(10)
		!HPF$ DISTRIBUTE Y(BLOCK) TO P
		!HPF$ ALIGN X(I) WITH Y(MAX(I-1,LBOUND(Y,1)))
	`)
	xo := owners(t, ip, "X", 1)
	yo := owners(t, ip, "Y", 0)
	if xo[0] != yo[0] {
		t.Fatalf("X(1) on %v, Y(0) on %v", xo, yo)
	}
}

func TestExpressionErrors(t *testing.T) {
	cases := []string{
		"REAL A(MAX(3))",                   // MAX needs >= 2 args
		"REAL A(LBOUND)",                   // intrinsic without parens
		"REAL A(3/0)",                      // division by zero
		"REAL A(*)",                        // stray Token
		"PARAMETER N = (/1,2/)\nREAL A(N)", // array param in scalar context
	}
	for _, src := range cases {
		ip := newInterp(t, 4)
		if err := ip.ExecProgram(src); err == nil {
			t.Errorf("src %q: expected error", src)
		}
	}
}

func TestScalarProcessorsDeclaration(t *testing.T) {
	ip := newInterp(t, 4)
	exec(t, ip, `PROCESSORS SCAL`)
	a, ok := ip.Unit.Sys.Lookup("SCAL")
	if !ok || !a.Scalar {
		t.Fatalf("SCAL = %+v", a)
	}
}

func TestLeadingDoubleColonSection(t *testing.T) {
	// "::2" — lower and upper default, stride 2.
	ip := newInterp(t, 8)
	exec(t, ip, `
		PROCESSORS Q(8)
		REAL B(8)
		!HPF$ DISTRIBUTE B(CYCLIC) TO Q(::2)
	`)
	for i := 1; i <= 8; i++ {
		if os := owners(t, ip, "B", i); os[0]%2 == 0 {
			t.Fatalf("B(%d) on %v", i, os)
		}
	}
}

func TestAlignTripletDefaults(t *testing.T) {
	// ":" as a base subscript is the full-dimension triplet.
	ip := newInterp(t, 4)
	exec(t, ip, `
		PROCESSORS P(4)
		REAL A(8), B(8)
		!HPF$ DISTRIBUTE B(BLOCK) TO P
		!HPF$ ALIGN A(:) WITH B(:)
	`)
	for i := 1; i <= 8; i += 3 {
		ao := owners(t, ip, "A", i)
		bo := owners(t, ip, "B", i)
		if ao[0] != bo[0] {
			t.Fatalf("A(%d) on %v, B(%d) on %v", i, ao, i, bo)
		}
	}
}

func TestDeferredAlignToAllocatable(t *testing.T) {
	// Both alignee and base allocatable: the §6 deferral path with a
	// plain expression alignment.
	ip := newInterp(t, 4)
	exec(t, ip, `
		REAL, ALLOCATABLE(:) :: BASE, X
		!HPF$ DISTRIBUTE BASE(BLOCK)
		!HPF$ ALIGN X(I) WITH BASE(I)
		ALLOCATE(BASE(32))
		ALLOCATE(X(32))
	`)
	xo := owners(t, ip, "X", 20)
	bo := owners(t, ip, "BASE", 20)
	if xo[0] != bo[0] {
		t.Fatalf("X(20) on %v, BASE(20) on %v", xo, bo)
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []TokKind{TokEOF, TokIdent, TokNumber, TokLParen, TokRParen,
		TokComma, TokColon, TokDoubleColon, TokStar, TokPlus, TokMinus,
		TokSlash, TokAssign, TokSlashParen, TokParenSlash}
	for _, k := range kinds {
		if k.String() == "?" {
			t.Fatalf("kind %d has no string", int(k))
		}
	}
}
