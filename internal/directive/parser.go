package directive

import (
	"fmt"
	"strconv"
	"strings"

	"hpfnt/internal/align"
	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
	"hpfnt/internal/template"
)

// Interp parses and executes directive-language programs against a
// core.Unit (the paper's model) and, when attached, a template.Model
// (the HPF baseline) for TEMPLATE directives and alignments whose
// base is a template.
type Interp struct {
	// Unit receives declarations and mapping directives.
	Unit *core.Unit
	// Templates, when non-nil, enables the TEMPLATE directive and
	// template-based alignment of the baseline model.
	Templates *template.Model
	// Params supplies the values of named integer parameters and of
	// the variables named in READ statements.
	Params map[string]int
	// ParamArrays supplies named integer arrays, usable as
	// GENERAL_BLOCK arguments.
	ParamArrays map[string][]int
	// ViennaBlock selects the Vienna Fortran BLOCK definition instead
	// of the HPF one (the footnote of §8.1.1).
	ViennaBlock bool

	available       map[string]bool // parameters made available (PARAMETER or READ)
	templateAligned map[string]bool // arrays aligned to a template (baseline model)
}

// New creates an interpreter over a unit.
func New(unit *core.Unit) *Interp {
	return &Interp{
		Unit:            unit,
		Params:          map[string]int{},
		ParamArrays:     map[string][]int{},
		available:       map[string]bool{},
		templateAligned: map[string]bool{},
	}
}

// SetParam defines an integer parameter usable in expressions.
func (ip *Interp) SetParam(name string, v int) {
	name = strings.ToUpper(name)
	ip.Params[name] = v
	ip.available[name] = true
}

// SetParamArray defines a named integer array.
func (ip *Interp) SetParamArray(name string, vals []int) {
	name = strings.ToUpper(name)
	ip.ParamArrays[name] = append([]int(nil), vals...)
	ip.available[name] = true
}

// AttachTemplates enables the baseline template model.
func (ip *Interp) AttachTemplates(m *template.Model) { ip.Templates = m }

// MappingOf resolves the element mapping of an array, routing through
// the template model when the array is template-aligned.
func (ip *Interp) MappingOf(name string) (core.ElementMapping, error) {
	name = strings.ToUpper(name)
	if ip.templateAligned[name] {
		return template.Mapping{M: ip.Templates, Name: name}, nil
	}
	return ip.Unit.MappingOf(name)
}

// ExecProgram executes a multi-line program, reporting errors with
// 1-based line numbers.
func (ip *Interp) ExecProgram(src string) error {
	for ln, line := range strings.Split(src, "\n") {
		if err := ip.ExecLine(line); err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return nil
}

// ExecLine executes one line (statement or directive); comment and
// blank lines are ignored.
func (ip *Interp) ExecLine(line string) error {
	body, ok := stripLine(line)
	if !ok {
		return nil
	}
	toks, err := lexLine(body)
	if err != nil {
		return err
	}
	p := &parser{toks: toks, ip: ip}
	return p.statement()
}

// parser consumes one statement's tokens.
type parser struct {
	toks []Token
	i    int
	ip   *Interp
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k TokKind) bool {
	return p.toks[p.i].Kind == k
}

func (p *parser) accept(k TokKind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, fmt.Errorf("directive: expected %s, found %s %q (column %d)", k, p.peek().Kind, p.peek().Text, p.peek().Pos+1)
	}
	return p.next(), nil
}

func (p *parser) expectIdent(word string) error {
	t, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if t.Text != word {
		return fmt.Errorf("directive: expected %s, found %q", word, t.Text)
	}
	return nil
}

func (p *parser) atEnd() bool { return p.at(TokEOF) }

func (p *parser) requireEnd() error {
	if !p.atEnd() {
		return fmt.Errorf("directive: unexpected trailing %s %q (column %d)", p.peek().Kind, p.peek().Text, p.peek().Pos+1)
	}
	return nil
}

// statement dispatches on the leading keyword.
func (p *parser) statement() error {
	t, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	switch t.Text {
	case "PARAMETER":
		return p.parameterStmt()
	case "PROCESSORS":
		return p.processorsStmt()
	case "REAL", "INTEGER", "LOGICAL", "DOUBLE":
		return p.declStmt()
	case "DYNAMIC":
		return p.dynamicStmt()
	case "DISTRIBUTE":
		return p.distributeStmt(false)
	case "REDISTRIBUTE":
		return p.distributeStmt(true)
	case "ALIGN":
		return p.alignStmt(false)
	case "REALIGN":
		return p.alignStmt(true)
	case "TEMPLATE":
		return p.templateStmt()
	case "ALLOCATE":
		return p.allocateStmt()
	case "DEALLOCATE":
		return p.deallocateStmt()
	case "READ":
		return p.readStmt()
	default:
		return fmt.Errorf("directive: unknown statement %q (column %d)", t.Text, t.Pos+1)
	}
}

// parameterStmt handles "PARAMETER N = 64", "PARAMETER(N=64)" and
// array forms "PARAMETER S = (/4,10,16/)".
func (p *parser) parameterStmt() error {
	paren := p.accept(TokLParen)
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return err
		}
		if p.at(TokSlashParen) {
			vals, err := p.arrayConstructor()
			if err != nil {
				return err
			}
			p.ip.SetParamArray(nameTok.Text, vals)
		} else {
			v, err := p.constExpr()
			if err != nil {
				return err
			}
			p.ip.SetParam(nameTok.Text, v)
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if paren {
		if _, err := p.expect(TokRParen); err != nil {
			return err
		}
	}
	return p.requireEnd()
}

func (p *parser) arrayConstructor() ([]int, error) {
	if _, err := p.expect(TokSlashParen); err != nil {
		return nil, err
	}
	var vals []int
	for {
		v, err := p.constExpr()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokParenSlash); err != nil {
		return nil, err
	}
	return vals, nil
}

// processorsStmt handles "PROCESSORS PR(32), Q(1:8,1:4), SCAL".
func (p *parser) processorsStmt() error {
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if p.at(TokLParen) {
			dom, err := p.boundsList()
			if err != nil {
				return err
			}
			if _, err := p.ip.Unit.Sys.DeclareArray(nameTok.Text, dom); err != nil {
				return err
			}
		} else {
			if _, err := p.ip.Unit.Sys.DeclareScalar(nameTok.Text, proc.ScalarControl); err != nil {
				return err
			}
		}
		if !p.accept(TokComma) {
			break
		}
	}
	return p.requireEnd()
}

// Declared domains are bounded at parse time so that hostile bound
// expressions become positioned errors here instead of silent integer
// overflow inside Domain.Size (whose product is what every layer
// above sizes its tables by) or memory exhaustion at materialization.
const (
	// maxDeclaredBound bounds the magnitude of any declared lower or
	// upper bound.
	maxDeclaredBound = 1 << 40
	// maxDeclaredElems bounds the total element count of one declared
	// domain (array, template or processor arrangement).
	maxDeclaredElems = 1 << 44
)

// boundsList parses "(b1, b2, ...)" where each bound is "u" (meaning
// 1:u) or "l:u", rejecting domains whose bounds or total size exceed
// the declaration limits.
func (p *parser) boundsList() (index.Domain, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return index.Domain{}, err
	}
	var dims []index.Triplet
	elems := int64(1)
	for {
		pos := p.peek().Pos
		lo, err := p.constExpr()
		if err != nil {
			return index.Domain{}, err
		}
		if p.accept(TokColon) {
			hi, err := p.constExpr()
			if err != nil {
				return index.Domain{}, err
			}
			dims = append(dims, index.Unit(lo, hi))
		} else {
			dims = append(dims, index.Unit(1, lo))
		}
		d := dims[len(dims)-1]
		if d.Low < -maxDeclaredBound || d.Low > maxDeclaredBound || d.High < -maxDeclaredBound || d.High > maxDeclaredBound {
			return index.Domain{}, fmt.Errorf("directive: declared bound exceeds %d in magnitude (column %d)", int64(maxDeclaredBound), pos+1)
		}
		if cnt := int64(d.High) - int64(d.Low) + 1; cnt > 0 {
			elems *= cnt
			if elems > maxDeclaredElems {
				return index.Domain{}, fmt.Errorf("directive: declared domain exceeds %d elements (column %d)", int64(maxDeclaredElems), pos+1)
			}
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return index.Domain{}, err
	}
	return index.New(dims...), nil
}

// declStmt handles "REAL A(0:N,1:N), B(5)" and
// "REAL, ALLOCATABLE(:,:) :: A, B".
func (p *parser) declStmt() error {
	allocRank := 0
	allocatable := false
	if p.accept(TokComma) {
		if err := p.expectIdent("ALLOCATABLE"); err != nil {
			return err
		}
		allocatable = true
		if _, err := p.expect(TokLParen); err != nil {
			return err
		}
		for {
			if _, err := p.expect(TokColon); err != nil {
				return err
			}
			allocRank++
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return err
		}
	}
	p.accept(TokDoubleColon)
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if allocatable {
			if _, err := p.ip.Unit.DeclareAllocatable(nameTok.Text, allocRank); err != nil {
				return err
			}
			if p.ip.Templates != nil {
				// The baseline model has no allocatable support; the
				// array is registered there only if later created.
				_ = nameTok
			}
		} else {
			if !p.at(TokLParen) {
				return fmt.Errorf("directive: array %s requires bounds (scalars are not declared)", nameTok.Text)
			}
			dom, err := p.boundsList()
			if err != nil {
				return err
			}
			if _, err := p.ip.Unit.DeclareArray(nameTok.Text, dom); err != nil {
				return err
			}
			if p.ip.Templates != nil {
				if err := p.ip.Templates.DeclareArray(nameTok.Text, dom); err != nil {
					return err
				}
			}
		}
		if !p.accept(TokComma) {
			break
		}
	}
	return p.requireEnd()
}

func (p *parser) dynamicStmt() error {
	p.accept(TokDoubleColon)
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if err := p.ip.Unit.SetDynamic(nameTok.Text); err != nil {
			return err
		}
		if !p.accept(TokComma) {
			break
		}
	}
	return p.requireEnd()
}

// distributeStmt handles both directive forms:
//
//	DISTRIBUTE A(BLOCK,:) TO P
//	DISTRIBUTE (BLOCK,:) TO P :: A, B
//
// and their REDISTRIBUTE counterparts.
func (p *parser) distributeStmt(redistribute bool) error {
	if p.at(TokLParen) {
		// Attributed form: formats first, distributees after "::".
		formats, err := p.formatList()
		if err != nil {
			return err
		}
		target, err := p.optionalTarget()
		if err != nil {
			return err
		}
		if _, err := p.expect(TokDoubleColon); err != nil {
			return err
		}
		for {
			nameTok, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			if err := p.applyDistribute(nameTok.Text, formats, target, redistribute); err != nil {
				return err
			}
			if !p.accept(TokComma) {
				break
			}
		}
		return p.requireEnd()
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	formats, err := p.formatList()
	if err != nil {
		return err
	}
	target, err := p.optionalTarget()
	if err != nil {
		return err
	}
	if err := p.applyDistribute(nameTok.Text, formats, target, redistribute); err != nil {
		return err
	}
	return p.requireEnd()
}

func (p *parser) applyDistribute(name string, formats []dist.Format, target proc.Target, redistribute bool) error {
	if p.ip.Templates != nil && p.ip.Templates.HasTemplate(name) {
		if redistribute {
			return fmt.Errorf("directive: templates cannot be redistributed in this front end")
		}
		return p.ip.Templates.DistributeTemplate(name, formats, target)
	}
	if redistribute {
		return p.ip.Unit.Redistribute(name, formats, target)
	}
	return p.ip.Unit.Distribute(name, formats, target)
}

// formatList parses "(fmt, fmt, ...)".
func (p *parser) formatList() ([]dist.Format, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var formats []dist.Format
	for {
		f, err := p.format()
		if err != nil {
			return nil, err
		}
		formats = append(formats, f)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return formats, nil
}

func (p *parser) format() (dist.Format, error) {
	if p.accept(TokColon) {
		return dist.Collapsed{}, nil
	}
	t, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	switch t.Text {
	case "BLOCK":
		if p.ip.ViennaBlock {
			return dist.BlockVienna{}, nil
		}
		return dist.Block{}, nil
	case "CYCLIC":
		if p.accept(TokLParen) {
			k, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if k < 1 {
				return nil, fmt.Errorf("directive: CYCLIC argument must be positive, got %d", k)
			}
			return dist.NewCyclic(k), nil
		}
		return dist.NewCyclic(1), nil
	case "GENERAL_BLOCK":
		bounds, err := p.intVectorArg("GENERAL_BLOCK")
		if err != nil {
			return nil, err
		}
		return dist.GeneralBlock{Bounds: bounds}, nil
	case "INDIRECT":
		// Extension: user-defined (indirect) distributions, the
		// generality the paper's introduction (point 3) provides for.
		owner, err := p.intVectorArg("INDIRECT")
		if err != nil {
			return nil, err
		}
		return dist.NewIndirect(owner)
	default:
		return nil, fmt.Errorf("directive: unknown distribution format %q", t.Text)
	}
}

// intVectorArg parses "(name)" or "((/v1,v2,.../))" as an integer
// vector argument of a distribution format.
func (p *parser) intVectorArg(what string) ([]int, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var vals []int
	if p.at(TokSlashParen) {
		var err error
		vals, err = p.arrayConstructor()
		if err != nil {
			return nil, err
		}
	} else {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		arr, ok := p.ip.ParamArrays[nameTok.Text]
		if !ok {
			return nil, fmt.Errorf("directive: %s argument %s is not a known integer array", what, nameTok.Text)
		}
		vals = arr
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return vals, nil
}

// optionalTarget parses "[TO name[(sections)]]".
func (p *parser) optionalTarget() (proc.Target, error) {
	if !p.at(TokIdent) || p.peek().Text != "TO" {
		return proc.Target{}, nil
	}
	p.next()
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return proc.Target{}, err
	}
	arr, ok := p.ip.Unit.Sys.Lookup(nameTok.Text)
	if !ok {
		return proc.Target{}, fmt.Errorf("directive: unknown processor arrangement %s", nameTok.Text)
	}
	if !p.at(TokLParen) {
		return proc.Whole(arr), nil
	}
	p.next()
	var sel []index.Triplet
	var drop []bool
	dim := 0
	for {
		tr, scalar, err := p.sectionTriplet(arr.Dom, dim)
		if err != nil {
			return proc.Target{}, err
		}
		sel = append(sel, tr)
		drop = append(drop, scalar)
		dim++
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return proc.Target{}, err
	}
	anyDrop := false
	for _, d := range drop {
		anyDrop = anyDrop || d
	}
	if !anyDrop {
		drop = nil
	}
	return proc.SectionDropping(arr, sel, drop)
}

// sectionTriplet parses one section subscript: ":", "l:u[:s]" with
// optional parts defaulting to the dimension's bounds (including the
// "l::s" and "::s" forms, where "::" lexes as one Token), or a scalar
// subscript "v". The second result reports the scalar case, which
// reduces the target's rank.
func (p *parser) sectionTriplet(dom index.Domain, dim int) (index.Triplet, bool, error) {
	if dim >= dom.Rank() {
		return index.Triplet{}, false, fmt.Errorf("directive: too many section subscripts (rank %d)", dom.Rank())
	}
	def := dom.Dims[dim]
	lo, hi, st := def.Low, def.Last(), 1
	hasLo := false
	if !p.at(TokColon) && !p.at(TokDoubleColon) {
		v, err := p.constExpr()
		if err != nil {
			return index.Triplet{}, false, err
		}
		lo = v
		hasLo = true
	}
	if p.accept(TokDoubleColon) {
		// "l::s" / "::s": upper bound defaults, stride explicit.
		v, err := p.constExpr()
		if err != nil {
			return index.Triplet{}, false, err
		}
		tr, err := index.NewTriplet(lo, hi, v)
		return tr, false, err
	}
	if !p.accept(TokColon) {
		if !hasLo {
			return index.Triplet{}, false, fmt.Errorf("directive: empty section subscript")
		}
		return index.Unit(lo, lo), true, nil // scalar subscript
	}
	if !p.at(TokColon) && !p.at(TokComma) && !p.at(TokRParen) && !p.at(TokEOF) {
		v, err := p.constExpr()
		if err != nil {
			return index.Triplet{}, false, err
		}
		hi = v
	}
	if p.accept(TokColon) {
		v, err := p.constExpr()
		if err != nil {
			return index.Triplet{}, false, err
		}
		st = v
	}
	tr, err := index.NewTriplet(lo, hi, st)
	return tr, false, err
}

// alignStmt handles "ALIGN A(axes) WITH B(subs)" and REALIGN.
func (p *parser) alignStmt(realign bool) error {
	aligneeTok, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	var axes []align.Axis
	dummies := map[string]bool{}
	for {
		switch {
		case p.accept(TokColon):
			axes = append(axes, align.Colon())
		case p.accept(TokStar):
			axes = append(axes, align.Star())
		default:
			t, err := p.expect(TokIdent)
			if err != nil {
				return fmt.Errorf("directive: alignee axis must be ':', '*' or an align-dummy: %w", err)
			}
			axes = append(axes, align.DummyAxis(t.Text))
			dummies[t.Text] = true
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	if err := p.expectIdent("WITH"); err != nil {
		return err
	}
	baseTok, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	baseDom, isTemplate, err := p.baseDomain(baseTok.Text)
	if err != nil {
		return err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	var subs []align.Subscript
	dim := 0
	for {
		s, err := p.alignSubscript(dummies, baseDom, dim)
		if err != nil {
			return err
		}
		subs = append(subs, s)
		dim++
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	if err := p.requireEnd(); err != nil {
		return err
	}
	spec := align.Spec{Alignee: aligneeTok.Text, Axes: axes, Base: baseTok.Text, Subs: subs}
	if isTemplate {
		if realign {
			return fmt.Errorf("directive: REALIGN with a template base is not supported by the baseline front end")
		}
		if err := p.ip.Templates.AlignWithTemplate(spec); err != nil {
			return err
		}
		p.ip.templateAligned[aligneeTok.Text] = true
		return nil
	}
	if realign {
		return p.ip.Unit.Realign(spec)
	}
	return p.ip.Unit.Align(spec)
}

// baseDomain resolves the index domain of an alignment base, which
// may be an array or (baseline model only) a template.
func (p *parser) baseDomain(name string) (index.Domain, bool, error) {
	if a, ok := p.ip.Unit.Array(name); ok {
		if !a.Created {
			// Deferred alignment to an allocatable: unknown extents;
			// triplet defaults are unavailable, but plain expressions
			// still parse. Use a placeholder domain of the right
			// rank.
			dims := make([]index.Triplet, a.Rank)
			for i := range dims {
				dims[i] = index.Unit(1, 1)
			}
			return index.New(dims...), false, nil
		}
		return a.Dom, false, nil
	}
	if p.ip.Templates != nil && p.ip.Templates.HasTemplate(name) {
		dom, err := p.ip.Templates.TemplateDomain(name)
		if err != nil {
			return index.Domain{}, false, err
		}
		return dom, true, nil
	}
	return index.Domain{}, false, fmt.Errorf("directive: unknown alignment base %s", name)
}

// alignSubscript parses one base subscript: "*", a triplet (detected
// by a top-level ":"), or an expression possibly containing one
// align-dummy.
func (p *parser) alignSubscript(dummies map[string]bool, baseDom index.Domain, dim int) (align.Subscript, error) {
	if p.accept(TokStar) {
		return align.StarSub(), nil
	}
	if p.tripletAhead() {
		if dim >= baseDom.Rank() {
			return align.Subscript{}, fmt.Errorf("directive: too many base subscripts (rank %d)", baseDom.Rank())
		}
		tr, _, err := p.sectionTriplet(baseDom, dim)
		if err != nil {
			return align.Subscript{}, err
		}
		return align.TripletSub(tr), nil
	}
	e, err := p.alignExpr(dummies)
	if err != nil {
		return align.Subscript{}, err
	}
	return align.ExprSub(e), nil
}

// tripletAhead reports whether a top-level ":" occurs before the next
// top-level "," or ")" — distinguishing triplets from expressions.
func (p *parser) tripletAhead() bool {
	depth := 0
	for k := p.i; k < len(p.toks); k++ {
		switch p.toks[k].Kind {
		case TokLParen, TokSlashParen:
			depth++
		case TokRParen, TokParenSlash:
			if depth == 0 {
				return false
			}
			depth--
		case TokComma:
			if depth == 0 {
				return false
			}
		case TokColon, TokDoubleColon:
			if depth == 0 {
				return true
			}
		case TokEOF:
			return false
		}
	}
	return false
}

// constExpr parses and evaluates a constant integer expression using
// the interpreter's parameters.
func (p *parser) constExpr() (int, error) {
	e, err := p.alignExpr(nil)
	if err != nil {
		return 0, err
	}
	v, err := e.Eval(expr.Env{})
	if err != nil {
		return 0, fmt.Errorf("directive: expression is not constant: %w", err)
	}
	return v, nil
}

// alignExpr parses an expression; identifiers in dummies become
// align-dummies, parameters fold to constants, and the MAX/MIN/
// LBOUND/UBOUND/SIZE intrinsics are recognized. With dummies == nil,
// only constant expressions are accepted.
func (p *parser) alignExpr(dummies map[string]bool) (expr.Expr, error) {
	return p.addExpr(dummies)
}

func (p *parser) addExpr(dummies map[string]bool) (expr.Expr, error) {
	l, err := p.mulExpr(dummies)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokPlus):
			r, err := p.mulExpr(dummies)
			if err != nil {
				return nil, err
			}
			l = fold(expr.Add(l, r))
		case p.accept(TokMinus):
			r, err := p.mulExpr(dummies)
			if err != nil {
				return nil, err
			}
			l = fold(expr.Sub(l, r))
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr(dummies map[string]bool) (expr.Expr, error) {
	l, err := p.unaryExpr(dummies)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokStar):
			r, err := p.unaryExpr(dummies)
			if err != nil {
				return nil, err
			}
			l = fold(expr.Mul(l, r))
		case p.accept(TokSlash):
			r, err := p.unaryExpr(dummies)
			if err != nil {
				return nil, err
			}
			lc, lok := constOf(l)
			rc, rok := constOf(r)
			if !lok || !rok {
				return nil, fmt.Errorf("directive: division is only permitted in constant expressions (alignment functions use +, -, *)")
			}
			if rc == 0 {
				return nil, fmt.Errorf("directive: division by zero")
			}
			l = expr.Const(lc / rc)
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr(dummies map[string]bool) (expr.Expr, error) {
	if p.accept(TokMinus) {
		e, err := p.unaryExpr(dummies)
		if err != nil {
			return nil, err
		}
		return fold(expr.Sub(expr.Const(0), e)), nil
	}
	if p.accept(TokPlus) {
		return p.unaryExpr(dummies)
	}
	return p.primaryExpr(dummies)
}

func (p *parser) primaryExpr(dummies map[string]bool) (expr.Expr, error) {
	switch {
	case p.at(TokNumber):
		t := p.next()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, fmt.Errorf("directive: bad number %q: %w", t.Text, err)
		}
		return expr.Const(v), nil
	case p.accept(TokLParen):
		e, err := p.addExpr(dummies)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(TokIdent):
		t := p.next()
		switch t.Text {
		case "MAX", "MIN":
			args, err := p.callArgs(dummies)
			if err != nil {
				return nil, err
			}
			if len(args) < 2 {
				return nil, fmt.Errorf("directive: %s requires at least two arguments", t.Text)
			}
			if t.Text == "MAX" {
				return expr.Max(args...), nil
			}
			return expr.Min(args...), nil
		case "LBOUND", "UBOUND", "SIZE":
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			arrTok, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			dim := 1
			if p.accept(TokComma) {
				dim, err = p.constExpr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			switch t.Text {
			case "LBOUND":
				return expr.LBound(arrTok.Text, dim), nil
			case "UBOUND":
				return expr.UBound(arrTok.Text, dim), nil
			default:
				return expr.Size(arrTok.Text, dim), nil
			}
		}
		if dummies != nil && dummies[t.Text] {
			return expr.Dummy(t.Text), nil
		}
		if v, ok := p.ip.Params[t.Text]; ok && p.ip.available[t.Text] {
			return expr.Const(v), nil
		}
		return nil, fmt.Errorf("directive: unknown identifier %q in expression (not a parameter%s)", t.Text, dummyHint(dummies))
	default:
		return nil, fmt.Errorf("directive: expected expression, found %s %q", p.peek().Kind, p.peek().Text)
	}
}

func dummyHint(dummies map[string]bool) string {
	if dummies == nil {
		return ""
	}
	return " or align-dummy"
}

func (p *parser) callArgs(dummies map[string]bool) ([]expr.Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []expr.Expr
	for {
		e, err := p.addExpr(dummies)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

// fold collapses constant subexpressions.
func fold(e expr.Expr) expr.Expr {
	if len(expr.Dummies(e)) > 0 {
		return e
	}
	if _, usesBounds := boundsFree(e); !usesBounds {
		if v, err := e.Eval(expr.Env{}); err == nil {
			return expr.Const(v)
		}
	}
	return e
}

// boundsFree reports whether e references LBOUND/UBOUND/SIZE.
func boundsFree(e expr.Expr) (expr.Expr, bool) {
	switch n := e.(type) {
	case expr.Bound:
		return e, true
	case expr.Bin:
		if _, b := boundsFree(n.L); b {
			return e, true
		}
		if _, b := boundsFree(n.R); b {
			return e, true
		}
	case expr.MinMax:
		for _, a := range n.Args {
			if _, b := boundsFree(a); b {
				return e, true
			}
		}
	}
	return e, false
}

func constOf(e expr.Expr) (int, bool) {
	c, ok := e.(expr.Const)
	return int(c), ok
}

// templateStmt handles "TEMPLATE T(bounds)" (baseline model only).
func (p *parser) templateStmt() error {
	if p.ip.Templates == nil {
		return fmt.Errorf("directive: TEMPLATE is not part of this model (the paper's proposal removes template directives); attach a template.Model to parse HPF baseline programs")
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	dom, err := p.boundsList()
	if err != nil {
		return err
	}
	if _, err := p.ip.Templates.DeclareTemplate(nameTok.Text, dom); err != nil {
		return err
	}
	return p.requireEnd()
}

// allocateStmt handles "ALLOCATE(A(n,m), B(n))".
func (p *parser) allocateStmt() error {
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		dom, err := p.boundsList()
		if err != nil {
			return err
		}
		if err := p.ip.Unit.Allocate(nameTok.Text, dom); err != nil {
			return err
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	return p.requireEnd()
}

func (p *parser) deallocateStmt() error {
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if err := p.ip.Unit.Deallocate(nameTok.Text); err != nil {
			return err
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	return p.requireEnd()
}

// readStmt handles "READ M,N" and "READ 6,M,N" (the unit number is
// ignored); the named variables must have values supplied via
// SetParam, modeling run-time input (§6's example reads M and N).
func (p *parser) readStmt() error {
	if p.at(TokNumber) {
		p.next()
		if !p.accept(TokComma) {
			return fmt.Errorf("directive: READ unit number must be followed by ','")
		}
	}
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, ok := p.ip.Params[nameTok.Text]; !ok {
			return fmt.Errorf("directive: READ %s: no input value supplied (use SetParam)", nameTok.Text)
		}
		p.ip.available[nameTok.Text] = true
		if !p.accept(TokComma) {
			break
		}
	}
	return p.requireEnd()
}
