package workload

import (
	"os"
	"testing"

	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
)

// denseX materializes the deterministic CG fill over 1:n densely.
func denseX(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = xFill(index.Tuple{i + 1})
	}
	return x
}

// TestSparseCGMatchesSequential verifies the distributed q = A·x
// against the dense sequential product, across mixed distributions
// (BLOCK vector gathered from an INDIRECT-partitioned one), on the
// process-default engine (the spmd CI leg covers the parallel
// backend).
func TestSparseCGMatchesSequential(t *testing.T) {
	const n, nnz, np = 200, 900, 4
	sys := SparseMatrix(n, nnz, 7)
	xm, err := PartitionMapping(n, np, 3)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewDefault(np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	c, err := NewSparseCG(eng, sys, xm, qm)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := c.NewSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.GhostElements() == 0 {
		t.Fatal("mixed-distribution SpMV should need halo traffic")
	}
	if err := sched.ExecuteN(3); err != nil {
		t.Fatal(err)
	}
	want := sys.SeqMatVec(denseX(n))
	got := c.Q.Data()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("q[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	rep := eng.Stats()
	if rep.RemoteRefs == 0 || rep.Messages == 0 {
		t.Fatalf("expected irregular communication, got %+v", rep)
	}
}

// TestSparseCGStepBothEngines: the whole step (build, replay, reduce)
// must agree between the backends on values and statistics.
func TestSparseCGStepBothEngines(t *testing.T) {
	const n, nnz, np, iters = 120, 600, 3, 2
	sys := SparseMatrix(n, nnz, 11)
	run := func(kind string) (machine.Report, float64) {
		t.Helper()
		eng, err := engine.New(kind, np, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		xm, err := Rank1Mapping(n, np, dist.Cyclic{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		qm, err := Rank1Mapping(n, np, dist.Block{})
		if err != nil {
			t.Fatal(err)
		}
		rep, sum, err := SparseCGStep(eng, sys, iters, xm, qm)
		if err != nil {
			t.Fatal(err)
		}
		return rep, sum
	}
	simRep, simSum := run(engine.Sim)
	spmdRep, spmdSum := run(engine.SPMD)
	if simSum != spmdSum {
		t.Fatalf("reduction: sim %g, spmd %g", simSum, spmdSum)
	}
	if simRep != spmdRep {
		t.Fatalf("report mismatch:\n sim  %+v\n spmd %+v", simRep, spmdRep)
	}
}

// TestEdgeSweepMatchesSequential verifies the unstructured-mesh edge
// sweep against its dense reference on the process-default engine.
func TestEdgeSweepMatchesSequential(t *testing.T) {
	const n, chords, np = 150, 80, 5
	m := RingMesh(n, chords, 13)
	valMap, err := Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		t.Fatal(err)
	}
	accMap, err := PartitionMapping(n, np, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.NewDefault(np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	val, err := eng.NewArray("VAL", valMap)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := eng.NewArray("ACC", accMap)
	if err != nil {
		t.Fatal(err)
	}
	val.Fill(xFill)
	sched, err := acc.NewIrregular(val, m.Pattern())
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ExecuteN(2); err != nil {
		t.Fatal(err)
	}
	want := m.SeqSweep(denseX(n))
	got := acc.Data()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("acc[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestEdgeSweepReportBothEngines pins the EdgeSweep entry point on
// identical statistics across backends.
func TestEdgeSweepReportBothEngines(t *testing.T) {
	const n, chords, np = 90, 40, 3
	m := RingMesh(n, chords, 17)
	run := func(kind string) machine.Report {
		t.Helper()
		eng, err := engine.New(kind, np, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		valMap, err := Rank1Mapping(n, np, dist.Block{})
		if err != nil {
			t.Fatal(err)
		}
		accMap, err := Rank1Mapping(n, np, dist.Cyclic{K: 4})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := EdgeSweep(eng, m, 2, valMap, accMap)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if sim, spmd := run(engine.Sim), run(engine.SPMD); sim != spmd {
		t.Fatalf("report mismatch:\n sim  %+v\n spmd %+v", sim, spmd)
	}
}

// TestIrregularAmortization is the schedule-reuse gate of the
// acceptance criteria: on the 64k-nonzero sparse CG workload, a
// steady-state (schedule-reused) iteration must be at least 5× faster
// than the first (inspector + execute) iteration. Like the Jacobi
// speedup gate it is opt-in (HPFNT_SPEEDUP=1) and skipped under the
// race detector, since wall-clock ratios are meaningless on
// instrumented runs. Unlike the Jacobi speedup gate it needs no
// minimum core count: amortization compares analysis cost against
// replay cost on the same backend, not parallel against sequential.
func TestIrregularAmortization(t *testing.T) {
	if os.Getenv("HPFNT_SPEEDUP") == "" {
		t.Skip("wall-clock gate is opt-in: set HPFNT_SPEEDUP=1")
	}
	if engine.RaceEnabled {
		t.Skip("wall-clock assertion skipped under -race")
	}
	const n, nnz, np, iters = 8192, 65536, 8, 50
	sys := SparseMatrix(n, nnz, 23)
	best := 0.0
	var firstMS, steadyMS float64
	for attempt := 0; attempt < 2; attempt++ {
		first, steady, err := IrregularAmortization(engine.SPMD, sys, np, iters)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := first / steady; ratio > best {
			best, firstMS, steadyMS = ratio, first, steady
		}
	}
	t.Logf("sparse CG %d nnz: first (inspector) %.2fms, steady %.3fms/iter, amortization %.1fx", nnz, firstMS, steadyMS, best)
	if best < 5 {
		t.Fatalf("schedule reuse amortization %.1fx < 5x (first %.2fms, steady %.3fms)", best, firstMS, steadyMS)
	}
}
