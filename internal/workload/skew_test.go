package workload

import (
	"testing"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
	"hpfnt/internal/obs/analyze"
	"hpfnt/internal/proc"
)

// generalBlockRowMapping maps an n×n array (GENERAL_BLOCK, :) with the
// given row bounds — the knob for seeding a known load imbalance.
func generalBlockRowMapping(n, np int, bounds []int) (core.ElementMapping, error) {
	sys, err := proc.NewSystem(np)
	if err != nil {
		return nil, err
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, np))
	if err != nil {
		return nil, err
	}
	d, err := dist.New(index.Standard(1, n, 1, n),
		[]dist.Format{dist.GeneralBlock{Bounds: bounds}, dist.Collapsed{}}, proc.Whole(arr))
	if err != nil {
		return nil, err
	}
	return core.DistMapping{D: d}, nil
}

// TestSkewedDistributionNamesStraggler seeds a known imbalance — a
// GENERAL_BLOCK Jacobi where rank 1 owns 29 of 32 rows — and asserts
// the skew pipeline (Detail → ComputeWeights → Skew → SkewMonitor,
// the exact path hpfnode's hpfnt_epoch_skew_ratio gauge takes) names
// rank 1 as the straggler with at least the constructed ratio. The
// weights are logical load counters, so the diagnosis is fully
// deterministic.
func TestSkewedDistributionNamesStraggler(t *testing.T) {
	const n, np, iters = 32, 4, 3
	// Rank 1 owns rows 1..29; ranks 2..4 own one row each. Of the 30
	// interior rows (2..31), rank 1 computes 28, ranks 2 and 3 one
	// each, rank 4 none: per-rank interior loads 28:1:1:0 — a
	// constructed skew of 28/(30/4) = 3.73 on rank 1.
	m, err := generalBlockRowMapping(n, np, []int{29, 30, 31})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.SPMD, np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rec := obs.StartTrace(0, 1<<12)
	defer obs.StopTrace()
	if _, err := JacobiReplay(eng, n, iters, m, m); err != nil {
		t.Fatal(err)
	}

	d := eng.LocalDetail()
	im := analyze.FromDetail(d)
	if im.Source != "load" {
		t.Fatalf("weights source = %q, want the deterministic %q (timers are off)", im.Source, "load")
	}
	if im.Straggler != 1 {
		t.Fatalf("straggler = r%d (weights %v), want r1", im.Straggler, im.Weights)
	}
	if im.Ratio < 3.7 {
		t.Fatalf("skew ratio %.3f below the constructed 28/7.5 (weights %v)", im.Ratio, im.Weights)
	}

	// The live monitor fed exactly what the metrics endpoint feeds it
	// must publish the same diagnosis.
	mon := obs.NewSkewMonitor()
	mon.ObserveWeights(im.Weights)
	mon.ObserveEvents(rec.Snapshot())
	s := mon.Sample()
	if s.Straggler != 1 || s.Ratio < 3.7 {
		t.Fatalf("SkewMonitor sample %+v, want straggler r1 with ratio >= 3.7", s)
	}
	if s.CriticalPathNS <= 0 {
		t.Fatal("SkewMonitor saw trace events but no critical path")
	}

	// And the offline analysis of the same trace (what hpftrace runs)
	// must find a nonzero critical path through the epochs.
	rep := analyze.FromEvents(rec.Snapshot())
	if rep.MaxCriticalPathNS <= 0 {
		t.Fatal("trace analysis found no critical path")
	}
	if len(rep.Epochs) == 0 {
		t.Fatal("trace analysis found no epochs")
	}
}
