package workload

import (
	"fmt"

	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/runtime"
)

// NodeWorkloads lists the workloads cmd/hpfnode can run: each is a
// deterministic program whose control flow depends only on its
// parameters, so every process of a multi-process job can execute
// RunNode in lockstep (the SPMD replicated-control contract).
func NodeWorkloads() []string { return []string{"jacobi", "cg", "edgesweep"} }

// NodeResult is one node workload run: the job-wide machine report
// and the final global values of the result array (plus the reduction
// scalar for cg). On a multi-process engine every process returns the
// identical result, which is what the hpfnode verification compares
// against a single-process reference run.
type NodeResult struct {
	Report machine.Report
	Data   []float64
	Sum    float64
}

// RunNode resets eng's counters and runs the named workload on it at
// problem size n with iters schedule replays.
func RunNode(eng engine.Engine, name string, n, iters int) (NodeResult, error) {
	eng.Reset()
	np := eng.NP()
	switch name {
	case "jacobi":
		return nodeJacobi(eng, n, np, iters)
	case "cg":
		return nodeCG(eng, n, np, iters)
	case "edgesweep":
		return nodeEdgeSweep(eng, n, np, iters)
	default:
		return NodeResult{}, fmt.Errorf("workload: unknown node workload %q (have %v)", name, NodeWorkloads())
	}
}

// nodeJacobi is the dense workload: the n×n row-blocked 5-point
// schedule replayed iters times (JacobiReplay), returning B's values.
func nodeJacobi(eng engine.Engine, n, np, iters int) (NodeResult, error) {
	am, err := BlockRowMapping(n, np)
	if err != nil {
		return NodeResult{}, err
	}
	bm, err := BlockRowMapping(n, np)
	if err != nil {
		return NodeResult{}, err
	}
	a, err := eng.NewArray("A", am)
	if err != nil {
		return NodeResult{}, err
	}
	b, err := eng.NewArray("B", bm)
	if err != nil {
		return NodeResult{}, err
	}
	a.Fill(func(t index.Tuple) float64 { return float64((t[0] * t[1]) % 97) })
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []engine.Term{
		engine.Read(a, 0.25, -1, 0),
		engine.Read(a, 0.25, 1, 0),
		engine.Read(a, 0.25, 0, -1),
		engine.Read(a, 0.25, 0, 1),
	}
	sched, err := b.NewSchedule(interior, terms)
	if err != nil {
		return NodeResult{}, err
	}
	if err := sched.ExecuteN(iters); err != nil {
		return NodeResult{}, err
	}
	return NodeResult{Report: eng.Stats(), Data: b.Data()}, nil
}

// nodeCG is the irregular workload: the sparse q = A·x gather (8n
// nonzeros) through the inspector–executor path, plus the CG-shaped
// sum reduction.
func nodeCG(eng engine.Engine, n, np, iters int) (NodeResult, error) {
	sys := SparseMatrix(n, 8*n, 23)
	xm, err := Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		return NodeResult{}, err
	}
	qm, err := Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		return NodeResult{}, err
	}
	c, err := NewSparseCG(eng, sys, xm, qm)
	if err != nil {
		return NodeResult{}, err
	}
	sched, err := c.NewSchedule()
	if err != nil {
		return NodeResult{}, err
	}
	if err := sched.ExecuteN(iters); err != nil {
		return NodeResult{}, err
	}
	sum, err := c.Q.Reduce(runtime.ReduceSum)
	if err != nil {
		return NodeResult{}, err
	}
	return NodeResult{Report: eng.Stats(), Data: c.Q.Data(), Sum: sum}, nil
}

// nodeEdgeSweep is the unstructured-mesh workload: the ring-plus-
// chords edge sweep with a pseudo-random INDIRECT accumulator
// partition.
func nodeEdgeSweep(eng engine.Engine, n, np, iters int) (NodeResult, error) {
	mesh := RingMesh(n, n/2, 29)
	valMap, err := Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		return NodeResult{}, err
	}
	accMap, err := PartitionMapping(n, np, 31)
	if err != nil {
		return NodeResult{}, err
	}
	val, err := eng.NewArray("VAL", valMap)
	if err != nil {
		return NodeResult{}, err
	}
	acc, err := eng.NewArray("ACC", accMap)
	if err != nil {
		return NodeResult{}, err
	}
	val.Fill(xFill)
	sched, err := acc.NewIrregular(val, mesh.Pattern())
	if err != nil {
		return NodeResult{}, err
	}
	if err := sched.ExecuteN(iters); err != nil {
		return NodeResult{}, err
	}
	return NodeResult{Report: eng.Stats(), Data: acc.Data()}, nil
}
