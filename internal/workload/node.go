package workload

import (
	"fmt"

	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/runtime"
)

// NodeWorkloads lists the workloads cmd/hpfnode can run: each is a
// deterministic program whose control flow depends only on its
// parameters, so every process of a multi-process job can execute
// RunNode in lockstep (the SPMD replicated-control contract).
func NodeWorkloads() []string { return []string{"jacobi", "heat", "cg", "edgesweep"} }

// NodeResult is one node workload run: the job-wide machine report
// and the final global values of the result array (plus the reduction
// scalar for cg). On a multi-process engine every process returns the
// identical result, which is what the hpfnode verification compares
// against a single-process reference run.
type NodeResult struct {
	Report machine.Report
	Data   []float64
	Sum    float64
}

// NodeJob is a prepared node workload, split so the elastic recovery
// driver can interleave epochs with checkpoints and replay from a
// rolled-back epoch: Arrays lists every distributed array of the job
// in deterministic (checkpoint) order, Step advances the computation
// by k iterations, and Finish computes the result collectives. The
// prologue that built the job (PrepareNode) is deterministic, so
// re-running it on a fresh engine and restoring a checkpoint into
// Arrays reproduces the exact mid-job state.
type NodeJob struct {
	Arrays []engine.Array
	Step   func(k int) error
	Finish func() (NodeResult, error)
}

// PrepareNode builds the named workload's arrays and schedule on eng
// (without resetting counters — the prologue's charges are part of
// the job, and a restore rolls them back to the checkpoint anyway).
func PrepareNode(eng engine.Engine, name string, n int) (*NodeJob, error) {
	np := eng.NP()
	switch name {
	case "jacobi":
		return nodeJacobi(eng, n, np)
	case "heat":
		return nodeHeat(eng, n, np)
	case "cg":
		return nodeCG(eng, n, np)
	case "edgesweep":
		return nodeEdgeSweep(eng, n, np)
	default:
		return nil, fmt.Errorf("workload: unknown node workload %q (have %v)", name, NodeWorkloads())
	}
}

// RunNode resets eng's counters and runs the named workload on it at
// problem size n with iters schedule replays.
func RunNode(eng engine.Engine, name string, n, iters int) (NodeResult, error) {
	eng.Reset()
	job, err := PrepareNode(eng, name, n)
	if err != nil {
		return NodeResult{}, err
	}
	if err := job.Step(iters); err != nil {
		return NodeResult{}, err
	}
	return job.Finish()
}

// nodeJacobi is the dense workload: the n×n row-blocked 5-point
// schedule replayed per step (JacobiReplay), returning B's values.
// B ← f(A) with A constant, so every iteration is idempotent.
func nodeJacobi(eng engine.Engine, n, np int) (*NodeJob, error) {
	am, err := BlockRowMapping(n, np)
	if err != nil {
		return nil, err
	}
	bm, err := BlockRowMapping(n, np)
	if err != nil {
		return nil, err
	}
	a, err := eng.NewArray("A", am)
	if err != nil {
		return nil, err
	}
	b, err := eng.NewArray("B", bm)
	if err != nil {
		return nil, err
	}
	a.Fill(func(t index.Tuple) float64 { return float64((t[0] * t[1]) % 97) })
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []engine.Term{
		engine.Read(a, 0.25, -1, 0),
		engine.Read(a, 0.25, 1, 0),
		engine.Read(a, 0.25, 0, -1),
		engine.Read(a, 0.25, 0, 1),
	}
	sched, err := b.NewSchedule(interior, terms)
	if err != nil {
		return nil, err
	}
	return &NodeJob{
		Arrays: []engine.Array{a, b},
		Step:   sched.ExecuteN,
		Finish: func() (NodeResult, error) {
			return NodeResult{Report: eng.Stats(), Data: b.Data()}, nil
		},
	}, nil
}

// nodeHeat is the stateful dense workload: the in-place 5-point
// update A ← 0.25·(A(±1,0) + A(0,±1)) on the interior. Unlike
// jacobi, every iteration reads the previous iteration's result, so
// the values at epoch k depend on the full history — exactly the
// workload that makes checkpoint/rollback correctness observable (a
// wrong restore yields wrong final values, not just wrong counters).
// Reading the lhs also defeats ghost coalescing, so every epoch
// really exchanges frames.
func nodeHeat(eng engine.Engine, n, np int) (*NodeJob, error) {
	am, err := BlockRowMapping(n, np)
	if err != nil {
		return nil, err
	}
	a, err := eng.NewArray("A", am)
	if err != nil {
		return nil, err
	}
	a.Fill(func(t index.Tuple) float64 { return float64((3*t[0] + 7*t[1]) % 101) })
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []engine.Term{
		engine.Read(a, 0.25, -1, 0),
		engine.Read(a, 0.25, 1, 0),
		engine.Read(a, 0.25, 0, -1),
		engine.Read(a, 0.25, 0, 1),
	}
	sched, err := a.NewSchedule(interior, terms)
	if err != nil {
		return nil, err
	}
	return &NodeJob{
		Arrays: []engine.Array{a},
		Step:   sched.ExecuteN,
		Finish: func() (NodeResult, error) {
			return NodeResult{Report: eng.Stats(), Data: a.Data()}, nil
		},
	}, nil
}

// nodeCG is the irregular workload: the sparse q = A·x gather (8n
// nonzeros) through the inspector–executor path, plus the CG-shaped
// sum reduction.
func nodeCG(eng engine.Engine, n, np int) (*NodeJob, error) {
	sys := SparseMatrix(n, 8*n, 23)
	xm, err := Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		return nil, err
	}
	qm, err := Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		return nil, err
	}
	c, err := NewSparseCG(eng, sys, xm, qm)
	if err != nil {
		return nil, err
	}
	sched, err := c.NewSchedule()
	if err != nil {
		return nil, err
	}
	return &NodeJob{
		Arrays: []engine.Array{c.X, c.Q},
		Step:   sched.ExecuteN,
		Finish: func() (NodeResult, error) {
			sum, err := c.Q.Reduce(runtime.ReduceSum)
			if err != nil {
				return NodeResult{}, err
			}
			return NodeResult{Report: eng.Stats(), Data: c.Q.Data(), Sum: sum}, nil
		},
	}, nil
}

// nodeEdgeSweep is the unstructured-mesh workload: the ring-plus-
// chords edge sweep with a pseudo-random INDIRECT accumulator
// partition.
func nodeEdgeSweep(eng engine.Engine, n, np int) (*NodeJob, error) {
	mesh := RingMesh(n, n/2, 29)
	valMap, err := Rank1Mapping(n, np, dist.Block{})
	if err != nil {
		return nil, err
	}
	accMap, err := PartitionMapping(n, np, 31)
	if err != nil {
		return nil, err
	}
	val, err := eng.NewArray("VAL", valMap)
	if err != nil {
		return nil, err
	}
	acc, err := eng.NewArray("ACC", accMap)
	if err != nil {
		return nil, err
	}
	val.Fill(xFill)
	sched, err := acc.NewIrregular(val, mesh.Pattern())
	if err != nil {
		return nil, err
	}
	return &NodeJob{
		Arrays: []engine.Array{val, acc},
		Step:   sched.ExecuteN,
		Finish: func() (NodeResult, error) {
			return NodeResult{Report: eng.Stats(), Data: acc.Data()}, nil
		},
	}, nil
}
