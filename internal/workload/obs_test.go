package workload

import (
	"os"
	gort "runtime"
	"testing"

	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
)

// TestObservabilityValuesUnchanged is the correctness half of the
// observability budget: with phase timers and the trace recorder
// both live, a workload must compute byte-identical values and an
// identical *logical* report — only Report.Phase may differ.
func TestObservabilityValuesUnchanged(t *testing.T) {
	run := func() NodeResult {
		t.Helper()
		eng, err := engine.New(engine.SPMD, 4, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		res, err := RunNode(eng, "heat", 32, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()

	obs.EnableTiming(true)
	rec := obs.StartTrace(0, 1<<12)
	observed := run()
	obs.StopTrace()
	obs.EnableTiming(false)

	if got, want := observed.Report.Logical(), plain.Report.Logical(); got != want {
		t.Errorf("instrumentation changed the logical report:\n observed %+v\n plain    %+v", got, want)
	}
	if observed.Report.Phase == (machine.PhaseSeconds{}) {
		t.Error("phase timers were on but Report.Phase is all-zero")
	}
	if plain.Report.Phase != (machine.PhaseSeconds{}) {
		t.Errorf("timers off but Report.Phase is nonzero: %+v", plain.Report.Phase)
	}
	if len(observed.Data) != len(plain.Data) {
		t.Fatalf("value vector length changed: %d vs %d", len(observed.Data), len(plain.Data))
	}
	for i := range plain.Data {
		if observed.Data[i] != plain.Data[i] {
			t.Fatalf("instrumentation changed value %d: %g vs %g", i, observed.Data[i], plain.Data[i])
		}
	}
	events := rec.Snapshot()
	if len(events) == 0 {
		t.Error("trace recorder captured no events from an observed run")
	}
}

// TestObservabilityOverhead is the wall-clock half of the budget: the
// 512² Jacobi replay with tracing and timers live must stay within 5%
// of the uninstrumented wall. Like the speedup gate it is opt-in
// (HPFNT_SPEEDUP=1), skipped under the race detector, and uses
// best-of-N walls to damp scheduler noise.
func TestObservabilityOverhead(t *testing.T) {
	if os.Getenv("HPFNT_SPEEDUP") == "" {
		t.Skip("wall-clock gate is opt-in: set HPFNT_SPEEDUP=1")
	}
	if engine.RaceEnabled {
		t.Skip("wall-clock assertion skipped under -race")
	}
	if gort.GOMAXPROCS(0) < 4 {
		t.Skipf("needs GOMAXPROCS>=4, have %d", gort.GOMAXPROCS(0))
	}
	const n, np, iters = 512, 8, 20
	plain := jacobiWall(t, engine.SPMD, n, np, iters)

	obs.EnableTiming(true)
	obs.StartTrace(0, 1<<14)
	traced := jacobiWall(t, engine.SPMD, n, np, iters)
	obs.StopTrace()
	obs.EnableTiming(false)

	overhead := float64(traced)/float64(plain) - 1
	t.Logf("512² Jacobi ×%d: plain %v, traced %v, overhead %.1f%%", iters, plain, traced, 100*overhead)
	if overhead > 0.05 {
		t.Fatalf("observability overhead %.1f%% exceeds the 5%% budget (plain %v, traced %v)", 100*overhead, plain, traced)
	}
}
