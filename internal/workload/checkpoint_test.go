package workload

import (
	"errors"
	"testing"

	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
)

// newEngine builds a fresh backend for the checkpoint tests.
func newEngine(t *testing.T, kind string, np int) engine.Engine {
	t.Helper()
	eng, err := engine.NewOn(kind, engine.InprocTransport, np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestCheckpointRestoreRoundtrip is the rollback-correctness test on
// both backends and every node workload: run k1 epochs, checkpoint,
// run k2 more; then rebuild from the checkpoint on a FRESH engine,
// replay the remaining k2 epochs, and demand values, reduction and
// machine report identical to the uninterrupted run. The heat
// workload is the load-bearing case: its values depend on the full
// epoch history, so a wrong restore shows up in the data, not just
// the counters.
func TestCheckpointRestoreRoundtrip(t *testing.T) {
	const n, np, k1, k2 = 24, 4, 3, 4
	for _, kind := range engine.Kinds() {
		for _, name := range NodeWorkloads() {
			t.Run(kind+"/"+name, func(t *testing.T) {
				dir := t.TempDir()

				// Uninterrupted reference run.
				ref, err := RunNode(newEngine(t, kind, np), name, n, k1+k2)
				if err != nil {
					t.Fatal(err)
				}

				// Interrupted run: checkpoint at epoch k1, then abandon
				// the engine mid-job (as a failure would).
				eng := newEngine(t, kind, np)
				eng.Reset()
				job, err := PrepareNode(eng, name, n)
				if err != nil {
					t.Fatal(err)
				}
				if err := job.Step(k1); err != nil {
					t.Fatal(err)
				}
				if err := eng.Checkpoint(dir, k1, job.Arrays); err != nil {
					t.Fatal(err)
				}

				// Recovery: fresh engine, deterministic prologue, restore,
				// replay the remaining epochs.
				eng2 := newEngine(t, kind, np)
				eng2.Reset()
				job2, err := PrepareNode(eng2, name, n)
				if err != nil {
					t.Fatal(err)
				}
				epoch, err := eng2.Restore(dir, job2.Arrays)
				if err != nil {
					t.Fatal(err)
				}
				if epoch != k1 {
					t.Fatalf("restored epoch %d, want %d", epoch, k1)
				}
				if err := job2.Step(k2); err != nil {
					t.Fatal(err)
				}
				got, err := job2.Finish()
				if err != nil {
					t.Fatal(err)
				}

				if got.Report != ref.Report {
					t.Fatalf("report after recovery differs:\n  recovered %+v\n  reference %+v", got.Report, ref.Report)
				}
				if got.Sum != ref.Sum {
					t.Fatalf("reduction after recovery: got %g, want %g", got.Sum, ref.Sum)
				}
				if len(got.Data) != len(ref.Data) {
					t.Fatalf("value vector length: got %d, want %d", len(got.Data), len(ref.Data))
				}
				for i := range ref.Data {
					if got.Data[i] != ref.Data[i] {
						t.Fatalf("value at offset %d: got %g, want %g", i, got.Data[i], ref.Data[i])
					}
				}
			})
		}
	}
}

// TestRestoreErrors pins the failure modes: no checkpoint published,
// and a checkpoint whose shape disagrees with the arrays.
func TestRestoreErrors(t *testing.T) {
	const n, np = 24, 4
	for _, kind := range engine.Kinds() {
		t.Run(kind, func(t *testing.T) {
			eng := newEngine(t, kind, np)
			job, err := PrepareNode(eng, "heat", n)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Restore(t.TempDir(), job.Arrays); !errors.Is(err, engine.ErrNoCheckpoint) {
				t.Fatalf("Restore from empty dir = %v, want ErrNoCheckpoint", err)
			}

			// Checkpoint heat (one array), then try restoring into
			// jacobi's two arrays: must be refused, not mangled.
			dir := t.TempDir()
			if err := job.Step(1); err != nil {
				t.Fatal(err)
			}
			if err := eng.Checkpoint(dir, 1, job.Arrays); err != nil {
				t.Fatal(err)
			}
			eng2 := newEngine(t, kind, np)
			other, err := PrepareNode(eng2, "jacobi", n)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng2.Restore(dir, other.Arrays); err == nil {
				t.Fatal("restore accepted a checkpoint with a different array shape")
			}
		})
	}
}
