package workload

import (
	"testing"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
)

func gridMappings(t *testing.T, n, r, c int) (StaggeredMappings, int) {
	t.Helper()
	np := r * c
	sys, err := proc.NewSystem(np)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sys.DeclareArray("G", index.Standard(1, r, 1, c))
	if err != nil {
		t.Fatal(err)
	}
	tg := proc.Whole(arr)
	udom, vdom, pdom := StaggeredDomains(n)
	mk := func(dom index.Domain) core.ElementMapping {
		d, err := dist.New(dom, []dist.Format{dist.BlockVienna{}, dist.BlockVienna{}}, tg)
		if err != nil {
			t.Fatal(err)
		}
		return core.DistMapping{D: d}
	}
	return StaggeredMappings{U: mk(udom), V: mk(vdom), P: mk(pdom)}, np
}

func TestStaggeredDomains(t *testing.T) {
	u, v, p := StaggeredDomains(8)
	if u.Lower(0) != 0 || u.Upper(0) != 8 || u.Lower(1) != 1 {
		t.Fatalf("U = %s", u)
	}
	if v.Lower(1) != 0 || v.Upper(1) != 8 {
		t.Fatalf("V = %s", v)
	}
	if p.Size() != 64 {
		t.Fatalf("P = %s", p)
	}
}

func TestStaggeredSweepRuns(t *testing.T) {
	maps, np := gridMappings(t, 16, 2, 2)
	rep, err := StaggeredSweep(16, np, maps, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	// Four references per P element.
	if got := rep.LocalRefs + rep.RemoteRefs; got != 4*16*16 {
		t.Fatalf("total refs = %d, want %d", got, 4*16*16)
	}
	// Block mapping: only boundary traffic, well under 20%.
	if rep.RemoteFraction > 0.2 {
		t.Fatalf("remote fraction %f too high for block mapping", rep.RemoteFraction)
	}
}

func TestStaggeredVerify(t *testing.T) {
	maps, np := gridMappings(t, 12, 2, 2)
	ok, err := StaggeredVerify(12, np, maps)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("distributed result differs from sequential reference")
	}
}

func TestJacobiSweep(t *testing.T) {
	sys, _ := proc.NewSystem(4)
	arr, _ := sys.DeclareArray("P", index.Standard(1, 4))
	dom := index.Standard(1, 32, 1, 32)
	d, err := dist.New(dom, []dist.Format{dist.Block{}, dist.Collapsed{}}, proc.Whole(arr))
	if err != nil {
		t.Fatal(err)
	}
	m := core.DistMapping{D: d}
	rep, err := JacobiSweep(32, 4, m, m, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLoad != 4*30*30 {
		t.Fatalf("load = %d", rep.TotalLoad)
	}
	// Row-blocked Jacobi: 2 boundary rows per interior cut, 3 cuts,
	// 30 interior columns each, both directions.
	if rep.ElementsMoved != int64(3*2*30) {
		t.Fatalf("elements moved = %d, want %d", rep.ElementsMoved, 3*2*30)
	}
}

func TestTriangularWeights(t *testing.T) {
	w := TriangularWeights(5)
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if w[i] != want {
			t.Fatalf("w = %v", w)
		}
	}
}

func TestLUSweepTotalsIndependentOfFormat(t *testing.T) {
	// Total work is mapping-independent; only max load changes.
	a, err := LUSweep(256, 8, dist.Block{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LUSweep(256, 8, dist.Cyclic{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalLoad != b.TotalLoad {
		t.Fatalf("total load differs: %d vs %d", a.TotalLoad, b.TotalLoad)
	}
	if b.Imbalance >= a.Imbalance {
		t.Fatalf("cyclic (%f) must beat block (%f)", b.Imbalance, a.Imbalance)
	}
	// Exact total: sum over k of (n-k)*(n-k).
	var want int64
	n := int64(256)
	for k := int64(1); k < n; k++ {
		want += (n - k) * (n - k)
	}
	if a.TotalLoad != want {
		t.Fatalf("total = %d, want %d", a.TotalLoad, want)
	}
}

func TestLUSweepValidation(t *testing.T) {
	if _, err := LUSweep(16, 4, dist.Cyclic{K: 0}); err == nil {
		t.Fatal("invalid format must fail")
	}
}

func TestRowSweepLoad(t *testing.T) {
	m, _ := machine.New(4, machine.DefaultCost())
	w := TriangularWeights(16)
	if err := RowSweepLoad(m, dist.Block{}, w, 4); err != nil {
		t.Fatal(err)
	}
	r := m.Stats()
	if r.TotalLoad != 16*17/2 {
		t.Fatalf("total = %d", r.TotalLoad)
	}
	// BLOCK on triangular weights: last block heaviest.
	loads := m.PerProcessorLoad()
	if loads[4] <= loads[1] {
		t.Fatalf("expected increasing loads, got %v", loads[1:])
	}
}

// TestLUSweepClosedForm differentially tests the O(runs) closed-form
// LU load sums against a naive per-step, per-row oracle.
func TestLUSweepClosedForm(t *testing.T) {
	naive := func(n, np int, f dist.Format) []int64 {
		load := make([]int64, np+1)
		for k := 1; k < n; k++ {
			for i := k + 1; i <= n; i++ {
				load[f.Map(i, n, np)] += int64(n - k)
			}
		}
		return load
	}
	owner := make([]int, 37)
	for i := range owner {
		owner[i] = (i*5)%4 + 1
	}
	ind, err := dist.NewIndirect(owner)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		n, np int
		f     dist.Format
	}{
		{37, 4, dist.Block{}},
		{37, 4, dist.BlockVienna{}},
		{37, 4, dist.Cyclic{K: 1}},
		{37, 4, dist.Cyclic{K: 5}},
		{37, 4, dist.GeneralBlock{Bounds: []int{10, 10, 30}}},
		{37, 4, ind},
		{1, 3, dist.Block{}},
		{64, 8, dist.Cyclic{K: 2}},
	}
	for _, c := range cases {
		rep, err := LUSweep(c.n, c.np, c.f)
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		load := naive(c.n, c.np, c.f)
		var max, total int64
		for p := 1; p <= c.np; p++ {
			total += load[p]
			if load[p] > max {
				max = load[p]
			}
		}
		if rep.MaxLoad != max || rep.TotalLoad != total {
			t.Fatalf("%s n=%d np=%d: closed form (max %d, total %d), oracle (max %d, total %d)",
				c.f, c.n, c.np, rep.MaxLoad, rep.TotalLoad, max, total)
		}
	}
}

// TestRowSweepLoadRuns checks the per-run load aggregation against
// per-row accumulation, including the per-row integer truncation.
func TestRowSweepLoadRuns(t *testing.T) {
	n, np := 41, 4
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i)*0.75 + 0.5 // fractional: truncation matters
	}
	for _, f := range []dist.Format{dist.Block{}, dist.Cyclic{K: 3}, dist.GeneralBlock{Bounds: []int{8, 20, 22}}} {
		m1, err := machine.New(np, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		if err := RowSweepLoad(m1, f, w, np); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		m2, err := machine.New(np, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			m2.AddLoad(f.Map(i, n, np), int(w[i-1]))
		}
		s1, s2 := m1.Stats(), m2.Stats()
		if s1.MaxLoad != s2.MaxLoad || s1.TotalLoad != s2.TotalLoad {
			t.Fatalf("%s: run loads (max %d, total %d) != per-row (max %d, total %d)",
				f, s1.MaxLoad, s1.TotalLoad, s2.MaxLoad, s2.TotalLoad)
		}
	}
}
