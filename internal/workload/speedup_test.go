package workload

import (
	"os"
	gort "runtime"
	"testing"
	"time"

	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
)

// jacobiWall times iters replays of the 512² row-blocked Jacobi
// schedule on one backend and returns the wall-clock duration
// (best of two runs, to damp scheduler noise).
func jacobiWall(t *testing.T, kind string, n, np, iters int) time.Duration {
	t.Helper()
	best := time.Duration(0)
	for attempt := 0; attempt < 2; attempt++ {
		eng, err := engine.New(kind, np, machine.DefaultCost())
		if err != nil {
			t.Fatal(err)
		}
		am, err := BlockRowMapping(n, np)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := BlockRowMapping(n, np)
		if err != nil {
			t.Fatal(err)
		}
		// Warm up (build arrays, compile the schedule, spawn workers).
		if _, err := JacobiReplay(eng, n, 1, am, bm); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := JacobiReplay(eng, n, iters, am, bm); err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		eng.Close()
		if attempt == 0 || d < best {
			best = d
		}
	}
	return best
}

// TestSpmdSpeedupJacobi is the parallel-speedup smoke of the
// acceptance criteria: on the 512² Jacobi schedule replay with 8
// workers, the spmd engine must beat the sequential runtime by at
// least 1.5× wall-clock. Wall-clock ratios are meaningless on
// contended or instrumented runs, so the gate is opt-in: it runs only
// with HPFNT_SPEEDUP=1 (the dedicated CI step and `make speedup` set
// it), never under the race detector, and needs at least 4 cores.
func TestSpmdSpeedupJacobi(t *testing.T) {
	if os.Getenv("HPFNT_SPEEDUP") == "" {
		t.Skip("wall-clock gate is opt-in: set HPFNT_SPEEDUP=1")
	}
	if engine.RaceEnabled {
		t.Skip("wall-clock assertion skipped under -race")
	}
	if gort.GOMAXPROCS(0) < 4 {
		t.Skipf("needs GOMAXPROCS>=4, have %d", gort.GOMAXPROCS(0))
	}
	const n, np, iters = 512, 8, 20
	seq := jacobiWall(t, engine.Sim, n, np, iters)
	par := jacobiWall(t, engine.SPMD, n, np, iters)
	speedup := float64(seq) / float64(par)
	t.Logf("512² Jacobi ×%d: sim %v, spmd %v, speedup %.2fx", iters, seq, par, speedup)
	if speedup < 1.5 {
		t.Fatalf("spmd speedup %.2fx < 1.5x (sim %v, spmd %v)", speedup, seq, par)
	}
}
