// Package workload provides the workload generators used by the
// experiments: the staggered-grid update of §8.1.1, a 5-point Jacobi
// relaxation, irregular (triangular) per-row weights for the
// load-balancing experiments, and an LU-style shrinking active set
// for the cyclic-distribution experiment.
//
// The executing sweeps run on the process-default execution backend
// (package engine): the sequential simulator unless HPFNT_ENGINE (or
// hpfbench's -engine flag) selects the parallel spmd engine. Both
// backends produce identical values and statistics, so every
// experiment's claim checks hold on either.
package workload

import (
	"fmt"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
	"hpfnt/internal/runtime"
)

// StaggeredMappings holds element mappings for the three staggered
// arrays of §8.1.1: U(0:N,1:N), V(1:N,0:N) and P(1:N,1:N).
type StaggeredMappings struct {
	U, V, P core.ElementMapping
}

// StaggeredDomains returns the §8.1.1 declarations
// REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N).
func StaggeredDomains(n int) (u, v, p index.Domain) {
	u = index.Standard(0, n, 1, n)
	v = index.Standard(1, n, 0, n)
	p = index.Standard(1, n, 1, n)
	return u, v, p
}

// StaggeredSweep executes the paper's statement
//
//	P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)
//
// once over distributed arrays built from the given mappings, on a
// machine with np processors and the given cost model, and returns
// the communication/load report. Each reference is a shifted read:
// P(i,j) reads U(i-1,j), U(i,j), V(i,j-1) and V(i,j).
func StaggeredSweep(n, np int, maps StaggeredMappings, cost machine.CostModel) (machine.Report, error) {
	eng, err := engine.NewDefault(np, cost)
	if err != nil {
		return machine.Report{}, err
	}
	defer eng.Close()
	ua, err := eng.NewArray("U", maps.U)
	if err != nil {
		return machine.Report{}, err
	}
	va, err := eng.NewArray("V", maps.V)
	if err != nil {
		return machine.Report{}, err
	}
	pa, err := eng.NewArray("P", maps.P)
	if err != nil {
		return machine.Report{}, err
	}
	ua.Fill(func(t index.Tuple) float64 { return float64(t[0] + 2*t[1]) })
	va.Fill(func(t index.Tuple) float64 { return float64(3*t[0] - t[1]) })
	terms := []engine.Term{
		engine.Read(ua, 1, -1, 0),
		engine.Read(ua, 1, 0, 0),
		engine.Read(va, 1, 0, -1),
		engine.Read(va, 1, 0, 0),
	}
	if err := pa.Assign(pa.Domain(), terms); err != nil {
		return machine.Report{}, err
	}
	return eng.Stats(), nil
}

// StaggeredVerify runs the sweep both distributed and sequentially
// and reports whether the values agree (the distributed executor must
// not change program semantics regardless of mapping).
func StaggeredVerify(n, np int, maps StaggeredMappings) (bool, error) {
	udom, vdom, pdom := StaggeredDomains(n)
	eng, err := engine.NewDefault(np, machine.DefaultCost())
	if err != nil {
		return false, err
	}
	defer eng.Close()
	ua, err := eng.NewArray("U", maps.U)
	if err != nil {
		return false, err
	}
	va, err := eng.NewArray("V", maps.V)
	if err != nil {
		return false, err
	}
	pa, err := eng.NewArray("P", maps.P)
	if err != nil {
		return false, err
	}
	fill1 := func(t index.Tuple) float64 { return float64(t[0]*7 + t[1]) }
	fill2 := func(t index.Tuple) float64 { return float64(t[0] - 5*t[1]) }
	ua.Fill(fill1)
	va.Fill(fill2)
	if err := pa.Assign(pa.Domain(), []engine.Term{
		engine.Read(ua, 1, -1, 0), engine.Read(ua, 1, 0, 0),
		engine.Read(va, 1, 0, -1), engine.Read(va, 1, 0, 0),
	}); err != nil {
		return false, err
	}
	us, vs, ps := runtime.NewSeqArray(udom), runtime.NewSeqArray(vdom), runtime.NewSeqArray(pdom)
	us.Fill(fill1)
	vs.Fill(fill2)
	if err := runtime.SeqShiftAssign(ps, ps.Dom, []runtime.SeqTerm{
		{Src: us, Shift: []int{-1, 0}, Coeff: 1}, {Src: us, Shift: []int{0, 0}, Coeff: 1},
		{Src: vs, Shift: []int{0, -1}, Coeff: 1}, {Src: vs, Shift: []int{0, 0}, Coeff: 1},
	}); err != nil {
		return false, err
	}
	pd, sd := pa.Data(), ps.Data()
	for i := range pd {
		if pd[i] != sd[i] {
			return false, nil
		}
	}
	return true, nil
}

// JacobiSweep runs one 5-point Jacobi relaxation
// B(2:N-1,2:N-1) = 0.25*(A(1:N-2,:)+A(3:N,:)+A(:,1:N-2)+A(:,3:N))
// over arrays with the given mappings and returns the report.
func JacobiSweep(n, np int, a, b core.ElementMapping, cost machine.CostModel) (machine.Report, error) {
	eng, err := engine.NewDefault(np, cost)
	if err != nil {
		return machine.Report{}, err
	}
	defer eng.Close()
	rep, err := jacobiOn(eng, n, 1, a, b)
	if err != nil {
		return machine.Report{}, err
	}
	return rep, nil
}

// jacobiOn builds the 5-point interior schedule on eng and replays it
// iters times.
func jacobiOn(eng engine.Engine, n, iters int, a, b core.ElementMapping) (machine.Report, error) {
	aa, err := eng.NewArray("A", a)
	if err != nil {
		return machine.Report{}, err
	}
	ba, err := eng.NewArray("B", b)
	if err != nil {
		return machine.Report{}, err
	}
	aa.Fill(func(t index.Tuple) float64 { return float64((t[0] * t[1]) % 97) })
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []engine.Term{
		engine.Read(aa, 0.25, -1, 0),
		engine.Read(aa, 0.25, 1, 0),
		engine.Read(aa, 0.25, 0, -1),
		engine.Read(aa, 0.25, 0, 1),
	}
	sched, err := ba.NewSchedule(interior, terms)
	if err != nil {
		return machine.Report{}, err
	}
	if err := sched.ExecuteN(iters); err != nil {
		return machine.Report{}, err
	}
	return eng.Stats(), nil
}

// JacobiReplay builds the n×n 5-point schedule once on eng and
// replays it iters times — the schedule-replay workload behind the
// parallel-speedup benchmarks. The report reflects all iterations.
func JacobiReplay(eng engine.Engine, n, iters int, a, b core.ElementMapping) (machine.Report, error) {
	return jacobiOn(eng, n, iters, a, b)
}

// BlockRowMapping returns the (BLOCK,:) mapping of an n×n array over
// np processors — the canonical row-blocked Jacobi layout used by the
// speedup benchmarks.
func BlockRowMapping(n, np int) (core.ElementMapping, error) {
	sys, err := proc.NewSystem(np)
	if err != nil {
		return nil, err
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, np))
	if err != nil {
		return nil, err
	}
	d, err := dist.New(index.Standard(1, n, 1, n), []dist.Format{dist.Block{}, dist.Collapsed{}}, proc.Whole(arr))
	if err != nil {
		return nil, err
	}
	return core.DistMapping{D: d}, nil
}

// TriangularWeights returns w(i) = i for i in 1..n — the canonical
// irregular workload (e.g. a triangular loop nest) motivating
// GENERAL_BLOCK.
func TriangularWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i + 1)
	}
	return w
}

// LUReport summarizes the LU-style experiment for one rank-1 format.
type LUReport struct {
	Format    string
	MaxLoad   int64
	TotalLoad int64
	Imbalance float64
}

// LUSweep simulates the load of an LU-factorization-like computation
// over an n×n matrix distributed by rows with the given rank-1
// format over np processors: at step k, the owner of each active row
// i in (k, n] performs n-k units of work. BLOCK distributions idle
// the processors owning early rows as the active set shrinks; CYCLIC
// keeps all processors busy (§4.1.3's motivation).
//
// Row i accumulates Σ_{k=1}^{i-1} (n-k) = (i-1)n − i(i-1)/2 units
// over the whole factorization, so each ownership run [lo, hi]
// contributes a closed-form polynomial sum and the sweep is O(runs)
// — no per-row or per-step enumeration (INDIRECT aside, whose run
// computation walks its owner vector once).
func LUSweep(n, np int, f dist.Format) (LUReport, error) {
	if err := f.Validate(n, np); err != nil {
		return LUReport{}, err
	}
	load := make([]int64, np+1)
	for _, r := range dist.Runs(f, 1, n, n, np) {
		load[r.Proc] += luRunLoad(int64(n), int64(r.Lo), int64(r.Hi))
	}
	var max, total int64
	for p := 1; p <= np; p++ {
		total += load[p]
		if load[p] > max {
			max = load[p]
		}
	}
	imb := 0.0
	if total > 0 {
		imb = float64(max) / (float64(total) / float64(np))
	}
	return LUReport{Format: f.String(), MaxLoad: max, TotalLoad: total, Imbalance: imb}, nil
}

// luRunLoad is Σ_{i=lo..hi} (i-1)n − i(i-1)/2, via the closed forms
// for Σi and Σi² over the interval.
func luRunLoad(n, lo, hi int64) int64 {
	cnt := hi - lo + 1
	s1 := (lo + hi) * cnt / 2
	s2 := hi*(hi+1)*(2*hi+1)/6 - (lo-1)*lo*(2*lo-1)/6
	return n*(s1-cnt) - (s2-s1)/2
}

// RowSweepLoad computes, for a rank-1 row mapping and per-row weights
// w, the per-processor load vector on a machine of np processors.
// Loads are charged per ownership run through a prefix sum over the
// (truncated) weights — one AddLoad per run instead of one Map and
// AddLoad per row.
func RowSweepLoad(m *machine.Machine, f dist.Format, w []float64, np int) error {
	n := len(w)
	if err := f.Validate(n, np); err != nil {
		return err
	}
	// prefix[i] = Σ_{j<=i} int(w[j-1]), matching the per-row integer
	// truncation of the element-wise formulation.
	prefix := make([]int, n+1)
	for i := 1; i <= n; i++ {
		prefix[i] = prefix[i-1] + int(w[i-1])
	}
	for _, r := range dist.Runs(f, 1, n, n, np) {
		if r.Proc < 1 || r.Proc > np {
			return fmt.Errorf("workload: format mapped rows %d:%d to processor %d of %d", r.Lo, r.Hi, r.Proc, np)
		}
		m.AddLoad(r.Proc, prefix[r.Hi]-prefix[r.Lo-1])
	}
	return nil
}
