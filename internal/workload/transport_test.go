package workload

import (
	"testing"

	"hpfnt/internal/engine"
	"hpfnt/internal/machine"
)

// TestTransportEquivalence is the transport differential: every node
// workload — dense Jacobi, the irregular sparse-CG gather (with its
// reduction) and the irregular edge sweep — must produce identical
// values, reduction results and machine.Report on the spmd engine
// whether the wire is the inproc channels or real tcp sockets, and
// both must match the sequential oracle.
func TestTransportEquivalence(t *testing.T) {
	const n, np, iters = 48, 6, 3
	for _, name := range NodeWorkloads() {
		t.Run(name, func(t *testing.T) {
			runOn := func(kind, tkind string) NodeResult {
				t.Helper()
				eng, err := engine.NewOn(kind, tkind, np, machine.DefaultCost())
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				res, err := RunNode(eng, name, n, iters)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := runOn(engine.Sim, engine.InprocTransport)
			for _, tkind := range engine.Transports() {
				got := runOn(engine.SPMD, tkind)
				if got.Report != want.Report {
					t.Errorf("%s report:\n got  %+v\n want %+v", tkind, got.Report, want.Report)
				}
				if got.Sum != want.Sum {
					t.Errorf("%s reduction: got %g, want %g", tkind, got.Sum, want.Sum)
				}
				if len(got.Data) != len(want.Data) {
					t.Fatalf("%s data length: got %d, want %d", tkind, len(got.Data), len(want.Data))
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Errorf("%s value mismatch at %d: got %g, want %g", tkind, i, got.Data[i], want.Data[i])
						break
					}
				}
			}
		})
	}
}
