package workload

// The irregular workloads: a sparse matrix–vector product (the kernel
// of a conjugate-gradient step) and an unstructured-mesh edge sweep.
// Both access a distributed vector through indirection arrays —
// subscripts that are themselves data — so their communication sets
// cannot be derived in closed form; they compile through the
// inspector–executor subsystem (package inspector) instead of the
// run-length shift analysis, and their per-iteration cost drops to
// pure gather/compute once the schedule is built (see
// BenchmarkIrregularReplayFirst/Steady and TestIrregularAmortization).

import (
	"fmt"
	"time"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/engine"
	"hpfnt/internal/index"
	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
	"hpfnt/internal/runtime"
)

// Rank1Mapping returns the mapping of a 1-D array 1:n distributed by
// format f over np processors.
func Rank1Mapping(n, np int, f dist.Format) (core.ElementMapping, error) {
	sys, err := proc.NewSystem(np)
	if err != nil {
		return nil, err
	}
	arr, err := sys.DeclareArray("P", index.Standard(1, np))
	if err != nil {
		return nil, err
	}
	d, err := dist.New(index.Standard(1, n), []dist.Format{f}, proc.Whole(arr))
	if err != nil {
		return nil, err
	}
	return core.DistMapping{D: d}, nil
}

// PartitionMapping returns an INDIRECT rank-1 mapping of 1:n from a
// synthetic partitioner: contiguous chunks of pseudo-random width are
// dealt to the processors round-robin, the shape a mesh partitioner's
// owner vector typically has (long runs, irregular boundaries).
func PartitionMapping(n, np int, seed uint64) (core.ElementMapping, error) {
	owner := make([]int, n)
	x := seed*2654435761 + 1
	p, left := 1, 0
	for i := range owner {
		if left == 0 {
			x = x*6364136223846793005 + 1442695040888963407
			left = int(x>>33)%(n/(2*np)+2) + 1
			p = p%np + 1
		}
		owner[i] = p
		left--
	}
	f, err := dist.NewIndirect(owner)
	if err != nil {
		return nil, err
	}
	return Rank1Mapping(n, np, f)
}

// SparseSystem is a synthetic sparse n×n matrix in flattened
// coordinate form: entry k has value Vals[k] at (Rows[k]+1,
// Cols[k]+1) (0-based offsets, matching the inspector's pattern
// encoding directly).
type SparseSystem struct {
	N    int
	Rows []int32
	Cols []int32
	Vals []float64
}

// SparseMatrix generates a deterministic sparse n×n system with
// exactly nnz entries: the full diagonal (every row is written), a
// near-diagonal band, and pseudo-random long-range entries — the
// structure of an unstructured-grid operator, with enough long-range
// coupling to force halo traffic under any block distribution.
// nnz must be at least n.
func SparseMatrix(n, nnz int, seed uint64) SparseSystem {
	if nnz < n {
		nnz = n
	}
	s := SparseSystem{
		N:    n,
		Rows: make([]int32, 0, nnz),
		Cols: make([]int32, 0, nnz),
		Vals: make([]float64, 0, nnz),
	}
	for i := 0; i < n; i++ {
		s.Rows = append(s.Rows, int32(i))
		s.Cols = append(s.Cols, int32(i))
		s.Vals = append(s.Vals, 4)
	}
	x := seed*1013904223 + 12345
	for k := n; k < nnz; k++ {
		x = x*6364136223846793005 + 1442695040888963407
		i := int(x>>33) % n
		var j int
		if k%4 != 0 {
			// Band entry: a near neighbour.
			j = (i + int(x>>17)%7 - 3 + n) % n
		} else {
			// Long-range entry.
			j = int(x>>45) % n
		}
		s.Rows = append(s.Rows, int32(i))
		s.Cols = append(s.Cols, int32(j))
		s.Vals = append(s.Vals, float64(int(x>>29)%9)-4)
	}
	return s
}

// Pattern returns the system's inspector pattern: access k
// accumulates Vals[k]·x(Cols[k]) into q(Rows[k]) — exactly
// q = A·x in flattened form, the matrix values serving as the
// schedule's coefficients.
func (s SparseSystem) Pattern() inspector.Pattern {
	return inspector.Pattern{Writes: s.Rows, Reads: s.Cols, Coeffs: s.Vals}
}

// SeqMatVec computes q = A·x sequentially over dense vectors — the
// reference semantics the distributed execution must reproduce.
func (s SparseSystem) SeqMatVec(x []float64) []float64 {
	q := make([]float64, s.N)
	for k := range s.Rows {
		q[s.Rows[k]] += s.Vals[k] * x[s.Cols[k]]
	}
	return q
}

// SparseCG holds the distributed state of the CG matrix–vector
// kernel: the vectors x and q and the flattened matrix pattern. The
// schedule is built separately (NewSchedule) so callers can measure
// the inspector cost against steady-state replay.
type SparseCG struct {
	Sys  SparseSystem
	X, Q engine.Array
}

// xFill is the deterministic initial vector of the CG workloads.
func xFill(t index.Tuple) float64 { return float64(t[0]%13) - 3 }

// NewSparseCG materializes x and q with the given mappings on eng and
// fills x deterministically.
func NewSparseCG(eng engine.Engine, sys SparseSystem, xm, qm core.ElementMapping) (*SparseCG, error) {
	x, err := eng.NewArray("X", xm)
	if err != nil {
		return nil, err
	}
	q, err := eng.NewArray("Q", qm)
	if err != nil {
		return nil, err
	}
	x.Fill(xFill)
	return &SparseCG{Sys: sys, X: x, Q: q}, nil
}

// NewSchedule runs the inspector over the matrix pattern: the
// first-iteration cost every subsequent replay amortizes.
func (c *SparseCG) NewSchedule() (engine.Schedule, error) {
	return c.Q.NewIrregular(c.X, c.Sys.Pattern())
}

// SparseCGStep builds the q = A·x schedule once, replays it iters
// times, reduces q (the dot-product-shaped scalar of a CG step), and
// returns the report plus the reduction value.
func SparseCGStep(eng engine.Engine, sys SparseSystem, iters int, xm, qm core.ElementMapping) (machine.Report, float64, error) {
	c, err := NewSparseCG(eng, sys, xm, qm)
	if err != nil {
		return machine.Report{}, 0, err
	}
	sched, err := c.NewSchedule()
	if err != nil {
		return machine.Report{}, 0, err
	}
	if err := sched.ExecuteN(iters); err != nil {
		return machine.Report{}, 0, err
	}
	sum, err := c.Q.Reduce(runtime.ReduceSum)
	if err != nil {
		return machine.Report{}, 0, err
	}
	return eng.Stats(), sum, nil
}

// Mesh is a synthetic unstructured mesh: nodes 1..N and undirected
// edges (U[k]+1, V[k]+1) in 0-based offset form.
type Mesh struct {
	N    int
	U, V []int32
}

// RingMesh builds a deterministic mesh: the n-cycle (every node has
// two neighbours) plus `chords` pseudo-random long chords, the
// long-range connectivity that makes the sweep's communication
// irregular.
func RingMesh(n, chords int, seed uint64) Mesh {
	m := Mesh{N: n}
	for i := 0; i < n; i++ {
		m.U = append(m.U, int32(i))
		m.V = append(m.V, int32((i+1)%n))
	}
	x := seed*22695477 + 1
	for c := 0; c < chords; c++ {
		x = x*6364136223846793005 + 1442695040888963407
		u := int(x>>33) % n
		v := int(x>>13) % n
		if u == v {
			v = (v + n/2) % n
		}
		m.U = append(m.U, int32(u))
		m.V = append(m.V, int32(v))
	}
	return m
}

// Pattern returns the edge sweep's inspector pattern: each edge
// (u, v) contributes acc(u) += val(v) and acc(v) += val(u) — the
// canonical gather over an unstructured mesh.
func (m Mesh) Pattern() inspector.Pattern {
	writes := make([]int32, 0, 2*len(m.U))
	reads := make([]int32, 0, 2*len(m.U))
	for k := range m.U {
		writes = append(writes, m.U[k], m.V[k])
		reads = append(reads, m.V[k], m.U[k])
	}
	return inspector.Pattern{Writes: writes, Reads: reads}
}

// SeqSweep computes the edge sweep sequentially over a dense vector.
func (m Mesh) SeqSweep(val []float64) []float64 {
	acc := make([]float64, m.N)
	for k := range m.U {
		acc[m.U[k]] += val[m.V[k]]
		acc[m.V[k]] += val[m.U[k]]
	}
	return acc
}

// EdgeSweep materializes val and acc with the given mappings, builds
// the edge-sweep schedule once, replays it iters times, and returns
// the report.
func EdgeSweep(eng engine.Engine, m Mesh, iters int, valMap, accMap core.ElementMapping) (machine.Report, error) {
	val, err := eng.NewArray("VAL", valMap)
	if err != nil {
		return machine.Report{}, err
	}
	acc, err := eng.NewArray("ACC", accMap)
	if err != nil {
		return machine.Report{}, err
	}
	val.Fill(xFill)
	sched, err := acc.NewIrregular(val, m.Pattern())
	if err != nil {
		return machine.Report{}, err
	}
	if err := sched.ExecuteN(iters); err != nil {
		return machine.Report{}, err
	}
	return eng.Stats(), nil
}

// timeIt runs f and returns its wall-clock in milliseconds; a
// failure lands in *errp and returns 0.
func timeIt(f func() error, errp *error) float64 {
	start := time.Now()
	if e := f(); e != nil {
		*errp = e
		return 0
	}
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

// IrregularAmortization measures schedule reuse on one backend: the
// wall-clock (milliseconds) of `first` = inspector + one execution
// versus the steady-state per-iteration cost over iters replays of
// the compiled schedule. Used by hpfbench -irregular and the
// amortization gate.
func IrregularAmortization(kind string, sys SparseSystem, np, iters int) (first, steady float64, err error) {
	eng, err := engine.New(kind, np, machine.DefaultCost())
	if err != nil {
		return 0, 0, err
	}
	defer eng.Close()
	xm, err := Rank1Mapping(sys.N, np, dist.Block{})
	if err != nil {
		return 0, 0, err
	}
	qm, err := Rank1Mapping(sys.N, np, dist.Block{})
	if err != nil {
		return 0, 0, err
	}
	c, err := NewSparseCG(eng, sys, xm, qm)
	if err != nil {
		return 0, 0, err
	}
	if iters < 1 {
		return 0, 0, fmt.Errorf("workload: amortization needs iters >= 1, got %d", iters)
	}
	// Warm-up epoch so worker spawn cost lands on neither side.
	if s, err := c.NewSchedule(); err != nil {
		return 0, 0, err
	} else if err := s.Execute(); err != nil {
		return 0, 0, err
	}
	first = timeIt(func() error {
		s, err := c.NewSchedule()
		if err != nil {
			return err
		}
		return s.Execute()
	}, &err)
	if err != nil {
		return 0, 0, err
	}
	sched, err := c.NewSchedule()
	if err != nil {
		return 0, 0, err
	}
	steady = timeIt(func() error { return sched.ExecuteN(iters) }, &err) / float64(iters)
	if err != nil {
		return 0, 0, err
	}
	return first, steady, nil
}
