package index

import (
	"testing"
	"testing/quick"
)

func TestTripletCount(t *testing.T) {
	cases := []struct {
		tr   Triplet
		want int
	}{
		{Unit(1, 10), 10},
		{Unit(0, 0), 1},
		{Unit(5, 4), 0},
		{Triplet{1, 10, 2}, 5},
		{Triplet{1, 9, 2}, 5},
		{Triplet{2, 996, 2}, 498},
		{Triplet{10, 1, -1}, 10},
		{Triplet{10, 1, -3}, 4},
		{Triplet{1, 10, -1}, 0},
		{Triplet{0, 0, 0}, 0},
	}
	for _, c := range cases {
		if got := c.tr.Count(); got != c.want {
			t.Errorf("%v.Count() = %d, want %d", c.tr, got, c.want)
		}
	}
}

func TestTripletContainsPosition(t *testing.T) {
	tr := Triplet{2, 996, 2}
	if !tr.Contains(2) || !tr.Contains(996) || !tr.Contains(500) {
		t.Errorf("expected 2, 500, 996 in %v", tr)
	}
	if tr.Contains(3) || tr.Contains(997) || tr.Contains(0) {
		t.Errorf("unexpected membership in %v", tr)
	}
	p, ok := tr.Position(6)
	if !ok || p != 2 {
		t.Errorf("Position(6) = %d,%v want 2,true", p, ok)
	}
	if _, ok := tr.Position(7); ok {
		t.Errorf("Position(7) should fail")
	}
	// Negative stride.
	dn := Triplet{10, 1, -3} // 10,7,4,1
	for k, v := range []int{10, 7, 4, 1} {
		p, ok := dn.Position(v)
		if !ok || p != k {
			t.Errorf("Position(%d) = %d,%v want %d,true", v, p, ok, k)
		}
	}
}

func TestTripletAtLast(t *testing.T) {
	tr := Triplet{3, 11, 4} // 3,7,11
	if tr.At(0) != 3 || tr.At(2) != 11 {
		t.Errorf("At wrong: %d %d", tr.At(0), tr.At(2))
	}
	if tr.Last() != 11 {
		t.Errorf("Last = %d, want 11", tr.Last())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Last of empty triplet should panic")
		}
	}()
	Unit(5, 4).Last()
}

func TestNewTripletRejectsZeroStride(t *testing.T) {
	if _, err := NewTriplet(1, 10, 0); err == nil {
		t.Fatal("expected error for zero stride")
	}
	if _, err := NewTriplet(1, 10, 3); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDomainBasics(t *testing.T) {
	d := Standard(0, 4, 1, 3)
	if d.Rank() != 2 {
		t.Fatalf("rank = %d", d.Rank())
	}
	if d.Size() != 15 {
		t.Fatalf("size = %d, want 15", d.Size())
	}
	if !d.IsStandard() {
		t.Fatalf("expected standard")
	}
	if d.Extent(0) != 5 || d.Extent(1) != 3 {
		t.Fatalf("extents wrong")
	}
	if d.Lower(0) != 0 || d.Upper(0) != 4 {
		t.Fatalf("bounds wrong")
	}
	if !d.Contains(Tuple{0, 1}) || !d.Contains(Tuple{4, 3}) {
		t.Fatalf("containment wrong")
	}
	if d.Contains(Tuple{5, 1}) || d.Contains(Tuple{0}) {
		t.Fatalf("false containment")
	}
}

func TestScalarDomain(t *testing.T) {
	s := Scalar()
	if s.Rank() != 0 {
		t.Fatalf("rank = %d", s.Rank())
	}
	if s.Size() != 1 {
		t.Fatalf("scalar domain must have exactly one element (paper §2.2), got %d", s.Size())
	}
	count := 0
	s.ForEach(func(Tuple) bool { count++; return true })
	if count != 1 {
		t.Fatalf("scalar iteration visited %d indices", count)
	}
}

func TestOffsetTupleAtRoundTrip(t *testing.T) {
	d := New(Triplet{2, 10, 2}, Unit(0, 3), Triplet{5, 1, -2})
	size := d.Size()
	if size != 5*4*3 {
		t.Fatalf("size = %d", size)
	}
	for off := 0; off < size; off++ {
		tu := d.TupleAt(off)
		back, ok := d.Offset(tu)
		if !ok || back != off {
			t.Fatalf("round trip failed at %d: tuple %v -> %d,%v", off, tu, back, ok)
		}
	}
}

func TestForEachColumnMajor(t *testing.T) {
	d := Standard(1, 2, 1, 3)
	var got []Tuple
	d.ForEach(func(tu Tuple) bool {
		got = append(got, tu.Clone())
		return true
	})
	want := []Tuple{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("tuple %d = %v, want %v (column-major order)", i, got[i], want[i])
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	d := Standard(1, 10)
	count := 0
	d.ForEach(func(Tuple) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestForEachEmptyDomain(t *testing.T) {
	d := Standard(5, 4)
	d.ForEach(func(Tuple) bool {
		t.Fatal("empty domain must not iterate")
		return false
	})
}

func TestNormalize(t *testing.T) {
	d := New(Triplet{2, 10, 2}, Unit(0, 3))
	n := d.Normalize()
	if !n.Equal(Standard(1, 5, 1, 4)) {
		t.Fatalf("normalize = %s", n)
	}
}

func TestSection(t *testing.T) {
	d := Standard(1, 1000)
	s, err := d.Section(Triplet{2, 996, 2})
	if err != nil {
		t.Fatalf("section: %v", err)
	}
	if s.Size() != 498 {
		t.Fatalf("section size = %d", s.Size())
	}
	if _, err := d.Section(Triplet{0, 10, 1}); err == nil {
		t.Fatalf("expected out-of-bounds section error")
	}
	if _, err := d.Section(Unit(1, 5), Unit(1, 5)); err == nil {
		t.Fatalf("expected rank mismatch error")
	}
}

func TestDomainString(t *testing.T) {
	d := New(Unit(0, 4), Triplet{1, 9, 2})
	if d.String() != "[0:4, 1:9:2]" {
		t.Fatalf("String = %q", d.String())
	}
}

func TestStandardPanicsOnOddBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Standard(1, 2, 3)
}

// Property: for any triplet with nonzero stride, every value listed
// by iteration is contained, positions are consistent, and Count
// matches the number of values.
func TestTripletProperties(t *testing.T) {
	f := func(lo int8, n uint8, st int8) bool {
		stride := int(st)
		if stride == 0 {
			stride = 1
		}
		count := int(n % 50)
		hi := int(lo) + (count-1)*stride
		tr := Triplet{Low: int(lo), High: hi, Stride: stride}
		if count <= 0 {
			return true
		}
		if tr.Count() != count {
			return false
		}
		for k := 0; k < count; k++ {
			v := tr.At(k)
			if !tr.Contains(v) {
				return false
			}
			p, ok := tr.Position(v)
			if !ok || p != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Offset is a bijection onto [0, Size).
func TestOffsetBijectionProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		d := Standard(1, int(a%6)+1, 1, int(b%6)+1, 1, int(c%6)+1)
		seen := make([]bool, d.Size())
		ok := true
		d.ForEach(func(tu Tuple) bool {
			off, in := d.Offset(tu)
			if !in || off < 0 || off >= d.Size() || seen[off] {
				ok = false
				return false
			}
			seen[off] = true
			return true
		})
		if !ok {
			return false
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
