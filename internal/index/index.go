// Package index implements the index domains underlying the paper's
// mapping model (§2.1): an index domain of rank n is an ordered set of
// subscript tuples representable by a subscript-triplet list of length
// n (Fortran 90 specification, R619). Every declared data array and
// processor array is associated with a standard index domain (all
// strides 1); array sections and processor sections are general
// (strided) domains. In the pipeline this is the foundation layer:
// every mapping, tile, schedule and storage layout above it is
// expressed over these domains, tuples and triplets.
package index

import (
	"errors"
	"fmt"
	"strings"
)

// Triplet is a Fortran 90 subscript triplet L:U:S. It denotes the
// ordered set {L, L+S, L+2S, ...} not exceeding U (for S > 0) or not
// preceding U (for S < 0). A stride of 0 is invalid.
type Triplet struct {
	Low    int // first value
	High   int // inclusive bound
	Stride int // step; must be nonzero
}

// NewTriplet returns the triplet L:U:S, validating the stride.
func NewTriplet(low, high, stride int) (Triplet, error) {
	if stride == 0 {
		return Triplet{}, errors.New("index: triplet stride must be nonzero")
	}
	return Triplet{Low: low, High: high, Stride: stride}, nil
}

// Unit returns the standard (stride-1) triplet low:high.
func Unit(low, high int) Triplet { return Triplet{Low: low, High: high, Stride: 1} }

// Count reports the number of values in the triplet, following the
// Fortran section-size formula MAX(INT((U-L+S)/S), 0).
func (t Triplet) Count() int {
	if t.Stride == 0 {
		return 0
	}
	n := (t.High - t.Low + t.Stride) / t.Stride
	if n < 0 {
		return 0
	}
	return n
}

// Empty reports whether the triplet denotes no values.
func (t Triplet) Empty() bool { return t.Count() == 0 }

// At returns the k-th value of the triplet (0-based position).
func (t Triplet) At(k int) int { return t.Low + k*t.Stride }

// Last returns the final value of the triplet. It panics on an empty
// triplet.
func (t Triplet) Last() int {
	n := t.Count()
	if n == 0 {
		panic("index: Last of empty triplet")
	}
	return t.At(n - 1)
}

// Contains reports whether v is one of the triplet's values.
func (t Triplet) Contains(v int) bool {
	if t.Stride == 0 {
		return false
	}
	d := v - t.Low
	if d%t.Stride != 0 {
		return false
	}
	k := d / t.Stride
	return k >= 0 && k < t.Count()
}

// Position returns the 0-based position of v within the triplet and
// whether v is contained in it.
func (t Triplet) Position(v int) (int, bool) {
	if !t.Contains(v) {
		return 0, false
	}
	return (v - t.Low) / t.Stride, true
}

// IsUnit reports whether the triplet has stride 1 (a "standard"
// dimension in the paper's terminology).
func (t Triplet) IsUnit() bool { return t.Stride == 1 }

// String renders the triplet in Fortran notation, omitting a unit
// stride.
func (t Triplet) String() string {
	if t.Stride == 1 {
		return fmt.Sprintf("%d:%d", t.Low, t.High)
	}
	return fmt.Sprintf("%d:%d:%d", t.Low, t.High, t.Stride)
}

// Tuple is an index: one subscript per dimension.
type Tuple []int

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the tuple as "(i1,i2,...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Domain is an index domain of rank len(Dims): the cross product of
// its subscript triplets.
type Domain struct {
	Dims []Triplet
}

// New builds a domain from triplets.
func New(dims ...Triplet) Domain {
	d := Domain{Dims: make([]Triplet, len(dims))}
	copy(d.Dims, dims)
	return d
}

// Standard builds a standard (stride-1) domain from low/high pairs:
// Standard(l1, u1, l2, u2, ...).
func Standard(bounds ...int) Domain {
	if len(bounds)%2 != 0 {
		panic("index: Standard requires an even number of bounds")
	}
	dims := make([]Triplet, len(bounds)/2)
	for i := range dims {
		dims[i] = Unit(bounds[2*i], bounds[2*i+1])
	}
	return Domain{Dims: dims}
}

// Vector builds the rank-1 standard domain 1:n.
func Vector(n int) Domain { return Standard(1, n) }

// Scalar returns the rank-0 domain used to model scalars: it has
// exactly one (empty) index, per §2.2 of the paper ("scalars can
// easily be accommodated ... by treating them as if they were
// associated with an index domain consisting of exactly one element").
func Scalar() Domain { return Domain{} }

// Rank reports the number of dimensions.
func (d Domain) Rank() int { return len(d.Dims) }

// Size reports the total number of indices in the domain. The rank-0
// (scalar) domain has size 1.
func (d Domain) Size() int {
	n := 1
	for _, t := range d.Dims {
		n *= t.Count()
	}
	return n
}

// Empty reports whether the domain contains no indices.
func (d Domain) Empty() bool { return d.Size() == 0 }

// IsStandard reports whether every dimension has stride 1 (§2.1).
func (d Domain) IsStandard() bool {
	for _, t := range d.Dims {
		if !t.IsUnit() {
			return false
		}
	}
	return true
}

// Extent reports the number of values along dimension dim (0-based).
func (d Domain) Extent(dim int) int { return d.Dims[dim].Count() }

// Lower returns the lower bound of dimension dim.
func (d Domain) Lower(dim int) int { return d.Dims[dim].Low }

// Upper returns the last value of dimension dim.
func (d Domain) Upper(dim int) int { return d.Dims[dim].Last() }

// Contains reports whether the tuple lies in the domain.
func (d Domain) Contains(t Tuple) bool {
	if len(t) != len(d.Dims) {
		return false
	}
	for i, v := range t {
		if !d.Dims[i].Contains(v) {
			return false
		}
	}
	return true
}

// Offset returns the 0-based column-major linearization of tuple t
// (Fortran array element order), and whether t is in the domain.
func (d Domain) Offset(t Tuple) (int, bool) {
	if len(t) != len(d.Dims) {
		return 0, false
	}
	off, mult := 0, 1
	for i, v := range t {
		p, ok := d.Dims[i].Position(v)
		if !ok {
			return 0, false
		}
		off += p * mult
		mult *= d.Dims[i].Count()
	}
	return off, true
}

// TupleAt is the inverse of Offset: it returns the tuple at 0-based
// column-major position off. It panics if off is out of range.
func (d Domain) TupleAt(off int) Tuple {
	if off < 0 || off >= d.Size() {
		panic(fmt.Sprintf("index: offset %d out of range for domain %s", off, d))
	}
	t := make(Tuple, len(d.Dims))
	for i, tr := range d.Dims {
		n := tr.Count()
		t[i] = tr.At(off % n)
		off /= n
	}
	return t
}

// ForEach calls fn for every index of the domain in column-major
// order. Iteration stops early if fn returns false. The tuple passed
// to fn is reused between calls; clone it to retain it.
func (d Domain) ForEach(fn func(Tuple) bool) {
	if d.Empty() && d.Rank() > 0 {
		return
	}
	t := make(Tuple, len(d.Dims))
	for i, tr := range d.Dims {
		t[i] = tr.Low
	}
	for {
		if !fn(t) {
			return
		}
		i := 0
		for ; i < len(d.Dims); i++ {
			tr := d.Dims[i]
			t[i] += tr.Stride
			if tr.Contains(t[i]) {
				break
			}
			t[i] = tr.Low
		}
		if i == len(d.Dims) {
			return
		}
	}
}

// Tuples materializes every index of the domain in column-major order.
func (d Domain) Tuples() []Tuple {
	out := make([]Tuple, 0, d.Size())
	d.ForEach(func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Equal reports whether two domains have identical triplets.
func (d Domain) Equal(o Domain) bool {
	if len(d.Dims) != len(o.Dims) {
		return false
	}
	for i := range d.Dims {
		if d.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

// Normalize returns the standard domain with the same extents as d,
// rebased to lower bound 1 in every dimension. Positions are
// preserved: the k-th value of each dimension maps to k+1.
func (d Domain) Normalize() Domain {
	dims := make([]Triplet, len(d.Dims))
	for i, t := range d.Dims {
		dims[i] = Unit(1, t.Count())
	}
	return Domain{Dims: dims}
}

// Section returns the sub-domain selected by the given triplets, one
// per dimension; each must be contained in the corresponding
// dimension's value set.
func (d Domain) Section(sel ...Triplet) (Domain, error) {
	if len(sel) != len(d.Dims) {
		return Domain{}, fmt.Errorf("index: section rank %d does not match domain rank %d", len(sel), len(d.Dims))
	}
	for i, t := range sel {
		if t.Empty() {
			continue
		}
		if !d.Dims[i].Contains(t.Low) || !d.Dims[i].Contains(t.Last()) {
			return Domain{}, fmt.Errorf("index: section %s exceeds dimension %d (%s)", t, i+1, d.Dims[i])
		}
	}
	return New(sel...), nil
}

// String renders the domain as "[l1:u1:s1, l2:u2:s2, ...]".
func (d Domain) String() string {
	parts := make([]string, len(d.Dims))
	for i, t := range d.Dims {
		parts[i] = t.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
