// Package proc implements the paper's processor model (§3). It is
// the bottom of the mapping pipeline: every distribution (package
// dist) maps index domains onto the abstract processor numbering
// defined here, and the execution engines (packages runtime and
// spmd) create one simulated or real worker per abstract processor.
//
// Each implementation determines an implicit abstract processor
// arrangement AP — a linear numbering scheme 1..N for the physical
// processors. The PROCESSORS directive declares processor array
// arrangements (with a non-empty index domain) or conceptually scalar
// arrangements. Every arrangement is mapped onto AP the way Fortran 90
// EQUIVALENCE defines storage association, with abstract processors
// playing the role of storage units: element k (0-based column-major
// position) of every arrangement occupies AP(k+1), so arrangements of
// equal shape share processors position-by-position, and the sharing
// of an abstract processor implies the sharing of the associated
// physical processor.
//
// Distribution targets (the TO-clause of DISTRIBUTE) may name a whole
// processor array or a section thereof, e.g. Q(1:NOP:2) — one of the
// paper's generalizations over the HPF draft.
package proc

import (
	"errors"
	"fmt"

	"hpfnt/internal/index"
)

// ScalarPolicy describes where data mapped to a conceptually scalar
// processor arrangement resides (§3: "may reside in a single control
// processor (if the machine has one), or may reside in an arbitrarily
// chosen processor, or may be replicated over all processors").
type ScalarPolicy int

// The scalar arrangement policies enumerated in §3.
const (
	// ScalarControl places scalar-arrangement data on processor 1
	// (the control processor).
	ScalarControl ScalarPolicy = iota
	// ScalarArbitrary places scalar-arrangement data on an
	// implementation-chosen processor (we choose deterministically by
	// hashing the arrangement name, so runs are reproducible).
	ScalarArbitrary
	// ScalarReplicated replicates scalar-arrangement data over all
	// processors.
	ScalarReplicated
)

// AbstractProcessors is the implicit linear arrangement AP of §3,
// numbering the physical processors 1..N.
type AbstractProcessors struct {
	n int
}

// NewAP creates the abstract processor arrangement for a machine with
// n physical processors.
func NewAP(n int) (*AbstractProcessors, error) {
	if n < 1 {
		return nil, fmt.Errorf("proc: abstract processor count must be positive, got %d", n)
	}
	return &AbstractProcessors{n: n}, nil
}

// N reports the number of abstract processors.
func (ap *AbstractProcessors) N() int { return ap.n }

// Valid reports whether p is a legal 1-based abstract processor
// number.
func (ap *AbstractProcessors) Valid(p int) bool { return p >= 1 && p <= ap.n }

// Arrangement is a declared processor arrangement: either a processor
// array arrangement (Scalar == false, with a non-empty index domain)
// or a conceptually scalar arrangement (Scalar == true).
type Arrangement struct {
	Name   string
	Dom    index.Domain
	Scalar bool
	Policy ScalarPolicy

	ap *AbstractProcessors
}

// Size reports the number of abstract processors the arrangement
// occupies (1 for scalar arrangements).
func (a *Arrangement) Size() int {
	if a.Scalar {
		return 1
	}
	return a.Dom.Size()
}

// Rank reports the rank of the arrangement's index domain.
func (a *Arrangement) Rank() int { return a.Dom.Rank() }

// APNumber returns the 1-based abstract processor number occupied by
// the arrangement element at tuple t, per the EQUIVALENCE-style
// mapping (column-major, based at AP(1)).
func (a *Arrangement) APNumber(t index.Tuple) (int, error) {
	if a.Scalar {
		return a.scalarAP(), nil
	}
	off, ok := a.Dom.Offset(t)
	if !ok {
		return 0, fmt.Errorf("proc: %s is not an index of arrangement %s%s", t, a.Name, a.Dom)
	}
	return off + 1, nil
}

// ScalarAPNumbers returns the abstract processor numbers holding data
// mapped to a scalar arrangement (several when Policy is
// ScalarReplicated).
func (a *Arrangement) ScalarAPNumbers() []int {
	if !a.Scalar {
		return nil
	}
	if a.Policy == ScalarReplicated {
		out := make([]int, a.ap.N())
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	return []int{a.scalarAP()}
}

func (a *Arrangement) scalarAP() int {
	switch a.Policy {
	case ScalarControl:
		return 1
	case ScalarArbitrary:
		h := 0
		for _, c := range a.Name {
			h = (h*131 + int(c)) % a.ap.N()
		}
		return h + 1
	default:
		return 1
	}
}

// String renders the arrangement declaration.
func (a *Arrangement) String() string {
	if a.Scalar {
		return fmt.Sprintf("PROCESSORS %s", a.Name)
	}
	return fmt.Sprintf("PROCESSORS %s%s", a.Name, a.Dom)
}

// System holds the abstract processor arrangement and all declared
// arrangements of a program unit.
type System struct {
	AP           *AbstractProcessors
	arrangements map[string]*Arrangement
	order        []string
}

// NewSystem creates a system with n abstract (physical) processors.
func NewSystem(n int) (*System, error) {
	ap, err := NewAP(n)
	if err != nil {
		return nil, err
	}
	return &System{AP: ap, arrangements: map[string]*Arrangement{}}, nil
}

// DeclareArray declares a processor array arrangement with the given
// non-empty index domain. Per §3, the arrangement must fit within the
// abstract processor arrangement it is equivalenced to.
func (s *System) DeclareArray(name string, dom index.Domain) (*Arrangement, error) {
	if name == "" {
		return nil, errors.New("proc: arrangement name must be non-empty")
	}
	if _, dup := s.arrangements[name]; dup {
		return nil, fmt.Errorf("proc: arrangement %s already declared", name)
	}
	if dom.Rank() == 0 || dom.Empty() {
		return nil, fmt.Errorf("proc: processor array arrangement %s requires a non-empty index domain", name)
	}
	if !dom.IsStandard() {
		return nil, fmt.Errorf("proc: arrangement %s must be declared over a standard index domain, got %s", name, dom)
	}
	if dom.Size() > s.AP.N() {
		return nil, fmt.Errorf("proc: arrangement %s has %d elements but only %d abstract processors exist", name, dom.Size(), s.AP.N())
	}
	a := &Arrangement{Name: name, Dom: dom, ap: s.AP}
	s.arrangements[name] = a
	s.order = append(s.order, name)
	return a, nil
}

// DeclareScalar declares a conceptually scalar processor arrangement
// with the given placement policy.
func (s *System) DeclareScalar(name string, policy ScalarPolicy) (*Arrangement, error) {
	if name == "" {
		return nil, errors.New("proc: arrangement name must be non-empty")
	}
	if _, dup := s.arrangements[name]; dup {
		return nil, fmt.Errorf("proc: arrangement %s already declared", name)
	}
	a := &Arrangement{Name: name, Scalar: true, Policy: policy, ap: s.AP}
	s.arrangements[name] = a
	s.order = append(s.order, name)
	return a, nil
}

// Lookup finds a declared arrangement by name.
func (s *System) Lookup(name string) (*Arrangement, bool) {
	a, ok := s.arrangements[name]
	return a, ok
}

// Names lists the declared arrangements in declaration order.
func (s *System) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Target is a distribution target (the TO-clause): a processor array
// arrangement or a section thereof. A section subscript written as a
// scalar (e.g. the "2" in Q(1:4,2)) selects one position and drops
// the dimension from the target's effective rank, following Fortran
// section semantics.
type Target struct {
	Arr *Arrangement
	// Sel is the selected section; when its rank is 0 on an array
	// arrangement, the whole arrangement is targeted.
	Sel index.Domain
	// Drop marks dimensions selected by scalar subscripts, which do
	// not count toward the effective rank.
	Drop []bool
}

// Whole targets the entire arrangement.
func Whole(a *Arrangement) Target { return Target{Arr: a} }

// SectionOf targets a section of the arrangement, validating bounds.
func SectionOf(a *Arrangement, sel ...index.Triplet) (Target, error) {
	return SectionDropping(a, sel, nil)
}

// SectionDropping targets a section with explicit rank reduction:
// drop[i] marks dimension i as selected by a scalar subscript (its
// triplet must then denote a single value).
func SectionDropping(a *Arrangement, sel []index.Triplet, drop []bool) (Target, error) {
	if a.Scalar {
		return Target{}, fmt.Errorf("proc: cannot take a section of scalar arrangement %s", a.Name)
	}
	dom, err := a.Dom.Section(sel...)
	if err != nil {
		return Target{}, fmt.Errorf("proc: invalid section of %s: %w", a.Name, err)
	}
	if dom.Empty() {
		return Target{}, fmt.Errorf("proc: empty processor section of %s", a.Name)
	}
	if drop != nil {
		if len(drop) != len(sel) {
			return Target{}, fmt.Errorf("proc: drop mask length %d does not match section rank %d", len(drop), len(sel))
		}
		for i, d := range drop {
			if d && sel[i].Count() != 1 {
				return Target{}, fmt.Errorf("proc: scalar subscript in dimension %d selects %d values", i+1, sel[i].Count())
			}
		}
	}
	return Target{Arr: a, Sel: dom, Drop: append([]bool(nil), drop...)}, nil
}

// fullDomain returns the target's section domain at the arrangement's
// full rank (scalar-subscript dimensions retained as single-value
// triplets).
func (t Target) fullDomain() index.Domain {
	if t.Sel.Rank() > 0 {
		return t.Sel
	}
	return t.Arr.Dom
}

// Domain returns the target's effective index domain: the section if
// present (with scalar-subscript dimensions dropped), otherwise the
// arrangement's own domain. Because dropped dimensions hold a single
// value, column-major order over the effective domain coincides with
// column-major order over the full section.
func (t Target) Domain() index.Domain {
	full := t.fullDomain()
	if t.Drop == nil {
		return full
	}
	var dims []index.Triplet
	for i, tr := range full.Dims {
		if i < len(t.Drop) && t.Drop[i] {
			continue
		}
		dims = append(dims, tr)
	}
	return index.New(dims...)
}

// Rank reports the rank of the effective index domain.
func (t Target) Rank() int { return t.Domain().Rank() }

// NP reports the number of processors in the target.
func (t Target) NP() int {
	if t.Arr != nil && t.Arr.Scalar {
		return 1
	}
	return t.Domain().Size()
}

// APNumbers lists the abstract processor numbers of the target in
// column-major order of its effective index domain.
func (t Target) APNumbers() ([]int, error) {
	if t.Arr == nil {
		return nil, errors.New("proc: target has no arrangement")
	}
	if t.Arr.Scalar {
		return []int{t.Arr.scalarAP()}, nil
	}
	dom := t.fullDomain()
	out := make([]int, 0, dom.Size())
	var ferr error
	dom.ForEach(func(tu index.Tuple) bool {
		p, err := t.Arr.APNumber(tu)
		if err != nil {
			ferr = err
			return false
		}
		out = append(out, p)
		return true
	})
	return out, ferr
}

// APNumberAt returns the abstract processor at 0-based column-major
// position k of the target.
func (t Target) APNumberAt(k int) (int, error) {
	dom := t.fullDomain()
	if k < 0 || k >= dom.Size() {
		return 0, fmt.Errorf("proc: position %d out of range for target of %d processors", k, dom.Size())
	}
	if t.Arr.Scalar {
		return t.Arr.scalarAP(), nil
	}
	return t.Arr.APNumber(dom.TupleAt(k))
}

// Equal reports whether two targets denote the same processor set in
// the same order.
func (t Target) Equal(o Target) bool {
	if (t.Arr == nil) != (o.Arr == nil) {
		return false
	}
	if t.Arr == nil {
		return true
	}
	if t.Arr.Name != o.Arr.Name {
		return false
	}
	return t.fullDomain().Equal(o.fullDomain()) && t.Domain().Rank() == o.Domain().Rank()
}

// String renders the target in TO-clause syntax, with
// scalar-subscript dimensions shown as scalars.
func (t Target) String() string {
	if t.Arr == nil {
		return "<implicit>"
	}
	if t.Sel.Rank() == 0 {
		return t.Arr.Name
	}
	parts := make([]string, t.Sel.Rank())
	for i, tr := range t.Sel.Dims {
		if i < len(t.Drop) && t.Drop[i] {
			parts[i] = fmt.Sprint(tr.Low)
		} else {
			parts[i] = tr.String()
		}
	}
	return t.Arr.Name + "(" + joinComma(parts) + ")"
}

func joinComma(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += ","
		}
		s += p
	}
	return s
}
