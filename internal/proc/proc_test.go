package proc

import (
	"testing"

	"hpfnt/internal/index"
)

func sys(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewSystem(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewAPValidation(t *testing.T) {
	if _, err := NewAP(0); err == nil {
		t.Fatal("AP of size 0 must fail")
	}
	ap, err := NewAP(8)
	if err != nil || ap.N() != 8 {
		t.Fatalf("NewAP: %v", err)
	}
	if !ap.Valid(1) || !ap.Valid(8) || ap.Valid(0) || ap.Valid(9) {
		t.Fatal("Valid wrong")
	}
}

func TestDeclareArrayArrangement(t *testing.T) {
	s := sys(t, 32)
	a, err := s.DeclareArray("PR", index.Standard(1, 32))
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 32 || a.Rank() != 1 {
		t.Fatalf("size=%d rank=%d", a.Size(), a.Rank())
	}
	// EQUIVALENCE mapping: element k (column-major) -> AP(k+1).
	for i := 1; i <= 32; i++ {
		p, err := a.APNumber(index.Tuple{i})
		if err != nil || p != i {
			t.Fatalf("APNumber(%d) = %d, %v", i, p, err)
		}
	}
}

func TestEquivalenceSharing(t *testing.T) {
	// Two arrangements of equal size share processors
	// position-by-position (storage association, §3).
	s := sys(t, 16)
	a, _ := s.DeclareArray("A", index.Standard(1, 16))
	b, _ := s.DeclareArray("B", index.Standard(1, 4, 1, 4))
	pa, _ := a.APNumber(index.Tuple{5})
	pb, _ := b.APNumber(index.Tuple{1, 2}) // column-major offset 4 -> AP 5
	if pa != pb {
		t.Fatalf("equivalence sharing violated: %d vs %d", pa, pb)
	}
}

func TestColumnMajorAPMapping(t *testing.T) {
	s := sys(t, 12)
	b, _ := s.DeclareArray("G", index.Standard(1, 3, 1, 4))
	// (2,1) -> offset 1 -> AP 2 ; (1,2) -> offset 3 -> AP 4.
	if p, _ := b.APNumber(index.Tuple{2, 1}); p != 2 {
		t.Fatalf("got %d", p)
	}
	if p, _ := b.APNumber(index.Tuple{1, 2}); p != 4 {
		t.Fatalf("got %d", p)
	}
	if _, err := b.APNumber(index.Tuple{4, 1}); err == nil {
		t.Fatal("out-of-domain tuple must fail")
	}
}

func TestDeclareValidation(t *testing.T) {
	s := sys(t, 8)
	if _, err := s.DeclareArray("", index.Standard(1, 4)); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := s.DeclareArray("P", index.Domain{}); err == nil {
		t.Fatal("rank-0 array arrangement must fail (non-empty index domain required)")
	}
	if _, err := s.DeclareArray("P", index.Standard(1, 9)); err == nil {
		t.Fatal("arrangement exceeding AP must fail")
	}
	if _, err := s.DeclareArray("P", index.Standard(1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeclareArray("P", index.Standard(1, 2)); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if _, err := s.DeclareArray("S", index.New(index.Triplet{Low: 1, High: 8, Stride: 2})); err == nil {
		t.Fatal("non-standard domain must fail")
	}
}

func TestScalarArrangementPolicies(t *testing.T) {
	s := sys(t, 8)
	ctl, _ := s.DeclareScalar("CTL", ScalarControl)
	if got := ctl.ScalarAPNumbers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("control policy: %v", got)
	}
	rep, _ := s.DeclareScalar("REP", ScalarReplicated)
	if got := rep.ScalarAPNumbers(); len(got) != 8 {
		t.Fatalf("replicated policy: %v", got)
	}
	arb, _ := s.DeclareScalar("ARB", ScalarArbitrary)
	got := arb.ScalarAPNumbers()
	if len(got) != 1 || got[0] < 1 || got[0] > 8 {
		t.Fatalf("arbitrary policy: %v", got)
	}
	// Deterministic.
	if got2 := arb.ScalarAPNumbers(); got2[0] != got[0] {
		t.Fatalf("arbitrary policy must be deterministic")
	}
	if ctl.Size() != 1 {
		t.Fatalf("scalar size = %d", ctl.Size())
	}
}

func TestWholeTarget(t *testing.T) {
	s := sys(t, 8)
	a, _ := s.DeclareArray("Q", index.Standard(1, 8))
	tg := Whole(a)
	if tg.NP() != 8 || tg.Rank() != 1 {
		t.Fatalf("NP=%d rank=%d", tg.NP(), tg.Rank())
	}
	aps, err := tg.APNumbers()
	if err != nil || len(aps) != 8 {
		t.Fatalf("APNumbers: %v %v", aps, err)
	}
	for i, p := range aps {
		if p != i+1 {
			t.Fatalf("aps[%d]=%d", i, p)
		}
	}
	if tg.String() != "Q" {
		t.Fatalf("String = %q", tg.String())
	}
}

func TestSectionTarget(t *testing.T) {
	// The paper's example: DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2).
	s := sys(t, 8)
	a, _ := s.DeclareArray("Q", index.Standard(1, 8))
	tr, _ := index.NewTriplet(1, 8, 2)
	tg, err := SectionOf(a, tr)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NP() != 4 {
		t.Fatalf("NP = %d, want 4", tg.NP())
	}
	aps, _ := tg.APNumbers()
	want := []int{1, 3, 5, 7}
	for i := range want {
		if aps[i] != want[i] {
			t.Fatalf("aps = %v, want %v", aps, want)
		}
	}
	p, err := tg.APNumberAt(2)
	if err != nil || p != 5 {
		t.Fatalf("APNumberAt(2) = %d, %v", p, err)
	}
	if _, err := tg.APNumberAt(4); err == nil {
		t.Fatal("out-of-range position must fail")
	}
	if tg.String() != "Q(1:8:2)" {
		t.Fatalf("String = %q", tg.String())
	}
}

func TestSectionValidation(t *testing.T) {
	s := sys(t, 8)
	a, _ := s.DeclareArray("Q", index.Standard(1, 8))
	if _, err := SectionOf(a, index.Unit(0, 4)); err == nil {
		t.Fatal("out-of-bounds section must fail")
	}
	if _, err := SectionOf(a, index.Unit(5, 4)); err == nil {
		t.Fatal("empty section must fail")
	}
	sc, _ := s.DeclareScalar("S", ScalarControl)
	if _, err := SectionOf(sc, index.Unit(1, 1)); err == nil {
		t.Fatal("section of scalar arrangement must fail")
	}
}

func TestTargetEqual(t *testing.T) {
	s := sys(t, 8)
	a, _ := s.DeclareArray("Q", index.Standard(1, 8))
	b, _ := s.DeclareArray("R", index.Standard(1, 8))
	t1 := Whole(a)
	t2 := Whole(a)
	t3 := Whole(b)
	tr, _ := index.NewTriplet(1, 8, 2)
	t4, _ := SectionOf(a, tr)
	if !t1.Equal(t2) {
		t.Fatal("identical targets must be equal")
	}
	if t1.Equal(t3) {
		t.Fatal("different arrangements must differ")
	}
	if t1.Equal(t4) {
		t.Fatal("whole vs section must differ")
	}
}

func TestMultiDimSection(t *testing.T) {
	s := sys(t, 16)
	a, _ := s.DeclareArray("G", index.Standard(1, 4, 1, 4))
	tg, err := SectionOf(a, index.Unit(2, 3), index.Unit(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if tg.NP() != 8 {
		t.Fatalf("NP = %d", tg.NP())
	}
	aps, _ := tg.APNumbers()
	// Column-major over section: (2,1)(3,1)(2,2)(3,2)... APs: 2,3,6,7,10,11,14,15
	want := []int{2, 3, 6, 7, 10, 11, 14, 15}
	for i := range want {
		if aps[i] != want[i] {
			t.Fatalf("aps = %v, want %v", aps, want)
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	s := sys(t, 8)
	s.DeclareArray("A", index.Standard(1, 2))
	s.DeclareScalar("B", ScalarControl)
	if _, ok := s.Lookup("A"); !ok {
		t.Fatal("lookup A failed")
	}
	if _, ok := s.Lookup("Z"); ok {
		t.Fatal("lookup Z should fail")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSectionDroppingScalarSubscript(t *testing.T) {
	// Q(1:4,2): the scalar subscript selects one column and drops the
	// dimension (Fortran section rank reduction).
	s := sys(t, 8)
	a, _ := s.DeclareArray("G", index.Standard(1, 4, 1, 2))
	tg, err := SectionDropping(a,
		[]index.Triplet{index.Unit(1, 4), index.Unit(2, 2)},
		[]bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if tg.Rank() != 1 {
		t.Fatalf("rank = %d, want 1 (dimension dropped)", tg.Rank())
	}
	if tg.NP() != 4 {
		t.Fatalf("NP = %d", tg.NP())
	}
	aps, err := tg.APNumbers()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{5, 6, 7, 8}
	for i := range want {
		if aps[i] != want[i] {
			t.Fatalf("aps = %v, want %v", aps, want)
		}
	}
	if tg.String() != "G(1:4,2)" {
		t.Fatalf("String = %q", tg.String())
	}
	// A scalar-subscript drop over a multi-value triplet is invalid.
	if _, err := SectionDropping(a,
		[]index.Triplet{index.Unit(1, 4), index.Unit(1, 2)},
		[]bool{false, true}); err == nil {
		t.Fatal("multi-value scalar subscript must fail")
	}
	// Mask length mismatch.
	if _, err := SectionDropping(a,
		[]index.Triplet{index.Unit(1, 4), index.Unit(2, 2)},
		[]bool{true}); err == nil {
		t.Fatal("mask length mismatch must fail")
	}
}

func TestTargetStringForms(t *testing.T) {
	s := sys(t, 8)
	a, _ := s.DeclareArray("Q", index.Standard(1, 8))
	if got := (Target{}).String(); got != "<implicit>" {
		t.Fatalf("implicit target String = %q", got)
	}
	tr, _ := index.NewTriplet(1, 8, 2)
	tg, _ := SectionOf(a, tr)
	if tg.String() != "Q(1:8:2)" {
		t.Fatalf("String = %q", tg.String())
	}
	if (Whole(a)).String() != "Q" {
		t.Fatalf("whole String = %q", Whole(a).String())
	}
}

func TestArrangementString(t *testing.T) {
	s := sys(t, 8)
	a, _ := s.DeclareArray("Q", index.Standard(1, 8))
	if got := a.String(); got != "PROCESSORS Q[1:8]" {
		t.Fatalf("String = %q", got)
	}
	sc, _ := s.DeclareScalar("S", ScalarControl)
	if got := sc.String(); got != "PROCESSORS S" {
		t.Fatalf("String = %q", got)
	}
}
