package interp_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"hpfnt/internal/interp"
)

// fuzzLimits keeps hostile inputs cheap: small arrays, small
// statement budgets.
var fuzzLimits = interp.Options{MaxStatements: 4096, MaxElems: 4096}

// FuzzDirectiveProgram feeds arbitrary text through the whole front
// end — line stripping, lexing, the directive parser and the
// interpreter — and requires that it never panics: malformed programs
// must fail with positioned errors. Corpus programs seed the fuzzer
// so mutations start from well-formed inputs.
func FuzzDirectiveProgram(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "programs", "*.hpf"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		src, err := interp.ReadSource(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	f.Add("REAL A(8)\nA(1:9) = A(1:9)\n")
	f.Add("!HPF$ REDISTRIBUTE A(CYCLIC) TO\n")
	f.Add("DO K = 1, 10\nEND DO\n")
	f.Add("FORALL (I = 1:8) A(I) = MOD(I, 0)\n")
	f.Add("PROCESSORS P(4)\nREAL A(1000000000000)\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		cfg := interp.Config{NP: 3, Engine: "sim", Transport: "inproc", Limits: fuzzLimits}
		_, _ = cfg.Run(src) // errors are expected; panics are bugs
	})
}

// genProgram builds a well-formed program from fuzz bytes. Every
// choice is driven by the input, so the fuzzer explores mapping ×
// statement combinations; the program is valid by construction
// (bounded sizes, in-range sections).
func genProgram(data []byte) (src string, np int, wire string) {
	at := func(i int) int {
		if len(data) == 0 {
			return 0
		}
		return int(data[i%len(data)])
	}
	np = 2 + at(0)%4  // 2..5
	n := 8 + at(1)%17 // 8..24
	wires := []string{"inproc", "shm", "tcp"}
	wire = wires[at(2)%len(wires)]

	format := func(b int) string {
		switch b % 4 {
		case 0:
			return "BLOCK"
		case 1:
			return "CYCLIC"
		case 2:
			return fmt.Sprintf("CYCLIC(%d)", 2+b%3)
		default:
			return "BLOCK"
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "PROCESSORS P(%d)\n", np)
	fmt.Fprintf(&b, "PARAMETER N = %d\n", n)
	b.WriteString("REAL A(1:N), B(1:N), C(1:N)\n")
	b.WriteString("!HPF$ DYNAMIC A\n")
	fmt.Fprintf(&b, "!HPF$ DISTRIBUTE A(%s) TO P\n", format(at(3)))
	fmt.Fprintf(&b, "!HPF$ DISTRIBUTE B(%s) TO P\n", format(at(4)))
	fmt.Fprintf(&b, "!HPF$ DISTRIBUTE C(%s) TO P\n", format(at(5)))
	fmt.Fprintf(&b, "FORALL (I = 1:N) A(I) = MOD(I*%d + %d, %d)\n", 1+at(6)%7, at(7)%11, 5+at(8)%9)
	b.WriteString("FORALL (I = 1:N) B(I) = 0\n")
	b.WriteString("FORALL (I = 1:N) C(I) = I\n")

	// A bounded statement mix drawn from the remaining bytes.
	steps := 1 + at(9)%6
	for s := 0; s < steps; s++ {
		c := at(10 + 3*s)
		switch c % 6 {
		case 0: // shifted copy
			b.WriteString("B(2:N) = A(1:N-1)\n")
		case 1: // 3-point stencil in a short loop
			fmt.Fprintf(&b, "DO K = 1, %d\n", 1+at(11+3*s)%4)
			b.WriteString("  B(2:N-1) = 0.5*A(2:N-1) + 0.25*A(1:N-2) + 0.25*A(3:N)\n")
			b.WriteString("END DO\n")
		case 2: // cross-mapping accumulate
			b.WriteString("C(1:N) = C(1:N) + B(1:N)\n")
		case 3: // remap the dynamic array mid-run
			fmt.Fprintf(&b, "!HPF$ REDISTRIBUTE A(%s) TO P\n", format(at(12+3*s)))
		case 4: // strided section copy
			b.WriteString("B(1:N:2) = C(1:N:2)\n")
		case 5: // gather through an indirection vector
			m := 3 + at(13+3*s)%4
			idx := make([]string, m)
			for i := range idx {
				idx[i] = fmt.Sprint(1 + at(14+3*s+i)%n)
			}
			fmt.Fprintf(&b, "PARAMETER V%d = (/%s/)\n", s, strings.Join(idx, ","))
			fmt.Fprintf(&b, "B(%d:%d) = A(V%d)\n", 1, m, s)
		}
	}
	b.WriteString("PRINT SUM(A)\nPRINT SUM(B)\nPRINT SUM(C)\nPRINT MAXVAL(C)\n")
	return b.String(), np, wire
}

// FuzzInterpEquivalence generates well-formed programs and requires
// byte-identical observable results — PRINT output, array values and
// the logical machine report — between the sim/inproc oracle and the
// spmd engine on a fuzz-chosen wire. This is the differential-testing
// contract of the hand-written workloads, applied to generated
// program text.
func FuzzInterpEquivalence(f *testing.F) {
	f.Add([]byte("hpf"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{250, 116, 42, 8, 13, 99, 7, 200, 31})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("oversized input")
		}
		src, np, wire := genProgram(data)
		oracle, err := interp.Config{NP: np, Engine: "sim", Transport: "inproc", Limits: fuzzLimits}.Run(src)
		if err != nil {
			t.Fatalf("generated program rejected by oracle: %v\n%s", err, src)
		}
		got, err := interp.Config{NP: np, Engine: "spmd", Transport: wire, Limits: fuzzLimits}.Run(src)
		if err != nil {
			t.Fatalf("spmd/%s rejected a program the oracle ran: %v\n%s", wire, err, src)
		}
		if oracle.Output != got.Output {
			t.Fatalf("output differs on spmd/%s\noracle:\n%s\ngot:\n%s\nprogram:\n%s", wire, oracle.Output, got.Output, src)
		}
		for _, name := range oracle.Names {
			ov, gv := oracle.Values[name], got.Values[name]
			if len(ov) != len(gv) {
				t.Fatalf("%s: %d elements on oracle, %d on spmd/%s\n%s", name, len(ov), len(gv), wire, src)
			}
			for i := range ov {
				if ov[i] != gv[i] {
					t.Fatalf("%s[%d]: oracle %v, spmd/%s %v\nprogram:\n%s", name, i, ov[i], wire, gv[i], src)
				}
			}
		}
		if ol, gl := oracle.Report.Logical(), got.Report.Logical(); ol != gl {
			t.Fatalf("logical report differs on spmd/%s\noracle: %+v\ngot:    %+v\nprogram:\n%s", wire, ol, gl, src)
		}
	})
}
