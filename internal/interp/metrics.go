package interp

import (
	"sync/atomic"

	"hpfnt/internal/obs"
)

// Process-wide schedule-cache counters. Every Interp instance counts
// into the same pair so a metrics endpoint can expose the process's
// cache effectiveness without holding a reference to the interpreter
// that happens to be running — the same pull-at-scrape shape as the
// other observability counters.
var (
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
)

// CacheStats reports the process-wide schedule-cache hit/miss
// counters: a hit replays an already-compiled schedule, a miss pays
// the full inspector/compile cost.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// RegisterMetrics registers the interpreter's schedule-cache counter
// families on the registry (hpfnt_interp_cache_hits_total /
// hpfnt_interp_cache_misses_total).
func RegisterMetrics(reg *obs.Registry) error {
	if err := reg.Counter("hpfnt_interp_cache_hits_total",
		"Interpreter schedule-cache hits (a statement replayed an already-compiled schedule).", nil,
		func() []obs.Sample {
			h, _ := CacheStats()
			return []obs.Sample{{Value: float64(h)}}
		}); err != nil {
		return err
	}
	return reg.Counter("hpfnt_interp_cache_misses_total",
		"Interpreter schedule-cache misses (a statement paid the full schedule compile).", nil,
		func() []obs.Sample {
			_, m := CacheStats()
			return []obs.Sample{{Value: float64(m)}}
		})
}
