package interp

import (
	"fmt"
	"strconv"

	"hpfnt/internal/directive"
)

// The parse layer builds a program AST from source lines: directive
// lines are kept verbatim for package directive's parser, executable
// statements (assignments, FORALL, PRINT) keep their token streams
// for exec-time resolution (their subscript bounds may reference DO
// loop variables), and DO/END DO pairs become nested loop nodes.

// node is one parsed program construct.
type node interface {
	line() int
}

// dirLine is a declaration or mapping directive, delegated verbatim
// to the directive front end at execution time.
type dirLine struct {
	ln      int
	raw     string
	keyword string
}

// assignStmt is an array-assignment statement.
type assignStmt struct {
	ln   int
	toks []directive.Token
}

// forallStmt is a whole-array FORALL initialization.
type forallStmt struct {
	ln   int
	toks []directive.Token
}

// printStmt is a PRINT statement (reduction or element).
type printStmt struct {
	ln   int
	toks []directive.Token
}

// doLoop is a bounded DO k = lo, hi[, step] ... END DO loop.
type doLoop struct {
	ln      int
	varName string
	lo, hi  []directive.Token
	step    []directive.Token // nil: step 1
	body    []node
}

func (n *dirLine) line() int    { return n.ln }
func (n *assignStmt) line() int { return n.ln }
func (n *forallStmt) line() int { return n.ln }
func (n *printStmt) line() int  { return n.ln }
func (n *doLoop) line() int     { return n.ln }

// maxLoopDepth bounds DO nesting (and with it exec recursion).
const maxLoopDepth = 64

// directiveKeywords lists the statements owned by package directive.
var directiveKeywords = map[string]bool{
	"PARAMETER": true, "PROCESSORS": true,
	"REAL": true, "INTEGER": true, "LOGICAL": true, "DOUBLE": true,
	"DYNAMIC": true, "DISTRIBUTE": true, "REDISTRIBUTE": true,
	"ALIGN": true, "REALIGN": true, "TEMPLATE": true,
	"ALLOCATE": true, "DEALLOCATE": true, "READ": true,
}

// remapKeywords lists the directives after which the mappings of
// materialized arrays may have changed.
var remapKeywords = map[string]bool{
	"DISTRIBUTE": true, "REDISTRIBUTE": true,
	"ALIGN": true, "REALIGN": true,
	"ALLOCATE": true, "DEALLOCATE": true,
}

// IsDirectiveLine reports whether a source line is a declaration or
// mapping statement owned by package directive (as opposed to an
// executable statement of this package, a comment, or a blank line).
// cmd/hpfmap uses it to feed the directive interpreter only the lines
// it understands.
func IsDirectiveLine(line string) bool {
	body, ok := directive.StripLine(line)
	if !ok {
		return false
	}
	toks, err := directive.Lex(body)
	if err != nil || toks[0].Kind != directive.TokIdent {
		return false
	}
	return directiveKeywords[toks[0].Text]
}

func errf(ln int, format string, args ...any) error {
	return fmt.Errorf("interp: line %d: %s", ln, fmt.Sprintf(format, args...))
}

// parseProgram splits the source into lines and builds the AST.
func parseProgram(src string) ([]node, error) {
	var top []node
	var stack []*doLoop
	add := func(n node) {
		if len(stack) > 0 {
			l := stack[len(stack)-1]
			l.body = append(l.body, n)
		} else {
			top = append(top, n)
		}
	}
	ln := 0
	for rest := src; rest != ""; {
		line := rest
		if k := indexByte(rest, '\n'); k >= 0 {
			line, rest = rest[:k], rest[k+1:]
		} else {
			rest = ""
		}
		ln++
		body, ok := directive.StripLine(line)
		if !ok {
			continue
		}
		toks, err := directive.Lex(body)
		if err != nil {
			return nil, errf(ln, "%v", err)
		}
		if toks[0].Kind != directive.TokIdent {
			return nil, errf(ln, "statement must begin with a keyword or array name, found %s %q", toks[0].Kind, toks[0].Text)
		}
		kw := toks[0].Text
		switch {
		case kw == "DO":
			l, err := parseDoHeader(ln, toks)
			if err != nil {
				return nil, err
			}
			if len(stack) >= maxLoopDepth {
				return nil, errf(ln, "DO loops nested deeper than %d", maxLoopDepth)
			}
			add(l)
			stack = append(stack, l)
		case kw == "ENDDO" || kw == "END":
			if kw == "END" {
				if len(toks) != 3 || toks[1].Kind != directive.TokIdent || toks[1].Text != "DO" {
					return nil, errf(ln, "expected END DO")
				}
			} else if len(toks) != 2 {
				return nil, errf(ln, "unexpected text after ENDDO")
			}
			if len(stack) == 0 {
				return nil, errf(ln, "END DO without a matching DO")
			}
			stack = stack[:len(stack)-1]
		case kw == "PRINT":
			add(&printStmt{ln: ln, toks: toks})
		case kw == "FORALL":
			add(&forallStmt{ln: ln, toks: toks})
		case directiveKeywords[kw]:
			add(&dirLine{ln: ln, raw: line, keyword: kw})
		default:
			if hasAssign(toks) {
				add(&assignStmt{ln: ln, toks: toks})
			} else {
				return nil, errf(ln, "unknown statement %q (expected a directive, DO/END DO, FORALL, PRINT or an array assignment)", kw)
			}
		}
	}
	if len(stack) > 0 {
		return nil, errf(stack[len(stack)-1].ln, "DO without a matching END DO")
	}
	return top, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func hasAssign(toks []directive.Token) bool {
	for _, t := range toks {
		if t.Kind == directive.TokAssign {
			return true
		}
	}
	return false
}

// parseDoHeader parses "DO K = lo, hi [, step]"; the bound token
// ranges are kept for exec-time evaluation (they may reference outer
// loop variables).
func parseDoHeader(ln int, toks []directive.Token) (*doLoop, error) {
	if len(toks) < 4 || toks[1].Kind != directive.TokIdent {
		return nil, errf(ln, "expected DO <var> = <lo>, <hi>[, <step>]")
	}
	if toks[2].Kind != directive.TokAssign {
		return nil, errf(ln, "expected '=' after DO %s", toks[1].Text)
	}
	// Split the remainder (excluding the trailing EOF token) at
	// top-level commas.
	rest := toks[3 : len(toks)-1]
	var parts [][]directive.Token
	depth, start := 0, 0
	for i, t := range rest {
		switch t.Kind {
		case directive.TokLParen, directive.TokSlashParen:
			depth++
		case directive.TokRParen, directive.TokParenSlash:
			depth--
		case directive.TokComma:
			if depth == 0 {
				parts = append(parts, rest[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, rest[start:])
	if len(parts) < 2 || len(parts) > 3 {
		return nil, errf(ln, "DO bounds must be <lo>, <hi>[, <step>], got %d part(s)", len(parts))
	}
	for _, p := range parts {
		if len(p) == 0 {
			return nil, errf(ln, "empty DO bound expression")
		}
	}
	l := &doLoop{ln: ln, varName: toks[1].Text, lo: parts[0], hi: parts[1]}
	if len(parts) == 3 {
		l.step = parts[2]
	}
	return l, nil
}

// cursor walks one statement's token stream during exec-time
// resolution. The trailing EOF token is a hard stop: next never
// advances past it, so out-of-range reads are impossible by
// construction.
type cursor struct {
	ip    *Interp
	ln    int
	toks  []directive.Token
	i     int
	vars  map[string]int // FORALL index variables, bound per element
	depth int
}

func (c *cursor) peek() directive.Token { return c.toks[c.i] }

func (c *cursor) next() directive.Token {
	t := c.toks[c.i]
	if t.Kind != directive.TokEOF {
		c.i++
	}
	return t
}

func (c *cursor) at(k directive.TokKind) bool { return c.toks[c.i].Kind == k }

func (c *cursor) accept(k directive.TokKind) bool {
	if c.at(k) {
		c.i++
		return true
	}
	return false
}

func (c *cursor) expect(k directive.TokKind) (directive.Token, error) {
	if !c.at(k) {
		return directive.Token{}, errf(c.ln, "expected %s, found %s %q (column %d)", k, c.peek().Kind, c.peek().Text, c.peek().Pos+1)
	}
	return c.next(), nil
}

func (c *cursor) atEnd() bool { return c.at(directive.TokEOF) }

func (c *cursor) requireEnd() error {
	if !c.atEnd() {
		return errf(c.ln, "unexpected trailing %s %q (column %d)", c.peek().Kind, c.peek().Text, c.peek().Pos+1)
	}
	return nil
}

// maxExprDepth bounds parenthesis nesting in executable expressions,
// turning pathological inputs into errors instead of stack overflow.
const maxExprDepth = 64

// intExpr parses and evaluates an integer expression: +, -, *, /
// (integer division), parentheses, integer literals, the MOD, MIN and
// MAX intrinsics, FORALL/DO variables and named parameters.
func (c *cursor) intExpr() (int, error) { return c.addInt() }

func (c *cursor) addInt() (int, error) {
	v, err := c.mulInt()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case c.accept(directive.TokPlus):
			r, err := c.mulInt()
			if err != nil {
				return 0, err
			}
			v += r
		case c.accept(directive.TokMinus):
			r, err := c.mulInt()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (c *cursor) mulInt() (int, error) {
	v, err := c.unaryInt()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case c.accept(directive.TokStar):
			r, err := c.unaryInt()
			if err != nil {
				return 0, err
			}
			v *= r
		case c.accept(directive.TokSlash):
			r, err := c.unaryInt()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, errf(c.ln, "division by zero")
			}
			v /= r
		default:
			return v, nil
		}
	}
}

func (c *cursor) unaryInt() (int, error) {
	if c.accept(directive.TokMinus) {
		v, err := c.unaryInt()
		return -v, err
	}
	c.accept(directive.TokPlus)
	return c.primInt()
}

func (c *cursor) primInt() (int, error) {
	switch {
	case c.at(directive.TokNumber):
		t := c.next()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return 0, errf(c.ln, "expected an integer, got %q (column %d)", t.Text, t.Pos+1)
		}
		return v, nil
	case c.accept(directive.TokLParen):
		c.depth++
		if c.depth > maxExprDepth {
			return 0, errf(c.ln, "expression nested deeper than %d", maxExprDepth)
		}
		v, err := c.addInt()
		c.depth--
		if err != nil {
			return 0, err
		}
		if _, err := c.expect(directive.TokRParen); err != nil {
			return 0, err
		}
		return v, nil
	case c.at(directive.TokIdent):
		t := c.next()
		switch t.Text {
		case "MOD", "MIN", "MAX":
			return c.intrinsicInt(t.Text)
		}
		if c.vars != nil {
			if v, ok := c.vars[t.Text]; ok {
				return v, nil
			}
		}
		if v, ok := c.ip.param(t.Text); ok {
			return v, nil
		}
		return 0, errf(c.ln, "unknown identifier %q in expression (not a parameter or loop variable; column %d)", t.Text, t.Pos+1)
	default:
		return 0, errf(c.ln, "expected an expression, found %s %q (column %d)", c.peek().Kind, c.peek().Text, c.peek().Pos+1)
	}
}

func (c *cursor) intrinsicInt(name string) (int, error) {
	if _, err := c.expect(directive.TokLParen); err != nil {
		return 0, err
	}
	var args []int
	for {
		v, err := c.addInt()
		if err != nil {
			return 0, err
		}
		args = append(args, v)
		if !c.accept(directive.TokComma) {
			break
		}
	}
	if _, err := c.expect(directive.TokRParen); err != nil {
		return 0, err
	}
	if len(args) < 2 {
		return 0, errf(c.ln, "%s requires at least two arguments", name)
	}
	switch name {
	case "MOD":
		if len(args) != 2 {
			return 0, errf(c.ln, "MOD takes exactly two arguments")
		}
		if args[1] == 0 {
			return 0, errf(c.ln, "MOD by zero")
		}
		return args[0] % args[1], nil
	case "MIN":
		best := args[0]
		for _, v := range args[1:] {
			if v < best {
				best = v
			}
		}
		return best, nil
	default: // MAX
		best := args[0]
		for _, v := range args[1:] {
			if v > best {
				best = v
			}
		}
		return best, nil
	}
}
