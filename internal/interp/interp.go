// Package interp executes whole programs written in the paper's
// directive language. It is the tree-walking back half of the front
// end: package directive parses and applies the declaration and
// mapping statements (PROCESSORS, DISTRIBUTE, ALIGN, REDISTRIBUTE,
// ...), and this package adds the executable subset the paper's
// example codes use — array-assignment statements over sections,
// FORALL initialization, bounded DO loops, subscripted (indirection
// vector) gathers and scatters, and PRINT of reductions or elements —
// compiling each statement onto hpf.Program / hpf.DistArray so one
// program text runs unchanged on every engine (sim | spmd) and every
// wire (inproc | shm | tcp).
//
// The interpreter is deterministic by construction: statements
// execute in textual order, arrays materialize in first-use order,
// and every output value is formatted identically on every backend,
// so program results (values, printed output and the logical machine
// report) can be diffed byte-for-byte across engine × transport —
// the same identity contract the hand-written workloads assert.
//
// Resource use is bounded (Options.MaxStatements, Options.MaxElems),
// making the interpreter safe to drive from fuzzers with arbitrary
// program text.
package interp

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hpfnt/hpf"
	"hpfnt/internal/directive"
	"hpfnt/internal/index"
)

// Options bound the interpreter's resource usage.
type Options struct {
	// MaxStatements is the executed-statement budget (DO loop
	// iterations count once per iteration). 0 means DefaultMaxStatements.
	MaxStatements int
	// MaxElems caps the element count of any materialized array.
	// 0 means DefaultMaxElems.
	MaxElems int
}

// The default resource bounds.
const (
	DefaultMaxStatements = 1 << 20
	DefaultMaxElems      = 1 << 24
)

// Result is the observable outcome of a program run: everything in it
// must be byte-identical across engines and transports for the same
// program.
type Result struct {
	// Output is the accumulated PRINT output.
	Output string
	// Names lists the materialized arrays in materialization order.
	Names []string
	// Values holds each materialized array's dense global values.
	Values map[string][]float64
	// Report is the machine-counter snapshot at program end. Compare
	// Report.Logical() across backends (phase attribution is
	// engine-local).
	Report hpf.Report
}

// Interp executes directive-language programs against an hpf.Program.
type Interp struct {
	prog *hpf.Program
	opts Options

	out    strings.Builder
	arrays map[string]*hpf.DistArray
	order  []string
	scheds map[string]*hpf.Schedule
	steps  int
}

// New creates an interpreter over prog with default resource bounds.
func New(prog *hpf.Program) *Interp { return NewWith(prog, Options{}) }

// NewWith creates an interpreter with explicit resource bounds.
func NewWith(prog *hpf.Program, opts Options) *Interp {
	if opts.MaxStatements <= 0 {
		opts.MaxStatements = DefaultMaxStatements
	}
	if opts.MaxElems <= 0 {
		opts.MaxElems = DefaultMaxElems
	}
	return &Interp{
		prog:   prog,
		opts:   opts,
		arrays: map[string]*hpf.DistArray{},
		scheds: map[string]*hpf.Schedule{},
	}
}

// Run parses and executes src, returning the observable result.
// Calling Run again continues in the same program state.
func (ip *Interp) Run(src string) (*Result, error) {
	nodes, err := parseProgram(src)
	if err != nil {
		return nil, err
	}
	for _, n := range nodes {
		if err := ip.exec(n); err != nil {
			return nil, err
		}
	}
	res := &Result{
		Output: ip.out.String(),
		Names:  append([]string(nil), ip.order...),
		Values: make(map[string][]float64, len(ip.order)),
		Report: ip.prog.Stats(),
	}
	for _, name := range ip.order {
		res.Values[name] = ip.arrays[name].Data()
	}
	return res, nil
}

// Check parses src without executing it, reporting the first syntax
// error (statement-level only; subscript resolution happens at
// execution time).
func Check(src string) error {
	_, err := parseProgram(src)
	return err
}

// param resolves a named integer parameter of the directive layer.
func (ip *Interp) param(name string) (int, bool) {
	v, ok := ip.prog.Interp.Params[name]
	return v, ok
}

// paramArray resolves a named integer vector (PARAMETER ... = (/../)
// or SetParamArray).
func (ip *Interp) paramArray(name string) ([]int, bool) {
	v, ok := ip.prog.Interp.ParamArrays[name]
	return v, ok
}

// charge spends n statements of the execution budget.
func (ip *Interp) charge(ln, n int) error {
	ip.steps += n
	if ip.steps > ip.opts.MaxStatements {
		return errf(ln, "statement budget exceeded (%d executed statements; raise Options.MaxStatements)", ip.opts.MaxStatements)
	}
	return nil
}

// array returns the materialized runtime array for name,
// materializing it on first executable use. Materialization order is
// textual first-use order, which is identical on every backend (and
// on every process of a multi-process spmd job).
func (ip *Interp) array(ln int, name string) (*hpf.DistArray, error) {
	if a, ok := ip.arrays[name]; ok {
		return a, nil
	}
	ca, ok := ip.prog.Unit.Array(name)
	if !ok {
		return nil, errf(ln, "unknown array %q (declare it with REAL/INTEGER first)", name)
	}
	if !ca.Created {
		return nil, errf(ln, "array %q is not allocated", name)
	}
	if size := ca.Dom.Size(); size > ip.opts.MaxElems {
		return nil, errf(ln, "array %q has %d elements, above the interpreter cap %d", name, size, ip.opts.MaxElems)
	}
	a, err := ip.prog.NewArray(name)
	if err != nil {
		return nil, errf(ln, "%v", err)
	}
	ip.arrays[name] = a
	ip.order = append(ip.order, name)
	return a, nil
}

// exec dispatches one AST node.
func (ip *Interp) exec(n node) error {
	if err := ip.charge(n.line(), 1); err != nil {
		return err
	}
	switch t := n.(type) {
	case *dirLine:
		return ip.execDirective(t)
	case *assignStmt:
		r, err := ip.resolveAssign(t)
		if err != nil {
			return err
		}
		return ip.execResolved(t.ln, r, 1)
	case *forallStmt:
		return ip.execForall(t)
	case *printStmt:
		return ip.execPrint(t)
	case *doLoop:
		return ip.execLoop(t)
	default:
		return errf(n.line(), "internal: unknown node %T", n)
	}
}

// execDirective delegates a declaration/mapping line to package
// directive, then remaps materialized arrays if the line can have
// changed a mapping.
func (ip *Interp) execDirective(d *dirLine) error {
	if err := ip.prog.Interp.ExecLine(d.raw); err != nil {
		return errf(d.ln, "%v", err)
	}
	if remapKeywords[d.keyword] {
		return ip.remapAll(d.ln)
	}
	return nil
}

// remapAll moves every materialized array to its currently recorded
// mapping and drops compiled schedules (they are mapping-specific).
// Arrays deallocated by the directive are dropped from the run.
func (ip *Interp) remapAll(ln int) error {
	ip.scheds = map[string]*hpf.Schedule{}
	keep := ip.order[:0]
	for _, name := range ip.order {
		ca, ok := ip.prog.Unit.Array(name)
		if !ok || !ca.Created {
			delete(ip.arrays, name)
			continue
		}
		if _, err := ip.arrays[name].Remap(); err != nil {
			return errf(ln, "remapping %s: %v", name, err)
		}
		keep = append(keep, name)
	}
	ip.order = keep
	return nil
}

// sub is one resolved subscript of an executable array reference.
type sub struct {
	vec    []int // non-nil: indirection vector subscript
	tr     index.Triplet
	scalar bool // written as a single index, not a section
}

// resolved is one fully resolved assignment statement, ready to
// execute (and, for schedule-backed kinds, to cache by signature).
type resolved struct {
	kind rKind
	lhs  *hpf.DistArray

	// rAssign
	region index.Domain
	terms  []hpf.AssignTerm

	// rIrregular
	src    *hpf.DistArray
	writes []int
	reads  []int
	coeffs []float64

	// rFill
	fillVal   float64
	fillWhole bool

	key string // schedule cache key; "" for rFill
}

type rKind int

const (
	rFill rKind = iota
	rAssign
	rIrregular
)

// resolveAssign parses and resolves one assignment statement against
// the current program state (array domains, parameter values, loop
// variables).
func (ip *Interp) resolveAssign(st *assignStmt) (*resolved, error) {
	c := &cursor{ip: ip, ln: st.ln, toks: st.toks}
	lhsName, lhsSubs, err := ip.parseRef(c)
	if err != nil {
		return nil, err
	}
	if _, err := c.expect(directive.TokAssign); err != nil {
		return nil, err
	}
	terms, err := ip.parseRHS(c)
	if err != nil {
		return nil, err
	}
	if err := c.requireEnd(); err != nil {
		return nil, err
	}
	lhs, err := ip.array(st.ln, lhsName)
	if err != nil {
		return nil, err
	}

	lhsVecs := countVecs(lhsSubs)
	rhsVecs := 0
	nRefs := 0
	for _, t := range terms {
		if !t.isConst {
			nRefs++
			rhsVecs += countVecs(t.subs)
		}
	}
	switch {
	case lhsVecs == 0 && rhsVecs == 0 && nRefs == 0:
		return ip.resolveFill(st.ln, lhs, lhsName, lhsSubs, terms)
	case lhsVecs == 0 && rhsVecs == 0:
		return ip.resolveRegular(st.ln, lhs, lhsName, lhsSubs, terms)
	default:
		_ = lhsVecs
		return ip.resolveIrregular(st.ln, lhs, lhsName, lhsSubs, terms)
	}
}

func countVecs(subs []sub) int {
	n := 0
	for _, s := range subs {
		if s.vec != nil {
			n++
		}
	}
	return n
}

// rterm is one parsed right-hand-side term before resolution.
type rterm struct {
	coeff   float64
	isConst bool
	name    string
	subs    []sub
	ln      int
}

// parseRef parses NAME(sub, ...) resolving each subscript against the
// array's domain. The array is materialized here so its domain is
// available for ":" defaults.
func (ip *Interp) parseRef(c *cursor) (string, []sub, error) {
	t, err := c.expect(directive.TokIdent)
	if err != nil {
		return "", nil, err
	}
	name := t.Text
	arr, err := ip.array(c.ln, name)
	if err != nil {
		return "", nil, err
	}
	dom := arr.Shape()
	if _, err := c.expect(directive.TokLParen); err != nil {
		return "", nil, err
	}
	var subs []sub
	for dim := 0; ; dim++ {
		if dim >= dom.Rank() {
			return "", nil, errf(c.ln, "too many subscripts for %s (rank %d)", name, dom.Rank())
		}
		s, err := ip.parseSubscript(c, dom.Dims[dim])
		if err != nil {
			return "", nil, err
		}
		subs = append(subs, s)
		if c.accept(directive.TokComma) {
			continue
		}
		break
	}
	if _, err := c.expect(directive.TokRParen); err != nil {
		return "", nil, err
	}
	if len(subs) != dom.Rank() {
		return "", nil, errf(c.ln, "%s has rank %d but %d subscript(s) given", name, dom.Rank(), len(subs))
	}
	return name, subs, nil
}

// parseSubscript parses one subscript position: an indirection-vector
// name, a scalar index expression, or a section triplet lo:hi[:step]
// with ":" defaults taken from the array dimension def.
func (ip *Interp) parseSubscript(c *cursor, def index.Triplet) (sub, error) {
	// Indirection vector: a bare identifier naming a parameter array,
	// directly followed by ',' or ')'.
	if c.at(directive.TokIdent) {
		after := c.toks[c.i+1].Kind
		if after == directive.TokComma || after == directive.TokRParen {
			if vec, ok := ip.paramArray(c.peek().Text); ok {
				c.next()
				return sub{vec: vec}, nil
			}
		}
	}
	lo, hi, step := def.Low, def.Last(), 1
	if !c.at(directive.TokColon) {
		v, err := c.intExpr()
		if err != nil {
			return sub{}, err
		}
		if !c.at(directive.TokColon) {
			return sub{tr: index.Unit(v, v), scalar: true}, nil
		}
		lo = v
	}
	c.next() // ':'
	if !c.at(directive.TokComma) && !c.at(directive.TokRParen) && !c.at(directive.TokColon) {
		v, err := c.intExpr()
		if err != nil {
			return sub{}, err
		}
		hi = v
	}
	if c.accept(directive.TokColon) {
		v, err := c.intExpr()
		if err != nil {
			return sub{}, err
		}
		step = v
	}
	if step <= 0 {
		return sub{}, errf(c.ln, "section stride must be positive, got %d", step)
	}
	return sub{tr: index.Triplet{Low: lo, High: hi, Stride: step}}, nil
}

// parseRHS parses coeff*REF ± ... ± const.
func (ip *Interp) parseRHS(c *cursor) ([]rterm, error) {
	var terms []rterm
	sign := 1.0
	if c.accept(directive.TokMinus) {
		sign = -1
	} else {
		c.accept(directive.TokPlus)
	}
	for {
		t, err := ip.parseTerm(c, sign)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		switch {
		case c.accept(directive.TokPlus):
			sign = 1
		case c.accept(directive.TokMinus):
			sign = -1
		default:
			return terms, nil
		}
	}
}

// parseTerm parses one RHS term: NUMBER, NUMBER '*' REF, or REF.
func (ip *Interp) parseTerm(c *cursor, sign float64) (rterm, error) {
	if c.at(directive.TokNumber) {
		t := c.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return rterm{}, errf(c.ln, "bad number %q (column %d)", t.Text, t.Pos+1)
		}
		v *= sign
		if c.accept(directive.TokSlash) {
			d, err := c.expect(directive.TokNumber)
			if err != nil {
				return rterm{}, err
			}
			dv, err := strconv.ParseFloat(d.Text, 64)
			if err != nil || dv == 0 {
				return rterm{}, errf(c.ln, "bad divisor %q (column %d)", d.Text, d.Pos+1)
			}
			v /= dv
		}
		if !c.accept(directive.TokStar) {
			return rterm{coeff: v, isConst: true, ln: c.ln}, nil
		}
		name, subs, err := ip.parseRef(c)
		if err != nil {
			return rterm{}, err
		}
		return rterm{coeff: v, name: name, subs: subs, ln: c.ln}, nil
	}
	name, subs, err := ip.parseRef(c)
	if err != nil {
		return rterm{}, err
	}
	return rterm{coeff: sign, name: name, subs: subs, ln: c.ln}, nil
}

// checkSection validates a resolved subscript against its dimension.
func checkSection(ln int, name string, dim int, s sub, def index.Triplet) error {
	if s.tr.Empty() {
		return nil
	}
	if s.tr.Low < def.Low || s.tr.Last() > def.High {
		return errf(ln, "subscript %s of %s dimension %d is outside %s", s.tr, name, dim+1, def)
	}
	return nil
}

// resolveFill folds a constant right-hand side.
func (ip *Interp) resolveFill(ln int, lhs *hpf.DistArray, name string, subs []sub, terms []rterm) (*resolved, error) {
	v := 0.0
	for _, t := range terms {
		v += t.coeff
	}
	dom := lhs.Shape()
	whole := true
	dims := make([]index.Triplet, len(subs))
	for d, s := range subs {
		if err := checkSection(ln, name, d, s, dom.Dims[d]); err != nil {
			return nil, err
		}
		dims[d] = s.tr
		if s.scalar || s.tr != dom.Dims[d] {
			whole = false
		}
	}
	return &resolved{
		kind:      rFill,
		lhs:       lhs,
		region:    index.New(dims...),
		fillVal:   v,
		fillWhole: whole,
	}, nil
}

// resolveRegular builds the section-assignment form
// lhs(region) = Σ coeff·src(t+shift): per dimension the source
// section must have the same element count and stride as the
// left-hand side's, and the shift is the difference of lower bounds.
func (ip *Interp) resolveRegular(ln int, lhs *hpf.DistArray, lhsName string, lhsSubs []sub, terms []rterm) (*resolved, error) {
	dom := lhs.Shape()
	dims := make([]index.Triplet, len(lhsSubs))
	for d, s := range lhsSubs {
		if err := checkSection(ln, lhsName, d, s, dom.Dims[d]); err != nil {
			return nil, err
		}
		dims[d] = s.tr
	}
	region := index.New(dims...)

	var key strings.Builder
	fmt.Fprintf(&key, "A|%s|%s", lhsName, region)
	var aterms []hpf.AssignTerm
	for _, t := range terms {
		if t.isConst {
			return nil, errf(t.ln, "constant addends are not supported alongside array references (write the constant into its own array)")
		}
		src, err := ip.array(t.ln, t.name)
		if err != nil {
			return nil, err
		}
		sdom := src.Shape()
		if sdom.Rank() != len(dims) {
			return nil, errf(t.ln, "rank mismatch: %s has rank %d, assignment region has rank %d", t.name, sdom.Rank(), len(dims))
		}
		shift := make([]int, len(dims))
		for d, s := range t.subs {
			if err := checkSection(ln, t.name, d, s, sdom.Dims[d]); err != nil {
				return nil, err
			}
			if s.tr.Count() != dims[d].Count() {
				return nil, errf(t.ln, "dimension %d: %s section %s has %d elements, left-hand side %s has %d",
					d+1, t.name, s.tr, s.tr.Count(), dims[d], dims[d].Count())
			}
			if dims[d].Count() > 1 && s.tr.Stride != dims[d].Stride {
				return nil, errf(t.ln, "dimension %d: %s section stride %d differs from left-hand side stride %d",
					d+1, t.name, s.tr.Stride, dims[d].Stride)
			}
			shift[d] = s.tr.Low - dims[d].Low
		}
		aterms = append(aterms, hpf.Read(src, t.coeff, shift...))
		fmt.Fprintf(&key, "|%s*%s%v", strconv.FormatFloat(t.coeff, 'g', -1, 64), t.name, shift)
	}
	return &resolved{
		kind:   rAssign,
		lhs:    lhs,
		region: region,
		terms:  aterms,
		key:    key.String(),
	}, nil
}

// resolveIrregular builds the inspector-executor form from statements
// with indirection-vector subscripts: gather Y(l:u) = c*X(V),
// scatter Y(V) = c*X(l:u), or the doubly indirect Y(W) = c*X(V).
func (ip *Interp) resolveIrregular(ln int, lhs *hpf.DistArray, lhsName string, lhsSubs []sub, terms []rterm) (*resolved, error) {
	if len(terms) != 1 || terms[0].isConst {
		return nil, errf(ln, "indirection-vector assignment takes exactly one array reference on the right-hand side")
	}
	t := terms[0]
	if len(lhsSubs) != 1 {
		return nil, errf(ln, "indirection-vector assignment requires a rank-1 left-hand side, %s has rank %d", lhsName, len(lhsSubs))
	}
	src, err := ip.array(t.ln, t.name)
	if err != nil {
		return nil, err
	}
	if len(t.subs) != 1 {
		return nil, errf(t.ln, "indirection-vector assignment requires a rank-1 right-hand side, %s has rank %d", t.name, len(t.subs))
	}
	writes, err := expandSide(ln, lhsName, lhs, lhsSubs[0])
	if err != nil {
		return nil, err
	}
	reads, err := expandSide(ln, t.name, src, t.subs[0])
	if err != nil {
		return nil, err
	}
	if len(writes) != len(reads) {
		return nil, errf(ln, "left-hand side selects %d elements, right-hand side %d", len(writes), len(reads))
	}
	var coeffs []float64
	if t.coeff != 1 {
		coeffs = make([]float64, len(writes))
		for i := range coeffs {
			coeffs[i] = t.coeff
		}
	}
	h := fnv.New64a()
	for _, v := range writes {
		fmt.Fprintf(h, "%d,", v)
	}
	fmt.Fprint(h, ";")
	for _, v := range reads {
		fmt.Fprintf(h, "%d,", v)
	}
	key := fmt.Sprintf("I|%s|%s|%s|%x", lhsName, t.name,
		strconv.FormatFloat(t.coeff, 'g', -1, 64), h.Sum64())
	return &resolved{
		kind:   rIrregular,
		lhs:    lhs,
		src:    src,
		writes: writes,
		reads:  reads,
		coeffs: coeffs,
		key:    key,
	}, nil
}

// expandSide turns one rank-1 side of an irregular statement into its
// global index list: either the indirection vector itself or the
// expansion of the section triplet. (Index bounds are validated by
// hpf.NewIrregular.)
func expandSide(ln int, name string, arr *hpf.DistArray, s sub) ([]int, error) {
	if s.vec != nil {
		return s.vec, nil
	}
	if arr.Shape().Rank() != 1 {
		return nil, errf(ln, "indirection-vector assignment requires rank-1 arrays, %s has rank %d", name, arr.Shape().Rank())
	}
	n := s.tr.Count()
	out := make([]int, n)
	for k := 0; k < n; k++ {
		out[k] = s.tr.At(k)
	}
	return out, nil
}

// schedule returns the compiled schedule for r, building and caching
// it on first use. Cached schedules are dropped whenever a directive
// can have changed a mapping (remapAll).
func (ip *Interp) schedule(ln int, r *resolved) (*hpf.Schedule, error) {
	if s, ok := ip.scheds[r.key]; ok {
		cacheHits.Add(1)
		return s, nil
	}
	cacheMisses.Add(1)
	var s *hpf.Schedule
	var err error
	switch r.kind {
	case rAssign:
		s, err = r.lhs.NewSchedule(r.region, r.terms...)
	case rIrregular:
		s, err = r.lhs.NewIrregular(r.src, r.writes, r.reads, r.coeffs)
	}
	if err != nil {
		return nil, errf(ln, "%v", err)
	}
	ip.scheds[r.key] = s
	return s, nil
}

// execResolved executes a resolved statement iters times (iters > 1
// only on the invariant-loop fast path, which replays the compiled
// schedule).
func (ip *Interp) execResolved(ln int, r *resolved, iters int) error {
	switch r.kind {
	case rFill:
		if r.region.Empty() {
			return nil
		}
		if r.fillWhole {
			v := r.fillVal
			r.lhs.Fill(func(index.Tuple) float64 { return v })
			return nil
		}
		r.region.ForEach(func(t index.Tuple) bool {
			r.lhs.Set(t, r.fillVal)
			return true
		})
		return nil
	case rAssign:
		if r.region.Empty() {
			return nil
		}
	}
	s, err := ip.schedule(ln, r)
	if err != nil {
		return err
	}
	if iters == 1 {
		err = s.Run()
	} else {
		err = s.RunN(iters)
	}
	if err != nil {
		return errf(ln, "%v", err)
	}
	return nil
}

// execLoop runs DO var = lo, hi[, step] ... END DO. A loop whose body
// is a single assignment not referencing the loop variable compiles
// once and replays via RunN — the compiled-schedule path the paper's
// iterated stencils rely on.
func (ip *Interp) execLoop(l *doLoop) error {
	evalBound := func(toks []directive.Token) (int, error) {
		c := &cursor{ip: ip, ln: l.ln, toks: append(append([]directive.Token(nil), toks...), directive.Token{Kind: directive.TokEOF})}
		v, err := c.intExpr()
		if err != nil {
			return 0, err
		}
		return v, c.requireEnd()
	}
	lo, err := evalBound(l.lo)
	if err != nil {
		return err
	}
	hi, err := evalBound(l.hi)
	if err != nil {
		return err
	}
	step := 1
	if l.step != nil {
		if step, err = evalBound(l.step); err != nil {
			return err
		}
		if step == 0 {
			return errf(l.ln, "DO step must be nonzero")
		}
	}
	tr := index.Triplet{Low: lo, High: hi, Stride: step}
	n := tr.Count()
	if n == 0 {
		return nil
	}
	if st, ok := l.invariantBody(); ok {
		r, err := ip.resolveAssign(st)
		if err != nil {
			return err
		}
		if r.kind != rFill {
			if err := ip.charge(l.ln, n); err != nil {
				return err
			}
			return ip.execResolved(st.ln, r, n)
		}
	}
	for k := 0; k < n; k++ {
		ip.prog.SetParam(l.varName, tr.At(k))
		for _, nd := range l.body {
			if err := ip.exec(nd); err != nil {
				return err
			}
		}
	}
	return nil
}

// invariantBody reports whether the loop body is a single assignment
// that never mentions the loop variable.
func (l *doLoop) invariantBody() (*assignStmt, bool) {
	if len(l.body) != 1 {
		return nil, false
	}
	st, ok := l.body[0].(*assignStmt)
	if !ok {
		return nil, false
	}
	for _, t := range st.toks {
		if t.Kind == directive.TokIdent && t.Text == l.varName {
			return nil, false
		}
	}
	return st, true
}

// execForall runs FORALL (I = l:u, ...) NAME(I, ...) = int-expr as a
// whole-array Fill. The ranges must span the array's full domain and
// the left-hand subscripts must be exactly the index variables in
// order, so the statement is a pure element-wise initialization (the
// form the paper's example codes use to set up operands).
func (ip *Interp) execForall(f *forallStmt) error {
	c := &cursor{ip: ip, ln: f.ln, toks: f.toks}
	c.next() // FORALL
	if _, err := c.expect(directive.TokLParen); err != nil {
		return err
	}
	var vars []string
	var ranges []index.Triplet
	for {
		t, err := c.expect(directive.TokIdent)
		if err != nil {
			return err
		}
		for _, v := range vars {
			if v == t.Text {
				return errf(f.ln, "duplicate FORALL index %s", t.Text)
			}
		}
		if _, err := c.expect(directive.TokAssign); err != nil {
			return err
		}
		lo, err := c.intExpr()
		if err != nil {
			return err
		}
		if _, err := c.expect(directive.TokColon); err != nil {
			return err
		}
		hi, err := c.intExpr()
		if err != nil {
			return err
		}
		vars = append(vars, t.Text)
		ranges = append(ranges, index.Unit(lo, hi))
		if c.accept(directive.TokComma) {
			continue
		}
		break
	}
	if _, err := c.expect(directive.TokRParen); err != nil {
		return err
	}
	nameTok, err := c.expect(directive.TokIdent)
	if err != nil {
		return err
	}
	arr, err := ip.array(f.ln, nameTok.Text)
	if err != nil {
		return err
	}
	dom := arr.Shape()
	if dom.Rank() != len(vars) {
		return errf(f.ln, "FORALL has %d index variable(s) but %s has rank %d", len(vars), nameTok.Text, dom.Rank())
	}
	for d, r := range ranges {
		if r.Low != dom.Dims[d].Low || r.High != dom.Dims[d].Last() {
			return errf(f.ln, "FORALL range %s must span %s dimension %d exactly (%s)", r, nameTok.Text, d+1, dom.Dims[d])
		}
	}
	if _, err := c.expect(directive.TokLParen); err != nil {
		return err
	}
	for i, v := range vars {
		t, err := c.expect(directive.TokIdent)
		if err != nil {
			return err
		}
		if t.Text != v {
			return errf(f.ln, "FORALL left-hand subscript %d must be %s, got %s", i+1, v, t.Text)
		}
		if i < len(vars)-1 {
			if _, err := c.expect(directive.TokComma); err != nil {
				return err
			}
		}
	}
	if _, err := c.expect(directive.TokRParen); err != nil {
		return err
	}
	if _, err := c.expect(directive.TokAssign); err != nil {
		return err
	}
	rhs := c.toks[c.i:]
	// Validate the expression once against dummy bindings so malformed
	// programs fail before the (error-less) Fill callback runs.
	probe := &cursor{ip: ip, ln: f.ln, toks: rhs, vars: map[string]int{}}
	for _, v := range vars {
		probe.vars[v] = 1
	}
	if _, err := probe.intExpr(); err != nil {
		return err
	}
	if err := probe.requireEnd(); err != nil {
		return err
	}

	// The Fill callback runs concurrently on the spmd backend; each
	// invocation gets its own cursor and bindings. Value-dependent
	// evaluation errors (MOD by a zero that only some elements hit)
	// yield 0 for that element and surface once after the fill.
	var once sync.Once
	var fillErr error
	arr.Fill(func(t index.Tuple) float64 {
		env := make(map[string]int, len(vars))
		for i, v := range vars {
			env[v] = t[i]
		}
		ec := &cursor{ip: ip, ln: f.ln, toks: rhs, vars: env}
		v, err := ec.intExpr()
		if err != nil {
			once.Do(func() { fillErr = err })
			return 0
		}
		return float64(v)
	})
	return fillErr
}

// execPrint runs PRINT SUM(A) | MAXVAL(A) | MINVAL(A) | A(i, ...),
// appending one deterministic line to the program output.
func (ip *Interp) execPrint(p *printStmt) error {
	c := &cursor{ip: ip, ln: p.ln, toks: p.toks}
	c.next() // PRINT
	t, err := c.expect(directive.TokIdent)
	if err != nil {
		return err
	}
	switch t.Text {
	case "SUM", "MAXVAL", "MINVAL":
		if _, err := c.expect(directive.TokLParen); err != nil {
			return err
		}
		nameTok, err := c.expect(directive.TokIdent)
		if err != nil {
			return err
		}
		if _, err := c.expect(directive.TokRParen); err != nil {
			return err
		}
		if err := c.requireEnd(); err != nil {
			return err
		}
		arr, err := ip.array(p.ln, nameTok.Text)
		if err != nil {
			return err
		}
		op := hpf.Sum
		switch t.Text {
		case "MAXVAL":
			op = hpf.Max
		case "MINVAL":
			op = hpf.Min
		}
		v, err := arr.Reduce(op)
		if err != nil {
			return errf(p.ln, "%v", err)
		}
		fmt.Fprintf(&ip.out, "%s(%s) = %s\n", t.Text, nameTok.Text, formatValue(v))
		return nil
	default:
		if _, err := c.expect(directive.TokLParen); err != nil {
			return err
		}
		var idx []int
		var strs []string
		for {
			v, err := c.intExpr()
			if err != nil {
				return err
			}
			idx = append(idx, v)
			strs = append(strs, strconv.Itoa(v))
			if c.accept(directive.TokComma) {
				continue
			}
			break
		}
		if _, err := c.expect(directive.TokRParen); err != nil {
			return err
		}
		if err := c.requireEnd(); err != nil {
			return err
		}
		arr, err := ip.array(p.ln, t.Text)
		if err != nil {
			return err
		}
		tup := index.Tuple(idx)
		if len(idx) != arr.Shape().Rank() || !arr.Shape().Contains(tup) {
			return errf(p.ln, "element %s(%s) is outside %s", t.Text, strings.Join(strs, ","), arr.Shape())
		}
		fmt.Fprintf(&ip.out, "%s(%s) = %s\n", t.Text, strings.Join(strs, ","), formatValue(arr.At(tup)))
		return nil
	}
}

// formatValue renders a float deterministically for PRINT output and
// golden fixtures.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// SortedNames returns the materialized array names sorted, for
// deterministic diagnostics.
func (r *Result) SortedNames() []string {
	names := append([]string(nil), r.Names...)
	sort.Strings(names)
	return names
}
