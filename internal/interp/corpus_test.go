package interp_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpfnt/hpf"
	"hpfnt/internal/interp"
)

var update = flag.Bool("update", false, "rewrite the corpus golden fixtures from the sim/inproc oracle")

// loadCorpus returns the corpus program paths.
func loadCorpus(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "programs", "*.hpf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("corpus has %d programs, want at least 6", len(paths))
	}
	return paths
}

// runCorpusProgram runs one corpus file on an explicit backend,
// honoring the file's embedded !hpfrun: options.
func runCorpusProgram(t *testing.T, path, engineKind, transportKind string) *interp.Result {
	t.Helper()
	src, err := interp.ReadSource(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := interp.Config{
		Name:      strings.TrimSuffix(filepath.Base(path), ".hpf"),
		Engine:    engineKind,
		Transport: transportKind,
	}
	if err := interp.ScanFileOptions(src, &cfg); err != nil {
		t.Fatal(err)
	}
	res, err := cfg.Run(src)
	if err != nil {
		t.Fatalf("%s on %s/%s: %v", path, engineKind, transportKind, err)
	}
	return res
}

// describeResult renders a result in the stable text form stored in
// the .golden fixtures: the PRINT output, then per-array checksums.
func describeResult(r *interp.Result) string {
	var b strings.Builder
	b.WriteString(r.Output)
	for _, name := range r.SortedNames() {
		sum := 0.0
		for _, v := range r.Values[name] {
			sum += v
		}
		fmt.Fprintf(&b, "array %s n=%d checksum=%s\n", name, len(r.Values[name]), formatChecksum(sum))
	}
	return b.String()
}

func formatChecksum(v float64) string { return strings.TrimSpace(fmt.Sprintf("%.17g", v)) }

// sameResult asserts the full identity contract between two runs:
// byte-identical PRINT output, element-identical values for every
// materialized array, and equal logical machine reports.
func sameResult(t *testing.T, label string, want, got *interp.Result) {
	t.Helper()
	if want.Output != got.Output {
		t.Errorf("%s: output differs\noracle:\n%s\ngot:\n%s", label, want.Output, got.Output)
	}
	if len(want.Names) != len(got.Names) {
		t.Fatalf("%s: oracle materialized %v, got %v", label, want.Names, got.Names)
	}
	for i := range want.Names {
		if want.Names[i] != got.Names[i] {
			t.Fatalf("%s: materialization order differs: oracle %v, got %v", label, want.Names, got.Names)
		}
	}
	for _, name := range want.Names {
		wv, gv := want.Values[name], got.Values[name]
		if len(wv) != len(gv) {
			t.Fatalf("%s: %s has %d elements on oracle, %d here", label, name, len(wv), len(gv))
		}
		for i := range wv {
			if wv[i] != gv[i] {
				t.Fatalf("%s: %s[%d] = %v on oracle, %v here", label, name, i, wv[i], gv[i])
			}
		}
	}
	if wl, gl := want.Report.Logical(), got.Report.Logical(); wl != gl {
		t.Errorf("%s: logical report differs\noracle: %+v\ngot:    %+v", label, wl, gl)
	}
}

// TestCorpusGolden checks every corpus program against its .golden
// fixture on the sim/inproc oracle, then asserts the full identity
// contract for every engine × transport combination. Regenerate
// fixtures with: go test ./internal/interp -run TestCorpusGolden -update
func TestCorpusGolden(t *testing.T) {
	for _, path := range loadCorpus(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".hpf")
		t.Run(name, func(t *testing.T) {
			oracle := runCorpusProgram(t, path, "sim", "inproc")
			goldenPath := strings.TrimSuffix(path, ".hpf") + ".golden"
			text := describeResult(oracle)
			if *update {
				if err := os.WriteFile(goldenPath, []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update): %v", err)
			}
			if string(want) != text {
				t.Errorf("golden mismatch for %s\nwant:\n%s\ngot:\n%s", name, want, text)
			}
			for _, engineKind := range hpf.Engines() {
				for _, transportKind := range hpf.Transports() {
					if engineKind == "sim" && transportKind == "inproc" {
						continue // the oracle itself
					}
					label := engineKind + "/" + transportKind
					t.Run(label, func(t *testing.T) {
						got := runCorpusProgram(t, path, engineKind, transportKind)
						sameResult(t, name+" on "+label, oracle, got)
					})
				}
			}
		})
	}
}
