package interp

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"hpfnt/hpf"
)

// Config gathers everything needed to run a program text: the
// execution backend, the wire, the processor count and the input
// parameters. It is the shared program-loading entry point of
// cmd/hpfrun, cmd/hpfmap and the corpus tests.
type Config struct {
	// Name labels the program unit (defaults to "main").
	Name string
	// NP is the processor count (defaults to 8).
	NP int
	// Engine is the execution backend, "" for the session default.
	Engine string
	// Transport is the spmd wire, "" for the session default.
	Transport string
	// Vienna selects the Vienna Fortran balanced BLOCK variant.
	Vienna bool
	// Templates enables the HPF baseline TEMPLATE model.
	Templates bool
	// Params are integer inputs (PARAMETER-like, READ targets).
	Params map[string]int
	// ParamArrays are integer vector inputs (GENERAL_BLOCK bounds,
	// indirection vectors).
	ParamArrays map[string][]int
	// Limits bound the interpreter (zero values use the defaults).
	Limits Options
}

// NewProgram builds the hpf.Program described by the config. The
// caller owns the program and must Close it.
func (cfg Config) NewProgram() (*hpf.Program, error) {
	name := cfg.Name
	if name == "" {
		name = "main"
	}
	np := cfg.NP
	if np == 0 {
		np = 8
	}
	engineKind := cfg.Engine
	if engineKind == "" {
		engineKind = hpf.DefaultEngine()
	}
	transportKind := cfg.Transport
	if transportKind == "" {
		transportKind = hpf.DefaultTransport()
	}
	prog, err := hpf.NewProgramTransport(name, engineKind, transportKind, np, hpf.DefaultCost())
	if err != nil {
		return nil, err
	}
	cfg.Apply(prog)
	return prog, nil
}

// Apply sets the config's parameters and model options on an existing
// program (used by cmd/hpfrun's -spawn mode, whose engine is built
// over a joined transport before the program exists).
func (cfg Config) Apply(prog *hpf.Program) {
	prog.UseViennaBlock(cfg.Vienna)
	if cfg.Templates {
		prog.EnableTemplates()
	}
	// Deterministic application order, so duplicate definitions
	// resolve identically everywhere.
	for _, k := range sortedKeys(cfg.Params) {
		prog.SetParam(k, cfg.Params[k])
	}
	for _, k := range sortedKeys(cfg.ParamArrays) {
		prog.SetParamArray(k, cfg.ParamArrays[k])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Run builds the program, interprets src on it, and closes it. The
// returned result remains valid after the close.
func (cfg Config) Run(src string) (*Result, error) {
	prog, err := cfg.NewProgram()
	if err != nil {
		return nil, err
	}
	defer prog.Close()
	return NewWith(prog, cfg.Limits).Run(src)
}

// optionsPrefix marks an embedded options line in a program file:
//
//	!hpfrun: -np 6 -param N=48,ITERS=5 -vienna -templates
//
// so corpus programs carry their own processor count and inputs.
const optionsPrefix = "!hpfrun:"

// ScanFileOptions extracts the embedded !hpfrun: options line from a
// program source, if any, merging it into cfg (explicit cfg values
// win: the file sets NP/params only where cfg leaves them zero/unset).
func ScanFileOptions(src string, cfg *Config) error {
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if !strings.HasPrefix(strings.ToLower(s), optionsPrefix) {
			continue
		}
		fields := strings.Fields(s[len(optionsPrefix):])
		for i := 0; i < len(fields); i++ {
			switch fields[i] {
			case "-np":
				i++
				if i >= len(fields) {
					return fmt.Errorf("interp: %s -np needs a value", optionsPrefix)
				}
				np, err := strconv.Atoi(fields[i])
				if err != nil || np < 1 {
					return fmt.Errorf("interp: %s bad -np %q", optionsPrefix, fields[i])
				}
				if cfg.NP == 0 {
					cfg.NP = np
				}
			case "-param":
				i++
				if i >= len(fields) {
					return fmt.Errorf("interp: %s -param needs a value", optionsPrefix)
				}
				params := map[string]int{}
				if err := ParseParams(fields[i], params); err != nil {
					return err
				}
				for k, v := range params {
					if cfg.Params == nil {
						cfg.Params = map[string]int{}
					}
					if _, ok := cfg.Params[k]; !ok {
						cfg.Params[k] = v
					}
				}
			case "-vienna":
				cfg.Vienna = true
			case "-templates":
				cfg.Templates = true
			default:
				return fmt.Errorf("interp: %s unknown option %q", optionsPrefix, fields[i])
			}
		}
		return nil
	}
	return nil
}

// ParseParams parses a "NAME=V,NAME=V" list (hpfrun/hpfmap -param
// flags and embedded option lines) into params. Names are
// upper-cased to match the directive language.
func ParseParams(s string, params map[string]int) error {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" {
			return fmt.Errorf("interp: bad parameter %q (want NAME=VALUE)", kv)
		}
		v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return fmt.Errorf("interp: bad value in %q: %v", kv, err)
		}
		params[strings.ToUpper(strings.TrimSpace(parts[0]))] = v
	}
	return nil
}

// ReadSource loads a program text from a file path, or from stdin
// when path is "-".
func ReadSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", fmt.Errorf("interp: reading stdin: %v", err)
		}
		return string(b), nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("interp: %v", err)
	}
	return string(b), nil
}
