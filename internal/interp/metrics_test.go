package interp_test

import (
	"fmt"
	"strings"
	"testing"

	"hpfnt/internal/interp"
	"hpfnt/internal/obs"
)

// TestCacheCountersAndMetrics pins the schedule-cache counters to the
// cache's behavior — a DO loop body compiles once and replays — and
// their exposition through RegisterMetrics.
func TestCacheCountersAndMetrics(t *testing.T) {
	h0, m0 := interp.CacheStats()
	src := `
PROCESSORS P(2)
PARAMETER N = 12
REAL U(1:N), V(1:N)
!HPF$ DISTRIBUTE (BLOCK) :: U, V
FORALL (I = 1:N) U(I) = I
FORALL (I = 1:N) V(I) = 0
DO K = 1, 6
  V(2:N-1) = 0.5*U(1:N-2) + 0.5*U(3:N)
  U(2:N-1) = V(2:N-1)
END DO
`
	if _, err := (interp.Config{NP: 2, Engine: "sim", Transport: "inproc"}.Run(src)); err != nil {
		t.Fatal(err)
	}
	h1, m1 := interp.CacheStats()
	if m1 <= m0 {
		t.Errorf("cache misses did not move: %d -> %d (first compile of each statement must miss)", m0, m1)
	}
	if h1 <= h0 {
		t.Errorf("cache hits did not move: %d -> %d (loop iterations must replay the compiled schedules)", h0, h1)
	}

	reg := obs.NewRegistry()
	if err := interp.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	text := string(reg.Expose())
	for _, want := range []string{
		"# TYPE hpfnt_interp_cache_hits_total counter",
		"# TYPE hpfnt_interp_cache_misses_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if _, err := obs.ValidateExposition([]byte(text)); err != nil {
		t.Fatalf("cache-counter exposition invalid: %v\n%s", err, text)
	}
	// The exposed values are the live counters.
	var exposed float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "hpfnt_interp_cache_hits_total ") {
			if _, err := fmt.Sscanf(line, "hpfnt_interp_cache_hits_total %g", &exposed); err != nil {
				t.Fatalf("unparseable sample line %q: %v", line, err)
			}
		}
	}
	if exposed != float64(h1) {
		t.Errorf("exposed hits %g do not match CacheStats()=%d", exposed, h1)
	}
}
