package interp_test

import (
	"strings"
	"testing"

	"hpfnt/hpf"
	"hpfnt/internal/interp"
)

// TestInterpMatchesHandwritten is the oracle entry for the front end:
// the interpreted Jacobi program must produce exactly the values and
// logical report of the same computation written by hand against the
// hpf API. Interpretation must add zero model-level overhead — both
// paths build the same schedules on the same program.
func TestInterpMatchesHandwritten(t *testing.T) {
	const n, np, iters = 24, 4, 8
	src := `
PROCESSORS P(4)
PARAMETER N = 24
REAL U(1:N,1:N), V(1:N,1:N)
!HPF$ DISTRIBUTE (BLOCK,:) :: U, V
FORALL (I = 1:N, J = 1:N) U(I,J) = MOD(I*7 + J*3, 11)
FORALL (I = 1:N, J = 1:N) V(I,J) = 0
DO K = 1, 8
  V(2:N-1,2:N-1) = 0.25*U(1:N-2,2:N-1) + 0.25*U(3:N,2:N-1) + 0.25*U(2:N-1,1:N-2) + 0.25*U(2:N-1,3:N)
  U(2:N-1,2:N-1) = V(2:N-1,2:N-1)
END DO
`
	got, err := interp.Config{NP: np, Engine: "sim", Transport: "inproc"}.Run(src)
	if err != nil {
		t.Fatal(err)
	}

	// The same computation by hand.
	prog, err := hpf.NewProgramTransport("hand", "sim", "inproc", np, hpf.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer prog.Close()
	if err := prog.Exec(`
PROCESSORS P(4)
PARAMETER N = 24
REAL U(1:N,1:N), V(1:N,1:N)
!HPF$ DISTRIBUTE (BLOCK,:) :: U, V
`); err != nil {
		t.Fatal(err)
	}
	u, err := prog.NewArray("U")
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.NewArray("V")
	if err != nil {
		t.Fatal(err)
	}
	u.Fill(func(tp hpf.Tuple) float64 { return float64((tp[0]*7 + tp[1]*3) % 11) })
	v.Fill(func(hpf.Tuple) float64 { return 0 })
	inner := hpf.Shape(2, n-1, 2, n-1)
	for k := 0; k < iters; k++ {
		if err := v.Assign(inner,
			hpf.Read(u, 0.25, -1, 0), hpf.Read(u, 0.25, 1, 0),
			hpf.Read(u, 0.25, 0, -1), hpf.Read(u, 0.25, 0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := u.Assign(inner, hpf.Read(v, 1, 0, 0)); err != nil {
			t.Fatal(err)
		}
	}

	for name, want := range map[string][]float64{"U": u.Data(), "V": v.Data()} {
		gv := got.Values[name]
		if len(gv) != len(want) {
			t.Fatalf("%s: %d elements interpreted, %d by hand", name, len(gv), len(want))
		}
		for i := range want {
			if gv[i] != want[i] {
				t.Fatalf("%s[%d]: interpreted %v, by hand %v", name, i, gv[i], want[i])
			}
		}
	}
	if wl, gl := prog.Stats().Logical(), got.Report.Logical(); wl != gl {
		t.Errorf("logical report differs\nby hand:     %+v\ninterpreted: %+v", wl, gl)
	}
}

// TestInterpErrors checks that malformed programs fail with
// positioned, descriptive errors — never panics.
func TestInterpErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown statement", "FROBNICATE A\n", "unknown statement"},
		{"unterminated DO", "PROCESSORS P(2)\nDO K = 1, 3\n", "DO without a matching END DO"},
		{"stray END DO", "END DO\n", "END DO without a matching DO"},
		{"out-of-range subscript", "PROCESSORS P(2)\nREAL A(1:8)\n!HPF$ DISTRIBUTE A(BLOCK) TO P\nA(1:9) = A(1:9)\n", "outside"},
		{"count mismatch", "PROCESSORS P(2)\nREAL A(1:8), B(1:8)\n!HPF$ DISTRIBUTE (BLOCK) :: A, B\nA(1:4) = B(1:6)\n", "elements"},
		{"stride mismatch", "PROCESSORS P(2)\nREAL A(1:8), B(1:16)\n!HPF$ DISTRIBUTE (BLOCK) :: A, B\nA(1:4) = B(1:8:2)\n", "stride"},
		{"unknown array", "A(1:4) = A(1:4)\n", "unknown array"},
		{"unknown identifier", "PROCESSORS P(2)\nREAL A(1:8)\n!HPF$ DISTRIBUTE A(BLOCK) TO P\nA(1:Q) = A(1:Q)\n", "unknown identifier"},
		{"zero DO step", "PROCESSORS P(2)\nDO K = 1, 3, 0\nEND DO\n", "step must be nonzero"},
		{"bad redistribute target", "PROCESSORS P(2)\nREAL A(1:8)\n!HPF$ DYNAMIC A\n!HPF$ DISTRIBUTE A(BLOCK) TO P\n!HPF$ REDISTRIBUTE A(CYCLIC) TO\n", "line 5"},
		{"forall partial range", "PROCESSORS P(2)\nREAL A(1:8)\n!HPF$ DISTRIBUTE A(BLOCK) TO P\nFORALL (I = 2:8) A(I) = I\n", "span"},
		{"print outside", "PROCESSORS P(2)\nREAL A(1:8)\n!HPF$ DISTRIBUTE A(BLOCK) TO P\nFORALL (I = 1:8) A(I) = I\nPRINT A(9)\n", "outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := interp.Config{NP: 2, Engine: "sim"}.Run(tc.src)
			if err == nil {
				t.Fatalf("program accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestStatementBudget bounds runaway loops.
func TestStatementBudget(t *testing.T) {
	src := `
PROCESSORS P(2)
REAL A(1:8)
!HPF$ DISTRIBUTE A(BLOCK) TO P
FORALL (I = 1:8) A(I) = I
DO K = 1, 1000000
  PRINT SUM(A)
END DO
`
	cfg := interp.Config{NP: 2, Engine: "sim", Limits: interp.Options{MaxStatements: 100}}
	_, err := cfg.Run(src)
	if err == nil || !strings.Contains(err.Error(), "statement budget") {
		t.Fatalf("want statement-budget error, got %v", err)
	}
}

// TestElemCap bounds materialization size.
func TestElemCap(t *testing.T) {
	src := `
PROCESSORS P(2)
REAL A(1:4096)
!HPF$ DISTRIBUTE A(BLOCK) TO P
FORALL (I = 1:4096) A(I) = I
`
	cfg := interp.Config{NP: 2, Engine: "sim", Limits: interp.Options{MaxElems: 64}}
	_, err := cfg.Run(src)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("want element-cap error, got %v", err)
	}
}

// TestCheck exercises the parse-only entry point.
func TestCheck(t *testing.T) {
	if err := interp.Check("PROCESSORS P(2)\nDO K = 1, 3\nEND DO\n"); err != nil {
		t.Fatal(err)
	}
	if err := interp.Check("DO K = 1\n"); err == nil {
		t.Fatal("malformed DO header accepted")
	}
}

// TestScanFileOptions covers the embedded !hpfrun: options line.
func TestScanFileOptions(t *testing.T) {
	src := "! comment\n!hpfrun: -np 6 -param N=48,ITERS=5 -vienna\nPROCESSORS P(6)\n"
	var cfg interp.Config
	if err := interp.ScanFileOptions(src, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.NP != 6 || !cfg.Vienna || cfg.Params["N"] != 48 || cfg.Params["ITERS"] != 5 {
		t.Fatalf("bad parsed config: %+v", cfg)
	}
	// Explicit values win over the file's.
	cfg2 := interp.Config{NP: 3, Params: map[string]int{"N": 8}}
	if err := interp.ScanFileOptions(src, &cfg2); err != nil {
		t.Fatal(err)
	}
	if cfg2.NP != 3 || cfg2.Params["N"] != 8 || cfg2.Params["ITERS"] != 5 {
		t.Fatalf("explicit config overridden: %+v", cfg2)
	}
	if err := interp.ScanFileOptions("!hpfrun: -np nope\n", &interp.Config{}); err == nil {
		t.Fatal("bad -np accepted")
	}
}

// TestParseParams covers the NAME=VALUE list parser.
func TestParseParams(t *testing.T) {
	params := map[string]int{}
	if err := interp.ParseParams("n=4, M=9", params); err != nil {
		t.Fatal(err)
	}
	if params["N"] != 4 || params["M"] != 9 {
		t.Fatalf("bad params: %v", params)
	}
	if err := interp.ParseParams("N", params); err == nil {
		t.Fatal("bad list accepted")
	}
}

// TestRedistributeMovesSchedules checks that mapping directives drop
// compiled schedules and remap materialized arrays mid-run (values
// must reflect the statement stream regardless of when the remap
// happened).
func TestRedistributeMovesSchedules(t *testing.T) {
	src := `
PROCESSORS P(4)
PARAMETER N = 32
REAL A(1:N), B(1:N)
!HPF$ DYNAMIC A
!HPF$ DISTRIBUTE A(BLOCK) TO P
!HPF$ DISTRIBUTE B(BLOCK) TO P
FORALL (I = 1:N) A(I) = I
FORALL (I = 1:N) B(I) = 0
B(2:N) = A(1:N-1)
!HPF$ REDISTRIBUTE A(CYCLIC) TO P
B(2:N) = A(1:N-1)
PRINT SUM(B)
`
	sim, err := interp.Config{NP: 4, Engine: "sim"}.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	spmd, err := interp.Config{NP: 4, Engine: "spmd"}.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Output != spmd.Output {
		t.Fatalf("outputs differ: sim %q spmd %q", sim.Output, spmd.Output)
	}
	// B(i) = i-1 for i in 2..N after either assignment.
	b := sim.Values["B"]
	for i := 1; i < len(b); i++ {
		if b[i] != float64(i) {
			t.Fatalf("B[%d] = %v, want %v", i, b[i], float64(i))
		}
	}
}
