package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// traceEvent is one Chrome trace-event object ("X" complete spans,
// "i" instants, and "s"/"f" flow arrows), the JSON schema Perfetto and
// chrome://tracing read. Timestamps are microseconds; pid/tid lane the
// event under its process and worker rank.
type traceEvent struct {
	Name  string     `json:"name"`
	Cat   string     `json:"cat"`
	Phase string     `json:"ph"`
	TS    float64    `json:"ts"`
	Dur   float64    `json:"dur,omitempty"`
	PID   int        `json:"pid"`
	TID   int        `json:"tid"`
	Scope string     `json:"s,omitempty"`
	ID    string     `json:"id,omitempty"`
	BP    string     `json:"bp,omitempty"`
	Args  *traceArgs `json:"args,omitempty"`
}

// traceArgs carries the event metadata that must survive a write/read
// round trip: the message-correlation flow ID (hex — a uint64 does not
// survive a float64 JSON number) and the execution epoch. Perfetto
// shows them in the slice detail pane.
type traceArgs struct {
	Flow  string `json:"flow,omitempty"`
	Epoch int64  `json:"epoch,omitempty"`
}

// traceFile is the top-level Chrome trace JSON document. OtherData
// carries the wall-clock nanosecond the file's t=0 corresponds to, so
// per-process part files can be merged back onto one timeline with
// their true relative offsets (the kill → rollback → rejoin ordering
// across processes is the whole point of a recovery trace).
type traceFile struct {
	TraceEvents []traceEvent      `json:"traceEvents"`
	DisplayUnit string            `json:"displayTimeUnit"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// toTraceEvents converts recorded events to Chrome trace events with
// timestamps rebased to baseNS (full wall-clock nanoseconds do not
// survive the float64 microsecond field with sub-µs precision). Every
// matched send/recv pair (same nonzero Flow) additionally gets a
// Perfetto flow arrow: a "s" start bound to the send slice and a "f"
// finish (bp "e": bind to enclosing slice) bound to the recv slice, so
// cross-process causality renders as arrows on the merged timeline.
func toTraceEvents(events []Event, baseNS int64) []traceEvent {
	out := make([]traceEvent, 0, len(events))
	for _, ev := range events {
		te := traceEvent{
			Name: ev.Name,
			Cat:  ev.Kind,
			TS:   float64(ev.Start-baseNS) / 1e3,
			PID:  ev.Proc,
			TID:  ev.Rank,
		}
		if ev.Flow != 0 || ev.Epoch != 0 {
			te.Args = &traceArgs{Epoch: ev.Epoch}
			if ev.Flow != 0 {
				te.Args.Flow = strconv.FormatUint(ev.Flow, 16)
			}
		}
		if ev.Dur > 0 {
			te.Phase = "X"
			te.Dur = float64(ev.Dur) / 1e3
		} else {
			te.Phase = "i"
			te.Scope = "p" // process-scoped instant marker
		}
		out = append(out, te)
		if ev.Flow != 0 && (ev.Kind == "send" || ev.Kind == "recv") {
			fl := traceEvent{
				Name: "msg",
				Cat:  "flow",
				TS:   te.TS,
				PID:  te.PID,
				TID:  te.TID,
				ID:   strconv.FormatUint(ev.Flow, 16),
			}
			if ev.Kind == "send" {
				fl.Phase = "s"
			} else {
				fl.Phase = "f"
				fl.BP = "e"
			}
			out = append(out, fl)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// WriteTrace writes the events as a Chrome trace-event JSON file,
// rebased so the earliest event sits at t=0 (the true offset is kept
// in the file for MergeTraces).
func WriteTrace(path string, events []Event) error {
	var base int64
	for i, ev := range events {
		if i == 0 || ev.Start < base {
			base = ev.Start
		}
	}
	doc := traceFile{
		TraceEvents: toTraceEvents(events, base),
		DisplayUnit: "ms",
		OtherData:   map[string]string{"baseNS": fmt.Sprintf("%d", base)},
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []traceEvent{}
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadTraceEvents reads a Chrome trace JSON file back into recorded
// events with absolute wall-clock timestamps restored from the file's
// base offset. Flow arrows ("s"/"f" phases) are skipped — they are
// derived from the send/recv events' Flow IDs and regenerated on the
// next write, which is how a merge preserves them. Used by the
// multi-process merge and by tests asserting a trace's content.
func ReadTraceEvents(path string) ([]Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc traceFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: %s is not a trace-event file: %w", path, err)
	}
	var base int64
	if doc.OtherData != nil {
		fmt.Sscanf(doc.OtherData["baseNS"], "%d", &base)
	}
	out := make([]Event, 0, len(doc.TraceEvents))
	for _, te := range doc.TraceEvents {
		if te.Phase == "s" || te.Phase == "f" || te.Phase == "t" {
			continue
		}
		ev := Event{
			Kind:  te.Cat,
			Name:  te.Name,
			Proc:  te.PID,
			Rank:  te.TID,
			Start: base + int64(te.TS*1e3),
			Dur:   int64(te.Dur * 1e3),
		}
		if te.Args != nil {
			ev.Epoch = te.Args.Epoch
			if te.Args.Flow != "" {
				ev.Flow, _ = strconv.ParseUint(te.Args.Flow, 16, 64)
			}
		}
		out = append(out, ev)
	}
	return out, nil
}

// MergeTraces reads several per-process trace files and writes one
// combined trace on a single realigned timeline, returning the merged
// event count. Missing part files are skipped (a member that died
// mid-job and never flushed still leaves a readable whole-job trace);
// at least one part must exist. Flow IDs ride the surviving events, so
// the rewritten merge regenerates every send→recv arrow whose two ends
// both made it to disk — pairs crossing processes included.
func MergeTraces(out string, parts []string) (int, error) {
	var all []Event
	found := 0
	for _, p := range parts {
		evs, err := ReadTraceEvents(p)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return 0, err
		}
		found++
		all = append(all, evs...)
	}
	if found == 0 {
		return 0, fmt.Errorf("obs: none of the %d trace parts exist", len(parts))
	}
	return len(all), WriteTrace(out, all)
}
