// Package analyze is the performance-diagnosis layer over the raw
// observability signals: it consumes a (possibly merged,
// multi-process) trace or a live machine.Detail snapshot and answers
// the questions the counters alone cannot — which message chain
// bounds each epoch (the critical path), how skewed the workers are,
// and which rank is the straggler. cmd/hpftrace renders its reports;
// hpfnode publishes the live equivalent through obs.SkewMonitor.
package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
)

// WorkerStat aggregates one rank's activity across the whole trace.
type WorkerStat struct {
	Rank   int   `json:"rank"`
	Proc   int   `json:"proc"`
	BusyNS int64 `json:"busy_ns"`
	SendNS int64 `json:"send_ns"`
	RecvNS int64 `json:"recv_ns"`
	Msgs   int   `json:"msgs"`
}

// EpochReport is the diagnosis of one execution epoch.
type EpochReport struct {
	Epoch          int64          `json:"epoch"`
	CriticalPathNS int64          `json:"critical_path_ns"`
	Path           []obs.PathStep `json:"path,omitempty"`
	// SkewRatio is max/mean over the epoch's per-worker busy time
	// (0 when the epoch has no worker spans).
	SkewRatio float64 `json:"skew_ratio"`
	// Straggler is the 1-based rank of the heaviest worker (0 when
	// unknown).
	Straggler int `json:"straggler_rank"`
}

// Report is the whole-trace diagnosis.
type Report struct {
	Epochs  []EpochReport `json:"epochs"`
	Workers []WorkerStat  `json:"workers"`
	// MaxCriticalPathNS is the longest epoch critical path seen.
	MaxCriticalPathNS int64 `json:"max_critical_path_ns"`
	// MaxSkewRatio and StragglerRank describe the most skewed epoch.
	MaxSkewRatio  float64 `json:"max_skew_ratio"`
	StragglerRank int     `json:"straggler_rank"`
}

// FromEvents builds the diagnosis from recorded (or re-read) trace
// events.
func FromEvents(events []obs.Event) *Report {
	r := &Report{}
	paths := obs.CriticalPaths(events)
	cps := map[int64]obs.EpochPath{}
	for _, p := range paths {
		cps[p.Epoch] = p
		if p.TotalNS > r.MaxCriticalPathNS {
			r.MaxCriticalPathNS = p.TotalNS
		}
	}
	// Per-epoch, per-rank busy time from the worker spans; per-rank
	// message activity from the send/recv spans.
	type key struct {
		epoch int64
		rank  int
	}
	busy := map[key]int64{}
	workers := map[int]*WorkerStat{}
	stat := func(ev obs.Event) *WorkerStat {
		w := workers[ev.Rank]
		if w == nil {
			w = &WorkerStat{Rank: ev.Rank, Proc: ev.Proc}
			workers[ev.Rank] = w
		}
		return w
	}
	epochSet := map[int64]bool{}
	for e := range cps {
		epochSet[e] = true
	}
	for _, ev := range events {
		if ev.Epoch <= 0 {
			continue
		}
		switch ev.Kind {
		case "worker":
			busy[key{ev.Epoch, ev.Rank}] += ev.Dur
			stat(ev).BusyNS += ev.Dur
			epochSet[ev.Epoch] = true
		case "send":
			stat(ev).SendNS += ev.Dur
			stat(ev).Msgs++
		case "recv":
			stat(ev).RecvNS += ev.Dur
			stat(ev).Msgs++
		}
	}
	epochs := make([]int64, 0, len(epochSet))
	for e := range epochSet {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		er := EpochReport{Epoch: e}
		if p, ok := cps[e]; ok {
			er.CriticalPathNS = p.TotalNS
			er.Path = p.Steps
		}
		var weights []int64
		var ranks []int
		for k, ns := range busy {
			if k.epoch == e {
				weights = append(weights, ns)
				ranks = append(ranks, k.rank)
			}
		}
		if len(weights) > 0 {
			// Deterministic order for the argmax tie-break.
			sort.Sort(&byRank{ranks, weights})
			ratio, idx := obs.Skew(weights)
			if idx >= 0 {
				er.SkewRatio = ratio
				er.Straggler = ranks[idx]
			}
		}
		if er.SkewRatio > r.MaxSkewRatio {
			r.MaxSkewRatio = er.SkewRatio
			r.StragglerRank = er.Straggler
		}
		r.Epochs = append(r.Epochs, er)
	}
	for _, w := range workers {
		r.Workers = append(r.Workers, *w)
	}
	sort.Slice(r.Workers, func(i, j int) bool { return r.Workers[i].Rank < r.Workers[j].Rank })
	return r
}

// byRank sorts parallel (rank, weight) slices by rank.
type byRank struct {
	ranks   []int
	weights []int64
}

func (s *byRank) Len() int           { return len(s.ranks) }
func (s *byRank) Less(i, j int) bool { return s.ranks[i] < s.ranks[j] }
func (s *byRank) Swap(i, j int) {
	s.ranks[i], s.ranks[j] = s.ranks[j], s.ranks[i]
	s.weights[i], s.weights[j] = s.weights[j], s.weights[i]
}

// Imbalance is the skew diagnosis of one machine.Detail snapshot.
type Imbalance struct {
	// Ratio is max/mean over the per-worker weights; Straggler the
	// 1-based rank carrying the max.
	Ratio     float64 `json:"ratio"`
	Straggler int     `json:"straggler_rank"`
	// Source names the weight vector used: "compute_ns" when phase
	// timers were on, else "load".
	Source string `json:"source"`
	// Weights are the per-worker weights, indexed by rank-1.
	Weights []int64 `json:"weights"`
}

// FromDetail diagnoses imbalance from a live counter snapshot: the
// per-worker compute-phase wall time when the phase timers were on
// (the truest signal), the logical element load otherwise. Fully
// deterministic given deterministic counters, which is what the
// skewed-distribution tests pin down.
func FromDetail(d machine.Detail) Imbalance {
	weights, src := d.ComputeWeights()
	ratio, idx := obs.Skew(weights)
	im := Imbalance{Ratio: ratio, Source: src, Weights: weights}
	if idx >= 0 {
		im.Straggler = idx + 1
	}
	return im
}

// JSON renders the report for tooling.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", " ")
}

// Text renders the human report: the per-epoch table, the top-N
// epochs' critical paths, and the per-worker totals.
func (r *Report) Text(top int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "trace: %d epochs, %d workers\n", len(r.Epochs), len(r.Workers))
	if len(r.Epochs) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "\n%-7s %14s %8s %10s\n", "epoch", "critical-path", "skew", "straggler")
	for _, e := range r.Epochs {
		st := "-"
		if e.Straggler > 0 {
			st = fmt.Sprintf("r%d", e.Straggler)
		}
		fmt.Fprintf(&b, "%-7d %12.3fms %8.2f %10s\n", e.Epoch, float64(e.CriticalPathNS)/1e6, e.SkewRatio, st)
	}
	// Top-N epochs by critical-path length.
	byCP := append([]EpochReport(nil), r.Epochs...)
	sort.SliceStable(byCP, func(i, j int) bool { return byCP[i].CriticalPathNS > byCP[j].CriticalPathNS })
	if top > len(byCP) {
		top = len(byCP)
	}
	for _, e := range byCP[:top] {
		if len(e.Path) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\ncritical path of epoch %d (%.3fms):\n", e.Epoch, float64(e.CriticalPathNS)/1e6)
		for _, s := range e.Path {
			name := s.Name
			if name == "" {
				name = s.Kind
			}
			fmt.Fprintf(&b, "  p%d/r%-3d %-8s %10.3fms  %s\n", s.Proc, s.Rank, s.Kind, float64(s.DurNS)/1e6, name)
		}
	}
	if len(r.Workers) > 0 {
		fmt.Fprintf(&b, "\n%-6s %12s %12s %12s %8s\n", "rank", "busy", "send", "recv", "msgs")
		for _, w := range r.Workers {
			fmt.Fprintf(&b, "r%-5d %10.3fms %10.3fms %10.3fms %8d\n",
				w.Rank, float64(w.BusyNS)/1e6, float64(w.SendNS)/1e6, float64(w.RecvNS)/1e6, w.Msgs)
		}
	}
	return b.String()
}
