package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestRegistryWithLabels(t *testing.T) {
	root := NewRegistry()
	jobA, err := root.WithLabels("job", "heat", "generation", "0")
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := root.WithLabels("job", "wave", "generation", "2")
	if err != nil {
		t.Fatal(err)
	}
	// The same family registered from two scoped views plus extra
	// per-sample labels: samples must merge under one TYPE block, each
	// carrying its view's scope labels first.
	reg := func(r *Registry, v float64) error {
		return r.Counter("scoped_total", "Scoped counter.", []string{"rank"}, func() []Sample {
			return []Sample{{Labels: []string{"1"}, Value: v}}
		})
	}
	if err := reg(jobA, 10); err != nil {
		t.Fatal(err)
	}
	if err := reg(jobB, 20); err != nil {
		t.Fatal(err)
	}
	// An unscoped family on the root must stay label-free.
	if err := root.Gauge("plain_gauge", "Unscoped.", nil, func() []Sample { return one(7) }); err != nil {
		t.Fatal(err)
	}
	text := string(root.Expose())
	for _, want := range []string{
		`scoped_total{job="heat",generation="0",rank="1"} 10`,
		`scoped_total{job="wave",generation="2",rank="1"} 20`,
		"plain_gauge 7",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE scoped_total counter"); n != 1 {
		t.Errorf("family scoped_total has %d TYPE blocks, want 1:\n%s", n, text)
	}
	if n, err := ValidateExposition([]byte(text)); err != nil || n != 3 {
		t.Errorf("merged exposition invalid (n=%d): %v\n%s", n, err, text)
	}
	// Exposing through a scoped view reads the same shared core.
	if got := string(jobA.Expose()); got != text {
		t.Error("scoped view exposes a different document than the root")
	}
}

// one wraps a single unlabeled sample (test helper mirroring hpfnode's).
func one(v float64) []Sample { return []Sample{{Value: v}} }

func TestRegistryWithLabelsConflicts(t *testing.T) {
	root := NewRegistry()
	if _, err := root.WithLabels("job"); err == nil {
		t.Error("odd pair count must be rejected")
	}
	if _, err := root.WithLabels("bad-label", "x"); err == nil {
		t.Error("invalid scope label name must be rejected")
	}
	jobA, _ := root.WithLabels("job", "a")
	jobB, _ := root.WithLabels("job", "b")
	if err := jobA.Counter("fam_total", "h", nil, func() []Sample { return nil }); err != nil {
		t.Fatal(err)
	}
	// Same family, different kind: rejected even across views.
	if err := jobB.Gauge("fam_total", "h", nil, func() []Sample { return nil }); err == nil {
		t.Error("kind conflict across scoped views must be rejected")
	}
	// Same family, different label names: rejected.
	if err := jobB.Counter("fam_total", "h", []string{"rank"}, func() []Sample { return nil }); err == nil {
		t.Error("label-set conflict across scoped views must be rejected")
	}
	// Same family, same shape, other scope value: fine.
	if err := jobB.Counter("fam_total", "h", nil, func() []Sample { return nil }); err != nil {
		t.Errorf("matching re-registration from a second view rejected: %v", err)
	}
}

func TestExposeEscapesLabelValues(t *testing.T) {
	reg := NewRegistry()
	err := reg.Gauge("escape_gauge", "Escaping.", []string{"v"}, func() []Sample {
		return []Sample{{Labels: []string{"line\nbreak \"quoted\" back\\slash"}, Value: 1}}
	})
	if err != nil {
		t.Fatal(err)
	}
	text := reg.Expose()
	want := `escape_gauge{v="line\nbreak \"quoted\" back\\slash"} 1`
	if !strings.Contains(string(text), want) {
		t.Fatalf("label value not escaped per exposition rules:\n%s", text)
	}
	if _, err := ValidateExposition(text); err != nil {
		t.Fatalf("escaped exposition does not validate: %v\n%s", err, text)
	}
}

func TestValidateExpositionEdgeCases(t *testing.T) {
	// NaN and ±Inf are legal sample values in the text format, and
	// escaped label values must parse.
	valid := []byte(`# TYPE edge_gauge gauge
edge_gauge{q="NaN case"} NaN
edge_gauge{q="plus"} +Inf
edge_gauge{q="minus"} -Inf
edge_gauge{q="esc\n\"\\"} 1
`)
	n, err := ValidateExposition(valid)
	if err != nil {
		t.Fatalf("edge-case exposition rejected: %v", err)
	}
	if n != 4 {
		t.Errorf("validated %d samples, want 4", n)
	}
	// A family whose # TYPE appears twice is torn metadata — exactly
	// what a buggy merge of two registries would produce.
	dup := []byte("# TYPE m gauge\nm 1\n# TYPE m gauge\nm 2\n")
	if _, err := ValidateExposition(dup); err == nil {
		t.Error("duplicate # TYPE for one family accepted")
	}
	if _, err := ValidateExposition([]byte("# TYPE m gauge\n# TYPE m counter\nm 1\n")); err == nil {
		t.Error("conflicting duplicate # TYPE accepted")
	}
}

func TestServeHealthzAndShutdown(t *testing.T) {
	reg := testRegistry(t)
	addr, shutdown, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz returned %d %q, want 200 ok", resp.StatusCode, body)
	}
	// Graceful shutdown must leave the port closed: a follow-up scrape
	// fails to connect instead of hanging.
	shutdown()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("endpoint still serving after shutdown")
	}
	// Shutting down twice must be harmless.
	shutdown()
}
