package obs

import (
	"sort"
	"sync"
)

// This file is the analysis half of the trace recorder: it turns raw
// send/recv/worker events into an epoch critical path, and per-worker
// weight vectors into a skew ratio with straggler attribution. It
// deliberately operates on obs-native types only ([]Event, []int64) so
// the package stays dependency-free; internal/obs/analyze layers the
// machine.Detail-aware reporting on top.

// PathStep is one hop of an epoch's critical path.
type PathStep struct {
	// Kind is "send", "recv", "worker", or the synthetic "compute"
	// for the idle-free gap between two message events on one rank.
	Kind string `json:"kind"`
	// Name is the originating event's label ("" for synthetic steps).
	Name string `json:"name,omitempty"`
	// Proc and Rank locate the step's lane.
	Proc int `json:"proc"`
	Rank int `json:"rank"`
	// DurNS is the step's contribution to the path in nanoseconds.
	DurNS int64 `json:"dur_ns"`
}

// EpochPath is the critical path of one execution epoch: the longest
// dependency chain of message spans (send → matched recv via the flow
// ID, plus program order per rank) with the compute gaps between them.
// Its total bounds the epoch — no schedule change that leaves this
// chain intact can make the epoch faster.
type EpochPath struct {
	Epoch   int64
	TotalNS int64
	Steps   []PathStep
}

// cpNode is one DP node while computing a critical path.
type cpNode struct {
	ev   Event
	cp   int64 // longest chain ending at (and including) this event
	pred int   // index of the chain predecessor, -1 at a chain head
	gap  int64 // compute gap charged on the pred → this edge
}

// CriticalPaths groups the message events of a trace by epoch and
// computes each epoch's critical path. Events with Epoch 0 (outside
// any dispatch) are ignored. Dependencies are: a recv depends on the
// send sharing its flow ID, and every message event depends on the
// previous message event of its (proc, rank) lane, with the wall-clock
// gap between them charged as compute. Epochs with no message events
// fall back to their longest worker span.
func CriticalPaths(events []Event) []EpochPath {
	msgs := map[int64][]Event{}
	workers := map[int64]Event{}
	for _, ev := range events {
		if ev.Epoch <= 0 {
			continue
		}
		switch ev.Kind {
		case "send", "recv":
			msgs[ev.Epoch] = append(msgs[ev.Epoch], ev)
		case "worker":
			if w, ok := workers[ev.Epoch]; !ok || ev.Dur > w.Dur {
				workers[ev.Epoch] = ev
			}
		}
	}
	epochs := make([]int64, 0, len(msgs)+len(workers))
	for e := range msgs {
		epochs = append(epochs, e)
	}
	for e := range workers {
		if _, ok := msgs[e]; !ok {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	out := make([]EpochPath, 0, len(epochs))
	for _, e := range epochs {
		if evs := msgs[e]; len(evs) > 0 {
			out = append(out, epochPath(e, evs))
		} else if w, ok := workers[e]; ok {
			out = append(out, EpochPath{
				Epoch:   e,
				TotalNS: w.Dur,
				Steps:   []PathStep{{Kind: w.Kind, Name: w.Name, Proc: w.Proc, Rank: w.Rank, DurNS: w.Dur}},
			})
		}
	}
	return out
}

// epochPath runs the longest-chain DP over one epoch's message events.
func epochPath(epoch int64, evs []Event) EpochPath {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	nodes := make([]cpNode, len(evs))
	// sender[flow] and lane[(proc,rank)] index the possible
	// predecessors; events are visited in start order, so both are
	// resolved by the time a dependent node needs them.
	type laneKey struct{ proc, rank int }
	sender := map[uint64]int{}
	lane := map[laneKey]int{}
	for i, ev := range evs {
		n := cpNode{ev: ev, cp: ev.Dur, pred: -1}
		consider := func(j int, gap int64) {
			if c := nodes[j].cp + gap + ev.Dur; c > n.cp {
				n.cp, n.pred, n.gap = c, j, gap
			}
		}
		if ev.Kind == "recv" && ev.Flow != 0 {
			if j, ok := sender[ev.Flow]; ok {
				consider(j, 0)
			}
		}
		lk := laneKey{ev.Proc, ev.Rank}
		if j, ok := lane[lk]; ok {
			prev := nodes[j].ev
			gap := ev.Start - (prev.Start + prev.Dur)
			if gap < 0 {
				gap = 0
			}
			consider(j, gap)
		}
		nodes[i] = n
		lane[lk] = i
		if ev.Kind == "send" && ev.Flow != 0 {
			sender[ev.Flow] = i
		}
	}
	best := 0
	for i := range nodes {
		if nodes[i].cp > nodes[best].cp {
			best = i
		}
	}
	var steps []PathStep
	for i := best; i >= 0; i = nodes[i].pred {
		ev := nodes[i].ev
		steps = append(steps, PathStep{Kind: ev.Kind, Name: ev.Name, Proc: ev.Proc, Rank: ev.Rank, DurNS: ev.Dur})
		if nodes[i].gap > 0 {
			steps = append(steps, PathStep{Kind: "compute", Proc: ev.Proc, Rank: ev.Rank, DurNS: nodes[i].gap})
		}
		if nodes[i].pred < 0 {
			break
		}
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return EpochPath{Epoch: epoch, TotalNS: nodes[best].cp, Steps: steps}
}

// Skew computes the imbalance of a per-worker weight vector: the ratio
// of the maximum weight to the mean, and the index of the heaviest
// worker. A perfectly balanced vector yields 1.0; an all-zero (or
// empty) vector yields 0 and straggler -1.
func Skew(weights []int64) (ratio float64, straggler int) {
	var total, max int64
	straggler = -1
	for i, w := range weights {
		total += w
		if w > max || straggler < 0 {
			max, straggler = w, i
		}
	}
	if total <= 0 || len(weights) == 0 {
		return 0, -1
	}
	mean := float64(total) / float64(len(weights))
	return float64(max) / mean, straggler
}

// SkewSample is one published imbalance observation.
type SkewSample struct {
	// Epoch is the latest epoch seen by ObserveEvents (0 when skew
	// came from weights only).
	Epoch int64
	// Ratio is max/mean over the observed per-worker weights (1.0 is
	// perfectly balanced; 0 means no observation yet).
	Ratio float64
	// Straggler is the 1-based rank of the heaviest worker (0 when no
	// observation yet).
	Straggler int
	// CriticalPathNS is the latest epoch's critical-path length.
	CriticalPathNS int64
}

// SkewMonitor is the live imbalance sensor: feed it cumulative
// per-worker weights (compute-phase nanoseconds when timers are on,
// element load otherwise) and, optionally, trace events; read the
// current diagnosis with Sample. hpfnode publishes the sample as the
// hpfnt_epoch_skew_ratio / hpfnt_critical_path_ns /
// hpfnt_straggler_rank metric families — the online signal ROADMAP's
// counter-driven load balancing consumes.
type SkewMonitor struct {
	mu     sync.Mutex
	prev   []int64
	sample SkewSample
}

// NewSkewMonitor returns an empty monitor.
func NewSkewMonitor() *SkewMonitor { return &SkewMonitor{} }

// ObserveWeights ingests the current cumulative per-worker weights,
// indexed by rank-1. When a previous observation with the same shape
// exists and every weight moved forward, skew is computed over the
// delta — the imbalance of the window since the last scrape, which is
// the signal a rebalancer wants — otherwise over the cumulative
// vector.
func (m *SkewMonitor) ObserveWeights(weights []int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	use := weights
	if len(m.prev) == len(weights) {
		delta := make([]int64, len(weights))
		ok := false
		for i := range weights {
			delta[i] = weights[i] - m.prev[i]
			if delta[i] < 0 {
				ok = false
				break
			}
			if delta[i] > 0 {
				ok = true
			}
		}
		if ok {
			use = delta
		}
	}
	if ratio, straggler := Skew(use); straggler >= 0 {
		m.sample.Ratio = ratio
		m.sample.Straggler = straggler + 1
	}
	m.prev = append(m.prev[:0], weights...)
}

// ObserveEvents ingests a trace snapshot and refreshes the latest
// epoch's critical-path length.
func (m *SkewMonitor) ObserveEvents(events []Event) {
	paths := CriticalPaths(events)
	if len(paths) == 0 {
		return
	}
	last := paths[len(paths)-1]
	m.mu.Lock()
	m.sample.Epoch = last.Epoch
	m.sample.CriticalPathNS = last.TotalNS
	m.mu.Unlock()
}

// Sample returns the current diagnosis.
func (m *SkewMonitor) Sample() SkewSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sample
}
