package obs

import (
	"math"
	"testing"
)

func TestCriticalPathChain(t *testing.T) {
	// Epoch 1, two ranks on two procs. Rank 1 computes 100µs then
	// sends; rank 2's recv (40µs of blocking) depends on that send via
	// the flow ID, then rank 2 sends its own reply. The chain
	// send(2µs) → recv(40µs) → [5µs gap charged as compute] → send(3µs)
	// must beat any single-lane chain.
	const base = int64(1_000_000_000_000)
	events := []Event{
		// Rank 1's pre-send compute shows up as the lane gap before its
		// send, so give the lane an earlier event to anchor the gap.
		{Kind: "send", Name: "warmup", Proc: 0, Rank: 1, Start: base, Dur: 1_000, Epoch: 1, Flow: 0x10},
		{Kind: "send", Name: "halo 1->2", Proc: 0, Rank: 1, Start: base + 101_000, Dur: 2_000, Epoch: 1, Flow: 0x11},
		{Kind: "recv", Name: "halo 1->2", Proc: 1, Rank: 2, Start: base + 103_000, Dur: 40_000, Epoch: 1, Flow: 0x11},
		{Kind: "send", Name: "reply 2->1", Proc: 1, Rank: 2, Start: base + 148_000, Dur: 3_000, Epoch: 1, Flow: 0x12},
		// A noise event in another epoch must not leak in.
		{Kind: "send", Name: "next", Proc: 0, Rank: 1, Start: base + 200_000, Dur: 9_000, Epoch: 2, Flow: 0x20},
	}
	paths := CriticalPaths(events)
	if len(paths) != 2 {
		t.Fatalf("got %d epoch paths, want 2", len(paths))
	}
	p := paths[0]
	if p.Epoch != 1 {
		t.Fatalf("first path epoch = %d, want 1", p.Epoch)
	}
	// warmup(1µs) + gap(100µs) + send(2µs) + recv(40µs) + gap(5µs) +
	// send(3µs) = 151µs.
	if p.TotalNS != 151_000 {
		t.Errorf("critical path = %dns, want 151000ns; steps %+v", p.TotalNS, p.Steps)
	}
	// The chain must cross from rank 1 to rank 2 through the flow edge
	// and end at the reply send.
	last := p.Steps[len(p.Steps)-1]
	if last.Kind != "send" || last.Rank != 2 {
		t.Errorf("path should end at rank 2's reply send, got %+v", last)
	}
	sawRecv, sawCompute := false, false
	for _, s := range p.Steps {
		if s.Kind == "recv" && s.Rank == 2 {
			sawRecv = true
		}
		if s.Kind == "compute" {
			sawCompute = true
		}
	}
	if !sawRecv || !sawCompute {
		t.Errorf("path missing the flow-matched recv or the charged compute gap: %+v", p.Steps)
	}
}

func TestCriticalPathWorkerFallback(t *testing.T) {
	// No message events in the epoch: the longest worker span is the
	// path.
	paths := CriticalPaths([]Event{
		{Kind: "worker", Name: "rank 1 x4", Proc: 0, Rank: 1, Start: 10, Dur: 5_000, Epoch: 3},
		{Kind: "worker", Name: "rank 2 x4", Proc: 0, Rank: 2, Start: 12, Dur: 8_000, Epoch: 3},
		{Kind: "compute", Name: "untagged", Proc: 0, Rank: 1, Start: 0, Dur: 99_000}, // Epoch 0: ignored
	})
	if len(paths) != 1 || paths[0].TotalNS != 8_000 || paths[0].Steps[0].Rank != 2 {
		t.Fatalf("worker fallback wrong: %+v", paths)
	}
}

func TestSkew(t *testing.T) {
	cases := []struct {
		weights   []int64
		ratio     float64
		straggler int
	}{
		{nil, 0, -1},
		{[]int64{0, 0, 0}, 0, -1},
		{[]int64{5, 5, 5, 5}, 1.0, 0},
		{[]int64{10, 10, 60, 10}, 60.0 / 22.5, 2},
		{[]int64{0, 9}, 2.0, 1},
	}
	for _, c := range cases {
		ratio, straggler := Skew(c.weights)
		if math.Abs(ratio-c.ratio) > 1e-12 || straggler != c.straggler {
			t.Errorf("Skew(%v) = (%v, %d), want (%v, %d)", c.weights, ratio, straggler, c.ratio, c.straggler)
		}
	}
}

func TestSkewMonitorDelta(t *testing.T) {
	m := NewSkewMonitor()
	if s := m.Sample(); s.Ratio != 0 || s.Straggler != 0 {
		t.Fatalf("fresh monitor should report zeros, got %+v", s)
	}
	// First observation: cumulative. Rank 2 (index 1) is the heavy one.
	m.ObserveWeights([]int64{10, 30, 10, 10})
	s := m.Sample()
	if s.Straggler != 2 {
		t.Fatalf("cumulative straggler = r%d, want r2", s.Straggler)
	}
	if want := 30.0 / 15.0; math.Abs(s.Ratio-want) > 1e-12 {
		t.Fatalf("cumulative ratio = %v, want %v", s.Ratio, want)
	}
	// Second observation: all weights moved forward, so the monitor
	// must diagnose the delta window, where rank 4 did all the work.
	m.ObserveWeights([]int64{10, 30, 10, 90})
	s = m.Sample()
	if s.Straggler != 4 {
		t.Fatalf("delta straggler = r%d, want r4", s.Straggler)
	}
	if want := 80.0 / 20.0; math.Abs(s.Ratio-want) > 1e-12 {
		t.Fatalf("delta ratio = %v, want %v", s.Ratio, want)
	}
	// A shrinking vector (counter reset after recovery) must fall back
	// to the cumulative view, not produce negative-delta nonsense.
	m.ObserveWeights([]int64{4, 1, 1, 2})
	s = m.Sample()
	if s.Straggler != 1 {
		t.Fatalf("post-reset straggler = r%d, want r1", s.Straggler)
	}
	// An all-equal stall (no weight moved) keeps the last diagnosis.
	m.ObserveWeights([]int64{4, 1, 1, 2})
	if s2 := m.Sample(); s2.Straggler != 1 || s2.Ratio != s.Ratio {
		t.Fatalf("stalled observation should keep the last sample, got %+v", s2)
	}
}

func TestSkewMonitorEvents(t *testing.T) {
	m := NewSkewMonitor()
	m.ObserveEvents([]Event{
		{Kind: "worker", Name: "rank 1 x1", Rank: 1, Start: 0, Dur: 7_000, Epoch: 4},
		{Kind: "worker", Name: "rank 1 x1", Rank: 1, Start: 10_000, Dur: 3_000, Epoch: 5},
	})
	s := m.Sample()
	if s.Epoch != 5 || s.CriticalPathNS != 3_000 {
		t.Fatalf("ObserveEvents should track the latest epoch's path, got %+v", s)
	}
}
