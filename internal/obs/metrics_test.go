package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Gauge("test_gauge", "A gauge.", nil, func() []Sample {
		return []Sample{{Value: 42}}
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Counter("test_pair_total", "A labelled counter.", []string{"src", "dst"}, func() []Sample {
		return []Sample{
			{Labels: []string{"1", "2"}, Value: 10},
			{Labels: []string{"2", "1"}, Value: 12.5},
		}
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegistryExpose(t *testing.T) {
	text := testRegistry(t).Expose()
	for _, want := range []string{
		"# TYPE test_gauge gauge",
		"test_gauge 42",
		"# TYPE test_pair_total counter",
		`test_pair_total{src="1",dst="2"} 10`,
		`test_pair_total{src="2",dst="1"} 12.5`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	n, err := ValidateExposition(text)
	if err != nil {
		t.Fatalf("own exposition does not validate: %v", err)
	}
	if n != 3 {
		t.Errorf("validated %d samples, want 3", n)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Gauge("bad-name", "h", nil, func() []Sample { return nil }); err == nil {
		t.Error("metric name with a dash must be rejected")
	}
	if err := reg.Gauge("ok_name", "h", []string{"2bad"}, func() []Sample { return nil }); err == nil {
		t.Error("label name starting with a digit must be rejected")
	}
	if err := reg.Gauge("dup", "h", nil, func() []Sample { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Counter("dup", "h", nil, func() []Sample { return nil }); err == nil {
		t.Error("duplicate registration must be rejected")
	}
}

func TestServeMetricsOverHTTP(t *testing.T) {
	reg := testRegistry(t)
	addr, shutdown, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("wrong content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(body)
	if err != nil {
		t.Fatalf("live scrape does not validate: %v\n%s", err, body)
	}
	if n == 0 {
		t.Fatal("live scrape has no samples")
	}
	// The pprof index must be mounted too.
	pp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ returned %d", pp.StatusCode)
	}
}

func TestValidateExposition(t *testing.T) {
	valid := []byte(`# HELP a_metric doc
# TYPE a_metric gauge
a_metric 1
a_metric{x="y z",q="esc\"aped"} 2.5e3
# TYPE b_total counter
b_total 7 1700000000
`)
	n, err := ValidateExposition(valid)
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if n != 3 {
		t.Errorf("validated %d samples, want 3", n)
	}
	for name, bad := range map[string]string{
		"no TYPE":       "orphan_metric 1\n",
		"bad value":     "# TYPE m gauge\nm not_a_number\n",
		"bad name":      "# TYPE 1m gauge\n1m 1\n",
		"torn labels":   "# TYPE m gauge\nm{x=\"unterminated 1\n",
		"unquoted":      "# TYPE m gauge\nm{x=y} 1\n",
		"bad comment":   "# NONSENSE m\n",
		"bad timestamp": "# TYPE m gauge\nm 1 soon\n",
	} {
		if _, err := ValidateExposition([]byte(bad)); err == nil {
			t.Errorf("%s: invalid exposition accepted:\n%s", name, bad)
		}
	}
}
