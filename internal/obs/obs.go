// Package obs is the runtime observability layer: low-overhead phase
// timing switches, a lock-free ring-buffered event recorder with a
// Chrome trace-event exporter (open the JSON in Perfetto or
// chrome://tracing), and a pull-based metrics registry serving the
// Prometheus text exposition format over HTTP.
//
// The package is deliberately dependency-free (standard library only)
// so every layer of the runtime — machine, spmd, transport, elastic,
// ckpt — can emit into it without import cycles. Everything is off by
// default and costs a single atomic load per instrumentation site
// when disabled, which is what keeps the equivalence and benchmark
// gates honest: instrumentation must never change what a job computes
// and must cost ~nothing when nobody is looking.
//
// Two independent switches exist:
//
//   - EnableTiming turns on the spmd engine's per-worker phase timers
//     (compute / ghost-wait / barrier-wait / reduce / checkpoint wall
//     time, aggregated into machine.Report.Phase).
//   - StartTrace installs the global event recorder; spans and instant
//     events (epochs, remaps, checkpoints, generation bumps,
//     rollbacks, member losses) are then captured into a fixed-size
//     ring and exportable as a Chrome trace.
//
// Both are flipped by the observability flags of cmd/hpfnode
// (-http/-trace/-verbose) and cmd/hpfbench (-trace).
package obs

import (
	"sync/atomic"
	"time"
)

// timing is the global phase-timer switch (see EnableTiming).
var timing atomic.Bool

// EnableTiming switches the per-worker phase timers on or off
// process-wide. Off (the default) the instrumentation sites cost one
// atomic load and take no clock readings.
func EnableTiming(on bool) { timing.Store(on) }

// TimingEnabled reports whether phase timers are on.
func TimingEnabled() bool { return timing.Load() }

// Event is one recorded observation: a span (Dur > 0) or an instant
// (Dur == 0), attributed to a process and optionally a worker rank.
type Event struct {
	// Kind groups events for the exporter ("epoch", "remap",
	// "checkpoint", "restore", "reduce", "recovery", "member-lost").
	Kind string
	// Name is the human-readable label shown on the trace slice.
	Name string
	// Proc is the OS-process index of the emitter (0 in a
	// single-process job).
	Proc int
	// Rank is the worker rank the event belongs to, or 0 for
	// process-level events (the exporter lanes rank 0 as "ctrl").
	Rank int
	// Start is the event's wall-clock start in nanoseconds since the
	// Unix epoch; Dur its duration in nanoseconds (0 for instants).
	Start int64
	Dur   int64
	// Epoch is the execution epoch the event belongs to (0 when the
	// emitter is outside any epoch). Senders stamp it from the global
	// epoch counter; receivers stamp it from the message's correlation
	// ID, so a cross-process pair always agrees on the epoch even when
	// the processes' own counters are momentarily out of step.
	Epoch int64
	// Flow is a nonzero correlation ID shared by a matched send/recv
	// pair; the trace exporter turns it into Perfetto flow arrows that
	// make cross-process causality visible. 0 for non-message events.
	Flow uint64
}

// Recorder is a fixed-capacity lock-free ring of events: emitters
// claim slots with a per-slot sequence CAS (no shared lock, no
// allocation), and once the ring wraps the oldest events are
// overwritten — a long job keeps its most recent window, which is the
// window that explains why it is slow or stuck right now.
type Recorder struct {
	proc  int
	next  atomic.Uint64
	slots []slot
}

// slot is one ring entry. seq is even when the slot is stable and odd
// while a writer (or the snapshotter) holds it; the CAS claim makes
// the plain Event accesses race-free (Go atomics establish
// happens-before on the claimed address).
type slot struct {
	seq atomic.Uint64
	ev  Event
}

// NewRecorder creates a recorder attributing events to the given
// process index. Capacity is rounded up to a power of two (minimum
// 1024).
func NewRecorder(proc, capacity int) *Recorder {
	n := 1024
	for n < capacity {
		n <<= 1
	}
	return &Recorder{proc: proc, slots: make([]slot, n)}
}

// Emit records one event (its Proc is stamped by the recorder, and an
// unset Epoch is stamped from the process-wide epoch counter).
func (r *Recorder) Emit(ev Event) {
	ev.Proc = r.proc
	if ev.Epoch == 0 {
		ev.Epoch = epoch.Load()
	}
	i := r.next.Add(1) - 1
	s := &r.slots[i&uint64(len(r.slots)-1)]
	for {
		seq := s.seq.Load()
		if seq&1 == 0 && s.seq.CompareAndSwap(seq, seq+1) {
			s.ev = ev
			s.seq.Store(seq + 2)
			return
		}
		// Another writer (a wrapped emitter or the snapshotter) holds
		// the slot; on a ring sized for the job this is vanishingly
		// rare, so spinning is cheaper than any queueing.
	}
}

// Snapshot copies the currently-stable events out of the ring in
// approximate emission order. Safe to call concurrently with Emit.
func (r *Recorder) Snapshot() []Event {
	n := uint64(len(r.slots))
	head := r.next.Load()
	lo := uint64(0)
	if head > n {
		lo = head - n
	}
	out := make([]Event, 0, head-lo)
	for i := lo; i < head; i++ {
		s := &r.slots[i&(n-1)]
		for {
			seq := s.seq.Load()
			if seq&1 == 0 && s.seq.CompareAndSwap(seq, seq+1) {
				ev := s.ev
				s.seq.Store(seq + 2)
				if ev.Kind != "" {
					out = append(out, ev)
				}
				break
			}
		}
	}
	return out
}

// global is the installed recorder, nil when tracing is off.
var global atomic.Pointer[Recorder]

// StartTrace installs a fresh global recorder (and implies nothing
// about timing — flip EnableTiming separately). Returns the recorder
// so the caller can snapshot or export it at shutdown.
func StartTrace(proc, capacity int) *Recorder {
	r := NewRecorder(proc, capacity)
	global.Store(r)
	return r
}

// StopTrace uninstalls the global recorder and returns it (nil when
// none was installed).
func StopTrace() *Recorder {
	r := global.Load()
	global.Store(nil)
	return r
}

// TraceEnabled reports whether a global recorder is installed. Use it
// to skip building event payloads entirely on hot paths.
func TraceEnabled() bool { return global.Load() != nil }

// Emit records ev on the global recorder, if one is installed.
func Emit(ev Event) {
	if r := global.Load(); r != nil {
		r.Emit(ev)
	}
}

// Span records a completed span [start, now) on the global recorder.
// Call with the start captured via Now at the beginning of the
// region; a nil recorder makes it a no-op.
func Span(kind, name string, rank int, start time.Time) {
	if r := global.Load(); r != nil {
		r.Emit(Event{Kind: kind, Name: name, Rank: rank, Start: start.UnixNano(), Dur: int64(time.Since(start))})
	}
}

// BeginSpan opens a span on the global recorder and returns the
// closure that completes it. Returns nil when tracing is off, so
// callers gate with one nil check:
//
//	span := obs.BeginSpan("epoch", "execute", 0)
//	... region ...
//	if span != nil { span() }
func BeginSpan(kind, name string, rank int) func() {
	r := global.Load()
	if r == nil {
		return nil
	}
	start := time.Now()
	return func() {
		r.Emit(Event{Kind: kind, Name: name, Rank: rank, Start: start.UnixNano(), Dur: int64(time.Since(start))})
	}
}

// Instant records an instantaneous event on the global recorder.
func Instant(kind, name string, rank int) {
	if r := global.Load(); r != nil {
		r.Emit(Event{Kind: kind, Name: name, Rank: rank, Start: time.Now().UnixNano()})
	}
}

// Now returns the current time when tracing or timing needs it; it is
// a plain time.Now wrapper kept here so instrumentation sites read as
// observability code.
func Now() time.Time { return time.Now() }

// epoch is the process-wide execution-epoch counter. The spmd engine
// advances it once per collective dispatch; because every process of a
// job replays the identical replicated control flow, the counters
// agree across processes without any wire traffic, which is what lets
// a merged trace group events (and message correlation IDs) by epoch.
var epoch atomic.Int64

// AdvanceEpoch bumps the process-wide epoch counter and returns the
// new value. One atomic add — safe to call unconditionally.
func AdvanceEpoch() int64 { return epoch.Add(1) }

// CurrentEpoch returns the process-wide epoch counter (0 before the
// first dispatch).
func CurrentEpoch() int64 { return epoch.Load() }

// SetEpoch forces the epoch counter, used when a process rejoins a job
// mid-flight and must adopt the job's epoch instead of its own.
func SetEpoch(e int64) { epoch.Store(e) }
