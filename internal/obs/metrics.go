package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sample is one metric sample: label values (matching the metric's
// declared label names, in order) and the current value.
type Sample struct {
	Labels []string
	Value  float64
}

// metric is one registered pull-style metric: its collector function
// is invoked at scrape time, so the registry never caches stale
// values and the instrumented code pays nothing between scrapes.
type metric struct {
	name       string
	help       string
	kind       string // "gauge" or "counter"
	labelNames []string
	collect    func() []Sample
}

// Registry collects pull-style metrics and renders them in the
// Prometheus text exposition format (version 0.0.4: # HELP / # TYPE
// comment lines followed by name{label="value"} value samples).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(kind, name, help string, labelNames []string, collect func() []Sample) error {
	if !validMetricName(name) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	for _, l := range labelNames {
		if !validMetricName(l) {
			return fmt.Errorf("obs: invalid label name %q on metric %s", l, name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.metrics {
		if m.name == name {
			return fmt.Errorf("obs: metric %s registered twice", name)
		}
	}
	r.metrics = append(r.metrics, metric{name: name, help: help, kind: kind, labelNames: labelNames, collect: collect})
	return nil
}

// Gauge registers a gauge whose samples are pulled from collect at
// every scrape.
func (r *Registry) Gauge(name, help string, labelNames []string, collect func() []Sample) error {
	return r.register("gauge", name, help, labelNames, collect)
}

// Counter registers a monotonically-increasing counter pulled from
// collect at every scrape.
func (r *Registry) Counter(name, help string, labelNames []string, collect func() []Sample) error {
	return r.register("counter", name, help, labelNames, collect)
}

// Expose renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) Expose() []byte {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b bytes.Buffer
	for _, m := range ms {
		samples := m.collect()
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		for _, s := range samples {
			b.WriteString(m.name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, v := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%s=%q", m.labelNames[i], v)
				}
				b.WriteByte('}')
			}
			fmt.Fprintf(&b, " %s\n", strconv.FormatFloat(s.Value, 'g', -1, 64))
		}
	}
	return b.Bytes()
}

// Handler returns the /metrics HTTP handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(r.Expose())
	})
}

// Serve binds addr (host:port; port 0 auto-picks) and serves /metrics
// from this registry plus the standard /debug/pprof endpoints.
// Returns the bound address and a shutdown function.
func (r *Registry) Serve(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// validMetricName checks the Prometheus metric/label name charset
// [a-zA-Z_][a-zA-Z0-9_]* (we do not use colons).
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidateExposition checks text against the Prometheus exposition
// format: every non-comment line must be name{labels} value with a
// valid metric name, parseable label quoting and a parseable float,
// and every samples block must be preceded by matching # TYPE
// metadata. Returns the number of samples validated. This is what the
// CI smoke runs against a live /metrics scrape.
func ValidateExposition(text []byte) (int, error) {
	sc := bufio.NewScanner(bytes.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	typed := map[string]string{}
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return samples, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return samples, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				kind := fields[3]
				if kind != "gauge" && kind != "counter" && kind != "histogram" && kind != "summary" && kind != "untyped" {
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				typed[fields[2]] = kind
			}
			continue
		}
		name, rest, err := splitSampleName(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, ok := typed[name]; !ok {
			return samples, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		val := strings.TrimSpace(rest)
		if i := strings.IndexAny(val, " \t"); i >= 0 {
			// Optional trailing timestamp.
			ts := strings.TrimSpace(val[i:])
			val = val[:i]
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return samples, fmt.Errorf("line %d: bad timestamp %q", lineNo, ts)
			}
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return samples, fmt.Errorf("line %d: bad sample value %q", lineNo, val)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

// splitSampleName splits a sample line into its metric name and the
// remainder after the optional {labels} block, validating the label
// syntax.
func splitSampleName(line string) (string, string, error) {
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] != '{' {
		return name, rest, nil
	}
	// Walk the label block respecting quoted values.
	j := 1
	for j < len(rest) {
		if rest[j] == '}' {
			return name, rest[j+1:], nil
		}
		// label name
		k := j
		for k < len(rest) && rest[k] != '=' {
			k++
		}
		if k == j || k == len(rest) || !validMetricName(rest[j:k]) {
			return "", "", fmt.Errorf("malformed label block in %q", line)
		}
		k++ // past '='
		if k >= len(rest) || rest[k] != '"' {
			return "", "", fmt.Errorf("unquoted label value in %q", line)
		}
		k++
		for k < len(rest) && rest[k] != '"' {
			if rest[k] == '\\' {
				k++
			}
			k++
		}
		if k >= len(rest) {
			return "", "", fmt.Errorf("unterminated label value in %q", line)
		}
		k++ // past closing quote
		if k < len(rest) && rest[k] == ',' {
			k++
		}
		j = k
	}
	return "", "", fmt.Errorf("unterminated label block in %q", line)
}
