package obs

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sample is one metric sample: label values (matching the metric's
// declared label names, in order) and the current value.
type Sample struct {
	Labels []string
	Value  float64
}

// metric is one registered pull-style metric: its collector function
// is invoked at scrape time, so the registry never caches stale
// values and the instrumented code pays nothing between scrapes.
type metric struct {
	name       string
	help       string
	kind       string // "gauge" or "counter"
	labelNames []string
	collect    func() []Sample
}

// Registry collects pull-style metrics and renders them in the
// Prometheus text exposition format (version 0.0.4: # HELP / # TYPE
// comment lines followed by name{label="value"} value samples).
//
// A Registry is a view over a shared core: WithLabels derives a child
// view whose registrations carry extra constant labels (job name,
// generation, ...) while exposing into the same endpoint — how one
// multi-tenant daemon scopes the identical metric families per job
// without touching a single instrumentation call site.
type Registry struct {
	core        *regCore
	scopeNames  []string
	scopeValues []string
}

// regCore is the state shared by a registry and all its scoped views.
type regCore struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{core: &regCore{}} }

// WithLabels returns a view of the registry whose every registration
// carries the given constant labels, supplied as alternating
// name/value pairs: WithLabels("job", "heat", "generation", "2").
// Several views may register the same family as long as its kind and
// label names agree; Expose merges their samples under one # TYPE
// block.
func (r *Registry) WithLabels(pairs ...string) (*Registry, error) {
	if len(pairs)%2 != 0 {
		return nil, fmt.Errorf("obs: WithLabels needs name/value pairs, got %d strings", len(pairs))
	}
	child := &Registry{
		core:        r.core,
		scopeNames:  append([]string(nil), r.scopeNames...),
		scopeValues: append([]string(nil), r.scopeValues...),
	}
	for i := 0; i < len(pairs); i += 2 {
		if !validMetricName(pairs[i]) {
			return nil, fmt.Errorf("obs: invalid label name %q", pairs[i])
		}
		child.scopeNames = append(child.scopeNames, pairs[i])
		child.scopeValues = append(child.scopeValues, pairs[i+1])
	}
	return child, nil
}

func (r *Registry) register(kind, name, help string, labelNames []string, collect func() []Sample) error {
	if !validMetricName(name) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	for _, l := range labelNames {
		if !validMetricName(l) {
			return fmt.Errorf("obs: invalid label name %q on metric %s", l, name)
		}
	}
	names := append(append([]string(nil), r.scopeNames...), labelNames...)
	wrapped := collect
	if len(r.scopeValues) > 0 {
		scope := append([]string(nil), r.scopeValues...)
		wrapped = func() []Sample {
			raw := collect()
			out := make([]Sample, len(raw))
			for i, s := range raw {
				out[i] = Sample{Labels: append(append([]string(nil), scope...), s.Labels...), Value: s.Value}
			}
			return out
		}
	}
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.metrics {
		if m.name != name {
			continue
		}
		if m.kind != kind {
			return fmt.Errorf("obs: metric %s registered twice with conflicting types (%s vs %s)", name, m.kind, kind)
		}
		if !equalStrings(m.labelNames, names) {
			return fmt.Errorf("obs: metric %s registered twice with conflicting labels (%v vs %v)", name, m.labelNames, names)
		}
		// Same family from another scoped view: legal, samples merge.
	}
	c.metrics = append(c.metrics, metric{name: name, help: help, kind: kind, labelNames: names, collect: wrapped})
	return nil
}

// equalStrings reports whether two string slices are element-wise
// equal.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Gauge registers a gauge whose samples are pulled from collect at
// every scrape.
func (r *Registry) Gauge(name, help string, labelNames []string, collect func() []Sample) error {
	return r.register("gauge", name, help, labelNames, collect)
}

// Counter registers a monotonically-increasing counter pulled from
// collect at every scrape.
func (r *Registry) Counter(name, help string, labelNames []string, collect func() []Sample) error {
	return r.register("counter", name, help, labelNames, collect)
}

// Expose renders every registered metric in the Prometheus text
// exposition format. Registrations of one family (the same name from
// several scoped views) render as one # HELP / # TYPE block with
// their samples merged, which is what the format requires.
func (r *Registry) Expose() []byte {
	c := r.core
	c.mu.Lock()
	ms := append([]metric(nil), c.metrics...)
	c.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b bytes.Buffer
	for i := 0; i < len(ms); i++ {
		m := ms[i]
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		for ; i < len(ms) && ms[i].name == m.name; i++ {
			mm := ms[i]
			for _, s := range mm.collect() {
				b.WriteString(mm.name)
				if len(s.Labels) > 0 {
					b.WriteByte('{')
					for li, v := range s.Labels {
						if li > 0 {
							b.WriteByte(',')
						}
						fmt.Fprintf(&b, "%s=%q", mm.labelNames[li], v)
					}
					b.WriteByte('}')
				}
				fmt.Fprintf(&b, " %s\n", strconv.FormatFloat(s.Value, 'g', -1, 64))
			}
		}
		i--
	}
	return b.Bytes()
}

// Handler returns the /metrics HTTP handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(r.Expose())
	})
}

// Serve binds addr (host:port; port 0 auto-picks) and serves /metrics
// from this registry, a /healthz liveness probe, and the standard
// /debug/pprof endpoints. Returns the bound address and a shutdown
// function that drains in-flight scrapes before closing (so a scrape
// racing process exit reads a complete exposition, not a reset
// connection), falling back to a hard close after a short grace
// period.
func (r *Registry) Serve(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if srv.Shutdown(ctx) != nil {
			srv.Close()
		}
	}
	return ln.Addr().String(), shutdown, nil
}

// validMetricName checks the Prometheus metric/label name charset
// [a-zA-Z_][a-zA-Z0-9_]* (we do not use colons).
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidateExposition checks text against the Prometheus exposition
// format: every non-comment line must be name{labels} value with a
// valid metric name, parseable label quoting and a parseable float,
// and every samples block must be preceded by matching # TYPE
// metadata. Returns the number of samples validated. This is what the
// CI smoke runs against a live /metrics scrape.
func ValidateExposition(text []byte) (int, error) {
	sc := bufio.NewScanner(bytes.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	typed := map[string]string{}
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return samples, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return samples, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				kind := fields[3]
				if kind != "gauge" && kind != "counter" && kind != "histogram" && kind != "summary" && kind != "untyped" {
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				if _, dup := typed[fields[2]]; dup {
					return samples, fmt.Errorf("line %d: duplicate # TYPE for family %s", lineNo, fields[2])
				}
				typed[fields[2]] = kind
			}
			continue
		}
		name, rest, err := splitSampleName(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, ok := typed[name]; !ok {
			return samples, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		val := strings.TrimSpace(rest)
		if i := strings.IndexAny(val, " \t"); i >= 0 {
			// Optional trailing timestamp.
			ts := strings.TrimSpace(val[i:])
			val = val[:i]
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return samples, fmt.Errorf("line %d: bad timestamp %q", lineNo, ts)
			}
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return samples, fmt.Errorf("line %d: bad sample value %q", lineNo, val)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

// splitSampleName splits a sample line into its metric name and the
// remainder after the optional {labels} block, validating the label
// syntax.
func splitSampleName(line string) (string, string, error) {
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] != '{' {
		return name, rest, nil
	}
	// Walk the label block respecting quoted values.
	j := 1
	for j < len(rest) {
		if rest[j] == '}' {
			return name, rest[j+1:], nil
		}
		// label name
		k := j
		for k < len(rest) && rest[k] != '=' {
			k++
		}
		if k == j || k == len(rest) || !validMetricName(rest[j:k]) {
			return "", "", fmt.Errorf("malformed label block in %q", line)
		}
		k++ // past '='
		if k >= len(rest) || rest[k] != '"' {
			return "", "", fmt.Errorf("unquoted label value in %q", line)
		}
		k++
		for k < len(rest) && rest[k] != '"' {
			if rest[k] == '\\' {
				k++
			}
			k++
		}
		if k >= len(rest) {
			return "", "", fmt.Errorf("unterminated label value in %q", line)
		}
		k++ // past closing quote
		if k < len(rest) && rest[k] == ',' {
			k++
		}
		j = k
	}
	return "", "", fmt.Errorf("unterminated label block in %q", line)
}
