package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sendRecvPair builds a matched send/recv event pair on one flow ID.
func sendRecvPair(flow uint64, epoch int64, srcProc, dstProc int, t0 int64) (Event, Event) {
	send := Event{Kind: "send", Name: "msg 1->2 #1 (4 elems)", Proc: srcProc, Rank: 1,
		Start: t0, Dur: 2_000, Epoch: epoch, Flow: flow}
	recv := Event{Kind: "recv", Name: "msg 1->2 #1 (4 elems)", Proc: dstProc, Rank: 2,
		Start: t0 + 5_000, Dur: 40_000, Epoch: epoch, Flow: flow}
	return send, recv
}

func TestTraceFlowRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flow.json")
	send, recv := sendRecvPair(0xdeadbeef, 7, 0, 1, 3_000_000_000_000)
	if err := WriteTrace(path, []Event{send, recv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The file must contain the Perfetto flow arrow pair: a "s" start
	// and a "f" finish bound to its enclosing slice, sharing one id.
	for _, want := range []string{`"ph": "s"`, `"ph": "f"`, `"bp": "e"`, `"id": "deadbeef"`, `"flow": "deadbeef"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace file missing %s:\n%s", want, data)
		}
	}
	out, err := ReadTraceEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flow arrows are derived, not events: the read must return the
	// two real spans with Flow and Epoch restored.
	if len(out) != 2 {
		t.Fatalf("read %d events, want 2 (flow arrows must be skipped)", len(out))
	}
	for _, ev := range out {
		if ev.Flow != 0xdeadbeef {
			t.Errorf("%s event lost its flow ID: got %#x", ev.Kind, ev.Flow)
		}
		if ev.Epoch != 7 {
			t.Errorf("%s event lost its epoch: got %d", ev.Kind, ev.Epoch)
		}
	}
}

func TestMergeTracesPreservesFlows(t *testing.T) {
	// A cross-process pair: the send in part 0, the recv in part 1,
	// parts listed out of order, plus a missing part (a SIGKILLed
	// member that never flushed) and a second pair whose recv died
	// with it.
	dir := t.TempDir()
	p0 := filepath.Join(dir, "t.p0.json")
	p1 := filepath.Join(dir, "t.p1.json")
	missing := filepath.Join(dir, "t.p2.json")
	send1, recv1 := sendRecvPair(0xabc1, 3, 0, 1, 4_000_000_000_000)
	send2, _ := sendRecvPair(0xabc2, 3, 0, 2, 4_000_100_000_000) // recv lost with proc 2
	if err := WriteTrace(p0, []Event{send2, send1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(p1, []Event{recv1}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "t.json")
	// Parts deliberately out of order; p2 missing.
	if _, err := MergeTraces(out, []string{p1, missing, p0}); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadTraceEvents(out)
	if err != nil {
		t.Fatal(err)
	}
	flows := map[uint64][]string{}
	for _, ev := range evs {
		if ev.Flow != 0 {
			flows[ev.Flow] = append(flows[ev.Flow], ev.Kind)
		}
	}
	if got := flows[0xabc1]; len(got) != 2 {
		t.Fatalf("cross-process flow abc1 has %d ends after merge, want 2 (%v)", len(got), got)
	}
	if got := flows[0xabc2]; len(got) != 1 || got[0] != "send" {
		t.Fatalf("half-flow abc2 (dead receiver) should keep its send end, got %v", got)
	}
	// The merged file must still render the surviving pair as a
	// Perfetto arrow: both the "s" and "f" phases present.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ph": "s"`, `"ph": "f"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("merged trace lost its flow arrows: missing %s", want)
		}
	}
}

func TestMergeTracesGenerationBump(t *testing.T) {
	// A recovery story: the same (src,dst,seq) coordinates recur at a
	// bumped generation. FlowIDs are generation-salted by the
	// transports, so the two pairs must keep distinct IDs; this test
	// pins the merge keeping all four ends on two distinct flows.
	dir := t.TempDir()
	p0 := filepath.Join(dir, "g.p0.json")
	p1 := filepath.Join(dir, "g.p1.json")
	s1, r1 := sendRecvPair(0x111, 5, 0, 1, 5_000_000_000_000)
	s2, r2 := sendRecvPair(0x222, 1<<20|1, 0, 1, 5_001_000_000_000) // generation 1 re-based epoch
	if err := WriteTrace(p0, []Event{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(p1, []Event{r1, r2}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.json")
	if _, err := MergeTraces(out, []string{p0, p1}); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadTraceEvents(out)
	if err != nil {
		t.Fatal(err)
	}
	byFlow := map[uint64]int{}
	for _, ev := range evs {
		if ev.Flow != 0 {
			byFlow[ev.Flow]++
		}
	}
	if len(byFlow) != 2 || byFlow[0x111] != 2 || byFlow[0x222] != 2 {
		t.Fatalf("want two distinct 2-ended flows across the generation bump, got %v", byFlow)
	}
}
