package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTimingSwitch(t *testing.T) {
	if TimingEnabled() {
		t.Fatal("timing should be off by default")
	}
	EnableTiming(true)
	if !TimingEnabled() {
		t.Fatal("EnableTiming(true) did not stick")
	}
	EnableTiming(false)
	if TimingEnabled() {
		t.Fatal("EnableTiming(false) did not stick")
	}
}

func TestRecorderRoundtrip(t *testing.T) {
	r := NewRecorder(3, 64)
	r.Emit(Event{Kind: "epoch", Name: "e1", Rank: 2, Start: 100, Dur: 50})
	r.Emit(Event{Kind: "recovery", Name: "r1", Start: 200})
	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot returned %d events, want 2", len(evs))
	}
	if evs[0].Proc != 3 || evs[1].Proc != 3 {
		t.Errorf("recorder did not stamp its proc: %+v", evs)
	}
	if evs[0].Kind != "epoch" || evs[0].Rank != 2 || evs[0].Dur != 50 {
		t.Errorf("event 0 mangled: %+v", evs[0])
	}
}

func TestRecorderWrapKeepsRecentWindow(t *testing.T) {
	r := NewRecorder(0, 1024) // minimum capacity
	n := len(r.slots)
	for i := 0; i < n+100; i++ {
		r.Emit(Event{Kind: "k", Name: fmt.Sprintf("e%d", i), Start: int64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != n {
		t.Fatalf("wrapped ring snapshot has %d events, want %d", len(evs), n)
	}
	// The oldest surviving event must be one of the most recent n.
	for _, ev := range evs {
		if ev.Start < 100 {
			t.Fatalf("event %+v should have been overwritten by the wrap", ev)
		}
	}
}

func TestRecorderConcurrentEmitSnapshot(t *testing.T) {
	r := NewRecorder(0, 1024)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Emit(Event{Kind: "k", Name: "n", Rank: g, Start: int64(i), Dur: 1})
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		for _, ev := range r.Snapshot() {
			if ev.Kind != "k" || ev.Name != "n" {
				t.Errorf("torn event escaped the ring: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestGlobalRecorderAndSpans(t *testing.T) {
	if TraceEnabled() {
		t.Fatal("tracing should be off by default")
	}
	if span := BeginSpan("epoch", "x", 0); span != nil {
		t.Fatal("BeginSpan must return nil with tracing off")
	}
	Instant("k", "dropped", 0) // must be a no-op, not a panic

	rec := StartTrace(5, 64)
	if !TraceEnabled() {
		t.Fatal("StartTrace did not install the recorder")
	}
	span := BeginSpan("epoch", "body", 1)
	if span == nil {
		t.Fatal("BeginSpan returned nil with tracing on")
	}
	time.Sleep(time.Millisecond)
	span()
	Instant("recovery", "mark", 0)
	Span("reduce", "sum", 2, time.Now().Add(-time.Millisecond))
	got := StopTrace()
	if got != rec {
		t.Fatal("StopTrace returned a different recorder")
	}
	if TraceEnabled() {
		t.Fatal("StopTrace left tracing enabled")
	}
	evs := rec.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("recorded %d events, want 3", len(evs))
	}
	byKind := map[string]Event{}
	for _, ev := range evs {
		byKind[ev.Kind] = ev
		if ev.Proc != 5 {
			t.Errorf("event not stamped with proc 5: %+v", ev)
		}
	}
	if byKind["epoch"].Dur <= 0 {
		t.Errorf("span has no duration: %+v", byKind["epoch"])
	}
	if byKind["recovery"].Dur != 0 {
		t.Errorf("instant has a duration: %+v", byKind["recovery"])
	}
}
