package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTraceWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	in := []Event{
		{Kind: "epoch", Name: "execute x4", Proc: 0, Rank: 0, Start: 1_000_000_000_000, Dur: 5_000_000},
		{Kind: "reduce", Name: "reduce A", Proc: 0, Rank: 2, Start: 1_000_007_000_000, Dur: 1_000_000},
		{Kind: "recovery", Name: "rollback", Proc: 1, Rank: 0, Start: 1_000_009_000_000},
	}
	if err := WriteTrace(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTraceEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	// The exporter sorts by start; timestamps are rebased through a
	// microsecond float field, so they roundtrip to µs precision.
	for i, ev := range out {
		if ev.Kind != in[i].Kind || ev.Name != in[i].Name || ev.Proc != in[i].Proc || ev.Rank != in[i].Rank {
			t.Errorf("event %d identity mangled: got %+v want %+v", i, ev, in[i])
		}
		if d := ev.Start - in[i].Start; d < -1000 || d > 1000 {
			t.Errorf("event %d start drifted %dns through the roundtrip", i, d)
		}
		if d := ev.Dur - in[i].Dur; d < -1000 || d > 1000 {
			t.Errorf("event %d duration drifted %dns", i, d)
		}
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := WriteTrace(path, nil); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadTraceEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("empty trace read back %d events", len(evs))
	}
}

func TestMergeTraces(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "t.p0.json")
	p1 := filepath.Join(dir, "t.p1.json")
	missing := filepath.Join(dir, "t.p2.json") // SIGKILLed member: never flushed
	if err := WriteTrace(p0, []Event{
		{Kind: "epoch", Name: "a", Proc: 0, Start: 2_000_000_000_000, Dur: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(p1, []Event{
		{Kind: "epoch", Name: "b", Proc: 1, Start: 2_000_500_000_000, Dur: 1000},
		{Kind: "recovery", Name: "c", Proc: 1, Start: 2_001_000_000_000},
	}); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "t.json")
	n, err := MergeTraces(out, []string{p0, p1, missing})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("merged %d events, want 3", n)
	}
	evs, err := ReadTraceEvents(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("merged file has %d events, want 3", len(evs))
	}
	// Cross-process ordering must survive the merge: each part is
	// rebased to its own t=0, so the merge must realign via baseNS.
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatalf("merged events out of order: %+v before %+v", evs[i-1], evs[i])
		}
	}
	if evs[0].Name != "a" || evs[1].Name != "b" || evs[2].Name != "c" {
		t.Fatalf("merged order wrong: %v %v %v", evs[0].Name, evs[1].Name, evs[2].Name)
	}
}

func TestMergeTracesAllMissing(t *testing.T) {
	dir := t.TempDir()
	if _, err := MergeTraces(filepath.Join(dir, "out.json"), []string{
		filepath.Join(dir, "nope.p0.json"),
	}); err == nil {
		t.Fatal("merge of zero existing parts must fail")
	}
}

func TestReadTraceEventsRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceEvents(path); err == nil {
		t.Fatal("garbage file must not parse as a trace")
	}
}
