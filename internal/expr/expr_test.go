package expr

import (
	"testing"
	"testing/quick"

	"hpfnt/internal/index"
)

func TestConstAndDummy(t *testing.T) {
	if v, err := Const(42).Eval(Env{}); err != nil || v != 42 {
		t.Fatalf("Const: %d, %v", v, err)
	}
	if v, err := Dummy("I").Eval(Value("I", 7)); err != nil || v != 7 {
		t.Fatalf("Dummy: %d, %v", v, err)
	}
	if _, err := Dummy("I").Eval(Env{}); err == nil {
		t.Fatal("unbound dummy must error")
	}
}

func TestArithmetic(t *testing.T) {
	// 2*I - 1 at I=5 -> 9 (the staggered grid map of §8.1.1).
	e := Sub(Mul(Const(2), Dummy("I")), Const(1))
	v, err := e.Eval(Value("I", 5))
	if err != nil || v != 9 {
		t.Fatalf("2*I-1 at 5 = %d, %v", v, err)
	}
	// (J-0)*2 + 0 at J=3 -> 6 (colon-triplet normalization form).
	e2 := Add(Mul(Sub(Dummy("J"), Const(0)), Const(2)), Const(0))
	if v, _ := e2.Eval(Value("J", 3)); v != 6 {
		t.Fatalf("got %d", v)
	}
}

func TestAffine(t *testing.T) {
	cases := []struct {
		a, b, j, want int
	}{
		{2, -1, 5, 9},
		{1, 0, 3, 3},
		{0, 7, 100, 7},
		{-3, 2, 4, -10},
		{1, 5, 2, 7},
	}
	for _, c := range cases {
		e := Affine(c.a, "J", c.b)
		v, err := e.Eval(Value("J", c.j))
		if err != nil || v != c.want {
			t.Errorf("Affine(%d,J,%d) at %d = %d (%v), want %d", c.a, c.b, c.j, v, err, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	e := Max(Dummy("I"), Const(1))
	if v, _ := e.Eval(Value("I", -5)); v != 1 {
		t.Fatalf("MAX(I,1) at -5 = %d", v)
	}
	if v, _ := e.Eval(Value("I", 9)); v != 9 {
		t.Fatalf("MAX(I,9) = %d", v)
	}
	e2 := Min(Dummy("I"), Const(100), Const(50))
	if v, _ := e2.Eval(Value("I", 70)); v != 50 {
		t.Fatalf("MIN = %d", v)
	}
	if _, err := (MinMax{IsMax: true}).Eval(Env{}); err == nil {
		t.Fatal("empty MAX must error")
	}
}

func TestBoundIntrinsics(t *testing.T) {
	env := Env{Bounds: func(array string, dim int) (index.Triplet, error) {
		if array != "A" || dim != 1 {
			t.Fatalf("unexpected query %s %d", array, dim)
		}
		return index.Unit(0, 63), nil
	}}
	if v, err := LBound("A", 1).Eval(env); err != nil || v != 0 {
		t.Fatalf("LBOUND = %d, %v", v, err)
	}
	if v, err := UBound("A", 1).Eval(env); err != nil || v != 63 {
		t.Fatalf("UBOUND = %d, %v", v, err)
	}
	if v, err := Size("A", 1).Eval(env); err != nil || v != 64 {
		t.Fatalf("SIZE = %d, %v", v, err)
	}
	if _, err := Size("A", 1).Eval(Env{}); err == nil {
		t.Fatal("bounds without resolver must error")
	}
}

func TestDummiesCollection(t *testing.T) {
	e := Add(Mul(Const(2), Dummy("I")), Max(Dummy("I"), Const(1)))
	ds := Dummies(e)
	if len(ds) != 1 || ds[0] != "I" {
		t.Fatalf("Dummies = %v", ds)
	}
	if !IsDummyless(Const(3)) {
		t.Fatal("Const must be dummyless")
	}
	if IsDummyless(e) {
		t.Fatal("e is not dummyless")
	}
}

func TestLinearize(t *testing.T) {
	cases := []struct {
		e       Expr
		coeff   int
		offset  int
		dummy   string
		wantErr bool
	}{
		{Affine(2, "I", -1), 2, -1, "I", false},
		{Const(5), 0, 5, "", false},
		{Dummy("J"), 1, 0, "J", false},
		{Sub(Dummy("I"), Dummy("I")), 0, 0, "", false},
		{Mul(Dummy("I"), Dummy("I")), 0, 0, "", true},
		{Max(Dummy("I"), Const(0)), 0, 0, "", true},
		{Add(Dummy("I"), Dummy("J")), 0, 0, "", true},
		{Mul(Const(3), Sub(Dummy("K"), Const(2))), 3, -6, "K", false},
	}
	for _, c := range cases {
		l, err := Linearize(c.e, Env{})
		if c.wantErr {
			if err == nil {
				t.Errorf("Linearize(%s): expected error", c.e)
			}
			continue
		}
		if err != nil {
			t.Errorf("Linearize(%s): %v", c.e, err)
			continue
		}
		if l.Coeff != c.coeff || l.Offset != c.offset || l.DummyName != c.dummy {
			t.Errorf("Linearize(%s) = %+v, want coeff=%d offset=%d dummy=%q", c.e, l, c.coeff, c.offset, c.dummy)
		}
	}
}

// Property: Linearize agrees with Eval on affine expressions.
func TestLinearizeAgreesWithEval(t *testing.T) {
	f := func(a, b int8, j int8) bool {
		e := Affine(int(a), "J", int(b))
		l, err := Linearize(e, Env{})
		if err != nil {
			return false
		}
		v, err := e.Eval(Value("J", int(j)))
		if err != nil {
			return false
		}
		return l.Apply(int(j)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Affine(2, "I", -1), "2*I-1"},
		{Affine(1, "I", 0), "I"},
		{Max(Dummy("I"), Const(1)), "MAX(I,1)"},
		{Min(Const(3), Const(4)), "MIN(3,4)"},
		{LBound("A", 2), "LBOUND(A,2)"},
		{Mul(Add(Dummy("I"), Const(1)), Const(2)), "(I+1)*2"},
		{Sub(Dummy("I"), Add(Const(1), Const(2))), "I-(1+2)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}
