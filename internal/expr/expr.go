// Package expr implements the scalar integer expressions permitted in
// the paper's alignment functions (§5.1): expressions built with "+",
// "-", and "*" that are linear in at most one align-dummy, optionally
// using the intrinsic functions MAX, MIN, LBOUND, UBOUND and SIZE
// ("Since linear expressions cannot handle some frequently occurring
// cases, such as truncation at either end of the alignment, we also
// allow the intrinsic functions MAX, MIN, LBOUND, UBOUND, and SIZE to
// be used in alignment functions"). In the pipeline it serves the
// directive front end and package align: parsed subscript expressions
// evaluate here, and their linear-form extraction is what package
// align's affine interval transport is built on.
package expr

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hpfnt/internal/index"
)

// Env supplies the values needed to evaluate an expression: bindings
// for align-dummies and bounds information for arrays referenced by
// the LBOUND/UBOUND/SIZE intrinsics.
type Env struct {
	// Dummies maps align-dummy names to their current values.
	Dummies map[string]int
	// Bounds returns the subscript triplet of the given 1-based
	// dimension of the named array. It may be nil if no intrinsic
	// referencing array bounds occurs.
	Bounds func(array string, dim int) (index.Triplet, error)
}

// Value binds a single dummy name to v in a fresh environment.
func Value(name string, v int) Env {
	return Env{Dummies: map[string]int{name: v}}
}

// Expr is a scalar integer expression.
type Expr interface {
	// Eval computes the expression's value under env.
	Eval(env Env) (int, error)
	// CollectDummies adds the names of all align-dummies occurring in
	// the expression to set.
	CollectDummies(set map[string]bool)
	// String renders the expression in Fortran-like syntax.
	String() string
}

// Dummies returns the sorted names of align-dummies occurring in e.
func Dummies(e Expr) []string {
	set := map[string]bool{}
	e.CollectDummies(set)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsDummyless reports whether e contains no align-dummy (a
// "dummyless-expr" in the paper's grammar).
func IsDummyless(e Expr) bool { return len(Dummies(e)) == 0 }

// Const is an integer literal.
type Const int

// Eval returns the literal value.
func (c Const) Eval(Env) (int, error) { return int(c), nil }

// CollectDummies is a no-op for literals.
func (c Const) CollectDummies(map[string]bool) {}

func (c Const) String() string { return fmt.Sprint(int(c)) }

// Dummy references an align-dummy by name.
type Dummy string

// Eval looks the dummy up in the environment.
func (d Dummy) Eval(env Env) (int, error) {
	v, ok := env.Dummies[string(d)]
	if !ok {
		return 0, fmt.Errorf("expr: unbound align-dummy %q", string(d))
	}
	return v, nil
}

// CollectDummies records the dummy's name.
func (d Dummy) CollectDummies(set map[string]bool) { set[string(d)] = true }

func (d Dummy) String() string { return string(d) }

// BinOp identifies an arithmetic operator.
type BinOp int

// The operators permitted by the paper: "+", "-" and "*".
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	}
	return "?"
}

// Bin is a binary arithmetic expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Add returns l+r.
func Add(l, r Expr) Expr { return Bin{OpAdd, l, r} }

// Sub returns l-r.
func Sub(l, r Expr) Expr { return Bin{OpSub, l, r} }

// Mul returns l*r.
func Mul(l, r Expr) Expr { return Bin{OpMul, l, r} }

// Affine returns a*J+b for the named dummy, simplifying trivial
// coefficients.
func Affine(a int, dummy string, b int) Expr {
	var e Expr
	switch a {
	case 0:
		return Const(b)
	case 1:
		e = Dummy(dummy)
	default:
		e = Mul(Const(a), Dummy(dummy))
	}
	switch {
	case b == 0:
		return e
	case b < 0:
		return Sub(e, Const(-b))
	default:
		return Add(e, Const(b))
	}
}

// Eval computes the operation.
func (b Bin) Eval(env Env) (int, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	}
	return 0, fmt.Errorf("expr: unknown operator %d", int(b.Op))
}

// CollectDummies descends into both operands.
func (b Bin) CollectDummies(set map[string]bool) {
	b.L.CollectDummies(set)
	b.R.CollectDummies(set)
}

func (b Bin) String() string {
	l, r := b.L.String(), b.R.String()
	if b.Op == OpMul {
		if lb, ok := b.L.(Bin); ok && lb.Op != OpMul {
			l = "(" + l + ")"
		}
		if rb, ok := b.R.(Bin); ok && rb.Op != OpMul {
			r = "(" + r + ")"
		}
	}
	if b.Op == OpSub {
		if rb, ok := b.R.(Bin); ok && (rb.Op == OpAdd || rb.Op == OpSub) {
			r = "(" + r + ")"
		}
	}
	return l + b.Op.String() + r
}

// MinMax is the MAX or MIN intrinsic over two or more arguments.
type MinMax struct {
	IsMax bool
	Args  []Expr
}

// Max returns MAX(args...).
func Max(args ...Expr) Expr { return MinMax{IsMax: true, Args: args} }

// Min returns MIN(args...).
func Min(args ...Expr) Expr { return MinMax{IsMax: false, Args: args} }

// Eval computes the extremum of the arguments.
func (m MinMax) Eval(env Env) (int, error) {
	if len(m.Args) == 0 {
		return 0, errors.New("expr: MAX/MIN requires at least one argument")
	}
	best, err := m.Args[0].Eval(env)
	if err != nil {
		return 0, err
	}
	for _, a := range m.Args[1:] {
		v, err := a.Eval(env)
		if err != nil {
			return 0, err
		}
		if (m.IsMax && v > best) || (!m.IsMax && v < best) {
			best = v
		}
	}
	return best, nil
}

// CollectDummies descends into all arguments.
func (m MinMax) CollectDummies(set map[string]bool) {
	for _, a := range m.Args {
		a.CollectDummies(set)
	}
}

func (m MinMax) String() string {
	name := "MIN"
	if m.IsMax {
		name = "MAX"
	}
	parts := make([]string, len(m.Args))
	for i, a := range m.Args {
		parts[i] = a.String()
	}
	return name + "(" + strings.Join(parts, ",") + ")"
}

// BoundKind selects among the array-inquiry intrinsics.
type BoundKind int

// The array-inquiry intrinsics admitted in alignment functions.
const (
	KindLBound BoundKind = iota // LBOUND(array, dim)
	KindUBound                  // UBOUND(array, dim)
	KindSize                    // SIZE(array, dim)
)

func (k BoundKind) String() string {
	switch k {
	case KindLBound:
		return "LBOUND"
	case KindUBound:
		return "UBOUND"
	case KindSize:
		return "SIZE"
	}
	return "?"
}

// Bound is an LBOUND/UBOUND/SIZE intrinsic reference.
type Bound struct {
	Kind  BoundKind
	Array string
	Dim   int // 1-based dimension
}

// LBound returns LBOUND(array, dim).
func LBound(array string, dim int) Expr { return Bound{KindLBound, array, dim} }

// UBound returns UBOUND(array, dim).
func UBound(array string, dim int) Expr { return Bound{KindUBound, array, dim} }

// Size returns SIZE(array, dim).
func Size(array string, dim int) Expr { return Bound{KindSize, array, dim} }

// Eval resolves the bound through the environment.
func (b Bound) Eval(env Env) (int, error) {
	if env.Bounds == nil {
		return 0, fmt.Errorf("expr: %s(%s,%d) requires array bounds in environment", b.Kind, b.Array, b.Dim)
	}
	t, err := env.Bounds(b.Array, b.Dim)
	if err != nil {
		return 0, err
	}
	switch b.Kind {
	case KindLBound:
		return t.Low, nil
	case KindUBound:
		return t.Last(), nil
	case KindSize:
		return t.Count(), nil
	}
	return 0, fmt.Errorf("expr: unknown bound kind %d", int(b.Kind))
}

// CollectDummies is a no-op: bounds contain no dummies.
func (b Bound) CollectDummies(map[string]bool) {}

func (b Bound) String() string { return fmt.Sprintf("%s(%s,%d)", b.Kind, b.Array, b.Dim) }

// Linear is the affine normal form a*J + b of an expression that is
// linear in a single dummy J (Coeff may be 0 for dummyless
// expressions, in which case DummyName is empty).
type Linear struct {
	Coeff     int
	DummyName string
	Offset    int
}

// Apply evaluates the linear form at j.
func (l Linear) Apply(j int) int { return l.Coeff*j + l.Offset }

// Linearize attempts to put e into affine normal form a*J+b. It fails
// for expressions using MAX/MIN (which are not affine), products of
// two dummy-bearing subexpressions (non-linear), or expressions with
// more than one distinct dummy. LBOUND/UBOUND/SIZE references are
// folded to constants through env (dummy bindings in env are ignored).
func Linearize(e Expr, env Env) (Linear, error) {
	switch n := e.(type) {
	case Const:
		return Linear{Offset: int(n)}, nil
	case Dummy:
		return Linear{Coeff: 1, DummyName: string(n)}, nil
	case Bound:
		v, err := n.Eval(env)
		if err != nil {
			return Linear{}, err
		}
		return Linear{Offset: v}, nil
	case MinMax:
		return Linear{}, fmt.Errorf("expr: %s is not affine", n)
	case Bin:
		l, err := Linearize(n.L, env)
		if err != nil {
			return Linear{}, err
		}
		r, err := Linearize(n.R, env)
		if err != nil {
			return Linear{}, err
		}
		switch n.Op {
		case OpAdd, OpSub:
			s := 1
			if n.Op == OpSub {
				s = -1
			}
			out := Linear{Coeff: l.Coeff + s*r.Coeff, Offset: l.Offset + s*r.Offset}
			switch {
			case l.DummyName != "" && r.DummyName != "" && l.DummyName != r.DummyName:
				return Linear{}, fmt.Errorf("expr: multiple dummies %s, %s", l.DummyName, r.DummyName)
			case l.DummyName != "":
				out.DummyName = l.DummyName
			default:
				out.DummyName = r.DummyName
			}
			if out.Coeff == 0 {
				out.DummyName = ""
			}
			return out, nil
		case OpMul:
			if l.Coeff != 0 && r.Coeff != 0 {
				return Linear{}, errors.New("expr: product of two dummy-bearing terms is non-linear")
			}
			if l.Coeff == 0 {
				return Linear{Coeff: l.Offset * r.Coeff, DummyName: nonEmptyIf(r.DummyName, l.Offset*r.Coeff != 0), Offset: l.Offset * r.Offset}, nil
			}
			return Linear{Coeff: r.Offset * l.Coeff, DummyName: nonEmptyIf(l.DummyName, r.Offset*l.Coeff != 0), Offset: l.Offset * r.Offset}, nil
		}
	}
	return Linear{}, fmt.Errorf("expr: cannot linearize %s", e)
}

func nonEmptyIf(name string, keep bool) string {
	if keep {
		return name
	}
	return ""
}
