package spmd

import (
	"fmt"
	"sort"

	"hpfnt/internal/core"
	"hpfnt/internal/obs"
	"hpfnt/internal/runtime"
)

// rsend ships this worker's old copies of moved elements to one new
// owner; rrecv scatters them into the destination's new segment.
type rsend struct {
	dst      int
	oldSlots []int32
}

type rrecv struct {
	src      int
	newSlots []int32
}

// rplan is one worker's share of a remap: local old→new copies for
// retained elements plus the per-pair shipments.
type rplan struct {
	copies [][2]int32
	sends  []rsend
	recvs  []rrecv
}

// Remap moves an array to a new element mapping: every worker builds
// its new local segment, keeps the elements it still owns by local
// copy, and receives the rest from the old owners as one aggregated
// message per processor pair. The sender for each (replica set,
// destination) pair follows runtime.RemapSender, so the spmd engine
// and the sequential oracle charge identical traffic. Returns the
// number of elements whose owner set gained a member. Compiled
// schedules over the array are invalidated.
func (e *Engine) Remap(a *Array, newMap core.ElementMapping) (int, error) {
	if a.eng != e {
		return 0, fmt.Errorf("spmd: array %s belongs to a different engine", a.name)
	}
	if !newMap.Domain().Equal(a.dom) {
		return 0, fmt.Errorf("spmd: remap of %s to mapping over %s (have %s)", a.name, newMap.Domain(), a.dom)
	}
	nl, err := buildLayout(e, newMap)
	if err != nil {
		return 0, fmt.Errorf("spmd: remap of %s: %w", a.name, err)
	}
	plans := make([]*rplan, e.np+1)
	planOf := func(p int) *rplan {
		if plans[p] == nil {
			plans[p] = &rplan{}
		}
		return plans[p]
	}
	type pairList struct {
		oldSlots []int32
		newSlots []int32
	}
	pairs := map[[2]int]*pairList{}
	moved := 0
	size := a.dom.Size()
	var oldScratch, newScratch []int
	for off := 0; off < size; off++ {
		oldScratch = a.lay.appendOwners(oldScratch[:0], off)
		newScratch = nl.appendOwners(newScratch[:0], off)
		anyNew := false
		for _, p := range newScratch {
			if containsInt(oldScratch, p) {
				planOf(p).copies = append(planOf(p).copies, [2]int32{a.lay.slotOf(p, off), nl.slotOf(p, off)})
				continue
			}
			anyNew = true
			s := runtime.RemapSender(oldScratch, p)
			pr := [2]int{s, p}
			pl := pairs[pr]
			if pl == nil {
				pl = &pairList{}
				pairs[pr] = pl
			}
			pl.oldSlots = append(pl.oldSlots, a.lay.slotOf(s, off))
			pl.newSlots = append(pl.newSlots, nl.slotOf(p, off))
		}
		if anyNew {
			moved++
		}
	}
	keys := make([][2]int, 0, len(pairs))
	for pr := range pairs {
		keys = append(keys, pr)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, pr := range keys {
		pl := pairs[pr]
		sp := planOf(pr[0])
		sp.sends = append(sp.sends, rsend{dst: pr[1], oldSlots: pl.oldSlots})
		rp := planOf(pr[1])
		rp.recvs = append(rp.recvs, rrecv{src: pr[0], newSlots: pl.newSlots})
	}
	span := obs.BeginSpan("remap", fmt.Sprintf("remap %s", a.name), 0)
	oldLay := a.lay
	err = e.run(func(p int) {
		oldData := oldLay.stores[p].data
		newData := nl.stores[p].data
		wp := plans[p]
		if wp == nil {
			return
		}
		for _, cp := range wp.copies {
			newData[cp[1]] = oldData[cp[0]]
		}
		var c counters
		for i := range wp.sends {
			sp := &wp.sends[i]
			buf := make([]float64, len(sp.oldSlots))
			for k, sl := range sp.oldSlots {
				buf[k] = oldData[sl]
			}
			e.send(p, sp.dst, buf)
			c.sends = append(c.sends, sendCount{dst: sp.dst, elems: len(sp.oldSlots), msgs: 1, frames: 1})
		}
		for i := range wp.recvs {
			rp := &wp.recvs[i]
			msg := e.recv(rp.src, p)
			for k, v := range msg {
				newData[rp.newSlots[k]] = v
			}
		}
		if len(c.sends) > 0 {
			e.flush(p, &c)
		}
	})
	if span != nil {
		span()
	}
	if err != nil {
		return 0, err
	}
	a.lay = nl
	a.mapping = newMap
	a.gen++
	return moved, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
