package spmd

import (
	"sync/atomic"

	"hpfnt/internal/machine"
)

// phaseBank is the per-worker phase-time accumulator shared between
// the worker goroutines and the dispatcher: a flat slice of atomics
// indexed phase-major like machine's phase block. Workers add wall
// time lock-free (the barrier-wait slice is recorded outside any
// epoch, where the statsMu flush path is unavailable), and the
// dispatcher drains it into the machine under statsMu before every
// counter snapshot. The bank holds no reference to the Engine, so the
// worker goroutines capturing it keep the finalizer backstop intact.
type phaseBank struct {
	stride int
	ns     []int64
}

func newPhaseBank(np int) *phaseBank {
	return &phaseBank{stride: np + 1, ns: make([]int64, machine.NumPhases*(np+1))}
}

// add charges ns nanoseconds of phase ph to worker p.
func (b *phaseBank) add(p int, ph machine.Phase, ns int64) {
	if ns <= 0 {
		return
	}
	atomic.AddInt64(&b.ns[int(ph)*b.stride+p], ns)
}

// drainInto moves the accumulated times into m (caller holds the
// machine's lock). Swap-to-zero keeps late worker adds: a barrier
// wait recorded after this drain simply lands in the next snapshot.
func (b *phaseBank) drainInto(m *machine.Machine) {
	for ph := 0; ph < machine.NumPhases; ph++ {
		for p := 1; p < b.stride; p++ {
			if v := atomic.SwapInt64(&b.ns[ph*b.stride+p], 0); v != 0 {
				m.AddPhaseNS(p, machine.Phase(ph), v)
			}
		}
	}
}

// phaseTally is a worker job's local phase tally, folded into its
// counters flush. Nil when phase timing is disabled, which is how the
// hot paths skip the clock entirely.
type phaseTally [machine.NumPhases]int64
