package spmd

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
	"hpfnt/internal/runtime"
	"hpfnt/internal/transport"
)

// TestWorkerPanicSurfaces checks the robustness fix: a panicking
// worker (here: a user Fill function) must not deadlock the engine —
// the failure surfaces as an error from the next dispatched
// operation and stays sticky.
func TestWorkerPanicSurfaces(t *testing.T) {
	for _, kind := range transport.Kinds() {
		t.Run(kind, func(t *testing.T) {
			const n, np = 16, 4
			sys, _ := proc.NewSystem(np)
			dom := index.Standard(1, n)
			tr, err := transport.New(kind, np)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewOn(tr, machine.DefaultCost())
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			a, err := e.NewArray("A", mapping(t, sys, dom, dist.Block{}))
			if err != nil {
				t.Fatal(err)
			}
			a.Fill(func(tu index.Tuple) float64 {
				if tu[0] == 7 {
					panic("injected failure")
				}
				return float64(tu[0])
			})
			s, err := e.BuildSchedule(a, index.Standard(2, n), []Term{Ref(a, 1, -1)})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- s.ExecuteN(3) }()
			select {
			case err := <-done:
				if err == nil || !strings.Contains(err.Error(), "panicked") {
					t.Fatalf("ExecuteN after worker panic: %v, want panic error", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("ExecuteN deadlocked after worker panic")
			}
			// The failure is sticky: every subsequent operation refuses.
			if _, err := e.Reduce(a, runtime.ReduceSum); err == nil {
				t.Fatal("Reduce on a failed engine must error")
			}
			if _, err := e.Remap(a, mapping(t, sys, dom, dist.Cyclic{K: 1})); err == nil {
				t.Fatal("Remap on a failed engine must error")
			}
		})
	}
}

// TestPanicUnblocksPeers pins the deadlock scenario directly: worker
// 2 panics before sending, leaving workers 1 and 3 blocked on
// receives (and worker 4 blocked on a send into a full stream); the
// epoch must still complete with an error.
func TestPanicUnblocksPeers(t *testing.T) {
	for _, kind := range transport.Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr, err := transport.New(kind, 4)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewOn(tr, machine.DefaultCost())
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			done := make(chan error, 1)
			go func() {
				done <- e.run(func(p int) {
					switch p {
					case 1:
						e.recv(2, 1) // never sent
					case 2:
						panic("boom")
					case 3:
						e.recv(2, 3) // never sent
					case 4:
						// Flood the (4,1) stream; with the capacity-1
						// inproc channels the second send blocks until
						// the failure aborts it.
						for i := 0; i < 4; i++ {
							e.send(4, 1, []float64{1})
						}
					}
				})
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("epoch with a panicking worker returned nil error")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("epoch deadlocked: peers not unblocked after panic")
			}
		})
	}
}

// mpResult is one simulated process's observation of the program.
type mpResult struct {
	sum  float64
	data []float64
	rep  machine.Report
}

// multiProcRun executes one deterministic program — fill, pipelined
// schedule replay, remap, reduce, stats, data — on the given engine.
// In the multi-process test every "process" runs exactly this, which
// is the SPMD replicated-control contract. It returns (rather than
// asserts) errors because it runs on non-test goroutines.
func multiProcRun(e *Engine, am, bm core.ElementMapping, n int) (mpResult, error) {
	var out mpResult
	a, err := e.NewArray("A", am)
	if err != nil {
		return out, err
	}
	b, err := e.NewArray("B", bm)
	if err != nil {
		return out, err
	}
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0]*13 - tu[1]*5) })
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []Term{Ref(a, 0.25, -1, 0), Ref(a, 0.25, 1, 0), Ref(a, 0.25, 0, -1), Ref(a, 0.25, 0, 1)}
	s, err := e.BuildSchedule(b, interior, terms)
	if err != nil {
		return out, err
	}
	if err := s.ExecuteN(4); err != nil {
		return out, err
	}
	if _, err := e.Remap(a, bm); err != nil {
		return out, err
	}
	out.sum, err = e.Reduce(b, runtime.ReduceSum)
	if err != nil {
		return out, err
	}
	out.data = append(a.Data(), b.Data()...)
	out.rep = e.Stats()
	return out, nil
}

// TestMultiProcessEquivalence boots a real 2-process tcp job (both
// processes simulated inside this test binary), runs the same program
// in both, and checks values, reduction and the aggregated
// machine.Report against the single-process inproc engine.
func TestMultiProcessEquivalence(t *testing.T) {
	const n, np, procs = 20, 4, 2
	sys, _ := proc.NewSystem(np)
	dom := index.Standard(1, n, 1, n)
	am := mapping(t, sys, dom, dist.Block{})
	bm := mapping(t, sys, dom, dist.Cyclic{K: 3})

	ref, err := New(np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := multiProcRun(ref, am, bm, n)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	got := make([]mpResult, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := transport.NewTCP(transport.TCPConfig{
				Job: "spmd-equiv", NP: np, Procs: procs, Self: i, Generation: 1, Addr: addr,
				Timeout: 15 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			e, err := NewOn(tr, machine.DefaultCost())
			if err != nil {
				errs[i] = err
				tr.Close()
				return
			}
			defer e.Close()
			got[i], errs[i] = multiProcRun(e, am, bm, n)
			if errs[i] != nil {
				// Unblock the peer's collectives so the test reports
				// the failure instead of hanging on wg.Wait.
				tr.Fail(errs[i])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
	}
	for i := 0; i < procs; i++ {
		if got[i].sum != want.sum {
			t.Errorf("process %d reduce = %g, want %g", i, got[i].sum, want.sum)
		}
		if got[i].rep != want.rep {
			t.Errorf("process %d report:\n got  %+v\n want %+v", i, got[i].rep, want.rep)
		}
		for k := range want.data {
			if got[i].data[k] != want.data[k] {
				t.Errorf("process %d value mismatch at %d: %g vs %g", i, k, got[i].data[k], want.data[k])
				break
			}
		}
	}
}
