package spmd

import (
	"fmt"
	"os"
	"time"

	"hpfnt/internal/ckpt"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
)

// Checkpoint snapshots the arrays and the job-wide counters into the
// spill directory dir at the given epoch. On a multi-process
// transport this is a collective: every process calls it at the same
// point of the replicated control flow, each writes the shards of the
// ranks it hosts, and after a barrier the leader publishes the
// manifest — so a checkpoint either becomes visible complete or not
// at all. The snapshotted counter vector is the job-wide aggregate,
// which is what lets a restored-and-replayed job report the same
// machine.Report an uninterrupted run would.
//
// The engine must be idle (between dispatched operations), which the
// single-client-goroutine contract already guarantees.
func (e *Engine) Checkpoint(dir string, epoch int, arrays []*Array) error {
	if err := e.tr.Err(); err != nil {
		return err
	}
	defer e.chargeCheckpoint(obs.Now())()
	span := obs.BeginSpan("checkpoint", fmt.Sprintf("checkpoint@%d", epoch), 0)
	if span != nil {
		defer span()
	}
	ed := ckpt.EpochDir(dir, epoch)
	var localErr error
	if err := os.MkdirAll(ed, 0o755); err != nil {
		localErr = err
	}
	infos := make([]ckpt.ArrayInfo, len(arrays))
	for i, a := range arrays {
		if a.eng != e {
			return fmt.Errorf("spmd: checkpoint array %s is not on this engine", a.name)
		}
		infos[i] = ckpt.ArrayInfo{Name: a.name, Size: a.dom.Size()}
		if localErr != nil {
			continue
		}
		for _, p := range e.local {
			if err := ckpt.WriteShard(ed, ckpt.ShardName(i, p), a.lay.stores[p].data); err != nil {
				localErr = err
				break
			}
		}
	}
	// Job-wide counter aggregate, same collective as Stats. The phase
	// bank drains first so accumulated phase times ride the manifest
	// and survive a restore like every other counter.
	e.statsMu.Lock()
	e.bank.drainInto(e.mach)
	enc := e.mach.EncodeCounters()
	cost := e.mach.Cost
	e.statsMu.Unlock()
	agg := enc
	if e.tr.Procs() > 1 {
		am, err := machine.New(e.np, cost)
		if err != nil {
			return err
		}
		for i := 0; i < e.tr.Procs(); i++ {
			var mine []float64
			if i == e.tr.Self() {
				mine = enc
			}
			part := e.tr.Bcast(i, mine)
			if part == nil {
				return e.failErr("checkpoint counter exchange")
			}
			if err := am.MergeCounters(part); err != nil {
				return fmt.Errorf("spmd: merging checkpoint counters: %w", err)
			}
		}
		agg = am.EncodeCounters()
	}
	// Every process must agree the shards are durable before the
	// leader publishes; a local write error is vetoed job-wide so no
	// process trusts a checkpoint that is missing shards.
	ok := 1.0
	if localErr != nil {
		ok = 0
	}
	allOK := true
	for i := 0; i < e.tr.Procs(); i++ {
		var mine []float64
		if i == e.tr.Self() {
			mine = []float64{ok}
		}
		v := e.tr.Bcast(i, mine)
		if v == nil {
			return e.failErr("checkpoint shard vote")
		}
		if len(v) != 1 || v[0] != 1 {
			allOK = false
		}
	}
	if !allOK {
		if localErr != nil {
			return fmt.Errorf("spmd: checkpoint at epoch %d: %w", epoch, localErr)
		}
		return fmt.Errorf("spmd: checkpoint at epoch %d failed on a peer process", epoch)
	}
	if e.tr.Self() == 0 {
		if err := ckpt.Publish(dir, ckpt.Manifest{Epoch: epoch, NP: e.np, Arrays: infos, Counters: agg}); err != nil {
			e.tr.Fail(err) // peers must not proceed trusting a phantom checkpoint
			return err
		}
		// Old epochs are dead weight once CURRENT moved on; pruning
		// failures are cosmetic.
		_ = ckpt.Prune(dir, epoch)
	}
	if err := e.tr.Barrier(); err != nil { // published before anyone proceeds
		return err
	}
	return e.tr.Err()
}

// Restore loads the latest published checkpoint in dir back into the
// arrays, which must be the checkpointed arrays in checkpoint order
// (same names, domains and count — typically rebuilt by re-running
// the job's deterministic prologue on a fresh engine). Each process
// reads the shards of the ranks it now hosts, so the restore remaps
// the snapshot onto the current membership for free: shards are
// rank-keyed, not process-keyed. Counters are reset everywhere and
// the aggregate is folded into the leader's machine, restoring the
// job-wide Stats sum exactly. Returns the restored epoch.
//
// Values are copied into the existing per-rank stores in place, so
// schedules compiled against the arrays stay valid.
func (e *Engine) Restore(dir string, arrays []*Array) (int, error) {
	if err := e.tr.Err(); err != nil {
		return 0, err
	}
	defer e.chargeCheckpoint(obs.Now())()
	span := obs.BeginSpan("restore", "restore", 0)
	if span != nil {
		defer span()
	}
	man, ed, err := ckpt.Latest(dir)
	if err != nil {
		return 0, err
	}
	if man.NP != e.np {
		return 0, fmt.Errorf("spmd: checkpoint is for np=%d, engine has np=%d", man.NP, e.np)
	}
	if len(man.Arrays) != len(arrays) {
		return 0, fmt.Errorf("spmd: checkpoint holds %d arrays, restore got %d", len(man.Arrays), len(arrays))
	}
	for i, a := range arrays {
		if a.eng != e {
			return 0, fmt.Errorf("spmd: restore array %s is not on this engine", a.name)
		}
		if inf := man.Arrays[i]; inf.Name != a.name || inf.Size != a.dom.Size() {
			return 0, fmt.Errorf("spmd: checkpoint array %d is %s[%d], restore got %s[%d]",
				i, inf.Name, inf.Size, a.name, a.dom.Size())
		}
		for _, p := range e.local {
			if err := ckpt.ReadShard(ed, ckpt.ShardName(i, p), a.lay.stores[p].data); err != nil {
				return 0, err
			}
		}
	}
	e.statsMu.Lock()
	e.mach.Reset()
	if e.tr.Self() == 0 {
		if err := e.mach.MergeCounters(man.Counters); err != nil {
			e.statsMu.Unlock()
			return 0, fmt.Errorf("spmd: restoring checkpoint counters: %w", err)
		}
	}
	e.statsMu.Unlock()
	return man.Epoch, nil
}

// chargeCheckpoint returns a closure charging the wall time since t0
// as checkpoint phase. The dispatcher performs shard I/O on behalf of
// every hosted rank, so the elapsed time splits evenly across them:
// the job-wide checkpoint total then sums to roughly one collective
// wall time per process, not per rank.
func (e *Engine) chargeCheckpoint(t0 time.Time) func() {
	if !obs.TimingEnabled() {
		return func() {}
	}
	return func() {
		per := int64(time.Since(t0)) / int64(len(e.local))
		for _, p := range e.local {
			e.bank.add(p, machine.PhaseCheckpoint, per)
		}
	}
}

// failErr returns the sticky transport error, or a description of the
// aborted collective when the failure has not latched yet.
func (e *Engine) failErr(what string) error {
	if err := e.tr.Err(); err != nil {
		return err
	}
	return fmt.Errorf("spmd: %s aborted", what)
}
