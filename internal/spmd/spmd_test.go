package spmd

import (
	"sync"
	"sync/atomic"
	"testing"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
	"hpfnt/internal/runtime"
)

func mapping(t *testing.T, sys *proc.System, dom index.Domain, f dist.Format) core.ElementMapping {
	t.Helper()
	arr, ok := sys.Lookup("P")
	if !ok {
		var err error
		arr, err = sys.DeclareArray("P", index.Standard(1, sys.AP.N()))
		if err != nil {
			t.Fatal(err)
		}
	}
	formats := make([]dist.Format, dom.Rank())
	formats[0] = f
	for i := 1; i < dom.Rank(); i++ {
		formats[i] = dist.Collapsed{}
	}
	d, err := dist.New(dom, formats, proc.Whole(arr))
	if err != nil {
		t.Fatal(err)
	}
	return core.DistMapping{D: d}
}

func newEngine(t *testing.T, np int) *Engine {
	t.Helper()
	e, err := New(np, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestBarrier(t *testing.T) {
	const parties = 5
	b := NewBarrier(parties)
	var phase atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				phase.Add(1)
				e := b.Await()
				if got := phase.Load(); got < int64((k+1)*parties) {
					t.Errorf("epoch %d released with only %d arrivals", e, got)
				}
			}
		}()
	}
	wg.Wait()
	if b.Epoch() != 3 {
		t.Fatalf("epochs = %d, want 3", b.Epoch())
	}
}

// TestValuesMatchSequential checks the parallel executor against the
// sequential reference for several formats.
func TestValuesMatchSequential(t *testing.T) {
	const n, np = 16, 4
	sys, _ := proc.NewSystem(np)
	dom := index.Standard(1, n, 1, n)
	ind, err := dist.NewIndirect(func() []int {
		o := make([]int, n)
		for i := range o {
			o[i] = (i*3)%np + 1
		}
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []dist.Format{dist.Block{}, dist.BlockVienna{}, dist.Cyclic{K: 3},
		dist.GeneralBlock{Bounds: []int{2, 9, 11}}, ind} {
		e := newEngine(t, np)
		am := mapping(t, sys, dom, f)
		a, err := e.NewArray("A", am)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		b, err := e.NewArray("B", mapping(t, sys, dom, f))
		if err != nil {
			t.Fatal(err)
		}
		fill := func(tu index.Tuple) float64 { return float64(tu[0]*31 + tu[1]*7) }
		a.Fill(fill)
		interior := index.Standard(2, n-1, 2, n-1)
		terms := []Term{Ref(a, 0.25, -1, 0), Ref(a, 0.25, 1, 0), Ref(a, 0.25, 0, -1), Ref(a, 0.25, 0, 1)}
		if err := e.ShiftAssign(b, interior, terms); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		as, bs := runtime.NewSeqArray(dom), runtime.NewSeqArray(dom)
		as.Fill(fill)
		if err := runtime.SeqShiftAssign(bs, interior, []runtime.SeqTerm{
			{Src: as, Shift: []int{-1, 0}, Coeff: 0.25}, {Src: as, Shift: []int{1, 0}, Coeff: 0.25},
			{Src: as, Shift: []int{0, -1}, Coeff: 0.25}, {Src: as, Shift: []int{0, 1}, Coeff: 0.25},
		}); err != nil {
			t.Fatal(err)
		}
		bd, sd := b.Data(), bs.Data()
		for i := range bd {
			if bd[i] != sd[i] {
				t.Fatalf("%s: value mismatch at offset %d: %f vs %f", f, i, bd[i], sd[i])
			}
		}
	}
}

// TestStatsMatchOracle compares the full machine report of a
// statement, a schedule replay, a remap and a reduction against the
// sequential runtime.
func TestStatsMatchOracle(t *testing.T) {
	const n, np = 24, 4
	sys, _ := proc.NewSystem(np)
	dom := index.Standard(1, n, 1, n)
	am := mapping(t, sys, dom, dist.Block{})
	bm := mapping(t, sys, dom, dist.Cyclic{K: 5})

	e := newEngine(t, np)
	pa, err := e.NewArray("A", am)
	if err != nil {
		t.Fatal(err)
	}
	fill := func(tu index.Tuple) float64 { return float64(tu[0] - 2*tu[1]) }
	pa.Fill(fill)
	interior := index.Standard(2, n-1, 2, n-1)
	terms := []Term{Ref(pa, 1, -1, 0), Ref(pa, 1, 1, 0)}
	sched, err := e.BuildSchedule(pa, interior, terms)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ExecuteN(3); err != nil {
		t.Fatal(err)
	}
	moved, err := e.Remap(pa, bm)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.Reduce(pa, runtime.ReduceSum)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Stats()

	m, _ := machine.New(np, machine.DefaultCost())
	ra, err := runtime.NewArray("A", am)
	if err != nil {
		t.Fatal(err)
	}
	ra.Fill(fill)
	rs, err := runtime.BuildSchedule(ra, interior, []runtime.Term{
		runtime.Ref(ra, 1, -1, 0), runtime.Ref(ra, 1, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := rs.Execute(m); err != nil {
			t.Fatal(err)
		}
	}
	wantMoved, err := runtime.Remap(m, ra, bm)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, err := runtime.Reduce(m, ra, runtime.ReduceSum)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Stats()

	if got != want {
		t.Fatalf("report mismatch:\n spmd %+v\n  sim %+v", got, want)
	}
	if moved != wantMoved {
		t.Fatalf("moved %d, want %d", moved, wantMoved)
	}
	if sum != wantSum {
		t.Fatalf("sum %f, want %f", sum, wantSum)
	}
	if sched.GhostElements() != rs.GhostElements() || sched.Messages() != rs.Messages() {
		t.Fatalf("schedule shape: spmd (%d ghost, %d msgs), sim (%d, %d)",
			sched.GhostElements(), sched.Messages(), rs.GhostElements(), rs.Messages())
	}
	gd, wd := pa.Data(), ra.Data()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("post-remap value mismatch at %d", i)
		}
	}
}

// TestExecuteNPipelined iterates an in-place shift (lhs == src) in a
// single epoch: the pipelined exchange must match iterating the
// sequential executor.
func TestExecuteNPipelined(t *testing.T) {
	const n, np, iters = 32, 4, 6
	sys, _ := proc.NewSystem(np)
	dom := index.Standard(1, n)
	e := newEngine(t, np)
	a, err := e.NewArray("A", mapping(t, sys, dom, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	fill := func(tu index.Tuple) float64 { return float64(tu[0] * tu[0]) }
	a.Fill(fill)
	region := index.Standard(2, n)
	sched, err := e.BuildSchedule(a, region, []Term{Ref(a, 1, -1), Ref(a, 0.5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.ExecuteN(iters); err != nil {
		t.Fatal(err)
	}
	ra, err := runtime.NewArray("A", mapping(t, sys, dom, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	ra.Fill(fill)
	rs, err := runtime.BuildSchedule(ra, region, []runtime.Term{runtime.Ref(ra, 1, -1), runtime.Ref(ra, 0.5, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		if err := rs.Execute(nil); err != nil {
			t.Fatal(err)
		}
	}
	gd, wd := a.Data(), ra.Data()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("iterated value mismatch at %d: %f vs %f", i, gd[i], wd[i])
		}
	}
}

// TestReplicatedArrays covers replicated sources (local reads) and
// replicated left-hand sides (every owner computes).
func TestReplicatedArrays(t *testing.T) {
	const n, np = 16, 4
	sys, _ := proc.NewSystem(np)
	rep, err := sys.DeclareScalar("REP", proc.ScalarReplicated)
	if err != nil {
		t.Fatal(err)
	}
	dom := index.Standard(1, n)
	dr, err := dist.New(dom, []dist.Format{dist.Collapsed{}}, proc.Whole(rep))
	if err != nil {
		t.Fatal(err)
	}
	repMap := core.ElementMapping(core.DistMapping{D: dr})
	blkMap := mapping(t, sys, dom, dist.Block{})

	e := newEngine(t, np)
	src, err := e.NewArray("R", repMap)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Replicated() {
		t.Fatal("expected replicated array")
	}
	dst, err := e.NewArray("B", blkMap)
	if err != nil {
		t.Fatal(err)
	}
	src.Fill(func(tu index.Tuple) float64 { return float64(tu[0] * 3) })
	if err := e.ShiftAssign(dst, dom, []Term{Ref(src, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	r := e.Stats()
	if r.RemoteRefs != 0 {
		t.Fatalf("reads of replicated array must be local, got %d remote", r.RemoteRefs)
	}
	for i := 1; i <= n; i++ {
		if dst.At(index.Tuple{i}) != float64(i*3) {
			t.Fatalf("B(%d) wrong", i)
		}
	}

	// Replicated lhs: every worker computes all elements.
	e2 := newEngine(t, np)
	rl, err := e2.NewArray("R", repMap)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := e2.NewArray("A", blkMap)
	if err != nil {
		t.Fatal(err)
	}
	bs.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	if err := e2.ShiftAssign(rl, dom, []Term{Ref(bs, 2, 0)}); err != nil {
		t.Fatal(err)
	}
	if got := e2.Stats().TotalLoad; got != int64(np*n) {
		t.Fatalf("TotalLoad = %d, want %d", got, np*n)
	}
	for i := 1; i <= n; i++ {
		if rl.At(index.Tuple{i}) != float64(2*i) {
			t.Fatalf("R(%d) wrong", i)
		}
	}
}

// TestRemapValuesAndSpread checks value preservation and the
// per-destination sender choice for replicated sources.
func TestRemapValuesAndSpread(t *testing.T) {
	const n, np = 16, 4
	sys, _ := proc.NewSystem(np)
	dom := index.Standard(1, n)
	e := newEngine(t, np)
	a, err := e.NewArray("A", mapping(t, sys, dom, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0] * 10) })
	moved, err := e.Remap(a, mapping(t, sys, dom, dist.Cyclic{K: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("remap must move elements")
	}
	for i := 1; i <= n; i++ {
		if a.At(index.Tuple{i}) != float64(i*10) {
			t.Fatalf("A(%d) changed across remap", i)
		}
	}
	// Replicated source: traffic must not all originate at worker 1.
	rep, err := sys.DeclareScalar("REPS", proc.ScalarReplicated)
	if err != nil {
		t.Fatal(err)
	}
	dr, _ := dist.New(dom, []dist.Format{dist.Collapsed{}}, proc.Whole(rep))
	e2 := newEngine(t, np)
	r, err := e2.NewArray("R", core.DistMapping{D: dr})
	if err != nil {
		t.Fatal(err)
	}
	r.Fill(func(tu index.Tuple) float64 { return float64(tu[0]) })
	// Replicated -> block drops all but one replica; nothing moves
	// (every destination already holds the data).
	moved, err = e2.Remap(r, mapping(t, sys, dom, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("replicated->block moved %d, want 0", moved)
	}
	for i := 1; i <= n; i++ {
		if r.At(index.Tuple{i}) != float64(i) {
			t.Fatalf("R(%d) changed across remap", i)
		}
	}
}

func TestErrors(t *testing.T) {
	const n, np = 8, 2
	sys, _ := proc.NewSystem(np)
	dom := index.Standard(1, n)
	e := newEngine(t, np)
	a, _ := e.NewArray("A", mapping(t, sys, dom, dist.Block{}))
	b, _ := e.NewArray("B", mapping(t, sys, dom, dist.Block{}))
	if err := e.ShiftAssign(b, dom, []Term{Ref(a, 1, -1)}); err == nil {
		t.Fatal("out-of-bounds reference must fail")
	}
	if err := e.ShiftAssign(b, dom, []Term{Ref(a, 1, 0, 0)}); err == nil {
		t.Fatal("shift rank mismatch must fail")
	}
	if err := e.ShiftAssign(b, index.Standard(1, n, 1, n), []Term{Ref(a, 1, 0)}); err == nil {
		t.Fatal("region rank mismatch must fail")
	}
	if _, err := e.Remap(a, mapping(t, sys, index.Standard(1, 4), dist.Block{})); err == nil {
		t.Fatal("remap shape mismatch must fail")
	}
	other := newEngine(t, np)
	if err := other.ShiftAssign(b, dom, []Term{Ref(a, 1, 0)}); err == nil {
		t.Fatal("cross-engine arrays must fail")
	}
	if s, err := e.BuildSchedule(b, dom, []Term{Ref(a, 1, 0)}); err != nil {
		t.Fatal(err)
	} else if err := s.ExecuteN(0); err == nil {
		t.Fatal("non-positive iteration count must fail")
	}
}

// TestGeneralAssign checks rank-changing mapped references.
func TestGeneralAssign(t *testing.T) {
	const np = 4
	sys, _ := proc.NewSystem(np)
	ddom := index.Standard(1, 12, 1, 6)
	adom := index.Standard(1, 12)
	e := newEngine(t, np)
	d, _ := e.NewArray("D", mapping(t, sys, ddom, dist.Block{}))
	ea, _ := e.NewArray("E", mapping(t, sys, ddom, dist.Block{}))
	a, _ := e.NewArray("A", mapping(t, sys, adom, dist.Cyclic{K: 2}))
	d.Fill(func(tu index.Tuple) float64 { return float64(tu[0]*10 + tu[1]) })
	a.Fill(func(tu index.Tuple) float64 { return float64(tu[0] * tu[0]) })
	err := e.GeneralAssign(ea, ddom, []GeneralTerm{
		{Src: d, Coeff: 1, Map: func(tu index.Tuple) index.Tuple { return tu }},
		{Src: a, Coeff: 2, Map: func(tu index.Tuple) index.Tuple { return index.Tuple{tu[0]} }},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	ddom.ForEach(func(tu index.Tuple) bool {
		want := float64(tu[0]*10+tu[1]) + 2*float64(tu[0]*tu[0])
		if ea.At(tu) != want {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d wrong values", bad)
	}
	if e.Stats().RemoteRefs == 0 {
		t.Fatal("expected remote reads of the cyclic array")
	}
}

// TestSetWritesAllReplicas pins Set's write-to-every-copy semantics.
func TestSetWritesAllReplicas(t *testing.T) {
	const n, np = 6, 3
	sys, _ := proc.NewSystem(np)
	rep, err := sys.DeclareScalar("REPW", proc.ScalarReplicated)
	if err != nil {
		t.Fatal(err)
	}
	dr, _ := dist.New(index.Standard(1, n), []dist.Format{dist.Collapsed{}}, proc.Whole(rep))
	e := newEngine(t, np)
	a, err := e.NewArray("R", core.DistMapping{D: dr})
	if err != nil {
		t.Fatal(err)
	}
	a.Set(index.Tuple{3}, 42)
	for p := 1; p <= np; p++ {
		off, _ := a.dom.Offset(index.Tuple{3})
		if got := a.lay.stores[p].data[a.lay.slotOf(p, off)]; got != 42 {
			t.Fatalf("worker %d copy = %f, want 42", p, got)
		}
	}
	if a.At(index.Tuple{3}) != 42 {
		t.Fatal("At after Set wrong")
	}
}
