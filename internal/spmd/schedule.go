package spmd

import (
	"fmt"
	"sort"
	"time"

	"hpfnt/internal/index"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
)

// Term is one right-hand-side reference Coeff * Src(t + Shift).
type Term struct {
	Src   *Array
	Shift []int
	Coeff float64
}

// Ref returns a shifted reference term.
func Ref(src *Array, coeff float64, shift ...int) Term {
	return Term{Src: src, Shift: shift, Coeff: coeff}
}

// GeneralTerm is a reference Coeff · Src(Map(t)) with an arbitrary
// (possibly rank-changing) index mapping.
type GeneralTerm struct {
	Src   *Array
	Coeff float64
	Map   func(index.Tuple) index.Tuple
}

// cterm is the compiler's unified term form.
type cterm struct {
	src   *Array
	coeff float64
	shift []int
	mapf  func(index.Tuple) index.Tuple
}

// Schedule is a compiled statement lhs(region) = Σ terms: per-worker
// compute plans over local slots, the per-pair ghost exchange, and
// the per-worker counter deltas. Execute replays it; the involved
// arrays must not be remapped between executions (rebuild after
// REDISTRIBUTE/REALIGN, as with the sequential runtime's schedules).
type Schedule struct {
	eng        *Engine
	plans      []*wplan
	ghostTotal int
	messages   int
	// constGhost marks a statement none of whose sources is the
	// written array: its ghost data cannot change while an ExecuteN
	// epoch replays it, so the compiled exchange ships each pair's
	// packed frame once per epoch instead of once per iteration
	// (schedule-level coalescing). Logical message accounting is
	// unchanged — the cost model still charges one message per pair
	// per iteration, matching the sequential oracle — only the
	// machine's WireFrames counter sees the saving.
	constGhost bool
	// arrays/gens capture the involved arrays' remap generations at
	// build time; ExecuteN refuses a stale schedule (its plans index
	// the pre-remap stores).
	arrays []*Array
	gens   []int
}

// wplan is one worker's share of a schedule.
type wplan struct {
	// Compute: for element i, tmp[i] = Σ_t coeffs[t] · ref(i,t) where
	// refs[i*T+t] ≥ 0 indexes srcData[t] (a local read) and refs < 0
	// encodes ghost slot -(refs+1); then lhsData[lhsSlots[i]] = tmp[i]
	// (simultaneous-assignment semantics).
	lhsData  []float64
	lhsSlots []int32
	nterms   int
	coeffs   []float64
	srcData  [][]float64
	refs     []int32
	ghost    []float64
	tmp      []float64
	nGhost   int

	sends []sendPlan
	recvs []recvPlan

	load       int
	localRefs  int
	remoteRefs int
}

// sendPlan gathers this worker's owned values for one destination:
// value i is slabs[i][slots[i]].
type sendPlan struct {
	dst   int
	slabs [][]float64
	slots []int32
}

// recvPlan scatters one sender's message into the ghost buffer.
type recvPlan struct {
	src     int
	targets []int32
}

// ghostKey dedups remote reads per (source array, element, reader),
// exactly as the sequential per-statement deduplication does.
type ghostKey struct {
	src *Array
	off int
	w   int
}

// exchange accumulates one ordered pair's ghost traffic during
// compilation; sender gather order and receiver scatter order are two
// views of the same list.
type exchange struct {
	slabs   [][]float64
	slots   []int32
	targets []int32
}

// BuildSchedule compiles the shift statement lhs(region) = Σ terms.
func (e *Engine) BuildSchedule(lhs *Array, region index.Domain, terms []Term) (*Schedule, error) {
	if region.Rank() != lhs.dom.Rank() {
		return nil, fmt.Errorf("spmd: region rank %d does not match %s rank %d", region.Rank(), lhs.name, lhs.dom.Rank())
	}
	cts := make([]cterm, len(terms))
	for i, t := range terms {
		if t.Src.eng != e {
			return nil, fmt.Errorf("spmd: term source %s belongs to a different engine", t.Src.name)
		}
		if len(t.Shift) != lhs.dom.Rank() {
			return nil, fmt.Errorf("spmd: term over %s has shift rank %d, want %d", t.Src.name, len(t.Shift), lhs.dom.Rank())
		}
		cts[i] = cterm{src: t.Src, coeff: t.Coeff, shift: t.Shift}
	}
	return e.compile(lhs, region, cts)
}

// BuildGeneralSchedule compiles a statement with arbitrary per-term
// index mappings.
func (e *Engine) BuildGeneralSchedule(lhs *Array, region index.Domain, terms []GeneralTerm) (*Schedule, error) {
	if region.Rank() != lhs.dom.Rank() {
		return nil, fmt.Errorf("spmd: region rank %d does not match %s rank %d", region.Rank(), lhs.name, lhs.dom.Rank())
	}
	cts := make([]cterm, len(terms))
	for i, t := range terms {
		if t.Src.eng != e {
			return nil, fmt.Errorf("spmd: term source %s belongs to a different engine", t.Src.name)
		}
		cts[i] = cterm{src: t.Src, coeff: t.Coeff, mapf: t.Map}
	}
	return e.compile(lhs, region, cts)
}

// compile walks the region once (column-major, like the sequential
// executor) and partitions the statement into per-worker plans. The
// local/remote classification, remote deduplication, sender choice
// (first owner) and load charging mirror the sequential analysis
// element for element, so the aggregated statistics are identical by
// construction.
func (e *Engine) compile(lhs *Array, region index.Domain, terms []cterm) (*Schedule, error) {
	if lhs.eng != e {
		return nil, fmt.Errorf("spmd: array %s belongs to a different engine", lhs.name)
	}
	T := len(terms)
	plans := make([]*wplan, e.np+1)
	planOf := func(p int) *wplan {
		if plans[p] == nil {
			wp := &wplan{nterms: T, lhsData: lhs.lay.stores[p].data}
			wp.coeffs = make([]float64, T)
			wp.srcData = make([][]float64, T)
			for ti, tm := range terms {
				wp.coeffs[ti] = tm.coeff
				wp.srcData[ti] = tm.src.lay.stores[p].data
			}
			plans[p] = wp
		}
		return plans[p]
	}
	seen := map[ghostKey]int32{}
	pairEx := map[[2]int]*exchange{}
	ref := make(index.Tuple, lhs.dom.Rank())
	var writers []int
	var ferr error
	region.ForEach(func(t index.Tuple) bool {
		loff, ok := lhs.dom.Offset(t)
		if !ok {
			ferr = fmt.Errorf("spmd: region index %s outside %s domain %s", t, lhs.name, lhs.dom)
			return false
		}
		writers = lhs.lay.appendOwners(writers[:0], loff)
		for ti := range terms {
			tm := &terms[ti]
			var rt index.Tuple
			if tm.mapf != nil {
				rt = tm.mapf(t.Clone())
			} else {
				for d := range t {
					ref[d] = t[d] + tm.shift[d]
				}
				rt = ref
			}
			roff, ok := tm.src.dom.Offset(rt)
			if !ok {
				ferr = fmt.Errorf("spmd: reference %s(%s) out of bounds in assignment to %s(%s)", tm.src.name, rt, lhs.name, t)
				return false
			}
			for _, w := range writers {
				wp := planOf(w)
				if tm.src.lay.ownedBy(roff, w) {
					wp.localRefs++
					wp.refs = append(wp.refs, tm.src.lay.slotOf(w, roff))
					continue
				}
				wp.remoteRefs++
				key := ghostKey{src: tm.src, off: roff, w: w}
				g, dup := seen[key]
				if !dup {
					g = int32(wp.nGhost)
					wp.nGhost++
					seen[key] = g
					s := tm.src.lay.firstOwner(roff)
					pr := [2]int{s, w}
					ex := pairEx[pr]
					if ex == nil {
						ex = &exchange{}
						pairEx[pr] = ex
					}
					ex.slabs = append(ex.slabs, tm.src.lay.stores[s].data)
					ex.slots = append(ex.slots, tm.src.lay.slotOf(s, roff))
					ex.targets = append(ex.targets, g)
				}
				wp.refs = append(wp.refs, -(g + 1))
			}
		}
		for _, w := range writers {
			wp := planOf(w)
			wp.load += T
			wp.lhsSlots = append(wp.lhsSlots, lhs.lay.slotOf(w, loff))
		}
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	s := &Schedule{eng: e, plans: plans, messages: len(pairEx), constGhost: true}
	s.arrays = append(s.arrays, lhs)
	for _, tm := range terms {
		s.arrays = append(s.arrays, tm.src)
		if tm.src == lhs {
			s.constGhost = false // statement overwrites its own input
		}
	}
	for _, a := range s.arrays {
		s.gens = append(s.gens, a.gen)
	}
	pairs := make([][2]int, 0, len(pairEx))
	for pr := range pairEx {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pr := range pairs {
		ex := pairEx[pr]
		sp := planOf(pr[0])
		sp.sends = append(sp.sends, sendPlan{dst: pr[1], slabs: ex.slabs, slots: ex.slots})
		rp := planOf(pr[1])
		rp.recvs = append(rp.recvs, recvPlan{src: pr[0], targets: ex.targets})
	}
	for _, wp := range plans {
		if wp == nil {
			continue
		}
		wp.ghost = make([]float64, wp.nGhost)
		wp.tmp = make([]float64, len(wp.lhsSlots))
		s.ghostTotal += wp.nGhost
	}
	return s, nil
}

// GhostElements reports the deduplicated ghost traffic per execution.
func (s *Schedule) GhostElements() int { return s.ghostTotal }

// Messages reports the aggregated messages per execution.
func (s *Schedule) Messages() int { return s.messages }

// Execute runs the statement once across the workers.
func (s *Schedule) Execute() error { return s.ExecuteN(1) }

// ExecuteN runs the statement iters times in one worker epoch. The
// iterations pipeline naturally: per-pair FIFO channels keep each
// receiver's iteration k ghost data consistent with its sender's
// post-(k-1) state, so no global barrier is needed between
// iterations.
func (s *Schedule) ExecuteN(iters int) error {
	if iters < 1 {
		return fmt.Errorf("spmd: ExecuteN needs a positive iteration count, got %d", iters)
	}
	for i, a := range s.arrays {
		if a.gen != s.gens[i] {
			return fmt.Errorf("spmd: schedule over %s invalidated by remap; rebuild it", a.name)
		}
	}
	e := s.eng
	timing := obs.TimingEnabled()
	span := obs.BeginSpan("epoch", fmt.Sprintf("execute x%d", iters), 0)
	err := e.run(func(p int) {
		wp := s.plans[p]
		if wp == nil {
			return
		}
		// A per-worker epoch span: the skew analysis compares these
		// lanes to find the straggler.
		wspan := obs.BeginSpan("worker", fmt.Sprintf("rank %d x%d", p, iters), p)
		var tally *phaseTally
		if timing {
			tally = new(phaseTally)
		}
		for it := 0; it < iters; it++ {
			// Coalescing: a constGhost statement exchanges ghosts only
			// on the first iteration of the epoch; the scattered buffer
			// stays valid for the replays.
			wp.step(e, p, it == 0 || !s.constGhost, tally)
		}
		if wspan != nil {
			wspan()
		}
		c := counters{
			load:       wp.load * iters,
			localRefs:  wp.localRefs * iters,
			remoteRefs: wp.remoteRefs * iters,
			phase:      tally,
		}
		frames := iters
		if s.constGhost {
			frames = 1
		}
		for _, sp := range wp.sends {
			c.sends = append(c.sends, sendCount{dst: sp.dst, elems: len(sp.slots), msgs: iters, frames: frames})
		}
		e.flush(p, &c)
	})
	if span != nil {
		span()
	}
	return err
}

// step is one worker's iteration: gather-and-send all outgoing ghost
// messages, receive and scatter the incoming ones, then compute into
// the temporary and store (whole-statement evaluation before any
// store, Fortran array-assignment semantics). With comm false (a
// coalesced replay) the exchange is skipped and the ghost buffer
// scattered on the epoch's first iteration is reused. A non-nil tally
// splits the iteration's wall time into ghost-wait and compute.
func (wp *wplan) step(e *Engine, p int, comm bool, tally *phaseTally) {
	var t0 time.Time
	if tally != nil {
		t0 = time.Now()
	}
	if comm {
		for i := range wp.sends {
			sp := &wp.sends[i]
			buf := make([]float64, len(sp.slots))
			for k, sl := range sp.slots {
				buf[k] = sp.slabs[k][sl]
			}
			e.send(p, sp.dst, buf)
		}
		for i := range wp.recvs {
			rp := &wp.recvs[i]
			msg := e.recv(rp.src, p)
			for k, v := range msg {
				wp.ghost[rp.targets[k]] = v
			}
		}
		if tally != nil {
			now := time.Now()
			tally[machine.PhaseGhostWait] += int64(now.Sub(t0))
			t0 = now
		}
	}
	T := wp.nterms
	for i := range wp.lhsSlots {
		base := i * T
		sum := 0.0
		for ti := 0; ti < T; ti++ {
			idx := wp.refs[base+ti]
			var v float64
			if idx >= 0 {
				v = wp.srcData[ti][idx]
			} else {
				v = wp.ghost[-idx-1]
			}
			sum += wp.coeffs[ti] * v
		}
		wp.tmp[i] = sum
	}
	for i, sl := range wp.lhsSlots {
		wp.lhsData[sl] = wp.tmp[i]
	}
	if tally != nil {
		tally[machine.PhaseCompute] += int64(time.Since(t0))
	}
}

// ShiftAssign compiles and executes lhs(region) = Σ terms once.
func (e *Engine) ShiftAssign(lhs *Array, region index.Domain, terms []Term) error {
	s, err := e.BuildSchedule(lhs, region, terms)
	if err != nil {
		return err
	}
	return s.Execute()
}

// GeneralAssign compiles and executes a statement with arbitrary
// per-term index mappings once.
func (e *Engine) GeneralAssign(lhs *Array, region index.Domain, terms []GeneralTerm) error {
	s, err := e.BuildGeneralSchedule(lhs, region, terms)
	if err != nil {
		return err
	}
	return s.Execute()
}
