// Package spmd is the parallel SPMD execution engine: the abstract
// processors of the mapping model become real concurrent workers, one
// goroutine per processor, each owning only the local segments of
// every distributed array (no dense global backing on the hot path).
// Array statements execute as compiled schedules — each worker sweeps
// its owned tiles and exchanges ghost regions with its neighbours as
// actual per-pair channel messages — while remaps ship whole ownership
// changes the same way. Communication and load are counted per worker
// and aggregated into the same machine.Report the sequential simulator
// produces, so the two backends are differentially testable: for any
// program the spmd engine must compute identical array values and
// identical machine statistics to the sequential runtime, which serves
// as its oracle (see package runtime).
//
// Local storage is laid out from the run-length ownership kernel
// (core.AppendOwnerTilesOf): a worker's segment of an array is the
// concatenation of its owner tiles in tile order, column-major within
// each tile. Ghost exchange, load accounting and message
// vectorization are compiled once per schedule and replayed on every
// execution, mirroring BuildSchedule/Execute of the sequential
// runtime. Irregular (indirection-array) statements compile through
// the inspector–executor kernel of package inspector instead and are
// lowered here to the same slot/channel machinery (IrregularSchedule).
package spmd

import (
	"fmt"
	gort "runtime"
	"sync"

	"hpfnt/internal/machine"
)

// Barrier is a reusable epoch barrier for a fixed number of parties.
// Await blocks until every party has arrived, then releases them all
// and resets for the next epoch. The engine uses one barrier of
// NP+1 parties (the workers plus the dispatcher) to delimit epochs:
// one dispatched operation per epoch, with all worker stores
// quiescent between epochs.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	epoch   uint64
}

// NewBarrier creates a barrier for the given number of parties.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("spmd: barrier needs at least one party, got %d", parties))
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all parties have arrived and returns the epoch
// number that completed.
func (b *Barrier) Await() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.epoch
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.epoch++
		b.cond.Broadcast()
		return e
	}
	for b.epoch == e {
		b.cond.Wait()
	}
	return e
}

// Epoch reports the number of completed epochs.
func (b *Barrier) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// Engine executes distributed-array operations on np concurrent
// workers (abstract processors 1..np). Workers are spawned lazily on
// the first dispatched operation and run until Close. All methods
// must be called from a single client goroutine; the operations
// themselves run concurrently across the workers.
type Engine struct {
	np   int
	mach *machine.Machine
	// statsMu guards mach: workers flush their per-operation counters
	// into it, once per worker per epoch.
	statsMu sync.Mutex

	bar *Barrier
	// chans[s-1][d-1] carries the aggregated messages from worker s to
	// worker d. Capacity 1: within one epoch each ordered pair
	// exchanges at most one in-flight message per iteration, and every
	// worker sends all its outgoing messages before receiving, so
	// sends never deadlock.
	chans   [][]chan []float64
	workers []chan func(p int)

	startOnce sync.Once
	closeOnce sync.Once
}

// New creates an engine with np workers and a machine with the given
// cost model for the aggregated counters.
func New(np int, cost machine.CostModel) (*Engine, error) {
	m, err := machine.New(np, cost)
	if err != nil {
		return nil, err
	}
	e := &Engine{np: np, mach: m, bar: NewBarrier(np + 1)}
	e.chans = make([][]chan []float64, np)
	for s := range e.chans {
		e.chans[s] = make([]chan []float64, np)
		for d := range e.chans[s] {
			e.chans[s][d] = make(chan []float64, 1)
		}
	}
	// Backstop for engines dropped without Close: the worker
	// goroutines reference only their command channels and the
	// barrier, never the Engine itself, so an unreachable engine is
	// collectable and its finalizer shuts the workers down.
	gort.SetFinalizer(e, func(e *Engine) { e.Close() })
	return e, nil
}

// NP reports the number of workers.
func (e *Engine) NP() int { return e.np }

// Machine exposes the aggregated counter machine. Safe to read
// between operations.
func (e *Engine) Machine() *machine.Machine { return e.mach }

// Stats snapshots the aggregated counters.
func (e *Engine) Stats() machine.Report {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.mach.Stats()
}

// Reset clears the aggregated counters.
func (e *Engine) Reset() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.mach.Reset()
}

// Close shuts the workers down. Idempotent; the engine must be idle.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		for _, cmd := range e.workers {
			close(cmd)
		}
	})
	return nil
}

// start spawns the worker goroutines on first use.
func (e *Engine) start() {
	e.startOnce.Do(func() {
		e.workers = make([]chan func(p int), e.np)
		for i := 0; i < e.np; i++ {
			cmd := make(chan func(p int))
			e.workers[i] = cmd
			bar := e.bar
			go func(p int) {
				for job := range cmd {
					job(p)
					// Drop the closure before parking: a retained job
					// would pin its arrays (and through them the
					// Engine), preventing the finalizer backstop from
					// ever collecting an unclosed engine.
					job = nil
					bar.Await()
				}
			}(i + 1)
		}
	})
}

// run dispatches fn to every worker as one epoch and waits on the
// engine barrier: when run returns, every worker has completed fn and
// all stores are quiescent.
func (e *Engine) run(fn func(p int)) {
	e.start()
	for _, cmd := range e.workers {
		cmd <- fn
	}
	e.bar.Await()
}

// send delivers one aggregated message from worker src to worker dst.
func (e *Engine) send(src, dst int, msg []float64) {
	e.chans[src-1][dst-1] <- msg
}

// recv receives the next message sent from src to dst.
func (e *Engine) recv(src, dst int) []float64 {
	return <-e.chans[src-1][dst-1]
}

// counters is a worker's per-operation tally, flushed into the shared
// machine once per epoch.
type counters struct {
	load       int
	localRefs  int
	remoteRefs int
	// sends: one entry per destination pair; msgs repeated Send calls
	// of elems elements each (schedule replays call Send per
	// iteration, matching the sequential executor's accounting).
	sends []sendCount
}

type sendCount struct {
	dst   int
	elems int
	msgs  int
}

// flush applies a worker's counters to the shared machine.
func (e *Engine) flush(p int, c *counters) {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	if c.load > 0 {
		e.mach.AddLoad(p, c.load)
	}
	e.mach.RecordLocal(c.localRefs)
	e.mach.RecordRemote(c.remoteRefs)
	for _, s := range c.sends {
		for i := 0; i < s.msgs; i++ {
			e.mach.Send(p, s.dst, s.elems)
		}
	}
}
