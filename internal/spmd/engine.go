// Package spmd is the parallel SPMD execution engine: the abstract
// processors of the mapping model become real concurrent workers, one
// goroutine per processor, each owning only the local segments of
// every distributed array (no dense global backing on hot paths).
// Array statements execute as compiled schedules — each worker sweeps
// its owned tiles and exchanges ghost regions with its neighbours as
// actual per-pair messages — while remaps ship whole ownership
// changes the same way. Communication and load are counted per worker
// and aggregated into the same machine.Report the sequential simulator
// produces, so the two backends are differentially testable: for any
// program the spmd engine must compute identical array values and
// identical machine statistics to the sequential runtime, which serves
// as its oracle (see package runtime).
//
// The wire under the workers is pluggable (package transport): the
// inproc transport keeps today's capacity-1 buffered channel per
// ordered worker pair, and the tcp transport carries the same streams
// as length-prefixed frames over localhost sockets, so an engine can
// span several OS processes (cmd/hpfnode). In a multi-process job
// every process runs the same deterministic control flow — mappings,
// layouts and compiled plans are replicated metadata — but each
// process allocates array values and executes worker epochs only for
// the ranks it hosts; element access (At, Data), reductions and Stats
// become small collectives over the transport. With one process the
// behavior and statistics are identical to the historical in-process
// engine, byte for byte.
//
// Local storage is laid out from the run-length ownership kernel
// (core.AppendOwnerTilesOf): a worker's segment of an array is the
// concatenation of its owner tiles in tile order, column-major within
// each tile. Ghost exchange, load accounting and message
// vectorization are compiled once per schedule and replayed on every
// execution, mirroring BuildSchedule/Execute of the sequential
// runtime. Irregular (indirection-array) statements compile through
// the inspector–executor kernel of package inspector instead and are
// lowered here to the same slot/stream machinery (IrregularSchedule).
//
// A worker that panics (a user Fill function, a broken wire) does not
// leave its peers deadlocked on the streams: the panic is recovered,
// the transport fails over into its sticky aborted state (unblocking
// every peer), and the failure surfaces as an error from the
// dispatching operation (Execute/ExecuteN/Remap/Reduce). A failed
// engine stays failed — its stores may be inconsistent — and every
// subsequent operation returns the same error.
package spmd

import (
	"fmt"
	gort "runtime"
	"sync"
	"time"

	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
	"hpfnt/internal/transport"
)

// Barrier is a reusable epoch barrier for a fixed number of parties.
// Await blocks until every party has arrived, then releases them all
// and resets for the next epoch. The engine uses one barrier of
// local-workers+1 parties (the hosted workers plus the dispatcher) to
// delimit epochs: one dispatched operation per epoch, with all worker
// stores quiescent between epochs.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	epoch   uint64
}

// NewBarrier creates a barrier for the given number of parties.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("spmd: barrier needs at least one party, got %d", parties))
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all parties have arrived and returns the epoch
// number that completed.
func (b *Barrier) Await() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.epoch
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.epoch++
		b.cond.Broadcast()
		return e
	}
	for b.epoch == e {
		b.cond.Wait()
	}
	return e
}

// Epoch reports the number of completed epochs.
func (b *Barrier) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// Engine executes distributed-array operations on np concurrent
// workers (abstract processors 1..np), or on this process's share of
// them when the transport spans several processes. Workers are
// spawned lazily on the first dispatched operation and run until
// Close. All methods must be called from a single client goroutine;
// the operations themselves run concurrently across the workers.
type Engine struct {
	np int
	tr transport.Transport
	// mach holds this process's share of the counters; on a
	// single-process transport that is the whole machine.
	mach *machine.Machine
	// statsMu guards mach: workers flush their per-operation counters
	// into it, once per worker per epoch.
	statsMu sync.Mutex

	bar *Barrier
	// bank accumulates per-worker phase wall time (barrier waits are
	// recorded by the worker goroutines themselves); drained into mach
	// under statsMu before every counter snapshot.
	bank *phaseBank
	// local lists the ranks hosted by this process, ascending;
	// localSet is its membership grid (index 1..np).
	local    []int
	localSet []bool
	// workers[p-1] is rank p's command channel (nil for remote ranks).
	workers []chan func(p int)

	startOnce sync.Once
	closeOnce sync.Once
}

// New creates an engine with np workers on the in-process transport
// and a machine with the given cost model for the aggregated
// counters.
func New(np int, cost machine.CostModel) (*Engine, error) {
	return NewOn(transport.NewInproc(np), cost)
}

// NewOn creates an engine over an existing transport, which defines
// the worker count and (for multi-process transports) which ranks
// this process hosts. The engine owns the transport: Close closes it.
func NewOn(tr transport.Transport, cost machine.CostModel) (*Engine, error) {
	np := tr.NP()
	m, err := machine.New(np, cost)
	if err != nil {
		return nil, err
	}
	e := &Engine{np: np, tr: tr, mach: m, bank: newPhaseBank(np)}
	e.localSet = make([]bool, np+1)
	for p := 1; p <= np; p++ {
		if tr.HostOf(p) == tr.Self() {
			e.local = append(e.local, p)
			e.localSet[p] = true
		}
	}
	if len(e.local) == 0 {
		return nil, fmt.Errorf("spmd: process %d hosts no ranks (np=%d, procs=%d)", tr.Self(), np, tr.Procs())
	}
	e.bar = NewBarrier(len(e.local) + 1)
	// Backstop for engines dropped without Close: the worker
	// goroutines reference only their command channels, the barrier
	// and the transport, never the Engine itself, so an unreachable
	// engine is collectable and its finalizer shuts the workers down.
	// Multi-process engines are excluded — their Close performs a
	// collective shutdown barrier, which must never run on (and
	// potentially wedge) the runtime's finalizer goroutine; a
	// distributed job closes explicitly (cmd/hpfnode does).
	if tr.Procs() == 1 {
		gort.SetFinalizer(e, func(e *Engine) { e.Close() })
	}
	return e, nil
}

// NP reports the number of workers (across all processes).
func (e *Engine) NP() int { return e.np }

// Transport exposes the engine's transport.
func (e *Engine) Transport() transport.Transport { return e.tr }

// Machine exposes this process's counter machine. Safe to read
// between operations; on a multi-process transport it holds only the
// locally-charged share (Stats aggregates across the job).
func (e *Engine) Machine() *machine.Machine { return e.mach }

// Stats snapshots the job-wide counters. On a multi-process
// transport this is a collective: every process must call it at the
// same point of the replicated control flow, and every process
// returns the identical aggregated report.
func (e *Engine) Stats() machine.Report {
	if e.tr.Procs() == 1 {
		e.statsMu.Lock()
		defer e.statsMu.Unlock()
		e.bank.drainInto(e.mach)
		return e.mach.Stats()
	}
	return e.aggregate().Stats()
}

// DetailStats snapshots the job-wide per-worker detail (load vector,
// traffic matrix, phase times). The same collective contract as
// Stats: on a multi-process transport every process must call it at
// the same point of the replicated control flow.
func (e *Engine) DetailStats() machine.Detail {
	if e.tr.Procs() == 1 {
		e.statsMu.Lock()
		defer e.statsMu.Unlock()
		e.bank.drainInto(e.mach)
		return e.mach.Detail()
	}
	return e.aggregate().Detail()
}

// LocalDetail snapshots this process's share of the counters without
// any collective. Unlike every other counter accessor it is safe to
// call from any goroutine at any time — it is the feed for the live
// /metrics endpoint, which scrapes while epochs are running.
func (e *Engine) LocalDetail() machine.Detail {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.bank.drainInto(e.mach)
	return e.mach.Detail()
}

// aggregate merges every process's counter share into one job-wide
// machine (the Bcast collective behind Stats and DetailStats).
func (e *Engine) aggregate() *machine.Machine {
	e.statsMu.Lock()
	e.bank.drainInto(e.mach)
	enc := e.mach.EncodeCounters()
	cost := e.mach.Cost
	e.statsMu.Unlock()
	agg, err := machine.New(e.np, cost)
	if err != nil {
		panic(err)
	}
	for i := 0; i < e.tr.Procs(); i++ {
		var mine []float64
		if i == e.tr.Self() {
			mine = enc
		}
		part := e.tr.Bcast(i, mine)
		if part == nil {
			continue // failed job: partial counters
		}
		if err := agg.MergeCounters(part); err != nil {
			panic(fmt.Sprintf("spmd: merging remote counters: %v", err))
		}
	}
	return agg
}

// Reset clears this process's counters (every process of a job calls
// it at the same point, clearing the job-wide aggregate).
func (e *Engine) Reset() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.mach.Reset()
}

// Close shuts the workers down and closes the transport. Idempotent;
// the engine must be idle.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		for _, cmd := range e.workers {
			if cmd != nil {
				close(cmd)
			}
		}
		// Synchronize multi-process shutdown: without the fence a
		// fast process's teardown would race a slow peer's last
		// collective and read as a lost connection.
		if e.tr.Procs() > 1 {
			e.tr.Barrier()
		}
		e.tr.Close()
	})
	return nil
}

// start spawns the hosted worker goroutines on first use.
func (e *Engine) start() {
	e.startOnce.Do(func() {
		e.workers = make([]chan func(p int), e.np)
		bar, tr, bank := e.bar, e.tr, e.bank
		for _, p := range e.local {
			cmd := make(chan func(p int))
			e.workers[p-1] = cmd
			go func(p int) {
				for job := range cmd {
					runWorkerJob(job, p, tr)
					// Drop the closure before parking: a retained job
					// would pin its arrays (and through them the
					// Engine), preventing the finalizer backstop from
					// ever collecting an unclosed engine.
					job = nil
					if obs.TimingEnabled() {
						t0 := time.Now()
						bar.Await()
						bank.add(p, machine.PhaseBarrierWait, int64(time.Since(t0)))
					} else {
						bar.Await()
					}
				}
			}(p)
		}
	})
}

// runWorkerJob executes one worker's share of an epoch, converting a
// panic (user Fill function, broken wire) into the transport's sticky
// failure so peers blocked on the streams unblock instead of
// deadlocking; the dispatcher surfaces the error after the epoch.
func runWorkerJob(job func(p int), p int, tr transport.Transport) {
	defer func() {
		if r := recover(); r != nil {
			tr.Fail(fmt.Errorf("spmd: worker %d panicked: %v", p, r))
		}
	}()
	job(p)
}

// run dispatches fn to every hosted worker as one epoch and waits on
// the engine barrier: when run returns, every hosted worker has
// completed fn and all local stores are quiescent. Returns the
// transport's sticky error, if any — a failed engine refuses further
// epochs.
func (e *Engine) run(fn func(p int)) error {
	if err := e.tr.Err(); err != nil {
		return err
	}
	// Advance the process-wide execution epoch: every process of a job
	// replays the identical replicated control flow, so the counters
	// agree everywhere without wire traffic — this is what stamps the
	// correlation IDs on every frame sent during the dispatch.
	obs.AdvanceEpoch()
	e.start()
	for _, p := range e.local {
		e.workers[p-1] <- fn
	}
	e.bar.Await()
	return e.tr.Err()
}

// send delivers one aggregated message from worker src to worker dst.
func (e *Engine) send(src, dst int, msg []float64) {
	e.tr.Send(src, dst, msg)
}

// recv receives the next message sent from src to dst. Returns nil
// once the engine has failed.
func (e *Engine) recv(src, dst int) []float64 {
	return e.tr.Recv(src, dst)
}

// hosted reports whether this process hosts rank p's values.
func (e *Engine) hosted(p int) bool { return e.localSet[p] }

// counters is a worker's per-operation tally, flushed into the shared
// machine once per epoch.
type counters struct {
	load       int
	localRefs  int
	remoteRefs int
	// sends: one entry per destination pair; msgs repeated Send calls
	// of elems elements each (schedule replays call Send per
	// iteration, matching the sequential executor's accounting).
	sends []sendCount
	// phase holds the worker's wall time per phase for this epoch, in
	// nanoseconds; nil when phase timing is disabled so the hot paths
	// never touch the clock.
	phase *phaseTally
}

type sendCount struct {
	dst   int
	elems int
	msgs  int
	// frames is the number of Send calls actually made on the wire
	// for this pair during the epoch: msgs when every iteration
	// exchanged, 1 when the schedule coalesced (constGhost).
	frames int
}

// flush applies a worker's counters to the shared machine.
func (e *Engine) flush(p int, c *counters) {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	if c.load > 0 {
		e.mach.AddLoad(p, c.load)
	}
	e.mach.RecordLocal(c.localRefs)
	e.mach.RecordRemote(c.remoteRefs)
	for _, s := range c.sends {
		for i := 0; i < s.msgs; i++ {
			e.mach.Send(p, s.dst, s.elems)
		}
		e.mach.AddWireFrames(s.frames)
	}
	if c.phase != nil {
		for ph, ns := range c.phase {
			if ns > 0 {
				e.mach.AddPhaseNS(p, machine.Phase(ph), ns)
			}
		}
	}
}
