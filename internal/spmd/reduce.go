package spmd

import (
	"fmt"
	"time"

	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
	"hpfnt/internal/runtime"
)

// treeStep is one round of the combine tree for one worker: send the
// running partial to peer, or receive peer's partial and fold it in.
type treeStep struct {
	send bool
	peer int
}

// Reduce computes a global reduction across the workers: each worker
// folds its owned elements (replicated elements count once, at their
// first owner) in ascending global-offset order, then the partials
// combine along the same binary tree the sequential runtime charges —
// ⌈log2 k⌉ rounds of single-element messages — so both the float
// result and the machine statistics are bit-identical to the oracle.
func (e *Engine) Reduce(a *Array, op runtime.ReduceOp) (float64, error) {
	if a.eng != e {
		return 0, fmt.Errorf("spmd: array %s belongs to a different engine", a.name)
	}
	size := a.dom.Size()
	slots := make([][]int32, e.np+1)
	for off := 0; off < size; off++ {
		p := a.lay.firstOwner(off)
		slots[p] = append(slots[p], a.lay.slotOf(p, off))
	}
	var active []int
	for p := 1; p <= e.np; p++ {
		if len(slots[p]) > 0 {
			active = append(active, p)
		}
	}
	if len(active) == 0 {
		return 0, fmt.Errorf("spmd: reduction over empty array %s", a.name)
	}
	steps := make([][]treeStep, e.np+1)
	procs := append([]int(nil), active...)
	for len(procs) > 1 {
		var next []int
		for i := 0; i+1 < len(procs); i += 2 {
			src, dst := procs[i+1], procs[i]
			steps[src] = append(steps[src], treeStep{send: true, peer: dst})
			steps[dst] = append(steps[dst], treeStep{send: false, peer: src})
			next = append(next, dst)
		}
		if len(procs)%2 == 1 {
			next = append(next, procs[len(procs)-1])
		}
		procs = next
	}
	root := procs[0]
	acc := func(cur, v float64) float64 {
		switch op {
		case runtime.ReduceSum:
			return cur + v
		case runtime.ReduceMax:
			if v > cur {
				return v
			}
			return cur
		case runtime.ReduceMin:
			if v < cur {
				return v
			}
			return cur
		}
		return cur
	}
	var result float64
	timing := obs.TimingEnabled()
	span := obs.BeginSpan("reduce", fmt.Sprintf("reduce %s", a.name), 0)
	err := e.run(func(p int) {
		sl := slots[p]
		if len(sl) == 0 {
			return
		}
		var t0 time.Time
		if timing {
			t0 = time.Now()
		}
		// sl is in ascending global-offset order (the append walk
		// above), which is the fold order defining the float result.
		data := a.lay.stores[p].data
		partial := data[sl[0]]
		for _, s := range sl[1:] {
			partial = acc(partial, data[s])
		}
		var c counters
		c.load = len(sl)
		for _, st := range steps[p] {
			if st.send {
				e.send(p, st.peer, []float64{partial})
				c.sends = append(c.sends, sendCount{dst: st.peer, elems: 1, msgs: 1, frames: 1})
				continue
			}
			msg := e.recv(st.peer, p)
			partial = acc(partial, msg[0])
		}
		if p == root {
			// Published to the dispatcher through the epoch barrier.
			result = partial
		}
		if timing {
			var tally phaseTally
			tally[machine.PhaseReduce] = int64(time.Since(t0))
			c.phase = &tally
		}
		e.flush(p, &c)
	})
	if span != nil {
		span()
	}
	if err != nil {
		return 0, err
	}
	// On a multi-process transport the tree root's host broadcasts
	// the result so every process's dispatcher returns the same value
	// (the broadcast is job bookkeeping, not modelled communication —
	// the oracle charges only the combine tree).
	if tr := e.tr; tr.Procs() > 1 {
		var vals []float64
		if e.hosted(root) {
			vals = []float64{result}
		}
		out := tr.Bcast(tr.HostOf(root), vals)
		if err := tr.Err(); err != nil {
			return 0, err
		}
		if len(out) == 1 {
			result = out[0]
		}
	}
	return result, nil
}
