package spmd

import (
	"fmt"
	"time"

	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/obs"
)

// IrregularSchedule is the spmd engine's executor side of the
// inspector–executor technique (package inspector): the compiled,
// replayable form of one irregular gather/scatter statement. The
// inspector's engine-neutral schedule — per-worker access plans over
// element offsets plus per-pair deduplicated gather lists — is
// lowered once to local store slots; each execution then performs
// real communication: every worker gathers its owned halo elements
// and ships them over the per-pair channels, scatters the incoming
// messages into its ghost buffer, accumulates, and stores. No
// ownership analysis happens at execution time, which is where
// schedule reuse across ExecuteN iterations pays. Remapping either
// array invalidates the schedule (the compiled slots point into the
// pre-remap stores).
type IrregularSchedule struct {
	eng        *Engine
	plans      []*iplan
	ghostTotal int
	messages   int
	// constGhost: the gather source is a different array from the
	// accumulator, so halo data is invariant across an ExecuteN epoch
	// and each pair's frame ships once per epoch (schedule-level
	// coalescing; see Schedule.constGhost).
	constGhost bool
	arrays     []*Array
	gens       []int
}

// iplan is one worker's compiled share: the accumulate/store lists in
// local slot space plus the halo sends and receives.
type iplan struct {
	lhsData []float64
	srcData []float64
	// Accumulate: access j adds coeffs[j]·v(reads[j]) into
	// acc[writeIx[j]], where reads[j] >= 0 is a slot of srcData and
	// reads[j] < 0 is ghost slot -(reads[j]+1); then acc[i] stores to
	// lhsData[outSlots[i]].
	outSlots []int32
	writeIx  []int32
	reads    []int32
	coeffs   []float64
	ghost    []float64
	acc      []float64

	sends []isend
	recvs []irecv

	load       int
	localRefs  int
	remoteRefs int
}

// isend gathers this worker's owned halo elements for one
// destination; slots index the worker's own source segment.
type isend struct {
	dst   int
	slots []int32
}

// irecv scatters one sender's message into the ghost buffer.
type irecv struct {
	src     int
	targets []int32
}

// BuildIrregular runs the inspector over the pattern and lowers the
// resulting schedule to per-worker slot plans. Replicated arrays are
// refused (no single-owner partition exists).
func (e *Engine) BuildIrregular(lhs, src *Array, pat inspector.Pattern) (*IrregularSchedule, error) {
	if lhs.eng != e || src.eng != e {
		return nil, fmt.Errorf("spmd: irregular statement arrays belong to a different engine")
	}
	if lhs.lay.owners == nil || src.lay.owners == nil {
		return nil, fmt.Errorf("spmd: %s", inspector.ErrReplicated)
	}
	sched, err := inspector.Build(e.np, lhs.lay.owners, src.lay.owners, pat)
	if err != nil {
		return nil, err
	}
	s := &IrregularSchedule{
		eng:        e,
		plans:      make([]*iplan, e.np+1),
		ghostTotal: sched.GhostElements(),
		messages:   sched.Messages(),
		constGhost: lhs != src,
		arrays:     []*Array{lhs, src},
	}
	planOf := func(p int) *iplan {
		if s.plans[p] == nil {
			s.plans[p] = &iplan{
				lhsData: lhs.lay.stores[p].data,
				srcData: src.lay.stores[p].data,
			}
		}
		return s.plans[p]
	}
	for p := 1; p <= e.np; p++ {
		pl := sched.Plans[p]
		if pl == nil {
			continue
		}
		wp := planOf(p)
		wp.outSlots = make([]int32, len(pl.Outs))
		for i, off := range pl.Outs {
			wp.outSlots[i] = lhs.lay.slotOf(p, int(off))
		}
		wp.writeIx = pl.WriteIx
		wp.coeffs = pl.Coeffs
		wp.reads = make([]int32, len(pl.Reads))
		for j, r := range pl.Reads {
			if r >= 0 {
				wp.reads[j] = src.lay.slotOf(p, int(r))
			} else {
				wp.reads[j] = r
			}
		}
		wp.ghost = make([]float64, pl.NGhost)
		wp.acc = make([]float64, len(pl.Outs))
		wp.load = pl.Load
		wp.localRefs = pl.LocalRefs
		wp.remoteRefs = pl.RemoteRefs
	}
	for _, pr := range sched.Pairs {
		slots := make([]int32, len(pr.Offsets))
		for i, off := range pr.Offsets {
			slots[i] = src.lay.slotOf(pr.Src, int(off))
		}
		sp := planOf(pr.Src)
		sp.sends = append(sp.sends, isend{dst: pr.Dst, slots: slots})
		rp := planOf(pr.Dst)
		rp.recvs = append(rp.recvs, irecv{src: pr.Src, targets: pr.Targets})
	}
	for _, a := range s.arrays {
		s.gens = append(s.gens, a.gen)
	}
	return s, nil
}

// GhostElements reports the deduplicated halo traffic per execution.
func (s *IrregularSchedule) GhostElements() int { return s.ghostTotal }

// Messages reports the aggregated messages per execution.
func (s *IrregularSchedule) Messages() int { return s.messages }

// Execute runs the statement once across the workers.
func (s *IrregularSchedule) Execute() error { return s.ExecuteN(1) }

// ExecuteN runs the statement iters times in one worker epoch. As
// with the regular schedules, the per-pair FIFO channels pipeline the
// iterations: a receiver's iteration-k ghost values come from its
// sender's post-(k-1) stores, with no global barrier in between.
func (s *IrregularSchedule) ExecuteN(iters int) error {
	if iters < 1 {
		return fmt.Errorf("spmd: ExecuteN needs a positive iteration count, got %d", iters)
	}
	for i, a := range s.arrays {
		if a.gen != s.gens[i] {
			return fmt.Errorf("spmd: irregular schedule over %s invalidated by remap; rebuild it", a.name)
		}
	}
	e := s.eng
	timing := obs.TimingEnabled()
	span := obs.BeginSpan("epoch", fmt.Sprintf("irregular x%d", iters), 0)
	err := e.run(func(p int) {
		wp := s.plans[p]
		if wp == nil {
			return
		}
		wspan := obs.BeginSpan("worker", fmt.Sprintf("rank %d x%d", p, iters), p)
		var tally *phaseTally
		if timing {
			tally = new(phaseTally)
		}
		for it := 0; it < iters; it++ {
			wp.step(e, p, it == 0 || !s.constGhost, tally)
		}
		if wspan != nil {
			wspan()
		}
		c := counters{
			load:       wp.load * iters,
			localRefs:  wp.localRefs * iters,
			remoteRefs: wp.remoteRefs * iters,
			phase:      tally,
		}
		frames := iters
		if s.constGhost {
			frames = 1
		}
		for _, sp := range wp.sends {
			c.sends = append(c.sends, sendCount{dst: sp.dst, elems: len(sp.slots), msgs: iters, frames: frames})
		}
		e.flush(p, &c)
	})
	if span != nil {
		span()
	}
	return err
}

// step is one worker's iteration: gather-and-send the owned halo
// elements, receive and scatter the incoming ones, accumulate, and
// store (all reads precede every store, Fortran array-assignment
// semantics). With comm false (a coalesced replay) the halo exchange
// is skipped and the epoch's first scattered ghost buffer is reused.
// A non-nil tally splits the wall time into ghost-wait and compute.
func (wp *iplan) step(e *Engine, p int, comm bool, tally *phaseTally) {
	var t0 time.Time
	if tally != nil {
		t0 = time.Now()
	}
	if comm {
		for i := range wp.sends {
			sp := &wp.sends[i]
			buf := make([]float64, len(sp.slots))
			for k, sl := range sp.slots {
				buf[k] = wp.srcData[sl]
			}
			e.send(p, sp.dst, buf)
		}
		for i := range wp.recvs {
			rp := &wp.recvs[i]
			msg := e.recv(rp.src, p)
			for k, v := range msg {
				wp.ghost[rp.targets[k]] = v
			}
		}
		if tally != nil {
			now := time.Now()
			tally[machine.PhaseGhostWait] += int64(now.Sub(t0))
			t0 = now
		}
	}
	for i := range wp.acc {
		wp.acc[i] = 0
	}
	for j, r := range wp.reads {
		var v float64
		if r >= 0 {
			v = wp.srcData[r]
		} else {
			v = wp.ghost[-r-1]
		}
		wp.acc[wp.writeIx[j]] += wp.coeffs[j] * v
	}
	for i, sl := range wp.outSlots {
		wp.lhsData[sl] = wp.acc[i]
	}
	if tally != nil {
		tally[machine.PhaseCompute] += int64(time.Since(t0))
	}
}
