package spmd

import (
	"testing"

	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/inspector"
	"hpfnt/internal/machine"
	"hpfnt/internal/proc"
	"hpfnt/internal/transport"
)

// TestCoalescedWireFrames checks the schedule-level coalescing
// invariant on every wire: a multi-iteration epoch of a statement
// that does not overwrite its own input ships exactly one physical
// frame per active (sender,receiver) pair, while the logical message
// count (the cost model's view) still charges one message per pair
// per iteration — and a self-referencing statement keeps frames ==
// messages, since each iteration's ghosts depend on the previous
// stores.
func TestCoalescedWireFrames(t *testing.T) {
	const n, np, iters = 32, 4, 5
	for _, kind := range transport.Kinds() {
		t.Run(kind, func(t *testing.T) {
			tr, err := transport.New(kind, np)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewOn(tr, machine.DefaultCost())
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			sys, _ := proc.NewSystem(np)
			dom := index.Standard(1, n, 1, n)
			am := mapping(t, sys, dom, dist.Block{})
			bm := mapping(t, sys, dom, dist.Block{})
			a, err := e.NewArray("A", am)
			if err != nil {
				t.Fatal(err)
			}
			b, err := e.NewArray("B", bm)
			if err != nil {
				t.Fatal(err)
			}
			a.Fill(func(tp index.Tuple) float64 { return float64(tp[0]*3 + tp[1]) })
			interior := index.Standard(2, n-1, 2, n-1)

			// b <- a: sources disjoint from lhs, ghost data epoch-constant.
			sched, err := e.BuildSchedule(b, interior, []Term{
				Ref(a, 0.25, -1, 0), Ref(a, 0.25, 1, 0), Ref(a, 0.25, 0, -1), Ref(a, 0.25, 0, 1),
			})
			if err != nil {
				t.Fatal(err)
			}
			pairs := sched.Messages()
			if pairs == 0 {
				t.Fatal("block-row Jacobi schedule has no ghost pairs")
			}
			e.Reset()
			if err := sched.ExecuteN(iters); err != nil {
				t.Fatal(err)
			}
			if got := e.Machine().WireFrames(); got != int64(pairs) {
				t.Errorf("coalesced epoch: WireFrames = %d, want %d (one per pair)", got, pairs)
			}
			if got := e.Stats().Messages; got != int64(pairs*iters) {
				t.Errorf("coalesced epoch: logical Messages = %d, want %d (pairs × iters)", got, pairs*iters)
			}
			// A second epoch re-ships (a may have changed between epochs).
			if err := sched.ExecuteN(iters); err != nil {
				t.Fatal(err)
			}
			if got := e.Machine().WireFrames(); got != int64(2*pairs) {
				t.Errorf("two coalesced epochs: WireFrames = %d, want %d", got, 2*pairs)
			}

			// a <- a: the statement overwrites its input; every
			// iteration must exchange fresh ghosts.
			self, err := e.BuildSchedule(a, interior, []Term{Ref(a, 0.5, -1, 0), Ref(a, 0.5, 1, 0)})
			if err != nil {
				t.Fatal(err)
			}
			spairs := self.Messages()
			e.Reset()
			if err := self.ExecuteN(iters); err != nil {
				t.Fatal(err)
			}
			if got := e.Machine().WireFrames(); got != int64(spairs*iters) {
				t.Errorf("self-referencing epoch: WireFrames = %d, want %d (no coalescing)", got, spairs*iters)
			}
		})
	}
}

// TestCoalescedIrregularWireFrames is the same invariant for the
// inspector-executor path: the sparse-CG-shaped gather (acc and src
// are distinct arrays) coalesces to one frame per halo pair per
// epoch.
func TestCoalescedIrregularWireFrames(t *testing.T) {
	const n, np, iters = 40, 4, 4
	tr, err := transport.New(transport.Shm, np)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewOn(tr, machine.DefaultCost())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sys, _ := proc.NewSystem(np)
	dom := index.Standard(1, n)
	src, err := e.NewArray("X", mapping(t, sys, dom, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := e.NewArray("Q", mapping(t, sys, dom, dist.Block{}))
	if err != nil {
		t.Fatal(err)
	}
	src.Fill(func(tp index.Tuple) float64 { return float64(tp[0] * tp[0] % 61) })
	// Ring-plus-stride reads: every element reads its neighbour and a
	// far element, guaranteeing cross-worker halo traffic.
	var pat inspector.Pattern
	for i := 0; i < n; i++ {
		pat.Writes = append(pat.Writes, int32(i))
		pat.Reads = append(pat.Reads, int32((i+1)%n))
		pat.Coeffs = append(pat.Coeffs, 1)
		pat.Writes = append(pat.Writes, int32(i))
		pat.Reads = append(pat.Reads, int32((i+n/2)%n))
		pat.Coeffs = append(pat.Coeffs, 0.5)
	}
	sched, err := e.BuildIrregular(acc, src, pat)
	if err != nil {
		t.Fatal(err)
	}
	pairs := sched.Messages()
	if pairs == 0 {
		t.Fatal("irregular halo schedule has no pairs")
	}
	e.Reset()
	if err := sched.ExecuteN(iters); err != nil {
		t.Fatal(err)
	}
	if got := e.Machine().WireFrames(); got != int64(pairs) {
		t.Errorf("coalesced irregular epoch: WireFrames = %d, want %d (one per pair)", got, pairs)
	}
	if got := e.Stats().Messages; got != int64(pairs*iters) {
		t.Errorf("coalesced irregular epoch: logical Messages = %d, want %d", got, pairs*iters)
	}
}
