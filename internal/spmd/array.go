package spmd

import (
	"errors"
	"fmt"

	"hpfnt/internal/core"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
)

// store is one worker's local segment of an array: the global offsets
// it holds (in slot order) and the values. The layout comes from the
// owner-tile kernel: tiles in enumeration order, column-major within
// each tile, so block-like mappings get contiguous runs.
type store struct {
	offsets []int32
	data    []float64
}

// layout is the compiled ownership/storage metadata of one mapping:
// who owns each element and where each copy lives. It is compile-time
// metadata only — the values themselves exist solely in the per-worker
// stores.
type layout struct {
	// owners[off] is the single owner, or nil when replicated.
	owners []int32
	// repOwns[off] is the full owner set when replicated.
	repOwns [][]int
	// slotGrid[off] is the owner's slot of a single-owner element.
	slotGrid []int32
	// repSlot[p][off] is worker p's slot of a replicated element.
	repSlot []map[int]int32
	// stores[p] is worker p's segment (index 1..np).
	stores []*store
}

// buildLayout derives the local storage layout of a mapping on e: the
// single-owner tile decomposition when one exists, the replicated
// grid otherwise. The slot metadata (offsets, owner grids) is built
// for every rank — all processes of a job derive the identical layout
// — but value storage is allocated only for the ranks this process
// hosts.
func buildLayout(e *Engine, m core.ElementMapping) (*layout, error) {
	np := e.np
	dom := m.Domain()
	size := dom.Size()
	l := &layout{stores: make([]*store, np+1)}
	for p := 1; p <= np; p++ {
		l.stores[p] = &store{}
	}
	tiles, err := core.AppendOwnerTilesOf(nil, m, dom)
	if err == nil {
		l.owners = make([]int32, size)
		l.slotGrid = make([]int32, size)
		var ferr error
		for _, tl := range tiles {
			p := tl.Proc
			if p < 1 || p > np {
				return nil, fmt.Errorf("spmd: mapping owner %d out of range 1..%d", p, np)
			}
			st := l.stores[p]
			tl.Region.ForEach(func(t index.Tuple) bool {
				off, ok := dom.Offset(t)
				if !ok {
					ferr = fmt.Errorf("spmd: tile index %s outside domain %s", t, dom)
					return false
				}
				l.owners[off] = int32(p)
				l.slotGrid[off] = int32(len(st.offsets))
				st.offsets = append(st.offsets, int32(off))
				return true
			})
			if ferr != nil {
				return nil, ferr
			}
		}
	} else if errors.Is(err, dist.ErrMultiOwner) {
		rg, rerr := core.ReplicatedGrid(m)
		if rerr != nil {
			return nil, rerr
		}
		l.repOwns = rg
		l.repSlot = make([]map[int]int32, np+1)
		for off, ps := range rg {
			for _, p := range ps {
				if p < 1 || p > np {
					return nil, fmt.Errorf("spmd: mapping owner %d out of range 1..%d", p, np)
				}
				if l.repSlot[p] == nil {
					l.repSlot[p] = map[int]int32{}
				}
				st := l.stores[p]
				l.repSlot[p][off] = int32(len(st.offsets))
				st.offsets = append(st.offsets, int32(off))
			}
		}
	} else {
		return nil, err
	}
	for p := 1; p <= np; p++ {
		if !e.hosted(p) {
			continue
		}
		st := l.stores[p]
		st.data = make([]float64, len(st.offsets))
	}
	return l, nil
}

// Array is a distributed array on the spmd engine: per-worker local
// segments only, plus the compiled ownership metadata used by the
// schedule compiler and the element accessors.
type Array struct {
	name    string
	dom     index.Domain
	mapping core.ElementMapping
	eng     *Engine
	lay     *layout
	// gen counts remaps; schedules capture it at build time and
	// refuse to replay against a remapped array (their compiled plans
	// point into the pre-remap stores).
	gen int
}

// NewArray materializes a zero-initialized distributed array with
// local-only storage laid out from the mapping's owner tiles.
func (e *Engine) NewArray(name string, m core.ElementMapping) (*Array, error) {
	l, err := buildLayout(e, m)
	if err != nil {
		return nil, fmt.Errorf("spmd: materializing %s: %w", name, err)
	}
	return &Array{name: name, dom: m.Domain(), mapping: m, eng: e, lay: l}, nil
}

// Name returns the array name.
func (a *Array) Name() string { return a.name }

// Domain returns the array's index domain.
func (a *Array) Domain() index.Domain { return a.dom }

// Mapping returns the array's element mapping.
func (a *Array) Mapping() core.ElementMapping { return a.mapping }

// Replicated reports whether any element has more than one owner.
func (a *Array) Replicated() bool { return a.lay.owners == nil }

// appendOwners appends the owner set of the element at offset off.
func (l *layout) appendOwners(dst []int, off int) []int {
	if l.owners != nil {
		return append(dst, int(l.owners[off]))
	}
	return append(dst, l.repOwns[off]...)
}

// firstOwner returns the first owner of the element at offset off.
func (l *layout) firstOwner(off int) int {
	if l.owners != nil {
		return int(l.owners[off])
	}
	return l.repOwns[off][0]
}

// ownedBy reports whether worker p holds the element at offset off.
func (l *layout) ownedBy(off, p int) bool {
	if l.owners != nil {
		return int(l.owners[off]) == p
	}
	for _, o := range l.repOwns[off] {
		if o == p {
			return true
		}
	}
	return false
}

// slotOf returns worker p's slot of the element at offset off; p must
// own the element.
func (l *layout) slotOf(p, off int) int32 {
	if l.owners != nil {
		return l.slotGrid[off]
	}
	return l.repSlot[p][off]
}

// At reads the element at tuple t (from its first owner's segment).
// Only valid between engine operations. On a multi-process transport
// this is a collective — every process calls it at the same point and
// the owner's host broadcasts the value.
func (a *Array) At(t index.Tuple) float64 {
	off, ok := a.dom.Offset(t)
	if !ok {
		panic(fmt.Sprintf("spmd: %s: index %s out of domain %s", a.name, t, a.dom))
	}
	p := a.lay.firstOwner(off)
	tr := a.eng.tr
	if tr.Procs() == 1 {
		return a.lay.stores[p].data[a.lay.slotOf(p, off)]
	}
	var vals []float64
	if a.eng.hosted(p) {
		vals = []float64{a.lay.stores[p].data[a.lay.slotOf(p, off)]}
	}
	out := tr.Bcast(tr.HostOf(p), vals)
	if len(out) == 0 {
		return 0 // failed job
	}
	return out[0]
}

// Set writes the element at tuple t into every owner's copy (each
// process writes the copies it hosts; no communication is needed when
// every process executes the same Set).
func (a *Array) Set(t index.Tuple, v float64) {
	off, ok := a.dom.Offset(t)
	if !ok {
		panic(fmt.Sprintf("spmd: %s: index %s out of domain %s", a.name, t, a.dom))
	}
	var scratch [1]int
	for _, p := range a.lay.appendOwners(scratch[:0], off) {
		if !a.eng.hosted(p) {
			continue
		}
		a.lay.stores[p].data[a.lay.slotOf(p, off)] = v
	}
}

// Fill initializes every element from fn, each worker filling its own
// segment concurrently. fn must be pure: replicated elements are
// computed once per copy, and in a multi-process job every process
// fills only the segments it hosts. A panic in fn fails the engine;
// the error surfaces from the next dispatched operation.
func (a *Array) Fill(fn func(t index.Tuple) float64) {
	lay, dom := a.lay, a.dom
	// The error is sticky on the engine; Fill itself has no error
	// return in the backend interface.
	_ = a.eng.run(func(p int) {
		st := lay.stores[p]
		for k, off := range st.offsets {
			st.data[k] = fn(dom.TupleAt(int(off)))
		}
	})
}

// Data materializes the dense column-major global value vector (from
// each element's first owner), for verification against the
// sequential oracle. It is not on any hot path. On a multi-process
// transport this is a collective: each rank's segment is broadcast
// from its host, and every process returns the identical vector.
func (a *Array) Data() []float64 {
	out := make([]float64, a.dom.Size())
	tr := a.eng.tr
	if tr.Procs() == 1 {
		for off := range out {
			p := a.lay.firstOwner(off)
			out[off] = a.lay.stores[p].data[a.lay.slotOf(p, off)]
		}
		return out
	}
	// Scatter segments in descending rank order so the lowest-ranked
	// owner's copy lands last, matching the first-owner read of the
	// single-process path for replicated arrays.
	for p := a.eng.np; p >= 1; p-- {
		st := a.lay.stores[p]
		var vals []float64
		if a.eng.hosted(p) {
			vals = st.data
		}
		seg := tr.Bcast(tr.HostOf(p), vals)
		for k, off := range st.offsets {
			if k < len(seg) {
				out[off] = seg[k]
			}
		}
	}
	return out
}
