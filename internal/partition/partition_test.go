package partition

import (
	"testing"
	"testing/quick"

	"hpfnt/internal/dist"
)

func TestBalanceUniform(t *testing.T) {
	w := make([]float64, 16)
	for i := range w {
		w[i] = 1
	}
	g, err := Balance(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 12}
	for i := range want {
		if g.Bounds[i] != want[i] {
			t.Fatalf("Bounds = %v, want %v", g.Bounds, want)
		}
	}
	if imb := Imbalance(g, w, 4); imb != 1.0 {
		t.Fatalf("uniform imbalance = %f", imb)
	}
}

func TestBalanceTriangular(t *testing.T) {
	// w(i) = i: the GENERAL_BLOCK partition should be near-perfect
	// while BLOCK is ~2x imbalanced.
	n, np := 4096, 16
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i + 1)
	}
	g, err := Balance(w, np)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(n, np); err != nil {
		t.Fatalf("balanced bounds invalid: %v", err)
	}
	gImb := Imbalance(g, w, np)
	bImb := FormatImbalance(dist.Block{}, w, np)
	cImb := FormatImbalance(dist.Cyclic{K: 1}, w, np)
	if gImb > 1.05 {
		t.Fatalf("GENERAL_BLOCK imbalance = %f, want near 1", gImb)
	}
	if bImb < 1.8 {
		t.Fatalf("BLOCK imbalance = %f, want near 2 for triangular weights", bImb)
	}
	if cImb > 1.05 {
		t.Fatalf("CYCLIC imbalance = %f, want near 1", cImb)
	}
	// But CYCLIC pays in locality: many more boundary rows.
	gCuts := BoundaryRows(g, n, np)
	cCuts := BoundaryRows(dist.Cyclic{K: 1}, n, np)
	if gCuts != np-1 {
		t.Fatalf("GENERAL_BLOCK cuts = %d, want %d", gCuts, np-1)
	}
	if cCuts != n-1 {
		t.Fatalf("CYCLIC cuts = %d, want %d", cCuts, n-1)
	}
}

func TestBalanceInts(t *testing.T) {
	g, err := BalanceInts([]int{1, 1, 1, 1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Total 8, ideal 4 per block: first block takes indices 1..4.
	if g.Bounds[0] != 4 {
		t.Fatalf("Bounds = %v", g.Bounds)
	}
}

func TestBalanceValidation(t *testing.T) {
	if _, err := Balance(nil, 4); err == nil {
		t.Fatal("empty weights must fail")
	}
	if _, err := Balance([]float64{1}, 0); err == nil {
		t.Fatal("np=0 must fail")
	}
	if _, err := Balance([]float64{1, -1}, 2); err == nil {
		t.Fatal("negative weight must fail")
	}
}

func TestBalanceSingleProcessor(t *testing.T) {
	g, err := Balance([]float64{3, 1, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Bounds) != 0 {
		t.Fatalf("Bounds = %v", g.Bounds)
	}
	if imb := Imbalance(g, []float64{3, 1, 4}, 1); imb != 1.0 {
		t.Fatalf("single-proc imbalance = %f", imb)
	}
}

func TestZeroWeights(t *testing.T) {
	w := make([]float64, 8)
	g, err := Balance(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(8, 4); err != nil {
		t.Fatal(err)
	}
	if imb := Imbalance(g, w, 4); imb != 1.0 {
		t.Fatalf("zero-weight imbalance = %f", imb)
	}
}

func TestBoundaryRowsBlock(t *testing.T) {
	if got := BoundaryRows(dist.Block{}, 16, 4); got != 3 {
		t.Fatalf("BLOCK cuts = %d, want 3", got)
	}
	if got := BoundaryRows(dist.Cyclic{K: 4}, 16, 4); got != 3 {
		t.Fatalf("CYCLIC(4) over 16/4 cuts = %d, want 3", got)
	}
}

// Property: Balance always yields valid GENERAL_BLOCK bounds, and the
// resulting imbalance never exceeds the worst single weight over the
// ideal (the prefix-sum bound).
func TestBalanceValidityProperty(t *testing.T) {
	f := func(raw []uint8, pp uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		np := int(pp%8) + 1
		w := make([]float64, len(raw))
		total := 0.0
		maxw := 0.0
		for i, x := range raw {
			w[i] = float64(x%32) + 1
			total += w[i]
			if w[i] > maxw {
				maxw = w[i]
			}
		}
		g, err := Balance(w, np)
		if err != nil {
			return false
		}
		if err := g.Validate(len(w), np); err != nil {
			return false
		}
		imb := Imbalance(g, w, np)
		ideal := total / float64(np)
		// Each block exceeds the ideal by at most one item's weight.
		return imb <= (ideal+maxw)/ideal+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
