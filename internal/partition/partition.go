// Package partition computes GENERAL_BLOCK bounds from per-index
// workload weights. The paper's key generalization over the HPF draft
// is the GENERAL_BLOCK distribution format, "which allows the
// specification of irregular block distributions, which are important
// for the support of load balancing, and can be implemented
// efficiently". This package is the load-balancing side of that
// claim: given w(i) for each index, it chooses contiguous block
// boundaries that equalize per-processor weight. In the pipeline it
// feeds computed bound vectors into GENERAL_BLOCK formats (package
// dist) for the load-balancing experiments (E4) and examples.
package partition

import (
	"fmt"

	"hpfnt/internal/dist"
)

// Balance computes GENERAL_BLOCK bounds for distributing n indices
// with weights w (len(w) == n, w[i-1] is the weight of 1-based index
// i) over np processors. It uses the classic prefix-sum heuristic:
// block k ends at the first index where cumulative weight reaches
// k/np of the total. Bounds are nondecreasing and valid for
// dist.GeneralBlock.
func Balance(w []float64, np int) (dist.GeneralBlock, error) {
	n := len(w)
	if n == 0 {
		return dist.GeneralBlock{}, fmt.Errorf("partition: empty weight vector")
	}
	if np < 1 {
		return dist.GeneralBlock{}, fmt.Errorf("partition: processor count must be positive, got %d", np)
	}
	total := 0.0
	for i, x := range w {
		if x < 0 {
			return dist.GeneralBlock{}, fmt.Errorf("partition: negative weight %g at index %d", x, i+1)
		}
		total += x
	}
	bounds := make([]int, np-1)
	cum := 0.0
	idx := 0 // 0-based index into w; bound value is idx (1-based count consumed)
	for k := 1; k < np; k++ {
		goal := total * float64(k) / float64(np)
		for idx < n && cum < goal {
			// Include index idx+1 in block k if doing so brings us
			// closer to the goal than stopping short.
			if cum+w[idx] <= goal || goal-cum > cum+w[idx]-goal {
				cum += w[idx]
				idx++
			} else {
				break
			}
		}
		bounds[k-1] = idx
	}
	return dist.GeneralBlock{Bounds: bounds}, nil
}

// BalanceInts is Balance over integer weights.
func BalanceInts(w []int, np int) (dist.GeneralBlock, error) {
	f := make([]float64, len(w))
	for i, x := range w {
		f[i] = float64(x)
	}
	return Balance(f, np)
}

// Imbalance reports max block weight divided by the ideal per-block
// weight for a given general-block partition of weights w over np
// processors; 1.0 is a perfect balance.
func Imbalance(g dist.GeneralBlock, w []float64, np int) float64 {
	n := len(w)
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total == 0 {
		return 1
	}
	maxW := 0.0
	for p := 1; p <= np; p++ {
		bw := 0.0
		for _, r := range g.OwnedRanges(p, n, np) {
			for i := r.Low; i <= r.High; i++ {
				bw += w[i-1]
			}
		}
		if bw > maxW {
			maxW = bw
		}
	}
	return maxW / (total / float64(np))
}

// FormatImbalance measures the same metric for an arbitrary
// rank-1 distribution format (used to compare BLOCK and CYCLIC
// against the balanced partition).
func FormatImbalance(f dist.Format, w []float64, np int) float64 {
	n := len(w)
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total == 0 {
		return 1
	}
	maxW := 0.0
	for p := 1; p <= np; p++ {
		bw := 0.0
		for _, r := range f.OwnedRanges(p, n, np) {
			for i := r.Low; i <= r.High; i++ {
				bw += w[i-1]
			}
		}
		if bw > maxW {
			maxW = bw
		}
	}
	return maxW / (total / float64(np))
}

// BoundaryRows counts, for a rank-1 format over n indices and np
// processors, the number of adjacent index pairs (i, i+1) whose
// owners differ — the locality cost a cyclic distribution pays to buy
// balance, and the quantity GENERAL_BLOCK keeps at np-1.
func BoundaryRows(f dist.Format, n, np int) int {
	cuts := 0
	prev := f.Map(1, n, np)
	for i := 2; i <= n; i++ {
		cur := f.Map(i, n, np)
		if cur != prev {
			cuts++
		}
		prev = cur
	}
	return cuts
}
