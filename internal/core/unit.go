package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hpfnt/internal/align"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// Array is a declared data array of a program unit.
type Array struct {
	Name string
	// Rank of the array (fixed at declaration, also for allocatables).
	Rank int
	// Dom is the index domain; valid only when Created.
	Dom index.Domain
	// Allocatable marks arrays with the ALLOCATABLE attribute (§6).
	Allocatable bool
	// Dynamic marks arrays declared DYNAMIC, a prerequisite for
	// REDISTRIBUTE and REALIGN (§4.2, §5.2).
	Dynamic bool
	// Created reports whether the array currently exists (static
	// arrays always; allocatables between ALLOCATE and DEALLOCATE).
	Created bool
	// IsDummy marks dummy arguments inside a procedure frame (§7).
	IsDummy bool
}

// node is a vertex of the alignment forest (§2.4): there is a
// directed edge from B to A iff A is aligned to B; tree height is at
// most 1.
type node struct {
	arr *Array
	// base is non-nil iff this array is secondary.
	base *node
	// alpha is the alignment function to base (secondary only).
	alpha *align.Function
	// primaryMap is the mapping of a primary array. Usually a
	// DistMapping; after REALIGN/DEALLOCATE forest surgery it may be
	// a frozen Constructed or SectionMapping carrying "the current
	// distribution" of a promoted secondary (§5.2 step 1).
	primaryMap ElementMapping
	// d is the format-based distribution when primaryMap is one.
	d *dist.Distribution
	// children indexes the secondaries aligned to this array.
	children map[string]*node
}

func (n *node) isPrimary() bool { return n.base == nil }

// deferredDist records a specification-part DISTRIBUTE for an
// allocatable, applied at each ALLOCATE (§6).
type deferredDist struct {
	formats []dist.Format
	target  proc.Target
	hasTo   bool
}

// Unit is a program unit execution context: the data space of all
// arrays accessible and created at a given time (§2.4), their
// alignment forest, and the processor system.
type Unit struct {
	// Name identifies the unit (program or procedure name).
	Name string
	// Sys is the processor system shared by all units of the program.
	Sys *proc.System

	nodes map[string]*node
	order []string

	defDist  map[string]deferredDist
	defAlign map[string]align.Spec
}

// NewUnit creates an empty program unit over the given processor
// system.
func NewUnit(name string, sys *proc.System) *Unit {
	return &Unit{
		Name:     name,
		Sys:      sys,
		nodes:    map[string]*node{},
		defDist:  map[string]deferredDist{},
		defAlign: map[string]align.Spec{},
	}
}

// boundsEnv supplies LBOUND/UBOUND/SIZE resolution over the unit's
// arrays for alignment expressions.
func (u *Unit) boundsEnv() expr.Env {
	return expr.Env{Bounds: func(array string, dim int) (index.Triplet, error) {
		n, ok := u.nodes[array]
		if !ok || !n.arr.Created {
			return index.Triplet{}, fmt.Errorf("core: bounds of unknown or uncreated array %s", array)
		}
		if dim < 1 || dim > n.arr.Dom.Rank() {
			return index.Triplet{}, fmt.Errorf("core: dimension %d out of range for %s", dim, array)
		}
		return n.arr.Dom.Dims[dim-1], nil
	}}
}

// DeclareArray declares a static array with the given index domain.
func (u *Unit) DeclareArray(name string, dom index.Domain) (*Array, error) {
	if err := u.checkFresh(name); err != nil {
		return nil, err
	}
	if !dom.IsStandard() {
		return nil, fmt.Errorf("core: array %s must have a standard index domain, got %s", name, dom)
	}
	if dom.Empty() && dom.Rank() > 0 {
		return nil, fmt.Errorf("core: array %s has an empty index domain %s", name, dom)
	}
	a := &Array{Name: name, Rank: dom.Rank(), Dom: dom, Created: true}
	u.insert(a)
	return a, nil
}

// DeclareAllocatable declares an allocatable array of the given rank;
// it is created only by ALLOCATE (§6).
func (u *Unit) DeclareAllocatable(name string, rank int) (*Array, error) {
	if err := u.checkFresh(name); err != nil {
		return nil, err
	}
	if rank < 1 {
		return nil, fmt.Errorf("core: allocatable %s must have positive rank, got %d", name, rank)
	}
	a := &Array{Name: name, Rank: rank, Allocatable: true}
	u.insert(a)
	return a, nil
}

func (u *Unit) checkFresh(name string) error {
	if name == "" {
		return errors.New("core: array name must be non-empty")
	}
	if _, dup := u.nodes[name]; dup {
		return fmt.Errorf("core: array %s already declared", name)
	}
	return nil
}

func (u *Unit) insert(a *Array) {
	u.nodes[a.Name] = &node{arr: a, children: map[string]*node{}}
	u.order = append(u.order, a.Name)
}

// SetDynamic gives an array the DYNAMIC attribute.
func (u *Unit) SetDynamic(name string) error {
	n, ok := u.nodes[name]
	if !ok {
		return fmt.Errorf("core: DYNAMIC: unknown array %s", name)
	}
	n.arr.Dynamic = true
	return nil
}

// Array looks up a declared array.
func (u *Unit) Array(name string) (*Array, bool) {
	n, ok := u.nodes[name]
	if !ok {
		return nil, false
	}
	return n.arr, true
}

// Names lists declared arrays in declaration order.
func (u *Unit) Names() []string {
	out := make([]string, len(u.order))
	copy(out, u.order)
	return out
}

// implicitTarget returns (declaring if necessary) an internal
// processor arrangement of the given rank covering all abstract
// processors, used when no TO-clause is given. The factorization is
// as near-square as possible, mirroring typical compiler defaults.
func (u *Unit) implicitTarget(rank int) (proc.Target, error) {
	if rank == 0 {
		name := "%APSCALAR"
		if a, ok := u.Sys.Lookup(name); ok {
			return proc.Whole(a), nil
		}
		a, err := u.Sys.DeclareScalar(name, proc.ScalarControl)
		if err != nil {
			return proc.Target{}, err
		}
		return proc.Whole(a), nil
	}
	name := fmt.Sprintf("%%AP%d", rank)
	if a, ok := u.Sys.Lookup(name); ok {
		return proc.Whole(a), nil
	}
	factors := factorize(u.Sys.AP.N(), rank)
	bounds := make([]int, 0, 2*rank)
	for _, f := range factors {
		bounds = append(bounds, 1, f)
	}
	a, err := u.Sys.DeclareArray(name, index.Standard(bounds...))
	if err != nil {
		return proc.Target{}, err
	}
	return proc.Whole(a), nil
}

// factorize splits n into rank factors, as balanced as possible,
// largest factor first.
func factorize(n, rank int) []int {
	out := make([]int, rank)
	for i := range out {
		out[i] = 1
	}
	rem := n
	for i := 0; i < rank; i++ {
		// Choose the largest divisor of rem not exceeding
		// rem^(1/(rank-i)), greedily.
		want := intRoot(rem, rank-i)
		best := 1
		for d := 1; d <= want; d++ {
			if rem%d == 0 {
				best = d
			}
		}
		if i == rank-1 {
			best = rem
		}
		out[i] = best
		rem /= best
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func intRoot(n, k int) int {
	if k <= 1 {
		return n
	}
	r := 1
	for pow(r+1, k) <= n {
		r++
	}
	return r
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
		if p > 1<<40 {
			return p
		}
	}
	return p
}

// Distribute applies a DISTRIBUTE directive to an array (§4). With a
// zero-valued target, an implicit target of appropriate rank is used.
// For an allocatable that is not yet created, the attributes are
// recorded and propagated to each ALLOCATE (§6).
func (u *Unit) Distribute(name string, formats []dist.Format, target proc.Target) error {
	n, ok := u.nodes[name]
	if !ok {
		return fmt.Errorf("core: DISTRIBUTE: unknown array %s", name)
	}
	if !n.isPrimary() {
		return fmt.Errorf("core: DISTRIBUTE: %s is aligned to %s; aligned arrays may not be distributed directly", name, n.base.arr.Name)
	}
	if n.arr.Allocatable && !n.arr.Created {
		if _, dup := u.defDist[name]; dup {
			return fmt.Errorf("core: DISTRIBUTE: duplicate distribution for allocatable %s", name)
		}
		if len(formats) != n.arr.Rank {
			return fmt.Errorf("core: DISTRIBUTE: %d formats for rank-%d allocatable %s", len(formats), n.arr.Rank, name)
		}
		u.defDist[name] = deferredDist{formats: formats, target: target, hasTo: target.Arr != nil}
		return nil
	}
	if n.d != nil || n.primaryMap != nil {
		return fmt.Errorf("core: DISTRIBUTE: %s already has a distribution; use REDISTRIBUTE", name)
	}
	return u.setDistribution(n, formats, target)
}

func (u *Unit) setDistribution(n *node, formats []dist.Format, target proc.Target) error {
	if target.Arr == nil {
		nonColon := 0
		for _, f := range formats {
			if f.Kind() != dist.KindCollapsed {
				nonColon++
			}
		}
		t, err := u.implicitTarget(nonColon)
		if err != nil {
			return err
		}
		target = t
	}
	d, err := dist.New(n.arr.Dom, formats, target)
	if err != nil {
		return fmt.Errorf("core: DISTRIBUTE %s: %w", n.arr.Name, err)
	}
	n.d = d
	n.primaryMap = DistMapping{D: d}
	return nil
}

// Align applies a specification-part ALIGN directive (§5): the
// alignee becomes a secondary array of the base. The §2.4 constraints
// are enforced: the base must not itself be aligned, and the alignee
// may have only one base and no direct distribution. Alignments
// naming an uncreated allocatable alignee are deferred to ALLOCATE;
// per §6, a non-allocatable local cannot be aligned to an allocatable
// in the specification part.
func (u *Unit) Align(s align.Spec) error {
	an, ok := u.nodes[s.Alignee]
	if !ok {
		return fmt.Errorf("core: ALIGN: unknown alignee %s", s.Alignee)
	}
	bn, ok := u.nodes[s.Base]
	if !ok {
		return fmt.Errorf("core: ALIGN: unknown base %s", s.Base)
	}
	if s.Alignee == s.Base {
		return fmt.Errorf("core: ALIGN: %s cannot be aligned to itself", s.Alignee)
	}
	if !bn.isPrimary() {
		return fmt.Errorf("core: ALIGN: base %s is itself aligned (to %s); alignment bases must not be aligned (§2.4)", s.Base, bn.base.arr.Name)
	}
	if !an.isPrimary() {
		return fmt.Errorf("core: ALIGN: %s is already aligned to %s; an alignee has exactly one base (§2.4)", s.Alignee, an.base.arr.Name)
	}
	if len(an.children) > 0 {
		return fmt.Errorf("core: ALIGN: %s is an alignment base for %s; trees of height > 1 are not permitted", s.Alignee, firstKey(an.children))
	}
	if an.d != nil || an.primaryMap != nil {
		return fmt.Errorf("core: ALIGN: %s already has a direct distribution", s.Alignee)
	}
	if bn.arr.Allocatable && !an.arr.Allocatable {
		return fmt.Errorf("core: ALIGN: local array %s is not ALLOCATABLE and cannot be aligned to allocatable %s in the specification part (§6)", s.Alignee, s.Base)
	}
	if an.arr.Allocatable && !an.arr.Created {
		if _, dup := u.defAlign[s.Alignee]; dup {
			return fmt.Errorf("core: ALIGN: duplicate alignment for allocatable %s", s.Alignee)
		}
		if _, dup := u.defDist[s.Alignee]; dup {
			return fmt.Errorf("core: ALIGN: allocatable %s already has a deferred distribution", s.Alignee)
		}
		u.defAlign[s.Alignee] = s
		return nil
	}
	if !bn.arr.Created {
		return fmt.Errorf("core: ALIGN: base %s is not created", s.Base)
	}
	return u.attach(an, bn, s)
}

func (u *Unit) attach(an, bn *node, s align.Spec) error {
	alpha, err := align.Normalize(s, an.arr.Dom, bn.arr.Dom, u.boundsEnv())
	if err != nil {
		return err
	}
	an.base = bn
	an.alpha = alpha
	an.d = nil
	an.primaryMap = nil
	bn.children[an.arr.Name] = an
	return nil
}

func firstKey(m map[string]*node) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// Redistribute applies an executable REDISTRIBUTE directive (§4.2).
// The distributee must be DYNAMIC. Every array aligned to it follows
// invariantly (its constructed distribution is recomputed from the
// new base distribution). A secondary distributee is disconnected and
// becomes a degenerate tree with the new distribution.
func (u *Unit) Redistribute(name string, formats []dist.Format, target proc.Target) error {
	n, ok := u.nodes[name]
	if !ok {
		return fmt.Errorf("core: REDISTRIBUTE: unknown array %s", name)
	}
	if !n.arr.Dynamic {
		return fmt.Errorf("core: REDISTRIBUTE: %s is not DYNAMIC", name)
	}
	if !n.arr.Created {
		return fmt.Errorf("core: REDISTRIBUTE: %s is not created", name)
	}
	if !n.isPrimary() {
		b := n.base
		delete(b.children, name)
		n.base = nil
		n.alpha = nil
	}
	n.d = nil
	n.primaryMap = nil
	return u.setDistribution(n, formats, target)
}

// Realign applies an executable REALIGN directive (§5.2). The alignee
// must be DYNAMIC. The forest changes per the three steps of §5.2:
// (1) if the alignee is a primary with secondaries, those secondaries
// are promoted to degenerate trees frozen at their current
// distribution; if it is secondary, it is disconnected from its base;
// (2) the alignee becomes a secondary of the new base; (3) its
// distribution is CONSTRUCT(α, δ_base).
func (u *Unit) Realign(s align.Spec) error {
	an, ok := u.nodes[s.Alignee]
	if !ok {
		return fmt.Errorf("core: REALIGN: unknown alignee %s", s.Alignee)
	}
	bn, ok := u.nodes[s.Base]
	if !ok {
		return fmt.Errorf("core: REALIGN: unknown base %s", s.Base)
	}
	if !an.arr.Dynamic {
		return fmt.Errorf("core: REALIGN: %s is not DYNAMIC", s.Alignee)
	}
	if !an.arr.Created || !bn.arr.Created {
		return fmt.Errorf("core: REALIGN: both %s and %s must be created", s.Alignee, s.Base)
	}
	if s.Alignee == s.Base {
		return fmt.Errorf("core: REALIGN: %s cannot be aligned to itself", s.Alignee)
	}
	if !bn.isPrimary() {
		return fmt.Errorf("core: REALIGN: base %s is itself aligned; alignment bases must not be aligned (§2.4)", s.Base)
	}
	// Validate the new alignment before mutating the forest.
	alpha, err := align.Normalize(s, an.arr.Dom, bn.arr.Dom, u.boundsEnv())
	if err != nil {
		return err
	}
	// Step 1.
	if an.isPrimary() {
		u.promoteChildren(an)
	} else {
		delete(an.base.children, s.Alignee)
		an.base = nil
		an.alpha = nil
	}
	// Steps 2 and 3.
	an.base = bn
	an.alpha = alpha
	an.d = nil
	an.primaryMap = nil
	bn.children[s.Alignee] = an
	return nil
}

// promoteChildren disconnects all secondaries of a primary node and
// makes each a degenerate tree frozen at its current distribution
// (§5.2 step 1).
func (u *Unit) promoteChildren(n *node) {
	baseMap := n.primaryMap
	for name, c := range n.children {
		if baseMap == nil {
			baseMap = u.ensurePrimaryMap(n)
		}
		c.primaryMap = Construct(c.alpha, baseMap)
		c.d = nil
		c.base = nil
		c.alpha = nil
		delete(n.children, name)
	}
}

// Allocate creates an allocatable array with the given index domain,
// applying any deferred specification-part DISTRIBUTE or ALIGN (§6).
func (u *Unit) Allocate(name string, dom index.Domain) error {
	n, ok := u.nodes[name]
	if !ok {
		return fmt.Errorf("core: ALLOCATE: unknown array %s", name)
	}
	if !n.arr.Allocatable {
		return fmt.Errorf("core: ALLOCATE: %s is not ALLOCATABLE", name)
	}
	if n.arr.Created {
		return fmt.Errorf("core: ALLOCATE: %s is already allocated", name)
	}
	if dom.Rank() != n.arr.Rank {
		return fmt.Errorf("core: ALLOCATE: rank-%d bounds for rank-%d allocatable %s", dom.Rank(), n.arr.Rank, name)
	}
	if !dom.IsStandard() || dom.Empty() {
		return fmt.Errorf("core: ALLOCATE: invalid bounds %s for %s", dom, name)
	}
	n.arr.Dom = dom
	n.arr.Created = true
	if dd, ok := u.defDist[name]; ok {
		t := dd.target
		if !dd.hasTo {
			t = proc.Target{}
		}
		return u.setDistribution(n, dd.formats, t)
	}
	if s, ok := u.defAlign[name]; ok {
		bn := u.nodes[s.Base]
		if bn == nil || !bn.arr.Created {
			n.arr.Created = false
			return fmt.Errorf("core: ALLOCATE: deferred alignment base %s of %s is not created", s.Base, name)
		}
		if !bn.isPrimary() {
			n.arr.Created = false
			return fmt.Errorf("core: ALLOCATE: deferred alignment base %s of %s is itself aligned", s.Base, name)
		}
		return u.attach(n, bn, s)
	}
	return nil
}

// Deallocate destroys an allocatable array, removing it from the
// alignment forest; every array directly aligned to it is promoted to
// a degenerate tree frozen at its current distribution (§6).
func (u *Unit) Deallocate(name string) error {
	n, ok := u.nodes[name]
	if !ok {
		return fmt.Errorf("core: DEALLOCATE: unknown array %s", name)
	}
	if !n.arr.Allocatable || !n.arr.Created {
		return fmt.Errorf("core: DEALLOCATE: %s is not an allocated allocatable", name)
	}
	u.promoteChildren(n)
	if !n.isPrimary() {
		delete(n.base.children, name)
		n.base = nil
		n.alpha = nil
	}
	n.d = nil
	n.primaryMap = nil
	n.arr.Created = false
	n.arr.Dom = index.Domain{}
	return nil
}

// ensurePrimaryMap lazily assigns the compiler's implicit
// distribution to a primary array without one (§2.4: "B is implicitly
// distributed by the compiler"): BLOCK in the first dimension,
// collapsed elsewhere, onto the full linear abstract processor
// arrangement.
func (u *Unit) ensurePrimaryMap(n *node) ElementMapping {
	if n.primaryMap != nil {
		return n.primaryMap
	}
	formats := make([]dist.Format, n.arr.Rank)
	for i := range formats {
		if i == 0 {
			formats[i] = dist.Block{}
		} else {
			formats[i] = dist.Collapsed{}
		}
	}
	if err := u.setDistribution(n, formats, proc.Target{}); err != nil {
		panic("core: implicit distribution failed: " + err.Error())
	}
	return n.primaryMap
}

// MappingOf returns the element mapping of an array: its own
// distribution for primaries (implicitly distributed if none was
// specified), or CONSTRUCT(α, δ_base) for secondaries.
func (u *Unit) MappingOf(name string) (ElementMapping, error) {
	n, ok := u.nodes[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown array %s", name)
	}
	if !n.arr.Created {
		return nil, fmt.Errorf("core: array %s is not created", name)
	}
	if n.isPrimary() {
		return u.ensurePrimaryMap(n), nil
	}
	return Construct(n.alpha, u.ensurePrimaryMap(n.base)), nil
}

// DistributionOf returns the format-based distribution of a primary
// array, if it has one.
func (u *Unit) DistributionOf(name string) (*dist.Distribution, bool) {
	n, ok := u.nodes[name]
	if !ok || n.d == nil {
		return nil, false
	}
	return n.d, true
}

// AlignmentOf returns the alignment function of a secondary array.
func (u *Unit) AlignmentOf(name string) (*align.Function, bool) {
	n, ok := u.nodes[name]
	if !ok || n.alpha == nil {
		return nil, false
	}
	return n.alpha, true
}

// Owners returns the owner set of one element of an array.
func (u *Unit) Owners(name string, i index.Tuple) ([]int, error) {
	m, err := u.MappingOf(name)
	if err != nil {
		return nil, err
	}
	return m.Owners(i)
}

// IsPrimary reports whether the named array is the root of its tree.
func (u *Unit) IsPrimary(name string) bool {
	n, ok := u.nodes[name]
	return ok && n.isPrimary()
}

// BaseOf returns the alignment base of a secondary array ("" for
// primaries).
func (u *Unit) BaseOf(name string) string {
	n, ok := u.nodes[name]
	if !ok || n.base == nil {
		return ""
	}
	return n.base.arr.Name
}

// SecondariesOf lists the arrays aligned to the named array, sorted.
func (u *Unit) SecondariesOf(name string) []string {
	n, ok := u.nodes[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(n.children))
	for c := range n.children {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Edge is one alignment edge of the forest.
type Edge struct{ Alignee, Base string }

// Forest lists all alignment edges, sorted by alignee.
func (u *Unit) Forest() []Edge {
	var out []Edge
	for name, n := range u.nodes {
		if n.base != nil {
			out = append(out, Edge{Alignee: name, Base: n.base.arr.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Alignee < out[j].Alignee })
	return out
}

// CheckInvariants verifies the §2.4 forest constraints: every base is
// primary (height ≤ 1) and every secondary has exactly one base edge.
func (u *Unit) CheckInvariants() error {
	for name, n := range u.nodes {
		if n.base != nil {
			if n.base.base != nil {
				return fmt.Errorf("core: invariant violated: %s is aligned to %s which is itself aligned to %s", name, n.base.arr.Name, n.base.base.arr.Name)
			}
			if len(n.children) > 0 {
				return fmt.Errorf("core: invariant violated: secondary %s has children", name)
			}
			if _, ok := n.base.children[name]; !ok {
				return fmt.Errorf("core: invariant violated: %s missing from children of %s", name, n.base.arr.Name)
			}
		}
		for cname, c := range n.children {
			if c.base != n {
				return fmt.Errorf("core: invariant violated: child link %s -> %s without back edge", name, cname)
			}
		}
	}
	return nil
}

// Describe renders the unit's forest for diagnostics.
func (u *Unit) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "unit %s:\n", u.Name)
	for _, name := range u.order {
		n := u.nodes[name]
		switch {
		case !n.arr.Created:
			fmt.Fprintf(&b, "  %s: (not created)\n", name)
		case n.isPrimary():
			desc := "(implicit, not yet assigned)"
			if n.primaryMap != nil {
				desc = n.primaryMap.Describe()
			}
			fmt.Fprintf(&b, "  %s: PRIMARY %s\n", name, desc)
		default:
			fmt.Fprintf(&b, "  %s: ALIGNED %s\n", name, n.alpha.Spec())
		}
	}
	return b.String()
}
