package core

import (
	"strings"
	"testing"

	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// setup8112 builds the §8.1.2 situation: REAL A(1000) distributed
// CYCLIC(3), and the section A(2:996:2) to pass to SUB.
func setup8112(t *testing.T) (*Unit, proc.Target) {
	t.Helper()
	u := newUnit(t, 8)
	tg := declTarget(t, u, "P", 1, 8)
	if _, err := u.DeclareArray("A", index.Standard(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := u.Distribute("A", []dist.Format{dist.Cyclic{K: 3}}, tg); err != nil {
		t.Fatal(err)
	}
	return u, tg
}

func sectionTriplet(t *testing.T) index.Triplet {
	t.Helper()
	tr, err := index.NewTriplet(2, 996, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInheritWholeArray(t *testing.T) {
	u, _ := setup8112(t)
	fr, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}}, []Actual{WholeArg("A")})
	if err != nil {
		t.Fatal(err)
	}
	b := fr.Bindings[0]
	if b.RemapIn != 0 {
		t.Fatalf("inherit moved %d elements on entry", b.RemapIn)
	}
	// The dummy sees the actual's owners element-for-element.
	am, _ := u.MappingOf("A")
	xm, _ := fr.Callee.MappingOf("X")
	for _, i := range []int{1, 3, 500, 1000} {
		ao, _ := am.Owners(index.Tuple{i})
		xo, err := xm.Owners(index.Tuple{i})
		if err != nil {
			t.Fatal(err)
		}
		if ao[0] != xo[0] {
			t.Fatalf("inherited owner of X(%d) = %v, actual A(%d) = %v", i, xo, i, ao)
		}
	}
	if err := fr.Return(); err != nil {
		t.Fatal(err)
	}
	if fr.Bindings[0].RemapOut != 0 {
		t.Fatalf("inherit moved %d elements on exit", fr.Bindings[0].RemapOut)
	}
}

func TestInheritSection(t *testing.T) {
	// §8.1.2: SUB(A(2:996:2)) with X inheriting its distribution —
	// the inherited mapping is generally not expressible as a format
	// list, but it is exactly the actual's mapping restricted to the
	// section.
	u, _ := setup8112(t)
	fr, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}},
		[]Actual{SectionArg("A", sectionTriplet(t))})
	if err != nil {
		t.Fatal(err)
	}
	xm, _ := fr.Callee.MappingOf("X")
	if xm.Domain().Size() != 498 {
		t.Fatalf("dummy domain size = %d", xm.Domain().Size())
	}
	am, _ := u.MappingOf("A")
	for k := 1; k <= 498; k++ {
		xo, err := xm.Owners(index.Tuple{k})
		if err != nil {
			t.Fatal(err)
		}
		ao, _ := am.Owners(index.Tuple{2 * k}) // X(k) is A(2k)
		if xo[0] != ao[0] {
			t.Fatalf("X(%d) on %v but A(%d) on %v", k, xo, 2*k, ao)
		}
	}
	if fr.Bindings[0].RemapIn != 0 {
		t.Fatal("inherit must not move data")
	}
}

func TestExplicitRemapAndRestore(t *testing.T) {
	// §7 mode 1: DISTRIBUTE X (BLOCK) — the actual is remapped on
	// entry and restored on exit.
	u, tg := setup8112(t)
	fr, err := u.Call("SUB", []DummySpec{{
		Name: "X", Mode: DummyExplicit,
		Formats: []dist.Format{dist.Block{}}, Target: tg,
	}}, []Actual{SectionArg("A", sectionTriplet(t))})
	if err != nil {
		t.Fatal(err)
	}
	b := fr.Bindings[0]
	if b.RemapIn == 0 {
		t.Fatal("explicit remap must move elements (cyclic(3) section vs block)")
	}
	if b.RemapIn > 498 {
		t.Fatalf("moved %d > section size", b.RemapIn)
	}
	if err := fr.Return(); err != nil {
		t.Fatal(err)
	}
	if fr.Bindings[0].RemapOut != b.RemapIn {
		t.Fatalf("restore volume %d != entry volume %d", fr.Bindings[0].RemapOut, b.RemapIn)
	}
	// Caller's mapping untouched throughout.
	am, _ := u.MappingOf("A")
	os, _ := am.Owners(index.Tuple{4})
	want := ((4+2)/3-1)%8 + 1 // CYCLIC(3) owner of index 4: seg ceil(4/3)-1 = 1 -> proc 2
	if os[0] != want {
		t.Fatalf("caller mapping disturbed: A(4) on %d, want %d", os[0], want)
	}
}

func TestInheritMatchingConformance(t *testing.T) {
	// §7 mode 3: DISTRIBUTE X *(CYCLIC(3)) — matches the whole-array
	// actual's distribution; a different spec is non-conforming.
	u, tg := setup8112(t)
	// Matching case: whole array, same format and target.
	fr, err := u.Call("SUB", []DummySpec{{
		Name: "X", Mode: DummyInheritMatch,
		Formats: []dist.Format{dist.Cyclic{K: 3}}, Target: tg,
	}}, []Actual{WholeArg("A")})
	if err != nil {
		t.Fatalf("matching inherit rejected: %v", err)
	}
	if fr.Bindings[0].RemapIn != 0 {
		t.Fatal("matching inherit must not move data")
	}
	// Mismatching case.
	_, err = u.Call("SUB", []DummySpec{{
		Name: "X", Mode: DummyInheritMatch,
		Formats: []dist.Format{dist.Block{}}, Target: tg,
	}}, []Actual{WholeArg("A")})
	if err == nil || !strings.Contains(err.Error(), "not HPF-conforming") {
		t.Fatalf("expected non-conforming error, got %v", err)
	}
}

func TestImplicitDummyInherits(t *testing.T) {
	u, _ := setup8112(t)
	fr, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyImplicit}}, []Actual{WholeArg("A")})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Bindings[0].RemapIn != 0 {
		t.Fatal("implicit mode (inheritance) must not move data")
	}
}

func TestDummyRedistributionRestoredOnExit(t *testing.T) {
	// §7: "If a dummy argument is redistributed or realigned during
	// execution of the procedure, then the original distribution must
	// be restored on procedure exit."
	u, tg := setup8112(t)
	fr, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit, Dynamic: true}},
		[]Actual{WholeArg("A")})
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.RedistributeDummy("X", []dist.Format{dist.Block{}}, tg); err != nil {
		t.Fatal(err)
	}
	if err := fr.Return(); err != nil {
		t.Fatal(err)
	}
	if fr.Bindings[0].RemapOut == 0 {
		t.Fatal("restore after dummy redistribution must move data")
	}
}

func TestDummyRedistributionRequiresDynamic(t *testing.T) {
	u, tg := setup8112(t)
	fr, _ := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}}, []Actual{WholeArg("A")})
	if err := fr.RedistributeDummy("X", []dist.Format{dist.Block{}}, tg); err == nil {
		t.Fatal("redistribution of non-DYNAMIC dummy must fail")
	}
}

func TestLocalAlignedToDummy(t *testing.T) {
	// §7: "a local data object may be aligned to a dummy argument."
	u, _ := setup8112(t)
	fr, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}}, []Actual{WholeArg("A")})
	if err != nil {
		t.Fatal(err)
	}
	callee := fr.Callee
	if _, err := callee.DeclareArray("L", index.Standard(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := callee.Align(identitySpec("L", "X", 1)); err != nil {
		t.Fatal(err)
	}
	lo, err := callee.Owners("L", index.Tuple{7})
	if err != nil {
		t.Fatal(err)
	}
	xo, _ := callee.Owners("X", index.Tuple{7})
	if lo[0] != xo[0] {
		t.Fatal("local array must be collocated with the dummy")
	}
}

func TestCallerForestIsolation(t *testing.T) {
	// §7: the alignment tree is local to a procedure; an actual
	// argument is disconnected from its caller tree during the call.
	u, _ := setup8112(t)
	u.DeclareArray("W", index.Standard(1, 1000))
	u.Align(identitySpec("W", "A", 1))
	fr, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}}, []Actual{WholeArg("A")})
	if err != nil {
		t.Fatal(err)
	}
	// The callee knows nothing about W.
	if _, ok := fr.Callee.Array("W"); ok {
		t.Fatal("caller-local array leaked into callee")
	}
	// The caller's edge W -> A is untouched.
	if u.BaseOf("W") != "A" {
		t.Fatal("caller forest modified by call")
	}
}

func TestCallArgumentCountMismatch(t *testing.T) {
	u, _ := setup8112(t)
	if _, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}}, nil); err == nil {
		t.Fatal("argument count mismatch must fail")
	}
}

func TestDoubleReturnFails(t *testing.T) {
	u, _ := setup8112(t)
	fr, _ := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}}, []Actual{WholeArg("A")})
	if err := fr.Return(); err != nil {
		t.Fatal(err)
	}
	if err := fr.Return(); err == nil {
		t.Fatal("double return must fail")
	}
}

func TestEmptySectionRejected(t *testing.T) {
	u, _ := setup8112(t)
	if _, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}},
		[]Actual{SectionArg("A", index.Unit(5, 4))}); err == nil {
		t.Fatal("empty section must fail")
	}
}
