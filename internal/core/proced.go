package core

import (
	"fmt"

	"hpfnt/internal/dist"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// DummyMode enumerates the four ways the distribution of a dummy
// argument can be specified (§7).
type DummyMode int

// The §7 dummy argument distribution modes.
const (
	// DummyExplicit: "DISTRIBUTE A d [TO r]" — the actual argument is
	// remapped to the specified distribution on entry and restored on
	// exit.
	DummyExplicit DummyMode = iota
	// DummyInherit: "DISTRIBUTE A *" — the distribution of the actual
	// argument is transferred into the procedure and inherited.
	DummyInherit
	// DummyInheritMatch: "DISTRIBUTE A * d [TO r]" — the distribution
	// is inherited, but if it does not match the specification the
	// program is not HPF-conforming.
	DummyInheritMatch
	// DummyImplicit: no explicit specification; this implementation's
	// implicit rule for dummies is inheritance (the zero-movement
	// choice §8.1.2 describes as the usual case).
	DummyImplicit
)

func (m DummyMode) String() string {
	switch m {
	case DummyExplicit:
		return "explicit"
	case DummyInherit:
		return "inherit"
	case DummyInheritMatch:
		return "inherit-matching"
	case DummyImplicit:
		return "implicit"
	}
	return "?"
}

// DummySpec describes one dummy argument of a procedure.
type DummySpec struct {
	Name string
	Mode DummyMode
	// Formats/Target are used by DummyExplicit and DummyInheritMatch.
	Formats []dist.Format
	Target  proc.Target
	// Dynamic gives the dummy the DYNAMIC attribute inside the
	// procedure (permitting REDISTRIBUTE/REALIGN of the dummy, with
	// mandatory restore on exit).
	Dynamic bool
}

// Actual designates an actual argument at a call site: a whole array
// or a section of one (e.g. A(2:996:2) in §8.1.2).
type Actual struct {
	Name string
	// Section selects a sub-domain of the array; nil means the whole
	// array.
	Section []index.Triplet
}

// WholeArg passes the whole array.
func WholeArg(name string) Actual { return Actual{Name: name} }

// SectionArg passes an array section.
func SectionArg(name string, sel ...index.Triplet) Actual {
	return Actual{Name: name, Section: sel}
}

// Binding records the mapping decisions for one dummy argument.
type Binding struct {
	Dummy  string
	Actual Actual
	Mode   DummyMode
	// Inherited is the mapping transferred from the actual.
	Inherited ElementMapping
	// Effective is the mapping the dummy has inside the procedure
	// (equals Inherited except in explicit mode).
	Effective ElementMapping
	// RemapIn is the number of elements whose owner changes on entry
	// (nonzero only for explicit remaps).
	RemapIn int
	// RemapOut is the number of elements moved back on exit, set by
	// Return (covers both explicit remaps and dummy redistribution
	// during the call, per §7: "If a dummy argument is redistributed
	// or realigned during execution of the procedure, then the
	// original distribution must be restored on procedure exit").
	RemapOut int
}

// Frame is an active procedure call: a callee unit with a local
// alignment forest (§7: "The alignment tree ... is local to a
// procedure"), plus the bookkeeping needed to restore mappings on
// exit.
type Frame struct {
	Caller *Unit
	Callee *Unit
	// Bindings, one per dummy argument, in argument order.
	Bindings []Binding

	returned bool
}

// Call enters a procedure: it builds the callee's local unit, binds
// each actual to its dummy per the dummy's distribution mode, and
// accounts for any entry remapping. The callee unit shares the
// caller's processor system.
func (u *Unit) Call(procName string, dummies []DummySpec, actuals []Actual) (*Frame, error) {
	if len(dummies) != len(actuals) {
		return nil, fmt.Errorf("core: call %s: %d dummies but %d actuals", procName, len(dummies), len(actuals))
	}
	callee := NewUnit(procName, u.Sys)
	fr := &Frame{Caller: u, Callee: callee}
	for k, ds := range dummies {
		act := actuals[k]
		b, err := u.bindArgument(callee, ds, act)
		if err != nil {
			return nil, fmt.Errorf("core: call %s, argument %d (%s): %w", procName, k+1, ds.Name, err)
		}
		fr.Bindings = append(fr.Bindings, b)
	}
	return fr, nil
}

func (u *Unit) bindArgument(callee *Unit, ds DummySpec, act Actual) (Binding, error) {
	actualMap, err := u.MappingOf(act.Name)
	if err != nil {
		return Binding{}, err
	}
	an := u.nodes[act.Name]

	// The inherited mapping: the actual's mapping, restricted to the
	// section if one is passed, rebased to the dummy's normalized
	// domain.
	var secDom index.Domain
	if act.Section != nil {
		secDom, err = an.arr.Dom.Section(act.Section...)
		if err != nil {
			return Binding{}, err
		}
		if secDom.Empty() {
			return Binding{}, fmt.Errorf("core: empty section %s of %s", secDom, act.Name)
		}
	} else {
		secDom = an.arr.Dom
	}
	inherited, err := NewSectionMapping(secDom, actualMap)
	if err != nil {
		return Binding{}, err
	}
	dummyDom := inherited.Domain()

	a, err := callee.DeclareArray(ds.Name, dummyDom)
	if err != nil {
		return Binding{}, err
	}
	a.IsDummy = true
	a.Dynamic = ds.Dynamic
	dn := callee.nodes[ds.Name]

	b := Binding{Dummy: ds.Name, Actual: act, Mode: ds.Mode, Inherited: inherited}
	switch ds.Mode {
	case DummyInherit, DummyImplicit:
		dn.primaryMap = inherited
		b.Effective = inherited
	case DummyExplicit:
		if err := callee.setDistribution(dn, ds.Formats, ds.Target); err != nil {
			return Binding{}, err
		}
		b.Effective = dn.primaryMap
		vol, err := RemapVolume(inherited, b.Effective)
		if err != nil {
			return Binding{}, err
		}
		b.RemapIn = vol
	case DummyInheritMatch:
		// Build the specified distribution over the dummy's domain
		// and verify the inherited mapping matches it; a mismatch
		// makes the program non-conforming (§7 mode 3).
		spec, err := buildSpec(callee, dummyDom, ds)
		if err != nil {
			return Binding{}, err
		}
		ok, err := matches(inherited, spec)
		if err != nil {
			return Binding{}, err
		}
		if !ok {
			return Binding{}, fmt.Errorf("core: inherited distribution of %s does not match specification %s: program is not HPF-conforming", ds.Name, spec.Describe())
		}
		dn.primaryMap = inherited
		b.Effective = inherited
	default:
		return Binding{}, fmt.Errorf("core: unknown dummy mode %d", int(ds.Mode))
	}
	return b, nil
}

func buildSpec(callee *Unit, dom index.Domain, ds DummySpec) (ElementMapping, error) {
	target := ds.Target
	if target.Arr == nil {
		nonColon := 0
		for _, f := range ds.Formats {
			if f.Kind() != dist.KindCollapsed {
				nonColon++
			}
		}
		t, err := callee.implicitTarget(nonColon)
		if err != nil {
			return nil, err
		}
		target = t
	}
	d, err := dist.New(dom, ds.Formats, target)
	if err != nil {
		return nil, err
	}
	return DistMapping{D: d}, nil
}

// matches compares an inherited mapping against a specified
// distribution, structurally when possible, semantically otherwise.
func matches(inherited ElementMapping, spec ElementMapping) (bool, error) {
	if sm, ok := inherited.(*SectionMapping); ok {
		if dm, ok := sm.Actual.(DistMapping); ok && sm.Section.Equal(dm.D.Array) {
			if sd, ok := spec.(DistMapping); ok {
				if dm.D.Equal(sd.D) {
					return true, nil
				}
			}
		}
	}
	return SameOwners(inherited, spec)
}

// RedistributeDummy redistributes a dummy argument during the call;
// the dummy must be DYNAMIC. The restore volume is accounted on
// Return.
func (f *Frame) RedistributeDummy(name string, formats []dist.Format, target proc.Target) error {
	if f.returned {
		return fmt.Errorf("core: frame for %s already returned", f.Callee.Name)
	}
	return f.Callee.Redistribute(name, formats, target)
}

// Return exits the procedure: for every dummy whose effective mapping
// changed relative to the inherited one (explicit mode, or dynamic
// redistribution during the call), the original distribution of the
// actual is restored and the movement volume recorded (§7). The
// callee's local forest is discarded; the caller's forest is
// untouched throughout, implementing "an array which is the actual
// argument of a procedure call is not connected with its alignment
// tree in the calling unit during execution of the called procedure".
func (f *Frame) Return() error {
	if f.returned {
		return fmt.Errorf("core: frame for %s already returned", f.Callee.Name)
	}
	f.returned = true
	for k := range f.Bindings {
		b := &f.Bindings[k]
		current, err := f.Callee.MappingOf(b.Dummy)
		if err != nil {
			return err
		}
		vol, err := RemapVolume(current, b.Inherited)
		if err != nil {
			return err
		}
		b.RemapOut = vol
	}
	return nil
}

// RemapVolume counts the elements whose owner set changes between two
// mappings over the same (normalized) domain — the data volume a
// remapping must move.
func RemapVolume(from, to ElementMapping) (int, error) {
	df, dt := from.Domain(), to.Domain()
	if !df.Normalize().Equal(dt.Normalize()) {
		return 0, fmt.Errorf("core: remap between different shapes %s and %s", df, dt)
	}
	tf := df.Tuples()
	tt := dt.Tuples()
	moved := 0
	for n := range tf {
		of, err := from.Owners(tf[n])
		if err != nil {
			return 0, err
		}
		ot, err := to.Owners(tt[n])
		if err != nil {
			return 0, err
		}
		if !sameSet(of, ot) {
			moved++
		}
	}
	return moved, nil
}
