package core

import (
	"strings"
	"testing"

	"hpfnt/internal/align"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

func TestMappingDescriptions(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 16))
	u.DeclareArray("A", index.Standard(1, 16))
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	u.Align(identitySpec("A", "B", 1))
	bm, _ := u.MappingOf("B")
	if !strings.Contains(bm.Describe(), "BLOCK") {
		t.Fatalf("B description = %q", bm.Describe())
	}
	am, _ := u.MappingOf("A")
	if !strings.Contains(am.Describe(), "CONSTRUCT") {
		t.Fatalf("A description = %q", am.Describe())
	}
	fr, err := u.Call("SUB", []DummySpec{{Name: "X", Mode: DummyInherit}}, []Actual{WholeArg("A")})
	if err != nil {
		t.Fatal(err)
	}
	xm, _ := fr.Callee.MappingOf("X")
	if !strings.Contains(xm.Describe(), "INHERITED") {
		t.Fatalf("X description = %q", xm.Describe())
	}
}

func TestOwnerGridAndReplicatedGrid(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 8))
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	m, _ := u.MappingOf("B")
	g, err := OwnerGrid(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 8 || g[0] != 1 || g[7] != 4 {
		t.Fatalf("grid = %v", g)
	}
	// Replicated mapping: OwnerGrid must refuse, ReplicatedGrid must
	// produce full sets.
	u.DeclareArray("D", index.Standard(1, 8, 1, 4))
	u.DeclareArray("R", index.Standard(1, 8))
	u.Distribute("D", []dist.Format{dist.Block{}, dist.Collapsed{}}, tg)
	err = u.Align(align.Spec{
		Alignee: "R", Axes: []align.Axis{align.Colon()},
		Base: "D", Subs: []align.Subscript{align.TripletSub(index.Unit(1, 8)), align.StarSub()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rm, _ := u.MappingOf("R")
	// D's columns are collapsed, so replication over columns still
	// yields one owner — use a distribution splitting columns
	// instead.
	u.DeclareArray("D2", index.Standard(1, 4, 1, 4))
	u.DeclareArray("R2", index.Standard(1, 4))
	g2, err := u.Sys.DeclareArray("G", index.Standard(1, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	u.Distribute("D2", []dist.Format{dist.Block{}, dist.Block{}}, proc.Whole(g2))
	err = u.Align(align.Spec{
		Alignee: "R2", Axes: []align.Axis{align.Colon()},
		Base: "D2", Subs: []align.Subscript{align.TripletSub(index.Unit(1, 4)), align.StarSub()},
	})
	if err != nil {
		t.Fatal(err)
	}
	rm2, _ := u.MappingOf("R2")
	if _, err := OwnerGrid(rm2); err == nil {
		t.Fatal("OwnerGrid must refuse replicated mappings")
	}
	rg, err := ReplicatedGrid(rm2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rg) != 4 || len(rg[0]) != 2 {
		t.Fatalf("replicated grid = %v", rg)
	}
	_ = rm
}

func TestSectionMappingErrors(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 16))
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	m, _ := u.MappingOf("B")
	if _, err := NewSectionMapping(index.Standard(1, 4, 1, 4), m); err == nil {
		t.Fatal("rank mismatch must fail")
	}
	sm, err := NewSectionMapping(index.New(index.Triplet{Low: 2, High: 16, Stride: 2}), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Owners(index.Tuple{99}); err == nil {
		t.Fatal("out-of-domain dummy index must fail")
	}
}

func TestSameOwnersShapeMismatch(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("A", index.Standard(1, 8))
	u.DeclareArray("B", index.Standard(1, 16))
	u.Distribute("A", []dist.Format{dist.Block{}}, tg)
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	am, _ := u.MappingOf("A")
	bm, _ := u.MappingOf("B")
	same, err := SameOwners(am, bm)
	if err != nil || same {
		t.Fatalf("different shapes must compare unequal: %v %v", same, err)
	}
}

func TestDistributionOfAndAlignmentOf(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 8))
	u.DeclareArray("A", index.Standard(1, 8))
	u.Distribute("B", []dist.Format{dist.Cyclic{K: 2}}, tg)
	u.Align(identitySpec("A", "B", 1))
	d, ok := u.DistributionOf("B")
	if !ok || d.Formats[0].Kind() != dist.KindCyclic {
		t.Fatalf("DistributionOf = %v, %v", d, ok)
	}
	if _, ok := u.DistributionOf("A"); ok {
		t.Fatal("secondary has no direct distribution")
	}
	a, ok := u.AlignmentOf("A")
	if !ok || a.Spec().Base != "B" {
		t.Fatalf("AlignmentOf = %v, %v", a, ok)
	}
	if _, ok := u.AlignmentOf("B"); ok {
		t.Fatal("primary has no alignment")
	}
	names := u.Names()
	if len(names) != 2 || names[0] != "B" {
		t.Fatalf("Names = %v", names)
	}
}

func TestImplicitTargetFactorization(t *testing.T) {
	// Implicit 2-D targets factor the processor count near-square.
	u := newUnit(t, 12)
	u.DeclareArray("A", index.Standard(1, 8, 1, 8))
	if err := u.Distribute("A", []dist.Format{dist.Block{}, dist.Block{}}, proc.Target{}); err != nil {
		t.Fatal(err)
	}
	d, ok := u.DistributionOf("A")
	if !ok {
		t.Fatal("no distribution")
	}
	if d.NP() != 12 {
		t.Fatalf("implicit target covers %d processors, want 12", d.NP())
	}
	tdom := d.Target.Domain()
	r, c := tdom.Extent(0), tdom.Extent(1)
	if r*c != 12 || r < c || r > 6 {
		t.Fatalf("factorization %dx%d not near-square", r, c)
	}
}

func TestBoundsEnvThroughAlign(t *testing.T) {
	// UBOUND through the unit's bounds environment.
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 10))
	u.DeclareArray("A", index.Standard(1, 10))
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	err := u.Align(align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "B", Subs: []align.Subscript{align.ExprSub(
			expr.Min(expr.Add(expr.Dummy("I"), expr.Const(2)), expr.UBound("B", 1)))},
	})
	if err != nil {
		t.Fatal(err)
	}
	ao, err := u.Owners("A", index.Tuple{10})
	if err != nil {
		t.Fatal(err)
	}
	bo, _ := u.Owners("B", index.Tuple{10})
	if ao[0] != bo[0] {
		t.Fatal("MIN(I+2, UBOUND) clamp failed")
	}
}

func TestDummyModeStrings(t *testing.T) {
	for m, want := range map[DummyMode]string{
		DummyExplicit:     "explicit",
		DummyInherit:      "inherit",
		DummyInheritMatch: "inherit-matching",
		DummyImplicit:     "implicit",
	} {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestImplicitTargetForInheritMatchSpec(t *testing.T) {
	// buildSpec with no TO-clause uses the callee's implicit target.
	u := newUnit(t, 8)
	tg := declTarget(t, u, "P", 1, 8)
	u.DeclareArray("A", index.Standard(1, 64))
	u.Distribute("A", []dist.Format{dist.Block{}}, tg)
	// The actual is BLOCK over P (all 8 APs); an inherit-match spec
	// (BLOCK) with implicit target over the same 8 APs matches
	// semantically.
	fr, err := u.Call("SUB", []DummySpec{{
		Name: "X", Mode: DummyInheritMatch, Formats: []dist.Format{dist.Block{}},
	}}, []Actual{WholeArg("A")})
	if err != nil {
		t.Fatalf("semantically matching implicit-target spec rejected: %v", err)
	}
	if err := fr.Return(); err != nil {
		t.Fatal(err)
	}
}
