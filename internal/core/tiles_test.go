package core

import (
	"errors"
	"fmt"
	"testing"

	"hpfnt/internal/align"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// verifyTiles checks the OwnerTiles contract against the per-element
// oracle: the tiles exactly partition region and every element of a
// tile has precisely the tile's owner.
func verifyTiles(t *testing.T, label string, m ElementMapping, region index.Domain) {
	t.Helper()
	tiles, err := OwnerTiles(m, region)
	if err != nil {
		t.Fatalf("%s: OwnerTiles(%s): %v", label, region, err)
	}
	covered := map[string]bool{}
	for _, tl := range tiles {
		tl.Region.ForEach(func(tu index.Tuple) bool {
			key := tu.String()
			if covered[key] {
				t.Fatalf("%s: element %s covered by two tiles", label, tu)
			}
			covered[key] = true
			if !region.Contains(tu) {
				t.Fatalf("%s: tile element %s outside region %s", label, tu, region)
			}
			os, err := m.Owners(tu)
			if err != nil {
				t.Fatalf("%s: oracle Owners(%s): %v", label, tu, err)
			}
			if len(os) != 1 || os[0] != tl.Proc {
				t.Fatalf("%s: tile says %s owned by %d, oracle says %v", label, tu, tl.Proc, os)
			}
			return true
		})
	}
	if len(covered) != region.Size() {
		t.Fatalf("%s: tiles cover %d of %d elements of %s", label, len(covered), region.Size(), region)
	}
	// The grid built from the tiles must agree with the oracle too.
	if region.Equal(m.Domain()) {
		g, err := OwnerGrid(m)
		if err != nil {
			t.Fatalf("%s: OwnerGrid: %v", label, err)
		}
		k := 0
		m.Domain().ForEach(func(tu index.Tuple) bool {
			os, _ := m.Owners(tu)
			if int(g[k]) != os[0] {
				t.Fatalf("%s: grid[%d]=%d, oracle %v at %s", label, k, g[k], os, tu)
			}
			k++
			return true
		})
	}
}

func mustDist(t *testing.T, dom index.Domain, fs []dist.Format, tg proc.Target) DistMapping {
	t.Helper()
	d, err := dist.New(dom, fs, tg)
	if err != nil {
		t.Fatal(err)
	}
	return DistMapping{D: d}
}

// TestOwnerTilesDifferential crosses every format family, alignment
// shape and section form against the per-element oracle, over the
// full domain and interior/edge subregions.
func TestOwnerTilesDifferential(t *testing.T) {
	sys, err := proc.NewSystem(12)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := sys.DeclareArray("P1", index.Standard(1, 4))
	p2, _ := sys.DeclareArray("P2", index.Standard(1, 3, 1, 4))
	sect, err := proc.SectionOf(p1, index.Triplet{Low: 1, High: 3, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, 23)
	for i := range owner {
		owner[i] = (i*i)%4 + 1
	}
	ind, err := dist.NewIndirect(owner)
	if err != nil {
		t.Fatal(err)
	}

	dom1 := index.Standard(1, 23)
	dom1b := index.Standard(-3, 19) // non-1 lower bound, same extent
	dom2 := index.Standard(1, 10, 1, 9)

	cases := []struct {
		label string
		m     ElementMapping
	}{
		{"block", mustDist(t, dom1, []dist.Format{dist.Block{}}, proc.Whole(p1))},
		{"vienna", mustDist(t, dom1, []dist.Format{dist.BlockVienna{}}, proc.Whole(p1))},
		{"cyclic1", mustDist(t, dom1, []dist.Format{dist.Cyclic{K: 1}}, proc.Whole(p1))},
		{"cyclic3", mustDist(t, dom1, []dist.Format{dist.Cyclic{K: 3}}, proc.Whole(p1))},
		{"gblock", mustDist(t, dom1, []dist.Format{dist.GeneralBlock{Bounds: []int{5, 5, 17}}}, proc.Whole(p1))},
		{"indirect", mustDist(t, dom1, []dist.Format{ind}, proc.Whole(p1))},
		{"offsetlow", mustDist(t, dom1b, []dist.Format{dist.Block{}}, proc.Whole(p1))},
		{"section-target", mustDist(t, dom1, []dist.Format{dist.Cyclic{K: 2}}, sect)},
		{"2d-block-collapsed", mustDist(t, dom2, []dist.Format{dist.Block{}, dist.Collapsed{}}, proc.Whole(p1))},
		{"2d-cyclic-block", mustDist(t, dom2, []dist.Format{dist.Cyclic{K: 2}, dist.Block{}}, proc.Whole(p2))},
	}

	// Alignments onto a blocked base: identity, stride/offset, negative
	// stride, collapsed axis, dummyless subscript.
	base := mustDist(t, index.Standard(1, 48), []dist.Format{dist.Cyclic{K: 5}}, proc.Whole(p1))
	alignee := index.Standard(1, 23)
	mkAlign := func(label string, sub expr.Expr) struct {
		label string
		m     ElementMapping
	} {
		spec := align.Spec{
			Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
			Base: "B", Subs: []align.Subscript{align.ExprSub(sub)},
		}
		fn, err := align.Normalize(spec, alignee, base.Domain(), expr.Env{})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return struct {
			label string
			m     ElementMapping
		}{label, Construct(fn, base)}
	}
	cases = append(cases,
		mkAlign("align-identity", expr.Dummy("I")),
		mkAlign("align-stride2", expr.Affine(2, "I", -1)),
		mkAlign("align-offset", expr.Affine(1, "I", 7)),
		mkAlign("align-reverse", expr.Affine(-1, "I", 24)),
		mkAlign("align-clamped", expr.Affine(3, "I", -10)), // leaves base bounds: clamp fallback
		mkAlign("align-minmax", expr.Max(expr.Dummy("I"), expr.Const(5))),
	)

	// A rank-2 alignment with a collapsed axis and a dummyless
	// subscript.
	base2 := mustDist(t, index.Standard(1, 12, 1, 12), []dist.Format{dist.Block{}, dist.Cyclic{K: 2}}, proc.Whole(p2))
	spec2 := align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I"), align.Star()},
		Base: "B", Subs: []align.Subscript{align.ExprSub(expr.Dummy("I")), align.ExprSub(expr.Const(4))},
	}
	fn2, err := align.Normalize(spec2, index.Standard(1, 12, 1, 5), index.Standard(1, 12, 1, 12), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		label string
		m     ElementMapping
	}{"align-2d-collapse", Construct(fn2, base2)})

	// Inherited sections of a 2-D distribution: unit and non-unit
	// strides (the latter exercises the enumeration fallback).
	actual := mustDist(t, index.Standard(1, 10, 1, 9), []dist.Format{dist.Block{}, dist.Cyclic{K: 2}}, proc.Whole(p2))
	s1, err := actual.Domain().Section(index.Unit(2, 8), index.Unit(3, 9))
	if err != nil {
		t.Fatal(err)
	}
	sm1, err := NewSectionMapping(s1, actual)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := actual.Domain().Section(index.Triplet{Low: 1, High: 9, Stride: 2}, index.Unit(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	sm2, err := NewSectionMapping(s2, actual)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases,
		struct {
			label string
			m     ElementMapping
		}{"section-unit", sm1},
		struct {
			label string
			m     ElementMapping
		}{"section-strided", sm2},
	)

	for _, c := range cases {
		t.Run(c.label, func(t *testing.T) {
			dom := c.m.Domain()
			verifyTiles(t, c.label, c.m, dom)
			// Interior subregion.
			if dom.Rank() >= 1 && dom.Extent(0) > 4 {
				dims := make([]index.Triplet, dom.Rank())
				copy(dims, dom.Dims)
				dims[0] = index.Unit(dom.Lower(0)+1, dom.Upper(0)-2)
				verifyTiles(t, c.label+"/interior", c.m, index.Domain{Dims: dims})
			}
			// Single-element region.
			pt := make([]index.Triplet, dom.Rank())
			for d := range pt {
				pt[d] = index.Unit(dom.Lower(d), dom.Lower(d))
			}
			verifyTiles(t, c.label+"/point", c.m, index.Domain{Dims: pt})
		})
	}
}

// TestOwnerTilesReplicated asserts that multi-owner mappings are
// refused with dist.ErrMultiOwner rather than mis-tiled.
func TestOwnerTilesReplicated(t *testing.T) {
	sys, err := proc.NewSystem(6)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := sys.DeclareArray("P2", index.Standard(1, 2, 1, 3))
	base := mustDist(t, index.Standard(1, 8, 1, 8), []dist.Format{dist.Block{}, dist.Block{}}, proc.Whole(p2))
	spec := align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "B", Subs: []align.Subscript{align.ExprSub(expr.Dummy("I")), align.StarSub()},
	}
	fn, err := align.Normalize(spec, index.Standard(1, 8), base.Domain(), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	repl := Construct(fn, base)
	if _, err := OwnerTiles(repl, repl.Domain()); !errors.Is(err, dist.ErrMultiOwner) {
		t.Fatalf("OwnerTiles of replicating alignment: err = %v, want ErrMultiOwner", err)
	}
	if _, err := OwnerGrid(repl); err == nil {
		t.Fatal("OwnerGrid must refuse replicated mappings")
	}

	// Scalar-target replication through the distribution layer.
	sc, err := sys.DeclareScalar("S", proc.ScalarReplicated)
	if err != nil {
		t.Fatal(err)
	}
	dm := mustDist(t, index.Standard(1, 5), []dist.Format{dist.Collapsed{}}, proc.Whole(sc))
	if _, err := OwnerTiles(dm, dm.Domain()); !errors.Is(err, dist.ErrMultiOwner) {
		t.Fatalf("OwnerTiles of replicated scalar target: err = %v, want ErrMultiOwner", err)
	}
}

// TestAppendOwnersMatchesOwners checks the allocation-free owner path
// against Owners across mapping kinds.
func TestAppendOwnersMatchesOwners(t *testing.T) {
	sys, err := proc.NewSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := sys.DeclareArray("P1", index.Standard(1, 4))
	base := mustDist(t, index.Standard(1, 32), []dist.Format{dist.Cyclic{K: 3}}, proc.Whole(p1))
	spec := align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "B", Subs: []align.Subscript{align.ExprSub(expr.Affine(2, "I", 0))},
	}
	fn, err := align.Normalize(spec, index.Standard(1, 16), base.Domain(), expr.Env{})
	if err != nil {
		t.Fatal(err)
	}
	cons := Construct(fn, base)
	sec, err := base.Domain().Section(index.Triplet{Low: 2, High: 32, Stride: 3})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSectionMapping(sec, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ElementMapping{base, cons, sm} {
		buf := make([]int, 0, 8)
		m.Domain().ForEach(func(tu index.Tuple) bool {
			want, err := m.Owners(tu)
			if err != nil {
				t.Fatalf("%s: Owners(%s): %v", m.Describe(), tu, err)
			}
			buf = buf[:0]
			got, err := AppendOwners(m, buf, tu)
			if err != nil {
				t.Fatalf("%s: AppendOwners(%s): %v", m.Describe(), tu, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s: AppendOwners(%s) = %v, Owners = %v", m.Describe(), tu, got, want)
			}
			buf = got[:0]
			return true
		})
	}
}
