// Run-based bulk ownership: the rank-N analogue of the per-dimension
// run kernel in package dist. A single-owner mapping partitions any
// rectangular region into owner tiles (dist.Tile); direct
// distributions compose per-dimension format runs, alignments
// transport base tiles through the affine interval form of α, and
// inherited section mappings translate through their (stride-1)
// triplets. Mappings outside those closed forms — replicating
// alignments aside, which have no single-owner decomposition at all —
// fall back to per-element enumeration with run coalescing, so
// OwnerTiles is total on single-owner mappings and the per-element
// Owners API remains the differential-testing oracle.
package core

import (
	"errors"
	"fmt"

	"hpfnt/internal/dist"
	"hpfnt/internal/index"
)

// Tile is a rectangular single-owner sub-domain (see dist.Tile).
type Tile = dist.Tile

// ErrNoBulk reports that a mapping lies outside the closed-form run
// subset (a MAX/MIN-clamped alignment, a strided section or region),
// so no bulk tile decomposition exists and callers must choose
// between per-element enumeration (OwnerTiles does this) and their
// own element-wise path (the runtime's grid-backed analysis).
var ErrNoBulk = errors.New("core: mapping has no bulk tile decomposition")

// TileMapper is implemented by element mappings that can enumerate
// ownership as rectangular single-owner tiles in bulk, without
// visiting individual elements.
type TileMapper interface {
	// AppendOwnerTiles appends tiles that exactly partition region
	// (a standard sub-rectangle of the mapping's domain), each owned
	// by a single abstract processor. It returns dist.ErrMultiOwner
	// when some element has several owners, and ErrNoBulk when the
	// mapping (or a mapping it composes over) admits no closed-form
	// decomposition — it never falls back to element enumeration
	// itself.
	AppendOwnerTiles(dst []Tile, region index.Domain) ([]Tile, error)
}

// OwnerAppender is implemented by element mappings that can report
// owner sets by appending to a caller-provided slice, avoiding the
// per-call allocation of Owners.
type OwnerAppender interface {
	AppendOwners(dst []int, i index.Tuple) ([]int, error)
}

// AppendOwners appends the owner set of element i to dst, using the
// mapping's allocation-free path when available.
func AppendOwners(m ElementMapping, dst []int, i index.Tuple) ([]int, error) {
	if oa, ok := m.(OwnerAppender); ok {
		return oa.AppendOwners(dst, i)
	}
	os, err := m.Owners(i)
	if err != nil {
		return nil, err
	}
	return append(dst, os...), nil
}

// OwnerTiles returns single-owner tiles exactly partitioning region.
// It is AppendOwnerTilesOf into a fresh slice.
func OwnerTiles(m ElementMapping, region index.Domain) ([]Tile, error) {
	return AppendOwnerTilesOf(nil, m, region)
}

// AppendOwnerTilesOf appends single-owner tiles partitioning region:
// the mapping's bulk decomposition when it has one, a per-element
// coalescing walk otherwise. The only failure mode besides an invalid
// region is dist.ErrMultiOwner (replicated elements have no
// single-owner tiling; use ReplicatedGrid).
func AppendOwnerTilesOf(dst []Tile, m ElementMapping, region index.Domain) ([]Tile, error) {
	tiles, err := AppendBulkOwnerTiles(dst, m, region)
	if err == nil || !errors.Is(err, ErrNoBulk) {
		return tiles, err
	}
	return appendEnumTiles(dst, m, region)
}

// AppendBulkOwnerTiles appends the mapping's closed-form tile
// decomposition, or fails with ErrNoBulk when none exists at any
// composition layer. Unlike AppendOwnerTilesOf it never enumerates
// elements, so callers holding a cheaper element-wise alternative
// (such as the runtime's materialized owner grids) can decline
// without paying an O(region) walk first.
func AppendBulkOwnerTiles(dst []Tile, m ElementMapping, region index.Domain) ([]Tile, error) {
	if tm, ok := m.(TileMapper); ok {
		return tm.AppendOwnerTiles(dst, region)
	}
	return nil, ErrNoBulk
}

// TileEstimator is implemented by mappings that can bound their bulk
// tile count over a region without materializing the tiles.
type TileEstimator interface {
	// EstimateOwnerTiles returns an upper bound on the tile count of
	// AppendOwnerTiles over region, in time independent of both the
	// region volume and the tile count. ok = false when no cheap
	// bound exists (the bulk path would decline anyway).
	EstimateOwnerTiles(region index.Domain) (int, bool)
}

// EstimateBulkTiles bounds the bulk tile count of a mapping over
// region, or ok = false when the mapping offers no estimate (which
// implies the bulk decomposition would decline or be data-dependent
// — treat it as "don't rely on interval analysis paying off").
func EstimateBulkTiles(m ElementMapping, region index.Domain) (int, bool) {
	if te, ok := m.(TileEstimator); ok {
		return te.EstimateOwnerTiles(region)
	}
	return 0, false
}

// appendEnumTiles is the generic fallback: enumerate region in
// column-major order and coalesce maximal same-owner runs along the
// first dimension. O(elements), but allocation-free per element.
func appendEnumTiles(dst []Tile, m ElementMapping, region index.Domain) ([]Tile, error) {
	if region.Rank() == 0 {
		os, err := m.Owners(index.Tuple{})
		if err != nil {
			return nil, err
		}
		if len(os) != 1 {
			return nil, dist.ErrMultiOwner
		}
		return append(dst, Tile{Region: region, Proc: os[0]}), nil
	}
	var scratch []int
	var cur Tile
	have := false
	var ferr error
	stride0 := region.Dims[0].Stride
	region.ForEach(func(t index.Tuple) bool {
		scratch = scratch[:0]
		s, err := AppendOwners(m, scratch, t)
		if err != nil {
			ferr = err
			return false
		}
		scratch = s
		if len(scratch) != 1 {
			ferr = fmt.Errorf("core: element %s has %d owners: %w", t, len(scratch), dist.ErrMultiOwner)
			return false
		}
		p := scratch[0]
		if have && p == cur.Proc && cur.Region.Dims[0].High+stride0 == t[0] && tailMatches(cur.Region, t) {
			cur.Region.Dims[0].High = t[0]
			return true
		}
		if have {
			dst = append(dst, cur)
		}
		dims := make([]index.Triplet, len(t))
		dims[0] = index.Triplet{Low: t[0], High: t[0], Stride: stride0}
		for d := 1; d < len(t); d++ {
			dims[d] = index.Unit(t[d], t[d])
		}
		cur = Tile{Region: index.Domain{Dims: dims}, Proc: p}
		have = true
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	if have {
		dst = append(dst, cur)
	}
	return dst, nil
}

// tailMatches reports whether t agrees with the tile's single-point
// trailing dimensions (1..rank-1).
func tailMatches(region index.Domain, t index.Tuple) bool {
	for d := 1; d < len(t); d++ {
		if region.Dims[d].Low != t[d] {
			return false
		}
	}
	return true
}

// AppendOwnerTiles delegates to the distribution's run composition.
func (m DistMapping) AppendOwnerTiles(dst []Tile, region index.Domain) ([]Tile, error) {
	if !region.IsStandard() {
		return nil, ErrNoBulk
	}
	return m.D.AppendOwnerTiles(dst, region)
}

// AppendOwners delegates to the distribution's allocation-free path.
func (m DistMapping) AppendOwners(dst []int, i index.Tuple) ([]int, error) {
	return m.D.AppendOwners(dst, i)
}

// EstimateOwnerTiles delegates to the distribution's closed-form run
// counting.
func (m DistMapping) EstimateOwnerTiles(region index.Domain) (int, bool) {
	return m.D.OwnerTileEstimate(region)
}

// AppendOwnerTiles transports base tiles through the affine interval
// form of α: the region's image is one base rectangle, the base
// mapping tiles it, and each base tile pulls back to the alignee
// indices landing in it. Non-affine or clamped alignments decline
// with ErrNoBulk; replicating alignments have no single-owner tiling
// and return dist.ErrMultiOwner.
func (c *Constructed) AppendOwnerTiles(dst []Tile, region index.Domain) ([]Tile, error) {
	if c.Alpha.Replicates() {
		return nil, dist.ErrMultiOwner
	}
	am, ok := c.Alpha.Affine()
	if !ok || !region.IsStandard() {
		return nil, ErrNoBulk
	}
	if region.Empty() && region.Rank() > 0 {
		return dst, nil
	}
	baseRegion, ok := am.ImageRegion(region)
	if !ok {
		// The §5.1 clamp rule would bend the map; stay exact.
		return nil, ErrNoBulk
	}
	baseTiles, err := AppendBulkOwnerTiles(nil, c.BaseMap, baseRegion)
	if err != nil {
		return nil, err
	}
	for _, bt := range baseTiles {
		if sub, ok := am.Preimage(bt.Region, region); ok {
			dst = append(dst, Tile{Region: sub, Proc: bt.Proc})
		}
	}
	return dst, nil
}

// EstimateOwnerTiles bounds the tile count through the affine
// interval form: each base tile pulls back to at most one alignee
// tile, so the base's estimate over the image region bounds ours.
func (c *Constructed) EstimateOwnerTiles(region index.Domain) (int, bool) {
	am, ok := c.Alpha.Affine()
	if !ok || !region.IsStandard() {
		return 0, false
	}
	if region.Empty() && region.Rank() > 0 {
		return 0, true
	}
	baseRegion, ok := am.ImageRegion(region)
	if !ok {
		return 0, false
	}
	return EstimateBulkTiles(c.BaseMap, baseRegion)
}

// AppendOwners computes the owner union over α(i) with linear
// deduplication into dst, avoiding the per-call set allocation of
// Owners.
func (c *Constructed) AppendOwners(dst []int, i index.Tuple) ([]int, error) {
	img, err := c.Alpha.Image(i)
	if err != nil {
		return nil, err
	}
	start := len(dst)
	for _, j := range img {
		pre := len(dst)
		dst, err = AppendOwners(c.BaseMap, dst, j)
		if err != nil {
			return nil, fmt.Errorf("core: CONSTRUCT: base owners of %s: %w", j, err)
		}
		out := pre
		for k := pre; k < len(dst); k++ {
			v := dst[k]
			dup := false
			for x := start; x < out; x++ {
				if dst[x] == v {
					dup = true
					break
				}
			}
			if !dup {
				dst[out] = v
				out++
			}
		}
		dst = dst[:out]
	}
	if len(dst) == start {
		return nil, fmt.Errorf("core: CONSTRUCT produced empty owner set for %s", i)
	}
	return dst, nil
}

// AppendOwnerTiles translates the dummy region through the section
// triplets — affine per dimension — tiles the actual array's
// sub-rectangle, and maps each tile back to dummy coordinates.
// Sections with non-unit strides decline with ErrNoBulk.
func (s *SectionMapping) AppendOwnerTiles(dst []Tile, region index.Domain) ([]Tile, error) {
	if !region.IsStandard() || !s.Section.IsStandard() {
		return nil, ErrNoBulk
	}
	if region.Empty() && region.Rank() > 0 {
		return dst, nil
	}
	dims := make([]index.Triplet, region.Rank())
	for d, tr := range region.Dims {
		base := s.Section.Dims[d]
		dims[d] = index.Unit(base.At(tr.Low-1), base.At(tr.High-1))
	}
	actTiles, err := AppendBulkOwnerTiles(nil, s.Actual, index.Domain{Dims: dims})
	if err != nil {
		return nil, err
	}
	for _, at := range actTiles {
		sub := make([]index.Triplet, region.Rank())
		for d, tr := range at.Region.Dims {
			base := s.Section.Dims[d]
			sub[d] = index.Unit(tr.Low-base.Low+1, tr.High-base.Low+1)
		}
		dst = append(dst, Tile{Region: index.Domain{Dims: sub}, Proc: at.Proc})
	}
	return dst, nil
}

// EstimateOwnerTiles bounds the tile count through the section's
// triplet translation: actual tiles map back one-to-one.
func (s *SectionMapping) EstimateOwnerTiles(region index.Domain) (int, bool) {
	if !region.IsStandard() || !s.Section.IsStandard() {
		return 0, false
	}
	if region.Empty() && region.Rank() > 0 {
		return 0, true
	}
	dims := make([]index.Triplet, region.Rank())
	for d, tr := range region.Dims {
		base := s.Section.Dims[d]
		dims[d] = index.Unit(base.At(tr.Low-1), base.At(tr.High-1))
	}
	return EstimateBulkTiles(s.Actual, index.Domain{Dims: dims})
}

// AppendOwners translates the dummy index through the section
// triplets and delegates to the actual's allocation-free path.
func (s *SectionMapping) AppendOwners(dst []int, i index.Tuple) ([]int, error) {
	if !s.Dummy.Contains(i) {
		return nil, fmt.Errorf("core: %s not in dummy domain %s", i, s.Dummy)
	}
	at := make(index.Tuple, len(i))
	for d, v := range i {
		at[d] = s.Section.Dims[d].At(v - 1)
	}
	return AppendOwners(s.Actual, dst, at)
}
