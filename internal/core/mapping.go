// Package core implements the paper's distribution-and-alignment
// model without templates: the data space and alignment forest of
// §2.4 (trees of height at most 1 with primary and secondary arrays),
// the CONSTRUCT composition of Definition 4, the DISTRIBUTE / ALIGN /
// REDISTRIBUTE / REALIGN semantics of §4–§5, allocatable array
// handling per §6, and the procedure-boundary machinery of §7. In
// the pipeline this is the composition layer: it turns the
// per-dimension formats of package dist and the alignment functions
// of package align into the ElementMapping every executor consumes,
// and extends the run-length ownership kernel (owner tiles) across
// alignment and procedure-boundary composition.
package core

import (
	"errors"
	"fmt"

	"hpfnt/internal/align"
	"hpfnt/internal/dist"
	"hpfnt/internal/index"
)

// ElementMapping is the element-based view of an index mapping
// (Definition 1, §2.1): a total function from an array's index domain
// to non-empty sets of abstract processors. Direct distributions,
// constructed (aligned) distributions, and inherited section mappings
// all implement it.
type ElementMapping interface {
	// Domain is the array's index domain.
	Domain() index.Domain
	// Owners returns the non-empty set of abstract processor numbers
	// owning element i.
	Owners(i index.Tuple) ([]int, error)
	// Describe renders a human-readable description of the mapping.
	Describe() string
}

// DistMapping adapts a direct distribution to ElementMapping.
type DistMapping struct {
	D *dist.Distribution
}

// Domain returns the distributee's domain.
func (m DistMapping) Domain() index.Domain { return m.D.Array }

// Owners delegates to the distribution.
func (m DistMapping) Owners(i index.Tuple) ([]int, error) { return m.D.Owners(i) }

// Describe renders the distribution in directive syntax.
func (m DistMapping) Describe() string { return m.D.String() }

// Constructed is the distribution of a secondary array, built by
// Definition 4: δ_A = CONSTRUCT(α, δ_B), i.e.
// δ_A(i) = ∪_{j ∈ α(i)} δ_B(j). If i is mapped to an index j of B via
// α, then A(i) and B(j) are guaranteed to reside in the same
// processor under any distribution of B.
type Constructed struct {
	// Alpha is the alignment function from the secondary to its base.
	Alpha *align.Function
	// BaseMap is the base's element mapping (always a DistMapping in
	// a well-formed forest, since bases are primary).
	BaseMap ElementMapping
}

// Construct builds δ_A = CONSTRUCT(α, δ_B).
func Construct(alpha *align.Function, baseMap ElementMapping) *Constructed {
	return &Constructed{Alpha: alpha, BaseMap: baseMap}
}

// Domain returns the alignee's domain.
func (c *Constructed) Domain() index.Domain { return c.Alpha.Alignee }

// Owners computes the union of the base owners over the image α(i).
func (c *Constructed) Owners(i index.Tuple) ([]int, error) {
	img, err := c.Alpha.Image(i)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	var out []int
	for _, j := range img {
		os, err := c.BaseMap.Owners(j)
		if err != nil {
			return nil, fmt.Errorf("core: CONSTRUCT: base owners of %s: %w", j, err)
		}
		for _, p := range os {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: CONSTRUCT produced empty owner set for %s", i)
	}
	return out, nil
}

// Describe renders the construction.
func (c *Constructed) Describe() string {
	return fmt.Sprintf("CONSTRUCT(%s, %s)", c.Alpha.Spec(), c.BaseMap.Describe())
}

// SectionMapping is the mapping inherited by a dummy argument whose
// actual argument is an array section (§8.1.2): the dummy's
// normalized index domain maps through the section's subscript
// triplets into the actual array's mapping. Such inherited
// distributions "cannot be explicitly specified" as format lists in
// general; inquiry functions (package inquiry) interrogate them.
type SectionMapping struct {
	// Dummy is the dummy argument's (normalized) index domain.
	Dummy index.Domain
	// Section holds the selecting triplets over the actual array.
	Section index.Domain
	// Actual is the actual argument's element mapping.
	Actual ElementMapping
}

// NewSectionMapping builds the inherited mapping of a section actual.
func NewSectionMapping(section index.Domain, actual ElementMapping) (*SectionMapping, error) {
	if section.Rank() != actual.Domain().Rank() {
		return nil, fmt.Errorf("core: section rank %d does not match array rank %d", section.Rank(), actual.Domain().Rank())
	}
	return &SectionMapping{Dummy: section.Normalize(), Section: section, Actual: actual}, nil
}

// Domain returns the dummy's normalized domain.
func (s *SectionMapping) Domain() index.Domain { return s.Dummy }

// Owners translates the dummy index through the section triplets and
// delegates to the actual's mapping.
func (s *SectionMapping) Owners(i index.Tuple) ([]int, error) {
	if !s.Dummy.Contains(i) {
		return nil, fmt.Errorf("core: %s not in dummy domain %s", i, s.Dummy)
	}
	at := make(index.Tuple, len(i))
	for d, v := range i {
		at[d] = s.Section.Dims[d].At(v - 1)
	}
	return s.Actual.Owners(at)
}

// Describe renders the inherited-section mapping.
func (s *SectionMapping) Describe() string {
	return fmt.Sprintf("INHERITED %s OF %s", s.Section, s.Actual.Describe())
}

// SameOwners reports whether two mappings assign identical owner sets
// to every element of their (necessarily equal-extent) domains. It is
// the semantic equality used by the inheritance-matching dummy mode
// when structural comparison is unavailable.
func SameOwners(a, b ElementMapping) (bool, error) {
	da, db := a.Domain(), b.Domain()
	if !da.Normalize().Equal(db.Normalize()) {
		return false, nil
	}
	same := true
	var ferr error
	ka := da.Tuples()
	kb := db.Tuples()
	for n := range ka {
		oa, err := a.Owners(ka[n])
		if err != nil {
			ferr = err
			break
		}
		ob, err := b.Owners(kb[n])
		if err != nil {
			ferr = err
			break
		}
		if !sameSet(oa, ob) {
			same = false
			break
		}
	}
	if ferr != nil {
		return false, ferr
	}
	return same, nil
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]int{}
	for _, x := range a {
		m[x]++
	}
	for _, y := range b {
		if m[y] == 0 {
			return false
		}
		m[y]--
	}
	return true
}

// OwnerGrid materializes the single-owner map of a mapping into a
// dense column-major slice (and reports an error if any element is
// replicated; use ReplicatedGrid then). The runtime uses it to
// execute owner-computes loops without re-evaluating α per access.
// When the mapping's run decomposition is coarse (the closed-form
// formats), the grid is painted tile by tile — O(tiles) ownership
// computations plus O(size) stores; fine-grain interleavings and
// mappings outside the affine subset fill element-wise through the
// allocation-free AppendOwners path instead, where materializing
// near-singleton tiles would cost more than it saves.
func OwnerGrid(m ElementMapping) ([]int32, error) {
	dom := m.Domain()
	size := dom.Size()
	if est, ok := EstimateBulkTiles(m, dom); ok && est*minPaintElems <= size {
		tiles, err := AppendBulkOwnerTiles(nil, m, dom)
		if err == nil {
			out := make([]int32, size)
			for _, tl := range tiles {
				if err := paintTile(out, dom, tl); err != nil {
					return nil, err
				}
			}
			return out, nil
		}
		if errors.Is(err, dist.ErrMultiOwner) {
			return nil, fmt.Errorf("core: OwnerGrid requires single-owner mappings: %w", err)
		}
		// Estimate was optimistic; fall through to the element path.
	}
	out := make([]int32, size)
	var scratch []int
	var ferr error
	k := 0
	dom.ForEach(func(t index.Tuple) bool {
		os, err := AppendOwners(m, scratch[:0], t)
		if err != nil {
			ferr = err
			return false
		}
		scratch = os
		if len(os) != 1 {
			ferr = fmt.Errorf("core: element %s has %d owners; OwnerGrid requires single-owner mappings (use ReplicatedGrid)", t, len(os))
			return false
		}
		out[k] = int32(os[0])
		k++
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// minPaintElems is the average tile volume below which tile painting
// loses to the element-wise grid fill.
const minPaintElems = 4

// paintTile stores the tile's owner over its region in the grid,
// filling contiguous column-major spans along the first dimension.
func paintTile(out []int32, dom index.Domain, tl Tile) error {
	p := int32(tl.Proc)
	if tl.Region.Rank() == 0 {
		out[0] = p
		return nil
	}
	if !dom.IsStandard() || !tl.Region.IsStandard() {
		var ferr error
		tl.Region.ForEach(func(t index.Tuple) bool {
			off, ok := dom.Offset(t)
			if !ok {
				ferr = fmt.Errorf("core: tile element %s outside domain %s", t, dom)
				return false
			}
			out[off] = p
			return true
		})
		return ferr
	}
	// Standard case: the tile's first-dimension run is a contiguous
	// span at every combination of the trailing dimensions.
	rank := dom.Rank()
	mult := make([]int, rank)
	m := 1
	for d := 0; d < rank; d++ {
		mult[d] = m
		m *= dom.Extent(d)
	}
	off0 := 0
	for d := 0; d < rank; d++ {
		off0 += (tl.Region.Dims[d].Low - dom.Dims[d].Low) * mult[d]
	}
	n0 := tl.Region.Dims[0].Count()
	odo := make([]int, rank)
	for {
		seg := out[off0 : off0+n0]
		for i := range seg {
			seg[i] = p
		}
		d := 1
		for ; d < rank; d++ {
			off0 += mult[d]
			odo[d]++
			if odo[d] < tl.Region.Dims[d].Count() {
				break
			}
			off0 -= odo[d] * mult[d]
			odo[d] = 0
		}
		if d == rank {
			return nil
		}
	}
}

// ReplicatedGrid materializes the full owner sets of a mapping. This
// is the replicated-write path; owner sets are appended straight into
// the per-element result slices, with no intermediate garbage.
func ReplicatedGrid(m ElementMapping) ([][]int, error) {
	dom := m.Domain()
	out := make([][]int, dom.Size())
	var ferr error
	k := 0
	dom.ForEach(func(t index.Tuple) bool {
		os, err := AppendOwners(m, nil, t)
		if err != nil {
			ferr = err
			return false
		}
		out[k] = os
		k++
		return true
	})
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}
