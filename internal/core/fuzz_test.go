package core

import (
	"fmt"
	"testing"

	"hpfnt/internal/align"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

// lcg is a tiny deterministic pseudo-random generator so the fuzz
// sequences are reproducible.
type lcg struct{ s uint64 }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 33
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// TestForestFuzz applies long random sequences of the model's
// operations (DISTRIBUTE, ALIGN, REDISTRIBUTE, REALIGN, ALLOCATE,
// DEALLOCATE) and verifies after every step that the §2.4 forest
// invariants hold and that every created array still resolves to a
// total element mapping with non-empty owner sets.
func TestForestFuzz(t *testing.T) {
	const (
		seeds = 8
		steps = 200
		nArr  = 6
		np    = 8
	)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := &lcg{s: uint64(seed)*2654435761 + 12345}
			sys, err := proc.NewSystem(np)
			if err != nil {
				t.Fatal(err)
			}
			arr, err := sys.DeclareArray("P", index.Standard(1, np))
			if err != nil {
				t.Fatal(err)
			}
			tg := proc.Whole(arr)
			u := NewUnit("FUZZ", sys)

			names := make([]string, nArr)
			for i := range names {
				names[i] = fmt.Sprintf("A%d", i)
				if i%2 == 0 {
					if _, err := u.DeclareArray(names[i], index.Standard(1, 16+8*i)); err != nil {
						t.Fatal(err)
					}
				} else {
					if _, err := u.DeclareAllocatable(names[i], 1); err != nil {
						t.Fatal(err)
					}
				}
				if err := u.SetDynamic(names[i]); err != nil {
					t.Fatal(err)
				}
			}

			randFormat := func() dist.Format {
				switch r.intn(3) {
				case 0:
					return dist.Block{}
				case 1:
					return dist.BlockVienna{}
				default:
					return dist.Cyclic{K: r.intn(4) + 1}
				}
			}
			randAlign := func(alignee, base string) align.Spec {
				c := r.intn(2) + 1
				return align.Spec{
					Alignee: alignee, Axes: []align.Axis{align.DummyAxis("I")},
					Base: base, Subs: []align.Subscript{align.ExprSub(expr.Affine(c, "I", 0))},
				}
			}

			for step := 0; step < steps; step++ {
				a := names[r.intn(nArr)]
				b := names[r.intn(nArr)]
				// Errors are acceptable (invalid ops on the current
				// state); corruption is not.
				switch r.intn(5) {
				case 0:
					_ = u.Redistribute(a, []dist.Format{randFormat()}, tg)
				case 1:
					if a != b {
						_ = u.Realign(randAlign(a, b))
					}
				case 2:
					_ = u.Allocate(a, index.Standard(1, 8+8*r.intn(4)))
				case 3:
					_ = u.Deallocate(a)
				case 4:
					if a != b {
						_ = u.Align(randAlign(a, b))
					}
				}
				if err := u.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v\n%s", step, err, u.Describe())
				}
				for _, name := range names {
					ar, _ := u.Array(name)
					if !ar.Created {
						continue
					}
					m, err := u.MappingOf(name)
					if err != nil {
						t.Fatalf("step %d: mapping of created array %s: %v", step, name, err)
					}
					// Spot-check totality on a few indices.
					dom := m.Domain()
					for _, k := range []int{0, dom.Size() / 2, dom.Size() - 1} {
						os, err := m.Owners(dom.TupleAt(k))
						if err != nil || len(os) == 0 {
							t.Fatalf("step %d: owners of %s at %d: %v %v", step, name, k, os, err)
						}
						for _, p := range os {
							if p < 1 || p > np {
								t.Fatalf("step %d: %s owner %d out of range", step, name, p)
							}
						}
					}
				}
			}
		})
	}
}
