package core

import (
	"strings"
	"testing"
	"testing/quick"

	"hpfnt/internal/align"
	"hpfnt/internal/dist"
	"hpfnt/internal/expr"
	"hpfnt/internal/index"
	"hpfnt/internal/proc"
)

func newUnit(t *testing.T, np int) *Unit {
	t.Helper()
	sys, err := proc.NewSystem(np)
	if err != nil {
		t.Fatal(err)
	}
	return NewUnit("TEST", sys)
}

func declTarget(t *testing.T, u *Unit, name string, bounds ...int) proc.Target {
	t.Helper()
	a, err := u.Sys.DeclareArray(name, index.Standard(bounds...))
	if err != nil {
		t.Fatal(err)
	}
	return proc.Whole(a)
}

func identitySpec(alignee, base string, rank int) align.Spec {
	axes := make([]align.Axis, rank)
	subs := make([]align.Subscript, rank)
	for i := range axes {
		d := string(rune('I' + i))
		axes[i] = align.DummyAxis(d)
		subs[i] = align.ExprSub(expr.Dummy(d))
	}
	return align.Spec{Alignee: alignee, Axes: axes, Base: base, Subs: subs}
}

func TestDeclareAndDistribute(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	if _, err := u.DeclareArray("A", index.Standard(1, 16)); err != nil {
		t.Fatal(err)
	}
	if err := u.Distribute("A", []dist.Format{dist.Block{}}, tg); err != nil {
		t.Fatal(err)
	}
	os, err := u.Owners("A", index.Tuple{5})
	if err != nil || len(os) != 1 || os[0] != 2 {
		t.Fatalf("Owners = %v, %v", os, err)
	}
	// Double distribution is an error.
	if err := u.Distribute("A", []dist.Format{dist.Cyclic{K: 1}}, tg); err == nil {
		t.Fatal("second DISTRIBUTE must fail")
	}
}

func TestImplicitDistribution(t *testing.T) {
	u := newUnit(t, 4)
	if _, err := u.DeclareArray("A", index.Standard(1, 8, 1, 8)); err != nil {
		t.Fatal(err)
	}
	// No DISTRIBUTE directive: the compiler implicitly distributes.
	m, err := u.MappingOf("A")
	if err != nil {
		t.Fatal(err)
	}
	os, err := m.Owners(index.Tuple{1, 1})
	if err != nil || len(os) != 1 {
		t.Fatalf("implicit owners: %v %v", os, err)
	}
	os2, _ := m.Owners(index.Tuple{8, 1})
	if os[0] == os2[0] {
		t.Fatal("implicit BLOCK should split the first dimension")
	}
}

// TestConstructCollocation verifies Definition 4's guarantee: if i
// maps to j via α, then A(i) and B(j) reside in the same processor
// under any distribution of B.
func TestConstructCollocation(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 16))
	u.DeclareArray("A", index.Standard(1, 8))
	if err := u.Distribute("B", []dist.Format{dist.Cyclic{K: 3}}, tg); err != nil {
		t.Fatal(err)
	}
	// ALIGN A(I) WITH B(2*I).
	spec := align.Spec{
		Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
		Base: "B", Subs: []align.Subscript{align.ExprSub(expr.Affine(2, "I", 0))},
	}
	if err := u.Align(spec); err != nil {
		t.Fatal(err)
	}
	bm, _ := u.MappingOf("B")
	am, _ := u.MappingOf("A")
	for i := 1; i <= 8; i++ {
		ao, err := am.Owners(index.Tuple{i})
		if err != nil {
			t.Fatal(err)
		}
		bo, err := bm.Owners(index.Tuple{2 * i})
		if err != nil {
			t.Fatal(err)
		}
		if ao[0] != bo[0] {
			t.Fatalf("collocation violated: A(%d) on %v, B(%d) on %v", i, ao, 2*i, bo)
		}
	}
}

func TestForestConstraints(t *testing.T) {
	u := newUnit(t, 4)
	u.DeclareArray("A", index.Standard(1, 8))
	u.DeclareArray("B", index.Standard(1, 8))
	u.DeclareArray("C", index.Standard(1, 8))
	if err := u.Align(identitySpec("A", "B", 1)); err != nil {
		t.Fatal(err)
	}
	// Constraint: an alignee has exactly one base.
	if err := u.Align(identitySpec("A", "C", 1)); err == nil {
		t.Fatal("second alignment of A must fail")
	}
	// Constraint: a base must not itself be aligned (height <= 1).
	if err := u.Align(identitySpec("C", "A", 1)); err == nil {
		t.Fatal("aligning to a secondary must fail")
	}
	// Aligning B (a base with children) to C would give height 2.
	if err := u.Align(identitySpec("B", "C", 1)); err == nil {
		t.Fatal("aligning a base must fail")
	}
	// Self-alignment.
	if err := u.Align(identitySpec("C", "C", 1)); err == nil {
		t.Fatal("self-alignment must fail")
	}
	if err := u.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	edges := u.Forest()
	if len(edges) != 1 || edges[0] != (Edge{Alignee: "A", Base: "B"}) {
		t.Fatalf("Forest = %v", edges)
	}
	if u.BaseOf("A") != "B" || u.BaseOf("B") != "" {
		t.Fatal("BaseOf wrong")
	}
	if got := u.SecondariesOf("B"); len(got) != 1 || got[0] != "A" {
		t.Fatalf("SecondariesOf = %v", got)
	}
}

func TestAlignedArrayCannotBeDistributed(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("A", index.Standard(1, 8))
	u.DeclareArray("B", index.Standard(1, 8))
	u.Align(identitySpec("A", "B", 1))
	if err := u.Distribute("A", []dist.Format{dist.Block{}}, tg); err == nil {
		t.Fatal("DISTRIBUTE of a secondary must fail")
	}
}

// TestRedistributePrimaryFollowers: §4.2 — every array aligned to B
// is redistributed so the alignment relationship stays invariant.
func TestRedistributePrimaryFollowers(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 16))
	u.DeclareArray("A", index.Standard(1, 16))
	u.SetDynamic("B")
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	u.Align(identitySpec("A", "B", 1))

	before, _ := u.Owners("A", index.Tuple{5})
	if err := u.Redistribute("B", []dist.Format{dist.Cyclic{K: 1}}, tg); err != nil {
		t.Fatal(err)
	}
	afterA, _ := u.Owners("A", index.Tuple{5})
	afterB, _ := u.Owners("B", index.Tuple{5})
	if afterA[0] != afterB[0] {
		t.Fatal("follower did not track the new distribution")
	}
	if before[0] == afterA[0] && before[0] == 2 {
		// BLOCK(16/4): 5 -> proc 2; CYCLIC: 5 -> proc 1. They must differ.
		t.Fatal("redistribution had no effect")
	}
	if u.BaseOf("A") != "B" {
		t.Fatal("alignment edge must survive redistribution of the primary")
	}
	if err := u.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRedistributeSecondaryDetaches: §4.2 — redistributing a
// secondary disconnects it into a degenerate tree.
func TestRedistributeSecondaryDetaches(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 16))
	u.DeclareArray("A", index.Standard(1, 16))
	u.SetDynamic("A")
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	u.Align(identitySpec("A", "B", 1))
	if err := u.Redistribute("A", []dist.Format{dist.Cyclic{K: 1}}, tg); err != nil {
		t.Fatal(err)
	}
	if u.BaseOf("A") != "" {
		t.Fatal("A must be detached")
	}
	if got := u.SecondariesOf("B"); len(got) != 0 {
		t.Fatalf("B still has children %v", got)
	}
	if !u.IsPrimary("A") {
		t.Fatal("A must be primary now")
	}
	if err := u.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRedistributeRequiresDynamic(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 16))
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	if err := u.Redistribute("B", []dist.Format{dist.Cyclic{K: 1}}, tg); err == nil {
		t.Fatal("REDISTRIBUTE of non-DYNAMIC array must fail")
	}
}

// TestRealignSurgery: the three steps of §5.2.
func TestRealignSurgery(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 16))
	u.DeclareArray("C", index.Standard(1, 16))
	u.DeclareArray("A", index.Standard(1, 16))
	u.DeclareArray("D", index.Standard(1, 16))
	u.SetDynamic("A")
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	u.Distribute("C", []dist.Format{dist.Cyclic{K: 1}}, tg)

	// A is primary with child D; realigning A must promote D to a
	// degenerate tree with its current distribution (step 1).
	u.SetDynamic("D")
	u.Align(identitySpec("D", "A", 1))
	dBefore := map[int][]int{}
	for i := 1; i <= 16; i++ {
		os, _ := u.Owners("D", index.Tuple{i})
		dBefore[i] = os
	}
	if err := u.Realign(identitySpec("A", "B", 1)); err != nil {
		t.Fatal(err)
	}
	if u.BaseOf("A") != "B" {
		t.Fatalf("A base = %q", u.BaseOf("A"))
	}
	if !u.IsPrimary("D") {
		t.Fatal("D must be promoted to primary")
	}
	// D keeps its distribution from before the surgery.
	for i := 1; i <= 16; i++ {
		os, err := u.Owners("D", index.Tuple{i})
		if err != nil {
			t.Fatal(err)
		}
		if os[0] != dBefore[i][0] {
			t.Fatalf("D(%d) moved from %v to %v during promotion", i, dBefore[i], os)
		}
	}
	// Step: realign a secondary — A moves from B to C.
	if err := u.Realign(identitySpec("A", "C", 1)); err != nil {
		t.Fatal(err)
	}
	if u.BaseOf("A") != "C" {
		t.Fatalf("A base = %q", u.BaseOf("A"))
	}
	if got := u.SecondariesOf("B"); len(got) != 0 {
		t.Fatalf("B children = %v", got)
	}
	// δ_A = CONSTRUCT(α, δ_C): A follows C's cyclic distribution.
	ao, _ := u.Owners("A", index.Tuple{5})
	co, _ := u.Owners("C", index.Tuple{5})
	if ao[0] != co[0] {
		t.Fatal("A must be collocated with C after realign")
	}
	if err := u.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRealignRequiresDynamic(t *testing.T) {
	u := newUnit(t, 4)
	u.DeclareArray("A", index.Standard(1, 8))
	u.DeclareArray("B", index.Standard(1, 8))
	if err := u.Realign(identitySpec("A", "B", 1)); err == nil {
		t.Fatal("REALIGN of non-DYNAMIC must fail")
	}
}

func TestRealignToSecondaryFails(t *testing.T) {
	u := newUnit(t, 4)
	u.DeclareArray("A", index.Standard(1, 8))
	u.DeclareArray("B", index.Standard(1, 8))
	u.DeclareArray("C", index.Standard(1, 8))
	u.SetDynamic("C")
	u.Align(identitySpec("A", "B", 1))
	if err := u.Realign(identitySpec("C", "A", 1)); err == nil {
		t.Fatal("REALIGN with secondary base must fail")
	}
}

// TestAllocatableLifecycle follows the §6 example's structure.
func TestAllocatableLifecycle(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "PR", 1, 4)
	if _, err := u.DeclareAllocatable("C", 1); err != nil {
		t.Fatal(err)
	}
	u.SetDynamic("C")
	// Specification-part DISTRIBUTE on an uncreated allocatable is
	// deferred.
	if err := u.Distribute("C", []dist.Format{dist.Block{}}, tg); err != nil {
		t.Fatal(err)
	}
	if _, err := u.MappingOf("C"); err == nil {
		t.Fatal("mapping of uncreated allocatable must fail")
	}
	if err := u.Allocate("C", index.Standard(1, 100)); err != nil {
		t.Fatal(err)
	}
	os, err := u.Owners("C", index.Tuple{1})
	if err != nil || os[0] != 1 {
		t.Fatalf("after allocate: %v %v", os, err)
	}
	// Executable REDISTRIBUTE to cyclic (as in the paper's example).
	if err := u.Redistribute("C", []dist.Format{dist.Cyclic{K: 1}}, tg); err != nil {
		t.Fatal(err)
	}
	os, _ = u.Owners("C", index.Tuple{2})
	if os[0] != 2 {
		t.Fatalf("after redistribute: %v", os)
	}
	if err := u.Deallocate("C"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.MappingOf("C"); err == nil {
		t.Fatal("mapping of deallocated array must fail")
	}
	// Re-allocation with a different shape applies the deferred
	// distribution again ("valid for each allocation instance").
	if err := u.Allocate("C", index.Standard(1, 40)); err != nil {
		t.Fatal(err)
	}
	os, _ = u.Owners("C", index.Tuple{40})
	if os[0] != 4 {
		t.Fatalf("re-allocation owners: %v", os)
	}
}

func TestDeallocatePromotesDependents(t *testing.T) {
	// §6: at DEALLOCATE, each array directly aligned to B becomes a
	// new tree with primary A.
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareAllocatable("B", 1)
	u.DeclareAllocatable("A", 1)
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	u.Allocate("B", index.Standard(1, 16))
	u.Allocate("A", index.Standard(1, 16))
	// Executable-style alignment via Realign needs DYNAMIC; use the
	// spec-part Align on the created allocatable instead.
	if err := u.Align(identitySpec("A", "B", 1)); err != nil {
		t.Fatal(err)
	}
	before, _ := u.Owners("A", index.Tuple{7})
	if err := u.Deallocate("B"); err != nil {
		t.Fatal(err)
	}
	if !u.IsPrimary("A") {
		t.Fatal("A must be primary after base deallocation")
	}
	after, err := u.Owners("A", index.Tuple{7})
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != before[0] {
		t.Fatal("A must keep its current distribution when promoted")
	}
	if err := u.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNonAllocatableCannotAlignToAllocatable(t *testing.T) {
	// §6: "a local array which is not declared ALLOCATABLE cannot be
	// aligned in the specification-part of a program unit to an
	// allocatable array".
	u := newUnit(t, 4)
	u.DeclareAllocatable("B", 1)
	u.DeclareArray("A", index.Standard(1, 8))
	if err := u.Align(identitySpec("A", "B", 1)); err == nil {
		t.Fatal("expected §6 restriction error")
	}
}

func TestAllocateErrors(t *testing.T) {
	u := newUnit(t, 4)
	u.DeclareArray("S", index.Standard(1, 4))
	u.DeclareAllocatable("A", 2)
	if err := u.Allocate("S", index.Standard(1, 4)); err == nil {
		t.Fatal("ALLOCATE of non-allocatable must fail")
	}
	if err := u.Allocate("A", index.Standard(1, 4)); err == nil {
		t.Fatal("rank mismatch must fail")
	}
	if err := u.Allocate("A", index.Standard(1, 4, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if err := u.Allocate("A", index.Standard(1, 4, 1, 4)); err == nil {
		t.Fatal("double ALLOCATE must fail")
	}
	if err := u.Deallocate("S"); err == nil {
		t.Fatal("DEALLOCATE of non-allocatable must fail")
	}
}

func TestScalarsViaRankZero(t *testing.T) {
	u := newUnit(t, 4)
	if _, err := u.DeclareArray("S", index.Scalar()); err != nil {
		t.Fatal(err)
	}
	m, err := u.MappingOf("S")
	if err != nil {
		t.Fatal(err)
	}
	os, err := m.Owners(index.Tuple{})
	if err != nil || len(os) < 1 {
		t.Fatalf("scalar owners: %v %v", os, err)
	}
}

func TestSameOwnersAndRemapVolume(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	d1, _ := dist.New(index.Standard(1, 16), []dist.Format{dist.Block{}}, tg)
	d2, _ := dist.New(index.Standard(1, 16), []dist.Format{dist.Cyclic{K: 1}}, tg)
	m1, m2 := DistMapping{D: d1}, DistMapping{D: d2}
	same, err := SameOwners(m1, m1)
	if err != nil || !same {
		t.Fatalf("SameOwners self: %v %v", same, err)
	}
	same, _ = SameOwners(m1, m2)
	if same {
		t.Fatal("block and cyclic must differ")
	}
	vol, err := RemapVolume(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	// BLOCK 16/4: blocks of 4. CYCLIC: round robin. Only elements
	// whose owners coincide stay: count them directly.
	stay := 0
	for i := 1; i <= 16; i++ {
		if (i-1)/4 == (i-1)%4 {
			stay++
		}
	}
	if vol != 16-stay {
		t.Fatalf("RemapVolume = %d, want %d", vol, 16-stay)
	}
	if v, _ := RemapVolume(m1, m1); v != 0 {
		t.Fatalf("self remap volume = %d", v)
	}
}

// Property: CONSTRUCT collocation holds for random affine alignments
// and random block/cyclic base distributions.
func TestConstructCollocationProperty(t *testing.T) {
	sys, _ := proc.NewSystem(8)
	arr, _ := sys.DeclareArray("P", index.Standard(1, 8))
	tg := proc.Whole(arr)
	f := func(useCyclic bool, kk, nn, cc uint8) bool {
		n := int(nn%24) + 4
		c := int(cc%2) + 1 // coeff 1..2
		var fm dist.Format = dist.Block{}
		if useCyclic {
			fm = dist.Cyclic{K: int(kk%4) + 1}
		}
		baseDom := index.Standard(1, 2*n)
		d, err := dist.New(baseDom, []dist.Format{fm}, tg)
		if err != nil {
			return false
		}
		alpha, err := align.Normalize(align.Spec{
			Alignee: "A", Axes: []align.Axis{align.DummyAxis("I")},
			Base: "B", Subs: []align.Subscript{align.ExprSub(expr.Affine(c, "I", 0))},
		}, index.Standard(1, n), baseDom, expr.Env{})
		if err != nil {
			return false
		}
		cm := Construct(alpha, DistMapping{D: d})
		for i := 1; i <= n; i++ {
			ao, err := cm.Owners(index.Tuple{i})
			if err != nil {
				return false
			}
			bo, err := d.Owners(index.Tuple{c * i})
			if err != nil {
				return false
			}
			if ao[0] != bo[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeOutput(t *testing.T) {
	u := newUnit(t, 4)
	tg := declTarget(t, u, "P", 1, 4)
	u.DeclareArray("B", index.Standard(1, 8))
	u.DeclareArray("A", index.Standard(1, 8))
	u.DeclareAllocatable("Z", 1)
	u.Distribute("B", []dist.Format{dist.Block{}}, tg)
	u.Align(identitySpec("A", "B", 1))
	d := u.Describe()
	for _, want := range []string{"B: PRIMARY", "A: ALIGNED", "Z: (not created)"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}
